// End-to-end WCET analysis session: current practice vs MBPTA (Section VI).
//
// Plays the role of the validation engineer:
//   1. designs the stress scenario (recovery path pinned on),
//   2. derives the current-practice bound: COTS MOET + 20% margin,
//   3. runs the DSR measurement campaign with the incremental MBPTA
//      convergence protocol,
//   4. checks i.i.d., fits the EVT tail and reads the pWCET at 1e-15,
//   5. renders the Figure-3-style exceedance plot.
//
//   $ ./wcet_analysis        (PROXIMA_RUNS scales the campaign)
#include "casestudy/campaign.hpp"
#include "exec/engine.hpp"
#include "mbpta/mbpta.hpp"
#include "trace/report.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace proxima;
using namespace proxima::casestudy;

namespace {

CampaignConfig analysis_config(Randomisation randomisation,
                               std::uint32_t runs) {
  CampaignConfig config;
  config.runs = runs;
  config.randomisation = randomisation;
  config.fixed_inputs = true;
  config.control.corrupt_rate = 1.0; // stress scenario: recovery exercised
  return config;
}

} // namespace

int main() {
  std::uint32_t runs = 600;
  if (const char* env = std::getenv("PROXIMA_RUNS")) {
    runs = static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }

  // --- current practice -----------------------------------------------
  std::printf("== current practice: measurement + engineering margin ==\n");
  const CampaignResult cots =
      run_control_campaign(analysis_config(Randomisation::kNone, 30));
  const trace::TimingReport report =
      trace::TimingReport::from_times(cots.times);
  std::printf("stress-scenario measurements: %s\n", report.to_string().c_str());
  std::printf("deterministic bound: MOET + 20%% = %.0f cycles\n\n",
              report.mbdta_bound());

  // --- MBPTA with DSR ---------------------------------------------------
  // The engine's adaptive mode replaces the hand-rolled batch loop this
  // example used to carry: it grows the campaign, feeds each batch to the
  // convergence controller at a deterministic boundary, and stops at the
  // first boundary where the estimate is stable — reproducibly, at any
  // worker count, and bit-identical to a fixed campaign of the stop length.
  std::printf("== MBPTA: DSR campaign with convergence control ==\n");
  exec::ConvergenceOptions convergence;
  convergence.batch_runs = 100;
  convergence.max_runs = runs;
  convergence.controller.target_exceedance = 1e-15;
  convergence.controller.epsilon = 0.005;
  convergence.controller.stable_rounds = 3;
  convergence.controller.min_samples = 300;
  convergence.controller.mbpta.block_size = std::max(10u, runs / 40u);

  const exec::AdaptiveCampaignResult adaptive =
      exec::CampaignEngine().run_adaptive(
          analysis_config(Randomisation::kDsr, runs), convergence);
  const std::vector<double>& all_times = adaptive.campaign.times;
  std::printf("  %llu of %u budgeted runs (%s after %zu batches)\n",
              static_cast<unsigned long long>(adaptive.runs()), runs,
              adaptive.converged ? "estimate stable" : "budget exhausted",
              adaptive.batches);
  // Estimates exist only for batches past min_samples, so they are
  // numbered as evaluations rather than batches.
  for (std::size_t i = 0; i < adaptive.estimates.size(); ++i) {
    if (std::isnan(adaptive.estimates[i])) {
      std::printf("  evaluation %zu: i.i.d. verdict failed\n", i + 1);
    } else {
      std::printf("  evaluation %zu: pWCET estimate %.0f\n", i + 1,
                  adaptive.estimates[i]);
    }
  }

  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(all_times, convergence.controller.mbpta);
  std::printf("\ni.i.d.: Ljung-Box p=%.3f, KS p=%.3f -> %s\n",
              analysis.iid.independence.p_value,
              analysis.iid.identical_distribution.p_value,
              analysis.applicable() ? "EVT applicable" : "NOT applicable");
  std::printf("Gumbel tail: location=%.1f scale=%.2f\n",
              analysis.model.info().gumbel.location,
              analysis.model.info().gumbel.scale);

  const double pwcet = analysis.pwcet(1e-15);
  std::printf("\npWCET(1e-15) = %.0f cycles (DSR MOET %.0f, +%.2f%%)\n",
              pwcet, analysis.summary.max,
              100.0 * (pwcet / analysis.summary.max - 1.0));
  std::printf("industrial bound = %.0f cycles -> MBPTA is %.1f%% tighter\n\n",
              report.mbdta_bound(),
              100.0 * (1.0 - pwcet / report.mbdta_bound()));

  std::printf("%s\n",
              trace::ascii_exceedance_plot(analysis.model, all_times).c_str());
  return analysis.applicable() && pwcet < report.mbdta_bound() ? 0 : 1;
}
