// End-to-end WCET analysis session: current practice vs MBPTA (Section VI).
//
// Plays the role of the validation engineer:
//   1. designs the stress scenario (recovery path pinned on),
//   2. derives the current-practice bound: COTS MOET + 20% margin,
//   3. runs the DSR measurement campaign with the incremental MBPTA
//      convergence protocol,
//   4. checks i.i.d., fits the EVT tail and reads the pWCET at 1e-15,
//   5. renders the Figure-3-style exceedance plot.
//
//   $ ./wcet_analysis        (PROXIMA_RUNS scales the campaign)
#include "casestudy/campaign.hpp"
#include "mbpta/mbpta.hpp"
#include "trace/report.hpp"

#include <cstdio>
#include <cstdlib>

using namespace proxima;
using namespace proxima::casestudy;

namespace {

CampaignConfig analysis_config(Randomisation randomisation,
                               std::uint32_t runs) {
  CampaignConfig config;
  config.runs = runs;
  config.randomisation = randomisation;
  config.fixed_inputs = true;
  config.control.corrupt_rate = 1.0; // stress scenario: recovery exercised
  return config;
}

} // namespace

int main() {
  std::uint32_t runs = 600;
  if (const char* env = std::getenv("PROXIMA_RUNS")) {
    runs = static_cast<std::uint32_t>(std::strtoul(env, nullptr, 10));
  }

  // --- current practice -----------------------------------------------
  std::printf("== current practice: measurement + engineering margin ==\n");
  const CampaignResult cots =
      run_control_campaign(analysis_config(Randomisation::kNone, 30));
  const trace::TimingReport report =
      trace::TimingReport::from_times(cots.times);
  std::printf("stress-scenario measurements: %s\n", report.to_string().c_str());
  std::printf("deterministic bound: MOET + 20%% = %.0f cycles\n\n",
              report.mbdta_bound());

  // --- MBPTA with DSR ---------------------------------------------------
  std::printf("== MBPTA: DSR campaign with convergence control ==\n");
  mbpta::ConvergenceController::Config cc;
  cc.target_exceedance = 1e-15;
  cc.epsilon = 0.005;
  cc.stable_rounds = 3;
  cc.min_samples = 300;
  cc.mbpta.block_size = std::max(10u, runs / 40u);
  mbpta::ConvergenceController controller(cc);

  CampaignConfig dsr_config = analysis_config(Randomisation::kDsr, 0);
  std::vector<double> all_times;
  std::uint32_t collected = 0;
  bool converged = false;
  while (!converged && collected < runs) {
    const std::uint32_t batch = std::min(100u, runs - collected);
    dsr_config.runs = batch;
    dsr_config.input_seed = 2017;            // same pinned scenario
    dsr_config.layout_seed = 611085 + collected; // fresh layouts
    const CampaignResult result = run_control_campaign(dsr_config);
    all_times.insert(all_times.end(), result.times.begin(),
                     result.times.end());
    converged = controller.add_batch(result.times);
    collected += batch;
    std::printf("  %4u runs collected%s\n", collected,
                converged ? "  -> estimate stable" : "");
  }

  const mbpta::MbptaAnalysis analysis = controller.result();
  std::printf("\ni.i.d.: Ljung-Box p=%.3f, KS p=%.3f -> %s\n",
              analysis.iid.independence.p_value,
              analysis.iid.identical_distribution.p_value,
              analysis.applicable() ? "EVT applicable" : "NOT applicable");
  std::printf("Gumbel tail: location=%.1f scale=%.2f\n",
              analysis.model.info().gumbel.location,
              analysis.model.info().gumbel.scale);

  const double pwcet = analysis.pwcet(1e-15);
  std::printf("\npWCET(1e-15) = %.0f cycles (DSR MOET %.0f, +%.2f%%)\n",
              pwcet, analysis.summary.max,
              100.0 * (pwcet / analysis.summary.max - 1.0));
  std::printf("industrial bound = %.0f cycles -> MBPTA is %.1f%% tighter\n\n",
              report.mbdta_bound(),
              100.0 * (1.0 - pwcet / report.mbdta_bound()));

  std::printf("%s\n",
              trace::ascii_exceedance_plot(analysis.model, all_times).c_str());
  return analysis.applicable() && pwcet < report.mbdta_bound() ? 0 : 1;
}
