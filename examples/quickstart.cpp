// Quickstart: dynamic software randomisation in ~100 lines.
//
// Builds a small program for the LEON3-class platform, applies the DSR
// compiler pass, and runs it under a sequence of partition reboots — each
// with a fresh random memory layout — printing where the code landed and
// how the execution time moved.
//
//   $ ./quickstart
#include "core/dsr_pass.hpp"
#include "core/dsr_runtime.hpp"
#include "isa/builder.hpp"
#include "isa/linker.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "rng/mwc.hpp"
#include "vm/vm.hpp"

#include <cstdio>

using namespace proxima;

namespace {

/// A toy workload: sum an array through a helper function.
isa::Program make_program() {
  isa::Program program;
  {
    isa::FunctionBuilder fb("main");
    fb.prologue(96);
    fb.li(isa::kO0, 0);              // accumulator
    fb.li(isa::kL0, 64);             // iterations
    fb.label("loop");
    fb.call("accumulate");           // o0 = accumulate(o0)
    fb.subcci(isa::kL0, 1);
    fb.subi(isa::kL0, isa::kL0, 1);
    fb.bg("loop");
    fb.load_address(isa::kO1, "result");
    fb.st(isa::kO0, isa::kO1, 0);
    fb.halt();
    program.functions.push_back(std::move(fb).build());
  }
  {
    isa::FunctionBuilder fb("accumulate");
    fb.prologue(96);
    fb.load_address(isa::kL0, "table");
    fb.li(isa::kL1, 256); // words
    fb.label("sum");
    fb.ld(isa::kO0, isa::kL0, 0);
    fb.add(isa::kI0, isa::kI0, isa::kO0);
    fb.addi(isa::kL0, isa::kL0, 4);
    fb.subcci(isa::kL1, 1);
    fb.subi(isa::kL1, isa::kL1, 1);
    fb.bg("sum");
    fb.epilogue();
    program.functions.push_back(std::move(fb).build());
  }
  std::vector<std::uint8_t> init;
  for (int i = 0; i < 1024; ++i) {
    init.push_back(static_cast<std::uint8_t>(i));
  }
  program.data.push_back(isa::DataObject{
      .name = "table", .size = 1024, .align = 64, .init = std::move(init)});
  program.data.push_back(
      isa::DataObject{.name = "result", .size = 4, .align = 4});
  program.entry = "main";
  return program;
}

} // namespace

int main() {
  // 1. Compile with the DSR pass: calls become table-indirect, prologues
  //    pick up the per-function random stack offset, metadata is emitted.
  isa::Program program = make_program();
  const dsr::PassReport report = dsr::apply_pass(program);
  std::printf("DSR pass: %u calls rewritten, %u prologues rewritten, "
              "code growth %.1f%%\n",
              report.calls_rewritten, report.prologues_rewritten,
              100.0 * report.overhead_ratio());

  // 2. Link and load onto the LEON3-class platform.
  const isa::LinkedImage image = isa::link(program);
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  vm::Vm cpu(memory, hierarchy);
  image.load_into(memory);

  // 3. Attach the DSR runtime: eager relocation from a randomised pool.
  rng::Mwc random(2017);
  dsr::DsrRuntime runtime(memory, hierarchy, image, random, {});
  runtime.initialise();
  runtime.attach(cpu);

  // 4. Partition reboots: every run gets a fresh layout; the results never
  //    change, the timing does.
  std::printf("\n%-5s %-12s %-12s %-10s %-10s %-8s\n", "run", "main @",
              "accumulate @", "stack off", "cycles", "result");
  for (int run = 0; run < 8; ++run) {
    if (run > 0) {
      runtime.rerandomise();
    }
    hierarchy.flush_all();
    cpu.reset(runtime.entry_address(), 0x4080'0000);
    cpu.run();
    std::printf("%-5d 0x%08x   0x%08x   %-10u %-10llu %u\n", run,
                runtime.function_address("main"),
                runtime.function_address("accumulate"),
                runtime.stack_offset(image.function("accumulate").id),
                static_cast<unsigned long long>(cpu.cycles()),
                memory.read_u32(image.symbol("result").addr));
  }
  std::printf("\nSame result every run; different addresses and times —\n"
              "that variability is what MBPTA models with EVT.\n");
  return 0;
}
