// The full space case study on the partitioned RTOS (Section IV).
//
// Part 1 — three seconds of mission time: two partitions on one
// LEON3-class core under a PikeOS-style hypervisor, registered on a
// `rtos::PartitionedPlatform`:
//   * "control"    — high criticality, every 1 s, DSR-randomised, rebooted
//                    after each activation (the measurement protocol);
//   * "processing" — low criticality, every 100 ms, the image task
//                    computing the wavefront error from sensor frames.
// Every activation is verified against the golden models and the schedule
// plus the control task's measured times are printed.
//
// Part 2 — the measurement campaign as the analyst runs it: the
// `hv/control+image-dsr` registry scenario on the parallel campaign
// engine.  Each measured run replays the cyclic schedule (guests first,
// the measured control activation in the last minor frame), so the
// collected pWCET is the control task's *under partition interference* —
// bit-identical at any worker count, with a per-partition report.
//
//   $ ./space_instrument
#include "casestudy/control_task.hpp"
#include "casestudy/image_task.hpp"
#include "core/dsr_pass.hpp"
#include "core/dsr_runtime.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"
#include "isa/linker.hpp"
#include "mbpta/descriptive.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "rng/mwc.hpp"
#include "rtos/platform.hpp"
#include "trace/partition_report.hpp"
#include "trace/trace.hpp"
#include "vm/vm.hpp"

#include <cstdio>
#include <memory>

using namespace proxima;
using namespace proxima::casestudy;

namespace {

constexpr std::uint32_t kControlStack = 0x4080'0000;
constexpr std::uint32_t kImageStack = 0x4480'0000;

/// The high-criticality partition: DSR-randomised control task.
class ControlPartition final : public rtos::PartitionApp {
public:
  ControlPartition(mem::GuestMemory& memory, mem::MemoryHierarchy& hierarchy)
      : memory_(memory), hierarchy_(hierarchy), random_(611085),
        input_rng_(2017) {
    isa::Program program = build_control_program(params_);
    trace::instrument_function(program, "control_step");
    dsr::apply_pass(program);
    image_ = std::make_unique<isa::LinkedImage>(
        isa::link(program, control_layout(params_, Layout::kCotsBad,
                                          kControlStack)));
    image_->load_into(memory_);
    runtime_ = std::make_unique<dsr::DsrRuntime>(memory_, hierarchy_,
                                                 *image_, random_,
                                                 dsr::RuntimeOptions{});
    runtime_->initialise();
    inputs_ = initial_control_inputs(params_);
  }

  std::uint32_t entry_address() override { return runtime_->entry_address(); }
  std::uint32_t stack_top() override { return kControlStack; }

  void before_activation(std::uint64_t) override {
    refresh_control_inputs(input_rng_, params_, inputs_);
    for (const auto& [addr, length] :
         stage_control_inputs(memory_, *image_, inputs_)) {
      hierarchy_.note_memory_written(addr, length);
      hierarchy_.invalidate_range(addr, length);
    }
  }

  void reboot() override {
    // Verify, then re-randomise for the next period.
    const ControlOutputs expected = reference_control(params_, inputs_);
    const ControlOutputs actual =
        read_control_outputs(memory_, *image_, params_);
    verified_ = verified_ && (expected == actual);
    runtime_->rerandomise();
  }

  bool verified() const { return verified_; }
  const dsr::DsrRuntime& runtime() const { return *runtime_; }

private:
  mem::GuestMemory& memory_;
  mem::MemoryHierarchy& hierarchy_;
  rng::Mwc random_;
  rng::Mwc input_rng_;
  ControlParams params_;
  std::unique_ptr<isa::LinkedImage> image_;
  std::unique_ptr<dsr::DsrRuntime> runtime_;
  ControlInputs inputs_;
  bool verified_ = true;
};

/// The low-criticality partition: image processing (COTS, not analysed).
class ImagePartition final : public rtos::PartitionApp {
public:
  ImagePartition(mem::GuestMemory& memory, mem::MemoryHierarchy& hierarchy)
      : memory_(memory), hierarchy_(hierarchy), input_rng_(42) {
    params_.grid = 10; // fits the 100 ms frame on the example clock
    isa::Program program = build_image_program(params_);
    isa::LinkOptions image_options;
    image_options.code_base = 0x4300'0000;
    image_options.data_base = 0x4310'0000;
    image_ = std::make_unique<isa::LinkedImage>(
        isa::link(program, image_options));
    image_->load_into(memory_);
  }

  std::uint32_t entry_address() override { return image_->entry_addr(); }
  std::uint32_t stack_top() override { return kImageStack; }

  void before_activation(std::uint64_t) override {
    inputs_ = make_image_inputs(input_rng_, params_);
    stage_image_inputs(memory_, *image_, inputs_);
    const std::uint32_t frame_addr = image_->symbol("im_frame").addr;
    hierarchy_.note_memory_written(frame_addr, params_.frame_bytes());
    hierarchy_.invalidate_range(frame_addr, params_.frame_bytes());
  }

  void reboot() override {
    const ImageOutputs expected = reference_image(params_, inputs_);
    const ImageOutputs actual = read_image_outputs(memory_, *image_, params_);
    verified_ = verified_ && (expected == actual);
    lit_total_ += actual.processed_lenses;
  }

  bool verified() const { return verified_; }
  std::uint32_t lit_total() const { return lit_total_; }
  const ImageParams& params() const { return params_; }

private:
  mem::GuestMemory& memory_;
  mem::MemoryHierarchy& hierarchy_;
  rng::Mwc input_rng_;
  ImageParams params_;
  std::unique_ptr<isa::LinkedImage> image_;
  ImageInputs inputs_;
  bool verified_ = true;
  std::uint32_t lit_total_ = 0;
};

} // namespace

int main() {
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  vm::Vm cpu(memory, hierarchy);
  trace::TraceBuffer trace_buffer;
  trace_buffer.attach(cpu);

  ControlPartition control(memory, hierarchy);
  ImagePartition processing(memory, hierarchy);

  rtos::PartitionedPlatform platform(
      cpu, hierarchy,
      rtos::HypervisorConfig{.minor_frame_ms = 100, .cycles_per_ms = 80000});
  platform.add_partition(
      rtos::PartitionConfig{.name = "control",
                            .period_ms = 1000,
                            .criticality = rtos::Criticality::kHigh,
                            .reboot_after_each_activation = true},
      control);
  platform.add_partition(
      rtos::PartitionConfig{.name = "processing",
                            .period_ms = 100,
                            .criticality = rtos::Criticality::kLow,
                            .reboot_after_each_activation = true},
      processing);

  std::printf("running 30 minor frames (3 s of mission time)...\n\n");
  const auto records = platform.run_frames(30);

  std::printf("%-6s %-12s %-12s %-12s %-6s\n", "frame", "partition",
              "start (cyc)", "used (cyc)", "halt");
  for (std::size_t i = 0; i < records.size() && i < 14; ++i) {
    const rtos::ActivationRecord& r = records[i];
    std::printf("%-6llu %-12s %-12llu %-12llu %-6s\n",
                static_cast<unsigned long long>(r.frame_index),
                r.partition.c_str(),
                static_cast<unsigned long long>(r.start_cycle),
                static_cast<unsigned long long>(r.cycles_used),
                r.halted ? "yes" : "NO");
  }
  std::printf("... (%zu activations total)\n\n", records.size());

  const std::vector<double> uoa_times =
      trace::extract_execution_times(trace_buffer);
  const mbpta::Summary summary = mbpta::summarise(uoa_times);
  std::printf("control task (UoA): %zu activations, min=%.0f avg=%.1f "
              "MOET=%.0f cycles\n",
              summary.count, summary.min, summary.mean, summary.max);
  std::printf("processing task: %u lenses processed across %d frames "
              "(~70%% of %u per frame)\n",
              processing.lit_total(), 30,
              processing.params().lens_count());
  std::printf("relocations performed by the DSR runtime: %llu\n",
              static_cast<unsigned long long>(
                  control.runtime().stats().relocations));
  std::printf("temporal-isolation violations: %llu\n",
              static_cast<unsigned long long>(platform.violations()));
  std::printf("\nfunctional verification: control %s, processing %s\n",
              control.verified() ? "OK" : "FAILED",
              processing.verified() ? "OK" : "FAILED");
  if (!(control.verified() && processing.verified())) {
    return 1;
  }

  // -------------------------------------------------------------------------
  // Part 2 — the measurement campaign, as the analyst runs it: the
  // hypervisor scenario (control task measured under the image guest's
  // interference, DSR-randomised per reboot) executed on the parallel
  // campaign engine.  Bit-identical to the sequential protocol at any
  // worker count, so the pWCET analysis is reproducible however many cores
  // the analysis host happens to have.
  // -------------------------------------------------------------------------
  const std::uint32_t campaign_runs = 80;
  const exec::Scenario& scenario =
      exec::ScenarioRegistry::global().at("hv/control+image-dsr");
  std::printf("\nmeasurement campaign: scenario '%s'\n  (%s)\n",
              scenario.name.c_str(), scenario.description.c_str());

  exec::EngineOptions engine_options; // workers = hardware concurrency
  engine_options.progress = [](std::uint64_t done, std::uint64_t total) {
    std::printf("\r  progress: %llu/%llu runs",
                static_cast<unsigned long long>(done),
                static_cast<unsigned long long>(total));
    std::fflush(stdout);
  };
  const exec::CampaignEngine engine(engine_options);
  const CampaignResult campaign =
      engine.run(scenario.make_config(campaign_runs));
  std::printf("\n");

  const mbpta::Summary campaign_summary = mbpta::summarise(campaign.times);
  std::printf("  %u workers, %zu measured runs, %llu verified against the "
              "golden models\n",
              engine.resolved_workers(campaign_runs), campaign.times.size(),
              static_cast<unsigned long long>(campaign.verified_runs));
  std::printf("  control UoA under interference: min=%.0f avg=%.1f "
              "MOET=%.0f\n",
              campaign_summary.min, campaign_summary.mean,
              campaign_summary.max);
  std::printf("\nper-partition report (cycles granted by the schedule):\n%s",
              trace::PartitionReport::build(
                  partition_series(campaign.samples))
                  .to_string()
                  .c_str());

  const bool campaign_ok =
      campaign.times.size() == campaign_runs &&
      campaign.verified_runs == campaign_runs;
  std::printf("\ncampaign verification: %s\n", campaign_ok ? "OK" : "FAILED");
  return campaign_ok ? 0 : 1;
}
