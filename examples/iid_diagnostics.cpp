// The statistical side of MBPTA: what the i.i.d. tests accept and reject.
//
// Walks through four measurement series — a DSR campaign, a COTS campaign
// with drifting conditions, an autocorrelated series, and synthetic Gumbel
// data — and shows how the Ljung-Box / Kolmogorov-Smirnov verdicts decide
// whether EVT may be applied (Section VI, "Fulfilling the i.i.d
// properties").
//
//   $ ./iid_diagnostics
#include "casestudy/campaign.hpp"
#include "mbpta/mbpta.hpp"
#include "rng/distributions.hpp"
#include "rng/mwc.hpp"

#include <cstdio>
#include <vector>

using namespace proxima;

namespace {

void verdict_line(const char* label, std::span<const double> series) {
  const mbpta::IidVerdict verdict = mbpta::check_iid(series);
  std::printf("%-34s LB p=%6.3f  KS p=%6.3f  -> %s\n", label,
              verdict.independence.p_value,
              verdict.identical_distribution.p_value,
              verdict.passes() ? "i.i.d. PASS (EVT usable)"
                               : "REJECTED (EVT not applicable)");
}

} // namespace

int main() {
  // 1. A real DSR measurement campaign (layout randomisation only).
  casestudy::CampaignConfig config;
  config.runs = 300;
  config.randomisation = casestudy::Randomisation::kDsr;
  config.fixed_inputs = true;
  config.control.corrupt_rate = 1.0;
  const casestudy::CampaignResult dsr = run_control_campaign(config);
  verdict_line("DSR measurement campaign", dsr.times);

  // 2. A drifting campaign: the second half measured under different
  //    conditions (e.g. a configuration change mid-campaign).
  std::vector<double> drifting = dsr.times;
  for (std::size_t i = drifting.size() / 2; i < drifting.size(); ++i) {
    drifting[i] += 2500.0;
  }
  verdict_line("same campaign with mid-drift", drifting);

  // 3. An autocorrelated series: a platform whose state leaks across
  //    runs (what the partition reboot + flush protocol prevents).
  rng::Mwc rng(7);
  std::vector<double> correlated{250000.0};
  for (int i = 1; i < 300; ++i) {
    correlated.push_back(0.85 * correlated.back() + 0.15 * 250000.0 +
                         rng::sample_normal(rng, 0.0, 300.0));
  }
  verdict_line("state leaking across runs", correlated);

  // 4. Synthetic Gumbel draws (the EVT ideal).
  std::vector<double> gumbel;
  for (int i = 0; i < 300; ++i) {
    gumbel.push_back(rng::sample_gumbel(rng, 250000.0, 400.0));
  }
  verdict_line("synthetic Gumbel draws", gumbel);

  // The consequence of a PASS: a usable pWCET estimate.
  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(dsr.times, mbpta::MbptaConfig{.block_size = 10});
  std::printf("\nDSR campaign pWCET(1e-12): %.0f cycles (MOET %.0f)\n",
              analysis.pwcet(1e-12), analysis.summary.max);
  std::printf("CV tail diagnostic: cv=%.3f in [%.3f, %.3f] -> %s\n",
              mbpta::cv_exponentiality(dsr.times).cv,
              mbpta::cv_exponentiality(dsr.times).lower,
              mbpta::cv_exponentiality(dsr.times).upper,
              mbpta::cv_exponentiality(dsr.times).passes()
                  ? "exponential-compatible"
                  : "check the tail model");
  return 0;
}
