// The `proxima` executable: a shim around cli::run_cli (src/cli/), which
// the smoke tests drive in-process through the same entry point.
#include "cli/cli.hpp"

#include <iostream>

int main(int argc, char** argv) {
  return proxima::cli::run_cli(argc, argv, std::cout, std::cerr);
}
