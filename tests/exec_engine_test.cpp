// Tests for the parallel campaign execution engine: seed derivation,
// deterministic sharding, and — the core property — bit-identical results
// between the sequential campaign and the N-worker engine for every
// randomisation technology.
#include "casestudy/campaign.hpp"
#include "casestudy/campaign_runner.hpp"
#include "exec/engine.hpp"
#include "exec/seed.hpp"
#include "exec/shard.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <set>
#include <stop_token>
#include <vector>

namespace {

using namespace proxima;
using namespace proxima::casestudy;

// ---------------------------------------------------------------------------
// Seed derivation.
// ---------------------------------------------------------------------------

TEST(SeedDerivation, IsPureAndConstexpr) {
  static_assert(exec::derive_run_seed(2017, exec::SeedStream::kInput, 0) ==
                exec::derive_run_seed(2017, exec::SeedStream::kInput, 0));
  EXPECT_EQ(exec::derive_run_seed(611085, exec::SeedStream::kLayout, 42),
            exec::derive_run_seed(611085, exec::SeedStream::kLayout, 42));
}

TEST(SeedDerivation, SeparatesStreamsRunsAndBases) {
  const std::uint64_t base = 2017;
  std::set<std::uint64_t> seen;
  for (std::uint64_t run = 0; run < 1000; ++run) {
    seen.insert(exec::derive_run_seed(base, exec::SeedStream::kInput, run));
    seen.insert(exec::derive_run_seed(base, exec::SeedStream::kLayout, run));
    seen.insert(
        exec::derive_run_seed(base + 1, exec::SeedStream::kInput, run));
  }
  EXPECT_EQ(seen.size(), 3000u) << "derived seeds must not collide";
}

// ---------------------------------------------------------------------------
// Shard planning.
// ---------------------------------------------------------------------------

void expect_valid_plan(const std::vector<exec::ShardRange>& plan,
                       std::uint64_t runs) {
  std::uint64_t expected_begin = 0;
  for (const exec::ShardRange& shard : plan) {
    EXPECT_EQ(shard.begin, expected_begin) << "ascending and gap-free";
    EXPECT_LT(shard.begin, shard.end) << "no empty shards";
    expected_begin = shard.end;
  }
  EXPECT_EQ(expected_begin, runs) << "plan must cover [0, runs)";
}

TEST(PlanShards, CoversDisjointAscending) {
  for (std::uint64_t runs : {1u, 7u, 100u, 1000u, 1001u}) {
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      expect_valid_plan(exec::plan_shards(runs, workers), runs);
    }
  }
}

TEST(PlanShards, EmptyCampaign) {
  EXPECT_TRUE(exec::plan_shards(0, 4).empty());
}

TEST(PlanShards, FewerRunsThanWorkers) {
  const auto plan = exec::plan_shards(3, 8);
  expect_valid_plan(plan, 3);
  EXPECT_EQ(plan.size(), 3u) << "one run per shard when runs < workers";
}

TEST(PlanShards, MinChunkFloor) {
  exec::ShardOptions options;
  options.min_chunk = 8;
  const auto plan = exec::plan_shards(100, 4, options);
  expect_valid_plan(plan, 100);
  for (const exec::ShardRange& shard : plan) {
    EXPECT_GE(shard.size(), 8u);
  }
}

TEST(PlanShards, OversubscribesForStealing) {
  const auto plan = exec::plan_shards(1000, 4);
  expect_valid_plan(plan, 1000);
  EXPECT_GT(plan.size(), 4u) << "several chunks per worker";
}

TEST(PlanShards, ZeroWorkersThrows) {
  EXPECT_THROW(exec::plan_shards(10, 0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Engine vs sequential: bit-identical campaigns.
// ---------------------------------------------------------------------------

CampaignConfig small_config(Randomisation randomisation, std::uint32_t runs) {
  CampaignConfig config;
  config.runs = runs;
  config.randomisation = randomisation;
  return config;
}

exec::EngineOptions worker_options(unsigned workers) {
  exec::EngineOptions options;
  options.workers = workers;
  return options;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t i = 0; i < a.times.size(); ++i) {
    EXPECT_EQ(a.times[i], b.times[i]) << "run " << i;
  }
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_TRUE(a.samples[i] == b.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(a.code_bytes, b.code_bytes);
  EXPECT_EQ(a.verified_runs, b.verified_runs);
}

class EngineDeterminism
    : public ::testing::TestWithParam<Randomisation> {};

TEST_P(EngineDeterminism, ParallelMatchesSequential) {
  const CampaignConfig config = small_config(GetParam(), 9);
  const CampaignResult sequential = run_control_campaign(config);
  ASSERT_EQ(sequential.times.size(), 9u);

  // 4 workers over single-run shards: every worker crosses shard
  // boundaries and replays the input stream across skips.
  const CampaignResult parallel =
      exec::CampaignEngine(worker_options(4)).run(config);
  expect_identical(sequential, parallel);

  // 1 worker through the engine path must match too.
  const CampaignResult single =
      exec::CampaignEngine(worker_options(1)).run(config);
  expect_identical(sequential, single);
}

INSTANTIATE_TEST_SUITE_P(AllRandomisations, EngineDeterminism,
                         ::testing::Values(Randomisation::kNone,
                                           Randomisation::kDsr,
                                           Randomisation::kStatic,
                                           Randomisation::kHardware),
                         [](const auto& info) {
                           switch (info.param) {
                           case Randomisation::kNone: return "cots";
                           case Randomisation::kDsr: return "dsr";
                           case Randomisation::kDsrOnDemand:
                             return "dsr_ondemand";
                           case Randomisation::kStatic: return "static";
                           case Randomisation::kHardware: return "hwrand";
                           }
                           return "unknown";
                         });

TEST(CampaignEngine, AnalysisProtocolDeterminism) {
  // Pinned stress input (MBPTA conditions): the fixed_inputs replay path.
  CampaignConfig config = small_config(Randomisation::kDsr, 8);
  config.fixed_inputs = true;
  config.control.corrupt_rate = 1.0;
  const CampaignResult sequential = run_control_campaign(config);
  const CampaignResult parallel =
      exec::CampaignEngine(worker_options(3)).run(config);
  expect_identical(sequential, parallel);
  for (const RunSample& sample : parallel.samples) {
    EXPECT_TRUE(sample.corrupt_input) << "stress input pins the recovery path";
  }
}

TEST(CampaignEngine, WarmupInteraction) {
  // Warm-up activations shift the global activation indices, so they must
  // shift them identically for both execution styles.
  CampaignConfig config = small_config(Randomisation::kNone, 6);
  config.warmup_runs = 5;
  const CampaignResult sequential = run_control_campaign(config);
  const CampaignResult parallel =
      exec::CampaignEngine(worker_options(3)).run(config);
  expect_identical(sequential, parallel);

  // And they must actually shift the measurements: without warm-up the
  // derived input seeds differ.
  const CampaignResult no_warmup =
      run_control_campaign(small_config(Randomisation::kNone, 6));
  EXPECT_NE(sequential.times, no_warmup.times);
}

TEST(CampaignEngine, FewerRunsThanWorkers) {
  const CampaignConfig config = small_config(Randomisation::kNone, 3);
  const CampaignResult sequential = run_control_campaign(config);
  const CampaignResult parallel =
      exec::CampaignEngine(worker_options(8)).run(config);
  expect_identical(sequential, parallel);
}

TEST(CampaignEngine, EmptyCampaign) {
  const CampaignConfig config = small_config(Randomisation::kDsr, 0);
  const CampaignResult sequential = run_control_campaign(config);
  const CampaignResult parallel =
      exec::CampaignEngine(worker_options(4)).run(config);
  EXPECT_TRUE(parallel.times.empty());
  EXPECT_TRUE(parallel.samples.empty());
  EXPECT_EQ(parallel.code_bytes, sequential.code_bytes);
  EXPECT_GT(parallel.code_bytes, 0u) << "platform is still built";
  EXPECT_EQ(parallel.verified_runs, 0u);
}

TEST(CampaignEngine, ProgressAndShardSink) {
  const CampaignConfig config = small_config(Randomisation::kNone, 7);
  std::mutex mutex;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> progress;
  std::vector<exec::ShardRange> sunk_ranges;
  std::size_t sunk_times = 0;

  exec::EngineOptions options = worker_options(2);
  options.progress = [&](std::uint64_t done, std::uint64_t total) {
    std::lock_guard<std::mutex> lock(mutex);
    progress.emplace_back(done, total);
  };
  options.shard_sink = [&](const exec::ShardRange& range,
                           std::span<const double> times) {
    sunk_ranges.push_back(range); // sink calls are serialised by the engine
    sunk_times += times.size();
  };
  const CampaignResult result = exec::CampaignEngine(options).run(config);
  ASSERT_EQ(result.times.size(), 7u);

  ASSERT_FALSE(progress.empty());
  EXPECT_EQ(progress.back().first, 7u) << "final progress: all runs done";
  for (const auto& [done, total] : progress) {
    EXPECT_EQ(total, 7u);
    EXPECT_LE(done, total);
  }

  // The sunk shards partition [0, 7) and carry every time exactly once.
  EXPECT_EQ(sunk_times, 7u);
  std::sort(sunk_ranges.begin(), sunk_ranges.end(),
            [](const auto& a, const auto& b) { return a.begin < b.begin; });
  expect_valid_plan(sunk_ranges, 7);
}

// ---------------------------------------------------------------------------
// Cooperative cancellation.
// ---------------------------------------------------------------------------

TEST(CampaignEngine, FaultCancelsTheRestOfThePoolPromptly) {
  // A poisoned scenario: the runner throws while setting up run 0.  The
  // fault must cancel the whole pool — healthy workers stop at their next
  // per-run check instead of draining every remaining shard before the
  // rethrow.
  CampaignConfig config = small_config(Randomisation::kNone, 400);
  config.fault_at_run = 0;

  exec::EngineOptions options = worker_options(4);
  std::mutex mutex;
  std::uint64_t completed = 0;
  options.progress = [&](std::uint64_t done, std::uint64_t) {
    std::lock_guard<std::mutex> lock(mutex);
    completed = std::max(completed, done);
  };
  EXPECT_THROW(exec::CampaignEngine(options).run(config), std::runtime_error);
  // Generous bound: each healthy worker may finish the run it is on plus
  // at most one claimed shard's worth before observing the fault, nowhere
  // near the 400-run campaign the old code would have drained.
  EXPECT_LT(completed, 200u)
      << "healthy workers drained the queue after the fault";
}

TEST(CampaignEngine, FaultInjectionAlsoFaultsSequentialCampaigns) {
  CampaignConfig config = small_config(Randomisation::kNone, 4);
  config.fault_at_run = 2;
  EXPECT_THROW(run_control_campaign(config), std::runtime_error);
  EXPECT_THROW(exec::CampaignEngine(worker_options(1)).run(config),
               std::runtime_error);
}

TEST(CampaignEngine, ExternalStopTokenCancelsBeforeAnyRun) {
  std::stop_source source;
  source.request_stop(); // fired before the campaign starts

  exec::EngineOptions options = worker_options(4);
  options.stop = source.get_token();
  std::mutex mutex;
  std::uint64_t completed = 0;
  options.progress = [&](std::uint64_t done, std::uint64_t) {
    std::lock_guard<std::mutex> lock(mutex);
    completed = std::max(completed, done);
  };
  const CampaignConfig config = small_config(Randomisation::kNone, 50);
  EXPECT_THROW(exec::CampaignEngine(options).run(config),
               exec::CampaignCancelled);
  EXPECT_EQ(completed, 0u) << "workers must not claim work after the stop";
}

TEST(CampaignEngine, ExternalStopTokenCancelsMidCampaign) {
  std::stop_source source;
  exec::EngineOptions options = worker_options(2);
  options.stop = source.get_token();
  options.progress = [&](std::uint64_t done, std::uint64_t) {
    if (done >= 3) {
      source.request_stop();
    }
  };
  const CampaignConfig config = small_config(Randomisation::kNone, 60);
  EXPECT_THROW(exec::CampaignEngine(options).run(config),
               exec::CampaignCancelled);
}

TEST(CampaignEngine, UnfiredStopTokenLeavesResultsIdentical) {
  const CampaignConfig config = small_config(Randomisation::kDsr, 6);
  std::stop_source source; // never fired
  exec::EngineOptions options = worker_options(3);
  options.stop = source.get_token();
  const CampaignResult with_token = exec::CampaignEngine(options).run(config);
  const CampaignResult without =
      exec::CampaignEngine(worker_options(3)).run(config);
  expect_identical(with_token, without);
}

TEST(CampaignEngine, ResolvedWorkersClampsToShards) {
  exec::CampaignEngine engine(worker_options(8));
  EXPECT_EQ(engine.resolved_workers(3), 3u);
  EXPECT_EQ(engine.resolved_workers(0), 1u);
  EXPECT_EQ(engine.resolved_workers(1000), 8u);
}

// ---------------------------------------------------------------------------
// CampaignRunner stage API.
// ---------------------------------------------------------------------------

TEST(CampaignRunner, RejectsOutOfRangeAndNonAscendingIndices) {
  CampaignRunner runner(small_config(Randomisation::kNone, 4));
  EXPECT_THROW(runner.setup(4), std::invalid_argument);
  runner.setup(1);
  runner.execute();
  (void)runner.collect();
  EXPECT_THROW(runner.setup(1), std::invalid_argument);
  EXPECT_THROW(runner.setup(0), std::invalid_argument);
  EXPECT_NO_THROW(runner.setup(3)); // skipping forward is allowed
}

TEST(CampaignRunner, StagesMustFollowSetup) {
  CampaignRunner runner(small_config(Randomisation::kNone, 2));
  EXPECT_THROW(runner.execute(), std::logic_error);
  EXPECT_THROW(runner.collect(), std::logic_error);
  runner.setup(0);
  EXPECT_THROW(runner.collect(), std::logic_error) << "not yet executed";
  runner.execute();
  const RunSample sample = runner.collect();
  EXPECT_GT(sample.uoa_cycles, 0.0);
  EXPECT_EQ(runner.verified_runs(), 1u);
}

TEST(CampaignRunner, SparseIndicesMatchDenseExecution) {
  // A worker that owns a sparse ascending subset must reproduce exactly
  // the runs a dense execution produces at those indices.
  const CampaignConfig config = small_config(Randomisation::kDsr, 8);
  const CampaignResult dense = run_control_campaign(config);

  CampaignRunner sparse(config);
  for (std::uint64_t index : {1ull, 2ull, 5ull, 7ull}) {
    const RunSample sample = sparse.run(index);
    EXPECT_EQ(sample.uoa_cycles, dense.times[index]) << "run " << index;
    EXPECT_TRUE(sample == dense.samples[index]) << "run " << index;
  }
}

} // namespace
