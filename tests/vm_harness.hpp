// Shared test fixture: build a Program, link it, load it, run it on a
// LEON3-configured machine.
#pragma once

#include "isa/builder.hpp"
#include "isa/linker.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "vm/vm.hpp"

namespace proxima::test {

inline constexpr std::uint32_t kStackTop = 0x4080'0000;

struct TestMachine {
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy;
  vm::Vm cpu;
  isa::LinkedImage image;

  explicit TestMachine(const isa::Program& program,
                       const isa::LinkOptions& options = {},
                       vm::VmConfig vm_config = {})
      : hierarchy(mem::leon3_hierarchy_config()),
        cpu(memory, hierarchy, vm_config),
        image(isa::link(program, options)) {
    image.load_into(memory);
    cpu.reset(image.entry_addr(), kStackTop);
  }

  vm::RunResult run() { return cpu.run(); }

  std::uint32_t word_at(const std::string& symbol, std::uint32_t offset = 0) {
    return memory.read_u32(image.symbol(symbol).addr + offset);
  }
  double f64_at(const std::string& symbol, std::uint32_t offset = 0) {
    return memory.read_f64(image.symbol(symbol).addr + offset);
  }
};

} // namespace proxima::test
