// Full-pipeline integration tests: application -> DSR pass -> link ->
// RTOS/VM execution -> trace -> MBPTA, plus cross-cutting properties that
// only hold when every layer cooperates.
#include "casestudy/campaign.hpp"
#include "casestudy/control_task.hpp"
#include "casestudy/image_task.hpp"
#include "core/dsr_pass.hpp"
#include "core/dsr_runtime.hpp"
#include "core/static_rand.hpp"
#include "isa/linker.hpp"
#include "mbpta/mbpta.hpp"
#include "mem/hierarchy.hpp"
#include "rng/mwc.hpp"
#include "rtos/hypervisor.hpp"
#include "trace/report.hpp"
#include "trace/trace.hpp"
#include "vm/vm.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace proxima;
using namespace proxima::casestudy;

constexpr std::uint32_t kStackTop = 0x4080'0000;

// ---------------------------------------------------------------------------
// The central cross-layer property: for ANY randomisation technology and
// ANY seed, the application's functional outputs are bit-identical.
// ---------------------------------------------------------------------------

class RandomisationSweep
    : public ::testing::TestWithParam<std::tuple<Randomisation, int>> {};

TEST_P(RandomisationSweep, FunctionalOutputsInvariant) {
  const auto [randomisation, seed] = GetParam();
  CampaignConfig config;
  config.runs = 5;
  config.randomisation = randomisation;
  config.layout_seed = static_cast<std::uint64_t>(seed) * 7919;
  config.verify_outputs = true; // throws on any divergence
  const CampaignResult result = run_control_campaign(config);
  EXPECT_EQ(result.verified_runs, 5u);
}

INSTANTIATE_TEST_SUITE_P(
    AllTechnologies, RandomisationSweep,
    ::testing::Combine(::testing::Values(Randomisation::kNone,
                                         Randomisation::kDsr,
                                         Randomisation::kStatic,
                                         Randomisation::kHardware),
                       ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// DSR + image task: the pass/runtime must handle the second application of
// the case study too (the paper applied DSR to both partitions).
// ---------------------------------------------------------------------------

TEST(Integration, DsrOnImageTaskPreservesOutputs) {
  ImageParams params;
  params.grid = 4;
  params.lens_px = 8;
  params.modes = 8;
  params.window = 3;

  isa::Program program = build_image_program(params);
  dsr::apply_pass(program);
  const isa::LinkedImage image = isa::link(program);

  for (std::uint64_t seed : {11, 22, 33}) {
    mem::GuestMemory memory;
    mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
    hierarchy.set_strict_coherence(true);
    vm::Vm cpu(memory, hierarchy);
    image.load_into(memory);
    rng::Mwc layout_rng(seed);
    dsr::DsrRuntime runtime(memory, hierarchy, image, layout_rng, {});
    runtime.initialise();
    runtime.attach(cpu);

    rng::Mwc input_rng(seed + 100);
    const ImageInputs inputs = make_image_inputs(input_rng, params);
    stage_image_inputs(memory, image, inputs);
    hierarchy.flush_all();
    cpu.reset(runtime.entry_address(), kStackTop);
    ASSERT_EQ(cpu.run().stop, vm::RunResult::Stop::kHalt);
    EXPECT_EQ(read_image_outputs(memory, image, params),
              reference_image(params, inputs))
        << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// The whole measurement stack under the hypervisor: partitions, reboots,
// traces, MBPTA — one pass through everything.
// ---------------------------------------------------------------------------

class MeasuredControl final : public rtos::PartitionApp {
public:
  MeasuredControl(mem::GuestMemory& memory, mem::MemoryHierarchy& hierarchy)
      : memory_(memory), hierarchy_(hierarchy), layout_rng_(611085),
        input_rng_(2017) {
    isa::Program program = build_control_program(params_);
    trace::instrument_function(program, "control_step");
    dsr::apply_pass(program);
    image_ = isa::link(program,
                       control_layout(params_, Layout::kCotsBad, kStackTop));
    image_.load_into(memory_);
    runtime_ = std::make_unique<dsr::DsrRuntime>(memory_, hierarchy_, image_,
                                                 layout_rng_,
                                                 dsr::RuntimeOptions{});
    runtime_->initialise();
    inputs_ = initial_control_inputs(params_);
  }

  std::uint32_t entry_address() override { return runtime_->entry_address(); }
  std::uint32_t stack_top() override { return kStackTop; }
  void before_activation(std::uint64_t) override {
    refresh_control_inputs(input_rng_, params_, inputs_);
    for (const auto& [addr, len] :
         stage_control_inputs(memory_, image_, inputs_)) {
      hierarchy_.note_memory_written(addr, len);
      hierarchy_.invalidate_range(addr, len);
    }
  }
  void reboot() override { runtime_->rerandomise(); }

  dsr::DsrRuntime& runtime() { return *runtime_; }

private:
  mem::GuestMemory& memory_;
  mem::MemoryHierarchy& hierarchy_;
  rng::Mwc layout_rng_;
  rng::Mwc input_rng_;
  ControlParams params_;
  isa::LinkedImage image_;
  std::unique_ptr<dsr::DsrRuntime> runtime_;
  ControlInputs inputs_;
};

TEST(Integration, HypervisorCampaignFeedsMbpta) {
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  vm::Vm cpu(memory, hierarchy);
  trace::TraceBuffer buffer;
  buffer.attach(cpu);

  MeasuredControl app(memory, hierarchy);
  rtos::Hypervisor hypervisor(
      cpu, hierarchy,
      rtos::HypervisorConfig{.minor_frame_ms = 100, .cycles_per_ms = 50000});
  hypervisor.add_partition(
      rtos::PartitionConfig{.name = "control",
                            .period_ms = 100, // accelerated campaign
                            .criticality = rtos::Criticality::kHigh,
                            .reboot_after_each_activation = true},
      app);
  const auto records = hypervisor.run_frames(40);
  ASSERT_EQ(records.size(), 40u);
  for (const rtos::ActivationRecord& record : records) {
    EXPECT_TRUE(record.halted);
    EXPECT_FALSE(record.overran);
  }
  // The trace decodes into one UoA time per activation...
  const std::vector<double> times = trace::extract_execution_times(buffer);
  ASSERT_EQ(times.size(), 40u);
  // ...whose variability is real (layouts changed every reboot)...
  EXPECT_GT(mbpta::summarise(times).stddev, 0.0);
  EXPECT_GE(app.runtime().stats().relocations, 40u * 14u);
  // ...and the binary trace round-trips GRMON-style.
  const trace::TraceBuffer reloaded =
      trace::TraceBuffer::deserialise(buffer.serialise());
  EXPECT_EQ(trace::extract_execution_times(reloaded), times);
}

// ---------------------------------------------------------------------------
// Failure injection across the stack.
// ---------------------------------------------------------------------------

TEST(Integration, MissingInvalidationRoutineIsFatalUnderStrictChecking) {
  // A partition reboot that re-randomises WITHOUT the invalidation routine
  // leaves stale code/table lines in the warm caches; the strict checker
  // must catch the first stale fetch.  (The campaign driver's own protocol
  // never hits this because it wipes the caches before each warm-up — this
  // is exactly the hazard the routine exists to close in other flows.)
  const ControlParams params;
  isa::Program program = build_control_program(params);
  dsr::apply_pass(program);
  const isa::LinkedImage image =
      isa::link(program, control_layout(params, Layout::kCotsBad, kStackTop));
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  hierarchy.set_strict_coherence(true);
  vm::Vm cpu(memory, hierarchy);
  image.load_into(memory);
  rng::Mwc random(5);
  dsr::RuntimeOptions options;
  options.run_invalidation_routine = false; // inject the bug
  dsr::DsrRuntime runtime(memory, hierarchy, image, random, options);
  runtime.initialise();
  runtime.attach(cpu);

  rng::Mwc input_rng(6);
  ControlInputs inputs = initial_control_inputs(params);
  refresh_control_inputs(input_rng, params, inputs);
  stage_control_inputs(memory, image, inputs);
  hierarchy.flush_all();
  cpu.reset(runtime.entry_address(), kStackTop);
  ASSERT_EQ(cpu.run().stop, vm::RunResult::Stop::kHalt); // first run fine

  runtime.rerandomise(); // reboot without flushing: stale lines remain
  cpu.reset(runtime.entry_address(), kStackTop);
  EXPECT_THROW(cpu.run(), mem::CoherenceError);
}

TEST(Integration, CampaignDetectsFunctionalDivergence) {
  // Sabotage detection: corrupting a data table after link must be caught
  // by the golden-model comparison, never silently measured.
  CampaignConfig config;
  config.runs = 3;
  // Make the golden model disagree by tampering with params consistency:
  // reference_control uses params.command_limit but the image embeds the
  // build-time constant.  Build with one limit, verify with another.
  isa::Program program = build_control_program(config.control);
  // (direct API misuse is prevented by the campaign owning both sides, so
  // emulate the divergence at the lowest level instead)
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  vm::Vm cpu(memory, hierarchy);
  const isa::LinkedImage image = isa::link(
      program, control_layout(config.control, Layout::kCotsBad, kStackTop));
  image.load_into(memory);
  rng::Mwc input_rng(1);
  ControlInputs inputs = initial_control_inputs(config.control);
  refresh_control_inputs(input_rng, config.control, inputs);
  stage_control_inputs(memory, image, inputs);
  // Tamper with the matrix AFTER staging.
  memory.write_u32(image.symbol("cs_matrix").addr, 0xdeadbeef);
  hierarchy.flush_all();
  cpu.reset(image.entry_addr(), kStackTop);
  cpu.run();
  EXPECT_NE(read_control_outputs(memory, image, config.control),
            reference_control(config.control, inputs));
}

// ---------------------------------------------------------------------------
// Static randomisation as a re-link generator (TASA-style).
// ---------------------------------------------------------------------------

TEST(Integration, StaticRandomLayoutsAreDistinctAndValid) {
  isa::Program program = build_control_program(ControlParams{});
  rng::Mwc random(99);
  std::set<std::uint32_t> entry_addresses;
  for (int i = 0; i < 10; ++i) {
    const isa::LinkOptions options = dsr::random_layout(program, random);
    const isa::LinkedImage image = isa::link(program, options);
    entry_addresses.insert(image.entry_addr());
    // Every function placed inside the static-randomisation code region.
    for (const isa::FunctionRecord& record : image.functions()) {
      EXPECT_GE(record.addr, 0x4100'0000u);
      EXPECT_LT(record.addr, 0x4300'0000u);
    }
  }
  EXPECT_GT(entry_addresses.size(), 5u) << "layouts must differ";
}

// ---------------------------------------------------------------------------
// MBPTA end-to-end sanity on a real (small) campaign.
// ---------------------------------------------------------------------------

TEST(Integration, SmallAnalysisCampaignYieldsUsablePwcet) {
  CampaignConfig config;
  config.runs = 250;
  config.randomisation = Randomisation::kDsr;
  config.fixed_inputs = true;
  config.control.corrupt_rate = 1.0;
  const CampaignResult result = run_control_campaign(config);

  mbpta::MbptaConfig mbpta_config;
  mbpta_config.block_size = 10;
  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(result.times, mbpta_config);
  EXPECT_TRUE(analysis.applicable());
  const double pwcet = analysis.pwcet(1e-15);
  EXPECT_GT(pwcet, analysis.summary.max);
  // Far tighter than the +20% industrial margin.
  EXPECT_LT(pwcet, analysis.summary.max * 1.20);
  // And the report plumbing agrees.
  const trace::TimingReport report =
      trace::TimingReport::from_times(result.times);
  EXPECT_EQ(report.moet(), analysis.summary.max);
}

} // namespace
