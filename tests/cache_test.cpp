// Unit tests for the set-associative cache model (LEON3 geometries).
#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using proxima::mem::AccessResult;
using proxima::mem::Cache;
using proxima::mem::CacheConfig;
using proxima::mem::Placement;
using proxima::mem::Replacement;
using proxima::mem::WritePolicy;

CacheConfig small_lru_config() {
  // 4 sets x 2 ways x 16B lines = 128 bytes: easy to reason about.
  return CacheConfig{.name = "test",
                     .size_bytes = 128,
                     .line_bytes = 16,
                     .ways = 2,
                     .replacement = Replacement::kLru,
                     .placement = Placement::kModulo,
                     .write_policy = WritePolicy::kWriteBackAllocate};
}

TEST(CacheGeometry, Leon3Configs) {
  const CacheConfig il1{.name = "IL1",
                        .size_bytes = 16 * 1024,
                        .line_bytes = 32,
                        .ways = 4};
  EXPECT_EQ(il1.sets(), 128u);
  EXPECT_EQ(il1.way_bytes(), 4096u);

  const CacheConfig l2{.name = "L2",
                       .size_bytes = 32 * 1024,
                       .line_bytes = 32,
                       .ways = 1};
  EXPECT_EQ(l2.sets(), 1024u);
  EXPECT_EQ(l2.way_bytes(), 32u * 1024u); // DSR offset range (III.B.4)
}

TEST(CacheGeometry, RejectsInvalidConfigs) {
  CacheConfig bad = small_lru_config();
  bad.line_bytes = 24; // not a power of two
  EXPECT_THROW(Cache{bad}, std::invalid_argument);

  bad = small_lru_config();
  bad.ways = 0;
  EXPECT_THROW(Cache{bad}, std::invalid_argument);

  bad = small_lru_config();
  bad.size_bytes = 100; // not multiple of line*ways
  EXPECT_THROW(Cache{bad}, std::invalid_argument);
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(small_lru_config());
  const AccessResult first = cache.read(0x40);
  EXPECT_FALSE(first.hit);
  EXPECT_TRUE(first.filled);
  const AccessResult second = cache.read(0x4c); // same 16B line
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(Cache, SetIndexModulo) {
  Cache cache(small_lru_config());
  // 4 sets, 16B lines: set = (addr/16) % 4.
  EXPECT_EQ(cache.set_index(0x00), 0u);
  EXPECT_EQ(cache.set_index(0x10), 1u);
  EXPECT_EQ(cache.set_index(0x20), 2u);
  EXPECT_EQ(cache.set_index(0x30), 3u);
  EXPECT_EQ(cache.set_index(0x40), 0u);
}

TEST(Cache, LruEvictsOldest) {
  Cache cache(small_lru_config());
  // Three lines mapping to set 0 in a 2-way cache: 0x00, 0x40, 0x80.
  cache.read(0x00);
  cache.read(0x40);
  cache.read(0x00); // refresh 0x00; LRU is now 0x40
  cache.read(0x80); // evicts 0x40
  EXPECT_TRUE(cache.contains(0x00));
  EXPECT_FALSE(cache.contains(0x40));
  EXPECT_TRUE(cache.contains(0x80));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, WriteBackSetsDirtyAndWritesBackOnEviction) {
  Cache cache(small_lru_config());
  cache.write(0x00); // allocate dirty
  EXPECT_TRUE(cache.line_dirty(0x00));
  cache.read(0x40);
  const AccessResult evicting = cache.read(0x80); // evicts 0x00 (dirty)
  ASSERT_TRUE(evicting.writeback_addr.has_value());
  EXPECT_EQ(*evicting.writeback_addr, 0x00u);
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteThroughNoAllocateDoesNotFillOnMiss) {
  CacheConfig config = small_lru_config();
  config.write_policy = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(config);
  const AccessResult miss = cache.write(0x00);
  EXPECT_FALSE(miss.hit);
  EXPECT_FALSE(miss.filled);
  EXPECT_FALSE(cache.contains(0x00));
  EXPECT_EQ(cache.stats().write_through, 1u);

  cache.read(0x00); // fill via read
  const AccessResult hit = cache.write(0x04);
  EXPECT_TRUE(hit.hit);
  EXPECT_EQ(cache.stats().write_through, 2u); // still forwarded downstream
  EXPECT_FALSE(cache.line_dirty(0x00));       // write-through: never dirty
}

TEST(Cache, DirectMappedConflict) {
  CacheConfig config = small_lru_config();
  config.ways = 1;
  config.size_bytes = 64; // 4 sets x 1 way x 16B
  Cache cache(config);
  cache.read(0x00);
  cache.read(0x40); // same set, evicts
  EXPECT_FALSE(cache.contains(0x00));
  EXPECT_TRUE(cache.contains(0x40));
}

TEST(Cache, InvalidateLineReturnsDirtyAddress) {
  Cache cache(small_lru_config());
  cache.write(0x20);
  const auto wb = cache.invalidate_line(0x24); // same line
  ASSERT_TRUE(wb.has_value());
  EXPECT_EQ(*wb, 0x20u);
  EXPECT_FALSE(cache.contains(0x20));
  EXPECT_EQ(cache.invalidate_line(0x20), std::nullopt); // already gone
}

TEST(Cache, InvalidateRangeCoversPartialLines) {
  Cache cache(small_lru_config());
  cache.read(0x00);
  cache.read(0x10);
  cache.read(0x20);
  // Range [0x08, 0x18) touches lines 0x00 and 0x10 only.
  cache.invalidate_range(0x08, 0x10);
  EXPECT_FALSE(cache.contains(0x00));
  EXPECT_FALSE(cache.contains(0x10));
  EXPECT_TRUE(cache.contains(0x20));
}

TEST(Cache, InvalidateAllCollectsWritebacks) {
  Cache cache(small_lru_config());
  cache.write(0x00);
  cache.write(0x10);
  cache.read(0x20);
  std::vector<std::uint32_t> writebacks;
  cache.invalidate_all(&writebacks);
  EXPECT_EQ(writebacks.size(), 2u);
  EXPECT_FALSE(cache.contains(0x00));
  EXPECT_FALSE(cache.contains(0x20));
}

TEST(Cache, StaleLineDetection) {
  Cache cache(small_lru_config());
  cache.read(0x00);
  cache.mark_stale(0x04, 4); // within the cached line
  const AccessResult result = cache.read(0x00);
  EXPECT_TRUE(result.hit);
  EXPECT_TRUE(result.stale_hit);
  EXPECT_EQ(cache.stats().stale_hits, 1u);
}

TEST(Cache, StaleClearedByRefill) {
  Cache cache(small_lru_config());
  cache.read(0x00);
  cache.mark_stale(0x00, 16);
  cache.invalidate_line(0x00);
  const AccessResult refill = cache.read(0x00);
  EXPECT_FALSE(refill.hit);
  const AccessResult hit = cache.read(0x00);
  EXPECT_TRUE(hit.hit);
  EXPECT_FALSE(hit.stale_hit); // refill fetched fresh memory
}

TEST(Cache, StaleOnUncachedRangeIsNoop) {
  Cache cache(small_lru_config());
  cache.mark_stale(0x1000, 64); // nothing cached there
  cache.read(0x1000);
  const AccessResult hit = cache.read(0x1000);
  EXPECT_TRUE(hit.hit);
  EXPECT_FALSE(hit.stale_hit);
}

TEST(Cache, WriteClearsStaleness) {
  // A write-through store updates both line and memory: line is fresh again.
  CacheConfig config = small_lru_config();
  config.write_policy = WritePolicy::kWriteThroughNoAllocate;
  Cache cache(config);
  cache.read(0x00);
  cache.mark_stale(0x00, 16);
  cache.write(0x00);
  const AccessResult hit = cache.read(0x00);
  EXPECT_TRUE(hit.hit);
  EXPECT_FALSE(hit.stale_hit);
}

TEST(Cache, RandomPlacementChangesWithSeed) {
  CacheConfig config{.name = "hw-rand",
                     .size_bytes = 16 * 1024,
                     .line_bytes = 32,
                     .ways = 4,
                     .replacement = Replacement::kLru,
                     .placement = Placement::kRandomHash,
                     .write_policy = WritePolicy::kWriteBackAllocate};
  Cache cache(config);
  cache.reseed(1);
  std::vector<std::uint32_t> first;
  for (std::uint32_t addr = 0; addr < 0x1000; addr += 32) {
    first.push_back(cache.set_index(addr));
  }
  cache.reseed(2);
  std::vector<std::uint32_t> second;
  for (std::uint32_t addr = 0; addr < 0x1000; addr += 32) {
    second.push_back(cache.set_index(addr));
  }
  EXPECT_NE(first, second);

  // Placement is still a function: same seed, same mapping.
  cache.reseed(1);
  for (std::size_t i = 0; i < first.size(); ++i) {
    ASSERT_EQ(cache.set_index(static_cast<std::uint32_t>(i) * 32), first[i]);
  }
}

TEST(Cache, RandomPlacementSpreadsSets) {
  CacheConfig config{.name = "hw-rand",
                     .size_bytes = 16 * 1024,
                     .line_bytes = 32,
                     .ways = 4,
                     .replacement = Replacement::kLru,
                     .placement = Placement::kRandomHash,
                     .write_policy = WritePolicy::kWriteBackAllocate};
  Cache cache(config);
  cache.reseed(42);
  std::set<std::uint32_t> sets;
  for (std::uint32_t addr = 0; addr < 0x10000; addr += 32) {
    sets.insert(cache.set_index(addr));
  }
  EXPECT_EQ(sets.size(), 128u); // all sets reachable
}

TEST(Cache, RandomReplacementEventuallyEvictsEveryWay) {
  CacheConfig config = small_lru_config();
  config.replacement = Replacement::kRandom;
  Cache cache(config);
  cache.reseed(7);
  // Fill set 0 with 0x00 and 0x40, then stream conflicting lines; random
  // replacement must hit both resident ways over time.
  cache.read(0x00);
  cache.read(0x40);
  bool evicted_first = false;
  bool evicted_second = false;
  std::uint32_t fresh = 0x80;
  for (int i = 0; i < 64 && !(evicted_first && evicted_second); ++i) {
    cache.read(fresh);
    evicted_first = evicted_first || !cache.contains(0x00);
    evicted_second = evicted_second || !cache.contains(0x40);
    fresh += 0x40;
  }
  EXPECT_TRUE(evicted_first);
  EXPECT_TRUE(evicted_second);
}

TEST(Cache, StatsResetKeepsContents) {
  Cache cache(small_lru_config());
  cache.read(0x00);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_TRUE(cache.contains(0x00));
}

// Parameterised sweep: miss count equals unique-line count on a cold
// streaming pass for any geometry (basic sanity across configurations).
struct GeometryParam {
  std::uint32_t size;
  std::uint32_t line;
  std::uint32_t ways;
};

class CacheGeometrySweep : public ::testing::TestWithParam<GeometryParam> {};

TEST_P(CacheGeometrySweep, ColdStreamMissesOncePerLine) {
  const GeometryParam p = GetParam();
  Cache cache(CacheConfig{.name = "sweep",
                          .size_bytes = p.size,
                          .line_bytes = p.line,
                          .ways = p.ways,
                          .replacement = Replacement::kLru,
                          .placement = Placement::kModulo,
                          .write_policy = WritePolicy::kWriteBackAllocate});
  const std::uint32_t span = p.size; // exactly fits: no capacity misses
  for (std::uint32_t addr = 0; addr < span; addr += 4) {
    cache.read(addr);
  }
  EXPECT_EQ(cache.stats().misses, span / p.line);
  EXPECT_EQ(cache.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(GeometryParam{16 * 1024, 32, 4}, // IL1/DL1
                      GeometryParam{32 * 1024, 32, 1}, // L2
                      GeometryParam{8 * 1024, 16, 2},
                      GeometryParam{4 * 1024, 64, 8},
                      GeometryParam{1024, 32, 1}));

} // namespace
