// Tests for the space case study: functional correctness of both tasks
// against the host golden models, the engineered layout properties, and
// the measurement campaign protocol (Section IV).
#include "casestudy/campaign.hpp"
#include "casestudy/control_task.hpp"
#include "casestudy/image_task.hpp"
#include "isa/linker.hpp"
#include "mbpta/descriptive.hpp"
#include "mem/hierarchy.hpp"
#include "rng/mwc.hpp"
#include "trace/trace.hpp"
#include "vm/vm.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace {

using namespace proxima;
using namespace proxima::casestudy;

constexpr std::uint32_t kStackTop = 0x4080'0000;

// ---------------------------------------------------------------------------
// Control task: guest vs golden model.
// ---------------------------------------------------------------------------

struct ControlRun {
  ControlOutputs guest;
  ControlOutputs golden;
};

ControlRun run_control_once(const ControlParams& params, std::uint64_t seed,
                            Layout layout = Layout::kCotsBad) {
  isa::Program program = build_control_program(params);
  const isa::LinkedImage image =
      isa::link(program, control_layout(params, layout, kStackTop));
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  vm::Vm cpu(memory, hierarchy);
  image.load_into(memory);

  rng::Mwc random(seed);
  ControlInputs inputs = initial_control_inputs(params);
  refresh_control_inputs(random, params, inputs);
  stage_control_inputs(memory, image, inputs);
  hierarchy.flush_all();
  cpu.reset(image.entry_addr(), kStackTop);
  const vm::RunResult result = cpu.run();
  EXPECT_EQ(result.stop, vm::RunResult::Stop::kHalt);

  return ControlRun{read_control_outputs(memory, image, params),
                    reference_control(params, inputs)};
}

TEST(ControlTask, GuestMatchesGoldenModel) {
  for (std::uint64_t seed : {1, 7, 42}) {
    const ControlRun run = run_control_once(ControlParams{}, seed);
    EXPECT_EQ(run.guest, run.golden) << "seed " << seed;
  }
}

TEST(ControlTask, CorruptInputTriggersRecovery) {
  ControlParams params;
  params.corrupt_rate = 1.0;
  const ControlRun run = run_control_once(params, 3);
  EXPECT_EQ(run.guest, run.golden);
  EXPECT_EQ(run.guest.recoveries, 1u);
  EXPECT_NE(run.guest.recovery_accumulator, 0u);
  EXPECT_EQ(run.guest.recovery_mirror, run.guest.recovery_accumulator);
  EXPECT_EQ(run.guest.packets_ok, params.packet_count() - 1);
}

TEST(ControlTask, CleanInputValidatesAllPackets) {
  ControlParams params;
  params.corrupt_rate = 0.0;
  const ControlRun run = run_control_once(params, 4);
  EXPECT_EQ(run.guest, run.golden);
  EXPECT_EQ(run.guest.recoveries, 0u);
  EXPECT_EQ(run.guest.packets_ok, params.packet_count());
  EXPECT_EQ(run.guest.recovery_mirror, 0u);
}

TEST(ControlTask, CommandsRespectSaturationLimit) {
  ControlParams params;
  const ControlRun run = run_control_once(params, 9);
  for (const double command : run.guest.commands) {
    EXPECT_LE(std::fabs(command), params.command_limit + 1e-12);
  }
}

TEST(ControlTask, NeutralLayoutIsFunctionallyIdentical) {
  const ControlRun bad = run_control_once(ControlParams{}, 5, Layout::kCotsBad);
  const ControlRun neutral =
      run_control_once(ControlParams{}, 5, Layout::kNeutral);
  EXPECT_EQ(bad.guest, neutral.guest); // layout never changes results
}

TEST(ControlTask, ParameterValidation) {
  ControlParams params;
  params.telemetry_bytes = 13; // not a word multiple
  EXPECT_THROW(build_control_program(params), std::invalid_argument);
  params = ControlParams{};
  params.packet_words = 100; // not whole blocks
  EXPECT_THROW(build_control_program(params), std::invalid_argument);
  params = ControlParams{};
  params.protocol_block = 99;
  EXPECT_THROW(build_control_program(params), std::invalid_argument);
  params = ControlParams{};
  params.telemetry_window = params.telemetry_bytes + 1024;
  EXPECT_THROW(build_control_program(params), std::invalid_argument);
}

TEST(ControlTask, LayoutRequiresAlignedStack) {
  EXPECT_THROW(control_layout(ControlParams{}, Layout::kCotsBad, 0x40800100),
               std::invalid_argument);
}

TEST(ControlTask, CotsBadLayoutPinsTheMirrorCongruence) {
  // The engineered "bad and rare" property: the telemetry mirror cell and
  // the recovery progress word share an L2 set under kCotsBad, and do not
  // under kNeutral.
  const ControlParams params;
  const ControlStackInfo stack;
  const auto set_of = [](std::uint32_t addr) { return (addr / 32) % 1024; };
  const std::uint32_t progress_set = set_of(stack.progress_addr(kStackTop));

  isa::Program program = build_control_program(params);
  const isa::LinkedImage bad =
      isa::link(program, control_layout(params, Layout::kCotsBad, kStackTop));
  EXPECT_EQ(set_of(bad.symbol("cs_mirror").addr), progress_set);

  const isa::LinkedImage neutral =
      isa::link(program, control_layout(params, Layout::kNeutral, kStackTop));
  EXPECT_NE(set_of(neutral.symbol("cs_mirror").addr), progress_set);
}

TEST(ControlTask, StagingWritesExactlyTheDirtyState) {
  const ControlParams params;
  isa::Program program = build_control_program(params);
  const isa::LinkedImage image =
      isa::link(program, control_layout(params, Layout::kCotsBad, kStackTop));
  mem::GuestMemory memory;
  image.load_into(memory);

  rng::Mwc random(11);
  ControlInputs inputs = initial_control_inputs(params);
  refresh_control_inputs(random, params, inputs);
  const auto staged = stage_control_inputs(memory, image, inputs);
  EXPECT_GE(staged.size(), 4u); // wavefront, chunk, block, status, mirror

  // Memory now mirrors the full effective state.
  const std::uint32_t telemetry = image.symbol("cs_telemetry").addr;
  for (std::uint32_t i = 0; i < params.telemetry_bytes; ++i) {
    ASSERT_EQ(memory.read_u8(telemetry + i), inputs.telemetry[i]) << i;
  }
  const std::uint32_t packets = image.symbol("cs_packets").addr;
  for (std::uint32_t w = 0; w < params.packet_words; ++w) {
    ASSERT_EQ(memory.read_u32(packets + 4 * w), inputs.packets[w]) << w;
  }
}

TEST(ControlTask, RefreshRotatesTheChunkCursor) {
  const ControlParams params;
  rng::Mwc random(13);
  ControlInputs inputs = initial_control_inputs(params);
  refresh_control_inputs(random, params, inputs);
  EXPECT_EQ(inputs.telemetry_dirty_offset, 0u);
  refresh_control_inputs(random, params, inputs);
  EXPECT_EQ(inputs.telemetry_dirty_offset, params.telemetry_chunk);
  // Full rotation wraps.
  for (std::uint32_t i = 2; i < params.telemetry_bytes / params.telemetry_chunk;
       ++i) {
    refresh_control_inputs(random, params, inputs);
  }
  refresh_control_inputs(random, params, inputs);
  EXPECT_EQ(inputs.telemetry_dirty_offset, 0u);
}

// ---------------------------------------------------------------------------
// Image processing task.
// ---------------------------------------------------------------------------

ImageParams small_image_params() {
  ImageParams params;
  params.grid = 4;
  params.lens_px = 8;
  params.modes = 8;
  params.window = 3;
  return params;
}

struct ImageRun {
  ImageOutputs guest;
  ImageOutputs golden;
};

ImageRun run_image_once(const ImageParams& params, std::uint64_t seed) {
  isa::Program program = build_image_program(params);
  const isa::LinkedImage image = isa::link(program);
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  vm::Vm cpu(memory, hierarchy);
  image.load_into(memory);

  rng::Mwc random(seed);
  const ImageInputs inputs = make_image_inputs(random, params);
  stage_image_inputs(memory, image, inputs);
  hierarchy.flush_all();
  cpu.reset(image.entry_addr(), kStackTop);
  const vm::RunResult result = cpu.run();
  EXPECT_EQ(result.stop, vm::RunResult::Stop::kHalt);
  return ImageRun{read_image_outputs(memory, image, params),
                  reference_image(params, inputs)};
}

TEST(ImageTask, GuestMatchesGoldenModel) {
  for (std::uint64_t seed : {1, 2, 3, 8}) {
    const ImageRun run = run_image_once(small_image_params(), seed);
    EXPECT_EQ(run.guest, run.golden) << "seed " << seed;
  }
}

TEST(ImageTask, ProcessesOnlyLitLenses) {
  ImageParams params = small_image_params();
  params.lit_fraction = 0.5;
  rng::Mwc random(21);
  const ImageInputs inputs = make_image_inputs(random, params);
  const ImageOutputs golden = reference_image(params, inputs);
  // The bright/dim construction separates cleanly at max/2.
  EXPECT_EQ(golden.processed_lenses, inputs.lit_lenses);
}

TEST(ImageTask, LitFractionRoughlyHonoured) {
  ImageParams params;
  params.grid = 12;
  rng::Mwc random(22);
  std::uint32_t lit = 0;
  constexpr int kFrames = 30;
  for (int f = 0; f < kFrames; ++f) {
    lit += make_image_inputs(random, params).lit_lenses;
  }
  const double fraction =
      static_cast<double>(lit) / (kFrames * params.lens_count());
  EXPECT_NEAR(fraction, 0.70, 0.05); // "around 70% of the total lenses"
}

TEST(ImageTask, InputDependentDuration) {
  // The paper: lens count variation creates "a variation in the duration
  // of the computation directly linked to the input data".
  ImageParams params = small_image_params();
  auto cycles_for = [&params](double lit_fraction, std::uint64_t seed) {
    ImageParams p = params;
    p.lit_fraction = lit_fraction;
    isa::Program program = build_image_program(p);
    const isa::LinkedImage image = isa::link(program);
    mem::GuestMemory memory;
    mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
    vm::Vm cpu(memory, hierarchy);
    image.load_into(memory);
    rng::Mwc random(seed);
    stage_image_inputs(memory, image, make_image_inputs(random, p));
    hierarchy.flush_all();
    cpu.reset(image.entry_addr(), kStackTop);
    cpu.run();
    return cpu.cycles();
  };
  EXPECT_GT(cycles_for(0.9, 5), cycles_for(0.2, 5));
}

TEST(ImageTask, ParameterValidation) {
  ImageParams params = small_image_params();
  params.window = 4; // even
  EXPECT_THROW(build_image_program(params), std::invalid_argument);
  params = small_image_params();
  params.window = 9; // >= lens_px
  EXPECT_THROW(build_image_program(params), std::invalid_argument);
  params = small_image_params();
  params.lens_px = 100; // lens bytes exceed immediate range
  EXPECT_THROW(build_image_program(params), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Measurement campaign protocol.
// ---------------------------------------------------------------------------

CampaignConfig quick_campaign(Randomisation randomisation) {
  CampaignConfig config;
  config.runs = 12;
  config.randomisation = randomisation;
  return config;
}

TEST(Campaign, CotsVerifiesEveryRun) {
  const CampaignResult result =
      run_control_campaign(quick_campaign(Randomisation::kNone));
  EXPECT_EQ(result.times.size(), 12u);
  EXPECT_EQ(result.verified_runs, 12u);
  for (const double t : result.times) {
    EXPECT_GT(t, 0.0);
  }
}

TEST(Campaign, DsrVerifiesEveryRunAndVaries) {
  CampaignConfig config = quick_campaign(Randomisation::kDsr);
  config.fixed_inputs = true; // isolate layout-induced variation
  const CampaignResult result = run_control_campaign(config);
  EXPECT_EQ(result.verified_runs, 12u);
  const auto summary = mbpta::summarise(result.times);
  EXPECT_GT(summary.stddev, 0.0) << "DSR must expose layout jitter";
  EXPECT_GT(result.pass_report.calls_rewritten, 0u);
}

TEST(Campaign, CotsFixedInputsIsDeterministic) {
  CampaignConfig config = quick_campaign(Randomisation::kNone);
  config.fixed_inputs = true;
  const CampaignResult result = run_control_campaign(config);
  const auto summary = mbpta::summarise(result.times);
  // No randomisation + same input + independent initial state per run:
  // the platform is deterministic, so every run takes identical time.
  EXPECT_EQ(summary.min, summary.max);
}

TEST(Campaign, StaticRandomisationVerifiesAndVaries) {
  CampaignConfig config = quick_campaign(Randomisation::kStatic);
  config.fixed_inputs = true;
  config.runs = 8;
  const CampaignResult result = run_control_campaign(config);
  EXPECT_EQ(result.verified_runs, 8u);
  const auto summary = mbpta::summarise(result.times);
  EXPECT_GT(summary.stddev, 0.0);
}

TEST(Campaign, HardwareRandomisationVerifiesAndVaries) {
  CampaignConfig config = quick_campaign(Randomisation::kHardware);
  config.fixed_inputs = true;
  const CampaignResult result = run_control_campaign(config);
  EXPECT_EQ(result.verified_runs, 12u);
  const auto summary = mbpta::summarise(result.times);
  EXPECT_GT(summary.stddev, 0.0);
}

TEST(Campaign, DsrOverheadBelowTwoPercent) {
  // Table I: the DSR dynamic instruction overhead is < 2%.
  CampaignConfig cots = quick_campaign(Randomisation::kNone);
  cots.fixed_inputs = true;
  CampaignConfig dsr = quick_campaign(Randomisation::kDsr);
  dsr.fixed_inputs = true;
  const CampaignResult cots_result = run_control_campaign(cots);
  const CampaignResult dsr_result = run_control_campaign(dsr);
  const double cots_instr = static_cast<double>(
      cots_result.samples.front().counters.instructions);
  const double dsr_instr =
      static_cast<double>(dsr_result.samples.front().counters.instructions);
  EXPECT_GT(dsr_instr, cots_instr);
  EXPECT_LT(dsr_instr / cots_instr, 1.02);
}

TEST(Campaign, DsrRaisesIl1Misses) {
  // Table I: icmiss 126-127 -> 154 under DSR (code spread over the pool).
  CampaignConfig cots = quick_campaign(Randomisation::kNone);
  CampaignConfig dsr = quick_campaign(Randomisation::kDsr);
  const CampaignResult cots_result = run_control_campaign(cots);
  const CampaignResult dsr_result = run_control_campaign(dsr);
  EXPECT_GT(dsr_result.samples.front().counters.icache_miss,
            cots_result.samples.front().counters.icache_miss);
}

TEST(Campaign, LfsrPrngWorksToo) {
  CampaignConfig config = quick_campaign(Randomisation::kDsr);
  config.prng = PrngKind::kLfsr;
  config.runs = 6;
  const CampaignResult result = run_control_campaign(config);
  EXPECT_EQ(result.verified_runs, 6u);
}

} // namespace
