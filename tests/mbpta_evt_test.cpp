// Tests for the EVT fits and the pWCET model: parameter recovery on
// synthetic data with known ground truth, and the structural properties a
// pWCET curve must have (Figure 3 semantics).
#include "mbpta/mbpta.hpp"
#include "rng/distributions.hpp"
#include "rng/mwc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace proxima::mbpta;
using proxima::rng::Mwc;

std::vector<double> gumbel_samples(std::uint64_t seed, int n, double mu,
                                   double beta) {
  Mwc rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) {
    xs.push_back(proxima::rng::sample_gumbel(rng, mu, beta));
  }
  return xs;
}

TEST(GumbelFit, RecoversParameters) {
  const auto xs = gumbel_samples(1, 20000, 100.0, 7.0);
  const GumbelFit fit = fit_gumbel_lmoments(xs);
  EXPECT_NEAR(fit.location, 100.0, 0.5);
  EXPECT_NEAR(fit.scale, 7.0, 0.3);
}

TEST(GumbelFit, QuantileInvertsCdf) {
  const GumbelFit fit{10.0, 2.0};
  // F(x) = exp(-exp(-(x-mu)/beta)); check round trip at several levels.
  for (double f : {0.5, 0.9, 0.99, 0.999999}) {
    const double x = fit.quantile(f);
    const double cdf = std::exp(-std::exp(-(x - 10.0) / 2.0));
    EXPECT_NEAR(cdf, f, 1e-9);
  }
  EXPECT_THROW(fit.quantile(0.0), std::invalid_argument);
  EXPECT_THROW(fit.quantile(1.0), std::invalid_argument);
}

TEST(GevFit, ShapeNearZeroOnGumbelData) {
  const auto xs = gumbel_samples(2, 20000, 50.0, 3.0);
  const GevFit fit = fit_gev_lmoments(xs);
  EXPECT_NEAR(fit.shape, 0.0, 0.05);
  EXPECT_NEAR(fit.location, 50.0, 0.5);
  EXPECT_NEAR(fit.scale, 3.0, 0.2);
}

TEST(GevFit, DetectsHeavyTail) {
  // GEV with xi = 0.3 sampled by inverse CDF.
  Mwc rng(3);
  std::vector<double> xs;
  const double xi = 0.3;
  for (int i = 0; i < 20000; ++i) {
    double u = rng.next_double();
    while (u <= 0.0) {
      u = rng.next_double();
    }
    xs.push_back(10.0 + 2.0 * (std::pow(-std::log(u), -xi) - 1.0) / xi);
  }
  const GevFit fit = fit_gev_lmoments(xs);
  EXPECT_NEAR(fit.shape, 0.3, 0.05);
}

TEST(GevFit, DegenerateDataCollapsesToPointMass) {
  const std::vector<double> xs(100, 42.0);
  const GevFit fit = fit_gev_lmoments(xs);
  EXPECT_EQ(fit.scale, 0.0);
  EXPECT_EQ(fit.location, 42.0);
}

TEST(GpdFit, ExponentialTailHasZeroShape) {
  Mwc rng(4);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(proxima::rng::sample_exponential(rng, 0.5)); // mean 2
  }
  const GpdFit fit = fit_gpd_lmoments(xs);
  EXPECT_NEAR(fit.shape, 0.0, 0.05);
  EXPECT_NEAR(fit.scale, 2.0, 0.1);
}

TEST(GpdFit, RecoversPositiveShape) {
  Mwc rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) {
    xs.push_back(proxima::rng::sample_gpd(rng, 1.0, 0.25));
  }
  const GpdFit fit = fit_gpd_lmoments(xs);
  EXPECT_NEAR(fit.shape, 0.25, 0.05);
  EXPECT_NEAR(fit.scale, 1.0, 0.1);
}

TEST(CvTest, ExponentialTailPasses) {
  Mwc rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(proxima::rng::sample_exponential(rng, 1.0));
  }
  const CvTestResult result = cv_exponentiality(xs, 0.8);
  EXPECT_TRUE(result.passes()) << "cv=" << result.cv;
  EXPECT_GT(result.exceedances, 500u);
}

TEST(CvTest, UniformTailFails) {
  // A bounded (uniform) tail has CV well below 1.
  Mwc rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) {
    xs.push_back(proxima::rng::sample_uniform(rng, 0.0, 1.0));
  }
  const CvTestResult result = cv_exponentiality(xs, 0.5);
  EXPECT_LT(result.cv, result.lower);
  EXPECT_FALSE(result.passes());
}

// ---------------------------------------------------------------------------
// pWCET model semantics.
// ---------------------------------------------------------------------------

TEST(PwcetModel, CurveIsMonotone) {
  const auto xs = gumbel_samples(8, 5000, 1000.0, 20.0);
  const PwcetModel model = PwcetModel::fit_block_maxima(xs, 50);
  const auto curve = model.curve(16);
  // Decade 1e-1 is a body probability for a block size of 50 (p_block = 5)
  // and is skipped; the curve starts at 1e-2.
  ASSERT_EQ(curve.size(), 15u);
  EXPECT_EQ(curve.front().second, 1e-2);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GT(curve[i].first, curve[i - 1].first)
        << "pWCET must grow as exceedance probability shrinks";
    EXPECT_LT(curve[i].second, curve[i - 1].second);
  }
}

TEST(PwcetModel, UpperBoundsObservedTimes) {
  // Scale/location ratio 0.1%, matching the cache-jitter regime the paper
  // reports (its pWCET at 1e-15 sits only 0.2% above the MOET).
  const auto xs = gumbel_samples(9, 2000, 50000.0, 50.0);
  const PwcetModel model = PwcetModel::fit_block_maxima(xs, 50);
  const Summary s = summarise(xs);
  // At an exceedance of 1e-15 the bound must clear every observation...
  EXPECT_GT(model.pwcet(1e-15), s.max);
  // ...without the industrial-margin level of pessimism: a light Gumbel
  // tail extrapolates ~31 scale units (~3%) past the MOET, far below +20%.
  EXPECT_LT(model.pwcet(1e-15), s.max * 1.06);
}

TEST(PwcetModel, BlockSizeAdjustsPerRunProbability) {
  const auto xs = gumbel_samples(10, 5000, 1000.0, 20.0);
  const PwcetModel model = PwcetModel::fit_block_maxima(xs, 50);
  // Per-run exceedance p maps to per-block exceedance 50p; the pWCET at
  // per-run 1e-12 therefore equals the block-level quantile at 5e-11.
  const double direct = model.info().gumbel.quantile(1.0 - 50.0 * 1e-12);
  EXPECT_NEAR(model.pwcet(1e-12), direct, 1e-9);
}

TEST(PwcetModel, PotAgreesWithBlockMaximaOrder) {
  // Both estimators fit the same light-tailed data; their 1e-12 estimates
  // should be within a few percent of each other.
  const auto xs = gumbel_samples(11, 20000, 1000.0, 20.0);
  const PwcetModel bm = PwcetModel::fit_block_maxima(xs, 50);
  const PwcetModel pot = PwcetModel::fit_pot(xs, 0.95);
  const double a = bm.pwcet(1e-12);
  const double b = pot.pwcet(1e-12);
  EXPECT_NEAR(a / b, 1.0, 0.08) << "bm=" << a << " pot=" << b;
}

TEST(PwcetModel, PotReturnsThresholdInsideEmpiricalRange) {
  const auto xs = gumbel_samples(12, 2000, 100.0, 5.0);
  const PwcetModel pot = PwcetModel::fit_pot(xs, 0.9);
  // Exceedance of 0.2 > exceed-rate 0.1: no extrapolation needed.
  EXPECT_EQ(pot.pwcet(0.2), pot.info().threshold);
}

TEST(PwcetModel, RejectsBadInputs) {
  const auto xs = gumbel_samples(13, 100, 10.0, 1.0);
  EXPECT_THROW(PwcetModel::fit_block_maxima(xs, 0), std::invalid_argument);
  EXPECT_THROW(PwcetModel::fit_block_maxima(xs, 50), std::invalid_argument)
      << "only 2 blocks";
  const PwcetModel model = PwcetModel::fit_block_maxima(xs, 10);
  EXPECT_THROW(model.pwcet(0.0), std::invalid_argument);
  EXPECT_THROW(model.pwcet(1.0), std::invalid_argument);
}

TEST(PwcetModel, BlockMaximaRejectsBodyProbabilities) {
  // Regression: the block-maxima path used to clamp the per-block
  // exceedance at 0.999999 when exceedance_per_run * block_size >= 1,
  // returning a *body* quantile that masqueraded as a tail bound.  Such
  // probabilities are outside the model's valid range and must throw.
  const auto xs = gumbel_samples(21, 5000, 1000.0, 20.0);
  const PwcetModel model = PwcetModel::fit_block_maxima(xs, 50);
  EXPECT_EQ(model.max_exceedance(), 1.0 / 50.0);
  EXPECT_THROW(model.pwcet(0.05), std::invalid_argument); // p_block = 2.5
  EXPECT_THROW(model.pwcet(0.02), std::invalid_argument); // p_block = 1.0
  EXPECT_NO_THROW(model.pwcet(0.019));                    // p_block = 0.95
  // The GEV flavour shares the block-maxima range check.
  const PwcetModel gev = PwcetModel::fit_block_maxima(xs, 50, true);
  EXPECT_THROW(gev.pwcet(0.05), std::invalid_argument);
  // POT answers the full (0,1) range: its tail starts at the threshold.
  const PwcetModel pot = PwcetModel::fit_pot(xs, 0.9);
  EXPECT_EQ(pot.max_exceedance(), 1.0);
  EXPECT_NO_THROW(pot.pwcet(0.5));
}

// ---------------------------------------------------------------------------
// Full MBPTA protocol.
// ---------------------------------------------------------------------------

TEST(Mbpta, EndToEndOnSyntheticCampaign) {
  const auto xs = gumbel_samples(14, 2000, 50000.0, 400.0);
  const MbptaAnalysis analysis = analyse(xs);
  EXPECT_TRUE(analysis.applicable());
  EXPECT_GT(analysis.pwcet(1e-15), analysis.summary.max);
  // Paper headline shape: pWCET(1e-15) close to MOET, far below MOET+20%.
  EXPECT_LT(analysis.pwcet(1e-15), analysis.summary.max * 1.20);
}

TEST(Mbpta, NotApplicableOnCorrelatedData) {
  Mwc rng(15);
  std::vector<double> xs{0.0};
  for (int i = 1; i < 2000; ++i) {
    xs.push_back(0.9 * xs.back() +
                 proxima::rng::sample_normal(rng, 0.0, 1.0) + 100.0 * 0.1);
  }
  const MbptaAnalysis analysis = analyse(xs);
  EXPECT_FALSE(analysis.applicable());
}

TEST(Mbpta, PotMethodSelectable) {
  const auto xs = gumbel_samples(16, 5000, 1000.0, 10.0);
  MbptaConfig config;
  config.method = TailMethod::kPotGpd;
  const MbptaAnalysis analysis = analyse(xs, config);
  EXPECT_EQ(analysis.model.info().method, TailMethod::kPotGpd);
  EXPECT_GT(analysis.pwcet(1e-15), analysis.summary.max);
}

TEST(Convergence, StabilisesOnStationaryData) {
  Mwc rng(17);
  ConvergenceController::Config config;
  config.target_exceedance = 1e-12;
  config.epsilon = 0.02;
  config.stable_rounds = 3;
  config.min_samples = 300;
  ConvergenceController controller(config);
  bool converged = false;
  int batches = 0;
  while (!converged && batches < 100) {
    std::vector<double> batch;
    for (int i = 0; i < 100; ++i) {
      batch.push_back(proxima::rng::sample_gumbel(rng, 50000.0, 300.0));
    }
    converged = controller.add_batch(batch);
    ++batches;
  }
  EXPECT_TRUE(converged);
  EXPECT_GE(controller.samples_used(), 300u);
  const MbptaAnalysis final = controller.result();
  EXPECT_TRUE(final.applicable());
}

TEST(Convergence, DoesNotConvergeBeforeMinSamples) {
  ConvergenceController::Config config;
  config.min_samples = 10000;
  ConvergenceController controller(config);
  std::vector<double> batch(100, 1.0);
  EXPECT_FALSE(controller.add_batch(batch));
  EXPECT_FALSE(controller.converged());
}

} // namespace
