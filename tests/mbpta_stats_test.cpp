// Tests for the statistical foundations: special functions, descriptive
// statistics, and the i.i.d. tests (Ljung-Box, two-sample KS).
#include "mbpta/descriptive.hpp"
#include "mbpta/iid_tests.hpp"
#include "mbpta/stats_math.hpp"
#include "rng/distributions.hpp"
#include "rng/mwc.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using namespace proxima::mbpta;
using proxima::rng::Mwc;

// ---------------------------------------------------------------------------
// Special functions against reference values.
// ---------------------------------------------------------------------------

TEST(StatsMath, LogGammaMatchesKnownValues) {
  EXPECT_NEAR(log_gamma(1.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(2.0), 0.0, 1e-12);
  EXPECT_NEAR(log_gamma(5.0), std::log(24.0), 1e-10);
  EXPECT_NEAR(log_gamma(0.5), std::log(std::sqrt(M_PI)), 1e-10);
  for (double x : {0.3, 1.7, 3.14, 10.0, 42.5}) {
    EXPECT_NEAR(log_gamma(x), std::lgamma(x), 1e-9) << x;
  }
  EXPECT_THROW(log_gamma(0.0), std::domain_error);
}

TEST(StatsMath, ChiSquareCdfCriticalValues) {
  // Textbook 95th percentiles: chi2(1)=3.841, chi2(5)=11.070, chi2(20)=31.410.
  EXPECT_NEAR(chi_square_cdf(3.841, 1), 0.95, 1e-3);
  EXPECT_NEAR(chi_square_cdf(11.070, 5), 0.95, 1e-3);
  EXPECT_NEAR(chi_square_cdf(31.410, 20), 0.95, 1e-3);
  // 99th percentile chi2(10) = 23.209.
  EXPECT_NEAR(chi_square_cdf(23.209, 10), 0.99, 1e-3);
  EXPECT_EQ(chi_square_cdf(0.0, 4), 0.0);
  EXPECT_EQ(chi_square_cdf(-1.0, 4), 0.0);
}

TEST(StatsMath, RegularizedGammaComplementarity) {
  // Continuity across the series/continued-fraction switch at x = a+1.
  for (double a : {0.5, 2.0, 7.5}) {
    const double below = regularized_gamma_p(a, a + 0.999);
    const double above = regularized_gamma_p(a, a + 1.001);
    EXPECT_NEAR(below, above, 2e-3) << a;
    EXPECT_GT(above, below) << "CDF must increase";
  }
}

TEST(StatsMath, KsSurvivalKnownValues) {
  // Q(1.358) ~= 0.05 (the classic 5% critical value).
  EXPECT_NEAR(ks_survival(1.358), 0.05, 2e-3);
  // Q(1.628) ~= 0.01.
  EXPECT_NEAR(ks_survival(1.628), 0.01, 1e-3);
  EXPECT_EQ(ks_survival(0.0), 1.0);
  EXPECT_LT(ks_survival(3.0), 1e-6);
}

TEST(StatsMath, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(normal_cdf(-1.96), 0.025, 1e-4);
}

// ---------------------------------------------------------------------------
// Descriptive statistics.
// ---------------------------------------------------------------------------

TEST(Descriptive, SummaryBasics) {
  const std::vector<double> xs{3, 1, 4, 1, 5, 9, 2, 6};
  const Summary s = summarise(xs);
  EXPECT_EQ(s.count, 8u);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_NEAR(s.mean, 31.0 / 8.0, 1e-12);
  EXPECT_GT(s.stddev, 0.0);
}

TEST(Descriptive, SummaryEmptyAndSingle) {
  EXPECT_EQ(summarise({}).count, 0u);
  const std::vector<double> one{7.0};
  const Summary s = summarise(one);
  EXPECT_EQ(s.mean, 7.0);
  EXPECT_EQ(s.variance, 0.0);
}

TEST(Descriptive, QuantileInterpolation) {
  const std::vector<double> xs{10, 20, 30, 40, 50};
  EXPECT_NEAR(quantile(xs, 0.0), 10.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 1.0), 50.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.5), 30.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.25), 20.0, 1e-12);
  EXPECT_NEAR(quantile(xs, 0.1), 14.0, 1e-12); // interpolated
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile(xs, 1.5), std::invalid_argument);
}

TEST(Descriptive, AutocorrelationOfAlternatingSeries) {
  std::vector<double> xs;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  }
  EXPECT_NEAR(autocorrelation(xs, 1), -1.0, 0.05);
  EXPECT_NEAR(autocorrelation(xs, 2), 1.0, 0.05);
  EXPECT_EQ(autocorrelation(xs, 200), 0.0); // lag beyond series
}

TEST(Descriptive, AutocorrelationOfConstantSeriesIsZero) {
  const std::vector<double> xs(50, 42.0);
  EXPECT_EQ(autocorrelation(xs, 1), 0.0);
}

TEST(Descriptive, BlockMaxima) {
  const std::vector<double> xs{1, 5, 2, 8, 3, 4, 9, 1, 7};
  const std::vector<double> maxima = block_maxima(xs, 3);
  ASSERT_EQ(maxima.size(), 3u);
  EXPECT_EQ(maxima[0], 5.0);
  EXPECT_EQ(maxima[1], 8.0);
  EXPECT_EQ(maxima[2], 9.0);
  // Partial trailing block dropped.
  EXPECT_EQ(block_maxima(xs, 4).size(), 2u);
  EXPECT_THROW(block_maxima(xs, 0), std::invalid_argument);
}

TEST(Descriptive, Exceedances) {
  const std::vector<double> xs{1, 5, 3, 7, 2};
  const std::vector<double> tail = exceedances_over(xs, 3.0);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0], 2.0); // 5 - 3
  EXPECT_EQ(tail[1], 4.0); // 7 - 3
}

// ---------------------------------------------------------------------------
// Ljung-Box: the paper's independence test.
// ---------------------------------------------------------------------------

TEST(LjungBox, PassesOnIidSamples) {
  Mwc rng(1);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(proxima::rng::sample_normal(rng, 0.0, 1.0));
  }
  const LjungBoxResult result = ljung_box(xs, 20);
  EXPECT_GT(result.p_value, 0.05);
  EXPECT_TRUE(result.passes());
}

TEST(LjungBox, RejectsAr1Series) {
  // Strongly autocorrelated AR(1): x_t = 0.8 x_{t-1} + e_t.
  Mwc rng(2);
  std::vector<double> xs{0.0};
  for (int i = 1; i < 1000; ++i) {
    xs.push_back(0.8 * xs.back() +
                 proxima::rng::sample_normal(rng, 0.0, 1.0));
  }
  const LjungBoxResult result = ljung_box(xs, 20);
  EXPECT_LT(result.p_value, 1e-9);
  EXPECT_FALSE(result.passes());
}

TEST(LjungBox, RejectsDeterministicRamp) {
  // A monotone ramp is the classic non-i.i.d. failure of a non-randomised
  // platform warming its caches run over run.
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(1000.0 - i);
  }
  EXPECT_FALSE(ljung_box(xs, 20).passes());
}

TEST(LjungBox, ConstantSeriesTriviallyPasses) {
  const std::vector<double> xs(200, 5.0);
  const LjungBoxResult result = ljung_box(xs, 10);
  EXPECT_EQ(result.statistic, 0.0);
  EXPECT_EQ(result.p_value, 1.0);
}

TEST(LjungBox, RejectsBadArguments) {
  const std::vector<double> xs(30, 1.0);
  EXPECT_THROW(ljung_box(xs, 0), std::invalid_argument);
  EXPECT_THROW(ljung_box(xs, 30), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Two-sample KS: the paper's identical-distribution test.
// ---------------------------------------------------------------------------

TEST(KsTwoSample, PassesOnSameDistribution) {
  Mwc rng(3);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(proxima::rng::sample_gumbel(rng, 100.0, 5.0));
    b.push_back(proxima::rng::sample_gumbel(rng, 100.0, 5.0));
  }
  const KsResult result = ks_two_sample(a, b);
  EXPECT_GT(result.p_value, 0.05);
}

TEST(KsTwoSample, RejectsShiftedDistribution) {
  Mwc rng(4);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(proxima::rng::sample_normal(rng, 0.0, 1.0));
    b.push_back(proxima::rng::sample_normal(rng, 1.0, 1.0)); // shifted
  }
  const KsResult result = ks_two_sample(a, b);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.statistic, 0.3);
}

TEST(KsTwoSample, IdenticalSamplesGiveZeroStatistic) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  const KsResult result = ks_two_sample(xs, xs);
  EXPECT_EQ(result.statistic, 0.0);
  EXPECT_NEAR(result.p_value, 1.0, 1e-9);
}

TEST(KsTwoSample, DisjointSamplesGiveFullStatistic) {
  const std::vector<double> a{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<double> b{11, 12, 13, 14, 15, 16, 17, 18};
  const KsResult result = ks_two_sample(a, b);
  EXPECT_EQ(result.statistic, 1.0);
  EXPECT_LT(result.p_value, 0.01);
}

TEST(KsTwoSample, EmptySampleRejected) {
  const std::vector<double> xs{1.0};
  EXPECT_THROW(ks_two_sample(xs, {}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Combined i.i.d. verdict (the paper's acceptance protocol).
// ---------------------------------------------------------------------------

TEST(CheckIid, AcceptsRandomisedLikeData) {
  Mwc rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    xs.push_back(proxima::rng::sample_gumbel(rng, 50000.0, 300.0));
  }
  const IidVerdict verdict = check_iid(xs);
  EXPECT_TRUE(verdict.passes());
  EXPECT_GE(verdict.independence.p_value, 0.05);
  EXPECT_GE(verdict.identical_distribution.p_value, 0.05);
}

TEST(CheckIid, RejectsDriftingCampaign) {
  // First half and second half differ (e.g. thermal drift / cache warmup):
  // the split-half KS must catch it.
  Mwc rng(6);
  std::vector<double> xs;
  for (int i = 0; i < 500; ++i) {
    xs.push_back(proxima::rng::sample_normal(rng, 100.0, 2.0));
  }
  for (int i = 0; i < 500; ++i) {
    xs.push_back(proxima::rng::sample_normal(rng, 104.0, 2.0));
  }
  const IidVerdict verdict = check_iid(xs);
  EXPECT_FALSE(verdict.passes());
  EXPECT_FALSE(verdict.identical_distribution.passes());
}

TEST(CheckIid, TooFewSamplesRejected) {
  const std::vector<double> xs(10, 1.0);
  EXPECT_THROW(check_iid(xs), std::invalid_argument);
}

} // namespace
