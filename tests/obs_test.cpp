// Tests for the observability layer: histogram arithmetic against known
// distributions, order-independent registry merges, the metrics digest's
// class boundaries (gauges excluded), and — the property the whole design
// exists for — bit-identical metric registries between the sequential
// campaign and the engine at any worker count, on bare-platform AND
// hypervisor scenarios.  Also: the Chrome trace_event document is valid
// JSON with the expected structure.
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"

#include "casestudy/campaign.hpp"
#include "cli/json_reader.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace {

using namespace proxima;
using obs::Histogram;
using obs::MetricsSnapshot;

// ---------------------------------------------------------------------------
// Histogram: buckets, recording, merging.
// ---------------------------------------------------------------------------

TEST(Histogram, BucketOfIsBitWidth) {
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(255), 8u);
  EXPECT_EQ(Histogram::bucket_of(256), 9u);
  EXPECT_EQ(Histogram::bucket_of(std::uint64_t{1} << 63), 64u);
  EXPECT_EQ(Histogram::bucket_of(~std::uint64_t{0}), 64u);
  static_assert(Histogram::kBuckets == 65,
                "one bucket per bit width 0..64 inclusive");
}

TEST(Histogram, KnownDistribution) {
  // Values 0..15: one 0-bit value, one 1-bit, two 2-bit, four 3-bit,
  // eight 4-bit.
  Histogram histogram;
  for (std::uint64_t value = 0; value < 16; ++value) {
    histogram.record(value);
  }
  EXPECT_EQ(histogram.count, 16u);
  EXPECT_EQ(histogram.sum, 120u);
  EXPECT_EQ(histogram.min, 0u);
  EXPECT_EQ(histogram.max, 15u);
  EXPECT_DOUBLE_EQ(histogram.mean(), 7.5);
  EXPECT_EQ(histogram.buckets[0], 1u);
  EXPECT_EQ(histogram.buckets[1], 1u);
  EXPECT_EQ(histogram.buckets[2], 2u);
  EXPECT_EQ(histogram.buckets[3], 4u);
  EXPECT_EQ(histogram.buckets[4], 8u);
  for (std::size_t bit = 5; bit < Histogram::kBuckets; ++bit) {
    EXPECT_EQ(histogram.buckets[bit], 0u) << "bucket " << bit;
  }
}

TEST(Histogram, MergeMatchesSequentialRecording) {
  Histogram evens;
  Histogram odds;
  Histogram all;
  for (std::uint64_t value = 0; value < 1000; ++value) {
    ((value % 2 == 0) ? evens : odds).record(value * value);
    all.record(value * value);
  }
  Histogram merged = evens;
  merged.merge_from(odds);
  EXPECT_EQ(merged, all) << "merge must equal single-threaded recording";

  // Merging an empty histogram is the identity (min stays untouched).
  Histogram empty;
  Histogram copy = all;
  copy.merge_from(empty);
  EXPECT_EQ(copy, all);
}

// ---------------------------------------------------------------------------
// Registry merge and digest.
// ---------------------------------------------------------------------------

MetricsSnapshot shard(std::uint64_t salt) {
  MetricsSnapshot snapshot;
  snapshot.add("runs", 3 + salt);
  snapshot.add("vm.mix.Add", 100 * (salt + 1));
  snapshot.record("time.uoa_cycles", 1000 + salt);
  snapshot.record("time.uoa_cycles", 5000 * (salt + 1));
  snapshot.add_gauge("dsr.lines_invalidated", static_cast<double>(salt));
  return snapshot;
}

TEST(MetricsSnapshot, MergeIsOrderIndependent) {
  const MetricsSnapshot a = shard(0);
  const MetricsSnapshot b = shard(1);
  const MetricsSnapshot c = shard(2);

  MetricsSnapshot abc;
  abc.merge_from(a);
  abc.merge_from(b);
  abc.merge_from(c);
  MetricsSnapshot cba;
  cba.merge_from(c);
  cba.merge_from(b);
  cba.merge_from(a);

  EXPECT_EQ(abc, cba);
  EXPECT_EQ(obs::metrics_digest(abc), obs::metrics_digest(cba));
  EXPECT_EQ(abc.counters.at("runs"), 3u + 4u + 5u);
  EXPECT_EQ(abc.histograms.at("time.uoa_cycles").count, 6u);
}

TEST(MetricsDigest, SensitiveToNamesAndValues) {
  MetricsSnapshot base;
  base.add("runs", 10);
  base.record("time.uoa_cycles", 42);
  const std::uint64_t digest = obs::metrics_digest(base);

  MetricsSnapshot renamed;
  renamed.add("runz", 10);
  renamed.record("time.uoa_cycles", 42);
  EXPECT_NE(obs::metrics_digest(renamed), digest) << "name must be folded";

  MetricsSnapshot bumped = base;
  bumped.add("runs", 1);
  EXPECT_NE(obs::metrics_digest(bumped), digest) << "value must be folded";

  MetricsSnapshot with_series = base;
  const std::vector<double> estimates{1.0, 2.0};
  with_series.set_series("engine.pwcet_estimates", estimates);
  EXPECT_NE(obs::metrics_digest(with_series), digest)
      << "series must be folded";
}

TEST(MetricsDigest, GaugesAreExcluded) {
  MetricsSnapshot base;
  base.add("runs", 10);
  const std::uint64_t digest = obs::metrics_digest(base);

  MetricsSnapshot with_gauges = base;
  with_gauges.set_gauge("engine.wall_seconds", 12.5);
  with_gauges.add_gauge("vm.decode.decodes", 1e6);
  EXPECT_EQ(obs::metrics_digest(with_gauges), digest)
      << "wall-clock/platform-local gauges must never move the digest";
  EXPECT_EQ(obs::metrics_digest_hex(with_gauges),
            obs::metrics_digest_hex(base));
}

TEST(MetricsSnapshot, EmptyAndHexRendering) {
  MetricsSnapshot empty;
  EXPECT_TRUE(empty.empty());
  const std::string hex = obs::metrics_digest_hex(empty);
  EXPECT_EQ(hex.size(), 18u);
  EXPECT_EQ(hex.substr(0, 2), "0x");
}

// ---------------------------------------------------------------------------
// Cross-worker-count determinism on real campaigns.
// ---------------------------------------------------------------------------

casestudy::CampaignConfig metrics_config(const std::string& scenario,
                                         std::uint64_t runs) {
  casestudy::CampaignConfig config =
      exec::ScenarioRegistry::global().at(scenario).make_config(runs);
  config.collect_metrics = true;
  return config;
}

MetricsSnapshot engine_metrics(const casestudy::CampaignConfig& config,
                               unsigned workers) {
  exec::EngineOptions options;
  options.workers = workers;
  const exec::CampaignEngine engine(options);
  return engine.run(config).metrics;
}

// The counters/histograms/series of the merged registry must be
// bit-identical between one worker and eight — and identical to the
// sequential campaign — on bare-platform and hypervisor scenarios alike.
// Gauges (wall clock, decode-cache activity) are allowed to differ and are
// excluded from the digest, so the digest comparison is exact.
TEST(MetricsDeterminism, RegistryIdenticalAcrossWorkerCounts) {
  const struct {
    const char* scenario;
    std::uint64_t runs;
  } cases[] = {
      {"control/operation-dsr", 10},
      {"image/operation-cots", 6},
      {"hv/control+image", 6},
  };
  for (const auto& test_case : cases) {
    SCOPED_TRACE(test_case.scenario);
    const casestudy::CampaignConfig config =
        metrics_config(test_case.scenario, test_case.runs);
    const MetricsSnapshot w1 = engine_metrics(config, 1);
    const MetricsSnapshot w8 = engine_metrics(config, 8);
    const MetricsSnapshot sequential =
        casestudy::run_control_campaign(config).metrics;

    EXPECT_EQ(w1.counters, w8.counters);
    EXPECT_EQ(w1.histograms, w8.histograms);
    EXPECT_EQ(w1.series, w8.series);
    EXPECT_EQ(obs::metrics_digest_hex(w1), obs::metrics_digest_hex(w8));
    EXPECT_EQ(sequential.counters, w8.counters);
    EXPECT_EQ(obs::metrics_digest_hex(sequential),
              obs::metrics_digest_hex(w8));

    // The registry is not trivially empty: every run contributes.
    EXPECT_EQ(w1.counters.at("runs"), test_case.runs);
    EXPECT_EQ(w1.histograms.at("time.uoa_cycles").count, test_case.runs);
  }
}

TEST(MetricsDeterminism, HvRegistryCarriesPartitionMetrics) {
  const casestudy::CampaignConfig config =
      metrics_config("hv/control+image", 4);
  const MetricsSnapshot metrics = engine_metrics(config, 4);
  bool saw_partition_counter = false;
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind("hv.", 0) == 0 &&
        name.find(".activations") != std::string::npos) {
      saw_partition_counter = value > 0;
      if (saw_partition_counter) {
        break;
      }
    }
  }
  EXPECT_TRUE(saw_partition_counter)
      << "hv scenarios must publish per-partition activation counters";
  bool saw_occupancy = false;
  for (const auto& [name, histogram] : metrics.histograms) {
    if (name.rfind("hv.", 0) == 0 &&
        name.find("frame_occupancy_pct") != std::string::npos) {
      saw_occupancy = histogram.count > 0;
    }
  }
  EXPECT_TRUE(saw_occupancy) << "hv frame occupancy histogram missing";
}

TEST(MetricsDeterminism, CollectionOffLeavesRegistryEmpty) {
  casestudy::CampaignConfig config =
      exec::ScenarioRegistry::global()
          .at("control/operation-cots")
          .make_config(4);
  ASSERT_FALSE(config.collect_metrics) << "metrics must be opt-in";
  const casestudy::CampaignResult result =
      casestudy::run_control_campaign(config);
  EXPECT_TRUE(result.metrics.empty());
}

// ---------------------------------------------------------------------------
// Timeline: well-formed Chrome trace_event JSON.
// ---------------------------------------------------------------------------

TEST(Timeline, WritesWellFormedTraceEventJson) {
  obs::Timeline timeline;
  timeline.record("engine", "worker-0", "run 0", 10.0, 5.0);
  timeline.record("engine", "worker-1", "run 1", 12.0, 4.0);
  // Hostile span name: quotes, backslash, control character.
  timeline.record("partitions", "image-guest", "run \"0\" \\ frame\t1", 0.0,
                  100.0);
  EXPECT_EQ(timeline.size(), 3u);

  std::ostringstream out;
  timeline.write_json(out);
  cli::JsonValue document;
  ASSERT_NO_THROW(document = cli::JsonValue::parse(out.str()))
      << out.str();

  const cli::JsonValue* events = document.get("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  std::size_t metadata = 0;
  std::size_t spans = 0;
  for (const cli::JsonValue& event : events->array) {
    const cli::JsonValue* ph = event.get("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_TRUE(ph->is_string());
    if (ph->string == "M") {
      ++metadata;
      const cli::JsonValue* name = event.get("name");
      ASSERT_NE(name, nullptr);
      EXPECT_TRUE(name->string == "process_name" ||
                  name->string == "thread_name");
    } else {
      EXPECT_EQ(ph->string, "X") << "only complete events are emitted";
      ++spans;
      EXPECT_NE(event.get("ts"), nullptr);
      EXPECT_NE(event.get("dur"), nullptr);
      EXPECT_NE(event.get("pid"), nullptr);
      EXPECT_NE(event.get("tid"), nullptr);
    }
  }
  EXPECT_EQ(spans, 3u);
  // Two processes and three threads, each named once.
  EXPECT_EQ(metadata, 2u + 3u);
}

TEST(Timeline, EngineProducesSpansForWorkersAndPartitions) {
  obs::Timeline timeline;
  casestudy::CampaignConfig config = metrics_config("hv/control+image", 3);
  config.timeline = &timeline;
  exec::EngineOptions options;
  options.workers = 2;
  const exec::CampaignEngine engine(options);
  (void)engine.run(config);
  EXPECT_GT(timeline.size(), 0u);

  std::ostringstream out;
  timeline.write_json(out);
  cli::JsonValue document;
  ASSERT_NO_THROW(document = cli::JsonValue::parse(out.str()));
  const cli::JsonValue* events = document.get("traceEvents");
  ASSERT_NE(events, nullptr);
  bool saw_engine = false;
  bool saw_partitions = false;
  for (const cli::JsonValue& event : events->array) {
    const cli::JsonValue* ph = event.get("ph");
    const cli::JsonValue* args = event.get("args");
    if (!ph || ph->string != "M" || !args) {
      continue;
    }
    if (const cli::JsonValue* name = args->get("name")) {
      saw_engine = saw_engine || name->string == "engine";
      saw_partitions = saw_partitions || name->string == "partitions";
    }
  }
  EXPECT_TRUE(saw_engine) << "worker spans must name the engine process";
  EXPECT_TRUE(saw_partitions) << "hv frames must land on their own process";
}

} // namespace
