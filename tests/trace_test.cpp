// Tests for the RVS/GRMON-style measurement pipeline (Section V).
#include "rng/distributions.hpp"
#include "rng/mwc.hpp"
#include "trace/report.hpp"
#include "trace/trace.hpp"
#include "vm_harness.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace proxima::isa;
using proxima::test::TestMachine;
using proxima::trace::extract_execution_times;
using proxima::trace::instrument_function;
using proxima::trace::TimingReport;
using proxima::trace::TraceBuffer;
using proxima::trace::TraceError;
using proxima::trace::TraceRecord;

TEST(TraceBuffer, BinaryRoundTrip) {
  TraceBuffer buffer;
  buffer.append(1, 100);
  buffer.append(2, 250);
  buffer.append(1, 90000000000ULL); // > 32 bits of cycles
  buffer.append(2, 90000000123ULL);
  const std::vector<std::uint8_t> bytes = buffer.serialise();
  EXPECT_EQ(bytes.size(), 4u * 12u);
  const TraceBuffer back = TraceBuffer::deserialise(bytes);
  ASSERT_EQ(back.size(), 4u);
  EXPECT_EQ(back.records()[2], (TraceRecord{1, 90000000000ULL}));
  EXPECT_EQ(back.records()[3], (TraceRecord{2, 90000000123ULL}));
}

TEST(TraceBuffer, CorruptDumpRejected) {
  const std::vector<std::uint8_t> bytes(13, 0);
  EXPECT_THROW(TraceBuffer::deserialise(bytes), TraceError);
}

TEST(ExtractTimes, PairsEntriesAndExits) {
  TraceBuffer buffer;
  buffer.append(1, 100);
  buffer.append(2, 350);
  buffer.append(1, 1000);
  buffer.append(2, 1400);
  const std::vector<double> times = extract_execution_times(buffer, 1, 2);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], 250.0);
  EXPECT_EQ(times[1], 400.0);
}

TEST(ExtractTimes, IgnoresForeignIpoints) {
  TraceBuffer buffer;
  buffer.append(1, 100);
  buffer.append(7, 150); // another UoA's ipoint
  buffer.append(2, 300);
  const std::vector<double> times = extract_execution_times(buffer, 1, 2);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_EQ(times[0], 200.0);
}

TEST(ExtractTimes, MalformedTracesRejected) {
  {
    TraceBuffer nested;
    nested.append(1, 1);
    nested.append(1, 2);
    EXPECT_THROW(extract_execution_times(nested, 1, 2), TraceError);
  }
  {
    TraceBuffer orphan_exit;
    orphan_exit.append(2, 5);
    EXPECT_THROW(extract_execution_times(orphan_exit, 1, 2), TraceError);
  }
  {
    TraceBuffer unclosed;
    unclosed.append(1, 5);
    EXPECT_THROW(extract_execution_times(unclosed, 1, 2), TraceError);
  }
}

TEST(Instrumenter, WrapsFunctionWithIpoints) {
  Program program;
  {
    FunctionBuilder fb("uoa");
    fb.prologue(96);
    fb.li(kO0, 3);
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("main");
    fb.call("uoa");
    fb.halt();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  const std::uint32_t exits = instrument_function(program, "uoa");
  EXPECT_EQ(exits, 1u);

  const Function& uoa = *program.find_function("uoa");
  EXPECT_EQ(uoa.code.front().op, Opcode::kIpoint);
  EXPECT_EQ(uoa.code.front().imm, 1);
  // Exit ipoint sits right before the restore.
  bool found_exit_before_restore = false;
  for (std::size_t i = 0; i + 1 < uoa.code.size(); ++i) {
    if (uoa.code[i].op == Opcode::kIpoint && uoa.code[i].imm == 2 &&
        uoa.code[i + 1].op == Opcode::kRestore) {
      found_exit_before_restore = true;
    }
  }
  EXPECT_TRUE(found_exit_before_restore);

  // The instrumented program runs and produces a well-formed trace.
  TestMachine machine(program);
  TraceBuffer buffer;
  buffer.attach(machine.cpu);
  machine.run();
  const std::vector<double> times = extract_execution_times(buffer);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_GT(times[0], 0.0);
}

TEST(Instrumenter, LeafFunctionAndRepeatedCalls) {
  Program program;
  {
    FunctionBuilder fb("leaf_uoa");
    fb.add(kO0, kO0, kO0);
    fb.ret_leaf();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("main");
    fb.li(kO0, 1);
    fb.call("leaf_uoa");
    fb.call("leaf_uoa");
    fb.call("leaf_uoa");
    fb.halt();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  instrument_function(program, "leaf_uoa");
  TestMachine machine(program);
  TraceBuffer buffer;
  buffer.attach(machine.cpu);
  machine.run();
  const std::vector<double> times = extract_execution_times(buffer);
  EXPECT_EQ(times.size(), 3u);
}

TEST(Instrumenter, UnknownFunctionRejected) {
  Program program;
  FunctionBuilder fb("main");
  fb.halt();
  program.functions.push_back(fb.build());
  EXPECT_THROW(instrument_function(program, "ghost"), TraceError);
}

TEST(Instrumenter, BranchesSurviveInsertion) {
  // A loop inside the UoA must still terminate after ipoint insertion.
  Program program;
  FunctionBuilder fb("main");
  fb.li(kO0, 5);
  fb.li(kO1, 0);
  fb.label("top");
  fb.addi(kO1, kO1, 1);
  fb.subcci(kO0, 1);
  fb.subi(kO0, kO0, 1);
  fb.bg("top");
  fb.halt();
  program.functions.push_back(fb.build());
  program.entry = "main";
  instrument_function(program, "main"); // halt acts as the exit
  TestMachine machine(program);
  TraceBuffer buffer;
  buffer.attach(machine.cpu);
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO1), 5u);
  EXPECT_EQ(extract_execution_times(buffer).size(), 1u);
}

TEST(Report, SummaryAndMargin) {
  const std::vector<double> times{100, 120, 110, 130, 90};
  const TimingReport report = TimingReport::from_times(times);
  EXPECT_EQ(report.moet(), 130.0);
  EXPECT_NEAR(report.mbdta_bound(), 156.0, 1e-9); // MOET + 20%
  EXPECT_NEAR(report.mbdta_bound(0.10), 143.0, 1e-9);
  EXPECT_NE(report.to_string().find("max(MOET)=130"), std::string::npos);
}

TEST(Report, AsciiPlotRendersBothSeries) {
  proxima::rng::Mwc rng(1);
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) {
    samples.push_back(proxima::rng::sample_gumbel(rng, 10000.0, 50.0));
  }
  const auto model = proxima::mbpta::PwcetModel::fit_block_maxima(samples, 50);
  const std::string plot =
      proxima::trace::ascii_exceedance_plot(model, samples);
  EXPECT_NE(plot.find('+'), std::string::npos); // measured staircase
  EXPECT_NE(plot.find('*'), std::string::npos); // fitted curve
  EXPECT_NE(plot.find("1e-15"), std::string::npos);
}

TEST(Report, CsvOutputs) {
  proxima::rng::Mwc rng(2);
  std::vector<double> samples;
  for (int i = 0; i < 600; ++i) {
    samples.push_back(proxima::rng::sample_gumbel(rng, 1000.0, 10.0));
  }
  const auto model = proxima::mbpta::PwcetModel::fit_block_maxima(samples, 50);
  const std::string curve = proxima::trace::pwcet_curve_csv(model, 5);
  EXPECT_NE(curve.find("exceedance_probability,pwcet_cycles"),
            std::string::npos);
  // Decade 1e-1 is outside the block-50 model's valid range (p_block >= 1)
  // and is skipped, so 5 decades render 4 rows.
  EXPECT_EQ(std::count(curve.begin(), curve.end(), '\n'), 5); // header + 4
  EXPECT_EQ(curve.find("0.1,"), std::string::npos);
  EXPECT_NE(curve.find("0.01,"), std::string::npos);
  const std::string times = proxima::trace::times_csv(samples);
  EXPECT_NE(times.find("run,cycles"), std::string::npos);
}

} // namespace
