#include <bit>
// Semantics tests for the mini-SPARC execution engine.
#include "vm_harness.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima::isa;
using proxima::test::TestMachine;
using proxima::vm::RunResult;
using proxima::vm::VmConfig;
using proxima::vm::VmError;

Program single(FunctionBuilder&& fb, std::vector<DataObject> data = {}) {
  Program program;
  program.functions.push_back(std::move(fb).build());
  program.data = std::move(data);
  program.entry = program.functions.front().name;
  return program;
}

TEST(VmAlu, AddSubLogicShift) {
  FunctionBuilder fb("main");
  fb.li(kO0, 20);
  fb.li(kO1, 7);
  fb.add(kO2, kO0, kO1);  // 27
  fb.sub(kO3, kO0, kO1);  // 13
  fb.op3(Opcode::kAnd, kO4, kO0, kO1); // 4
  fb.op3(Opcode::kOr, kO5, kO0, kO1);  // 23
  fb.op3(Opcode::kXor, kL0, kO0, kO1); // 19
  fb.slli(kL1, kO0, 3);   // 160
  fb.srli(kL2, kO0, 2);   // 5
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO2), 27u);
  EXPECT_EQ(machine.cpu.reg(kO3), 13u);
  EXPECT_EQ(machine.cpu.reg(kO4), 4u);
  EXPECT_EQ(machine.cpu.reg(kO5), 23u);
  EXPECT_EQ(machine.cpu.reg(kL0), 19u);
  EXPECT_EQ(machine.cpu.reg(kL1), 160u);
  EXPECT_EQ(machine.cpu.reg(kL2), 5u);
}

TEST(VmAlu, SraSignExtends) {
  FunctionBuilder fb("main");
  fb.li(kO0, -64);
  fb.opi(Opcode::kSrai, kO1, kO0, 3);
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_EQ(static_cast<std::int32_t>(machine.cpu.reg(kO1)), -8);
}

TEST(VmAlu, MulDivSigned) {
  FunctionBuilder fb("main");
  fb.li(kO0, -6);
  fb.li(kO1, 7);
  fb.mul(kO2, kO0, kO1); // -42
  fb.li(kO3, -45);
  fb.opi(Opcode::kDivi, kO4, kO3, 7); // -6 (truncation toward zero)
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_EQ(static_cast<std::int32_t>(machine.cpu.reg(kO2)), -42);
  EXPECT_EQ(static_cast<std::int32_t>(machine.cpu.reg(kO4)), -6);
}

TEST(VmAlu, DivisionByZeroFaults) {
  FunctionBuilder fb("main");
  fb.li(kO0, 5);
  fb.li(kO1, 0);
  fb.op3(Opcode::kDiv, kO2, kO0, kO1);
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  EXPECT_THROW(machine.run(), VmError);
}

TEST(VmAlu, G0IsAlwaysZero) {
  FunctionBuilder fb("main");
  fb.li(kG0, 99); // write is discarded
  fb.add(kO0, kG0, kG0);
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kG0), 0u);
  EXPECT_EQ(machine.cpu.reg(kO0), 0u);
}

TEST(VmAlu, SethiOrloBuilds32BitConstant) {
  FunctionBuilder fb("main");
  fb.li(kO0, static_cast<std::int32_t>(0xdeadbeef));
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO0), 0xdeadbeefu);
}

TEST(VmFlags, SubccSetsZeroAndNegative) {
  FunctionBuilder fb("main");
  fb.li(kO0, 5);
  fb.subcci(kO0, 5);
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_TRUE(machine.cpu.icc().z);
  EXPECT_FALSE(machine.cpu.icc().n);
}

TEST(VmFlags, UnsignedCarry) {
  FunctionBuilder fb("main");
  fb.li(kO0, 1);
  fb.li(kO1, 2);
  fb.op3(Opcode::kSubcc, kG0, kO0, kO1); // 1 - 2: borrow
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_TRUE(machine.cpu.icc().c);
  EXPECT_TRUE(machine.cpu.icc().n);
}

TEST(VmBranch, SignedTakenNotTaken) {
  // Count down from 3: the loop body runs exactly 3 times.
  FunctionBuilder loop("main");
  loop.li(kO0, 3);
  loop.li(kO1, 0);
  loop.label("top");
  loop.addi(kO1, kO1, 1);
  loop.subi(kO0, kO0, 1);
  loop.subcci(kO0, 0);
  loop.bg("top");
  loop.halt();
  TestMachine machine(single(std::move(loop)));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO1), 3u);
  EXPECT_EQ(machine.cpu.reg(kO0), 0u);
}

TEST(VmBranch, UnsignedComparison) {
  // 0xffffffff > 1 unsigned (bgu), but < 0 signed.
  FunctionBuilder fb("main");
  fb.li(kO0, -1); // 0xffffffff
  fb.li(kO1, 1);
  fb.op3(Opcode::kSubcc, kG0, kO0, kO1);
  fb.li(kO2, 0);
  fb.bgu("unsigned_greater");
  fb.ba("done");
  fb.label("unsigned_greater");
  fb.li(kO2, 1);
  fb.label("done");
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO2), 1u);
}

TEST(VmBranch, BaAlwaysBnNever) {
  FunctionBuilder fb("main");
  fb.li(kO0, 0);
  fb.branch(Opcode::kBn, "skip"); // never taken
  fb.li(kO0, 1);
  fb.label("skip");
  fb.ba("end");
  fb.li(kO0, 99); // skipped
  fb.label("end");
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO0), 1u);
}

TEST(VmMemory, WordLoadStore) {
  FunctionBuilder fb("main");
  fb.load_address(kO0, "buf");
  fb.li(kO1, 0x1234);
  fb.st(kO1, kO0, 0);
  fb.ld(kO2, kO0, 0);
  fb.halt();
  TestMachine machine(
      single(std::move(fb), {DataObject{.name = "buf", .size = 16}}));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO2), 0x1234u);
  EXPECT_EQ(machine.word_at("buf"), 0x1234u);
}

TEST(VmMemory, ByteLoadStoreAndZeroExtension) {
  FunctionBuilder fb("main");
  fb.load_address(kO0, "buf");
  fb.li(kO1, 0x1ff); // truncated to 0xff on stb
  fb.stb(kO1, kO0, 1);
  fb.ldb(kO2, kO0, 1);
  fb.halt();
  TestMachine machine(
      single(std::move(fb), {DataObject{.name = "buf", .size = 8}}));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO2), 0xffu);
}

TEST(VmMemory, RegisterIndexedAddressing) {
  FunctionBuilder fb("main");
  fb.load_address(kO0, "buf");
  fb.li(kO1, 8);
  fb.li(kO2, 77);
  fb.stx(kO2, kO0, kO1);
  fb.ldx(kO3, kO0, kO1);
  fb.halt();
  TestMachine machine(
      single(std::move(fb), {DataObject{.name = "buf", .size = 16}}));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO3), 77u);
}

TEST(VmMemory, DoublewordPair) {
  FunctionBuilder fb("main");
  fb.load_address(kO0, "buf");
  fb.li(kO2, 0x11); // even register
  fb.li(kO3, 0x22); // odd partner
  fb.opi(Opcode::kStd, kO2, kO0, 0);
  fb.opi(Opcode::kLdd, kO4, kO0, 0);
  fb.halt();
  TestMachine machine(
      single(std::move(fb), {DataObject{.name = "buf", .size = 8}}));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO4), 0x11u);
  EXPECT_EQ(machine.cpu.reg(kO5), 0x22u);
}

TEST(VmMemory, MisalignedWordLoadFaults) {
  FunctionBuilder fb("main");
  fb.load_address(kO0, "buf");
  fb.ld(kO1, kO0, 2); // misaligned
  fb.halt();
  TestMachine machine(
      single(std::move(fb), {DataObject{.name = "buf", .size = 8}}));
  EXPECT_THROW(machine.run(), VmError);
}

TEST(VmMemory, OddRegisterForLddFaults) {
  FunctionBuilder fb("main");
  fb.load_address(kO0, "buf");
  fb.opi(Opcode::kLdd, kO1, kO0, 0); // odd rd
  fb.halt();
  TestMachine machine(
      single(std::move(fb), {DataObject{.name = "buf", .size = 8}}));
  EXPECT_THROW(machine.run(), VmError);
}

TEST(VmCall, CallLinksReturnAddress) {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.li(kO0, 5);
    fb.call("double_it");
    fb.mov(kO1, kO0);
    fb.halt();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("double_it"); // leaf
    fb.add(kO0, kO0, kO0);
    fb.ret_leaf();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  TestMachine machine(program);
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO1), 10u);
}

TEST(VmCall, JmplIndirectCall) {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.load_address(kG1, "target");
    fb.opi(Opcode::kJmpl, kO7, kG1, 0); // indirect call
    fb.halt();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("target");
    fb.li(kO0, 123);
    fb.ret_leaf();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  TestMachine machine(program);
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO0), 123u);
}

TEST(VmFp, ArithmeticAndConversion) {
  FunctionBuilder fb("main");
  fb.li(kO0, 3);
  fb.fitod(0, kO0); // f0 = 3.0
  fb.li(kO1, 4);
  fb.fitod(1, kO1);          // f1 = 4.0
  fb.fmuld(2, 0, 0);         // f2 = 9
  fb.fmuld(3, 1, 1);         // f3 = 16
  fb.faddd(4, 2, 3);         // f4 = 25
  fb.op3(Opcode::kFsqrtd, 5, 4, 0); // f5 = 5
  fb.fdtoi(kO2, 5);          // o2 = 5
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_DOUBLE_EQ(machine.cpu.freg(4), 25.0);
  EXPECT_DOUBLE_EQ(machine.cpu.freg(5), 5.0);
  EXPECT_EQ(machine.cpu.reg(kO2), 5u);
}

TEST(VmFp, CompareAndBranch) {
  FunctionBuilder fb("main");
  fb.li(kO0, 2);
  fb.fitod(0, kO0);
  fb.li(kO1, 3);
  fb.fitod(1, kO1);
  fb.fcmpd(0, 1);
  fb.li(kO2, 0);
  fb.branch(Opcode::kFbl, "less");
  fb.ba("done");
  fb.label("less");
  fb.li(kO2, 1);
  fb.label("done");
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO2), 1u);
}

TEST(VmFp, LoadStoreDouble) {
  FunctionBuilder fb("main");
  fb.load_address(kO0, "val");
  fb.ldf(0, kO0, 0);
  fb.faddd(1, 0, 0);
  fb.stf(1, kO0, 8);
  fb.halt();
  std::vector<std::uint8_t> init(8);
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(2.5);
  for (int i = 0; i < 8; ++i) {
    init[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
  }
  TestMachine machine(single(
      std::move(fb),
      {DataObject{.name = "val", .size = 16, .align = 8, .init = init}}));
  machine.run();
  EXPECT_DOUBLE_EQ(machine.f64_at("val", 8), 5.0);
}

TEST(VmFp, ValueDependentJitter) {
  // Same instruction sequence, different operand values: the FPU charges
  // extra cycles for denormals (paper: jitter of up to 3 cycles).
  auto run_with = [](double value) {
    FunctionBuilder fb("main");
    fb.load_address(kO0, "val");
    fb.ldf(0, kO0, 0);
    for (int i = 0; i < 50; ++i) {
      fb.faddd(1, 0, 1);
    }
    fb.halt();
    std::vector<std::uint8_t> init(8);
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
    for (int i = 0; i < 8; ++i) {
      init[i] = static_cast<std::uint8_t>(bits >> (56 - 8 * i));
    }
    Program program;
    program.functions.push_back(std::move(fb).build());
    program.data.push_back(
        DataObject{.name = "val", .size = 8, .align = 8, .init = init});
    program.entry = "main";
    TestMachine machine(program);
    machine.run();
    return machine.cpu.cycles();
  };
  const std::uint64_t normal = run_with(1.25);
  const std::uint64_t denormal = run_with(4.9e-324);
  EXPECT_GT(denormal, normal);
  EXPECT_LE(denormal, normal + 50 * 3); // bounded by fp_jitter_max
}

TEST(VmPlatform, RdtickMonotonic) {
  FunctionBuilder fb("main");
  fb.op3(Opcode::kRdtick, kO0, 0, 0);
  fb.nop();
  fb.nop();
  fb.op3(Opcode::kRdtick, kO1, 0, 0);
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_GT(machine.cpu.reg(kO1), machine.cpu.reg(kO0));
}

TEST(VmPlatform, IpointEmitsTimestamp) {
  FunctionBuilder fb("main");
  fb.ipoint(7);
  fb.nop();
  fb.ipoint(8);
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  std::vector<std::pair<std::uint32_t, std::uint64_t>> events;
  machine.cpu.set_ipoint_sink(
      [&events](std::uint32_t id, std::uint64_t cycles) {
        events.emplace_back(id, cycles);
      });
  machine.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].first, 7u);
  EXPECT_EQ(events[1].first, 8u);
  EXPECT_GT(events[1].second, events[0].second);
}

TEST(VmPlatform, HaltStopsAndReportsCounts) {
  FunctionBuilder fb("main");
  fb.nop();
  fb.nop();
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  const RunResult result = machine.run();
  EXPECT_EQ(result.stop, RunResult::Stop::kHalt);
  EXPECT_EQ(result.instructions, 3u);
  EXPECT_TRUE(machine.cpu.halted());
}

TEST(VmPlatform, InstructionLimitStopsRunaway) {
  FunctionBuilder fb("main");
  fb.label("spin");
  fb.ba("spin");
  Program program = single(std::move(fb));
  proxima::vm::VmConfig config;
  config.max_instructions = 1000;
  TestMachine machine(program, {}, config);
  const RunResult result = machine.run();
  EXPECT_EQ(result.stop, RunResult::Stop::kInstructionLimit);
  EXPECT_EQ(result.instructions, 1000u);
}

TEST(VmPlatform, CountersTrackInstructionsAndFpu) {
  FunctionBuilder fb("main");
  fb.li(kO0, 1);
  fb.fitod(0, kO0);
  fb.faddd(1, 0, 0);
  fb.fmuld(2, 1, 1);
  fb.halt();
  TestMachine machine(single(std::move(fb)));
  machine.run();
  EXPECT_EQ(machine.hierarchy.counters().instructions,
            machine.cpu.instructions());
  EXPECT_EQ(machine.hierarchy.counters().fpu_ops, 3u); // fitod+faddd+fmuld
}

TEST(VmPlatform, FlushInvalidatesLine) {
  FunctionBuilder fb("main");
  fb.load_address(kO0, "buf");
  fb.ld(kO1, kO0, 0);  // fill DL1
  fb.flush(kO0, 0);    // invalidate the line everywhere
  fb.halt();
  TestMachine machine(
      single(std::move(fb), {DataObject{.name = "buf", .size = 8}}));
  machine.run();
  EXPECT_FALSE(
      machine.hierarchy.dl1().contains(machine.image.symbol("buf").addr));
}

} // namespace
