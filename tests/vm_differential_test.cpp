// Differential testing of the predecoded fast-dispatch core AND its
// superblock tier against the reference switch interpreter — the
// behaviour-equivalence discipline the randomisation literature demands of
// any transformed/variant execution path, applied to our own VM rebuild.
//
// Every scenario-registry workload is executed once per core (reference,
// fast, fast-sb), at multiple seeds, and the results must be
// *bit-identical*: UoA cycle counts, per-run instruction counts, and the
// full mem::PerfCounters snapshot (cache/TLB misses, DRAM traffic, window
// traps, coherence violations).  This covers all four randomisation modes
// — COTS, DSR (eager and lazy first-call relocation, which rewrites code
// mid-run), static per-run re-link (image reload), and hardware
// time-randomised caches — plus the layout/PRNG/offset sweeps.
#include "casestudy/campaign.hpp"
#include "exec/registry.hpp"
#include "isa/builder.hpp"
#include "obs/metrics.hpp"
#include "vm_harness.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima;
using casestudy::CampaignConfig;
using casestudy::CampaignResult;
using casestudy::RunSample;

CampaignResult run_with_core(CampaignConfig config, vm::VmCore core) {
  config.vm_core = core;
  return casestudy::run_control_campaign(config);
}

void expect_bit_identical(const CampaignResult& fast,
                          const CampaignResult& reference,
                          const std::string& label) {
  ASSERT_EQ(fast.times.size(), reference.times.size()) << label;
  ASSERT_EQ(fast.samples.size(), reference.samples.size()) << label;
  for (std::size_t run = 0; run < fast.times.size(); ++run) {
    // Cycle counts are integers carried in doubles: exact equality.
    EXPECT_EQ(fast.times[run], reference.times[run])
        << label << " run " << run << ": UoA cycles diverge";
    const RunSample& f = fast.samples[run];
    const RunSample& r = reference.samples[run];
    EXPECT_EQ(f.counters.instructions, r.counters.instructions)
        << label << " run " << run;
    EXPECT_EQ(f.counters.icache_miss, r.counters.icache_miss)
        << label << " run " << run;
    EXPECT_EQ(f.counters.dcache_miss, r.counters.dcache_miss)
        << label << " run " << run;
    EXPECT_EQ(f.counters.l2_miss, r.counters.l2_miss) << label << " run " << run;
    // ... and everything else via the defaulted equality.
    EXPECT_TRUE(f == r) << label << " run " << run
                        << ": sample snapshot diverges";
  }
  EXPECT_EQ(fast.code_bytes, reference.code_bytes) << label;
  EXPECT_EQ(fast.verified_runs, reference.verified_runs) << label;
}

TEST(VmDifferential, EveryRegistryScenarioAtMultipleSeeds) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  constexpr std::uint32_t kRuns = 4;
  // (input_seed, layout_seed) pairs: the defaults plus a shifted pair, so
  // both the input stream and the layout stream are exercised twice.
  constexpr std::pair<std::uint64_t, std::uint64_t> kSeeds[] = {
      {2017, 611085},
      {0xdead'beef, 0x5eed'f00d},
  };
  for (const std::string& name : registry.names()) {
    for (const auto& [input_seed, layout_seed] : kSeeds) {
      CampaignConfig config = registry.at(name).make_config(kRuns);
      config.input_seed = input_seed;
      config.layout_seed = layout_seed;
      const std::string label =
          name + " @ seed " + std::to_string(input_seed);
      const CampaignResult fast = run_with_core(config, vm::VmCore::kFast);
      const CampaignResult fast_sb =
          run_with_core(config, vm::VmCore::kFastSb);
      const CampaignResult reference =
          run_with_core(config, vm::VmCore::kReference);
      expect_bit_identical(fast, reference, label + " [fast]");
      expect_bit_identical(fast_sb, reference, label + " [fast-sb]");
    }
  }
}

TEST(VmDifferential, LazyRelocationRewritesCodeMidRun) {
  // The lazy DSR scheme patches code and the function table from inside a
  // kTrapReloc handler — the hardest case for the fast core's decode-cache
  // coherence.  More runs here so several layouts (and trap orders) occur.
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  CampaignConfig config = registry.at("control/dsr-lazy").make_config(8);
  const CampaignResult fast = run_with_core(config, vm::VmCore::kFast);
  const CampaignResult fast_sb = run_with_core(config, vm::VmCore::kFastSb);
  const CampaignResult reference =
      run_with_core(config, vm::VmCore::kReference);
  expect_bit_identical(fast, reference, "control/dsr-lazy x8 [fast]");
  expect_bit_identical(fast_sb, reference, "control/dsr-lazy x8 [fast-sb]");
  // The scenario must really be running the lazy scheme for this test to
  // mean anything: the DSR pass emitted first-call stubs.
  EXPECT_GT(fast.pass_report.stubs_emitted, 0u)
      << "control/dsr-lazy no longer produces lazy-relocation stubs";
}

// The observability registry is part of the equivalence contract: both
// cores must publish bit-identical deterministic metrics — instruction mix,
// memory-hierarchy counters, DSR activity, UoA-cycle histograms — for the
// same campaign.  Gauges (decode-cache activity, wall clock) legitimately
// differ between cores (the reference core HAS no decode cache) and are
// excluded from the digest, so the digest comparison is exact.
TEST(VmDifferential, MetricRegistryAgreesAcrossCores) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  for (const char* name :
       {"control/operation-cots", "control/operation-dsr",
        "control/dsr-lazy", "image/operation-cots"}) {
    CampaignConfig config = registry.at(name).make_config(4);
    config.collect_metrics = true;
    const CampaignResult fast = run_with_core(config, vm::VmCore::kFast);
    const CampaignResult fast_sb = run_with_core(config, vm::VmCore::kFastSb);
    const CampaignResult reference =
        run_with_core(config, vm::VmCore::kReference);
    EXPECT_EQ(fast.metrics.counters, reference.metrics.counters) << name;
    EXPECT_EQ(fast.metrics.histograms, reference.metrics.histograms) << name;
    EXPECT_EQ(fast.metrics.series, reference.metrics.series) << name;
    EXPECT_EQ(fast_sb.metrics.counters, reference.metrics.counters) << name;
    EXPECT_EQ(fast_sb.metrics.histograms, reference.metrics.histograms)
        << name;
    EXPECT_EQ(fast_sb.metrics.series, reference.metrics.series) << name;
    EXPECT_EQ(obs::metrics_digest_hex(fast.metrics),
              obs::metrics_digest_hex(reference.metrics))
        << name;
    EXPECT_EQ(obs::metrics_digest_hex(fast_sb.metrics),
              obs::metrics_digest_hex(reference.metrics))
        << name;
    EXPECT_GT(fast.metrics.counters.at("mem.instructions"), 0u) << name;
  }
}

// Locked totals for control/operation-cots x 4 runs at the paper seeds:
// any change to the instruction mix, the hierarchy model, or the metric
// capture shows up here as a diff against known-good constants (the
// telemetry analogue of seed_stability_test).  The digest locks the full
// registry; the spot-checked counters make a regression readable.
TEST(VmDifferential, LockedMetricTotalsControlOperationCots) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  CampaignConfig config =
      registry.at("control/operation-cots").make_config(4);
  config.collect_metrics = true;
  const CampaignResult result = run_with_core(config, vm::VmCore::kFast);
  const obs::MetricsSnapshot& metrics = result.metrics;

  EXPECT_EQ(obs::metrics_digest_hex(metrics), "0xcd1fd24de8ff047c");
  EXPECT_EQ(metrics.counters.at("runs"), 4u);
  EXPECT_EQ(metrics.counters.at("mem.instructions"), 613487u);
  EXPECT_EQ(metrics.counters.at("mem.icache_access"), 613487u);
  EXPECT_EQ(metrics.counters.at("mem.dcache_access"), 90528u);
  EXPECT_EQ(metrics.counters.at("mem.fpu_ops"), 13191u);
  EXPECT_EQ(metrics.counters.at("vm.mix.Addi"), 84500u);
  EXPECT_EQ(metrics.counters.at("vm.mix.Subcci"), 78640u);
  EXPECT_EQ(metrics.counters.at("vm.mix.Ld"), 45056u);
  EXPECT_EQ(metrics.counters.at("vm.mix.Halt"), 4u);

  // Mix and hierarchy counters describe the same window (the measured
  // activation; the warm-up is re-based away), so the mix must sum to the
  // retired instruction total: every instruction attributed to exactly
  // one opcode.
  std::uint64_t mix_total = 0;
  for (const auto& [name, value] : metrics.counters) {
    if (name.rfind("vm.mix.", 0) == 0) {
      mix_total += value;
    }
  }
  EXPECT_EQ(mix_total, metrics.counters.at("mem.instructions"));

  const obs::Histogram& uoa = metrics.histograms.at("time.uoa_cycles");
  EXPECT_EQ(uoa.count, 4u);
  EXPECT_EQ(uoa.min, 224807u);
  EXPECT_EQ(uoa.max, 224808u);
  EXPECT_EQ(uoa.sum, 899229u);
}

// Direct machine-level differential on a handwritten program: both cores
// execute the same image and must agree on final architectural state, not
// just counters.
TEST(VmDifferential, ArchitecturalStateMatchesOnHandwrittenProgram) {
  isa::FunctionBuilder fb("main");
  fb.li(isa::kO0, 100).li(isa::kO1, 0);
  fb.label("loop");
  fb.add(isa::kO1, isa::kO1, isa::kO0);
  fb.opi(isa::Opcode::kSubcci, isa::kO0, isa::kO0, 1);
  fb.bne("loop");
  fb.halt();
  isa::Program program;
  program.functions.push_back(std::move(fb).build());

  test::TestMachine fast(program, {}, vm::VmConfig{.core = vm::VmCore::kFast});
  test::TestMachine fast_sb(program, {},
                            vm::VmConfig{.core = vm::VmCore::kFastSb});
  test::TestMachine reference(program, {},
                              vm::VmConfig{.core = vm::VmCore::kReference});
  const vm::RunResult fast_result = fast.run();
  const vm::RunResult fast_sb_result = fast_sb.run();
  const vm::RunResult reference_result = reference.run();

  EXPECT_EQ(fast_result.instructions, reference_result.instructions);
  EXPECT_EQ(fast_result.cycles, reference_result.cycles);
  EXPECT_EQ(fast_sb_result.instructions, reference_result.instructions);
  EXPECT_EQ(fast_sb_result.cycles, reference_result.cycles);
  EXPECT_EQ(fast.cpu.reg(isa::kO1), reference.cpu.reg(isa::kO1));
  EXPECT_EQ(fast_sb.cpu.reg(isa::kO1), reference.cpu.reg(isa::kO1));
  EXPECT_EQ(fast.cpu.reg(isa::kO1), 5050u);
  EXPECT_EQ(fast.cpu.icc().z, reference.cpu.icc().z);
  EXPECT_EQ(fast_sb.cpu.icc().z, reference.cpu.icc().z);
  EXPECT_EQ(fast.cpu.pc(), reference.cpu.pc());
  EXPECT_EQ(fast_sb.cpu.pc(), reference.cpu.pc());
}

// Dynamic taint tracking (vm/taint.hpp) is maintained by one shared
// transfer function called from both cores at the same point of the
// dispatch loop — the reference interpreter is the taint oracle.  Every
// leak.* counter and the sink-bits histogram must be bit-identical across
// cores, on leaky and clean targets, bare and hypervisor, eager and lazy
// DSR.
TEST(VmDifferential, TaintShadowAgreesAcrossCores) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  for (const char* name :
       {"leak/beacon-dsr", "leak/hardened-dsr", "leak/beacon-cots",
        "control/operation-dsr", "control/dsr-lazy", "leak/observer-hv"}) {
    CampaignConfig config = registry.at(name).make_config(4);
    config.taint = true;
    config.collect_metrics = true;
    const CampaignResult fast = run_with_core(config, vm::VmCore::kFast);
    // Taint forces the fast-sb tier into its op-at-a-time fallback; the
    // fallback must still be bit-identical, shadows included.
    const CampaignResult fast_sb = run_with_core(config, vm::VmCore::kFastSb);
    const CampaignResult reference =
        run_with_core(config, vm::VmCore::kReference);
    expect_bit_identical(fast, reference, std::string(name) + " [fast]");
    expect_bit_identical(fast_sb, reference,
                         std::string(name) + " [fast-sb]");
    EXPECT_EQ(fast.metrics.counters, reference.metrics.counters) << name;
    EXPECT_EQ(fast.metrics.histograms, reference.metrics.histograms) << name;
    EXPECT_EQ(fast_sb.metrics.counters, reference.metrics.counters) << name;
    EXPECT_EQ(fast_sb.metrics.histograms, reference.metrics.histograms)
        << name;
    EXPECT_EQ(obs::metrics_digest_hex(fast.metrics),
              obs::metrics_digest_hex(reference.metrics))
        << name;
    EXPECT_EQ(obs::metrics_digest_hex(fast_sb.metrics),
              obs::metrics_digest_hex(reference.metrics))
        << name;
  }
}

// The leak verdict itself: the leaky beacon's tainted %i7 store reaches
// the sink every run, the hardened variant never does — on both cores.
TEST(VmDifferential, TaintVerdictLeakyVsHardened) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  for (const vm::VmCore core :
       {vm::VmCore::kFast, vm::VmCore::kFastSb, vm::VmCore::kReference}) {
    CampaignConfig leaky = registry.at("leak/beacon-dsr").make_config(4);
    leaky.taint = true;
    leaky.collect_metrics = true;
    const CampaignResult flagged = run_with_core(leaky, core);
    EXPECT_EQ(flagged.metrics.counters.at("leak.sink_stores"), 4u);
    const obs::Histogram& bits =
        flagged.metrics.histograms.at("leak.sink_bits");
    EXPECT_EQ(bits.count, 4u);
    EXPECT_EQ(bits.max, 32u); // one leaked beacon word per run

    CampaignConfig hardened = registry.at("leak/hardened-dsr").make_config(4);
    hardened.taint = true;
    hardened.collect_metrics = true;
    const CampaignResult clean = run_with_core(hardened, core);
    EXPECT_EQ(clean.metrics.counters.at("leak.sink_stores"), 0u);
    EXPECT_EQ(clean.metrics.histograms.at("leak.sink_bits").max, 0u);
    // Both still exercised the taint machinery (calls taint %o7).
    EXPECT_GT(clean.metrics.counters.at("leak.pc_taints"), 0u);
  }
}

// Taint is purely observational: enabling it must not change times,
// samples, or any pre-existing metric — only add the leak.* family.
TEST(VmDifferential, TaintOffAndOnProduceIdenticalMeasurements) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  // Both fast cores: under taint the superblock tier executes the
  // op-at-a-time fallback, which must hide behind the same measurements.
  for (const char* name : {"leak/beacon-dsr", "control/operation-cots"}) {
    for (const vm::VmCore core : {vm::VmCore::kFast, vm::VmCore::kFastSb}) {
      CampaignConfig config = registry.at(name).make_config(4);
      config.collect_metrics = true;
      const CampaignResult off = run_with_core(config, core);
      config.taint = true;
      const CampaignResult on = run_with_core(config, core);
      ASSERT_EQ(off.times, on.times) << name;
      ASSERT_EQ(off.samples.size(), on.samples.size()) << name;
      for (std::size_t run = 0; run < off.samples.size(); ++run) {
        EXPECT_TRUE(off.samples[run] == on.samples[run])
            << name << " " << run;
      }
      for (const auto& [key, value] : on.metrics.counters) {
        if (key.rfind("leak.", 0) == 0) {
          EXPECT_FALSE(off.metrics.counters.contains(key)) << key;
        } else {
          ASSERT_TRUE(off.metrics.counters.contains(key))
              << name << " " << key;
          EXPECT_EQ(off.metrics.counters.at(key), value)
              << name << " " << key;
        }
      }
    }
  }
}

// Self-modifying code: a guest store overwrites an instruction that was
// predecoded by the warm pass.  The guest-memory write listener must
// invalidate the decoded slot so the next dispatch sees the new word,
// exactly as the reference core's fetch-decode loop does.
TEST(VmDifferential, SelfModifyingStoreInvalidatesPredecodedSlot) {
  const std::uint32_t patched_word = isa::encode(
      isa::make_r(isa::Opcode::kAdd, isa::kO1, isa::kO1, isa::kO1));

  isa::FunctionBuilder fb("main");
  fb.li(isa::kO1, 21);
  fb.li(isa::kO2, static_cast<std::int32_t>(patched_word));
  fb.load_address(isa::kO3, "patch_target");
  fb.stx(isa::kO2, isa::kO3, isa::kG0); // overwrite patch_target's first op
  fb.flush(isa::kO3, 0);                // SPARC-compliant invalidation
  fb.call("patch_target");              // never returns: target halts
  isa::FunctionBuilder target("patch_target");
  target.nop(); // becomes "add %o1, %o1, %o1" at run time
  target.halt();

  isa::Program program;
  program.functions.push_back(std::move(fb).build());
  program.functions.push_back(std::move(target).build());

  test::TestMachine fast(program, {}, vm::VmConfig{.core = vm::VmCore::kFast});
  test::TestMachine fast_sb(program, {},
                            vm::VmConfig{.core = vm::VmCore::kFastSb});
  test::TestMachine reference(program, {},
                              vm::VmConfig{.core = vm::VmCore::kReference});
  // Warm the decode cache over the whole image so the patch overwrites an
  // already-decoded slot (the hard case), not a cold one.  For the
  // superblock tier this also kills a formed-and-possibly-entered block
  // covering the patch target.
  fast.cpu.predecode(fast.image.code_begin(),
                     fast.image.code_end() - fast.image.code_begin());
  fast_sb.cpu.predecode(fast_sb.image.code_begin(),
                        fast_sb.image.code_end() -
                            fast_sb.image.code_begin());
  const vm::RunResult fast_result = fast.run();
  const vm::RunResult fast_sb_result = fast_sb.run();
  const vm::RunResult reference_result = reference.run();

  EXPECT_EQ(fast.cpu.reg(isa::kO1), 42u) << "patched add must execute";
  EXPECT_EQ(fast.cpu.reg(isa::kO1), reference.cpu.reg(isa::kO1));
  EXPECT_EQ(fast_sb.cpu.reg(isa::kO1), reference.cpu.reg(isa::kO1));
  EXPECT_EQ(fast_result.cycles, reference_result.cycles);
  EXPECT_EQ(fast_result.instructions, reference_result.instructions);
  EXPECT_EQ(fast_sb_result.cycles, reference_result.cycles);
  EXPECT_EQ(fast_sb_result.instructions, reference_result.instructions);
}

} // namespace
