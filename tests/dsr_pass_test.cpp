// Unit tests for the DSR compiler pass (Section III.B).
#include "core/dsr_pass.hpp"
#include "isa/builder.hpp"
#include "isa/linker.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima::isa;
using proxima::dsr::apply_pass;
using proxima::dsr::DsrError;
using proxima::dsr::is_stub_name;
using proxima::dsr::kFunctabSymbol;
using proxima::dsr::kStackoffSymbol;
using proxima::dsr::PassOptions;
using proxima::dsr::PassReport;

Program call_and_frame_program() {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.prologue(96);
    fb.call("helper");
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("helper");
    fb.li(kO0, 1);
    fb.ret_leaf();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  return program;
}

TEST(DsrPass, RewritesCallToTableIndirection) {
  Program program = call_and_frame_program();
  const PassReport report = apply_pass(program);
  EXPECT_EQ(report.calls_rewritten, 1u);

  const Function& main_fn = *program.find_function("main");
  // Prologue (6) + call sequence (4) + restore + jmpl = 12 instructions.
  ASSERT_EQ(main_fn.code.size(), 12u);
  // The call sequence sits right after the rewritten prologue.
  EXPECT_EQ(main_fn.code[6].op, Opcode::kSethi);
  EXPECT_EQ(main_fn.code[7].op, Opcode::kOrlo);
  EXPECT_EQ(main_fn.code[8].op, Opcode::kLd);
  EXPECT_EQ(main_fn.code[9].op, Opcode::kJmpl);
  EXPECT_EQ(main_fn.code[9].rd, kO7); // linked indirect call

  // No kCall fixups survive; the sequence references the relocation table
  // slot of helper (id 1 -> addend 4).
  for (const Fixup& fixup : main_fn.fixups) {
    EXPECT_NE(fixup.kind, FixupKind::kCall);
  }
  bool found_table_ref = false;
  for (const Fixup& fixup : main_fn.fixups) {
    if (fixup.symbol == kFunctabSymbol) {
      EXPECT_EQ(fixup.addend, 4);
      found_table_ref = true;
    }
  }
  EXPECT_TRUE(found_table_ref);
}

TEST(DsrPass, RewritesPrologueToRandomisedSave) {
  Program program = call_and_frame_program();
  const PassReport report = apply_pass(program);
  EXPECT_EQ(report.prologues_rewritten, 1u);

  const Function& main_fn = *program.find_function("main");
  EXPECT_EQ(main_fn.code[0].op, Opcode::kSethi);
  EXPECT_EQ(main_fn.code[1].op, Opcode::kOrlo);
  EXPECT_EQ(main_fn.code[2].op, Opcode::kLd);
  EXPECT_EQ(main_fn.code[3].op, Opcode::kSub);  // g7 = -offset
  EXPECT_EQ(main_fn.code[4].op, Opcode::kSubi); // g7 -= frame
  EXPECT_EQ(main_fn.code[4].imm, 96);
  EXPECT_EQ(main_fn.code[5].op, Opcode::kSavex); // atomic sp update
  EXPECT_EQ(main_fn.code[5].rd, kSp);
  EXPECT_EQ(main_fn.code[5].rs1, kSp);
  EXPECT_EQ(main_fn.code[5].rs2, kG7);

  // Offset table reference for main (id 0 -> addend 0).
  bool found = false;
  for (const Fixup& fixup : main_fn.fixups) {
    if (fixup.symbol == kStackoffSymbol) {
      EXPECT_EQ(fixup.addend, 0);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(DsrPass, EmitsMetadataTables) {
  Program program = call_and_frame_program();
  apply_pass(program);
  const DataObject* functab = program.find_data(kFunctabSymbol);
  const DataObject* stackoff = program.find_data(kStackoffSymbol);
  ASSERT_NE(functab, nullptr);
  ASSERT_NE(stackoff, nullptr);
  EXPECT_EQ(functab->size, 8u); // 2 functions x 4 bytes
  EXPECT_EQ(stackoff->size, 8u);
}

TEST(DsrPass, BranchesOverEditsStayCorrect) {
  // A branch spanning a rewritten call must still reach its label.
  Program program;
  {
    FunctionBuilder fb("main");
    fb.li(kO0, 0);
    fb.subcci(kO0, 1);
    fb.bl("skip");      // taken: skips the call
    fb.call("helper");  // will grow to 4 instructions
    fb.label("skip");
    fb.li(kO1, 5);
    fb.halt();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("helper");
    fb.ret_leaf();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  apply_pass(program);

  const Function& main_fn = *program.find_function("main");
  // The label "skip" moved from index 4 to 4 + 3 (call grew by 3).
  EXPECT_EQ(main_fn.labels.at("skip"), 7u);
  // Linking resolves the branch to the remapped label.
  const LinkedImage image = link(program);
  EXPECT_GT(image.code_bytes(), 0u);
}

TEST(DsrPass, MultipleCallsAllRewritten) {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.call("a");
    fb.call("b");
    fb.call("a");
    fb.halt();
    program.functions.push_back(fb.build());
  }
  for (const char* name : {"a", "b"}) {
    FunctionBuilder fb(name);
    fb.ret_leaf();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  const PassReport report = apply_pass(program);
  EXPECT_EQ(report.calls_rewritten, 3u);
  EXPECT_EQ(program.find_function("main")->code.size(), 3u * 4u + 1u);
}

TEST(DsrPass, ReportsOverheadRatio) {
  Program program = call_and_frame_program();
  const PassReport report = apply_pass(program);
  EXPECT_EQ(report.instructions_before, 6u);  // 4 (main) + 2 (helper)
  EXPECT_EQ(report.instructions_after, 14u);  // 12 + 2
  EXPECT_NEAR(report.overhead_ratio(), 14.0 / 6.0 - 1.0, 1e-12);
}

TEST(DsrPass, DoubleApplicationRejected) {
  Program program = call_and_frame_program();
  apply_pass(program);
  EXPECT_THROW(apply_pass(program), DsrError);
}

TEST(DsrPass, OptionsDisableRewrites) {
  Program program = call_and_frame_program();
  PassOptions options;
  options.indirect_calls = false;
  options.stack_offsets = false;
  const PassReport report = apply_pass(program, options);
  EXPECT_EQ(report.calls_rewritten, 0u);
  EXPECT_EQ(report.prologues_rewritten, 0u);
  EXPECT_EQ(program.find_function("main")->code.size(), 4u); // unchanged
  // Metadata still emitted (runtime contract).
  EXPECT_NE(program.find_data(kFunctabSymbol), nullptr);
}

TEST(DsrPass, LazyStubsEmitted) {
  Program program = call_and_frame_program();
  PassOptions options;
  options.lazy_stubs = true;
  const PassReport report = apply_pass(program, options);
  EXPECT_EQ(report.stubs_emitted, 2u);
  ASSERT_EQ(program.functions.size(), 4u);
  const Function* stub = program.find_function("__dsr_stub_helper");
  ASSERT_NE(stub, nullptr);
  EXPECT_TRUE(is_stub_name(stub->name));
  EXPECT_EQ(stub->code.front().op, Opcode::kTrapReloc);
  EXPECT_EQ(stub->code.front().imm, 1); // helper's id
  EXPECT_EQ(stub->code.back().op, Opcode::kJmpl);
  EXPECT_EQ(stub->code.back().rd, kG0); // tail jump preserves %o7
}

TEST(DsrPass, StubNameCollisionRejected) {
  Program program;
  FunctionBuilder fb("__dsr_stub_x");
  fb.halt();
  program.functions.push_back(fb.build());
  program.entry = "__dsr_stub_x";
  EXPECT_THROW(apply_pass(program), DsrError);
}

TEST(DsrPass, TransformedProgramStillLinks) {
  Program program = call_and_frame_program();
  apply_pass(program);
  const LinkedImage image = link(program);
  EXPECT_TRUE(image.has_symbol(kFunctabSymbol));
  EXPECT_TRUE(image.has_symbol(kStackoffSymbol));
  // Metadata tables are 64-byte aligned (own cache lines).
  EXPECT_EQ(image.symbol(kFunctabSymbol).addr % 64, 0u);
}

} // namespace
