// Tests for the on-disk campaign store (src/store/): resume after an
// interrupted campaign is bit-identical to an uninterrupted one at any
// worker count (fixed and adaptive), a fully stored campaign re-renders
// without simulating a single run, corrupt/truncated/mismatched cell
// files are rejected with a clear StoreError, and the config fingerprint
// keys cells by exactly the sample-determining fields.
#include "store/store.hpp"

#include "casestudy/fingerprint.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"
#include "obs/metrics.hpp"
#include "trace/report.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <unistd.h> // getpid: unique store roots per test process

namespace {

using namespace proxima;
using casestudy::CampaignConfig;
using casestudy::CampaignResult;

CampaignConfig dsr_config(std::uint32_t runs) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  CampaignConfig config =
      registry.at("control/operation-dsr").make_config(runs);
  config.collect_metrics = true; // exercise the per-run metrics round-trip
  return config;
}

exec::EngineOptions worker_options(unsigned workers) {
  exec::EngineOptions options;
  options.workers = workers;
  return options;
}

/// Quick-converging criterion for small test campaigns (mirrors
/// exec_adaptive_test).
exec::ConvergenceOptions loose_convergence(std::uint64_t batch,
                                           std::uint64_t budget) {
  exec::ConvergenceOptions options;
  options.batch_runs = batch;
  options.max_runs = budget;
  options.controller.target_exceedance = 1e-12;
  options.controller.epsilon = 0.5;
  options.controller.stable_rounds = 1;
  options.controller.min_samples = 40;
  options.controller.mbpta.block_size = 10;
  return options;
}

/// A unique, self-cleaning store root per test.
class TempStore {
public:
  explicit TempStore(const char* tag)
      : root_(std::filesystem::temp_directory_path() /
              ("proxima_store_test_" + std::to_string(::getpid()) + "_" +
               tag)) {
    std::filesystem::remove_all(root_);
  }
  ~TempStore() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }
  std::string path() const { return root_.string(); }

private:
  std::filesystem::path root_;
};

void expect_identical_campaigns(const CampaignResult& a,
                                const CampaignResult& b) {
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t i = 0; i < a.times.size(); ++i) {
    EXPECT_EQ(a.times[i], b.times[i]) << "run " << i;
  }
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_EQ(a.samples[i], b.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(a.verified_runs, b.verified_runs);
  EXPECT_EQ(a.code_bytes, b.code_bytes);
  EXPECT_EQ(trace::times_digest_hex(a.times),
            trace::times_digest_hex(b.times));
  // Gauges (wall clock, sharding) are excluded from the digest, so a
  // resumed/re-rendered campaign matches a live one bit-for-bit here.
  EXPECT_EQ(obs::metrics_digest_hex(a.metrics),
            obs::metrics_digest_hex(b.metrics));
}

// ---------------------------------------------------------------------------
// Resume after interruption.
// ---------------------------------------------------------------------------

TEST(StoreResume, InterruptedFixedCampaignResumesBitIdentically) {
  const CampaignConfig config = dsr_config(48);
  const CampaignResult live =
      exec::CampaignEngine(worker_options(2)).run(config);

  for (const unsigned workers : {1u, 8u}) {
    TempStore root(("fixed_w" + std::to_string(workers)).c_str());
    const store::CampaignStore store(root.path());

    // Interrupt: fault injection aborts the campaign partway.  Completed
    // shards were persisted by the sample sink; the faulted shard was not.
    CampaignConfig interrupted = config;
    interrupted.fault_at_run = 30;
    EXPECT_THROW(
        store.run("control/operation-dsr", interrupted,
                  worker_options(workers)),
        std::runtime_error);

    // Resume with the clean config (fault_at_run is not part of the
    // fingerprint: it decides whether the campaign completes, not what any
    // completed run measures).
    store::StoreStats stats;
    const CampaignResult resumed = store.run(
        "control/operation-dsr", config, worker_options(workers), &stats);
    expect_identical_campaigns(resumed, live);
    EXPECT_GT(stats.stored_runs, 0u)
        << "the interrupted campaign must have persisted completed shards";
    EXPECT_LT(stats.stored_runs, 48u);
    EXPECT_EQ(stats.stored_runs + stats.simulated_runs, 48u);
  }
}

TEST(StoreResume, InterruptedAdaptiveCampaignResumesBitIdentically) {
  const CampaignConfig config = dsr_config(160);
  const exec::ConvergenceOptions convergence = loose_convergence(40, 160);
  const exec::AdaptiveCampaignResult live =
      exec::CampaignEngine(worker_options(2))
          .run_adaptive(config, convergence);

  for (const unsigned workers : {1u, 8u}) {
    TempStore root(("adaptive_w" + std::to_string(workers)).c_str());
    const store::CampaignStore store(root.path());

    CampaignConfig interrupted = config;
    interrupted.fault_at_run = 50; // inside the second batch
    EXPECT_THROW(store.run_adaptive("control/operation-dsr", interrupted,
                                    convergence, worker_options(workers)),
                 std::runtime_error);

    store::StoreStats stats;
    const exec::AdaptiveCampaignResult resumed =
        store.run_adaptive("control/operation-dsr", config, convergence,
                           worker_options(workers), &stats);

    // The controller replays stored batches in run-index order at the same
    // boundaries, so the stop decision — and everything downstream of it —
    // matches the uninterrupted campaign exactly.
    EXPECT_EQ(resumed.converged, live.converged);
    EXPECT_EQ(resumed.capped, live.capped);
    EXPECT_EQ(resumed.batches, live.batches);
    ASSERT_EQ(resumed.estimates.size(), live.estimates.size());
    for (std::size_t i = 0; i < live.estimates.size(); ++i) {
      if (std::isnan(live.estimates[i])) {
        EXPECT_TRUE(std::isnan(resumed.estimates[i])) << "estimate " << i;
      } else {
        EXPECT_EQ(resumed.estimates[i], live.estimates[i])
            << "estimate " << i;
      }
    }
    expect_identical_campaigns(resumed.campaign, live.campaign);
    EXPECT_GT(stats.stored_runs, 0u);
  }
}

// ---------------------------------------------------------------------------
// Re-render from a warm store.
// ---------------------------------------------------------------------------

TEST(StoreRerender, SecondInvocationSimulatesNothing) {
  const CampaignConfig config = dsr_config(32);
  TempStore root("rerender");
  const store::CampaignStore store(root.path());

  store::StoreStats cold;
  const CampaignResult first =
      store.run("control/operation-dsr", config, worker_options(4), &cold);
  EXPECT_EQ(cold.stored_runs, 0u);
  EXPECT_EQ(cold.simulated_runs, 32u);

  store::StoreStats warm;
  const CampaignResult second =
      store.run("control/operation-dsr", config, worker_options(1), &warm);
  EXPECT_EQ(warm.stored_runs, 32u);
  EXPECT_EQ(warm.simulated_runs, 0u)
      << "a fully stored campaign must not re-simulate";
  expect_identical_campaigns(second, first);
}

TEST(StoreRerender, AdaptiveRerenderReplaysTheSameStopDecision) {
  const CampaignConfig config = dsr_config(160);
  const exec::ConvergenceOptions convergence = loose_convergence(40, 160);
  TempStore root("rerender_adaptive");
  const store::CampaignStore store(root.path());

  const exec::AdaptiveCampaignResult first = store.run_adaptive(
      "control/operation-dsr", config, convergence, worker_options(4));
  store::StoreStats warm;
  const exec::AdaptiveCampaignResult second =
      store.run_adaptive("control/operation-dsr", config, convergence,
                         worker_options(2), &warm);
  EXPECT_EQ(warm.simulated_runs, 0u);
  EXPECT_EQ(second.batches, first.batches);
  EXPECT_EQ(second.converged, first.converged);
  expect_identical_campaigns(second.campaign, first.campaign);
}

// ---------------------------------------------------------------------------
// Strict rejection of damaged or mismatched cells.
// ---------------------------------------------------------------------------

TEST(StoreErrors, TruncatedCellIsRejected) {
  const CampaignConfig config = dsr_config(16);
  TempStore root("truncated");
  const store::CampaignStore store(root.path());
  store.run("control/operation-dsr", config, worker_options(2));

  const std::string cell = store.cell_path("control/operation-dsr", config);
  const auto size = std::filesystem::file_size(cell);
  std::filesystem::resize_file(cell, size - 7); // tear the last record
  try {
    store.run("control/operation-dsr", config, worker_options(2));
    FAIL() << "a truncated cell must not be silently half-read";
  } catch (const store::StoreError& error) {
    EXPECT_NE(std::string(error.what()).find("truncated"),
              std::string::npos)
        << error.what();
  }
}

TEST(StoreErrors, CorruptPayloadIsRejected) {
  const CampaignConfig config = dsr_config(16);
  TempStore root("corrupt");
  const store::CampaignStore store(root.path());
  store.run("control/operation-dsr", config, worker_options(2));

  const std::string cell = store.cell_path("control/operation-dsr", config);
  {
    std::fstream file(cell,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(static_cast<std::streamoff>(
        std::filesystem::file_size(cell) / 2));
    const char bit = '\xff';
    file.write(&bit, 1);
  }
  try {
    store.run("control/operation-dsr", config, worker_options(2));
    FAIL() << "a corrupt cell must not be silently accepted";
  } catch (const store::StoreError& error) {
    const std::string what = error.what();
    EXPECT_TRUE(what.find("checksum") != std::string::npos ||
                what.find("truncated") != std::string::npos)
        << what;
  }
}

TEST(StoreErrors, ForeignCellFileIsRefused) {
  // A cell copied onto another config's path (different seed -> different
  // fingerprint) must be refused, not served.
  CampaignConfig config_a = dsr_config(16);
  CampaignConfig config_b = dsr_config(16);
  config_b.input_seed = config_a.input_seed + 1;
  TempStore root("foreign");
  const store::CampaignStore store(root.path());
  store.run("control/operation-dsr", config_a, worker_options(2));

  std::filesystem::copy_file(
      store.cell_path("control/operation-dsr", config_a),
      store.cell_path("control/operation-dsr", config_b));
  try {
    store.run("control/operation-dsr", config_b, worker_options(2));
    FAIL() << "a foreign cell must not resume another config's campaign";
  } catch (const store::StoreError& error) {
    EXPECT_NE(std::string(error.what()).find("fingerprint"),
              std::string::npos)
        << error.what();
  }
}

TEST(StoreErrors, CellWriterRefusesAHeaderMismatch) {
  TempStore root("writer_mismatch");
  std::filesystem::create_directories(root.path());
  const std::string path = root.path() + "/cell.pxs";
  store::CellHeader header{"control/operation-dsr", 0xabcdu, 1, 2};
  { store::CellWriter writer(path, header); }
  store::CellHeader other = header;
  other.fingerprint = 0x1234u;
  EXPECT_THROW(store::CellWriter(path, other), store::StoreError);
}

TEST(StoreErrors, MetricslessCellCannotServeAMetricsCampaign) {
  CampaignConfig config = dsr_config(16);
  config.collect_metrics = false;
  TempStore root("metricsless");
  const store::CampaignStore store(root.path());
  store.run("control/operation-dsr", config, worker_options(2));

  CampaignConfig with_metrics = config;
  with_metrics.collect_metrics = true; // same fingerprint, same cell
  EXPECT_THROW(store.run("control/operation-dsr", with_metrics,
                         worker_options(2)),
               store::StoreError);
}

// ---------------------------------------------------------------------------
// Config fingerprint.
// ---------------------------------------------------------------------------

TEST(StoreFingerprint, KeysBySampleDeterminingFieldsOnly) {
  const CampaignConfig base = dsr_config(48);
  const std::uint64_t fingerprint = casestudy::config_fingerprint(base);

  // Sample-determining knobs change the key...
  CampaignConfig seed = base;
  seed.input_seed += 1;
  EXPECT_NE(casestudy::config_fingerprint(seed), fingerprint);
  CampaignConfig layout = base;
  layout.layout_seed += 1;
  EXPECT_NE(casestudy::config_fingerprint(layout), fingerprint);
  CampaignConfig corrupt = base;
  corrupt.control.corrupt_rate += 0.25;
  EXPECT_NE(casestudy::config_fingerprint(corrupt), fingerprint);

  // ...while fields that do not change any run's sample do not: the same
  // cell serves longer campaigns (prefix), either VM core (bit-identical
  // by the differential contract), faulted re-runs, and metrics toggles.
  CampaignConfig runs = base;
  runs.runs = 480;
  EXPECT_EQ(casestudy::config_fingerprint(runs), fingerprint);
  CampaignConfig core = base;
  core.vm_core = vm::VmCore::kReference;
  EXPECT_EQ(casestudy::config_fingerprint(core), fingerprint);
  CampaignConfig faulted = base;
  faulted.fault_at_run = 3;
  EXPECT_EQ(casestudy::config_fingerprint(faulted), fingerprint);
  CampaignConfig metrics = base;
  metrics.collect_metrics = !base.collect_metrics;
  EXPECT_EQ(casestudy::config_fingerprint(metrics), fingerprint);
}

TEST(StoreFingerprint, LongerCampaignResumesFromAShorterCell) {
  // Same fingerprint, bigger runs: the short campaign's cell is the prefix
  // of the long one.
  CampaignConfig short_config = dsr_config(16);
  CampaignConfig long_config = dsr_config(40);
  TempStore root("grow");
  const store::CampaignStore store(root.path());
  store.run("control/operation-dsr", short_config, worker_options(2));

  store::StoreStats stats;
  const CampaignResult grown = store.run("control/operation-dsr",
                                         long_config, worker_options(2),
                                         &stats);
  EXPECT_EQ(stats.stored_runs, 16u);
  EXPECT_EQ(stats.simulated_runs, 24u);
  const CampaignResult live =
      exec::CampaignEngine(worker_options(2)).run(long_config);
  expect_identical_campaigns(grown, live);
}

} // namespace
