// Tests for the measured-target abstraction: any registered task can be
// the campaign's unit of analysis — the image task on the bare platform
// (the input-dependent-duration workload the ROADMAP promotes to a
// measured scenario family) and the image PARTITION measured under
// control-task interference on the hypervisor (measured-partition
// selection).
#include "casestudy/campaign.hpp"
#include "casestudy/campaign_runner.hpp"
#include "casestudy/measured_target.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace {

using namespace proxima;
using casestudy::CampaignConfig;
using casestudy::CampaignResult;
using casestudy::MeasuredTargetKind;
using casestudy::RunSample;
using casestudy::run_control_campaign;

CampaignConfig scenario(const std::string& name, std::uint32_t runs) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  return registry.at(name).make_config(runs);
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t i = 0; i < a.times.size(); ++i) {
    EXPECT_EQ(a.times[i], b.times[i]) << "run " << i;
  }
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    EXPECT_TRUE(a.samples[i] == b.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(a.verified_runs, b.verified_runs);
}

TEST(MeasuredTarget, FactorySelectsKindAndUoa) {
  CampaignConfig config;
  const auto control = casestudy::make_measured_target(config);
  EXPECT_EQ(control->kind(), MeasuredTargetKind::kControl);
  EXPECT_EQ(control->name(), "control");
  EXPECT_STREQ(control->uoa_symbol(), "control_step");
  EXPECT_FALSE(control->input_dependent_duration());

  config.measured = MeasuredTargetKind::kImage;
  const auto image = casestudy::make_measured_target(config);
  EXPECT_EQ(image->kind(), MeasuredTargetKind::kImage);
  EXPECT_EQ(image->name(), "image");
  EXPECT_STREQ(image->uoa_symbol(), "image_step");
  EXPECT_TRUE(image->input_dependent_duration());

  EXPECT_STREQ(casestudy::measured_partition_name(MeasuredTargetKind::kImage),
               "processing");
  EXPECT_STREQ(
      casestudy::measured_partition_name(MeasuredTargetKind::kControl),
      "control");
}

TEST(MeasuredTarget, ImageFamilyIsRegistered) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  EXPECT_EQ(registry.names("image/").size(), 6u);
  for (const char* name :
       {"image/operation-cots", "image/operation-dsr",
        "image/operation-hwrand", "image/analysis-cots", "image/analysis-dsr",
        "image/analysis-hwrand", "hv/image+control", "hv/image+control-dsr"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
  const CampaignConfig operation = scenario("image/operation-dsr", 9);
  EXPECT_EQ(operation.measured, MeasuredTargetKind::kImage);
  EXPECT_EQ(operation.runs, 9u);
  EXPECT_FALSE(operation.fixed_inputs);
  const CampaignConfig analysis = scenario("image/analysis-cots", 3);
  EXPECT_TRUE(analysis.fixed_inputs);
  EXPECT_EQ(analysis.image.lit_fraction, 1.0)
      << "analysis mode pins the all-lenses-lit worst-case path";
}

TEST(MeasuredTarget, BareImageCampaignMeasuresAndVerifies) {
  const CampaignConfig config = scenario("image/operation-cots", 6);
  const CampaignResult result = run_control_campaign(config);
  ASSERT_EQ(result.times.size(), 6u);
  EXPECT_EQ(result.verified_runs, 6u);
  for (const RunSample& sample : result.samples) {
    EXPECT_GT(sample.uoa_cycles, 0.0);
    EXPECT_FALSE(sample.corrupt_input)
        << "the image task has no corruption concept";
    EXPECT_TRUE(sample.partitions.empty()) << "bare platform";
  }
}

TEST(MeasuredTarget, ImageDurationIsInputDependent) {
  // Operation mode (fresh frames): the lit-lens selection makes the work
  // itself vary run to run — times must spread far beyond the platform
  // jitter.  Analysis mode (one pinned frame) on the same COTS platform:
  // the variability collapses to zero (fixed layout, fixed input, fixed
  // protocol => bit-identical activations).
  const CampaignResult operation =
      run_control_campaign(scenario("image/operation-cots", 8));
  const std::set<double> distinct(operation.times.begin(),
                                  operation.times.end());
  EXPECT_GT(distinct.size(), 4u)
      << "fresh frames must yield distinct durations";

  const CampaignResult analysis =
      run_control_campaign(scenario("image/analysis-cots", 8));
  const auto [min_it, max_it] =
      std::minmax_element(analysis.times.begin(), analysis.times.end());
  EXPECT_EQ(*min_it, *max_it)
      << "pinned frame on the fixed COTS layout must be constant";
}

TEST(MeasuredTarget, ImageCampaignsRunUnderEveryBareRandomisation) {
  for (const char* name : {"image/operation-dsr", "image/analysis-dsr",
                           "image/analysis-hwrand"}) {
    const CampaignConfig config = scenario(name, 3);
    const CampaignResult result = run_control_campaign(config);
    EXPECT_EQ(result.verified_runs, 3u) << name;
  }
  // Static re-link also works for the image target on the bare platform
  // (there is no registry scenario for it; the config arm still must).
  CampaignConfig config = scenario("image/operation-cots", 3);
  config.randomisation = casestudy::Randomisation::kStatic;
  const CampaignResult result = run_control_campaign(config);
  EXPECT_EQ(result.verified_runs, 3u);
}

TEST(MeasuredTarget, HvImageMeasuredUnderControlInterference) {
  const CampaignConfig config = scenario("hv/image+control", 3);
  ASSERT_TRUE(config.hypervisor.has_value());
  EXPECT_TRUE(config.hypervisor->control_guest);
  const CampaignResult result = run_control_campaign(config);
  ASSERT_EQ(result.samples.size(), 3u);
  for (const RunSample& sample : result.samples) {
    ASSERT_EQ(sample.partitions.size(), 2u);
    EXPECT_EQ(sample.partitions[0].partition, "processing")
        << "the measured image partition registers first";
    EXPECT_EQ(sample.partitions[0].cycles.size(), 1u)
        << "the measured partition activates once per run (last frame)";
    EXPECT_EQ(sample.partitions[1].partition, "control");
    EXPECT_EQ(sample.partitions[1].cycles.size(), config.hypervisor->frames)
        << "the control guest activates every minor frame";
    EXPECT_EQ(sample.partitions[0].overruns, 0u);
  }
  EXPECT_EQ(result.verified_runs, 3u)
      << "measured image AND control guest verify against golden models";
}

TEST(MeasuredTarget, ControlInterferenceShiftsTheMeasuredImage) {
  // The solo-vs-interference delta, mirrored from exec_hv_test: the bare
  // image analysis campaign is the interference-free baseline (same
  // pinned frame, same platform protocol).
  const CampaignResult solo =
      run_control_campaign(scenario("image/analysis-cots", 4));
  const CampaignResult interfered =
      run_control_campaign(scenario("hv/image+control", 4));
  const double solo_max =
      *std::max_element(solo.times.begin(), solo.times.end());
  const double interfered_min =
      *std::min_element(interfered.times.begin(), interfered.times.end());
  EXPECT_GT(interfered_min, solo_max)
      << "the control guest's cache traffic must slow the measured image";
}

class ImageEngineDeterminism : public ::testing::TestWithParam<const char*> {
};

TEST_P(ImageEngineDeterminism, ParallelMatchesSequential) {
  const CampaignConfig config = scenario(GetParam(), 6);
  const CampaignResult sequential = run_control_campaign(config);
  ASSERT_EQ(sequential.times.size(), 6u);
  EXPECT_EQ(sequential.verified_runs, 6u);

  exec::EngineOptions options;
  options.workers = 4; // single-run shards: workers cross every boundary
  const CampaignResult parallel = exec::CampaignEngine(options).run(config);
  expect_identical(sequential, parallel);
}

INSTANTIATE_TEST_SUITE_P(ImageFamily, ImageEngineDeterminism,
                         ::testing::Values("image/operation-cots",
                                           "image/operation-dsr",
                                           "image/analysis-hwrand",
                                           "hv/image+control",
                                           "hv/image+control-dsr"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '+' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(MeasuredTarget, MeasuredGuestCollisionIsRejected) {
  // A task kind occupies one partition: the guest matching the measured
  // target is a configuration error, not a silently duplicated program.
  CampaignConfig config = scenario("hv/image+control", 2);
  config.hypervisor->image_guest = true;
  EXPECT_THROW(casestudy::CampaignRunner{config}, std::invalid_argument);

  CampaignConfig control_config = scenario("hv/control-solo", 2);
  control_config.hypervisor->control_guest = true;
  EXPECT_THROW(casestudy::CampaignRunner{control_config},
               std::invalid_argument);
}

TEST(MeasuredTarget, HvImageRejectsStaticRandomisation) {
  CampaignConfig config = scenario("hv/image+control", 2);
  config.randomisation = casestudy::Randomisation::kStatic;
  EXPECT_THROW(casestudy::CampaignRunner{config}, std::invalid_argument);
}

} // namespace
