// Unit tests for the linker: layout, fixup resolution, explicit placement.
#include "isa/builder.hpp"
#include "isa/linker.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima::isa;
using proxima::mem::GuestMemory;

Program two_function_program() {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.prologue(96);
    fb.call("helper");
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("helper");
    fb.li(kO0, 7);
    fb.ret_leaf();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  return program;
}

TEST(Linker, SequentialLayoutAndSymbols) {
  const Program program = two_function_program();
  const LinkedImage image = link(program);
  const Symbol& main_sym = image.symbol("main");
  const Symbol& helper_sym = image.symbol("helper");
  EXPECT_EQ(main_sym.addr, 0x40000000u);
  EXPECT_EQ(main_sym.size, 4u * 4u); // save, call, restore, jmpl
  EXPECT_EQ(helper_sym.addr, main_sym.addr + main_sym.size);
  EXPECT_EQ(image.entry_addr(), main_sym.addr);
  EXPECT_TRUE(main_sym.is_code);
}

TEST(Linker, CallDisplacementResolved) {
  const Program program = two_function_program();
  const LinkedImage image = link(program);
  GuestMemory memory;
  image.load_into(memory);
  // call is the 2nd instruction of main (index 1).
  const std::uint32_t call_addr = image.symbol("main").addr + 4;
  const Instruction call = decode(memory.read_u32(call_addr));
  EXPECT_EQ(call.op, Opcode::kCall);
  const std::uint32_t target =
      call_addr + 4 * static_cast<std::uint32_t>(call.imm);
  EXPECT_EQ(target, image.symbol("helper").addr);
}

TEST(Linker, BranchDisplacementResolved) {
  Program program;
  FunctionBuilder fb("main");
  fb.li(kO0, 3);          // index 0
  fb.label("top");        // -> index 1
  fb.subcci(kO0, 1);      // index 1
  fb.bne("top");          // index 2: disp = 1 - 2 = -1
  fb.halt();
  program.functions.push_back(fb.build());
  const LinkedImage image = link(program);
  GuestMemory memory;
  image.load_into(memory);
  const Instruction bne =
      decode(memory.read_u32(image.symbol("main").addr + 8));
  EXPECT_EQ(bne.op, Opcode::kBne);
  EXPECT_EQ(bne.imm, -1);
}

TEST(Linker, HiLoFixupsResolveDataAddress) {
  Program program;
  program.data.push_back(DataObject{.name = "buf", .size = 64, .align = 8});
  FunctionBuilder fb("main");
  fb.load_address(kO0, "buf", 12);
  fb.halt();
  program.functions.push_back(fb.build());
  const LinkedImage image = link(program);
  GuestMemory memory;
  image.load_into(memory);

  const std::uint32_t base = image.symbol("main").addr;
  const Instruction sethi = decode(memory.read_u32(base));
  const Instruction orlo = decode(memory.read_u32(base + 4));
  const std::uint32_t reconstructed =
      (static_cast<std::uint32_t>(sethi.imm) << 13) |
      static_cast<std::uint32_t>(orlo.imm);
  EXPECT_EQ(reconstructed, image.symbol("buf").addr + 12);
}

TEST(Linker, DataAlignmentHonoured) {
  Program program;
  program.data.push_back(DataObject{.name = "a", .size = 3, .align = 1});
  program.data.push_back(DataObject{.name = "b", .size = 8, .align = 64});
  FunctionBuilder fb("main");
  fb.halt();
  program.functions.push_back(fb.build());
  const LinkedImage image = link(program);
  EXPECT_EQ(image.symbol("b").addr % 64, 0u);
  EXPECT_GE(image.symbol("b").addr, image.symbol("a").addr + 3);
}

TEST(Linker, DataInitialContentsLoaded) {
  Program program;
  program.data.push_back(
      DataObject{.name = "tbl", .size = 8, .align = 4, .init = {1, 2, 3}});
  FunctionBuilder fb("main");
  fb.halt();
  program.functions.push_back(fb.build());
  const LinkedImage image = link(program);
  GuestMemory memory;
  image.load_into(memory);
  const std::uint32_t addr = image.symbol("tbl").addr;
  EXPECT_EQ(memory.read_u8(addr), 1u);
  EXPECT_EQ(memory.read_u8(addr + 2), 3u);
  EXPECT_EQ(memory.read_u8(addr + 3), 0u); // zero-filled tail
}

TEST(Linker, ExplicitPlacementWins) {
  Program program = two_function_program();
  LinkOptions options;
  options.placement["helper"] = 0x40008000;
  const LinkedImage image = link(program, options);
  EXPECT_EQ(image.symbol("helper").addr, 0x40008000u);
  // Sequential functions skip the reserved range automatically.
  EXPECT_NE(image.symbol("main").addr, 0x40008000u);
}

TEST(Linker, FunctionOrderOverride) {
  Program program = two_function_program();
  LinkOptions options;
  options.function_order = {"helper", "main"};
  const LinkedImage image = link(program, options);
  EXPECT_LT(image.symbol("helper").addr, image.symbol("main").addr);
  // Function ids stay in *program* order regardless of layout order.
  EXPECT_EQ(image.function("main").id, 0u);
  EXPECT_EQ(image.function("helper").id, 1u);
}

TEST(Linker, UndefinedCallTargetFails) {
  Program program;
  FunctionBuilder fb("main");
  fb.call("ghost");
  fb.halt();
  program.functions.push_back(fb.build());
  EXPECT_THROW(link(program), LinkError);
}

TEST(Linker, UndefinedEntryFails) {
  Program program;
  FunctionBuilder fb("not_main");
  fb.halt();
  program.functions.push_back(fb.build());
  program.entry = "main";
  EXPECT_THROW(link(program), LinkError);
}

TEST(Linker, OverlappingPlacementFails) {
  Program program = two_function_program();
  LinkOptions options;
  options.placement["main"] = 0x40001000;
  options.placement["helper"] = 0x40001004; // overlaps main (16 bytes)
  EXPECT_THROW(link(program, options), LinkError);
}

TEST(Linker, UnknownPlacementSymbolFails) {
  Program program = two_function_program();
  LinkOptions options;
  options.placement["ghost"] = 0x40001000;
  EXPECT_THROW(link(program, options), LinkError);
}

TEST(Linker, FunctionRecordsCarryDsrMetadata) {
  const Program program = two_function_program();
  const LinkedImage image = link(program);
  ASSERT_EQ(image.functions().size(), 2u);
  const FunctionRecord& main_rec = image.function("main");
  EXPECT_TRUE(main_rec.has_prologue);
  EXPECT_EQ(main_rec.frame_bytes, 96u);
  const FunctionRecord& helper_rec = image.function("helper");
  EXPECT_FALSE(helper_rec.has_prologue);
  EXPECT_EQ(helper_rec.size_bytes, 8u);
}

TEST(Linker, CodeBytesSumsFunctions) {
  const Program program = two_function_program();
  const LinkedImage image = link(program);
  EXPECT_EQ(image.code_bytes(), 16u + 8u);
}

} // namespace
