// Tests for the convergence-driven adaptive campaign pipeline: the stop
// decision is taken only at deterministic batch boundaries, so for a given
// config + options the collected sample set is bit-identical at any worker
// count, and equal to a fixed campaign of the same length — the property
// that makes an adaptive pWCET reproducible.
#include "casestudy/campaign.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace proxima;
using casestudy::CampaignConfig;
using casestudy::CampaignResult;
using exec::AdaptiveCampaignResult;
using exec::ConvergenceOptions;

CampaignConfig dsr_config(std::uint32_t runs) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  return registry.at("control/operation-dsr").make_config(runs);
}

exec::EngineOptions worker_options(unsigned workers) {
  exec::EngineOptions options;
  options.workers = workers;
  return options;
}

/// Quick-converging criterion for small test campaigns.
ConvergenceOptions loose_convergence(std::uint64_t batch,
                                     std::uint64_t budget) {
  ConvergenceOptions options;
  options.batch_runs = batch;
  options.max_runs = budget;
  options.controller.target_exceedance = 1e-12;
  options.controller.epsilon = 0.5; // generous: stabilises in a few batches
  options.controller.stable_rounds = 1;
  options.controller.min_samples = 40;
  options.controller.mbpta.block_size = 10;
  return options;
}

void expect_identical(const AdaptiveCampaignResult& a,
                      const AdaptiveCampaignResult& b) {
  EXPECT_EQ(a.converged, b.converged);
  EXPECT_EQ(a.capped, b.capped);
  EXPECT_EQ(a.batches, b.batches);
  ASSERT_EQ(a.runs(), b.runs());
  for (std::size_t i = 0; i < a.campaign.times.size(); ++i) {
    EXPECT_EQ(a.campaign.times[i], b.campaign.times[i]) << "run " << i;
  }
  ASSERT_EQ(a.estimates.size(), b.estimates.size());
  for (std::size_t i = 0; i < a.estimates.size(); ++i) {
    if (std::isnan(a.estimates[i])) {
      EXPECT_TRUE(std::isnan(b.estimates[i])) << "estimate " << i;
    } else {
      EXPECT_EQ(a.estimates[i], b.estimates[i]) << "estimate " << i;
    }
  }
  EXPECT_EQ(a.campaign.verified_runs, b.campaign.verified_runs);
  EXPECT_EQ(a.campaign.code_bytes, b.campaign.code_bytes);
}

TEST(AdaptiveCampaign, StopsAtABatchBoundaryOnceConverged) {
  const ConvergenceOptions options = loose_convergence(40, 400);
  const AdaptiveCampaignResult adaptive =
      exec::CampaignEngine(worker_options(2))
          .run_adaptive(dsr_config(400), options);
  EXPECT_TRUE(adaptive.converged);
  EXPECT_FALSE(adaptive.capped);
  EXPECT_LT(adaptive.runs(), 400u) << "adaptive must stop short of the budget";
  EXPECT_EQ(adaptive.runs() % 40, 0u) << "stop only at batch boundaries";
  EXPECT_EQ(adaptive.batches, adaptive.runs() / 40);
  EXPECT_EQ(adaptive.campaign.samples.size(), adaptive.runs());
  EXPECT_EQ(adaptive.campaign.verified_runs, adaptive.runs());
}

TEST(AdaptiveCampaign, StopDecisionIsIndependentOfWorkerCount) {
  // The acceptance property: --workers 8 stops at the same run count and
  // produces bit-identical times as --workers 1 (same seed, same config).
  const ConvergenceOptions options = loose_convergence(40, 400);
  const CampaignConfig config = dsr_config(400);
  const AdaptiveCampaignResult sequential =
      exec::CampaignEngine(worker_options(1)).run_adaptive(config, options);
  const AdaptiveCampaignResult parallel =
      exec::CampaignEngine(worker_options(8)).run_adaptive(config, options);
  expect_identical(sequential, parallel);
}

TEST(AdaptiveCampaign, MatchesAFixedCampaignOfTheStopLength) {
  // An adaptive stop at N runs is the SAME campaign as a fixed N-run one:
  // times bit-identical, so the downstream pWCET fit is too.
  const ConvergenceOptions options = loose_convergence(40, 400);
  const AdaptiveCampaignResult adaptive =
      exec::CampaignEngine(worker_options(4))
          .run_adaptive(dsr_config(400), options);
  ASSERT_GT(adaptive.runs(), 0u);

  CampaignConfig fixed_config =
      dsr_config(static_cast<std::uint32_t>(adaptive.runs()));
  const CampaignResult fixed =
      exec::CampaignEngine(worker_options(1)).run(fixed_config);
  ASSERT_EQ(fixed.times.size(), adaptive.campaign.times.size());
  for (std::size_t i = 0; i < fixed.times.size(); ++i) {
    EXPECT_EQ(fixed.times[i], adaptive.campaign.times[i]) << "run " << i;
  }
  EXPECT_EQ(fixed.verified_runs, adaptive.campaign.verified_runs);
}

TEST(AdaptiveCampaign, BudgetCapsANonConvergingCampaign) {
  ConvergenceOptions options = loose_convergence(25, 60);
  options.controller.epsilon = 0.0;      // never "stable"
  options.controller.stable_rounds = 99; // unreachable
  const AdaptiveCampaignResult adaptive =
      exec::CampaignEngine(worker_options(2))
          .run_adaptive(dsr_config(60), options);
  EXPECT_FALSE(adaptive.converged);
  EXPECT_TRUE(adaptive.capped);
  EXPECT_EQ(adaptive.runs(), 60u) << "budget exhausted: 25 + 25 + 10";
  EXPECT_EQ(adaptive.batches, 3u) << "final batch truncated to the budget";
}

TEST(AdaptiveCampaign, ControllerCapStopsBeforeTheEngineBudget) {
  ConvergenceOptions options = loose_convergence(25, 500);
  options.controller.epsilon = 0.0;
  options.controller.stable_rounds = 99;
  options.controller.max_samples = 50; // the controller's own budget
  const AdaptiveCampaignResult adaptive =
      exec::CampaignEngine(worker_options(2))
          .run_adaptive(dsr_config(500), options);
  EXPECT_FALSE(adaptive.converged);
  EXPECT_TRUE(adaptive.capped);
  EXPECT_EQ(adaptive.runs(), 50u);
}

TEST(AdaptiveCampaign, DefaultBudgetIsTheConfigsRunCount) {
  ConvergenceOptions options = loose_convergence(25, 0); // max_runs unset
  options.controller.epsilon = 0.0;
  options.controller.stable_rounds = 99;
  const AdaptiveCampaignResult adaptive =
      exec::CampaignEngine(worker_options(1))
          .run_adaptive(dsr_config(50), options);
  EXPECT_EQ(adaptive.runs(), 50u) << "config.runs is the default budget";
}

TEST(AdaptiveCampaign, RejectsDegenerateOptions) {
  ConvergenceOptions zero_batch;
  zero_batch.batch_runs = 0;
  EXPECT_THROW(exec::CampaignEngine(worker_options(1))
                   .run_adaptive(dsr_config(10), zero_batch),
               std::invalid_argument);
  ConvergenceOptions zero_budget;
  zero_budget.max_runs = 0;
  EXPECT_THROW(exec::CampaignEngine(worker_options(1))
                   .run_adaptive(dsr_config(0), zero_budget),
               std::invalid_argument);
}

} // namespace
