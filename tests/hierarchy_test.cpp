// Integration tests for the LEON3 memory hierarchy (Figure 1 of the paper).
#include "mem/hierarchy.hpp"

#include <gtest/gtest.h>

namespace {

using proxima::mem::CoherenceError;
using proxima::mem::HierarchyConfig;
using proxima::mem::LatencyConfig;
using proxima::mem::leon3_hierarchy_config;
using proxima::mem::leon3_hw_randomised_config;
using proxima::mem::MemoryHierarchy;
using proxima::mem::Placement;
using proxima::mem::Replacement;

TEST(Leon3Config, MatchesPaperGeometry) {
  const HierarchyConfig config = leon3_hierarchy_config();
  EXPECT_EQ(config.il1.size_bytes, 16u * 1024u);
  EXPECT_EQ(config.il1.ways, 4u);
  EXPECT_EQ(config.dl1.size_bytes, 16u * 1024u);
  EXPECT_EQ(config.dl1.ways, 4u);
  EXPECT_EQ(config.dl1.write_policy,
            proxima::mem::WritePolicy::kWriteThroughNoAllocate);
  EXPECT_EQ(config.l2.size_bytes, 32u * 1024u);
  EXPECT_EQ(config.l2.ways, 1u); // direct-mapped
  EXPECT_EQ(config.l2.write_policy,
            proxima::mem::WritePolicy::kWriteBackAllocate);
  EXPECT_EQ(config.itlb.entries, 64u);
  EXPECT_EQ(config.dtlb.entries, 64u);
}

TEST(Hierarchy, FetchColdCostsDramPlusL2) {
  MemoryHierarchy h(leon3_hierarchy_config());
  const LatencyConfig& lat = h.latency();
  const std::uint32_t cold = h.fetch(0x40000000);
  // ITLB walk + bus + L2 (miss) + DRAM.
  EXPECT_EQ(cold, lat.tlb_walk + lat.bus + lat.l2_hit + lat.dram_read);
  EXPECT_EQ(h.counters().icache_miss, 1u);
  EXPECT_EQ(h.counters().l2_miss, 1u);
  EXPECT_EQ(h.counters().itlb_miss, 1u);

  // Same line: zero additional stall.
  EXPECT_EQ(h.fetch(0x40000004), 0u);
  EXPECT_EQ(h.counters().icache_miss, 1u);
}

TEST(Hierarchy, FetchL2HitAfterIl1Eviction) {
  MemoryHierarchy h(leon3_hierarchy_config());
  const LatencyConfig& lat = h.latency();
  h.fetch(0x40000000);
  // Evict the IL1 line by touching 4 conflicting lines (4-way set).
  // IL1 way stride = 4 KiB; L2 way stride = 32 KiB, so +4K..+16K conflict
  // only in IL1, not in the direct-mapped L2.
  for (std::uint32_t i = 1; i <= 4; ++i) {
    h.fetch(0x40000000 + i * 4096);
  }
  EXPECT_FALSE(h.il1().contains(0x40000000));
  EXPECT_TRUE(h.l2().contains(0x40000000));
  const std::uint32_t refetch = h.fetch(0x40000000);
  EXPECT_EQ(refetch, lat.bus + lat.l2_hit); // L2 hit, no DRAM
}

TEST(Hierarchy, LoadPathCounters) {
  MemoryHierarchy h(leon3_hierarchy_config());
  h.load(0x40100000);
  EXPECT_EQ(h.counters().dcache_miss, 1u);
  EXPECT_EQ(h.counters().loads, 1u);
  EXPECT_EQ(h.counters().dtlb_miss, 1u);
  h.load(0x40100004);
  EXPECT_EQ(h.counters().dcache_miss, 1u); // same line
  EXPECT_EQ(h.counters().loads, 2u);
}

TEST(Hierarchy, StoreIsAbsorbedByWriteBuffer) {
  MemoryHierarchy h(leon3_hierarchy_config());
  // Prime the TLB so the store cost is pure write-buffer behaviour.
  h.load(0x40100000);
  const std::uint32_t first = h.store(0x40100000, /*cycle=*/1000);
  EXPECT_EQ(first, 0u); // buffer empty: fully absorbed
  // Immediately-following store finds the buffer draining.
  const std::uint32_t second = h.store(0x40100020, /*cycle=*/1001);
  EXPECT_GT(second, 0u);
  // A store far in the future is absorbed again.
  const std::uint32_t third = h.store(0x40100040, /*cycle=*/10000);
  EXPECT_EQ(third, 0u);
}

TEST(Hierarchy, StoreWritesThroughToL2) {
  MemoryHierarchy h(leon3_hierarchy_config());
  h.load(0x40100000); // fill DL1 + L2
  h.store(0x40100000, 0);
  // L2 line should now be dirty (write-back allocate at L2).
  EXPECT_TRUE(h.l2().line_dirty(0x40100000));
  // DL1 line updated but NOT dirty (write-through).
  EXPECT_TRUE(h.dl1().contains(0x40100000));
  EXPECT_FALSE(h.dl1().line_dirty(0x40100000));
}

TEST(Hierarchy, StoreMissDoesNotAllocateDl1) {
  MemoryHierarchy h(leon3_hierarchy_config());
  h.store(0x40200000, 0);
  EXPECT_FALSE(h.dl1().contains(0x40200000)); // no-write-allocate
  EXPECT_TRUE(h.l2().contains(0x40200000));   // allocated in L2
}

TEST(Hierarchy, UnifiedL2SharedBetweenCodeAndData) {
  MemoryHierarchy h(leon3_hierarchy_config());
  // A fetch fills an L2 line; a load of the same line hits L2.
  h.fetch(0x40000000);
  const std::uint32_t load_cost = h.load(0x40000000);
  const LatencyConfig& lat = h.latency();
  EXPECT_EQ(load_cost, lat.tlb_walk + lat.bus + lat.l2_hit);
  EXPECT_EQ(h.counters().l2_miss, 1u); // only the initial fetch missed
}

TEST(Hierarchy, DirectMappedL2ConflictBetweenCodeAndData) {
  // The paper's "bad and rare cache layout": code and data 32K apart
  // thrash the same direct-mapped L2 set.
  MemoryHierarchy h(leon3_hierarchy_config());
  const std::uint32_t code = 0x40000000;
  const std::uint32_t data = code + 32 * 1024; // same L2 set
  h.fetch(code);
  h.load(data); // evicts the code line from L2
  h.il1().invalidate_all();
  const std::uint32_t refetch = h.fetch(code); // must go to DRAM again
  const LatencyConfig& lat = h.latency();
  EXPECT_EQ(refetch, lat.bus + lat.l2_hit + lat.dram_read);
  EXPECT_EQ(h.counters().l2_miss, 3u);
}

TEST(Hierarchy, FlushAllEmptiesEverything) {
  MemoryHierarchy h(leon3_hierarchy_config());
  h.fetch(0x40000000);
  h.load(0x40100000);
  h.store(0x40100000, 0);
  h.flush_all();
  EXPECT_FALSE(h.il1().contains(0x40000000));
  EXPECT_FALSE(h.dl1().contains(0x40100000));
  EXPECT_FALSE(h.l2().contains(0x40000000));
  EXPECT_FALSE(h.l2().contains(0x40100000));
  EXPECT_FALSE(h.itlb().contains(0x40000000));
  // Dirty L2 line was drained.
  EXPECT_GE(h.counters().dram_writes, 1u);
}

TEST(Hierarchy, StaleFetchDetectedWithoutInvalidation) {
  MemoryHierarchy h(leon3_hierarchy_config());
  h.fetch(0x40000000);                    // cache old code
  h.note_memory_written(0x40000000, 64);  // DSR rewrites code behind caches
  h.fetch(0x40000000);                    // stale hit!
  EXPECT_EQ(h.counters().coherence_violations, 1u);
}

TEST(Hierarchy, StrictModeThrowsOnStaleFetch) {
  MemoryHierarchy h(leon3_hierarchy_config());
  h.set_strict_coherence(true);
  h.fetch(0x40000000);
  h.note_memory_written(0x40000000, 4);
  EXPECT_THROW(h.fetch(0x40000000), CoherenceError);
}

TEST(Hierarchy, InvalidationRoutineClearsStaleness) {
  // This is exactly what the paper's SPARC-compliant invalidation routine
  // must achieve (Section III.B.1).
  MemoryHierarchy h(leon3_hierarchy_config());
  h.set_strict_coherence(true);
  h.fetch(0x40000000);
  h.note_memory_written(0x40000000, 64);
  h.invalidate_range(0x40000000, 64);
  EXPECT_NO_THROW(h.fetch(0x40000000)); // refilled from (new) memory
  EXPECT_EQ(h.counters().coherence_violations, 0u);
}

TEST(Hierarchy, StaleL2AlsoDetected) {
  MemoryHierarchy h(leon3_hierarchy_config());
  h.fetch(0x40000000); // fills IL1 + L2
  h.il1().invalidate_all();
  h.note_memory_written(0x40000000, 4); // L2 line now stale
  h.fetch(0x40000000);                  // IL1 miss -> stale L2 hit
  EXPECT_EQ(h.counters().coherence_violations, 1u);
}

TEST(Hierarchy, GuestStoreMarksIl1Stale) {
  // A store executed by the program itself (e.g. self-modifying code /
  // relocation loop in guest code) also breaks I/D coherence.
  MemoryHierarchy h(leon3_hierarchy_config());
  h.fetch(0x40000000);
  h.store(0x40000000, 0);
  h.fetch(0x40000000);
  EXPECT_EQ(h.counters().coherence_violations, 1u);
}

TEST(Hierarchy, L2MissRatioAsPaperComputesIt) {
  MemoryHierarchy h(leon3_hierarchy_config());
  h.fetch(0x40000000);      // icmiss + l2miss
  h.load(0x40100020);       // dcmiss + l2miss (different L2 set than code)
  h.il1().invalidate_all();
  h.fetch(0x40000000);      // icmiss, L2 hit
  EXPECT_EQ(h.counters().icache_miss, 2u);
  EXPECT_EQ(h.counters().dcache_miss, 1u);
  EXPECT_EQ(h.counters().l2_miss, 2u);
  EXPECT_NEAR(h.counters().l2_miss_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(Hierarchy, HwRandomisedLayoutChangesAcrossSeeds) {
  // With random placement, the set of L2 conflicts depends on the seed:
  // two addresses 32K apart need not conflict any more.
  int conflicts = 0;
  constexpr int kSeeds = 32;
  for (int seed = 0; seed < kSeeds; ++seed) {
    MemoryHierarchy h(leon3_hw_randomised_config());
    h.reseed(static_cast<std::uint64_t>(seed));
    const std::uint32_t a = 0x40000000;
    const std::uint32_t b = a + 32 * 1024;
    if (h.l2().set_index(a) == h.l2().set_index(b)) {
      ++conflicts;
    }
  }
  // Probability of conflict per seed is 1/1024; 32 seeds virtually never
  // all conflict (modulo placement would make conflicts == kSeeds).
  EXPECT_LT(conflicts, kSeeds / 2);
}

} // namespace
