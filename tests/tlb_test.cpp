// Unit tests for the 64-entry TLB model (Section III.A / III.B.5).
#include "mem/tlb.hpp"

#include <gtest/gtest.h>

namespace {

using proxima::mem::Tlb;
using proxima::mem::TlbConfig;

TEST(Tlb, MissThenHitSamePage) {
  Tlb tlb;
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_TRUE(tlb.access(0x1ffc)); // same 4K page
  EXPECT_EQ(tlb.stats().hits, 1u);
  EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, DistinctPagesMissIndependently) {
  Tlb tlb;
  EXPECT_FALSE(tlb.access(0x0000));
  EXPECT_FALSE(tlb.access(0x1000));
  EXPECT_FALSE(tlb.access(0x2000));
  EXPECT_TRUE(tlb.access(0x0000));
}

TEST(Tlb, CapacityIs64Pages) {
  Tlb tlb(TlbConfig{.entries = 64, .page_bytes = 4096});
  for (std::uint32_t p = 0; p < 64; ++p) {
    tlb.access(p * 4096);
  }
  // All 64 resident.
  for (std::uint32_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(tlb.contains(p * 4096)) << p;
  }
  // 65th page evicts the LRU (page 0).
  tlb.access(64 * 4096);
  EXPECT_FALSE(tlb.contains(0));
  EXPECT_TRUE(tlb.contains(64 * 4096));
}

TEST(Tlb, LruKeepsRecentlyTouched) {
  Tlb tlb(TlbConfig{.entries = 4, .page_bytes = 4096});
  tlb.access(0x0000);
  tlb.access(0x1000);
  tlb.access(0x2000);
  tlb.access(0x3000);
  tlb.access(0x0000); // refresh page 0; LRU is now page 1
  tlb.access(0x4000); // evicts page 1
  EXPECT_TRUE(tlb.contains(0x0000));
  EXPECT_FALSE(tlb.contains(0x1000));
}

TEST(Tlb, FlushEmptiesEverything) {
  Tlb tlb(TlbConfig{.entries = 8, .page_bytes = 4096});
  tlb.access(0x1000);
  tlb.access(0x2000);
  tlb.flush();
  EXPECT_FALSE(tlb.contains(0x1000));
  EXPECT_FALSE(tlb.contains(0x2000));
  EXPECT_FALSE(tlb.access(0x1000)); // miss again after flush
}

TEST(Tlb, PageGranularity) {
  Tlb tlb(TlbConfig{.entries = 8, .page_bytes = 8192});
  tlb.access(0x0000);
  EXPECT_TRUE(tlb.access(0x1fff)); // same 8K page
  EXPECT_FALSE(tlb.access(0x2000)); // next page
}

} // namespace
