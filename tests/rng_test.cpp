// Unit tests for the random sources backing DSR (Section III.B.3).
#include "rng/distributions.hpp"
#include "rng/lfsr.hpp"
#include "rng/mwc.hpp"
#include "rng/splitmix.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <set>
#include <vector>

namespace {

using proxima::rng::Lfsr;
using proxima::rng::Lfsr16;
using proxima::rng::Mwc;
using proxima::rng::RandomSource;
using proxima::rng::SplitMix64;

TEST(Mwc, MatchesMarsagliaRecurrence) {
  Mwc mwc(42);
  const std::uint32_t z0 = mwc.state_z();
  const std::uint32_t w0 = mwc.state_w();
  const std::uint32_t expected_z = 36969 * (z0 & 0xffffU) + (z0 >> 16);
  const std::uint32_t expected_w = 18000 * (w0 & 0xffffU) + (w0 >> 16);
  const std::uint32_t out = mwc.next_u32();
  EXPECT_EQ(out, (expected_z << 16) + expected_w);
  EXPECT_EQ(mwc.state_z(), expected_z);
  EXPECT_EQ(mwc.state_w(), expected_w);
}

TEST(Mwc, DeterministicForSameSeed) {
  Mwc a(123);
  Mwc b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(Mwc, DifferentSeedsDiverge) {
  Mwc a(1);
  Mwc b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next_u32() == b.next_u32()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(Mwc, SeedNeverProducesDegenerateState) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Mwc mwc(seed);
    EXPECT_NE(mwc.state_z() & 0xffffU, 0u) << "seed " << seed;
    EXPECT_NE(mwc.state_w() & 0xffffU, 0u) << "seed " << seed;
  }
}

TEST(Mwc, UniformityChiSquare) {
  // 16 buckets over the top 4 bits; chi-square with 15 dof should stay
  // well below the 0.001 critical value (37.7) for a healthy generator.
  Mwc mwc(7);
  std::array<std::uint32_t, 16> buckets{};
  constexpr int kDraws = 160000;
  for (int i = 0; i < kDraws; ++i) {
    ++buckets[mwc.next_u32() >> 28];
  }
  const double expected = kDraws / 16.0;
  double chi2 = 0.0;
  for (const std::uint32_t count : buckets) {
    const double diff = count - expected;
    chi2 += diff * diff / expected;
  }
  EXPECT_LT(chi2, 37.7);
}

TEST(Mwc, NextBelowIsUnbiasedAcrossRange) {
  Mwc mwc(99);
  constexpr std::uint32_t kBound = 7;
  std::array<std::uint32_t, kBound> buckets{};
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) {
    const std::uint32_t v = mwc.next_below(kBound);
    ASSERT_LT(v, kBound);
    ++buckets[v];
  }
  const double expected = static_cast<double>(kDraws) / kBound;
  for (const std::uint32_t count : buckets) {
    EXPECT_NEAR(count, expected, expected * 0.1);
  }
}

TEST(Mwc, NextBelowZeroAndOne) {
  Mwc mwc(5);
  EXPECT_EQ(mwc.next_below(0), 0u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(mwc.next_below(1), 0u);
  }
}

TEST(Mwc, NextDoubleInUnitInterval) {
  Mwc mwc(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = mwc.next_double();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Mwc, NextOffsetRespectsAlignmentAndRange) {
  // This is the exact operation DSR performs: random stack/code offsets
  // must be multiples of 8 (SPARC doubleword alignment) within a way size.
  Mwc mwc(13);
  constexpr std::uint32_t kWaySize = 32 * 1024; // L2 way
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const std::uint32_t off = mwc.next_offset(kWaySize, 8);
    ASSERT_LT(off, kWaySize);
    ASSERT_EQ(off % 8, 0u);
    seen.insert(off);
  }
  // 4096 possible slots; 5000 draws should cover a large fraction.
  EXPECT_GT(seen.size(), 2000u);
}

TEST(Lfsr16, PeriodIsMaximal) {
  // Exhaustively verify the 16-bit reference LFSR has period 2^16 - 1,
  // evidence for the maximality of the same-family 32-bit polynomial.
  Lfsr16 lfsr(0x1u);
  const std::uint16_t start = lfsr.state();
  std::uint32_t period = 0;
  do {
    lfsr.step();
    ++period;
  } while (lfsr.state() != start && period <= 70000);
  EXPECT_EQ(period, 65535u);
}

TEST(Lfsr, NeverReachesZeroState) {
  Lfsr lfsr(123);
  for (int i = 0; i < 100000; ++i) {
    lfsr.step();
    ASSERT_NE(lfsr.state(), 0u);
  }
}

TEST(Lfsr, SeedZeroRemapped) {
  Lfsr lfsr(0);
  EXPECT_NE(lfsr.state(), 0u);
}

TEST(Lfsr, WordOutputBalanced) {
  Lfsr lfsr(77);
  std::uint64_t ones = 0;
  constexpr int kWords = 4000;
  for (int i = 0; i < kWords; ++i) {
    ones += std::popcount(lfsr.next_u32());
  }
  const double fraction = static_cast<double>(ones) / (32.0 * kWords);
  EXPECT_NEAR(fraction, 0.5, 0.01);
}

TEST(Lfsr, DeterministicForSameSeed) {
  Lfsr a(9);
  Lfsr b(9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.next_u32(), b.next_u32());
  }
}

TEST(SplitMix, KnownFirstOutputs) {
  // Reference values for seed 0 (widely published SplitMix64 vectors).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Distributions, ExponentialMeanMatchesRate) {
  Mwc mwc(3);
  const double rate = 2.5;
  double sum = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    sum += proxima::rng::sample_exponential(mwc, rate);
  }
  EXPECT_NEAR(sum / kDraws, 1.0 / rate, 0.01);
}

TEST(Distributions, GumbelLocationScale) {
  Mwc mwc(4);
  const double mu = 10.0;
  const double beta = 2.0;
  double sum = 0;
  constexpr int kDraws = 200000;
  std::vector<double> xs(kDraws);
  for (int i = 0; i < kDraws; ++i) {
    xs[i] = proxima::rng::sample_gumbel(mwc, mu, beta);
    sum += xs[i];
  }
  const double mean = sum / kDraws;
  // E[Gumbel] = mu + beta * gamma (gamma ~ 0.5772)
  EXPECT_NEAR(mean, mu + beta * 0.57721566, 0.05);
}

TEST(Distributions, NormalMoments) {
  Mwc mwc(6);
  double sum = 0;
  double sum2 = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = proxima::rng::sample_normal(mwc, 5.0, 3.0);
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / kDraws;
  const double var = sum2 / kDraws - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Distributions, GpdShapeZeroIsExponential) {
  Mwc a(8);
  Mwc b(8);
  for (int i = 0; i < 1000; ++i) {
    const double x = proxima::rng::sample_gpd(a, 2.0, 0.0);
    const double e = proxima::rng::sample_exponential(b, 0.5);
    ASSERT_NEAR(x, e, 1e-9);
  }
}

TEST(Distributions, UniformBounds) {
  Mwc mwc(14);
  for (int i = 0; i < 10000; ++i) {
    const double x = proxima::rng::sample_uniform(mwc, -3.0, 7.0);
    ASSERT_GE(x, -3.0);
    ASSERT_LT(x, 7.0);
  }
}

// Interface-level property: both qualified generators (Section III.B.3)
// deliver aligned offsets uniformly — the DSR requirement.
class RandomSourceProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomSourceProperty, OffsetsCoverAllSlots) {
  std::unique_ptr<RandomSource> source;
  if (GetParam() == 0) {
    source = std::make_unique<Mwc>(21);
  } else {
    source = std::make_unique<Lfsr>(21);
  }
  constexpr std::uint32_t kRange = 256;
  std::set<std::uint32_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const std::uint32_t off = source->next_offset(kRange, 8);
    ASSERT_EQ(off % 8, 0u);
    ASSERT_LT(off, kRange);
    seen.insert(off);
  }
  EXPECT_EQ(seen.size(), kRange / 8); // all 32 slots reached
}

INSTANTIATE_TEST_SUITE_P(BothGenerators, RandomSourceProperty,
                         ::testing::Values(0, 1));

} // namespace
