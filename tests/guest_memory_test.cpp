// Unit tests for the sparse big-endian guest memory.
#include "mem/guest_memory.hpp"

#include <cmath>
#include <gtest/gtest.h>

namespace {

using proxima::mem::GuestMemory;

TEST(GuestMemory, ZeroInitialised) {
  GuestMemory mem;
  EXPECT_EQ(mem.read_u8(0x1000), 0u);
  EXPECT_EQ(mem.read_u32(0xdeadbeec), 0u);
  EXPECT_EQ(mem.resident_pages(), 0u); // reads do not materialise pages
}

TEST(GuestMemory, ByteRoundTrip) {
  GuestMemory mem;
  mem.write_u8(0x42, 0xab);
  EXPECT_EQ(mem.read_u8(0x42), 0xab);
}

TEST(GuestMemory, WordIsBigEndian) {
  GuestMemory mem;
  mem.write_u32(0x100, 0x11223344);
  EXPECT_EQ(mem.read_u8(0x100), 0x11);
  EXPECT_EQ(mem.read_u8(0x101), 0x22);
  EXPECT_EQ(mem.read_u8(0x102), 0x33);
  EXPECT_EQ(mem.read_u8(0x103), 0x44);
  EXPECT_EQ(mem.read_u32(0x100), 0x11223344u);
}

TEST(GuestMemory, HalfwordRoundTrip) {
  GuestMemory mem;
  mem.write_u16(0x200, 0xbeef);
  EXPECT_EQ(mem.read_u16(0x200), 0xbeef);
  EXPECT_EQ(mem.read_u8(0x200), 0xbe);
}

TEST(GuestMemory, DoublewordRoundTrip) {
  GuestMemory mem;
  mem.write_u64(0x300, 0x0102030405060708ULL);
  EXPECT_EQ(mem.read_u64(0x300), 0x0102030405060708ULL);
  EXPECT_EQ(mem.read_u32(0x300), 0x01020304u);
  EXPECT_EQ(mem.read_u32(0x304), 0x05060708u);
}

TEST(GuestMemory, DoubleRoundTrip) {
  GuestMemory mem;
  mem.write_f64(0x400, 3.14159265358979);
  EXPECT_DOUBLE_EQ(mem.read_f64(0x400), 3.14159265358979);
  mem.write_f64(0x408, -0.0);
  EXPECT_EQ(std::signbit(mem.read_f64(0x408)), true);
}

TEST(GuestMemory, CrossPageWord) {
  GuestMemory mem;
  const std::uint32_t addr = GuestMemory::kPageBytes - 2;
  mem.write_u32(addr, 0xcafebabe);
  EXPECT_EQ(mem.read_u32(addr), 0xcafebabeu);
  EXPECT_EQ(mem.resident_pages(), 2u);
}

TEST(GuestMemory, CopyNonOverlapping) {
  GuestMemory mem;
  for (std::uint32_t i = 0; i < 64; ++i) {
    mem.write_u8(0x1000 + i, static_cast<std::uint8_t>(i * 3));
  }
  mem.copy(0x2000, 0x1000, 64);
  for (std::uint32_t i = 0; i < 64; ++i) {
    ASSERT_EQ(mem.read_u8(0x2000 + i), static_cast<std::uint8_t>(i * 3));
  }
}

TEST(GuestMemory, CopyOverlappingForward) {
  GuestMemory mem;
  for (std::uint32_t i = 0; i < 16; ++i) {
    mem.write_u8(0x100 + i, static_cast<std::uint8_t>(i));
  }
  mem.copy(0x104, 0x100, 16); // dst > src overlap
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_EQ(mem.read_u8(0x104 + i), i);
  }
}

TEST(GuestMemory, CopyOverlappingBackward) {
  GuestMemory mem;
  for (std::uint32_t i = 0; i < 16; ++i) {
    mem.write_u8(0x100 + i, static_cast<std::uint8_t>(i));
  }
  mem.copy(0xfc, 0x100, 16); // dst < src overlap
  for (std::uint32_t i = 0; i < 16; ++i) {
    ASSERT_EQ(mem.read_u8(0xfc + i), i);
  }
}

TEST(GuestMemory, FillAndLoad) {
  GuestMemory mem;
  mem.fill(0x500, 32, 0x5a);
  EXPECT_EQ(mem.read_u8(0x500), 0x5a);
  EXPECT_EQ(mem.read_u8(0x51f), 0x5a);
  EXPECT_EQ(mem.read_u8(0x520), 0u);

  mem.load(0x600, {1, 2, 3, 4});
  EXPECT_EQ(mem.read_u32(0x600), 0x01020304u);
}

TEST(GuestMemory, ClearDropsEverything) {
  GuestMemory mem;
  mem.write_u32(0x700, 0x12345678);
  mem.clear();
  EXPECT_EQ(mem.read_u32(0x700), 0u);
  EXPECT_EQ(mem.resident_pages(), 0u);
}

TEST(GuestMemory, HighAddressesWork) {
  GuestMemory mem;
  mem.write_u32(0xfffffff8, 0x99aabbcc);
  EXPECT_EQ(mem.read_u32(0xfffffff8), 0x99aabbccu);
}

} // namespace
