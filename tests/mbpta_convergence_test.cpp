// Edge-case tests for the MBPTA ConvergenceController: the incremental
// measure-test-extend loop that decides when a measurement campaign has
// collected enough runs.  Covers the paths a streaming campaign can hit:
// empty shards, degenerate (constant) timing, an i.i.d. verdict that flips
// mid-stream, and the non-convergence cap that bounds the campaign budget.
#include "mbpta/mbpta.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace {

using proxima::mbpta::ConvergenceController;

ConvergenceController::Config small_config() {
  ConvergenceController::Config config;
  config.min_samples = 50;
  config.mbpta.block_size = 10;
  return config;
}

/// Deterministic pseudo-random execution times (no global RNG state so the
/// test is order-independent).
class Lcg {
public:
  explicit Lcg(std::uint64_t seed) : state_(seed) {}
  double next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    return 1000.0 + static_cast<double>((state_ >> 33) % 1000);
  }
  std::vector<double> batch(std::size_t n) {
    std::vector<double> values;
    values.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      values.push_back(next());
    }
    return values;
  }

private:
  std::uint64_t state_;
};

TEST(ConvergenceController, RejectsBodyProbabilityTargetsUpFront) {
  // A target exceedance with target * block_size >= 1 is a body
  // probability the block-maxima fit can never answer: PwcetModel::pwcet
  // throws for it (clamp bugfix), so the controller must reject the
  // configuration at construction instead of failing mid-campaign after
  // min_samples runs have been burned.
  ConvergenceController::Config config = small_config(); // block_size 10
  config.target_exceedance = 0.2;                        // p_block = 2
  EXPECT_THROW(ConvergenceController{config}, std::invalid_argument);
  config.target_exceedance = 0.0;
  EXPECT_THROW(ConvergenceController{config}, std::invalid_argument);
  config.target_exceedance = 0.05; // p_block = 0.5: valid
  EXPECT_NO_THROW(ConvergenceController{config});
  // POT has no block-size restriction.
  config.target_exceedance = 0.2;
  config.mbpta.method = proxima::mbpta::TailMethod::kPotGpd;
  EXPECT_NO_THROW(ConvergenceController{config});
}

TEST(ConvergenceController, EmptyBatchesAreHarmless) {
  ConvergenceController controller(small_config());
  EXPECT_FALSE(controller.add_batch({}));
  EXPECT_FALSE(controller.add_batch({}));
  EXPECT_EQ(controller.samples_used(), 0u);
  EXPECT_TRUE(controller.estimates().empty());
  EXPECT_FALSE(controller.converged());
  EXPECT_FALSE(controller.capped());

  // An empty batch between real ones must not disturb the accounting.
  Lcg rng(7);
  EXPECT_FALSE(controller.add_batch(rng.batch(30)));
  EXPECT_FALSE(controller.add_batch({}));
  EXPECT_EQ(controller.samples_used(), 30u);
}

TEST(ConvergenceController, DegenerateConstantSamplesConvergeToTheConstant) {
  // A perfectly deterministic platform: every run takes exactly the same
  // time.  The Gumbel fit degenerates (zero scale) and the pWCET estimate
  // IS the constant; the controller must converge rather than wedge.
  ConvergenceController controller(small_config());
  const std::vector<double> constant(60, 1000.0);
  bool done = false;
  for (int batch = 0; batch < 10 && !done; ++batch) {
    done = controller.add_batch(constant);
  }
  EXPECT_TRUE(done);
  EXPECT_TRUE(controller.converged());
  EXPECT_FALSE(controller.capped());
  ASSERT_FALSE(controller.estimates().empty());
  EXPECT_EQ(controller.estimates().back(), 1000.0);
}

TEST(ConvergenceController, IidVerdictFlippingMidStreamResetsStability) {
  ConvergenceController controller(small_config());
  Lcg rng(12345);
  // Seed with well-behaved batches (not yet converged).
  for (int batch = 0; batch < 3; ++batch) {
    ASSERT_FALSE(controller.add_batch(rng.batch(50)));
  }
  const std::size_t estimates_before = controller.estimates().size();

  // A strong trend destroys independence: the i.i.d. verdict flips, the
  // estimate slot records NaN, and the stability streak resets.
  std::vector<double> ramp;
  for (int i = 0; i < 200; ++i) {
    ramp.push_back(1000.0 + 50.0 * i);
  }
  EXPECT_FALSE(controller.add_batch(ramp));
  EXPECT_FALSE(controller.converged());
  ASSERT_GT(controller.estimates().size(), estimates_before);
  EXPECT_TRUE(std::isnan(controller.estimates().back()))
      << "a failed i.i.d. verdict must be recorded as a NaN estimate";

  // Even if the verdict recovered instantly, stable_rounds consecutive
  // stable estimates are required from scratch — the next few batches
  // cannot possibly converge.
  for (int batch = 0; batch < 3; ++batch) {
    controller.add_batch(rng.batch(50));
    EXPECT_FALSE(controller.converged())
        << "stability must restart after an i.i.d. flip";
  }
}

TEST(ConvergenceController, NonConvergenceCapStopsTheCampaign) {
  ConvergenceController::Config config = small_config();
  config.max_samples = 700;
  ConvergenceController controller(config);

  // Alternate between two shifted distributions so the KS identical-
  // distribution test keeps failing and convergence never happens.
  Lcg rng(99);
  bool done = false;
  int batches = 0;
  while (!done && batches < 100) {
    std::vector<double> batch = rng.batch(50);
    if (batches % 2 == 1) {
      for (double& value : batch) {
        value += 100000.0; // gross distribution shift
      }
    }
    done = controller.add_batch(batch);
    ++batches;
  }
  EXPECT_TRUE(done) << "the cap must terminate a non-converging campaign";
  EXPECT_TRUE(controller.capped());
  EXPECT_FALSE(controller.converged());
  EXPECT_GE(controller.samples_used(), 700u);
  EXPECT_LE(controller.samples_used(), 750u) << "cap must fire on the first "
                                                "batch crossing max_samples";
}

TEST(ConvergenceController, CapDoesNotFireWhenConvergenceComesFirst) {
  ConvergenceController::Config config = small_config();
  config.max_samples = 100000; // far beyond what convergence needs
  ConvergenceController controller(config);
  Lcg rng(12345);
  bool done = false;
  int batches = 0;
  while (!done && batches < 100) {
    done = controller.add_batch(rng.batch(50));
    ++batches;
  }
  EXPECT_TRUE(done);
  EXPECT_TRUE(controller.converged());
  EXPECT_FALSE(controller.capped());
}

} // namespace
