// Unit tests for the HeapLayers-style pools (Sections III.B.3 / III.B.5).
#include "alloc/pool.hpp"
#include "rng/mwc.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using proxima::alloc::AllocError;
using proxima::alloc::PageAllocator;
using proxima::alloc::RandomObjectPool;
using proxima::alloc::Region;
using proxima::rng::Mwc;

constexpr Region kRegion{0x50000000, 4 * 1024 * 1024}; // 1024 pages

TEST(PageAllocator, RejectsMisalignedRegion) {
  Mwc rng(1);
  EXPECT_THROW(PageAllocator(Region{0x1001, 4096}, rng), AllocError);
  EXPECT_THROW(PageAllocator(Region{0x1000, 100}, rng), AllocError);
  EXPECT_THROW(PageAllocator(Region{0x1000, 0}, rng), AllocError);
}

TEST(PageAllocator, ChunksArePageAlignedAndInsideRegion) {
  Mwc rng(2);
  PageAllocator pages(kRegion, rng);
  for (int i = 0; i < 100; ++i) {
    const std::uint32_t addr = pages.take_pages(3);
    EXPECT_EQ(addr % PageAllocator::kPageBytes, 0u);
    EXPECT_GE(addr, kRegion.base);
    EXPECT_LE(addr + 3 * PageAllocator::kPageBytes,
              kRegion.base + kRegion.size);
  }
}

TEST(PageAllocator, AllocationsNeverOverlap) {
  Mwc rng(3);
  PageAllocator pages(kRegion, rng);
  std::set<std::uint32_t> taken;
  for (int i = 0; i < 200; ++i) {
    const std::uint32_t addr = pages.take_pages(2);
    for (std::uint32_t p = 0; p < 2; ++p) {
      const std::uint32_t page = addr + p * PageAllocator::kPageBytes;
      EXPECT_TRUE(taken.insert(page).second) << "page reused: " << page;
    }
  }
}

TEST(PageAllocator, PlacementIsPageDiverse) {
  // Chunks should scatter across the region, not pack sequentially: this is
  // what randomises the TLBs (Section III.B.5).
  Mwc rng(4);
  PageAllocator pages(kRegion, rng);
  std::vector<std::uint32_t> addresses;
  for (int i = 0; i < 50; ++i) {
    addresses.push_back(pages.take_pages(1));
  }
  int ascending_runs = 0;
  for (std::size_t i = 1; i < addresses.size(); ++i) {
    if (addresses[i] == addresses[i - 1] + PageAllocator::kPageBytes) {
      ++ascending_runs;
    }
  }
  // A bump allocator would give 49 sequential neighbours; random placement
  // across 1024 pages virtually never does.
  EXPECT_LT(ascending_runs, 10);
}

TEST(PageAllocator, ExhaustionThrows) {
  Mwc rng(5);
  PageAllocator pages(Region{0x50000000, 4 * 4096}, rng);
  pages.take_pages(2);
  pages.take_pages(2);
  EXPECT_THROW(pages.take_pages(1), AllocError);
}

TEST(PageAllocator, ReleaseAllowsReuse) {
  Mwc rng(6);
  PageAllocator pages(Region{0x50000000, 4 * 4096}, rng);
  const std::uint32_t a = pages.take_pages(4);
  pages.release(a, 4);
  EXPECT_EQ(pages.free_pages(), 4u);
  EXPECT_NO_THROW(pages.take_pages(4));
}

TEST(PageAllocator, DoubleReleaseThrows) {
  Mwc rng(7);
  PageAllocator pages(Region{0x50000000, 4 * 4096}, rng);
  const std::uint32_t a = pages.take_pages(1);
  pages.release(a, 1);
  EXPECT_THROW(pages.release(a, 1), AllocError);
}

TEST(PageAllocator, ResetReclaimsEverything) {
  Mwc rng(8);
  PageAllocator pages(Region{0x50000000, 8 * 4096}, rng);
  pages.take_pages(3);
  pages.take_pages(3);
  pages.reset();
  EXPECT_EQ(pages.free_pages(), 8u);
}

TEST(PageAllocator, FragmentationDetected) {
  Mwc rng(9);
  PageAllocator pages(Region{0x50000000, 4 * 4096}, rng);
  // Take all pages one by one, free two non-adjacent ones.
  std::vector<std::uint32_t> singles;
  for (int i = 0; i < 4; ++i) {
    singles.push_back(pages.take_pages(1));
  }
  std::sort(singles.begin(), singles.end());
  pages.release(singles[0], 1);
  pages.release(singles[2], 1);
  EXPECT_EQ(pages.free_pages(), 2u);
  EXPECT_THROW(pages.take_pages(2), AllocError); // no contiguous pair
}

TEST(RandomObjectPool, OffsetWithinWayAndAligned) {
  Mwc rng(10);
  // 100 chunks of ~9 pages under random placement need generous headroom.
  PageAllocator pages(Region{0x50000000, 64 * 1024 * 1024}, rng);
  RandomObjectPool pool(pages, rng, 32 * 1024, 8);
  for (int i = 0; i < 100; ++i) {
    const auto a = pool.allocate(512);
    EXPECT_LT(a.offset, 32u * 1024u);
    EXPECT_EQ(a.offset % 8, 0u);
    EXPECT_EQ(a.addr, a.chunk_base + a.offset);
  }
}

TEST(RandomObjectPool, OffsetsCoverTheWayUniformly) {
  // DSR requirement: the object must be mappable to ANY line of a way.
  Mwc rng(11);
  PageAllocator pages(Region{0x50000000, 64 * 1024 * 1024}, rng);
  RandomObjectPool pool(pages, rng, 4096, 8);
  std::set<std::uint32_t> line_offsets; // 32-byte-line granularity
  for (int i = 0; i < 2000; ++i) {
    const auto a = pool.allocate(64);
    line_offsets.insert(a.offset / 32);
    pool.free(a);
  }
  EXPECT_EQ(line_offsets.size(), 4096u / 32u); // every line index reached
}

TEST(RandomObjectPool, ChunkCoversObjectAtMaxOffset) {
  Mwc rng(12);
  PageAllocator pages(kRegion, rng);
  RandomObjectPool pool(pages, rng, 32 * 1024, 8);
  const auto a = pool.allocate(10000);
  const std::uint32_t chunk_bytes =
      a.chunk_pages * PageAllocator::kPageBytes;
  EXPECT_GE(chunk_bytes, 32u * 1024u + 10000u);
  EXPECT_LE(a.offset + 10000u, chunk_bytes);
}

TEST(RandomObjectPool, ResetReturnsAllPages) {
  Mwc rng(13);
  PageAllocator pages(kRegion, rng);
  RandomObjectPool pool(pages, rng, 4096, 8);
  const std::uint32_t before = pages.free_pages();
  for (int i = 0; i < 10; ++i) {
    pool.allocate(100);
  }
  EXPECT_LT(pages.free_pages(), before);
  pool.reset();
  EXPECT_EQ(pages.free_pages(), before);
}

TEST(RandomObjectPool, DeterministicPerSeed) {
  auto layout = [](std::uint64_t seed) {
    Mwc rng(seed);
    PageAllocator pages(kRegion, rng);
    RandomObjectPool pool(pages, rng, 32 * 1024, 8);
    std::vector<std::uint32_t> addrs;
    for (int i = 0; i < 20; ++i) {
      addrs.push_back(pool.allocate(256).addr);
    }
    return addrs;
  };
  EXPECT_EQ(layout(99), layout(99));
  EXPECT_NE(layout(99), layout(100));
}

TEST(RandomObjectPool, RejectsBadParameters) {
  Mwc rng(14);
  PageAllocator pages(kRegion, rng);
  EXPECT_THROW(RandomObjectPool(pages, rng, 0, 8), AllocError);
  EXPECT_THROW(RandomObjectPool(pages, rng, 4096, 12), AllocError); // not pow2
  RandomObjectPool pool(pages, rng, 4096, 8);
  EXPECT_THROW(pool.allocate(0), AllocError);
}

TEST(RandomObjectPool, StatsTrackUsage) {
  Mwc rng(15);
  PageAllocator pages(kRegion, rng);
  RandomObjectPool pool(pages, rng, 4096, 8);
  pool.allocate(100);
  pool.allocate(200);
  EXPECT_EQ(pool.stats().allocations, 2u);
  EXPECT_EQ(pool.stats().bytes_requested, 300u);
  EXPECT_GT(pool.stats().bytes_reserved, pool.stats().bytes_requested);
}

} // namespace
