// Unit tests for the DecodeCache's two invalidation shapes — the per-slot
// write-listener walk (which must also kill covering superblocks) and the
// kMaxPages wholesale drop (which must reset the MRU page memo and every
// superblock, never leaving a dangling pointer) — plus the superblock
// formation rules the fast-sb dispatch tier relies on.
#include "isa/instruction.hpp"
#include "mem/guest_memory.hpp"
#include "vm/decode.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima;
using vm::DecodeCache;

constexpr std::uint8_t kAddHandler =
    static_cast<std::uint8_t>(isa::Opcode::kAdd);

std::uint32_t add_word() {
  return isa::encode(isa::make_r(isa::Opcode::kAdd, 9, 9, 10));
}

std::uint32_t halt_word() {
  return isa::encode(isa::make_r(isa::Opcode::kHalt, 0, 0, 0));
}

std::uint32_t page_pc(std::size_t page) {
  return static_cast<std::uint32_t>(page << DecodeCache::kPageShift);
}

// Exceeding kMaxPages drops the whole cache: full_invalidations increments
// once, the page map restarts from the page that tripped the cap, and the
// one-entry MRU memo is reset — a lookup of a pre-drop page must
// re-materialise and re-decode it (to the same DecodedOp), not read freed
// storage.
TEST(DecodeCache, PageCapWholesaleDropResetsMemoAndRedecodes) {
  mem::GuestMemory memory;
  DecodeCache cache;
  for (std::size_t page = 0; page <= DecodeCache::kMaxPages; ++page) {
    memory.write_u32(page_pc(page), add_word());
  }

  for (std::size_t page = 0; page < DecodeCache::kMaxPages; ++page) {
    ASSERT_EQ(cache.at(page_pc(page), memory).handler, kAddHandler);
  }
  // Copy (not reference) the last pre-drop slot: the drop frees its page.
  const vm::DecodedOp before =
      cache.at(page_pc(DecodeCache::kMaxPages - 1), memory);
  EXPECT_EQ(cache.resident_pages(), DecodeCache::kMaxPages);
  EXPECT_EQ(cache.stats().full_invalidations, 0u);
  EXPECT_EQ(cache.stats().decodes, DecodeCache::kMaxPages);

  // One page past the cap: wholesale drop, then the new page comes in.
  const std::uint32_t over_pc = page_pc(DecodeCache::kMaxPages);
  EXPECT_EQ(cache.at(over_pc, memory).handler, kAddHandler);
  EXPECT_EQ(cache.stats().full_invalidations, 1u);
  EXPECT_EQ(cache.resident_pages(), 1u);

  // The memo now holds the new page; same-page lookups stay on it.
  EXPECT_EQ(cache.at(over_pc, memory).handler, kAddHandler);
  EXPECT_EQ(cache.stats().decodes, DecodeCache::kMaxPages + 1);

  // A dropped page re-decodes to a bit-identical DecodedOp — the drop is
  // invisible to execution semantics.
  const vm::DecodedOp& after =
      cache.at(page_pc(DecodeCache::kMaxPages - 1), memory);
  EXPECT_EQ(after.handler, before.handler);
  EXPECT_EQ(after.rd, before.rd);
  EXPECT_EQ(after.rs1, before.rs1);
  EXPECT_EQ(after.rs2, before.rs2);
  EXPECT_EQ(after.imm, before.imm);
  EXPECT_EQ(cache.stats().decodes, DecodeCache::kMaxPages + 2);
  EXPECT_EQ(cache.resident_pages(), 2u);
}

// The wholesale drop also retires live superblocks (counted into
// superblocks_invalidated) and the next query re-forms them from the
// re-decoded slots.
TEST(DecodeCache, PageCapDropKillsAndReformsSuperblocks) {
  mem::GuestMemory memory;
  DecodeCache cache;
  // Page 0: a fusable run of 8 adds terminated by a halt.
  for (std::uint32_t slot = 0; slot < 8; ++slot) {
    memory.write_u32(slot * 4, add_word());
  }
  memory.write_u32(8 * 4, halt_word());
  for (std::uint32_t slot = 0; slot <= 8; ++slot) {
    cache.at(slot * 4, memory); // formation never decodes; warm the run
  }

  const vm::DecodedOp* ops = nullptr;
  const vm::Superblock* block = cache.superblock_at(0, &ops);
  ASSERT_NE(block, nullptr);
  EXPECT_TRUE(block->live);
  EXPECT_EQ(block->begin, 0u);
  EXPECT_EQ(block->count, 8u);
  ASSERT_NE(ops, nullptr);
  EXPECT_EQ(ops[0].handler, kAddHandler);
  EXPECT_EQ(cache.stats().superblocks_formed, 1u);

  // Trip the page cap from other pages.
  for (std::size_t page = 1; page <= DecodeCache::kMaxPages; ++page) {
    memory.write_u32(page_pc(page), add_word());
    cache.at(page_pc(page), memory);
  }
  EXPECT_EQ(cache.stats().full_invalidations, 1u);
  EXPECT_EQ(cache.stats().superblocks_invalidated, 1u);

  // Re-decode the run; the block re-forms identically.
  for (std::uint32_t slot = 0; slot <= 8; ++slot) {
    cache.at(slot * 4, memory);
  }
  block = cache.superblock_at(0, &ops);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->count, 8u);
  EXPECT_EQ(cache.stats().superblocks_formed, 2u);
}

// The write-listener walk must kill a live superblock covering a written
// slot IN PLACE (live flips false, storage unmoved) — that is what lets a
// mid-block executor poll for the kill and bail exactly.
TEST(DecodeCache, WriteInvalidationKillsCoveringSuperblockInPlace) {
  mem::GuestMemory memory;
  DecodeCache cache;
  for (std::uint32_t slot = 0; slot < 8; ++slot) {
    memory.write_u32(slot * 4, add_word());
  }
  memory.write_u32(8 * 4, halt_word());
  for (std::uint32_t slot = 0; slot <= 8; ++slot) {
    cache.at(slot * 4, memory);
  }
  const vm::DecodedOp* ops = nullptr;
  const vm::Superblock* block = cache.superblock_at(0, &ops);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->count, 8u);

  // Overwrite the middle of the block, as a self-modifying store would.
  memory.write_u32(4 * 4, halt_word());
  cache.on_memory_written(4 * 4, 4);
  EXPECT_FALSE(block->live) << "kill must flip the existing record";
  EXPECT_EQ(cache.stats().superblocks_invalidated, 1u);
  EXPECT_EQ(cache.stats().invalidated_slots, 1u);

  // The anchor slot was unhooked, and the re-formed block (after the
  // written slot is re-decoded) stops at the new halt.
  for (std::uint32_t slot = 0; slot <= 8; ++slot) {
    cache.at(slot * 4, memory);
  }
  const vm::Superblock* reformed = cache.superblock_at(0, &ops);
  ASSERT_NE(reformed, nullptr);
  EXPECT_TRUE(reformed->live);
  EXPECT_EQ(reformed->count, 4u) << "run now ends at the patched halt";
}

// Runs shorter than kMinSuperblockOps are declined, and a run cut short by
// a not-yet-decoded slot stays undecided (formation never decodes, so the
// decode counter remains core-independent).
TEST(DecodeCache, FormationDeclinesShortRunsAndDefersUndecodedCuts) {
  mem::GuestMemory memory;
  DecodeCache cache;
  // Slot 0-1: adds, slot 2: halt — a 2-op run, below kMinSuperblockOps.
  memory.write_u32(0, add_word());
  memory.write_u32(4, add_word());
  memory.write_u32(8, halt_word());
  cache.at(0, memory);
  cache.at(4, memory);
  cache.at(8, memory);
  const vm::DecodedOp* ops = nullptr;
  EXPECT_EQ(cache.superblock_at(0, &ops), nullptr);
  EXPECT_EQ(cache.stats().superblocks_formed, 0u);

  // Slot 16.. : two decoded adds followed by an UNDECODED slot — the
  // verdict must wait (could still grow past the minimum once decoded).
  memory.write_u32(16 * 4, add_word());
  memory.write_u32(17 * 4, add_word());
  memory.write_u32(18 * 4, add_word());
  memory.write_u32(19 * 4, add_word());
  memory.write_u32(20 * 4, halt_word());
  cache.at(16 * 4, memory);
  cache.at(17 * 4, memory);
  EXPECT_EQ(cache.superblock_at(16 * 4, &ops), nullptr);
  const std::uint64_t decodes = cache.stats().decodes;
  // Decode the rest: the same query now succeeds with the full run.
  cache.at(18 * 4, memory);
  cache.at(19 * 4, memory);
  cache.at(20 * 4, memory);
  const vm::Superblock* block = cache.superblock_at(16 * 4, &ops);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->count, 4u);
  EXPECT_EQ(cache.stats().decodes, decodes + 3)
      << "superblock_at must never decode slots itself";
}

} // namespace
