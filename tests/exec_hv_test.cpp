// Tests for hypervisor campaigns: the hv/ scenario family measures the
// control task on the partitioned platform (cyclic schedule, guest
// interference) through the same engine machinery as the bare scenarios —
// so the determinism contract (bit-identical results at any worker count,
// fixed and adaptive) must hold for them unchanged, and hv/control-solo
// must reproduce the bare analysis protocol exactly.
#include "casestudy/campaign.hpp"
#include "casestudy/campaign_runner.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace proxima;
using casestudy::CampaignConfig;
using casestudy::CampaignResult;
using casestudy::PartitionActivity;
using casestudy::RunSample;
using casestudy::run_control_campaign;

CampaignConfig scenario(const std::string& name, std::uint32_t runs) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  return registry.at(name).make_config(runs);
}

exec::EngineOptions worker_options(unsigned workers) {
  exec::EngineOptions options;
  options.workers = workers;
  return options;
}

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.times.size(), b.times.size());
  for (std::size_t i = 0; i < a.times.size(); ++i) {
    EXPECT_EQ(a.times[i], b.times[i]) << "run " << i;
  }
  ASSERT_EQ(a.samples.size(), b.samples.size());
  for (std::size_t i = 0; i < a.samples.size(); ++i) {
    // Covers the per-partition activity too (defaulted equality).
    EXPECT_TRUE(a.samples[i] == b.samples[i]) << "sample " << i;
  }
  EXPECT_EQ(a.verified_runs, b.verified_runs);
}

TEST(HvScenarios, FamilyIsRegistered) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  const std::vector<std::string> hv = registry.names("hv/");
  EXPECT_EQ(hv.size(), 7u);
  EXPECT_TRUE(registry.contains("hv/control-solo"));
  EXPECT_TRUE(registry.contains("hv/control+image"));
  EXPECT_TRUE(registry.contains("hv/control+image-dsr"));
  EXPECT_TRUE(registry.contains("hv/control+stress"));
  // The image-measured variants (measured-partition selection); their
  // behaviour is covered by measured_target_test.
  EXPECT_TRUE(registry.contains("hv/image+control"));
  EXPECT_TRUE(registry.contains("hv/image+control-dsr"));
  EXPECT_TRUE(registry.contains("hv/control+image-ondemand"));
}

TEST(HvScenarios, SoloReproducesTheBareAnalysisProtocol) {
  // The schedule's partition-start L1 flush plus the runner's warm-up is
  // exactly the bare protocol when no guest runs before the measured
  // activation: the solo scenario must be bit-identical to the bare
  // analysis campaign, making the solo-vs-guest delta pure interference.
  const CampaignResult solo =
      run_control_campaign(scenario("hv/control-solo", 5));
  const CampaignResult bare =
      run_control_campaign(scenario("control/analysis-cots", 5));
  ASSERT_EQ(solo.times.size(), bare.times.size());
  for (std::size_t i = 0; i < solo.times.size(); ++i) {
    EXPECT_EQ(solo.times[i], bare.times[i]) << "run " << i;
  }
}

TEST(HvScenarios, GuestInterferenceShiftsTheControlTask) {
  const CampaignResult solo =
      run_control_campaign(scenario("hv/control-solo", 4));
  const CampaignResult image =
      run_control_campaign(scenario("hv/control+image", 4));
  const CampaignResult stress =
      run_control_campaign(scenario("hv/control+stress", 4));
  const double solo_max =
      *std::max_element(solo.times.begin(), solo.times.end());
  const double image_min =
      *std::min_element(image.times.begin(), image.times.end());
  const double stress_min =
      *std::min_element(stress.times.begin(), stress.times.end());
  EXPECT_GT(image_min, solo_max)
      << "the image guest's L2 evictions must slow the control task";
  EXPECT_GT(stress_min, solo_max)
      << "the stressor guest's L2 evictions must slow the control task";
}

TEST(HvScenarios, PartitionActivityIsRecordedPerRun) {
  const CampaignConfig config = scenario("hv/control+image", 3);
  const CampaignResult result = run_control_campaign(config);
  ASSERT_EQ(result.samples.size(), 3u);
  for (const RunSample& sample : result.samples) {
    ASSERT_EQ(sample.partitions.size(), 2u);
    EXPECT_EQ(sample.partitions[0].partition, "control");
    EXPECT_EQ(sample.partitions[0].cycles.size(), 1u)
        << "the control partition activates once per run (last frame)";
    EXPECT_EQ(sample.partitions[1].partition, "processing");
    EXPECT_EQ(sample.partitions[1].cycles.size(),
              config.hypervisor->frames)
        << "the guest activates every minor frame";
    EXPECT_EQ(sample.partitions[0].overruns, 0u);
  }
  // The flattened series carry every activation exactly once.
  const std::vector<trace::PartitionSeries> series =
      casestudy::partition_series(result.samples);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].partition, "control");
  EXPECT_EQ(series[0].cycles.size(), 3u);
  EXPECT_EQ(series[1].cycles.size(), 3u * config.hypervisor->frames);
}

class HvEngineDeterminism : public ::testing::TestWithParam<const char*> {};

TEST_P(HvEngineDeterminism, ParallelMatchesSequential) {
  const CampaignConfig config = scenario(GetParam(), 6);
  const CampaignResult sequential = run_control_campaign(config);
  ASSERT_EQ(sequential.times.size(), 6u);
  EXPECT_EQ(sequential.verified_runs, 6u);

  // 4 workers over single-run shards: workers cross shard boundaries and
  // replay the control input stream across skips, while every guest
  // stream is reseeded per run — both must land bit-identically.
  const CampaignResult parallel =
      exec::CampaignEngine(worker_options(4)).run(config);
  expect_identical(sequential, parallel);

  const CampaignResult single =
      exec::CampaignEngine(worker_options(1)).run(config);
  expect_identical(sequential, single);
}

INSTANTIATE_TEST_SUITE_P(HvFamily, HvEngineDeterminism,
                         ::testing::Values("hv/control-solo",
                                           "hv/control+image",
                                           "hv/control+image-dsr",
                                           "hv/control+stress"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '/' || c == '+' || c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(HvScenarios, AdaptiveCampaignsAreBitIdenticalAcrossWorkerCounts) {
  const CampaignConfig config = scenario("hv/control+image-dsr", 64);
  exec::ConvergenceOptions convergence;
  convergence.batch_runs = 16;
  convergence.max_runs = 64;
  convergence.controller.target_exceedance = 1e-12;
  convergence.controller.epsilon = 0.5; // generous: small test campaign
  convergence.controller.stable_rounds = 1;
  convergence.controller.min_samples = 32;
  convergence.controller.mbpta.block_size = 10;

  const exec::AdaptiveCampaignResult one =
      exec::CampaignEngine(worker_options(1)).run_adaptive(config, convergence);
  const exec::AdaptiveCampaignResult eight =
      exec::CampaignEngine(worker_options(8)).run_adaptive(config, convergence);
  EXPECT_EQ(one.batches, eight.batches);
  EXPECT_EQ(one.converged, eight.converged);
  expect_identical(one.campaign, eight.campaign);
}

TEST(HvScenarios, StaticRandomisationIsRejected) {
  // A static re-link "re-flashes the board" (clears guest memory): under
  // the hypervisor that would wipe the guests' images.
  CampaignConfig config = scenario("hv/control-solo", 2);
  config.randomisation = casestudy::Randomisation::kStatic;
  EXPECT_THROW(casestudy::CampaignRunner runner(config),
               std::invalid_argument);
}

TEST(HvScenarios, HardwareRandomisationRunsOnTheHypervisor) {
  CampaignConfig config = scenario("hv/control+stress", 3);
  config.randomisation = casestudy::Randomisation::kHardware;
  const CampaignResult sequential = run_control_campaign(config);
  const CampaignResult parallel =
      exec::CampaignEngine(worker_options(3)).run(config);
  expect_identical(sequential, parallel);
  EXPECT_EQ(sequential.verified_runs, 3u);
}

} // namespace
