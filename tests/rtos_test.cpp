// Tests for the PikeOS-style partitioned hypervisor (Section IV): cyclic
// scheduling, flush-on-start, temporal isolation, and reboot semantics.
#include "rtos/hypervisor.hpp"
#include "vm_harness.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima;
using namespace proxima::isa;
using rtos::ActivationRecord;
using rtos::Criticality;
using rtos::Hypervisor;
using rtos::HypervisorConfig;
using rtos::PartitionApp;
using rtos::PartitionConfig;

/// A minimal partition: runs a fixed program image; counts callbacks.
class CountingApp : public rtos::PartitionApp {
public:
  CountingApp(test::TestMachine& machine, std::uint32_t entry)
      : machine_(machine), entry_(entry) {}

  std::uint32_t entry_address() override { return entry_; }
  std::uint32_t stack_top() override { return test::kStackTop; }
  void before_activation(std::uint64_t index) override {
    last_index = index;
    ++activations;
  }
  void reboot() override { ++reboots; }

  std::uint64_t activations = 0;
  std::uint64_t reboots = 0;
  std::uint64_t last_index = 0;

private:
  test::TestMachine& machine_;
  std::uint32_t entry_;
};

Program trivial_program(int work_iterations) {
  Program program;
  FunctionBuilder fb("main");
  fb.li(kO0, work_iterations);
  fb.label("spin");
  fb.subcci(kO0, 1);
  fb.subi(kO0, kO0, 1);
  fb.bg("spin");
  fb.halt();
  program.functions.push_back(fb.build());
  program.entry = "main";
  return program;
}

Program runaway_program() {
  Program program;
  FunctionBuilder fb("main");
  fb.label("forever");
  fb.ba("forever"); // a malfunctioning low-criticality task
  program.functions.push_back(fb.build());
  program.entry = "main";
  return program;
}

TEST(Hypervisor, PeriodsFollowTheCyclicSchedule) {
  // Control @ 1000 ms, processing @ 100 ms, 100 ms frames (the paper's
  // configuration): over 20 frames the control task runs twice, the
  // processing task twenty times.
  test::TestMachine machine(trivial_program(10));
  CountingApp control(machine, machine.image.entry_addr());
  CountingApp processing(machine, machine.image.entry_addr());

  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "control",
                                   .period_ms = 1000,
                                   .criticality = Criticality::kHigh},
                   control);
  hv.add_partition(PartitionConfig{.name = "processing",
                                   .period_ms = 100,
                                   .criticality = Criticality::kLow},
                   processing);

  const std::vector<ActivationRecord> records = hv.run_frames(20);
  EXPECT_EQ(control.activations, 2u);
  EXPECT_EQ(processing.activations, 20u);
  EXPECT_EQ(records.size(), 22u);
  // In frames where both run, the high-criticality partition goes first.
  EXPECT_EQ(records[0].partition, "control");
  EXPECT_EQ(records[1].partition, "processing");
}

TEST(Hypervisor, FullFlushGivesIdenticalActivations) {
  test::TestMachine machine(trivial_program(100));
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "p",
                                   .period_ms = 100,
                                   .flush_on_start = rtos::FlushScope::kAll},
                   app);

  const auto first = hv.run_frames(1);
  const std::uint64_t first_misses = machine.hierarchy.counters().icache_miss;
  const auto second = hv.run_frames(1);
  const std::uint64_t second_misses =
      machine.hierarchy.counters().icache_miss - first_misses;
  // Identical cold-start state => identical activation cost and identical
  // miss counts: "each period the partition executions start with the same
  // initial hardware state".
  EXPECT_EQ(first[0].cycles_used, second[0].cycles_used);
  EXPECT_EQ(first_misses, second_misses);
}

TEST(Hypervisor, L1FlushKeepsL2Warm) {
  // The PikeOS default: IL1/DL1/TLBs flushed, L2 retained.  The second
  // activation pays the same IL1 cold misses but its refills hit the warm
  // L2, so it is strictly faster.
  test::TestMachine machine(trivial_program(100));
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "p", .period_ms = 100}, app);

  const auto first = hv.run_frames(1);
  const std::uint64_t il1_first = machine.hierarchy.counters().icache_miss;
  const std::uint64_t l2_first = machine.hierarchy.counters().l2_miss;
  const auto second = hv.run_frames(1);
  const std::uint64_t il1_second =
      machine.hierarchy.counters().icache_miss - il1_first;
  const std::uint64_t l2_second =
      machine.hierarchy.counters().l2_miss - l2_first;
  EXPECT_EQ(il1_first, il1_second);               // IL1 cold both times
  EXPECT_LT(l2_second, l2_first);                 // L2 warm second time
  EXPECT_LT(second[0].cycles_used, first[0].cycles_used);
}

TEST(Hypervisor, WithoutFlushWarmCachesChangeTiming) {
  test::TestMachine machine(trivial_program(100));
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "p",
                                   .period_ms = 100,
                                   .flush_on_start = rtos::FlushScope::kNone},
                   app);
  const auto records = hv.run_frames(2);
  ASSERT_EQ(records.size(), 2u);
  // Second activation benefits from a warm IL1: strictly faster.
  EXPECT_LT(records[1].cycles_used, records[0].cycles_used);
}

TEST(Hypervisor, BudgetFenceStopsRunawayPartition) {
  test::TestMachine machine(runaway_program());
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "runaway",
                                   .period_ms = 100,
                                   .budget_ms = 10},
                   app);
  const auto records = hv.run_frames(1);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].overran);
  EXPECT_FALSE(records[0].halted);
  EXPECT_EQ(hv.violations(), 1u);
  // The fence bound the damage to the configured budget.
  const std::uint64_t budget_cycles = 10ull * hv.config().cycles_per_ms;
  EXPECT_LE(records[0].cycles_used, budget_cycles + 200);
}

TEST(Hypervisor, MalfunctioningLowCritDoesNotStarveControl) {
  // The paper's mixed-criticality concern: "temporal interferences caused
  // by a malfunction in the image processing task could affect the timing
  // of the high criticality control task" — the budget fence prevents it.
  test::TestMachine machine(trivial_program(50));
  test::TestMachine runaway_machine(runaway_program());
  CountingApp control(machine, machine.image.entry_addr());

  // Load the runaway image into the same memory at a different base.
  Program bad = runaway_program();
  const LinkedImage bad_image =
      link(bad, LinkOptions{.code_base = 0x4200'0000});
  bad_image.load_into(machine.memory);
  CountingApp processing(machine, bad_image.entry_addr());

  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "control",
                                   .period_ms = 100,
                                   .budget_ms = 20,
                                   .criticality = Criticality::kHigh},
                   control);
  hv.add_partition(PartitionConfig{.name = "processing",
                                   .period_ms = 100,
                                   .budget_ms = 50,
                                   .criticality = Criticality::kLow},
                   processing);

  const auto records = hv.run_frames(5);
  ASSERT_EQ(records.size(), 10u);
  std::uint64_t control_runs = 0;
  for (const ActivationRecord& record : records) {
    if (record.partition == "control") {
      ++control_runs;
      EXPECT_TRUE(record.halted); // control always completes
    } else {
      EXPECT_TRUE(record.overran); // the malfunction is contained
    }
  }
  EXPECT_EQ(control_runs, 5u);
  EXPECT_EQ(hv.violations(), 5u);
}

TEST(Hypervisor, RebootAfterEachActivation) {
  test::TestMachine machine(trivial_program(10));
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "p",
                                   .period_ms = 100,
                                   .reboot_after_each_activation = true},
                   app);
  hv.run_frames(7);
  EXPECT_EQ(app.reboots, 7u); // the paper's measurement protocol
}

TEST(Hypervisor, ActivationRecordsCarryTimeline) {
  test::TestMachine machine(trivial_program(10));
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "p", .period_ms = 100}, app);
  const auto records = hv.run_frames(3);
  ASSERT_EQ(records.size(), 3u);
  const std::uint64_t frame_cycles = 100ull * hv.config().cycles_per_ms;
  EXPECT_EQ(records[0].start_cycle, 0u);
  EXPECT_EQ(records[1].start_cycle, frame_cycles);
  EXPECT_EQ(records[2].start_cycle, 2 * frame_cycles);
  EXPECT_EQ(records[2].activation_index, 2u);
}

TEST(Hypervisor, RejectsOvercommittedSchedule) {
  // Regression: budgets were only checked against the frame individually,
  // so two partitions whose budgets jointly exceed the frame were accepted
  // and the second silently ate the next frame's time.
  test::TestMachine machine(trivial_program(1));
  CountingApp a(machine, machine.image.entry_addr());
  CountingApp b(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "a",
                                   .period_ms = 200,
                                   .budget_ms = 60},
                   a);
  EXPECT_THROW(
      hv.add_partition(
          PartitionConfig{.name = "b", .period_ms = 100, .budget_ms = 60}, b),
      std::invalid_argument)
      << "co-occurs with 'a' in even frames: 120 ms in a 100 ms frame";
  // Same budgets in *disjoint* frames of the hyperperiod are fine: the
  // overcommit check is phase-aware, not a blanket sum.
  EXPECT_NO_THROW(hv.add_partition(PartitionConfig{.name = "c",
                                                   .period_ms = 200,
                                                   .offset_ms = 100,
                                                   .budget_ms = 60},
                                   b));
  // ...and a partition meeting 'c' in odd frames overcommits again.
  EXPECT_THROW(
      hv.add_partition(
          PartitionConfig{.name = "d", .period_ms = 100, .budget_ms = 50}, b),
      std::invalid_argument);
}

TEST(Hypervisor, ConsumedFrameZeroBudgetIsARecordedViolation) {
  // Regression: a budget_ms == 0 slot received frame_cycles -
  // used_in_frame, which is 0 once the frame is consumed — and
  // cpu_.run(0) means "no fence" to the core, an unbounded activation.
  // The denied slot must instead be recorded as a temporal violation
  // without ever starting.
  test::TestMachine machine(runaway_program());
  CountingApp hog(machine, machine.image.entry_addr());
  CountingApp starved(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "hog",
                                   .period_ms = 100,
                                   .budget_ms = 100, // the whole frame
                                   .criticality = Criticality::kHigh},
                   hog);
  hv.add_partition(PartitionConfig{.name = "starved", .period_ms = 100},
                   starved);
  const auto records = hv.run_frames(1);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[0].overran) << "the hog hits its own fence";
  EXPECT_EQ(records[1].partition, "starved");
  EXPECT_EQ(records[1].cycles_used, 0u);
  EXPECT_TRUE(records[1].overran);
  EXPECT_FALSE(records[1].halted);
  EXPECT_EQ(hv.violations(), 2u);
  // The denied activation never started: no before_activation callback.
  EXPECT_EQ(starved.activations, 0u);
  // The denial is still counted in the schedule's activation index.
  EXPECT_EQ(records[1].activation_index, 0u);
}

TEST(Hypervisor, OverrunClampsCyclesUsedToTheBudget) {
  // Regression: an overrunning activation stored raw result.cycles, which
  // can exceed the fence — per-partition MOET/pWCET then credits time the
  // schedule never granted.
  test::TestMachine machine(runaway_program());
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(
      PartitionConfig{.name = "runaway", .period_ms = 100, .budget_ms = 10},
      app);
  const auto records = hv.run_frames(1);
  ASSERT_EQ(records.size(), 1u);
  const std::uint64_t budget_cycles = 10ull * hv.config().cycles_per_ms;
  EXPECT_TRUE(records[0].overran);
  EXPECT_LE(records[0].cycles_used, budget_cycles)
      << "the fence must bound the recorded cycles, not just the damage";
  EXPECT_GT(records[0].cycles_used, budget_cycles - 200)
      << "the runaway consumed essentially the whole budget";
}

TEST(Hypervisor, OffsetsPhaseActivationsWithinThePeriod) {
  test::TestMachine machine(trivial_program(10));
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  hv.add_partition(
      PartitionConfig{.name = "late", .period_ms = 200, .offset_ms = 100},
      app);
  const auto records = hv.run_frames(4);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].frame_index, 1u);
  EXPECT_EQ(records[1].frame_index, 3u);

  CountingApp bad(machine, machine.image.entry_addr());
  EXPECT_THROW(hv.add_partition(PartitionConfig{.name = "x",
                                                .period_ms = 200,
                                                .offset_ms = 200},
                                bad),
               std::invalid_argument)
      << "offset must lie below the period";
  EXPECT_THROW(hv.add_partition(PartitionConfig{.name = "y",
                                                .period_ms = 200,
                                                .offset_ms = 150},
                                bad),
               std::invalid_argument)
      << "offset must be a multiple of the minor frame";
}

TEST(Hypervisor, ResetScheduleReplaysTheTimeline) {
  test::TestMachine machine(trivial_program(10));
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy,
                HypervisorConfig{});
  hv.add_partition(PartitionConfig{.name = "p",
                                   .period_ms = 100,
                                   .flush_on_start = rtos::FlushScope::kAll},
                   app);
  const auto first = hv.run_frames(3);
  hv.reset_schedule();
  EXPECT_EQ(hv.violations(), 0u);
  const auto second = hv.run_frames(3);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].frame_index, second[i].frame_index);
    EXPECT_EQ(first[i].start_cycle, second[i].start_cycle);
    EXPECT_EQ(first[i].activation_index, second[i].activation_index);
    EXPECT_EQ(first[i].cycles_used, second[i].cycles_used)
        << "full flush + fresh timeline must replay identically";
  }
}

TEST(Hypervisor, RejectsBadConfigs) {
  test::TestMachine machine(trivial_program(1));
  CountingApp app(machine, machine.image.entry_addr());
  Hypervisor hv(machine.cpu, machine.hierarchy, HypervisorConfig{});
  EXPECT_THROW(
      hv.add_partition(PartitionConfig{.name = "x", .period_ms = 0}, app),
      std::invalid_argument);
  EXPECT_THROW(
      hv.add_partition(PartitionConfig{.name = "y", .period_ms = 150}, app),
      std::invalid_argument);
  EXPECT_THROW(hv.add_partition(
                   PartitionConfig{.name = "z", .period_ms = 100,
                                   .budget_ms = 200},
                   app),
               std::invalid_argument);
}

} // namespace
