// Tests for the text assembler front-end: parsing, encoding equivalence
// with the builder API, and end-to-end execution of assembled programs.
#include "isa/assembler.hpp"
#include "vm_harness.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima::isa;
using proxima::test::TestMachine;

TEST(Assembler, RegistersAndAliases) {
  const Program program = assemble(R"(
main:
  add %g1, %o2, %l3
  add %i4, %sp, %fp
  halt
)");
  ASSERT_EQ(program.functions.size(), 1u);
  const Function& main_fn = program.functions.front();
  EXPECT_EQ(main_fn.code[0], make_r(Opcode::kAdd, kL3, kG1, kO2));
  EXPECT_EQ(main_fn.code[1], make_r(Opcode::kAdd, kFp, kI4, kSp));
}

TEST(Assembler, ImmediateFormsAndComments) {
  const Program program = assemble(R"(
main:
  add %o0, 42, %o1     ! immediate ALU
  sub %o1, -8, %o2
  sll %o2, 3, %o3
  halt
)");
  const Function& fn = program.functions.front();
  EXPECT_EQ(fn.code[0], make_i(Opcode::kAddi, kO1, kO0, 42));
  EXPECT_EQ(fn.code[1], make_i(Opcode::kSubi, kO2, kO1, -8));
  EXPECT_EQ(fn.code[2], make_i(Opcode::kSlli, kO3, kO2, 3));
}

TEST(Assembler, MemoryOperands) {
  const Program program = assemble(R"(
main:
  ld [%l0+8], %o0
  st %o0, [%fp-12]
  ldub [%g2], %o1
  halt
)");
  const Function& fn = program.functions.front();
  EXPECT_EQ(fn.code[0], make_i(Opcode::kLd, kO0, kL0, 8));
  EXPECT_EQ(fn.code[1], make_i(Opcode::kSt, kO0, kFp, -12));
  EXPECT_EQ(fn.code[2], make_i(Opcode::kLdb, kO1, kG2, 0));
}

TEST(Assembler, BranchesAndLabels) {
  const Program program = assemble(R"(
main:
  mov 3, %o0
loop:
  cmp %o0, 0
  ble done
  sub %o0, 1, %o0
  ba loop
done:
  halt
)");
  const Function& fn = program.functions.front();
  EXPECT_TRUE(fn.labels.contains("loop"));
  EXPECT_TRUE(fn.labels.contains("done"));
  // Branch fixups reference the labels symbolically.
  int branch_fixups = 0;
  for (const Fixup& fixup : fn.fixups) {
    if (fixup.kind == FixupKind::kBranch) {
      ++branch_fixups;
    }
  }
  EXPECT_EQ(branch_fixups, 2);
}

TEST(Assembler, FunctionsCallsAndPrologues) {
  const Program program = assemble(R"(
.global main
main:
  save %sp, -96, %sp
  call helper
  restore
  ret

helper:
  add %o0, %o0, %o0
  retl
)");
  ASSERT_EQ(program.functions.size(), 2u);
  EXPECT_EQ(program.entry, "main");
  const Function& main_fn = program.functions[0];
  EXPECT_TRUE(main_fn.has_prologue);
  EXPECT_EQ(main_fn.frame_bytes, 96u);
  const Function& helper = program.functions[1];
  EXPECT_FALSE(helper.has_prologue);
  EXPECT_EQ(helper.code.back(), make_i(Opcode::kJmpl, kG0, kO7, 4));
}

TEST(Assembler, DataObjectsAndHiLo) {
  const Program program = assemble(R"(
.data table, 16, 8
.word 0x11223344, 0x55667788

main:
  sethi %hi(table), %g1
  or %g1, %lo(table), %g1
  ld [%g1+4], %o0
  halt
)");
  ASSERT_EQ(program.data.size(), 1u);
  EXPECT_EQ(program.data[0].size, 16u);
  ASSERT_EQ(program.data[0].init.size(), 8u);
  EXPECT_EQ(program.data[0].init[0], 0x11);

  const Function& fn = program.functions.front();
  bool hi_fixup = false;
  bool lo_fixup = false;
  for (const Fixup& fixup : fn.fixups) {
    hi_fixup = hi_fixup || (fixup.kind == FixupKind::kHi19 &&
                            fixup.symbol == "table");
    lo_fixup = lo_fixup || (fixup.kind == FixupKind::kLo13 &&
                            fixup.symbol == "table");
  }
  EXPECT_TRUE(hi_fixup);
  EXPECT_TRUE(lo_fixup);
}

TEST(Assembler, AssembledProgramRuns) {
  // End to end: assemble, link, execute, check results.
  Program program = assemble(R"(
.global main
.data result, 4, 4

main:
  save %sp, -96, %sp
  mov 10, %o0
  call fact
  set result, %o1
  st %o0, [%o1]
  halt

fact:
  save %sp, -96, %sp
  cmp %i0, 1
  ble base
  sub %i0, 1, %o0
  call fact
  smul %i0, %o0, %i0
  ba done
base:
  mov 1, %i0
done:
  restore
  ret
)");
  TestMachine machine(program);
  machine.run();
  EXPECT_EQ(machine.word_at("result"), 3628800u); // 10!
}

TEST(Assembler, FloatingPointProgramRuns) {
  Program program = assemble(R"(
.global main
.data out, 8, 8

main:
  mov 3, %o0
  fitod %o0, %f0
  fmuld %f0, %f0, %f1
  set out, %o1
  stdf %f1, [%o1]
  halt
)");
  TestMachine machine(program);
  machine.run();
  EXPECT_DOUBLE_EQ(machine.f64_at("out"), 9.0);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  try {
    assemble("main:\n  frob %o0, %o1\n");
    FAIL() << "expected AsmError";
  } catch (const AsmError& e) {
    EXPECT_EQ(e.line_number, 2u);
    EXPECT_NE(std::string(e.what()).find("frob"), std::string::npos);
  }
}

TEST(Assembler, RejectsMalformedInput) {
  EXPECT_THROW(assemble("  add %o0, %o1, %o2\n"), AsmError); // no function
  EXPECT_THROW(assemble("main:\n  add %o9, %o1, %o2\n"), AsmError);
  EXPECT_THROW(assemble("main:\n  ld %o0, %o1\n"), AsmError); // not a mem op
  EXPECT_THROW(assemble("main:\n  save %l0, -96, %sp\n"), AsmError);
  EXPECT_THROW(assemble(".bogus x\n"), AsmError);
  EXPECT_THROW(assemble(".word 1\n"), AsmError); // outside .data
}

TEST(Assembler, InstrumentationAndPlatformOps) {
  const Program program = assemble(R"(
main:
  ipoint 1
  rdtick %o0
  flush [%o1+32]
  ipoint 2
  halt
)");
  const Function& fn = program.functions.front();
  EXPECT_EQ(fn.code[0], make_b(Opcode::kIpoint, 1));
  EXPECT_EQ(fn.code[1].op, Opcode::kRdtick);
  EXPECT_EQ(fn.code[2], make_i(Opcode::kFlush, kG0, kO1, 32));
}

} // namespace
