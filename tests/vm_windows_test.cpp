// Register-window tests: SAVE/RESTORE rotation, parameter passing through
// the in/out overlap, and overflow/underflow spill-fill traffic — the part
// of SPARC that made the DSR port "one of the most challenging" (III.B.2).
#include "vm_harness.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima::isa;
using proxima::test::TestMachine;
using proxima::vm::VmError;

Program recursion_program(int depth) {
  // fact(n): classic windowed recursion touching every window mechanism.
  Program program;
  {
    FunctionBuilder fb("main");
    fb.li(kO0, depth);
    fb.call("fact");
    fb.load_address(kO1, "result");
    fb.st(kO0, kO1, 0);
    fb.halt();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("fact");
    fb.prologue(96); // n visible as %i0
    fb.subcci(kI0, 1);
    fb.ble("base");
    fb.subi(kO0, kI0, 1);
    fb.call("fact");        // result in %o0
    fb.mul(kI0, kI0, kO0);  // n * fact(n-1) -> %i0 (returned via restore)
    fb.ba("done");
    fb.label("base");
    fb.li(kI0, 1);
    fb.label("done");
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  program.data.push_back(DataObject{.name = "result", .size = 4, .align = 4});
  program.entry = "main";
  return program;
}

TEST(Windows, SaveRotatesOutsToIns) {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.li(kO0, 41);
    fb.call("callee");
    fb.halt();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("callee");
    fb.prologue(96);
    fb.addi(kI0, kI0, 1); // caller's %o0 is callee's %i0
    fb.epilogue();        // callee's %i0 becomes caller's %o0
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  TestMachine machine(program);
  machine.run();
  EXPECT_EQ(machine.cpu.reg(kO0), 42u);
}

TEST(Windows, SpPropagatesToFp) {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.call("callee");
    fb.halt();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("callee");
    fb.prologue(96);
    fb.mov(kO1, kFp); // %fp == caller's %sp
    fb.mov(kO2, kSp);
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  TestMachine machine(program);
  // Capture registers before the restore wipes the callee window: single
  // step until just past the two movs.
  machine.run();
  // After return, the values live in the *callee's* window, which has been
  // rotated away; instead verify via a second program below.
  SUCCEED();
}

TEST(Windows, FrameOffsetAppliedBySave) {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.mov(kL0, kSp); // remember caller sp in a local (survives the call)
    fb.call("callee");
    fb.halt();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("callee");
    fb.prologue(96);
    fb.load_address(kO0, "out");
    fb.st(kSp, kO0, 0); // store callee sp
    fb.st(kFp, kO0, 4); // store fp (= caller sp)
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  program.data.push_back(DataObject{.name = "out", .size = 8, .align = 4});
  program.entry = "main";
  TestMachine machine(program);
  machine.run();
  const std::uint32_t callee_sp = machine.word_at("out", 0);
  const std::uint32_t callee_fp = machine.word_at("out", 4);
  EXPECT_EQ(callee_fp, proxima::test::kStackTop);
  EXPECT_EQ(callee_sp, proxima::test::kStackTop - 96);
  EXPECT_EQ(machine.cpu.reg(kL0), proxima::test::kStackTop);
}

TEST(Windows, DeepRecursionCorrectWithSpills) {
  TestMachine machine(recursion_program(10));
  machine.run();
  EXPECT_EQ(machine.word_at("result"), 3628800u); // 10!
  // Depth 11 frames > 7 resident: must have spilled and filled.
  EXPECT_GT(machine.hierarchy.counters().window_overflows, 0u);
  EXPECT_GT(machine.hierarchy.counters().window_underflows, 0u);
  EXPECT_EQ(machine.hierarchy.counters().window_overflows,
            machine.hierarchy.counters().window_underflows);
}

TEST(Windows, ShallowRecursionAvoidsSpills) {
  TestMachine machine(recursion_program(5));
  machine.run();
  EXPECT_EQ(machine.word_at("result"), 120u); // 5!
  EXPECT_EQ(machine.hierarchy.counters().window_overflows, 0u);
  EXPECT_EQ(machine.hierarchy.counters().window_underflows, 0u);
}

TEST(Windows, VeryDeepRecursionStillCorrect) {
  TestMachine machine(recursion_program(12));
  machine.run();
  EXPECT_EQ(machine.word_at("result"), 479001600u); // 12!
}

TEST(Windows, ResidentCountTracksNesting) {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.call("a");
    fb.halt();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("a");
    fb.prologue(96);
    fb.call("b");
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("b");
    fb.prologue(96);
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  TestMachine machine(program);
  EXPECT_EQ(machine.cpu.resident_windows(), 1u);
  machine.run();
  EXPECT_EQ(machine.cpu.resident_windows(), 1u); // balanced save/restore
}

TEST(Windows, SpillWritesToSpilledWindowsStack) {
  // Nest deeply; the spill of the outermost frame must write to the
  // outermost %sp region (top of stack), not the innermost.
  TestMachine machine(recursion_program(9));
  machine.run();
  // Spills store locals+ins (64 bytes) at each spilled window's %sp; the
  // first spill hits main's frame area near the stack top.
  EXPECT_EQ(machine.word_at("result"), 362880u);
  EXPECT_GT(machine.hierarchy.counters().stores, 0u);
}

TEST(Windows, MisalignedStackFaultsOnSpill) {
  // Force a misaligned %sp and recurse deep enough to spill.
  Program program;
  {
    FunctionBuilder fb("main");
    fb.subi(kSp, kSp, 4); // break doubleword alignment
    fb.li(kO0, 10);
    fb.call("fact");
    fb.halt();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("fact");
    fb.prologue(96);
    fb.subcci(kI0, 1);
    fb.ble("base");
    fb.subi(kO0, kI0, 1);
    fb.call("fact");
    fb.label("base");
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  program.entry = "main";
  TestMachine machine(program);
  EXPECT_THROW(machine.run(), VmError);
}

TEST(Windows, SpillTrafficGoesThroughDataCache) {
  TestMachine no_spill(recursion_program(5));
  no_spill.run();
  const std::uint64_t base_stores = no_spill.hierarchy.counters().stores;

  TestMachine with_spill(recursion_program(12));
  with_spill.run();
  // Each overflow spills 8 doubleword stores.
  const std::uint64_t spill_stores =
      with_spill.hierarchy.counters().stores - base_stores;
  EXPECT_GE(spill_stores,
            8 * with_spill.hierarchy.counters().window_overflows);
}

} // namespace
