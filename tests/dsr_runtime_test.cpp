// End-to-end tests for the DSR runtime: relocation, stack offsets, cache
// invalidation, lazy traps, re-randomisation (Section III.B).
//
// The central property: DSR must change WHERE code and stack frames live —
// and therefore the timing — while never changing WHAT the program
// computes, for any seed.
#include "core/dsr_pass.hpp"
#include "core/dsr_runtime.hpp"
#include "isa/builder.hpp"
#include "isa/linker.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "rng/mwc.hpp"
#include "vm/vm.hpp"

#include <gtest/gtest.h>

#include <set>

namespace {

using namespace proxima;
using namespace proxima::isa;
using dsr::DsrRuntime;
using dsr::PassOptions;
using dsr::RuntimeOptions;

constexpr std::uint32_t kStackTop = 0x4080'0000;

/// A program exercising every DSR-relevant mechanism: nested calls, stack
/// frames with locals, recursion deep enough to spill windows, and loops.
Program workload_program() {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.prologue(96);
    fb.li(kO0, 9);
    fb.call("fact"); // 9! = 362880
    fb.mov(kL0, kO0);
    fb.li(kO0, 20);
    fb.call("sum_upto"); // 210
    fb.add(kL0, kL0, kO0);
    fb.load_address(kO1, "result");
    fb.st(kL0, kO1, 0);
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("fact");
    fb.prologue(96);
    fb.subcci(kI0, 1);
    fb.ble("base");
    fb.subi(kO0, kI0, 1);
    fb.call("fact");
    fb.mul(kI0, kI0, kO0);
    fb.ba("done");
    fb.label("base");
    fb.li(kI0, 1);
    fb.label("done");
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("sum_upto"); // iterative, uses a stack local
    fb.prologue(104);
    fb.st(kG0, kSp, 96); // local accumulator at [sp+96]
    fb.label("loop");
    fb.subcci(kI0, 0);
    fb.ble("end");
    fb.ld(kO1, kSp, 96);
    fb.add(kO1, kO1, kI0);
    fb.st(kO1, kSp, 96);
    fb.subi(kI0, kI0, 1);
    fb.ba("loop");
    fb.label("end");
    fb.ld(kI0, kSp, 96);
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  program.data.push_back(DataObject{.name = "result", .size = 4, .align = 4});
  program.entry = "main";
  return program;
}

constexpr std::uint32_t kExpectedResult = 362880 + 210;

/// Entry wrapper: the RTOS-side jump into the randomised entry needs a halt
/// after main returns; we add a tiny launcher calling through the runtime.
struct DsrMachine {
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy;
  vm::Vm cpu;
  rng::Mwc random;
  LinkedImage image;
  DsrRuntime runtime;

  DsrMachine(Program program, std::uint64_t seed,
             const PassOptions& pass_options = {},
             RuntimeOptions runtime_options = {})
      : hierarchy(mem::leon3_hierarchy_config()), cpu(memory, hierarchy),
        random(seed),
        image(make_image(std::move(program), pass_options)),
        runtime(memory, hierarchy, image, random, runtime_options) {
    image.load_into(memory);
    runtime.initialise();
    runtime.attach(cpu);
  }

  static LinkedImage make_image(Program program,
                                const PassOptions& pass_options) {
    dsr::apply_pass(program, pass_options);
    return link(program);
  }

  vm::RunResult run() {
    // main() ends with a RESTORE+JMPL into the launcher's address space;
    // emulate the RTOS by running until main returns to a halt trampoline.
    // We place a HALT at a fixed scratch address and set %o7 to it - 4.
    constexpr std::uint32_t kTrampoline = 0x40f0'0000;
    memory.write_u32(kTrampoline, isa::encode(make_b(Opcode::kHalt, 0)));
    cpu.reset(runtime.entry_address(), kStackTop);
    cpu.set_reg(kO7, kTrampoline - 4);
    return cpu.run();
  }

  std::uint32_t result() {
    return memory.read_u32(image.symbol("result").addr);
  }
};

// ---------------------------------------------------------------------------
// Functional invariance across seeds — THE DSR correctness property.
// ---------------------------------------------------------------------------

class DsrSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DsrSeedSweep, EagerRelocationPreservesSemantics) {
  DsrMachine machine(workload_program(), GetParam());
  machine.run();
  EXPECT_EQ(machine.result(), kExpectedResult);
  EXPECT_EQ(machine.hierarchy.counters().coherence_violations, 0u);
}

TEST_P(DsrSeedSweep, LazyRelocationPreservesSemantics) {
  PassOptions pass_options;
  pass_options.lazy_stubs = true;
  RuntimeOptions runtime_options;
  runtime_options.eager = false;
  DsrMachine machine(workload_program(), GetParam(), pass_options,
                     runtime_options);
  machine.run();
  EXPECT_EQ(machine.result(), kExpectedResult);
  EXPECT_EQ(machine.hierarchy.counters().coherence_violations, 0u);
}

TEST_P(DsrSeedSweep, StackOffsetsAlignedAndBounded) {
  DsrMachine machine(workload_program(), GetParam());
  for (std::uint32_t id = 0; id < machine.runtime.managed_functions(); ++id) {
    const std::uint32_t offset = machine.runtime.stack_offset(id);
    EXPECT_EQ(offset % 8, 0u);
    EXPECT_LT(offset, machine.runtime.options().offset_range);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsrSeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                           144, 233));

// ---------------------------------------------------------------------------
// Layout properties.
// ---------------------------------------------------------------------------

TEST(DsrRuntime, FunctionsMoveIntoThePool) {
  DsrMachine machine(workload_program(), 7);
  const RuntimeOptions& options = machine.runtime.options();
  for (const FunctionRecord& record : machine.image.functions()) {
    const std::uint32_t addr = machine.runtime.function_address(record.id);
    EXPECT_NE(addr, record.addr) << record.name;
    EXPECT_GE(addr, options.code_pool.base);
    EXPECT_LT(addr, options.code_pool.base + options.code_pool.size);
    EXPECT_EQ(addr % 8, 0u);
  }
}

TEST(DsrRuntime, RelocatedCodeIsBitIdentical) {
  DsrMachine machine(workload_program(), 11);
  for (const FunctionRecord& record : machine.image.functions()) {
    const std::uint32_t new_addr = machine.runtime.function_address(record.id);
    for (std::uint32_t i = 0; i < record.size_bytes; i += 4) {
      ASSERT_EQ(machine.memory.read_u32(new_addr + i),
                machine.memory.read_u32(record.addr + i))
          << record.name << "+" << i;
    }
  }
}

TEST(DsrRuntime, LayoutsDifferAcrossSeeds) {
  DsrMachine a(workload_program(), 100);
  DsrMachine b(workload_program(), 200);
  bool any_difference = false;
  for (std::uint32_t id = 0; id < a.runtime.managed_functions(); ++id) {
    if (a.runtime.function_address(id) != b.runtime.function_address(id) ||
        a.runtime.stack_offset(id) != b.runtime.stack_offset(id)) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(DsrRuntime, RerandomiseChangesLayout) {
  DsrMachine machine(workload_program(), 42);
  std::vector<std::uint32_t> before;
  for (std::uint32_t id = 0; id < machine.runtime.managed_functions(); ++id) {
    before.push_back(machine.runtime.function_address(id));
  }
  machine.runtime.rerandomise();
  bool changed = false;
  for (std::uint32_t id = 0; id < machine.runtime.managed_functions(); ++id) {
    if (machine.runtime.function_address(id) != before[id]) {
      changed = true;
    }
  }
  EXPECT_TRUE(changed);
  // And the program still works under the new layout.
  machine.run();
  EXPECT_EQ(machine.result(), kExpectedResult);
}

TEST(DsrRuntime, OffsetsSpanTheConfiguredRange) {
  // Across many re-randomisations the code offsets must explore the whole
  // L2 way (32 KiB), not just a corner of it.
  DsrMachine machine(workload_program(), 9);
  std::set<std::uint32_t> l2_sets;
  for (int round = 0; round < 200; ++round) {
    machine.runtime.rerandomise();
    const std::uint32_t addr = machine.runtime.function_address(0u);
    l2_sets.insert((addr / 32) % 1024); // L2 set of the first line
  }
  EXPECT_GT(l2_sets.size(), 120u); // ~200 draws over 1024 sets
}

TEST(DsrRuntime, EntryAddressTracksRelocation) {
  DsrMachine machine(workload_program(), 3);
  const FunctionRecord& main_record = machine.image.function("main");
  EXPECT_EQ(machine.runtime.entry_address(),
            machine.runtime.function_address(main_record.id));
  EXPECT_NE(machine.runtime.entry_address(), machine.image.entry_addr());
}

// ---------------------------------------------------------------------------
// Ablation switches.
// ---------------------------------------------------------------------------

TEST(DsrRuntime, CodeRandomisationCanBeDisabled) {
  RuntimeOptions options;
  options.randomise_code = false;
  DsrMachine machine(workload_program(), 5, {}, options);
  for (const FunctionRecord& record : machine.image.functions()) {
    EXPECT_EQ(machine.runtime.function_address(record.id), record.addr);
  }
  machine.run();
  EXPECT_EQ(machine.result(), kExpectedResult);
}

TEST(DsrRuntime, StackRandomisationCanBeDisabled) {
  RuntimeOptions options;
  options.randomise_stack = false;
  DsrMachine machine(workload_program(), 5, {}, options);
  for (std::uint32_t id = 0; id < machine.runtime.managed_functions(); ++id) {
    EXPECT_EQ(machine.runtime.stack_offset(id), 0u);
  }
  machine.run();
  EXPECT_EQ(machine.result(), kExpectedResult);
}

TEST(DsrRuntime, OffsetRangeRespectedWhenShrunk) {
  RuntimeOptions options;
  options.offset_range = 4096; // L1 way size (ablation A1)
  DsrMachine machine(workload_program(), 5, {}, options);
  for (std::uint32_t id = 0; id < machine.runtime.managed_functions(); ++id) {
    EXPECT_LT(machine.runtime.stack_offset(id), 4096u);
  }
  machine.run();
  EXPECT_EQ(machine.result(), kExpectedResult);
}

// ---------------------------------------------------------------------------
// Lazy relocation.
// ---------------------------------------------------------------------------

TEST(DsrRuntime, LazyRelocatesOnFirstCallOnly) {
  PassOptions pass_options;
  pass_options.lazy_stubs = true;
  RuntimeOptions runtime_options;
  runtime_options.eager = false;
  DsrMachine machine(workload_program(), 17, pass_options, runtime_options);

  // Before running: nothing relocated, entry points at main's stub.
  EXPECT_EQ(machine.runtime.stats().relocations, 0u);
  const FunctionRecord& stub = machine.image.function("__dsr_stub_main");
  EXPECT_EQ(machine.runtime.entry_address(), stub.addr);

  machine.run();
  EXPECT_EQ(machine.result(), kExpectedResult);
  // All three functions were called, each relocated exactly once even
  // though fact() is invoked 9 times.
  EXPECT_EQ(machine.runtime.stats().relocations, 3u);
  EXPECT_EQ(machine.runtime.stats().lazy_traps, 3u);
}

TEST(DsrRuntime, LazyChargesRelocationCycles) {
  PassOptions pass_options;
  pass_options.lazy_stubs = true;
  RuntimeOptions lazy_options;
  lazy_options.eager = false;

  DsrMachine lazy(workload_program(), 23, pass_options, lazy_options);
  lazy.run();
  const std::uint64_t lazy_first_run = lazy.cpu.cycles();

  // Same seed stream, eager: the relocation cost is paid before execution,
  // so the measured run is shorter.
  DsrMachine eager(workload_program(), 23);
  eager.run();
  EXPECT_GT(lazy_first_run, eager.cpu.cycles() / 2); // sanity
  EXPECT_GT(lazy.runtime.stats().lazy_traps, 0u);
}

TEST(DsrRuntime, LazyWithoutStubsRejected) {
  RuntimeOptions options;
  options.eager = false;
  EXPECT_THROW(DsrMachine(workload_program(), 1, {}, options),
               proxima::dsr::DsrError);
}

// ---------------------------------------------------------------------------
// Cache invalidation routine (Section III.B.1) and failure injection.
// ---------------------------------------------------------------------------

TEST(DsrRuntime, InvalidationRoutineKeepsCoherence) {
  DsrMachine machine(workload_program(), 31);
  machine.hierarchy.set_strict_coherence(true);
  // Two measurement runs with a re-randomisation in between and WITHOUT a
  // cache flush: only the invalidation routine protects coherence.
  machine.run();
  machine.runtime.rerandomise();
  EXPECT_NO_THROW(machine.run());
  EXPECT_EQ(machine.result(), kExpectedResult);
  EXPECT_EQ(machine.hierarchy.counters().coherence_violations, 0u);
}

TEST(DsrRuntime, SkippingInvalidationIsDetected) {
  RuntimeOptions options;
  options.run_invalidation_routine = false; // failure injection
  DsrMachine machine(workload_program(), 31, {}, options);
  machine.hierarchy.set_strict_coherence(true);
  machine.run(); // first run: caches were empty, loads cached the tables
  machine.runtime.rerandomise();
  // The stale metadata/table or code lines must now be caught.
  EXPECT_THROW(machine.run(), proxima::mem::CoherenceError);
}

TEST(DsrRuntime, StatsAccountForWork) {
  DsrMachine machine(workload_program(), 37);
  const DsrRuntime::Stats& stats = machine.runtime.stats();
  EXPECT_EQ(stats.relocations, 3u);
  std::uint64_t code_bytes = 0;
  for (const FunctionRecord& record : machine.image.functions()) {
    code_bytes += record.size_bytes;
  }
  EXPECT_EQ(stats.bytes_copied, code_bytes);
}

TEST(DsrRuntime, MissingMetadataRejected) {
  Program program = workload_program(); // NOT passed through apply_pass
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy(mem::leon3_hierarchy_config());
  rng::Mwc random(1);
  const LinkedImage image = link(program);
  EXPECT_THROW(
      DsrRuntime(memory, hierarchy, image, random, RuntimeOptions{}),
      proxima::dsr::DsrError);
}

} // namespace
