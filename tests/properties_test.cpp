// Property-style sweeps across the statistical and timing layers:
// parameter-grid recovery for the EVT estimators, pWCET dominance
// invariants, and exact stall accounting for the LEON3-class timing model.
#include "isa/builder.hpp"
#include "mbpta/mbpta.hpp"
#include "rng/distributions.hpp"
#include "rng/mwc.hpp"
#include "vm_harness.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace {

using namespace proxima;
using namespace proxima::isa;
using proxima::test::TestMachine;

// ---------------------------------------------------------------------------
// EVT estimator recovery over a (location, scale, block-size) grid.
// ---------------------------------------------------------------------------

struct GumbelCase {
  double location;
  double scale;
  std::uint32_t block;
};

class GumbelGrid : public ::testing::TestWithParam<GumbelCase> {};

TEST_P(GumbelGrid, FitRecoversParametersAndBounds) {
  const GumbelCase param = GetParam();
  rng::Mwc rng(static_cast<std::uint64_t>(param.location) * 31 +
               param.block);
  std::vector<double> samples;
  constexpr int kSamples = 6000;
  samples.reserve(kSamples);
  for (int i = 0; i < kSamples; ++i) {
    samples.push_back(
        rng::sample_gumbel(rng, param.location, param.scale));
  }
  const auto model = mbpta::PwcetModel::fit_block_maxima(samples, param.block);

  // Block maxima of Gumbel(mu, beta) are Gumbel(mu + beta ln B, beta):
  // the fit must recover the transformed location and the same scale.
  const double expected_location =
      param.location + param.scale * std::log(static_cast<double>(param.block));
  EXPECT_NEAR(model.info().gumbel.location, expected_location,
              6.0 * param.scale / std::sqrt(kSamples / param.block))
      << "block " << param.block;
  EXPECT_NEAR(model.info().gumbel.scale, param.scale, 0.25 * param.scale);

  // Dominance: the pWCET at any exceedance must not fall below the
  // empirical quantile at the same level within the sampled range.
  const mbpta::Summary summary = mbpta::summarise(samples);
  EXPECT_GE(model.pwcet(1e-9), summary.max * 0.999);
  // Monotone in the exceedance probability, over the model's valid range
  // (p < 1/block_size; larger probabilities are body quantiles and throw).
  double previous = 0.0;
  for (int decade = 2; decade <= 15; ++decade) {
    const double p = std::pow(10.0, -decade);
    if (p >= model.max_exceedance()) {
      continue;
    }
    const double value = model.pwcet(p);
    EXPECT_GT(value, previous);
    previous = value;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GumbelGrid,
    ::testing::Values(GumbelCase{1000.0, 5.0, 20},
                      GumbelCase{1000.0, 5.0, 100},
                      GumbelCase{250000.0, 80.0, 50},
                      GumbelCase{250000.0, 800.0, 50},
                      GumbelCase{50.0, 0.5, 30},
                      GumbelCase{1e7, 1000.0, 60}));

// Block-size robustness: for the same data, different block sizes must
// produce deep-tail estimates within a modest band of each other (the
// estimator is consistent, not block-size-driven).
TEST(PwcetProperties, BlockSizeRobustness) {
  rng::Mwc rng(77);
  std::vector<double> samples;
  for (int i = 0; i < 12000; ++i) {
    samples.push_back(rng::sample_gumbel(rng, 10000.0, 25.0));
  }
  const double p = 1e-13;
  const double a = mbpta::PwcetModel::fit_block_maxima(samples, 25).pwcet(p);
  const double b = mbpta::PwcetModel::fit_block_maxima(samples, 50).pwcet(p);
  const double c = mbpta::PwcetModel::fit_block_maxima(samples, 100).pwcet(p);
  EXPECT_NEAR(b / a, 1.0, 0.05);
  EXPECT_NEAR(c / b, 1.0, 0.05);
}

// More samples must not make the estimate wildly unstable (convergence).
TEST(PwcetProperties, EstimateStabilisesWithSampleSize) {
  rng::Mwc rng(88);
  std::vector<double> samples;
  std::vector<double> estimates;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 2000; ++i) {
      samples.push_back(rng::sample_gumbel(rng, 5000.0, 12.0));
    }
    estimates.push_back(
        mbpta::PwcetModel::fit_block_maxima(samples, 50).pwcet(1e-12));
  }
  for (std::size_t i = 1; i < estimates.size(); ++i) {
    EXPECT_NEAR(estimates[i] / estimates[i - 1], 1.0, 0.03) << i;
  }
}

// ---------------------------------------------------------------------------
// Exact stall accounting of the timing model: straight-line code with a
// known access pattern must cost exactly base + configured penalties.
// ---------------------------------------------------------------------------

TEST(TimingModel, StraightLineNopsCostBasePlusFetchMisses) {
  // 64 nops + halt = 65 instructions in 9 lines (32B = 8 instructions).
  FunctionBuilder fb("main");
  for (int i = 0; i < 64; ++i) {
    fb.nop();
  }
  fb.halt();
  Program program;
  program.functions.push_back(std::move(fb).build());
  program.entry = "main";
  TestMachine machine(program);
  machine.run();

  const mem::LatencyConfig& lat = machine.hierarchy.latency();
  const std::uint64_t lines = (65 + 7) / 8 + ((65 % 8) ? 0 : 0);
  const std::uint64_t fetch_stall =
      lines * (lat.bus + lat.l2_hit + lat.dram_read);
  // One ITLB walk for the single code page.
  const std::uint64_t expected = 65 + fetch_stall + lat.tlb_walk;
  EXPECT_EQ(machine.cpu.cycles(), expected);
  EXPECT_EQ(machine.hierarchy.counters().icache_miss, lines);
}

TEST(TimingModel, LoadMissChargesBusL2AndDram) {
  FunctionBuilder fb("main");
  fb.load_address(kO0, "buf"); // 2 instructions
  fb.ld(kO1, kO0, 0);          // cold load
  fb.ld(kO2, kO0, 4);          // same line: hit
  fb.halt();
  Program program;
  program.functions.push_back(std::move(fb).build());
  program.data.push_back(DataObject{.name = "buf", .size = 32, .align = 32});
  program.entry = "main";
  TestMachine machine(program);

  const mem::LatencyConfig& lat = machine.hierarchy.latency();
  machine.run();
  // Expected: 5 instr base + 1 load_use x2 + code fetch (1 line) +
  // ITLB + DTLB walks + one data miss through L2 to DRAM.
  const std::uint64_t code_stall = lat.bus + lat.l2_hit + lat.dram_read;
  const std::uint64_t data_stall = lat.bus + lat.l2_hit + lat.dram_read;
  const std::uint64_t expected = 5 + 2 * machine.cpu.config().load_use_cycles +
                                 code_stall + data_stall + 2 * lat.tlb_walk;
  EXPECT_EQ(machine.cpu.cycles(), expected);
  EXPECT_EQ(machine.hierarchy.counters().dcache_miss, 1u);
}

TEST(TimingModel, TakenBranchCostsPenalty) {
  // Two programs, same instruction count: one falls through, one takes a
  // branch; the difference is exactly the taken penalty.
  auto cycles_for = [](bool taken) {
    FunctionBuilder fb("main");
    fb.li(kO0, taken ? 0 : 1);
    fb.subcci(kO0, 0);
    fb.be("target"); // taken iff o0 == 0
    fb.nop();
    fb.label("target");
    fb.halt();
    Program program;
    program.functions.push_back(std::move(fb).build());
    program.entry = "main";
    TestMachine machine(program);
    machine.run();
    return machine.cpu.cycles() +
           (taken ? 1 : 0); // taken path skips one nop: add it back
  };
  const std::uint64_t not_taken = cycles_for(false);
  const std::uint64_t taken = cycles_for(true);
  TestMachine probe(([] {
    Program p;
    FunctionBuilder fb("main");
    fb.halt();
    p.functions.push_back(std::move(fb).build());
    p.entry = "main";
    return p;
  })());
  EXPECT_EQ(taken - not_taken, probe.cpu.config().branch_taken_penalty);
}

TEST(TimingModel, MulDivLatenciesExact) {
  auto cycles_for = [](Opcode op, int extra_ops) {
    FunctionBuilder fb("main");
    fb.li(kO0, 48);
    fb.li(kO1, 6);
    for (int i = 0; i < extra_ops; ++i) {
      fb.op3(op, kO2, kO0, kO1);
    }
    fb.halt();
    Program program;
    program.functions.push_back(std::move(fb).build());
    program.entry = "main";
    TestMachine machine(program);
    machine.run();
    return machine.cpu.cycles();
  };
  const vm::VmConfig config;
  EXPECT_EQ(cycles_for(Opcode::kMul, 4) - cycles_for(Opcode::kMul, 0),
            4 * config.mul_cycles);
  EXPECT_EQ(cycles_for(Opcode::kDiv, 4) - cycles_for(Opcode::kDiv, 0),
            4 * config.div_cycles);
}

} // namespace
