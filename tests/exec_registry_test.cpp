// Tests for the scenario registry: the named-workload catalogue that
// campaigns, benches and examples enumerate instead of hand-rolling
// configurations.
#include "exec/engine.hpp"
#include "exec/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace proxima;
using casestudy::CampaignConfig;
using casestudy::Layout;
using casestudy::PrngKind;
using casestudy::Randomisation;

// The registry is non-movable (internal mutex); tests build their own in
// place via this fixture.
class FreshRegistry {
public:
  FreshRegistry() { exec::register_default_scenarios(registry_); }
  exec::ScenarioRegistry& get() { return registry_; }

private:
  exec::ScenarioRegistry registry_;
};

TEST(ScenarioRegistry, DefaultCatalogue) {
  FreshRegistry fixture;
  const exec::ScenarioRegistry& registry = fixture.get();
  // Operation + analysis for every randomisation technology, plus the
  // layout / PRNG / offset / relocation-scheme sweeps, the stress
  // scenario, the hypervisor (partition-interference) family, the
  // image-task measured family, and the address-leak family.
  EXPECT_EQ(registry.size(), 32u);
  for (const char* name :
       {"control/operation-cots", "control/operation-dsr",
        "control/operation-static", "control/operation-hwrand",
        "control/analysis-cots", "control/analysis-dsr",
        "control/analysis-static", "control/analysis-hwrand",
        "control/layout-neutral", "control/prng-lfsr", "control/offset-l1",
        "control/dsr-lazy", "control/stress-corrupt", "hv/control-solo",
        "hv/control+image", "hv/control+image-dsr", "hv/control+stress",
        "hv/image+control", "hv/image+control-dsr", "image/operation-cots",
        "image/operation-dsr", "image/operation-hwrand",
        "image/analysis-cots", "image/analysis-dsr",
        "image/analysis-hwrand", "leak/beacon-dsr", "leak/hardened-dsr",
        "leak/beacon-cots", "leak/observer-hv", "control/dsr-ondemand",
        "hv/control+image-ondemand", "leak/beacon-ondemand"}) {
    EXPECT_TRUE(registry.contains(name)) << name;
  }
}

TEST(ScenarioRegistry, NamesAreSortedAndPrefixFiltered) {
  FreshRegistry fixture;
  const exec::ScenarioRegistry& registry = fixture.get();
  const std::vector<std::string> all = registry.names();
  EXPECT_EQ(all.size(), registry.size());
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end()));

  const std::vector<std::string> analysis =
      registry.names("control/analysis-");
  EXPECT_EQ(analysis.size(), 4u);
  for (const std::string& name : analysis) {
    EXPECT_EQ(name.rfind("control/analysis-", 0), 0u) << name;
  }
}

TEST(ScenarioRegistry, LookupSemantics) {
  FreshRegistry fixture;
  const exec::ScenarioRegistry& registry = fixture.get();
  EXPECT_NE(registry.find("control/operation-dsr"), nullptr);
  EXPECT_EQ(registry.find("control/no-such"), nullptr);
  EXPECT_FALSE(registry.contains("control/no-such"));

  const exec::Scenario& scenario = registry.at("control/operation-dsr");
  EXPECT_EQ(scenario.name, "control/operation-dsr");
  EXPECT_FALSE(scenario.description.empty());

  try {
    registry.at("control/tpyo");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("control/tpyo"), std::string::npos);
    EXPECT_NE(what.find("control/operation-dsr"), std::string::npos)
        << "the error must list the known names";
    EXPECT_NE(what.find("families:"), std::string::npos)
        << "the error must name the registered families";
    EXPECT_NE(what.find("control/(14)"), std::string::npos);
    EXPECT_NE(what.find("image/(6)"), std::string::npos);
  }
}

TEST(ScenarioRegistry, UnknownNameSuggestsClosestMatches) {
  FreshRegistry fixture;
  const exec::ScenarioRegistry& registry = fixture.get();
  // A near-miss typo gets "did you mean" suggestions, nearest first.
  try {
    registry.at("hv/control+imge");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& error) {
    const std::string what = error.what();
    const std::size_t did_you_mean = what.find("did you mean:");
    ASSERT_NE(did_you_mean, std::string::npos) << what;
    EXPECT_NE(what.find("hv/control+image", did_you_mean),
              std::string::npos);
  }
  // Garbage matches nothing: no suggestion line, catalogue still listed.
  try {
    registry.at("zzzzzzzzzzzzzzzz");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& error) {
    const std::string what = error.what();
    EXPECT_EQ(what.find("did you mean"), std::string::npos) << what;
    EXPECT_NE(what.find("known scenarios:"), std::string::npos);
  }
}

TEST(ScenarioRegistry, RejectsInvalidRegistrations) {
  FreshRegistry fixture;
  exec::ScenarioRegistry& registry = fixture.get();
  EXPECT_THROW(registry.add(exec::Scenario{
                   "", "no name",
                   [](std::uint32_t) { return CampaignConfig{}; }}),
               std::invalid_argument);
  EXPECT_THROW(registry.add(exec::Scenario{"control/new", "no factory", {}}),
               std::invalid_argument);
  EXPECT_THROW(registry.add(exec::Scenario{
                   "control/operation-dsr", "duplicate",
                   [](std::uint32_t) { return CampaignConfig{}; }}),
               std::invalid_argument);
  EXPECT_EQ(registry.size(), 32u) << "failed adds must not register";
}

TEST(ScenarioRegistry, FactoriesHonourRunsAndScenarioKnobs) {
  FreshRegistry fixture;
  const exec::ScenarioRegistry& registry = fixture.get();

  const CampaignConfig operation =
      registry.at("control/operation-dsr").make_config(123);
  EXPECT_EQ(operation.runs, 123u);
  EXPECT_EQ(operation.randomisation, Randomisation::kDsr);
  EXPECT_FALSE(operation.fixed_inputs);

  const CampaignConfig analysis =
      registry.at("control/analysis-hwrand").make_config(77);
  EXPECT_EQ(analysis.runs, 77u);
  EXPECT_EQ(analysis.randomisation, Randomisation::kHardware);
  EXPECT_TRUE(analysis.fixed_inputs);
  EXPECT_EQ(analysis.control.corrupt_rate, 1.0);

  EXPECT_EQ(registry.at("control/layout-neutral").make_config(1).layout,
            Layout::kNeutral);
  EXPECT_EQ(registry.at("control/prng-lfsr").make_config(1).prng,
            PrngKind::kLfsr);
  EXPECT_EQ(
      registry.at("control/offset-l1").make_config(1).dsr_options.offset_range,
      4u * 1024u);
  EXPECT_EQ(
      registry.at("control/stress-corrupt").make_config(1).control.corrupt_rate,
      1.0);
}

TEST(ScenarioRegistry, GlobalIsASingletonWithDefaults) {
  exec::ScenarioRegistry& a = exec::ScenarioRegistry::global();
  exec::ScenarioRegistry& b = exec::ScenarioRegistry::global();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 13u);
  EXPECT_TRUE(a.contains("control/operation-cots"));
}

TEST(ScenarioRegistry, ScenariosRunThroughTheEngine) {
  const exec::Scenario& scenario =
      exec::ScenarioRegistry::global().at("control/operation-cots");
  exec::EngineOptions options;
  options.workers = 2;
  const casestudy::CampaignResult result =
      exec::CampaignEngine(options).run(scenario.make_config(3));
  EXPECT_EQ(result.times.size(), 3u);
  EXPECT_EQ(result.verified_runs, 3u);
  for (double time : result.times) {
    EXPECT_GT(time, 0.0);
  }
}

} // namespace
