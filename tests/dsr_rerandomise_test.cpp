// Differential tests for the batched re-randomisation fast path (ISSUE
// 10): the MARDU-style reseed — host-word block moves, staged metadata
// tables flushed as bulk spans, one coalesced invalidation-routine batch —
// must be BIT-IDENTICAL to the original per-word sequence: same RNG
// draws, same layouts, same final memory and cache state, same
// DsrRuntime::Stats, same execution times.  Plus the two properties the
// fast path's plumbing rests on: pool-chunk reuse across reboots must not
// shift the layout stream, and the on-demand reseed arm must stay a pure
// function of the run index at any worker count.
#include "core/dsr_pass.hpp"
#include "core/dsr_runtime.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"
#include "exec/seed.hpp"
#include "isa/builder.hpp"
#include "isa/linker.hpp"
#include "mem/cache.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "rng/mwc.hpp"
#include "trace/report.hpp"
#include "vm/vm.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace {

using namespace proxima;
using namespace proxima::isa;
using dsr::DsrRuntime;
using dsr::PassOptions;
using dsr::RuntimeOptions;

constexpr std::uint32_t kStackTop = 0x4080'0000;

/// Same shape as the dsr_runtime_test workload: nested calls, stack
/// locals, recursion, loops — enough code that relocation spans multiple
/// cache lines and pool pages.
Program workload_program() {
  Program program;
  {
    FunctionBuilder fb("main");
    fb.prologue(96);
    fb.li(kO0, 9);
    fb.call("fact");
    fb.mov(kL0, kO0);
    fb.li(kO0, 20);
    fb.call("sum_upto");
    fb.add(kL0, kL0, kO0);
    fb.load_address(kO1, "result");
    fb.st(kL0, kO1, 0);
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("fact");
    fb.prologue(96);
    fb.subcci(kI0, 1);
    fb.ble("base");
    fb.subi(kO0, kI0, 1);
    fb.call("fact");
    fb.mul(kI0, kI0, kO0);
    fb.ba("done");
    fb.label("base");
    fb.li(kI0, 1);
    fb.label("done");
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  {
    FunctionBuilder fb("sum_upto");
    fb.prologue(104);
    fb.st(kG0, kSp, 96);
    fb.label("loop");
    fb.subcci(kI0, 0);
    fb.ble("end");
    fb.ld(kO1, kSp, 96);
    fb.add(kO1, kO1, kI0);
    fb.st(kO1, kSp, 96);
    fb.subi(kI0, kI0, 1);
    fb.ba("loop");
    fb.label("end");
    fb.ld(kI0, kSp, 96);
    fb.epilogue();
    program.functions.push_back(fb.build());
  }
  program.data.push_back(DataObject{.name = "result", .size = 4, .align = 4});
  program.entry = "main";
  return program;
}

constexpr std::uint32_t kExpectedResult = 362880 + 210;

struct DsrMachine {
  mem::GuestMemory memory;
  mem::MemoryHierarchy hierarchy;
  vm::Vm cpu;
  rng::Mwc random;
  LinkedImage image;
  DsrRuntime runtime;

  DsrMachine(vm::VmCore core, const PassOptions& pass_options,
             RuntimeOptions runtime_options)
      : hierarchy(mem::leon3_hierarchy_config()),
        cpu(memory, hierarchy,
            [core] {
              vm::VmConfig config;
              config.core = core;
              return config;
            }()),
        random(1), image(make_image(workload_program(), pass_options)),
        runtime(memory, hierarchy, image, random, runtime_options) {
    image.load_into(memory);
    cpu.predecode(image.code_begin(), image.code_end() - image.code_begin());
    runtime.attach(cpu);
  }

  static LinkedImage make_image(Program program,
                                const PassOptions& pass_options) {
    dsr::apply_pass(program, pass_options);
    return link(program);
  }

  void reseed(std::uint64_t round) {
    random.seed(exec::derive_run_seed(611085, exec::SeedStream::kLayout,
                                      round));
    runtime.rerandomise();
  }

  vm::RunResult run() {
    constexpr std::uint32_t kTrampoline = 0x40f0'0000;
    memory.write_u32(kTrampoline, isa::encode(make_b(Opcode::kHalt, 0)));
    cpu.reset(runtime.entry_address(), kStackTop);
    cpu.set_reg(kO7, kTrampoline - 4);
    return cpu.run();
  }

  std::uint32_t result() {
    return memory.read_u32(image.symbol("result").addr);
  }

  std::vector<std::uint32_t> layout() const {
    std::vector<std::uint32_t> snapshot;
    for (const FunctionRecord& record : image.functions()) {
      snapshot.push_back(runtime.function_address(record.id));
      snapshot.push_back(runtime.stack_offset(record.id));
    }
    return snapshot;
  }

  /// The guest-visible metadata tables, word by word.
  std::vector<std::uint32_t> tables() {
    std::vector<std::uint32_t> words;
    const std::uint32_t count =
        static_cast<std::uint32_t>(image.functions().size());
    for (const char* symbol : {"__dsr_functab", "__dsr_stackoff"}) {
      const std::uint32_t base = image.symbol(symbol).addr;
      for (std::uint32_t id = 0; id < count; ++id) {
        words.push_back(memory.read_u32(base + 4 * id));
      }
    }
    return words;
  }
};

void expect_same_stats(const DsrRuntime::Stats& a, const DsrRuntime::Stats& b) {
  EXPECT_EQ(a.reseeds, b.reseeds);
  EXPECT_EQ(a.ondemand_reseeds, b.ondemand_reseeds);
  EXPECT_EQ(a.relocations, b.relocations);
  EXPECT_EQ(a.bytes_copied, b.bytes_copied);
  EXPECT_EQ(a.lines_invalidated, b.lines_invalidated);
  EXPECT_EQ(a.lazy_traps, b.lazy_traps);
  EXPECT_EQ(a.lazy_cycles, b.lazy_cycles);
}

// ---------------------------------------------------------------------------
// Batched == per-word, at the runtime level: layouts, tables, stats, and
// the execution cycles that witness the whole cache state.
// ---------------------------------------------------------------------------

class RelocationPathSweep
    : public ::testing::TestWithParam<std::pair<vm::VmCore, bool>> {};

TEST_P(RelocationPathSweep, BatchedReseedIsBitIdenticalToPerWord) {
  const auto [core, lazy] = GetParam();
  PassOptions pass_options;
  pass_options.lazy_stubs = lazy;
  RuntimeOptions batched_options;
  batched_options.eager = !lazy;
  RuntimeOptions per_word_options = batched_options;
  per_word_options.batched_relocation = false;

  DsrMachine batched(core, pass_options, batched_options);
  DsrMachine per_word(core, pass_options, per_word_options);
  for (std::uint64_t round = 0; round < 8; ++round) {
    batched.reseed(round);
    per_word.reseed(round);
    EXPECT_EQ(batched.layout(), per_word.layout()) << "round " << round;
    EXPECT_EQ(batched.tables(), per_word.tables()) << "round " << round;
    // Executing the workload witnesses every cache level and the decode
    // cache: any divergent line state shows up as divergent cycles (and
    // a stale line as a coherence violation).
    const vm::RunResult a = batched.run();
    const vm::RunResult b = per_word.run();
    EXPECT_EQ(a.cycles, b.cycles) << "round " << round;
    EXPECT_EQ(batched.result(), kExpectedResult);
    EXPECT_EQ(per_word.result(), kExpectedResult);
    EXPECT_EQ(batched.hierarchy.counters().coherence_violations, 0u);
    EXPECT_EQ(per_word.hierarchy.counters().coherence_violations, 0u);
  }
  expect_same_stats(batched.runtime.stats(), per_word.runtime.stats());
}

INSTANTIATE_TEST_SUITE_P(
    CoresAndSchemes, RelocationPathSweep,
    ::testing::Values(std::pair{vm::VmCore::kFastSb, false},
                      std::pair{vm::VmCore::kFastSb, true},
                      std::pair{vm::VmCore::kFast, false},
                      std::pair{vm::VmCore::kFast, true},
                      std::pair{vm::VmCore::kReference, false}));

// ---------------------------------------------------------------------------
// Batched == per-word, at the campaign level: whole-scenario digests and
// merged metrics through the engine.
// ---------------------------------------------------------------------------

std::string engine_digest(casestudy::CampaignConfig config, unsigned workers) {
  exec::EngineOptions options;
  options.workers = workers;
  return trace::times_digest_hex(
      exec::CampaignEngine(options).run(config).times);
}

TEST(BatchedReseed, CampaignDigestsMatchPerWordPath) {
  for (const char* name :
       {"control/operation-dsr", "control/dsr-lazy", "hv/control+image-dsr",
        "leak/beacon-ondemand"}) {
    casestudy::CampaignConfig config =
        exec::ScenarioRegistry::global().at(name).make_config(12);
    config.dsr_options.batched_relocation = false;
    EXPECT_EQ(engine_digest(config, 4),
              engine_digest(
                  exec::ScenarioRegistry::global().at(name).make_config(12),
                  4))
        << name;
  }
}

TEST(BatchedReseed, CampaignCountersMatchPerWordPath) {
  casestudy::CampaignConfig config =
      exec::ScenarioRegistry::global().at("control/operation-dsr")
          .make_config(8);
  config.collect_metrics = true;
  casestudy::CampaignConfig per_word = config;
  per_word.dsr_options.batched_relocation = false;
  exec::EngineOptions options;
  options.workers = 4;
  const auto batched = exec::CampaignEngine(options).run(config);
  const auto baseline = exec::CampaignEngine(options).run(per_word);
  EXPECT_EQ(batched.metrics.counters, baseline.metrics.counters);
}

// ---------------------------------------------------------------------------
// Pool-chunk reuse: a runtime reseeding over a recycled pool must draw the
// same layout stream as a freshly constructed runtime given the same seed.
// ---------------------------------------------------------------------------

TEST(BatchedReseed, PoolChunkReuseDoesNotShiftTheLayoutStream) {
  PassOptions pass_options;
  DsrMachine recycled(vm::VmCore::kFastSb, pass_options, RuntimeOptions{});
  for (std::uint64_t round = 0; round < 12; ++round) {
    recycled.reseed(round);
    // Fresh machine: brand-new pool, no free-list history, same seed.
    DsrMachine fresh(vm::VmCore::kFastSb, pass_options, RuntimeOptions{});
    fresh.reseed(round);
    EXPECT_EQ(recycled.layout(), fresh.layout()) << "round " << round;
  }
}

// ---------------------------------------------------------------------------
// Cache-level equivalence of the coalesced invalidation batch, including
// the tag-walk fast path for batches wider than the cache.
// ---------------------------------------------------------------------------

TEST(BatchedReseed, InvalidateRangesMatchesPerRangeCalls) {
  mem::CacheConfig config;
  config.name = "L2";
  config.size_bytes = 32 * 1024;
  config.line_bytes = 32;
  config.ways = 1;
  config.write_policy = mem::WritePolicy::kWriteBackAllocate;
  mem::Cache per_range(config);
  mem::Cache batched(config);
  // Populate both identically: reads spread over several way-sized spans,
  // writes making a subset dirty.
  for (std::uint32_t addr = 0; addr < 96 * 1024; addr += 64) {
    per_range.read(addr);
    batched.read(addr);
    if (addr % 256 == 0) {
      per_range.write(addr);
      batched.write(addr);
    }
  }
  // Sorted disjoint ranges spanning more lines than the cache holds — the
  // batched side takes the tag walk.  The populating loop above leaves each
  // direct-mapped set holding its LAST occupant, i.e. tags from the final
  // 32 KiB span (0x10000..0x17fff); the middle range covers them all, the
  // outer two cover none (exercising the no-op membership probes).
  const std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges = {
      {0x100, 64}, {0x10000, 32 * 1024}, {0x20000, 2048}};
  std::vector<std::uint32_t> per_range_writebacks;
  std::vector<std::uint32_t> batched_writebacks;
  for (const auto& [addr, length] : ranges) {
    per_range.invalidate_range(addr, length, &per_range_writebacks);
  }
  batched.invalidate_ranges(ranges, &batched_writebacks);

  EXPECT_EQ(per_range.stats().invalidations, batched.stats().invalidations);
  EXPECT_GT(batched.stats().invalidations, 0u);
  // Writeback ORDER is unspecified; the set must match.
  std::sort(per_range_writebacks.begin(), per_range_writebacks.end());
  std::sort(batched_writebacks.begin(), batched_writebacks.end());
  EXPECT_EQ(per_range_writebacks, batched_writebacks);
  for (std::uint32_t addr = 0; addr < 96 * 1024; addr += 32) {
    ASSERT_EQ(per_range.contains(addr), batched.contains(addr))
        << "line 0x" << std::hex << addr;
  }
}

// ---------------------------------------------------------------------------
// On-demand reseed determinism: the mid-run reseed consumes the same
// per-run layout stream, so digests are a pure function of the run index
// at ANY worker count.
// ---------------------------------------------------------------------------

TEST(OnDemandReseed, DigestsAreWorkerCountInvariant) {
  for (const char* name : {"control/dsr-ondemand", "leak/beacon-ondemand"}) {
    const auto make = [&] {
      return exec::ScenarioRegistry::global().at(name).make_config(16);
    };
    const std::string w1 = engine_digest(make(), 1);
    EXPECT_EQ(w1, engine_digest(make(), 3)) << name;
    EXPECT_EQ(w1, engine_digest(make(), 8)) << name;
  }
  const auto hv = [] {
    return exec::ScenarioRegistry::global()
        .at("hv/control+image-ondemand")
        .make_config(8);
  };
  const std::string w1 = engine_digest(hv(), 1);
  EXPECT_EQ(w1, engine_digest(hv(), 8)) << "hv/control+image-ondemand";
}

TEST(OnDemandReseed, TriggersFireWhereTheEventExists) {
  exec::EngineOptions options;
  options.workers = 4;
  // The leak beacon stores layout bits to an observable sink: the bare
  // trigger fires mid-run.
  casestudy::CampaignConfig beacon =
      exec::ScenarioRegistry::global().at("leak/beacon-ondemand")
          .make_config(8);
  beacon.collect_metrics = true;
  const auto fired = exec::CampaignEngine(options).run(beacon);
  EXPECT_GT(fired.metrics.counters.at("dsr.ondemand_reseeds"), 0u);
  // The control task never stores to a sink: armed, never fired.
  casestudy::CampaignConfig control =
      exec::ScenarioRegistry::global().at("control/dsr-ondemand")
          .make_config(8);
  control.collect_metrics = true;
  const auto silent = exec::CampaignEngine(options).run(control);
  EXPECT_EQ(silent.metrics.counters.at("dsr.ondemand_reseeds"), 0u);
  EXPECT_GT(silent.metrics.counters.at("dsr.reseeds"), 0u);
}

} // namespace
