// CLI smoke tests: drive `proxima list|run|report` in-process through
// cli::run_cli and validate the machine-readable output — the JSON is
// checked for well-formedness with a minimal recursive-descent parser and
// for the documented schema keys, the CSV for its header and row shape.
#include "cli/cli.hpp"

#include "cli/json_writer.hpp"
#include "exec/registry.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h> // getpid: unique temp-file names for the diff tests

namespace {

using namespace proxima;

// ---------------------------------------------------------------------------
// A minimal JSON validity checker (no values kept, structure only).
// ---------------------------------------------------------------------------

class JsonChecker {
public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!parse_value()) {
      return false;
    }
    skip_ws();
    return pos_ == text_.size();
  }

private:
  bool parse_value() {
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
    case '{': return parse_object();
    case '[': return parse_array();
    case '"': return parse_string();
    case 't': return parse_literal("true");
    case 'f': return parse_literal("false");
    case 'n': return parse_literal("null");
    default: return parse_number();
    }
  }

  bool parse_object() {
    ++pos_; // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_string()) {
        return false;
      }
      skip_ws();
      if (peek() != ':') {
        return false;
      }
      ++pos_;
      skip_ws();
      if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_array() {
    ++pos_; // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!parse_value()) {
        return false;
      }
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool parse_string() {
    if (peek() != '"') {
      return false;
    }
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_; // escaped char (coarse: skips the escape introducer)
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return false;
    }
    ++pos_; // closing quote
    return true;
  }

  bool parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool parse_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return false;
    }
    pos_ += literal.size();
    return true;
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Run the CLI in-process; returns {exit code, stdout, stderr}.
struct CliResult {
  int code = -1;
  std::string out;
  std::string err;
};

CliResult invoke(std::vector<const char*> args) {
  args.insert(args.begin(), "proxima");
  std::ostringstream out;
  std::ostringstream err;
  CliResult result;
  result.code = cli::run_cli(static_cast<int>(args.size()), args.data(), out,
                             err);
  result.out = out.str();
  result.err = err.str();
  return result;
}

/// The first "value" after a JSON key, as raw text (string values keep
/// their quotes).  Good enough for flat schema spot-checks.
std::string field_after(const std::string& json, const std::string& key) {
  const std::size_t at = json.find('"' + key + "\": ");
  if (at == std::string::npos) {
    return {};
  }
  std::size_t start = at + key.size() + 4;
  std::size_t end = start;
  while (end < json.size() && json[end] != ',' && json[end] != '\n' &&
         json[end] != '}') {
    ++end;
  }
  return json.substr(start, end - start);
}

// ---------------------------------------------------------------------------
// list
// ---------------------------------------------------------------------------

TEST(CliList, EnumeratesTheRegistryCatalogue) {
  const CliResult result = invoke({"list"});
  EXPECT_EQ(result.code, 0);
  for (const std::string& name : exec::ScenarioRegistry::global().names()) {
    EXPECT_NE(result.out.find(name), std::string::npos) << name;
  }
}

TEST(CliList, JsonIsWellFormed) {
  const CliResult result = invoke({"list", "--format", "json"});
  EXPECT_EQ(result.code, 0);
  EXPECT_TRUE(JsonChecker(result.out).valid()) << result.out;
  EXPECT_EQ(field_after(result.out, "command"), "\"list\"");
  EXPECT_NE(result.out.find("control/operation-dsr"), std::string::npos);
}

// ---------------------------------------------------------------------------
// run
// ---------------------------------------------------------------------------

TEST(CliRun, JsonSchemaOnASmallScenario) {
  const CliResult result =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "12",
              "--workers", "2", "--format", "json"});
  ASSERT_EQ(result.code, 0) << result.err;
  ASSERT_TRUE(JsonChecker(result.out).valid()) << result.out;
  EXPECT_EQ(field_after(result.out, "command"), "\"run\"");
  EXPECT_EQ(field_after(result.out, "name"), "\"control/operation-cots\"");
  EXPECT_EQ(field_after(result.out, "runs"), "12");
  EXPECT_EQ(field_after(result.out, "workers"), "2")
      << "the resolved worker count, not the raw flag";
  EXPECT_EQ(field_after(result.out, "n"), "12");
  EXPECT_EQ(field_after(result.out, "verified_runs"), "12");
  EXPECT_EQ(field_after(result.out, "adaptive"), "null");
  EXPECT_NE(result.out.find("\"digest\": \"0x"), std::string::npos);
  for (const char* key : {"min", "mean", "max", "stddev", "wall_seconds",
                          "guest_instructions", "minstr_per_second"}) {
    EXPECT_FALSE(field_after(result.out, key).empty()) << key;
  }
}

TEST(CliRun, JsonCarriesTheMeasuredTarget) {
  // The schema's "measured" field labels which program's UoA the
  // times/digest describe; hv/ partition sections flag the measured one.
  const CliResult control =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "3",
              "--format", "json"});
  ASSERT_EQ(control.code, 0) << control.err;
  EXPECT_EQ(field_after(control.out, "measured"), "\"control\"");

  const CliResult image =
      invoke({"run", "--scenario", "image/operation-cots", "--runs", "3",
              "--format", "json"});
  ASSERT_EQ(image.code, 0) << image.err;
  EXPECT_EQ(field_after(image.out, "measured"), "\"image\"");
  EXPECT_EQ(field_after(image.out, "verified_runs"), "3");

  const CliResult hv =
      invoke({"run", "--scenario", "hv/image+control", "--runs", "2",
              "--frames", "3", "--format", "json"});
  ASSERT_EQ(hv.code, 0) << hv.err;
  ASSERT_TRUE(JsonChecker(hv.out).valid()) << hv.out;
  EXPECT_EQ(field_after(hv.out, "measured"), "\"image\"");
  // The partition sections flag the measured one: the first "measured"
  // after a partition's "name" key is its flag.
  const auto partition_flag = [&](const char* name) {
    const std::size_t at = hv.out.find(std::string("\"name\": \"") + name);
    EXPECT_NE(at, std::string::npos) << name;
    return field_after(hv.out.substr(at), "measured");
  };
  EXPECT_EQ(partition_flag("processing"), "true");
  EXPECT_EQ(partition_flag("control"), "false")
      << "the interference guest is not the measured partition";
}

TEST(CliRun, PartitionFlagComposesWithMeasuredSelection) {
  // --partition can pick the interference guest of an image-measured
  // scenario: the filter operates on partition names regardless of which
  // one is measured.
  const CliResult result =
      invoke({"run", "--scenario", "hv/image+control", "--runs", "2",
              "--frames", "3", "--partition", "control", "--format", "json"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("\"name\": \"control\""), std::string::npos);
  EXPECT_EQ(result.out.find("\"name\": \"processing\""), std::string::npos)
      << "--partition must filter out the measured partition's section";
}

TEST(CliRun, SeedAndVmCoreFlagsReachTheConfig) {
  const CliResult result =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "8",
              "--seed", "7", "--vm-core", "reference", "--format", "json"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(field_after(result.out, "vm_core"), "\"reference\"");
  EXPECT_EQ(field_after(result.out, "input"), "7");
  EXPECT_NE(field_after(result.out, "layout"), "7")
      << "layout stream must get a mixed companion seed";
  // The default core is the superblock tier; all three are bit-identical,
  // so the --vm-core choice shows up in the header and nowhere else.
  const CliResult default_core =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "8",
              "--seed", "7", "--format", "json"});
  ASSERT_EQ(default_core.code, 0) << default_core.err;
  EXPECT_EQ(field_after(default_core.out, "vm_core"), "\"fast-sb\"");
  EXPECT_EQ(field_after(default_core.out, "digest"),
            field_after(result.out, "digest"))
      << "fast-sb and reference must produce the same times digest";
}

TEST(CliErrors, UnknownVmCoreSuggestsClosestMatch) {
  // The did-you-mean treatment the scenario names get, applied to
  // --vm-core: a typo exits 2 with the expected values and a suggestion.
  const CliResult result =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "2",
              "--vm-core", "fsat"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("expected fast|fast-sb|reference"),
            std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("did you mean: fast?"), std::string::npos)
      << result.err;
  const CliResult sb = invoke({"run", "--scenario", "control/operation-cots",
                               "--runs", "2", "--vm-core", "fastsb"});
  EXPECT_EQ(sb.code, 2);
  EXPECT_NE(sb.err.find("fast-sb"), std::string::npos) << sb.err;
}

TEST(CliErrors, UnknownRandomisationSuggestsClosestMatch) {
  // Same did-you-mean treatment for --randomisation: a typo exits 2 with
  // the expected values and the closest arm.
  const CliResult result =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "2",
              "--randomisation", "dsr-ondemnd"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("expected cots|dsr|dsr-ondemand|static|hwrand"),
            std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("did you mean: dsr-ondemand?"), std::string::npos)
      << result.err;
  const CliResult hw = invoke({"run", "--scenario", "control/operation-cots",
                               "--runs", "2", "--randomisation", "hwrnd"});
  EXPECT_EQ(hw.code, 2);
  EXPECT_NE(hw.err.find("hwrand"), std::string::npos) << hw.err;
}

TEST(CliRun, RandomisationOverrideReachesTheConfig) {
  // The operation-family scenarios differ only in their randomisation arm,
  // so overriding the cots scenario to dsr must reproduce the registered
  // dsr scenario bit-exactly.
  const CliResult overridden =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "8",
              "--randomisation", "dsr", "--format", "json"});
  ASSERT_EQ(overridden.code, 0) << overridden.err;
  const CliResult registered =
      invoke({"run", "--scenario", "control/operation-dsr", "--runs", "8",
              "--format", "json"});
  ASSERT_EQ(registered.code, 0) << registered.err;
  EXPECT_EQ(field_after(overridden.out, "digest"),
            field_after(registered.out, "digest"));
}

TEST(CliRun, AdaptiveIsBitIdenticalAcrossWorkerCounts) {
  // The CLI-level acceptance check: same seed, workers 1 vs 8 -> same stop
  // count and bit-identical times (visible as the digest).
  const std::vector<const char*> base = {
      "run",     "--scenario", "control/operation-dsr",
      "--adaptive", "--runs", "120",
      "--batch", "40",         "--seed",
      "42",      "--format",   "json"};
  std::vector<const char*> one = base;
  one.insert(one.end(), {"--workers", "1"});
  std::vector<const char*> eight = base;
  eight.insert(eight.end(), {"--workers", "8"});

  const CliResult sequential = invoke(one);
  const CliResult parallel = invoke(eight);
  ASSERT_EQ(sequential.code, 0) << sequential.err;
  ASSERT_EQ(parallel.code, 0) << parallel.err;
  ASSERT_TRUE(JsonChecker(sequential.out).valid());
  const std::string digest = field_after(sequential.out, "digest");
  EXPECT_FALSE(digest.empty());
  EXPECT_EQ(digest, field_after(parallel.out, "digest"));
  EXPECT_EQ(field_after(sequential.out, "runs"),
            field_after(parallel.out, "runs"));
  EXPECT_EQ(field_after(sequential.out, "batches"),
            field_after(parallel.out, "batches"));
}

TEST(CliRun, HvScenarioEmitsPerPartitionJsonSections) {
  const CliResult result =
      invoke({"run", "--scenario", "hv/control+image", "--runs", "5",
              "--workers", "2", "--frames", "5", "--format", "json"});
  ASSERT_EQ(result.code, 0) << result.err;
  ASSERT_TRUE(JsonChecker(result.out).valid()) << result.out;
  EXPECT_EQ(field_after(result.out, "frames"), "5");
  EXPECT_NE(result.out.find("\"partitions\": ["), std::string::npos);
  EXPECT_NE(result.out.find("\"name\": \"control\""), std::string::npos);
  EXPECT_NE(result.out.find("\"name\": \"processing\""), std::string::npos);
  for (const char* key :
       {"activations", "moet", "overruns", "iid_passes", "pwcet"}) {
    EXPECT_FALSE(field_after(result.out, key).empty()) << key;
  }
  EXPECT_EQ(field_after(result.out, "verified_runs"), "5");
}

TEST(CliRun, PartitionFlagRestrictsTheSections) {
  const CliResult result =
      invoke({"run", "--scenario", "hv/control+image", "--runs", "3",
              "--partition", "control", "--format", "json"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_NE(result.out.find("\"name\": \"control\""), std::string::npos);
  EXPECT_EQ(result.out.find("\"name\": \"processing\""), std::string::npos)
      << "--partition must filter the sections";

  // A name matching no partition is a usage error (exit 2), not a
  // well-formed document with a silently empty section.
  const CliResult typo =
      invoke({"run", "--scenario", "hv/control+image", "--runs", "2",
              "--partition", "contrl", "--format", "json"});
  EXPECT_EQ(typo.code, 2);
  EXPECT_NE(typo.err.find("no partition named 'contrl'"), std::string::npos);
  EXPECT_TRUE(typo.out.empty()) << "nothing may be emitted before the error";
}

TEST(CliRun, BareScenariosEmitNullPartitions) {
  const CliResult result =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "4",
              "--format", "json"});
  ASSERT_EQ(result.code, 0) << result.err;
  EXPECT_EQ(field_after(result.out, "partitions"), "null");
  EXPECT_EQ(field_after(result.out, "frames"), "null");
}

TEST(CliRun, HvIsBitIdenticalAcrossWorkerCounts) {
  // The acceptance check of the hypervisor family: same seed, workers 1
  // vs 8 -> bit-identical times (visible as the digest).
  const std::vector<const char*> base = {"run",    "--scenario",
                                         "hv/control+image", "--runs",
                                         "8",      "--seed",
                                         "7",      "--format",
                                         "json"};
  std::vector<const char*> one = base;
  one.insert(one.end(), {"--workers", "1"});
  std::vector<const char*> eight = base;
  eight.insert(eight.end(), {"--workers", "8"});
  const CliResult sequential = invoke(one);
  const CliResult parallel = invoke(eight);
  ASSERT_EQ(sequential.code, 0) << sequential.err;
  ASSERT_EQ(parallel.code, 0) << parallel.err;
  const std::string digest = field_after(sequential.out, "digest");
  EXPECT_FALSE(digest.empty());
  EXPECT_EQ(digest, field_after(parallel.out, "digest"));
}

TEST(CliRun, CsvHasHeaderAndOneRowPerScenario) {
  const CliResult result =
      invoke({"run", "--scenario", "control/operation-cots", "--scenario",
              "control/layout-neutral", "--runs", "8", "--format", "csv"});
  ASSERT_EQ(result.code, 0) << result.err;
  std::istringstream lines(result.out);
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line, "scenario,runs,min,mean,max,stddev,digest,converged,"
                  "wall_seconds,minstr_per_second");
  int rows = 0;
  while (std::getline(lines, line)) {
    ++rows;
    EXPECT_NE(line.find("control/"), std::string::npos);
  }
  EXPECT_EQ(rows, 2);
}

// ---------------------------------------------------------------------------
// report
// ---------------------------------------------------------------------------

TEST(CliReport, JsonCarriesAnalysisAndCurve) {
  const CliResult result =
      invoke({"report", "--scenario", "control/analysis-dsr", "--runs", "150",
              "--workers", "2", "--format", "json", "--decades", "15"});
  ASSERT_EQ(result.code, 0) << result.err;
  ASSERT_TRUE(JsonChecker(result.out).valid()) << result.out;
  EXPECT_EQ(field_after(result.out, "command"), "\"report\"");
  for (const char* key :
       {"independence_p", "identical_distribution_p", "passes", "location",
        "scale", "exceedance", "pwcet_cycles"}) {
    EXPECT_FALSE(field_after(result.out, key).empty()) << key;
  }
}

TEST(CliReport, CsvEmitsTheCurve) {
  const CliResult result =
      invoke({"report", "--scenario", "control/analysis-dsr", "--runs", "150",
              "--format", "csv", "--decades", "6"});
  ASSERT_EQ(result.code, 0) << result.err;
  std::istringstream lines(result.out);
  std::string line;
  std::getline(lines, line);
  EXPECT_EQ(line, "scenario,exceedance_probability,pwcet_cycles");
  int rows = 0;
  while (std::getline(lines, line)) {
    ++rows;
  }
  // Decade 1e-1 is outside the block-maxima valid range (clamp bugfix):
  // 6 decades render at most 5 rows.
  EXPECT_GT(rows, 0);
  EXPECT_LE(rows, 5);
}

TEST(CliReport, TooShortCampaignReportsAnalysisError) {
  const CliResult result = invoke({"report", "--scenario",
                                   "control/operation-cots", "--runs", "20"});
  EXPECT_EQ(result.code, 1) << "analysis failure must be visible in the code";
  EXPECT_NE(result.out.find("MBPTA analysis not possible"), std::string::npos);
}

// ---------------------------------------------------------------------------
// diff
// ---------------------------------------------------------------------------

/// Write `text` to a unique temp file; removed on destruction.
class TempReport {
public:
  TempReport(const char* tag, const std::string& text)
      : path_(std::filesystem::temp_directory_path() /
              ("proxima_cli_test_" + std::to_string(::getpid()) + "_" + tag +
               ".json")) {
    std::ofstream file(path_, std::ios::binary);
    file << text;
  }
  ~TempReport() {
    std::error_code ec;
    std::filesystem::remove(path_, ec);
  }
  std::string path() const { return path_.string(); }

private:
  std::filesystem::path path_;
};

std::string run_json(const char* scenario, const char* runs,
                     const char* seed) {
  const CliResult result = invoke({"run", "--scenario", scenario, "--runs",
                                   runs, "--seed", seed, "--workers", "2",
                                   "--format", "json"});
  EXPECT_EQ(result.code, 0) << result.err;
  return result.out;
}

TEST(CliDiff, SelfCompareIsClean) {
  const std::string report = run_json("control/operation-cots", "8", "5");
  const TempReport baseline("self_a", report);
  const TempReport candidate("self_b", report);
  const CliResult result =
      invoke({"diff", baseline.path().c_str(), candidate.path().c_str()});
  EXPECT_EQ(result.code, 0) << result.out << result.err;
  EXPECT_NE(result.out.find("0 drift(s)"), std::string::npos) << result.out;
}

TEST(CliDiff, FlagsDriftAndHonoursTolerance) {
  const TempReport baseline("drift_a",
                            run_json("control/operation-cots", "8", "5"));
  const TempReport candidate("drift_b",
                             run_json("control/operation-cots", "8", "6"));
  // Different seed -> different times: bit-exact mode must flag the shift
  // (digest included) and exit 1.
  const CliResult strict =
      invoke({"diff", baseline.path().c_str(), candidate.path().c_str()});
  EXPECT_EQ(strict.code, 1);
  EXPECT_NE(strict.out.find("drift:"), std::string::npos) << strict.out;
  EXPECT_NE(strict.out.find("times digest"), std::string::npos)
      << strict.out;
  // A 100% relative tolerance accepts any same-sign shift (and stops
  // comparing digests).
  const CliResult loose =
      invoke({"diff", baseline.path().c_str(), candidate.path().c_str(),
              "--tolerance", "1.0"});
  EXPECT_EQ(loose.code, 0) << loose.out;
}

TEST(CliDiff, AgainstRunsTheBaselineScenarioOnTheFly) {
  // No baseline file: `--against` re-runs the scenario mirroring the
  // candidate's runs/seed (the candidate above ran with --workers 2; the
  // fresh baseline uses the default worker count — bit-identity across
  // worker counts is part of the contract being exercised).
  const TempReport candidate("against_ok",
                             run_json("control/operation-cots", "8", "5"));
  const CliResult clean = invoke(
      {"diff", candidate.path().c_str(), "--against",
       "control/operation-cots"});
  EXPECT_EQ(clean.code, 0) << clean.out << clean.err;
  EXPECT_NE(clean.out.find("0 drift(s)"), std::string::npos) << clean.out;

  // Same exit-code contract as the two-file form: a drift exits 1.
  const CliResult drift = invoke(
      {"diff", candidate.path().c_str(), "--against",
       "control/operation-dsr"});
  EXPECT_EQ(drift.code, 1) << drift.out;
  EXPECT_NE(drift.out.find("drift:"), std::string::npos) << drift.out;
}

TEST(CliDiff, AgainstJsonFormatAndUsageErrors) {
  const TempReport candidate("against_json",
                             run_json("control/operation-cots", "8", "5"));
  const CliResult json =
      invoke({"diff", candidate.path().c_str(), "--against",
              "control/operation-cots", "--format", "json"});
  EXPECT_EQ(json.code, 0) << json.out << json.err;
  EXPECT_EQ(field_after(json.out, "command"), "\"diff\"");
  EXPECT_EQ(field_after(json.out, "baseline"),
            "\"--against control/operation-cots\"");
  EXPECT_EQ(field_after(json.out, "drift_count"), "0") << json.out;

  // Unknown scenario: usage-error exit 2, like every bad name.
  EXPECT_EQ(invoke({"diff", candidate.path().c_str(), "--against",
                    "no/such-scenario"})
                .code,
            2);
  // --against replaces the baseline path: two positionals reject it.
  EXPECT_EQ(invoke({"diff", candidate.path().c_str(),
                    candidate.path().c_str(), "--against",
                    "control/operation-cots"})
                .code,
            2);
  EXPECT_EQ(invoke({"diff", "--against", "control/operation-cots"}).code, 2)
      << "--against still needs the candidate path";
}

TEST(CliDiff, ComparesPerPartitionRowsAndMeasuredTarget) {
  const TempReport baseline("hv_a", run_json("hv/image+control", "3", "5"));
  const TempReport candidate("hv_b", run_json("hv/image+control", "3", "6"));
  const CliResult result =
      invoke({"diff", baseline.path().c_str(), candidate.path().c_str()});
  EXPECT_EQ(result.code, 1);
  // The measured image times are seed-invariant here (analysis protocol,
  // every lens lit -> same work, same fixed layout), but the control
  // GUEST's inputs follow the seed: the drift must surface in its
  // per-partition row.
  EXPECT_NE(result.out.find("partition control"), std::string::npos)
      << "per-partition rows must be compared:\n" + result.out;
}

TEST(CliDiff, UsageErrorsExitTwo) {
  EXPECT_EQ(invoke({"diff"}).code, 2);
  EXPECT_EQ(invoke({"diff", "only-one.json"}).code, 2);
  EXPECT_EQ(invoke({"diff", "/nonexistent/a.json", "/nonexistent/b.json"})
                .code,
            2);
  const TempReport garbage("garbage", "{not json");
  const TempReport empty_doc("empty", "{}");
  EXPECT_EQ(invoke({"diff", garbage.path().c_str(), garbage.path().c_str()})
                .code,
            2)
      << "malformed JSON is a usage error, not a drift";
  EXPECT_EQ(
      invoke({"diff", empty_doc.path().c_str(), empty_doc.path().c_str()})
          .code,
      2)
      << "a JSON document without scenarios is not a proxima report";
  // `proxima list` emits command + scenarios too; comparing a catalogue
  // dump would pass on null-vs-null metrics, so it must be rejected.
  const CliResult list = invoke({"list", "--format", "json"});
  ASSERT_EQ(list.code, 0);
  const TempReport catalogue("catalogue", list.out);
  EXPECT_EQ(invoke({"diff", catalogue.path().c_str(),
                    catalogue.path().c_str()})
                .code,
            2)
      << "a scenario catalogue carries no measurements to compare";
  const TempReport ok("ok", run_json("control/operation-cots", "4", "5"));
  EXPECT_EQ(invoke({"diff", ok.path().c_str(), ok.path().c_str(),
                    "--tolerance", "-0.5"})
                .code,
            2);
  // from_chars parses nan/inf: nan would flag identical reports, inf
  // would disable every numeric comparison — both are usage errors.
  EXPECT_EQ(invoke({"diff", ok.path().c_str(), ok.path().c_str(),
                    "--tolerance", "nan"})
                .code,
            2);
  EXPECT_EQ(invoke({"diff", ok.path().c_str(), ok.path().c_str(),
                    "--tolerance", "inf"})
                .code,
            2);
}

TEST(CliDiff, JsonFormatCarriesDriftRecordsAndSameExitCodes) {
  const std::string report = run_json("control/operation-cots", "6", "5");
  const TempReport baseline("json_a", report);
  const TempReport candidate("json_b", report);
  const CliResult clean =
      invoke({"diff", baseline.path().c_str(), candidate.path().c_str(),
              "--format", "json"});
  EXPECT_EQ(clean.code, 0) << clean.out;
  ASSERT_TRUE(JsonChecker(clean.out).valid()) << clean.out;
  EXPECT_EQ(field_after(clean.out, "command"), "\"diff\"");
  EXPECT_EQ(field_after(clean.out, "drift_count"), "0");

  const TempReport shifted("json_c",
                           run_json("control/operation-cots", "6", "6"));
  const CliResult drifted =
      invoke({"diff", baseline.path().c_str(), shifted.path().c_str(),
              "--format", "json"});
  EXPECT_EQ(drifted.code, 1) << "drift exit code must not change with "
                                "--format json";
  ASSERT_TRUE(JsonChecker(drifted.out).valid()) << drifted.out;
  EXPECT_NE(field_after(drifted.out, "drift_count"), "0");
  for (const char* key : {"context", "metric", "baseline", "candidate",
                          "relative_shift", "detail"}) {
    EXPECT_FALSE(field_after(drifted.out, key).empty()) << key;
  }

  // csv is not a diff format.
  EXPECT_EQ(invoke({"diff", baseline.path().c_str(),
                    candidate.path().c_str(), "--format", "csv"})
                .code,
            2);
}

// ---------------------------------------------------------------------------
// metrics / trace / progress / profile
// ---------------------------------------------------------------------------

TEST(CliRun, JsonCarriesTheMetricsRegistry) {
  const CliResult result =
      invoke({"run", "--scenario", "control/operation-dsr", "--runs", "6",
              "--workers", "2", "--format", "json"});
  ASSERT_EQ(result.code, 0) << result.err;
  ASSERT_TRUE(JsonChecker(result.out).valid()) << result.out;
  const std::size_t metrics_at = result.out.find("\"metrics\":");
  ASSERT_NE(metrics_at, std::string::npos);
  const std::string metrics = result.out.substr(metrics_at);
  // The digest inside "metrics" is the registry digest: 0x + 16 hex.
  const std::string digest = field_after(metrics, "digest");
  EXPECT_EQ(digest.size(), 20u) << digest; // "0x...." with quotes
  EXPECT_EQ(digest.substr(0, 3), "\"0x");
  for (const char* key :
       {"counters", "histograms", "series", "wall", "runs",
        "mem.instructions", "time.uoa_cycles", "dsr.reseeds",
        "engine.workers"}) {
    EXPECT_NE(metrics.find('"' + std::string(key) + '"'), std::string::npos)
        << key;
  }
  EXPECT_EQ(field_after(metrics, "runs"), "6");
}

TEST(CliRun, MetricsDigestIsBitIdenticalAcrossWorkerCounts) {
  auto digest_of = [](const char* workers) {
    const CliResult result =
        invoke({"run", "--scenario", "hv/control+image", "--runs", "6",
                "--workers", workers, "--format", "json"});
    EXPECT_EQ(result.code, 0) << result.err;
    const std::size_t at = result.out.find("\"metrics\":");
    EXPECT_NE(at, std::string::npos);
    return field_after(result.out.substr(at), "digest");
  };
  const std::string sequential = digest_of("1");
  EXPECT_FALSE(sequential.empty());
  EXPECT_EQ(sequential, digest_of("8"));
}

TEST(CliRun, TraceOutWritesAParseableTimeline) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() /
      ("proxima_cli_test_trace_" + std::to_string(::getpid()) + ".json");
  const std::string path_text = path.string();
  const CliResult result =
      invoke({"run", "--scenario", "hv/control+image", "--runs", "4",
              "--workers", "2", "--trace-out", path_text.c_str()});
  EXPECT_EQ(result.code, 0) << result.err;
  std::ifstream file(path, std::ios::binary);
  ASSERT_TRUE(file.good()) << "trace file missing: " << path_text;
  std::ostringstream text;
  text << file.rdbuf();
  EXPECT_TRUE(JsonChecker(text.str()).valid()) << text.str().substr(0, 400);
  EXPECT_NE(text.str().find("traceEvents"), std::string::npos);
  EXPECT_NE(text.str().find("process_name"), std::string::npos);
  std::error_code ec;
  std::filesystem::remove(path, ec);
}

TEST(CliRun, TraceOutToAnUnwritablePathIsACampaignFault) {
  const CliResult result =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "2",
              "--trace-out", "/nonexistent-dir/trace.json"});
  EXPECT_EQ(result.code, 3) << result.err;
  EXPECT_NE(result.err.find("--trace-out"), std::string::npos) << result.err;
}

TEST(CliRun, ProgressWritesLiveLineToStderrOnly) {
  const CliResult result =
      invoke({"run", "--scenario", "control/operation-cots", "--runs", "4",
              "--workers", "2", "--progress", "--format", "json"});
  EXPECT_EQ(result.code, 0);
  EXPECT_TRUE(JsonChecker(result.out).valid())
      << "progress output must not corrupt piped JSON";
  EXPECT_EQ(result.out.find('\r'), std::string::npos);
  EXPECT_NE(result.err.find('\r'), std::string::npos) << result.err;
  EXPECT_NE(result.err.find("control/operation-cots: 4/4 runs"),
            std::string::npos)
      << "the final count must always be delivered: " << result.err;
}

TEST(CliProfile, TextRendersTheRegistry) {
  const CliResult result = invoke(
      {"profile", "--scenario", "control/operation-dsr", "--runs", "4"});
  EXPECT_EQ(result.code, 0) << result.err;
  for (const char* needle :
       {"metrics digest 0x", "counters:", "histograms:", "wall:",
        "vm.mix.", "dsr.reseeds", "time.uoa_cycles"}) {
    EXPECT_NE(result.out.find(needle), std::string::npos)
        << needle << " missing from:\n"
        << result.out;
  }
}

TEST(CliProfile, JsonSchemaAndCsvRows) {
  const CliResult json =
      invoke({"profile", "--scenario", "control/operation-cots", "--runs",
              "3", "--format", "json"});
  EXPECT_EQ(json.code, 0) << json.err;
  ASSERT_TRUE(JsonChecker(json.out).valid()) << json.out;
  EXPECT_EQ(field_after(json.out, "command"), "\"profile\"");
  EXPECT_EQ(field_after(json.out, "name"), "\"control/operation-cots\"");
  EXPECT_NE(json.out.find("\"metrics\":"), std::string::npos);

  const CliResult csv =
      invoke({"profile", "--scenario", "control/operation-cots", "--runs",
              "3", "--format", "csv"});
  EXPECT_EQ(csv.code, 0) << csv.err;
  EXPECT_EQ(csv.out.rfind("scenario,class,metric,value\n", 0), 0u)
      << csv.out.substr(0, 120);
  for (const char* needle :
       {",digest,metrics_digest,0x", ",counter,runs,3",
        ",histogram,time.uoa_cycles.count,3", ",wall,engine.workers,"}) {
    EXPECT_NE(csv.out.find(needle), std::string::npos)
        << needle << " missing from:\n"
        << csv.out;
  }
}

TEST(CliProfile, RequiresAScenarioSelection) {
  EXPECT_EQ(invoke({"profile"}).code, 2);
  EXPECT_EQ(invoke({"run", "--scenario", "x", "--trace-out", ""}).code, 2)
      << "--trace-out needs a non-empty path";
}

// ---------------------------------------------------------------------------
// errors
// ---------------------------------------------------------------------------

TEST(CliErrors, UnknownScenarioListsTheCatalogue) {
  const CliResult result = invoke({"run", "--scenario", "nope", "--runs", "5"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("unknown scenario 'nope'"), std::string::npos);
  EXPECT_NE(result.err.find("control/operation-dsr"), std::string::npos);
}

TEST(CliErrors, UnknownScenarioSuggestsClosestMatches) {
  // The discovery satellite: a typo near a real name leads with "did you
  // mean" and the family map, usage-error exit 2.
  const CliResult result =
      invoke({"run", "--scenario", "hv/control+imge", "--runs", "5"});
  EXPECT_EQ(result.code, 2);
  EXPECT_NE(result.err.find("did you mean:"), std::string::npos)
      << result.err;
  EXPECT_NE(result.err.find("hv/control+image"), std::string::npos);
  EXPECT_NE(result.err.find("families:"), std::string::npos);
  EXPECT_NE(result.err.find("image/(6)"), std::string::npos);
}

TEST(CliErrors, UsageErrorsExitTwo) {
  EXPECT_EQ(invoke({}).code, 2);
  EXPECT_EQ(invoke({"frobnicate"}).code, 2);
  EXPECT_EQ(invoke({"run"}).code, 2) << "run needs --scenario or --all";
  EXPECT_EQ(invoke({"run", "--scenario", "x", "--runs", "abc"}).code, 2);
  EXPECT_EQ(invoke({"run", "--scenario", "x", "--all"}).code, 2);
  EXPECT_EQ(invoke({"run", "--scenario", "x", "--batch", "0"}).code, 2)
      << "--batch 0 must be rejected, not silently replaced by the default";
  EXPECT_EQ(invoke({"run", "--scenario", "x", "--runs", "0"}).code, 2)
      << "--runs 0 must be rejected, not silently replaced by the default";
  EXPECT_EQ(invoke({"report", "--scenario", "x", "--runs", "0"}).code, 2);
  EXPECT_EQ(invoke({"lint", "--scenario", "x", "--runs", "0"}).code, 2);
  EXPECT_EQ(invoke({"run", "--scenario", "x", "--frames", "0"}).code, 2);
  EXPECT_EQ(invoke({"run", "--scenario", "control/operation-cots", "--runs",
                    "2", "--frames", "4"})
                .code,
            2)
      << "--frames only applies to hv/ scenarios";
  EXPECT_EQ(invoke({"list", "--bogus"}).code, 2);
  const CliResult help = invoke({"help"});
  EXPECT_EQ(help.code, 0);
  EXPECT_NE(help.out.find("usage: proxima"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSON writer -> reader round trip (the \b/\f escape bugfix).
// ---------------------------------------------------------------------------

TEST(CliJson, BackspaceAndFormfeedEscapesDecode) {
  // \b and \f used to fall into the reader's pass-through default and
  // decode to literal 'b'/'f'.
  const cli::JsonValue doc = cli::JsonValue::parse(R"({"s": "\b\f"})");
  const cli::JsonValue* s = doc.get("s");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->string, "\b\f");
}

TEST(CliJson, WriterReaderRoundTripsHostileStrings) {
  // Every escape the writer can emit, in names AND values: quotes,
  // backslashes, the named control escapes, and a raw control byte that
  // round-trips through .
  const std::string hostile = "a\"b\\c/d\ne\tf\rg\bh\fi\x01j";
  std::ostringstream out;
  {
    cli::JsonWriter json(out);
    json.begin_object();
    json.key(hostile).value(hostile);
    json.key("plain").value("partition/control@seed=7");
    json.end_object();
  }
  const cli::JsonValue doc = cli::JsonValue::parse(out.str());
  ASSERT_TRUE(doc.is_object());
  ASSERT_EQ(doc.object.size(), 2u);
  EXPECT_EQ(doc.object[0].first, hostile) << "key must round-trip";
  EXPECT_EQ(doc.object[0].second.string, hostile) << "value must round-trip";
  EXPECT_EQ(doc.object[1].second.string, "partition/control@seed=7");
}

// ---------------------------------------------------------------------------
// Silently-ignored flags are now rejected (options bugfix sweep).
// ---------------------------------------------------------------------------

TEST(CliErrors, FlagsWithNoEffectAreRejectedNotIgnored) {
  // --batch without --adaptive configured nothing: the campaign ran fixed.
  EXPECT_EQ(invoke({"run", "--scenario", "control/operation-cots", "--runs",
                    "4", "--batch", "50"})
                .code,
            2);
  // --decades outside report/sweep rendered no curve to deepen.
  EXPECT_EQ(invoke({"run", "--scenario", "control/operation-cots", "--runs",
                    "4", "--decades", "6"})
                .code,
            2);
  EXPECT_EQ(invoke({"profile", "--scenario", "control/operation-cots",
                    "--runs", "4", "--decades", "6"})
                .code,
            2);
  // A worker-count typo used to spawn that many threads, literally.
  EXPECT_EQ(invoke({"run", "--scenario", "control/operation-cots", "--runs",
                    "4", "--workers", "100000"})
                .code,
            2);
  // Sweep-only flags outside sweep, and sweep without its store.
  EXPECT_EQ(invoke({"run", "--scenario", "control/operation-cots", "--runs",
                    "4", "--manifest", "m.json"})
                .code,
            2);
  EXPECT_EQ(invoke({"sweep", "--scenario", "control/operation-cots"}).code,
            2)
      << "sweep requires --store";
  EXPECT_EQ(invoke({"list", "--store", "/tmp/x"}).code, 2);
}

// ---------------------------------------------------------------------------
// Diff bugfixes: zero baselines and a vanished metrics digest.
// ---------------------------------------------------------------------------

/// A minimal but shape-complete run document with one scenario.
std::string synthetic_run_doc(const char* min_time, bool metrics_digest) {
  std::string doc = R"({
  "command": "run",
  "scenarios": [
    {
      "name": "synthetic",
      "measured": "control",
      "runs": 4,
      "times": {"n": 4, "min": )" +
                    std::string(min_time) +
                    R"(, "mean": 10, "max": 20, "stddev": 1,
                "digest": "0xfeed"},
)";
  if (metrics_digest) {
    doc += R"(      "metrics": {"digest": "0xbeef"},
)";
  }
  doc += R"(      "verified_runs": 4
    }
  ]
})";
  return doc;
}

TEST(CliDiff, ZeroBaselinePassesOnlyBitEqual) {
  const TempReport zero("zero_a", synthetic_run_doc("0", true));
  const TempReport nonzero("zero_b", synthetic_run_doc("5", true));
  // tolerance 1.0 with scale = max(|lo|,|hi|) used to accept ANY candidate
  // against a zero baseline: |0 - 5| <= 1.0 * 5.  A value moving off zero
  // is structural and must drift regardless of tolerance.
  const CliResult result = invoke({"diff", zero.path().c_str(),
                                   nonzero.path().c_str(), "--tolerance",
                                   "1.0"});
  EXPECT_EQ(result.code, 1) << result.out;
  EXPECT_NE(result.out.find("only bit-equality passes"), std::string::npos)
      << result.out;
  // Bit-equal zeros stay clean.
  const TempReport zero2("zero_c", synthetic_run_doc("0", true));
  EXPECT_EQ(
      invoke({"diff", zero.path().c_str(), zero2.path().c_str()}).code, 0);
}

TEST(CliDiff, CandidateMissingMetricsDigestIsADrift) {
  const TempReport with("md_a", synthetic_run_doc("1", true));
  const TempReport without("md_b", synthetic_run_doc("1", false));
  // Candidate lost the digest its baseline had: metrics stopped being
  // collected — this used to be skipped silently.
  const CliResult regression =
      invoke({"diff", with.path().c_str(), without.path().c_str()});
  EXPECT_EQ(regression.code, 1) << regression.out;
  EXPECT_NE(regression.out.find("absent in candidate"), std::string::npos)
      << regression.out;
  // The reverse stays the single tolerated absence: legacy golden reports
  // predate the metrics registry.
  EXPECT_EQ(invoke({"diff", without.path().c_str(), with.path().c_str()})
                .code,
            0);
}

// ---------------------------------------------------------------------------
// sweep
// ---------------------------------------------------------------------------

/// A unique, self-cleaning store root.
class TempStoreDir {
public:
  explicit TempStoreDir(const char* tag)
      : path_(std::filesystem::temp_directory_path() /
              ("proxima_cli_sweep_" + std::to_string(::getpid()) + "_" +
               tag)) {
    std::filesystem::remove_all(path_);
  }
  ~TempStoreDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  std::string path() const { return path_.string(); }

private:
  std::filesystem::path path_;
};

TEST(CliSweep, SecondPassSimulatesNothingAndGatesAgainstItself) {
  TempStoreDir store("warm");
  // The path strings must outlive the argv vectors that point into them.
  const std::string store_path = store.path();
  const std::vector<const char*> sweep_args = {
      "sweep",   "--store", store_path.c_str(),
      "--scenario", "control/analysis-dsr", "--runs", "150",
      "--workers", "2", "--seed", "7", "--format", "json"};

  const CliResult cold = invoke(sweep_args);
  ASSERT_EQ(cold.code, 0) << cold.err;
  ASSERT_TRUE(JsonChecker(cold.out).valid()) << cold.out;
  EXPECT_EQ(field_after(cold.out, "command"), "\"sweep\"");
  EXPECT_EQ(field_after(cold.out, "name"),
            "\"control/analysis-dsr@seed=7\"")
      << "explicit seeds must be part of the cell identity";

  // The manifest is the machine-checkable witness of what was simulated.
  std::ifstream manifest_file(store.path() + "/sweep-manifest.json");
  ASSERT_TRUE(manifest_file.good());
  std::stringstream manifest;
  manifest << manifest_file.rdbuf();
  EXPECT_NE(manifest.str().find("\"total_simulated_runs\": 150"),
            std::string::npos)
      << manifest.str();

  // Second pass: everything served from the store, and the baseline gate
  // (against the first pass) reports zero drift.  The documents are not
  // byte-identical — store counters and wall-clock gauges legitimately
  // differ — but every determinism digest must match.
  const TempReport baseline("sweep_base", cold.out);
  const std::string baseline_path = baseline.path();
  std::vector<const char*> warm_args = sweep_args;
  warm_args.insert(warm_args.end(),
                   {"--baseline", baseline_path.c_str()});
  const CliResult warm = invoke(warm_args);
  EXPECT_EQ(warm.code, 0) << warm.err;
  const auto digests = [](const std::string& doc) {
    std::vector<std::string> found;
    std::size_t at = 0;
    while ((at = doc.find("\"digest\": ", at)) != std::string::npos) {
      const std::size_t end = doc.find('\n', at);
      found.push_back(doc.substr(at, end - at));
      at = end;
    }
    return found;
  };
  EXPECT_EQ(digests(warm.out), digests(cold.out))
      << "re-rendered times/metrics digests must match the live sweep";
  EXPECT_NE(warm.err.find("0 drift(s)"), std::string::npos) << warm.err;

  std::ifstream manifest2_file(store.path() + "/sweep-manifest.json");
  std::stringstream manifest2;
  manifest2 << manifest2_file.rdbuf();
  EXPECT_NE(manifest2.str().find("\"total_simulated_runs\": 0"),
            std::string::npos)
      << "warm sweep must not re-simulate:\n" + manifest2.str();
  EXPECT_NE(manifest2.str().find("\"total_stored_runs\": 150"),
            std::string::npos);
}

TEST(CliSweep, DriftAgainstTheBaselineExitsOne) {
  TempStoreDir store("drift");
  const CliResult first =
      invoke({"sweep", "--store", store.path().c_str(), "--scenario",
              "control/analysis-dsr", "--runs", "150", "--workers", "2",
              "--seed", "7", "--format", "json"});
  ASSERT_EQ(first.code, 0) << first.err;
  const TempReport baseline("sweep_drift_base", first.out);
  // A different seed is a different cell name: structural drift.
  const CliResult drifted =
      invoke({"sweep", "--store", store.path().c_str(), "--scenario",
              "control/analysis-dsr", "--runs", "150", "--workers", "2",
              "--seed", "8", "--baseline", baseline.path().c_str()});
  EXPECT_EQ(drifted.code, 1);
  EXPECT_NE(drifted.out.find("drift"), std::string::npos) << drifted.out;
}

TEST(CliRun, StoreBackedRunRerendersBitIdentically) {
  TempStoreDir store("runstore");
  const std::string store_path = store.path();
  const std::vector<const char*> args = {
      "run", "--scenario", "control/operation-cots", "--runs", "12",
      "--seed", "3", "--format", "json", "--store", store_path.c_str()};
  const CliResult live = invoke(args);
  ASSERT_EQ(live.code, 0) << live.err;
  EXPECT_NE(live.out.find("\"simulated_runs\": 12"), std::string::npos)
      << live.out;
  const CliResult rerender = invoke(args);
  ASSERT_EQ(rerender.code, 0) << rerender.err;
  EXPECT_NE(rerender.out.find("\"simulated_runs\": 0"), std::string::npos)
      << rerender.out;
  // The only JSON difference between live and re-rendered is the store
  // section's counters and the wall-clock gauges: the digests — times AND
  // metrics — must match exactly.
  EXPECT_EQ(field_after(live.out, "digest"),
            field_after(rerender.out, "digest"));
}

// ---------------------------------------------------------------------------
// lint — the address-leak gate (static taint pass + dynamic taint runs).
// ---------------------------------------------------------------------------

TEST(CliLint, LeakyBeaconExitsOneWithAgreeingDetectors) {
  const CliResult result = invoke({"lint", "--scenario", "leak/beacon-dsr",
                                   "--runs", "8", "--workers", "2"});
  EXPECT_EQ(result.code, 1) << result.out << result.err;
  EXPECT_NE(result.out.find("LEAK"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("lk_status+4"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("return-address"), std::string::npos);
  EXPECT_NE(result.out.find("static/dynamic agree: yes"), std::string::npos)
      << result.out;
}

TEST(CliLint, HardenedBeaconExitsZeroClean) {
  const CliResult result = invoke({"lint", "--scenario", "leak/hardened-dsr",
                                   "--runs", "8", "--workers", "2"});
  EXPECT_EQ(result.code, 0) << result.out << result.err;
  EXPECT_NE(result.out.find("clean"), std::string::npos) << result.out;
  EXPECT_EQ(result.out.find("LEAK"), std::string::npos) << result.out;
  EXPECT_NE(result.out.find("static/dynamic agree: yes"), std::string::npos);
}

TEST(CliLint, JsonShapeCarriesBothDetectors) {
  const CliResult result =
      invoke({"lint", "--scenario", "leak/beacon-cots", "--runs", "6",
              "--workers", "2", "--format", "json"});
  EXPECT_EQ(result.code, 1) << result.out << result.err;
  EXPECT_EQ(field_after(result.out, "kind"), "\"lint\"");
  EXPECT_EQ(field_after(result.out, "leak"), "true");
  EXPECT_EQ(field_after(result.out, "agree"), "true");
  EXPECT_EQ(field_after(result.out, "source_kind"), "\"return-address\"");
  EXPECT_EQ(field_after(result.out, "sink_symbol"), "\"lk_status\"");
  EXPECT_EQ(field_after(result.out, "runs"), "6");
  // Dynamic counters confirmed the leak: one beacon store per run.
  EXPECT_EQ(field_after(result.out, "sink_stores"), "6");
  EXPECT_NE(field_after(result.out, "pc_taints"), "0");
}

TEST(CliLint, CleanControlScenarioAgreesCleanly) {
  // The full DSR-transformed control task: the DSR machinery moves layout
  // values constantly, none into the observable outputs.  Both detectors
  // must say clean — the static pass with zero false positives.
  const CliResult result =
      invoke({"lint", "--scenario", "control/operation-dsr", "--runs", "4",
              "--workers", "2", "--format", "json"});
  EXPECT_EQ(result.code, 0) << result.out << result.err;
  EXPECT_EQ(field_after(result.out, "leak"), "false");
  EXPECT_EQ(field_after(result.out, "agree"), "true");
  EXPECT_EQ(field_after(result.out, "sink_stores"), "0");
}

TEST(CliLint, UsageErrorsExitTwo) {
  EXPECT_EQ(invoke({"lint"}).code, 2) << "lint needs --scenario or --all";
  EXPECT_EQ(invoke({"lint", "--scenario", "no/such"}).code, 2);
  EXPECT_EQ(invoke({"lint", "--scenario", "leak/beacon-dsr", "--adaptive"})
                .code,
            2);
  EXPECT_EQ(invoke({"lint", "--scenario", "leak/beacon-dsr", "--store", "d"})
                .code,
            2);
  EXPECT_EQ(invoke({"lint", "--scenario", "leak/beacon-dsr", "--format",
                    "csv"})
                .code,
            2);
}

} // namespace
