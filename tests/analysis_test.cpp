// Unit tests for the static address-leak analysis (analysis/static_taint):
// the forward taint dataflow that proves, before any run, whether a guest
// program can store a layout-derived value into its observable outputs.
#include "analysis/static_taint.hpp"
#include "casestudy/leak_task.hpp"
#include "core/dsr_pass.hpp"
#include "isa/builder.hpp"
#include "isa/program.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace {

using namespace proxima;
using analysis::LeakFinding;
using analysis::TaintOptions;
using analysis::TaintReport;
using analysis::TaintSourceKind;
using analysis::analyse_address_leaks;
using isa::FunctionBuilder;
using isa::Opcode;

const std::vector<std::string> kLeakObservables{"lk_status"};

TEST(StaticTaint, LeakyBeaconFlagged) {
  casestudy::LeakParams params;
  const isa::Program program = casestudy::build_leak_program(params);
  const TaintReport report = analyse_address_leaks(program, kLeakObservables);
  ASSERT_EQ(report.findings.size(), 1u);
  const LeakFinding& finding = report.findings.front();
  EXPECT_EQ(finding.function, "leak_step");
  EXPECT_EQ(finding.sink_symbol, "lk_status");
  EXPECT_EQ(finding.sink_offset, 4); // the beacon word
  EXPECT_EQ(finding.source.kind, TaintSourceKind::kReturnAddress);
  // The store itself is the chain's last step and the finding's anchor.
  ASSERT_LT(finding.instruction_index, program.functions.size() == 0
                ? 0u
                : program.find_function("leak_step")->code.size());
  EXPECT_EQ(program.find_function("leak_step")
                ->code[finding.instruction_index]
                .op,
            Opcode::kSt);
  ASSERT_FALSE(finding.chain.empty());
}

TEST(StaticTaint, HardenedBeaconClean) {
  casestudy::LeakParams params;
  params.hardened = true;
  const isa::Program program = casestudy::build_leak_program(params);
  const TaintReport report = analyse_address_leaks(program, kLeakObservables);
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.functions_analysed, 2u);
  EXPECT_GT(report.instructions_analysed, 0u);
}

TEST(StaticTaint, DsrTransformedLeakStillFlagged) {
  // The DSR pass rewrites prologues and adds the relocation machinery;
  // the leak must survive the transformation (lint analyses the program
  // as the campaign runs it).
  casestudy::LeakParams params;
  isa::Program program = casestudy::build_leak_program(params);
  dsr::apply_pass(program);
  const TaintReport report = analyse_address_leaks(program, kLeakObservables);
  const bool flagged = std::any_of(
      report.findings.begin(), report.findings.end(),
      [](const LeakFinding& finding) {
        return finding.function == "leak_step" &&
               finding.sink_symbol == "lk_status" && finding.sink_offset == 4;
      });
  EXPECT_TRUE(flagged);
}

TEST(StaticTaint, DsrTransformedHardenedStaysClean) {
  // The DSR machinery itself (stub tables, relocation loops, the
  // stack-offset load) moves plenty of layout-derived values around —
  // none of them into an observable object.  No false positives.
  casestudy::LeakParams params;
  params.hardened = true;
  isa::Program program = casestudy::build_leak_program(params);
  dsr::apply_pass(program);
  const TaintReport report = analyse_address_leaks(program, kLeakObservables);
  EXPECT_TRUE(report.clean());
}

TEST(StaticTaint, CodeSymbolAddressLeakDetected) {
  // A function that publishes another function's ADDRESS (sethi/orlo pair
  // against a code symbol) into an observable word.
  isa::Program program;
  program.entry = "publish";
  program.functions.push_back(FunctionBuilder("helper").ret_leaf().build());
  program.functions.push_back(FunctionBuilder("publish")
                                  .load_address(isa::kL0, "helper")
                                  .load_address(isa::kL1, "out_block")
                                  .st(isa::kL0, isa::kL1, 0)
                                  .halt()
                                  .build());
  program.data.push_back(isa::DataObject{"out_block", 16, 8, {}});
  const TaintReport report = analyse_address_leaks(program, {"out_block"});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings.front().source.kind,
            TaintSourceKind::kCodeAddress);
  EXPECT_EQ(report.findings.front().sink_symbol, "out_block");

  // The same store is silent when code-address sources are off.
  TaintOptions options;
  options.code_symbol_addresses = false;
  EXPECT_TRUE(analyse_address_leaks(program, {"out_block"}, options).clean());
}

TEST(StaticTaint, StackPointerLeakDetected) {
  isa::Program program;
  program.entry = "publish_sp";
  program.functions.push_back(FunctionBuilder("publish_sp")
                                  .load_address(isa::kL1, "out_block")
                                  .st(isa::kSp, isa::kL1, 0)
                                  .halt()
                                  .build());
  program.data.push_back(isa::DataObject{"out_block", 16, 8, {}});
  const TaintReport report = analyse_address_leaks(program, {"out_block"});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings.front().source.kind,
            TaintSourceKind::kStackPointer);

  TaintOptions options;
  options.stack_pointers = false;
  EXPECT_TRUE(analyse_address_leaks(program, {"out_block"}, options).clean());
}

TEST(StaticTaint, TaintFlowsThroughRegisterCopiesAndAlu) {
  // %o7 -> mov -> xor with clean data -> store: still a leak (the lattice
  // joins through ALU ops); storing only the clean operand is not.
  isa::Program program;
  program.entry = "mix";
  program.functions.push_back(FunctionBuilder("mix")
                                  .mov(isa::kL0, isa::kO7)
                                  .li(isa::kL1, 123)
                                  .op3(Opcode::kXor, isa::kL2, isa::kL0,
                                       isa::kL1)
                                  .load_address(isa::kL3, "out_block")
                                  .st(isa::kL1, isa::kL3, 0) // clean value
                                  .st(isa::kL2, isa::kL3, 4) // tainted mix
                                  .halt()
                                  .build());
  program.data.push_back(isa::DataObject{"out_block", 16, 8, {}});
  const TaintReport report = analyse_address_leaks(program, {"out_block"});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings.front().sink_offset, 4);
  EXPECT_EQ(report.findings.front().source.kind,
            TaintSourceKind::kReturnAddress);
}

TEST(StaticTaint, WindowShiftMapsReturnAddressToI7) {
  // After save, the caller's %o7 is visible as %i7 — the exact flow the
  // leaky beacon uses.  Restore maps it back.
  isa::Program program;
  program.entry = "windowed";
  program.functions.push_back(FunctionBuilder("windowed")
                                  .prologue(96)
                                  .load_address(isa::kL1, "out_block")
                                  .st(isa::kI7, isa::kL1, 0)
                                  .epilogue()
                                  .build());
  program.data.push_back(isa::DataObject{"out_block", 16, 8, {}});
  const TaintReport report = analyse_address_leaks(program, {"out_block"});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings.front().source.kind,
            TaintSourceKind::kReturnAddress);
}

TEST(StaticTaint, StoresOutsideObservablesAreNotLeaks) {
  // Tainted stores into private state are fine — only the declared
  // observable objects are sinks.
  isa::Program program;
  program.entry = "private_store";
  program.functions.push_back(FunctionBuilder("private_store")
                                  .load_address(isa::kL1, "scratch")
                                  .st(isa::kO7, isa::kL1, 0)
                                  .halt()
                                  .build());
  program.data.push_back(isa::DataObject{"scratch", 16, 8, {}});
  program.data.push_back(isa::DataObject{"out_block", 16, 8, {}});
  EXPECT_TRUE(analyse_address_leaks(program, {"out_block"}).clean());
}

TEST(StaticTaint, TaintSurvivesStackSpillReload) {
  // Spill the return address to a stack slot, reload it, store it: the
  // slot map carries the taint across the round-trip.
  isa::Program program;
  program.entry = "spill";
  program.functions.push_back(FunctionBuilder("spill")
                                  .st(isa::kO7, isa::kSp, -8)
                                  .ld(isa::kL0, isa::kSp, -8)
                                  .load_address(isa::kL1, "out_block")
                                  .st(isa::kL0, isa::kL1, 0)
                                  .halt()
                                  .build());
  program.data.push_back(isa::DataObject{"out_block", 16, 8, {}});
  const TaintReport report = analyse_address_leaks(program, {"out_block"});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings.front().source.kind,
            TaintSourceKind::kReturnAddress);
}

TEST(StaticTaint, BranchJoinKeepsMayLeak) {
  // One path taints %l0, the other leaves it clean: the join must keep
  // the may-taint (a leak on any path is a leak).
  isa::Program program;
  program.entry = "branchy";
  program.functions.push_back(FunctionBuilder("branchy")
                                  .li(isa::kL0, 0)
                                  .subcci(isa::kO0, 5)
                                  .bg("skip")
                                  .mov(isa::kL0, isa::kO7) // tainting path
                                  .label("skip")
                                  .load_address(isa::kL1, "out_block")
                                  .st(isa::kL0, isa::kL1, 0)
                                  .halt()
                                  .build());
  program.data.push_back(isa::DataObject{"out_block", 16, 8, {}});
  const TaintReport report = analyse_address_leaks(program, {"out_block"});
  ASSERT_EQ(report.findings.size(), 1u);
}

TEST(StaticTaint, DescribeRendersFindings) {
  casestudy::LeakParams params;
  const isa::Program program = casestudy::build_leak_program(params);
  const TaintReport report = analyse_address_leaks(program, kLeakObservables);
  ASSERT_FALSE(report.findings.empty());
  const std::string line = analysis::describe(report.findings.front());
  EXPECT_NE(line.find("leak_step"), std::string::npos);
  EXPECT_NE(line.find("lk_status+4"), std::string::npos);
  EXPECT_NE(line.find("return-address"), std::string::npos);
}

TEST(StaticTaint, ReportIsDeterministic) {
  casestudy::LeakParams params;
  isa::Program program = casestudy::build_leak_program(params);
  dsr::apply_pass(program);
  const TaintReport a = analyse_address_leaks(program, kLeakObservables);
  const TaintReport b = analyse_address_leaks(program, kLeakObservables);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (std::size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].function, b.findings[i].function);
    EXPECT_EQ(a.findings[i].instruction_index,
              b.findings[i].instruction_index);
    EXPECT_EQ(a.findings[i].sink_offset, b.findings[i].sink_offset);
    EXPECT_EQ(a.findings[i].source.description,
              b.findings[i].source.description);
  }
}

} // namespace
