// Unit tests for instruction encoding/decoding and the function builder.
#include "isa/builder.hpp"
#include "isa/instruction.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima::isa;

TEST(Encoding, RoundTripAllOpcodes) {
  for (std::uint8_t raw = 0;
       raw < static_cast<std::uint8_t>(Opcode::kOpcodeCount); ++raw) {
    ASSERT_TRUE(is_valid_opcode(raw)) << "gap in opcode table at " << int(raw);
    const Opcode op = static_cast<Opcode>(raw);
    Instruction instr;
    instr.op = op;
    switch (opcode_info(op).format) {
    case Format::kR:
      instr.rd = 5;
      instr.rs1 = 9;
      instr.rs2 = 30;
      break;
    case Format::kI:
      instr.rd = 14;
      instr.rs1 = 30;
      instr.imm = -1234;
      break;
    case Format::kB:
      instr.imm = -99999;
      break;
    case Format::kH:
      instr.rd = 1;
      instr.imm = 0x7ffff;
      break;
    }
    const std::uint32_t word = encode(instr);
    const Instruction back = decode(word);
    EXPECT_EQ(back, instr) << opcode_info(op).name;
  }
}

// Exhaustive round-trip over every Opcode x Format operand space: all
// register combinations for R-form, the full simm14 range plus all
// register pairs for I-form, the disp24 range (boundaries + stride) for
// B-form, and every rd across the imm19 range for H-form.  Any encoder /
// decoder field-packing regression — a shifted field, a sign-extension
// slip, a swapped operand — fails here with the exact instruction named.
TEST(Encoding, ExhaustiveOperandSpaceRoundTrip) {
  std::uint64_t checked = 0;
  const auto round_trip = [&checked](const Instruction& instr) {
    const std::uint32_t word = encode(instr);
    const Instruction back = decode(word);
    ASSERT_EQ(back, instr) << opcode_info(instr.op).name << " rd="
                           << int(instr.rd) << " rs1=" << int(instr.rs1)
                           << " rs2=" << int(instr.rs2)
                           << " imm=" << instr.imm;
    ++checked;
  };
  for (std::uint8_t raw = 0;
       raw < static_cast<std::uint8_t>(Opcode::kOpcodeCount); ++raw) {
    const Opcode op = static_cast<Opcode>(raw);
    switch (opcode_info(op).format) {
    case Format::kR:
      for (int rd = 0; rd < 32; ++rd) {
        for (int rs1 = 0; rs1 < 32; ++rs1) {
          for (int rs2 = 0; rs2 < 32; ++rs2) {
            round_trip(make_r(op, static_cast<std::uint8_t>(rd),
                              static_cast<std::uint8_t>(rs1),
                              static_cast<std::uint8_t>(rs2)));
          }
        }
      }
      break;
    case Format::kI:
      // Full immediate range with fixed registers...
      for (std::int32_t imm = kSimm14Min; imm <= kSimm14Max; ++imm) {
        round_trip(make_i(op, 1, 2, imm));
      }
      // ...and every register pair at immediates that stress both signs.
      for (int rd = 0; rd < 32; ++rd) {
        for (int rs1 = 0; rs1 < 32; ++rs1) {
          for (const std::int32_t imm : {kSimm14Min, -1, 0, kSimm14Max}) {
            round_trip(make_i(op, static_cast<std::uint8_t>(rd),
                              static_cast<std::uint8_t>(rs1), imm));
          }
        }
      }
      break;
    case Format::kB:
      for (const std::int32_t imm : {kDisp24Min, kDisp24Min + 1, -1, 0, 1,
                                     kDisp24Max - 1, kDisp24Max}) {
        round_trip(make_b(op, imm));
      }
      for (std::int32_t imm = kDisp24Min; imm <= kDisp24Max; imm += 997) {
        round_trip(make_b(op, imm));
      }
      break;
    case Format::kH:
      for (int rd = 0; rd < 32; ++rd) {
        for (std::int32_t imm = 0;
             imm <= static_cast<std::int32_t>(kImm19Max); imm += 13) {
          Instruction instr;
          instr.op = op;
          instr.rd = static_cast<std::uint8_t>(rd);
          instr.imm = imm;
          round_trip(instr);
        }
        Instruction top;
        top.op = op;
        top.rd = static_cast<std::uint8_t>(rd);
        top.imm = static_cast<std::int32_t>(kImm19Max);
        round_trip(top);
      }
      break;
    }
  }
  // The sweep must have actually covered the space (guards against a
  // future format change silently skipping a branch of the switch).
  EXPECT_GT(checked, 1'000'000u);
}

TEST(Encoding, Simm14Bounds) {
  Instruction instr = make_i(Opcode::kAddi, 1, 2, kSimm14Max);
  EXPECT_NO_THROW(encode(instr));
  instr.imm = kSimm14Max + 1;
  EXPECT_THROW(encode(instr), DecodeError);
  instr.imm = kSimm14Min;
  EXPECT_NO_THROW(encode(instr));
  instr.imm = kSimm14Min - 1;
  EXPECT_THROW(encode(instr), DecodeError);
}

TEST(Encoding, Disp24Bounds) {
  Instruction instr = make_b(Opcode::kCall, kDisp24Max);
  EXPECT_NO_THROW(encode(instr));
  instr.imm = kDisp24Max + 1;
  EXPECT_THROW(encode(instr), DecodeError);
}

TEST(Encoding, InvalidOpcodeByteRejected) {
  const std::uint32_t bogus = 0xff000000;
  EXPECT_THROW(decode(bogus), DecodeError);
}

TEST(Encoding, RegisterOutOfRangeRejected) {
  Instruction instr = make_r(Opcode::kAdd, 32, 0, 0);
  EXPECT_THROW(encode(instr), DecodeError);
}

TEST(Encoding, SignExtensionNegativeImmediate) {
  const std::uint32_t word = encode(make_i(Opcode::kAddi, 1, 1, -1));
  EXPECT_EQ(decode(word).imm, -1);
}

TEST(Encoding, SethiHiLoReconstruct32BitConstant) {
  const std::uint32_t value = 0x40123456;
  const HiLo parts = split_hi_lo(value);
  EXPECT_EQ((parts.hi << 13) | parts.lo, value);
  EXPECT_LE(parts.hi, kImm19Max);
  EXPECT_LT(parts.lo, 8192u);
}

TEST(Disassembly, RendersCommonForms) {
  EXPECT_EQ(disassemble(make_r(Opcode::kAdd, kO2, kO0, kO1)),
            "add %o0, %o1, %o2");
  EXPECT_EQ(disassemble(make_i(Opcode::kLd, kO0, kSp, 16)),
            "ld [%sp+16], %o0");
  EXPECT_EQ(disassemble(make_i(Opcode::kSt, kO0, kFp, -8)),
            "st %o0, [%fp-8]");
  EXPECT_EQ(disassemble(make_b(Opcode::kCall, 12)), "call 12");
  EXPECT_EQ(disassemble(make_r(Opcode::kFaddd, 2, 0, 1)),
            "faddd %f0, %f1, %f2");
  EXPECT_EQ(disassemble(make_b(Opcode::kHalt, 0)), "halt");
}

TEST(Builder, EmitsPrologueWithFrameMetadata) {
  FunctionBuilder fb("f");
  fb.prologue(96);
  fb.epilogue();
  const Function f = fb.build();
  EXPECT_TRUE(f.has_prologue);
  EXPECT_EQ(f.frame_bytes, 96u);
  EXPECT_EQ(f.prologue_index, 0u);
  ASSERT_EQ(f.code.size(), 3u);
  EXPECT_EQ(f.code[0].op, Opcode::kSave);
  EXPECT_EQ(f.code[0].imm, -96);
  EXPECT_EQ(f.code[1].op, Opcode::kRestore);
  EXPECT_EQ(f.code[2].op, Opcode::kJmpl);
}

TEST(Builder, RejectsBadFrames) {
  FunctionBuilder small("f");
  EXPECT_THROW(small.prologue(32), BuildError); // < 64-byte save area
  FunctionBuilder odd("g");
  EXPECT_THROW(odd.prologue(100), BuildError); // not 8-byte aligned
}

TEST(Builder, BranchesReferToLabels) {
  FunctionBuilder fb("loop");
  fb.li(kO0, 10);
  fb.label("top");
  fb.subcci(kO0, 1);
  fb.bne("top");
  fb.ret_leaf();
  const Function f = fb.build();
  ASSERT_EQ(f.fixups.size(), 1u);
  EXPECT_EQ(f.fixups[0].kind, FixupKind::kBranch);
  EXPECT_EQ(f.fixups[0].symbol, "top");
  EXPECT_EQ(f.labels.at("top"), 1u);
}

TEST(Builder, UndefinedLabelRejectedAtBuild) {
  FunctionBuilder fb("f");
  fb.bne("nowhere");
  fb.ret_leaf();
  EXPECT_THROW(fb.build(), BuildError);
}

TEST(Builder, DuplicateLabelRejected) {
  FunctionBuilder fb("f");
  fb.label("x");
  fb.nop();
  EXPECT_THROW(fb.label("x"), BuildError);
}

TEST(Builder, LiSmallUsesOneInstruction) {
  FunctionBuilder fb("f");
  fb.li(kO0, 100);
  fb.li(kO1, -100);
  const Function f = fb.build();
  ASSERT_EQ(f.code.size(), 2u);
  EXPECT_EQ(f.code[0].op, Opcode::kAddi);
  EXPECT_EQ(f.code[1].op, Opcode::kAddi);
}

TEST(Builder, LiLargeUsesSethiOrlo) {
  FunctionBuilder fb("f");
  fb.li(kO0, 0x40123456);
  const Function f = fb.build();
  ASSERT_EQ(f.code.size(), 2u);
  EXPECT_EQ(f.code[0].op, Opcode::kSethi);
  EXPECT_EQ(f.code[1].op, Opcode::kOrlo);
}

TEST(Builder, LoadAddressEmitsFixupPair) {
  FunctionBuilder fb("f");
  fb.load_address(kO0, "table", 8);
  const Function f = fb.build();
  ASSERT_EQ(f.fixups.size(), 2u);
  EXPECT_EQ(f.fixups[0].kind, FixupKind::kHi19);
  EXPECT_EQ(f.fixups[0].addend, 8);
  EXPECT_EQ(f.fixups[1].kind, FixupKind::kLo13);
  EXPECT_EQ(f.fixups[1].symbol, "table");
}

TEST(Builder, CallEmitsFixup) {
  FunctionBuilder fb("f");
  fb.call("callee");
  const Function f = fb.build();
  ASSERT_EQ(f.fixups.size(), 1u);
  EXPECT_EQ(f.fixups[0].kind, FixupKind::kCall);
  EXPECT_EQ(f.fixups[0].symbol, "callee");
}

TEST(Builder, CannotReuseAfterBuild) {
  FunctionBuilder fb("f");
  fb.ret_leaf();
  (void)fb.build();
  EXPECT_THROW(fb.nop(), BuildError);
  EXPECT_THROW(fb.build(), BuildError);
}

TEST(Builder, NonBranchOpcodeRejectedInBranch) {
  FunctionBuilder fb("f");
  EXPECT_THROW(fb.branch(Opcode::kAdd, "x"), BuildError);
}

} // namespace
