// Seed-stream stability: every pre-existing registry scenario's times
// digest is LOCKED to the value the tree produced before the
// measured-target refactor (PR 5).
//
// The measured-target abstraction moved the control task's input mirror
// and staging out of the campaign runner and re-keyed the hypervisor
// layout stream by task kind.  The whole point of the frozen
// `exec::derive_run_seed` / `derive_partition_seed` indices (control = 0,
// image = 1, stressor = 2 — per KIND, never per registration order or
// measured role) is that such refactors cannot shift any existing
// scenario's random streams: these digests were captured from the
// pre-refactor seed tree and must never change.  A failure here means a
// change silently re-keyed the seed derivation or reordered an RNG draw —
// re-baselining requires the same deliberate review as golden_pwcet_test.
//
// Digests are worker-count-invariant by the engine's sharding contract
// (exec_engine_test/exec_hv_test lock that separately); this suite runs
// each campaign through the engine at 4 workers, crossing shard
// boundaries, plus one adaptive spot-check.
#include "exec/adaptive.hpp"
#include "exec/engine.hpp"
#include "exec/registry.hpp"
#include "exec/seed.hpp"
#include "trace/report.hpp"

#include <gtest/gtest.h>

#include <string>

namespace {

using namespace proxima;
using casestudy::CampaignConfig;
using casestudy::CampaignResult;

struct LockedDigest {
  const char* scenario;
  const char* digest;
};

/// All 17 pre-refactor scenarios at the default seeds (input 2017, layout
/// 611085), 30 measured runs.  Captured from commit b4d5870 (PR 4).
constexpr LockedDigest kDefaultSeeds30[] = {
    {"control/analysis-cots", "0xd25daac419e36cc5"},
    {"control/analysis-dsr", "0x8ffd60a0f8564259"},
    {"control/analysis-hwrand", "0x12dee3666df02be2"},
    {"control/analysis-static", "0x645a3dc2a2ad808e"},
    {"control/dsr-lazy", "0xb997f932a8aa5ee3"},
    {"control/layout-neutral", "0x232a04381dcf86e6"},
    {"control/offset-l1", "0x2564d9c310a9fde1"},
    {"control/operation-cots", "0xb540cda7ec8af25a"},
    {"control/operation-dsr", "0x121cfec29f10efba"},
    {"control/operation-hwrand", "0x9bedf9da834c2f71"},
    {"control/operation-static", "0x747f05f3455be9f7"},
    {"control/prng-lfsr", "0x7a0f26d73ff8f9d6"},
    {"control/stress-corrupt", "0x6a8f4d53daa78dc0"},
    {"hv/control+image", "0x996733f50572639d"},
    {"hv/control+image-dsr", "0x38f0d4f14dc20df6"},
    {"hv/control+stress", "0xb78f23e9c4a4e991"},
    {"hv/control-solo", "0xd25daac419e36cc5"},
};

/// The hypervisor family again at a NON-default seed (the CLI's --seed 7
/// mapping: input 7, layout splitmix64(7)), 24 runs — locks the
/// per-partition seed derivation itself, not just the default streams.
constexpr LockedDigest kSeed7Hv24[] = {
    {"hv/control+image", "0xcc8f5de6913d8d04"},
    {"hv/control+image-dsr", "0x32ae0901ff02e5c1"},
    {"hv/control+stress", "0x1ee8b3f666d40f55"},
    {"hv/control-solo", "0x18f7db57e7a25025"},
};

/// The leak/ scenario family (ISSUE 8), locked at introduction.  The
/// taint shadow machinery is observational by design: these digests must
/// be identical whether `CampaignConfig::taint` is on or off
/// (vm_differential_test locks that equivalence), and the beacon
/// partition's frozen seed index (3, per kind) means new measured targets
/// cannot shift them.
constexpr LockedDigest kLeakDefaultSeeds30[] = {
    {"leak/beacon-cots", "0x642db0bd273adfc5"},
    {"leak/beacon-dsr", "0xade9ecaa3d3c4fb9"},
    {"leak/hardened-dsr", "0x1f9d82ae84734b4e"},
    {"leak/observer-hv", "0xa73dfd15f384d424"},
};

/// The remaining registry scenarios — the image/ family and the
/// image-measured hypervisor pair — locked with the introduction of the
/// superblock execution tier (ISSUE 9), completing digest coverage of the
/// whole catalogue.  Captured under the new `fast-sb` default core; the
/// three-core bit-identity contract (vm_differential_test) makes these
/// equally the `fast` and `reference` digests.
constexpr LockedDigest kImageFamilyDefaultSeeds30[] = {
    {"hv/image+control", "0xeae6d549b6108787"},
    {"hv/image+control-dsr", "0xb23d5f5923688e88"},
    {"image/analysis-cots", "0x9b2905c8484b2295"},
    {"image/analysis-dsr", "0x175aff333fdbf5d3"},
    {"image/analysis-hwrand", "0x435a5da5446f5217"},
    {"image/operation-cots", "0xf812944f94a29a24"},
    {"image/operation-dsr", "0xc52a219b5df60291"},
    {"image/operation-hwrand", "0xe8db53a24b9276c9"},
};

/// The on-demand reseed arm (ISSUE 10), locked at introduction.  Note
/// control/dsr-ondemand's digest equals control/operation-dsr's: the
/// control task never stores to an observable sink, so the armed trigger
/// never fires and the arm prices only the (timing-invisible) machinery.
/// The beacon and hv scenarios DO fire mid-run reseeds; their digests lock
/// the quarantine semantics and the reseed draw order.
constexpr LockedDigest kOnDemandDefaultSeeds30[] = {
    {"control/dsr-ondemand", "0x121cfec29f10efba"},
    {"hv/control+image-ondemand", "0xfc31a6cfe6c3f753"},
    {"leak/beacon-ondemand", "0x446dd61db53040a4"},
};

CampaignConfig scenario(const std::string& name, std::uint32_t runs) {
  return exec::ScenarioRegistry::global().at(name).make_config(runs);
}

std::string engine_digest(const CampaignConfig& config) {
  exec::EngineOptions options;
  options.workers = 4;
  const CampaignResult result = exec::CampaignEngine(options).run(config);
  return trace::times_digest_hex(result.times);
}

TEST(SeedStreamStability, DefaultSeedDigestsAreLocked) {
  for (const LockedDigest& locked : kDefaultSeeds30) {
    EXPECT_EQ(engine_digest(scenario(locked.scenario, 30)), locked.digest)
        << locked.scenario;
  }
}

TEST(SeedStreamStability, ImageFamilyDigestsAreLocked) {
  for (const LockedDigest& locked : kImageFamilyDefaultSeeds30) {
    EXPECT_EQ(engine_digest(scenario(locked.scenario, 30)), locked.digest)
        << locked.scenario;
  }
}

TEST(SeedStreamStability, LeakFamilyDigestsAreLocked) {
  for (const LockedDigest& locked : kLeakDefaultSeeds30) {
    EXPECT_EQ(engine_digest(scenario(locked.scenario, 30)), locked.digest)
        << locked.scenario;
  }
}

TEST(SeedStreamStability, LeakDigestsUnchangedByTaintShadow) {
  // The whole secrecy argument rests on the taint machinery being
  // invisible to the measurement: same digest with the shadow on.
  for (const LockedDigest& locked : kLeakDefaultSeeds30) {
    CampaignConfig config = scenario(locked.scenario, 30);
    config.taint = true;
    EXPECT_EQ(engine_digest(config), locked.digest) << locked.scenario;
  }
}

TEST(SeedStreamStability, OnDemandFamilyDigestsAreLocked) {
  for (const LockedDigest& locked : kOnDemandDefaultSeeds30) {
    EXPECT_EQ(engine_digest(scenario(locked.scenario, 30)), locked.digest)
        << locked.scenario;
  }
  // The armed-but-silent arm must price exactly like plain eager DSR.
  EXPECT_EQ(engine_digest(scenario("control/dsr-ondemand", 30)),
            engine_digest(scenario("control/operation-dsr", 30)));
}

TEST(SeedStreamStability, HvPartitionStreamsAreLockedAtSeed7) {
  for (const LockedDigest& locked : kSeed7Hv24) {
    CampaignConfig config = scenario(locked.scenario, 24);
    config.input_seed = 7;
    config.layout_seed = exec::splitmix64_mix(7);
    EXPECT_EQ(engine_digest(config), locked.digest) << locked.scenario;
  }
}

TEST(SeedStreamStability, AdaptiveCampaignsShareTheLockedStreams) {
  // An adaptive campaign that exhausts its budget must walk exactly the
  // fixed campaign's run sequence — so the locked fixed digest covers the
  // adaptive path too.
  exec::ConvergenceOptions convergence;
  convergence.batch_runs = 10;
  convergence.max_runs = 30;
  convergence.controller.target_exceedance = 1e-12;
  convergence.controller.epsilon = 1e-9; // never converges in 30 runs
  convergence.controller.stable_rounds = 3;
  convergence.controller.min_samples = 30;
  convergence.controller.mbpta.block_size = 10;
  exec::EngineOptions options;
  options.workers = 4;
  const exec::AdaptiveCampaignResult adaptive =
      exec::CampaignEngine(options).run_adaptive(
          scenario("hv/control+image", 30), convergence);
  EXPECT_EQ(adaptive.campaign.times.size(), 30u);
  EXPECT_EQ(trace::times_digest_hex(adaptive.campaign.times),
            "0x996733f50572639d");
}

} // namespace
