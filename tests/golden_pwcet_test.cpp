// Golden regression fixture for the paper-reproduction numbers.
//
// Locks the figure-2 execution-time summaries, the figure-3 pWCET fit and
// the margin-comparison bound at fixed seeds into checked-in expected
// values, so that performance work on the VM cores or the memory
// hierarchy can never *silently* shift the reproduced results: any change
// to the timing model shows up here as an exact-value diff, reviewed and
// re-baselined deliberately.
//
// The simulation is fully deterministic (integer cycle arithmetic in
// doubles), so min/mean/max and every performance counter are compared
// EXACTLY.  Only the EVT tail fit goes through transcendental libm calls
// (log/exp); those are compared with a 1e-6 relative tolerance — about
// nine orders of magnitude above cross-libm jitter and three below any
// real regression.
#include "casestudy/campaign.hpp"
#include "exec/registry.hpp"
#include "mbpta/mbpta.hpp"
#include "trace/report.hpp"

#include <gtest/gtest.h>

namespace {

using namespace proxima;
using casestudy::CampaignConfig;
using casestudy::CampaignResult;

constexpr std::uint32_t kRuns = 300;

CampaignResult run_scenario(const char* name) {
  exec::ScenarioRegistry registry;
  exec::register_default_scenarios(registry);
  // Default seeds (input 2017, layout 611085) — the figures' conditions.
  return casestudy::run_control_campaign(registry.at(name).make_config(kRuns));
}

mbpta::MbptaConfig analysis_config() {
  mbpta::MbptaConfig config;
  config.block_size = std::max(10u, kRuns / 40u);
  return config;
}

void expect_rel_near(double actual, double expected, const char* what) {
  EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-6) << what;
}

TEST(GoldenPwcet, Fig2OperationSummariesAreLocked) {
  const CampaignResult cots = run_scenario("control/operation-cots");
  const CampaignResult dsr = run_scenario("control/operation-dsr");
  const mbpta::Summary cots_summary = mbpta::summarise(cots.times);
  const mbpta::Summary dsr_summary = mbpta::summarise(dsr.times);

  // COTS: fixed bad-and-rare layout, input variation only.
  EXPECT_EQ(cots_summary.min, 224807.0);
  EXPECT_EQ(cots_summary.max, 264666.0);
  expect_rel_near(cots_summary.mean, 229043.82, "cots mean");
  // DSR: randomised layout each run.
  EXPECT_EQ(dsr_summary.min, 227335.0);
  EXPECT_EQ(dsr_summary.max, 254680.0);
  expect_rel_near(dsr_summary.mean, 230446.28333333333, "dsr mean");

  // The paper's figure-2 shape: DSR's MOET must not exceed the COTS MOET.
  EXPECT_LE(dsr_summary.max, cots_summary.max);
}

TEST(GoldenPwcet, Fig2CountersAreLocked) {
  const CampaignResult cots = run_scenario("control/operation-cots");
  ASSERT_EQ(cots.samples.size(), kRuns);
  // Exact counter snapshot of the first measured activation: the hardest
  // possible regression anchor for the timing model and both VM cores.
  const mem::PerfCounters& c = cots.samples.front().counters;
  EXPECT_EQ(c.instructions, 153376u);
  EXPECT_EQ(c.icache_miss, 33u);
  EXPECT_EQ(c.dcache_miss, 1429u);
  EXPECT_EQ(c.l2_miss, 113u);
  EXPECT_EQ(c.fpu_ops, 3302u);
}

TEST(GoldenPwcet, Fig3PwcetFitIsLocked) {
  const CampaignResult dsr = run_scenario("control/analysis-dsr");
  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(dsr.times, analysis_config());

  ASSERT_TRUE(analysis.applicable())
      << "analysis-dsr must pass the i.i.d. tests at the locked seed";
  EXPECT_EQ(analysis.summary.min, 253604.0);
  EXPECT_EQ(analysis.summary.max, 254701.0);
  expect_rel_near(analysis.summary.mean, 254207.39333333333, "analysis mean");
  expect_rel_near(analysis.model.info().gumbel.location, 254463.56127929059,
                  "gumbel location");
  expect_rel_near(analysis.model.info().gumbel.scale, 75.255616489226313,
                  "gumbel scale");
  expect_rel_near(analysis.pwcet(1e-15), 256889.57590317851, "pWCET @ 1e-15");

  // Figure-3 shape: the curve tightly upper-bounds the MET.
  EXPECT_GT(analysis.pwcet(1e-15), analysis.summary.max);
}

TEST(GoldenPwcet, ImageOperationSummariesAreLocked) {
  // The image task as a measured workload (PR 5): operation-like inputs,
  // so these numbers lock the input-DEPENDENT duration distribution — the
  // second case-study axis.  The Gumbel fit over such a series is
  // dominated by the lit-lens count, not the platform: the wild
  // operation-mode scale is exactly why the analysis protocol pins the
  // frame (next test).
  const CampaignResult cots = run_scenario("image/operation-cots");
  const mbpta::Summary summary = mbpta::summarise(cots.times);
  EXPECT_EQ(summary.min, 824225.0);
  EXPECT_EQ(summary.max, 1288457.0);
  expect_rel_near(summary.mean, 1045019.6233333333, "image operation mean");

  ASSERT_EQ(cots.samples.size(), kRuns);
  const mem::PerfCounters& c = cots.samples.front().counters;
  EXPECT_EQ(c.instructions, 646465u);
  EXPECT_EQ(c.icache_miss, 20u);
  EXPECT_EQ(c.dcache_miss, 2718u);
  EXPECT_EQ(c.l2_miss, 1518u);
  EXPECT_EQ(c.fpu_ops, 21867u);
}

TEST(GoldenPwcet, ImageAnalysisPwcetFitIsLocked) {
  const CampaignResult dsr = run_scenario("image/analysis-dsr");
  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(dsr.times, analysis_config());

  ASSERT_TRUE(analysis.applicable())
      << "image/analysis-dsr must pass the i.i.d. tests at the locked seed";
  EXPECT_EQ(analysis.summary.min, 1345002.0);
  EXPECT_EQ(analysis.summary.max, 1345996.0);
  expect_rel_near(analysis.summary.mean, 1345366.3400000001,
                  "image analysis mean");
  expect_rel_near(analysis.model.info().gumbel.location, 1345620.702059973,
                  "image gumbel location");
  expect_rel_near(analysis.model.info().gumbel.scale, 96.378661812072991,
                  "image gumbel scale");
  expect_rel_near(analysis.pwcet(1e-15), 1348727.6601037001,
                  "image pWCET @ 1e-15");
  EXPECT_GT(analysis.pwcet(1e-15), analysis.summary.max);
}

TEST(GoldenPwcet, MarginComparisonIsLocked) {
  const CampaignResult cots = run_scenario("control/analysis-cots");
  const CampaignResult dsr = run_scenario("control/analysis-dsr");
  const trace::TimingReport cots_report =
      trace::TimingReport::from_times(cots.times);
  const mbpta::MbptaAnalysis analysis =
      mbpta::analyse(dsr.times, analysis_config());
  const double pwcet = analysis.pwcet(1e-15);
  const double margin_bound = cots_report.mbdta_bound();

  expect_rel_near(margin_bound, 317383.2, "industrial margin bound");
  expect_rel_near(pwcet, 256889.57590317851, "margin pWCET");
  // Section VI shape: MOET(DSR) < pWCET < COTS MOET + 20%.
  EXPECT_LT(pwcet, margin_bound);
  EXPECT_GT(pwcet, analysis.summary.max);
}

} // namespace
