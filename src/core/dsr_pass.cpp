#include "dsr_pass.hpp"

#include "isa/builder.hpp"
#include "isa/transform.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace proxima::dsr {

namespace {

using isa::CodeEdit;
using isa::FixupKind;
using isa::Function;
using isa::Instruction;
using isa::Opcode;
using Edit = CodeEdit;

/// The 4-instruction indirect-call sequence through functab[callee_id].
Edit make_call_edit(std::size_t index, std::uint32_t callee_id) {
  Edit edit;
  edit.index = index;
  const std::int32_t addend = static_cast<std::int32_t>(4 * callee_id);
  edit.fixups.push_back({0, FixupKind::kHi19, kFunctabSymbol, addend});
  edit.fixups.push_back({1, FixupKind::kLo13, kFunctabSymbol, addend});
  edit.code.push_back(isa::make_sethi(isa::kG6, 0));
  edit.code.push_back(isa::make_i(Opcode::kOrlo, isa::kG6, isa::kG6, 0));
  edit.code.push_back(isa::make_i(Opcode::kLd, isa::kG6, isa::kG6, 0));
  edit.code.push_back(isa::make_i(Opcode::kJmpl, isa::kO7, isa::kG6, 0));
  return edit;
}

/// The 6-instruction randomised prologue: load this function's offset and
/// fold it into the SAVE (register form), so the stack pointer is adjusted
/// atomically (Section III.B.2).
Edit make_prologue_edit(std::size_t index, std::uint32_t self_id,
                        std::uint32_t frame_bytes) {
  Edit edit;
  edit.index = index;
  const std::int32_t addend = static_cast<std::int32_t>(4 * self_id);
  edit.fixups.push_back({0, FixupKind::kHi19, kStackoffSymbol, addend});
  edit.fixups.push_back({1, FixupKind::kLo13, kStackoffSymbol, addend});
  edit.code.push_back(isa::make_sethi(isa::kG6, 0));
  edit.code.push_back(isa::make_i(Opcode::kOrlo, isa::kG6, isa::kG6, 0));
  edit.code.push_back(isa::make_i(Opcode::kLd, isa::kG6, isa::kG6, 0));
  // g7 = -(offset + frame)
  edit.code.push_back(isa::make_r(Opcode::kSub, isa::kG7, isa::kG0, isa::kG6));
  edit.code.push_back(isa::make_i(Opcode::kSubi, isa::kG7, isa::kG7,
                                  static_cast<std::int32_t>(frame_bytes)));
  edit.code.push_back(
      isa::make_r(Opcode::kSavex, isa::kSp, isa::kSp, isa::kG7));
  return edit;
}

/// Per-function lazy stub: trap into the runtime, then tail-jump through
/// the (now updated) relocation table.
Function make_stub(const std::string& target_name, std::uint32_t target_id) {
  isa::FunctionBuilder fb(kStubPrefix + target_name);
  fb.emit(isa::make_b(Opcode::kTrapReloc,
                      static_cast<std::int32_t>(target_id)));
  fb.load_address(isa::kG6, kFunctabSymbol,
                  static_cast<std::int32_t>(4 * target_id));
  fb.ld(isa::kG6, isa::kG6, 0);
  fb.opi(Opcode::kJmpl, isa::kG0, isa::kG6, 0); // tail jump: %o7 untouched
  return std::move(fb).build();
}

} // namespace

bool is_stub_name(const std::string& name) {
  return name.rfind(kStubPrefix, 0) == 0;
}

PassReport apply_pass(isa::Program& program, const PassOptions& options) {
  if (program.find_data(kFunctabSymbol) != nullptr ||
      program.find_data(kStackoffSymbol) != nullptr) {
    throw DsrError("program already carries DSR metadata (pass applied twice?)");
  }
  for (const Function& function : program.functions) {
    if (is_stub_name(function.name)) {
      throw DsrError("program already contains DSR stubs");
    }
  }

  // Function ids follow program order, matching the linker's records.
  std::map<std::string, std::uint32_t> ids;
  for (std::uint32_t i = 0; i < program.functions.size(); ++i) {
    ids[program.functions[i].name] = i;
  }
  const std::uint32_t function_count =
      static_cast<std::uint32_t>(program.functions.size());

  PassReport report;
  for (const Function& function : program.functions) {
    report.instructions_before +=
        static_cast<std::uint32_t>(function.code.size());
  }

  for (Function& function : program.functions) {
    std::vector<Edit> edits;
    std::set<std::size_t> consumed;

    if (options.indirect_calls) {
      for (std::size_t i = 0; i < function.fixups.size(); ++i) {
        const isa::Fixup& fixup = function.fixups[i];
        if (fixup.kind != FixupKind::kCall) {
          continue;
        }
        if (function.code[fixup.index].op != Opcode::kCall) {
          throw DsrError(function.name + ": call fixup on a non-call");
        }
        const auto it = ids.find(fixup.symbol);
        if (it == ids.end()) {
          throw DsrError(function.name + ": call to unknown function '" +
                         fixup.symbol + "'");
        }
        edits.push_back(make_call_edit(fixup.index, it->second));
        consumed.insert(i);
        ++report.calls_rewritten;
      }
    }

    if (options.stack_offsets && function.has_prologue) {
      if (function.code[function.prologue_index].op != Opcode::kSave) {
        throw DsrError(function.name + ": prologue index is not a SAVE");
      }
      edits.push_back(make_prologue_edit(function.prologue_index,
                                         ids.at(function.name),
                                         function.frame_bytes));
      ++report.prologues_rewritten;
    }

    if (!edits.empty()) {
      isa::apply_edits(function, std::move(edits), consumed);
    }
  }

  for (const Function& function : program.functions) {
    report.instructions_after +=
        static_cast<std::uint32_t>(function.code.size());
  }

  // Metadata tables: one u32 slot per function, zero-initialised; the
  // runtime fills them at start-up.  64-byte alignment keeps each table on
  // its own cache lines (they are hot: read on every call / prologue).
  program.data.push_back(isa::DataObject{
      .name = kFunctabSymbol, .size = 4 * function_count, .align = 64});
  program.data.push_back(isa::DataObject{
      .name = kStackoffSymbol, .size = 4 * function_count, .align = 64});

  if (options.lazy_stubs) {
    std::vector<Function> stubs;
    stubs.reserve(function_count);
    for (const auto& [name, id] : ids) {
      stubs.push_back(make_stub(name, id));
      ++report.stubs_emitted;
    }
    for (Function& stub : stubs) {
      program.functions.push_back(std::move(stub));
    }
  }
  return report;
}

} // namespace proxima::dsr
