#include "static_rand.hpp"

#include "alloc/pool.hpp"

namespace proxima::dsr {

isa::LinkOptions random_layout(const isa::Program& program,
                               rng::RandomSource& random,
                               const StaticRandOptions& options) {
  isa::LinkOptions link_options;

  alloc::PageAllocator code_pages(
      alloc::Region{options.code_region_base, options.code_region_size},
      random);
  alloc::RandomObjectPool code_pool(code_pages, random, options.offset_range,
                                    options.alignment);
  for (const isa::Function& function : program.functions) {
    link_options.placement[function.name] =
        code_pool.allocate(std::max<std::uint32_t>(function.size_bytes(), 4))
            .addr;
  }

  if (options.randomise_data) {
    alloc::PageAllocator data_pages(
        alloc::Region{options.data_region_base, options.data_region_size},
        random);
    alloc::RandomObjectPool data_pool(data_pages, random, options.offset_range,
                                      options.alignment);
    for (const isa::DataObject& object : program.data) {
      // Respect the object's own alignment when it exceeds the pool's.
      const std::uint32_t addr =
          data_pool.allocate(std::max<std::uint32_t>(object.size, 4)).addr;
      const std::uint32_t align = std::max<std::uint32_t>(object.align, 1);
      link_options.placement[object.name] = addr & ~(align - 1);
    }
  }
  return link_options;
}

} // namespace proxima::dsr
