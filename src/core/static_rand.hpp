// Static software randomisation (TASA-flavoured), for comparison with DSR.
//
// The paper (Section III) contrasts dynamic randomisation with the static
// variant used in automotive [19][16]: instead of moving objects at run
// time, each *binary* is linked with a different random memory layout, and
// the analysis collects one measurement per binary.  Both variants are
// "equivalent in enabling MBPTA"; the ablation bench A5/A3 companions use
// this to demonstrate that equivalence on our platform.
//
// Implemented as a layout generator: given a program and a random source,
// produce LinkOptions that place every function (and optionally every data
// object) at an independently random, alignment-preserving address inside
// dedicated regions — the link-time analogue of the DSR pools.
#pragma once

#include "isa/linker.hpp"
#include "rng/random_source.hpp"

namespace proxima::dsr {

struct StaticRandOptions {
  std::uint32_t code_region_base = 0x4100'0000;
  std::uint32_t code_region_size = 32 * 1024 * 1024;
  std::uint32_t data_region_base = 0x4300'0000;
  std::uint32_t data_region_size = 32 * 1024 * 1024;
  /// Random-offset range per object (L2 way size, as for DSR).
  std::uint32_t offset_range = 32 * 1024;
  std::uint32_t alignment = 8;
  bool randomise_data = true;
};

/// Produce a random layout for `program`.  Each call with a fresh random
/// stream yields a distinct "pre-compiled binary" layout.
isa::LinkOptions random_layout(const isa::Program& program,
                               rng::RandomSource& random,
                               const StaticRandOptions& options = {});

} // namespace proxima::dsr
