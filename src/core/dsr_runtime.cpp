#include "dsr_runtime.hpp"

namespace proxima::dsr {

DsrRuntime::DsrRuntime(mem::GuestMemory& memory,
                       mem::MemoryHierarchy& hierarchy,
                       const isa::LinkedImage& image,
                       rng::RandomSource& random, RuntimeOptions options)
    : memory_(memory), hierarchy_(hierarchy), image_(image), random_(random),
      options_(options), pages_(options_.code_pool, random_),
      pool_(pages_, random_, options_.offset_range, options_.alignment,
            options_.chunk_align) {
  if (!image_.has_symbol(kFunctabSymbol) ||
      !image_.has_symbol(kStackoffSymbol)) {
    throw DsrError(
        "image lacks DSR metadata tables: run apply_pass before linking");
  }
  functab_addr_ = image_.symbol(kFunctabSymbol).addr;
  stackoff_addr_ = image_.symbol(kStackoffSymbol).addr;

  const auto& records = image_.functions();
  current_address_.assign(records.size(), 0);
  stack_offsets_.assign(records.size(), 0);
  relocated_.assign(records.size(), false);
  stub_of_.assign(records.size(), std::nullopt);

  bool entry_found = false;
  for (const isa::FunctionRecord& record : records) {
    if (record.addr == image_.entry_addr()) {
      entry_id_ = record.id;
      entry_found = true;
    }
    if (is_stub_name(record.name)) {
      continue;
    }
    const std::string stub_name = std::string(kStubPrefix) + record.name;
    for (const isa::FunctionRecord& candidate : records) {
      if (candidate.name == stub_name) {
        stub_of_[record.id] = candidate.id;
        break;
      }
    }
  }
  if (!entry_found) {
    throw DsrError("entry function not found among the image records");
  }
  if (!options_.eager) {
    for (const isa::FunctionRecord& record : records) {
      if (!is_stub_name(record.name) && !stub_of_[record.id]) {
        throw DsrError("lazy relocation requested but function '" +
                       record.name +
                       "' has no stub: pass lazy_stubs=true to apply_pass");
      }
    }
  }
}

bool DsrRuntime::is_real(std::uint32_t id) const {
  return !is_stub_name(image_.functions().at(id).name);
}

std::uint32_t DsrRuntime::managed_functions() const {
  std::uint32_t count = 0;
  for (const isa::FunctionRecord& record : image_.functions()) {
    if (!is_stub_name(record.name)) {
      ++count;
    }
  }
  return count;
}

void DsrRuntime::write_table_u32(std::uint32_t table_addr, std::uint32_t id,
                                 std::uint32_t value) {
  const std::uint32_t slot = table_addr + 4 * id;
  memory_.write_u32(slot, value);
  // Host-side write behind the caches: mark and (normally) invalidate.
  hierarchy_.note_memory_written(slot, 4);
  if (options_.run_invalidation_routine) {
    stats_.lines_invalidated += hierarchy_.invalidate_range(slot, 4);
  }
}

void DsrRuntime::relocate(std::uint32_t id) {
  const isa::FunctionRecord& record = image_.functions().at(id);
  const alloc::RandomObjectPool::Allocation allocation =
      pool_.allocate(record.size_bytes);
  memory_.copy(allocation.addr, record.addr, record.size_bytes);
  hierarchy_.note_memory_written(allocation.addr, record.size_bytes);
  if (options_.run_invalidation_routine) {
    // The SPARC-compliant invalidation routine (Section III.B.1): write
    // back + invalidate every line of the new range, and drop any stale
    // IL1/L2 entries still covering the *old* location.
    stats_.lines_invalidated +=
        hierarchy_.invalidate_range(allocation.addr, record.size_bytes);
    stats_.lines_invalidated +=
        hierarchy_.invalidate_range(record.addr, record.size_bytes);
  }
  current_address_[id] = allocation.addr;
  relocated_[id] = true;
  live_chunks_.emplace_back(allocation.chunk_base,
                            allocation.chunk_pages *
                                alloc::PageAllocator::kPageBytes);
  write_table_u32(functab_addr_, id, allocation.addr);
  ++stats_.relocations;
  stats_.bytes_copied += record.size_bytes;
}

void DsrRuntime::initialise() {
  ++stats_.reseeds;
  // Release the previous layout: the freed chunks' cache lines must be
  // written back and invalidated (the invalidation routine's other half —
  // stale code from a dead layout must never survive in the warm L2).
  if (options_.run_invalidation_routine) {
    for (const auto& [base, length] : live_chunks_) {
      stats_.lines_invalidated += hierarchy_.invalidate_range(base, length);
    }
  }
  live_chunks_.clear();
  pool_.reset();
  std::fill(relocated_.begin(), relocated_.end(), false);

  for (const isa::FunctionRecord& record : image_.functions()) {
    if (!is_real(record.id)) {
      continue;
    }
    // Stack offsets: positive multiples of 8 below the way size, drawn for
    // every function with a frame (Section III.B.2).
    std::uint32_t offset = 0;
    if (record.has_prologue && options_.randomise_stack) {
      offset = random_.next_offset(options_.offset_range, options_.alignment);
    }
    stack_offsets_[record.id] = offset;
    write_table_u32(stackoff_addr_, record.id, offset);

    if (!options_.randomise_code) {
      current_address_[record.id] = record.addr;
      write_table_u32(functab_addr_, record.id, record.addr);
    } else if (options_.eager) {
      relocate(record.id);
    } else {
      // Lazy: route the first call through the stub.
      const std::uint32_t stub_id = stub_of_[record.id].value();
      const std::uint32_t stub_addr = image_.functions().at(stub_id).addr;
      current_address_[record.id] = stub_addr;
      write_table_u32(functab_addr_, record.id, stub_addr);
    }
  }
  initialised_ = true;
}

void DsrRuntime::rerandomise() { initialise(); }

std::uint64_t DsrRuntime::handle_lazy_trap(std::uint32_t id) {
  ++stats_.lazy_traps;
  if (id >= relocated_.size() || !is_real(id)) {
    throw DsrError("lazy trap with invalid function id");
  }
  if (relocated_[id]) {
    return 0; // lost race with an earlier call: table already updated
  }
  const std::uint32_t size = image_.functions().at(id).size_bytes;
  relocate(id);
  // Charge the on-line cost: copy loop plus the invalidation routine.
  const std::uint64_t words = size / 4;
  const std::uint64_t cycles = words * options_.lazy_copy_cycles_per_word;
  stats_.lazy_cycles += cycles;
  return cycles;
}

void DsrRuntime::attach(vm::Vm& cpu) {
  cpu.set_reloc_trap_sink(
      [this](std::uint32_t id) { return handle_lazy_trap(id); });
}

std::uint32_t DsrRuntime::entry_address() const {
  if (!initialised_) {
    throw DsrError("entry_address() before initialise()");
  }
  return current_address_.at(entry_id_);
}

std::uint32_t DsrRuntime::function_address(std::uint32_t id) const {
  return current_address_.at(id);
}

std::uint32_t DsrRuntime::function_address(const std::string& name) const {
  return current_address_.at(image_.function(name).id);
}

std::uint32_t DsrRuntime::stack_offset(std::uint32_t id) const {
  return stack_offsets_.at(id);
}

} // namespace proxima::dsr
