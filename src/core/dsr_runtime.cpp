#include "dsr_runtime.hpp"

#include <algorithm>

namespace proxima::dsr {

DsrRuntime::DsrRuntime(mem::GuestMemory& memory,
                       mem::MemoryHierarchy& hierarchy,
                       const isa::LinkedImage& image,
                       rng::RandomSource& random, RuntimeOptions options)
    : memory_(memory), hierarchy_(hierarchy), image_(image), random_(random),
      options_(options), pages_(options_.code_pool, random_),
      pool_(pages_, random_, options_.offset_range, options_.alignment,
            options_.chunk_align) {
  if (!image_.has_symbol(kFunctabSymbol) ||
      !image_.has_symbol(kStackoffSymbol)) {
    throw DsrError(
        "image lacks DSR metadata tables: run apply_pass before linking");
  }
  functab_addr_ = image_.symbol(kFunctabSymbol).addr;
  stackoff_addr_ = image_.symbol(kStackoffSymbol).addr;

  const auto& records = image_.functions();
  current_address_.assign(records.size(), 0);
  stack_offsets_.assign(records.size(), 0);
  relocated_.assign(records.size(), false);
  stub_of_.assign(records.size(), std::nullopt);

  bool entry_found = false;
  for (const isa::FunctionRecord& record : records) {
    if (record.addr == image_.entry_addr()) {
      entry_id_ = record.id;
      entry_found = true;
    }
    if (is_stub_name(record.name)) {
      continue;
    }
    const std::string stub_name = std::string(kStubPrefix) + record.name;
    for (const isa::FunctionRecord& candidate : records) {
      if (candidate.name == stub_name) {
        stub_of_[record.id] = candidate.id;
        break;
      }
    }
  }
  if (!entry_found) {
    throw DsrError("entry function not found among the image records");
  }
  if (!options_.eager) {
    for (const isa::FunctionRecord& record : records) {
      if (!is_stub_name(record.name) && !stub_of_[record.id]) {
        throw DsrError("lazy relocation requested but function '" +
                       record.name +
                       "' has no stub: pass lazy_stubs=true to apply_pass");
      }
    }
  }
}

bool DsrRuntime::is_real(std::uint32_t id) const {
  return !is_stub_name(image_.functions().at(id).name);
}

std::uint32_t DsrRuntime::managed_functions() const {
  std::uint32_t count = 0;
  for (const isa::FunctionRecord& record : image_.functions()) {
    if (!is_stub_name(record.name)) {
      ++count;
    }
  }
  return count;
}

void DsrRuntime::write_table_u32(std::uint32_t table_addr, std::uint32_t id,
                                 std::uint32_t value) {
  const std::uint32_t slot = table_addr + 4 * id;
  memory_.write_u32(slot, value);
  // Host-side write behind the caches: mark and (normally) invalidate.
  hierarchy_.note_memory_written(slot, 4);
  if (options_.run_invalidation_routine) {
    stats_.lines_invalidated += hierarchy_.invalidate_range(slot, 4);
  }
}

void DsrRuntime::relocate(std::uint32_t id) {
  const isa::FunctionRecord& record = image_.functions().at(id);
  const alloc::RandomObjectPool::Allocation allocation =
      pool_.allocate(record.size_bytes);
  memory_.copy(allocation.addr, record.addr, record.size_bytes);
  hierarchy_.note_memory_written(allocation.addr, record.size_bytes);
  if (options_.run_invalidation_routine) {
    // The SPARC-compliant invalidation routine (Section III.B.1): write
    // back + invalidate every line of the new range, and drop any stale
    // IL1/L2 entries still covering the *old* location.
    stats_.lines_invalidated +=
        hierarchy_.invalidate_range(allocation.addr, record.size_bytes);
    stats_.lines_invalidated +=
        hierarchy_.invalidate_range(record.addr, record.size_bytes);
  }
  current_address_[id] = allocation.addr;
  relocated_[id] = true;
  live_chunks_.emplace_back(allocation.chunk_base,
                            allocation.chunk_pages *
                                alloc::PageAllocator::kPageBytes);
  write_table_u32(functab_addr_, id, allocation.addr);
  ++stats_.relocations;
  stats_.bytes_copied += record.size_bytes;
}

void DsrRuntime::initialise() {
  if (!options_.batched_relocation) {
    initialise_per_word();
    return;
  }
  ++stats_.reseeds;
  // Release the previous layout: the freed chunks' cache lines must be
  // written back and invalidated (the invalidation routine's other half —
  // stale code from a dead layout must never survive in the warm L2).
  // Deferred into the coalesced batch alongside this round's new ranges.
  pending_ranges_.clear();
  if (options_.run_invalidation_routine) {
    for (const auto& chunk : live_chunks_) {
      pending_ranges_.push_back(chunk);
    }
    for (const auto& chunk : quarantined_chunks_) {
      pending_ranges_.push_back(chunk);
    }
  }
  live_chunks_.clear();
  quarantined_chunks_.clear();
  pool_.reset();

  draw_layout();
  flush_table(stackoff_addr_, staged_stackoff_);
  flush_table(functab_addr_, staged_functab_);
  flush_invalidations();
  initialised_ = true;
}

void DsrRuntime::initialise_per_word() {
  ++stats_.reseeds;
  // Release the previous layout: the freed chunks' cache lines must be
  // written back and invalidated (the invalidation routine's other half —
  // stale code from a dead layout must never survive in the warm L2).
  if (options_.run_invalidation_routine) {
    for (const auto& [base, length] : live_chunks_) {
      stats_.lines_invalidated += hierarchy_.invalidate_range(base, length);
    }
    for (const auto& [base, length] : quarantined_chunks_) {
      stats_.lines_invalidated += hierarchy_.invalidate_range(base, length);
    }
  }
  live_chunks_.clear();
  quarantined_chunks_.clear();
  pool_.reset();
  std::fill(relocated_.begin(), relocated_.end(), false);

  for (const isa::FunctionRecord& record : image_.functions()) {
    if (!is_real(record.id)) {
      continue;
    }
    // Stack offsets: positive multiples of 8 below the way size, drawn for
    // every function with a frame (Section III.B.2).
    std::uint32_t offset = 0;
    if (record.has_prologue && options_.randomise_stack) {
      offset = random_.next_offset(options_.offset_range, options_.alignment);
    }
    stack_offsets_[record.id] = offset;
    write_table_u32(stackoff_addr_, record.id, offset);

    if (!options_.randomise_code) {
      current_address_[record.id] = record.addr;
      write_table_u32(functab_addr_, record.id, record.addr);
    } else if (options_.eager) {
      relocate(record.id);
    } else {
      // Lazy: route the first call through the stub.
      const std::uint32_t stub_id = stub_of_[record.id].value();
      const std::uint32_t stub_addr = image_.functions().at(stub_id).addr;
      current_address_[record.id] = stub_addr;
      write_table_u32(functab_addr_, record.id, stub_addr);
    }
  }
  initialised_ = true;
}

void DsrRuntime::draw_layout() {
  std::fill(relocated_.begin(), relocated_.end(), false);
  const auto& records = image_.functions();
  staged_functab_.assign(records.size(), 0);
  staged_stackoff_.assign(records.size(), 0);
  staged_valid_.assign(records.size(), false);

  for (const isa::FunctionRecord& record : records) {
    if (!is_real(record.id)) {
      continue;
    }
    // Stack offsets: positive multiples of 8 below the way size, drawn for
    // every function with a frame (Section III.B.2).
    std::uint32_t offset = 0;
    if (record.has_prologue && options_.randomise_stack) {
      offset = random_.next_offset(options_.offset_range, options_.alignment);
    }
    stack_offsets_[record.id] = offset;
    staged_stackoff_[record.id] = offset;
    staged_valid_[record.id] = true;

    if (!options_.randomise_code) {
      current_address_[record.id] = record.addr;
      staged_functab_[record.id] = record.addr;
    } else if (options_.eager) {
      relocate_batched(record);
    } else {
      // Lazy: route the first call through the stub.
      const std::uint32_t stub_id = stub_of_[record.id].value();
      const std::uint32_t stub_addr = records.at(stub_id).addr;
      current_address_[record.id] = stub_addr;
      staged_functab_[record.id] = stub_addr;
    }
  }
}

void DsrRuntime::relocate_batched(const isa::FunctionRecord& record) {
  const alloc::RandomObjectPool::Allocation allocation =
      pool_.allocate(record.size_bytes);
  memory_.copy(allocation.addr, record.addr, record.size_bytes);
  hierarchy_.note_memory_written(allocation.addr, record.size_bytes);
  if (options_.run_invalidation_routine) {
    pending_ranges_.emplace_back(allocation.addr, record.size_bytes);
    pending_ranges_.emplace_back(record.addr, record.size_bytes);
  }
  current_address_[record.id] = allocation.addr;
  relocated_[record.id] = true;
  live_chunks_.emplace_back(allocation.chunk_base,
                            allocation.chunk_pages *
                                alloc::PageAllocator::kPageBytes);
  staged_functab_[record.id] = allocation.addr;
  ++stats_.relocations;
  stats_.bytes_copied += record.size_bytes;
}

void DsrRuntime::flush_table(std::uint32_t table_addr,
                             const std::vector<std::uint32_t>& values) {
  const std::size_t count = staged_valid_.size();
  std::size_t i = 0;
  while (i < count) {
    if (!staged_valid_[i]) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < count && staged_valid_[j]) {
      ++j;
    }
    const std::uint32_t slot =
        table_addr + 4 * static_cast<std::uint32_t>(i);
    const std::uint32_t words = static_cast<std::uint32_t>(j - i);
    memory_.write_u32_span(slot, values.data() + i, words);
    // Host-side write behind the caches: mark and (normally) invalidate.
    hierarchy_.note_memory_written(slot, 4 * words);
    if (options_.run_invalidation_routine) {
      pending_ranges_.emplace_back(slot, 4 * words);
    }
    i = j;
  }
}

void DsrRuntime::flush_invalidations() {
  if (!options_.run_invalidation_routine || pending_ranges_.empty()) {
    return;
  }
  std::sort(pending_ranges_.begin(), pending_ranges_.end());
  // Coalesce in place: adjacent/overlapping ranges merge, so the batch
  // handed to the hierarchy is sorted and pairwise disjoint.
  std::size_t out = 0;
  for (std::size_t i = 1; i < pending_ranges_.size(); ++i) {
    auto& merged = pending_ranges_[out];
    const auto& [addr, length] = pending_ranges_[i];
    if (addr <= merged.first + merged.second) {
      merged.second =
          std::max(merged.first + merged.second, addr + length) - merged.first;
    } else {
      pending_ranges_[++out] = pending_ranges_[i];
    }
  }
  pending_ranges_.resize(out + 1);
  stats_.lines_invalidated += hierarchy_.invalidate_ranges(pending_ranges_);
  pending_ranges_.clear();
}

void DsrRuntime::rerandomise() { initialise(); }

std::uint64_t DsrRuntime::rerandomise_on_demand() {
  if (!initialised_) {
    throw DsrError("rerandomise_on_demand() before initialise()");
  }
  ++stats_.reseeds;
  ++stats_.ondemand_reseeds;
  // Quarantine the outgoing copies: their pool pages stay allocated and
  // their cache lines stay valid (the guest may be executing them right
  // now, and their bytes never change), so no invalidation is run over
  // them here.  The next reboot's initialise() releases and invalidates
  // them with everything else.
  quarantined_chunks_.insert(quarantined_chunks_.end(), live_chunks_.begin(),
                             live_chunks_.end());
  live_chunks_.clear();
  pending_ranges_.clear();

  const std::uint64_t bytes_before = stats_.bytes_copied;
  draw_layout();
  flush_table(stackoff_addr_, staged_stackoff_);
  flush_table(functab_addr_, staged_functab_);
  flush_invalidations();
  // Guest-visible cost, mirroring the lazy-trap model: the copy loop at
  // `lazy_copy_cycles_per_word` per word (the invalidation routine rides
  // within it, as in the lazy scheme).
  const std::uint64_t words = (stats_.bytes_copied - bytes_before) / 4;
  return words * options_.lazy_copy_cycles_per_word;
}

std::uint64_t DsrRuntime::handle_lazy_trap(std::uint32_t id) {
  ++stats_.lazy_traps;
  if (id >= relocated_.size() || !is_real(id)) {
    throw DsrError("lazy trap with invalid function id");
  }
  if (relocated_[id]) {
    return 0; // lost race with an earlier call: table already updated
  }
  const std::uint32_t size = image_.functions().at(id).size_bytes;
  relocate(id);
  // Charge the on-line cost: copy loop plus the invalidation routine.
  const std::uint64_t words = size / 4;
  const std::uint64_t cycles = words * options_.lazy_copy_cycles_per_word;
  stats_.lazy_cycles += cycles;
  return cycles;
}

void DsrRuntime::attach(vm::Vm& cpu) {
  cpu.set_reloc_trap_sink(
      [this](std::uint32_t id) { return handle_lazy_trap(id); });
}

std::uint32_t DsrRuntime::entry_address() const {
  if (!initialised_) {
    throw DsrError("entry_address() before initialise()");
  }
  return current_address_.at(entry_id_);
}

std::uint32_t DsrRuntime::function_address(std::uint32_t id) const {
  return current_address_.at(id);
}

std::uint32_t DsrRuntime::function_address(const std::string& name) const {
  return current_address_.at(image_.function(name).id);
}

std::uint32_t DsrRuntime::stack_offset(std::uint32_t id) const {
  return stack_offsets_.at(id);
}

} // namespace proxima::dsr
