// The DSR compiler pass — the compile-time half of the paper's contribution.
//
// Mirrors the Stabilizer-derived LLVM pass described in Section III.B:
//   1. *Code randomisation support*: every direct CALL is rewritten into an
//      indirect call through a per-function slot of the relocation table
//      (`__dsr_functab`), so the runtime can move functions anywhere.
//   2. *Stack randomisation support*: every function prologue's SAVE is
//      rewritten to add a per-function random offset — read from the
//      metadata table `__dsr_stackoff` — to the stack pointer *within the
//      SAVE instruction* (register form), keeping the update atomic and the
//      pointer always valid, exactly as Section III.B.2 requires.
//   3. *Metadata generation*: the two tables are emitted as data objects;
//      the runtime initialises them at program start-up / partition reboot.
//
// Optionally (lazy relocation, Section III.B.1) the pass also emits a
// per-function stub that traps into the runtime on first call; the paper's
// port chose the *eager* scheme because lazy relocation complicates
// worst-case memory consumption and WCET — our benches quantify that.
//
// The pass reserves %g6/%g7 as scratch, which the SPARC ABI sets aside for
// system software.
#pragma once

#include "isa/program.hpp"

#include <stdexcept>
#include <string>

namespace proxima::dsr {

class DsrError : public std::runtime_error {
public:
  explicit DsrError(const std::string& what) : std::runtime_error(what) {}
};

/// Relocation table symbol: one 32-bit slot per function, holding the
/// function's current address.
inline constexpr const char* kFunctabSymbol = "__dsr_functab";
/// Stack-offset table symbol: one 32-bit slot per function, holding the
/// random offset (multiple of 8) its prologue adds to the stack pointer.
inline constexpr const char* kStackoffSymbol = "__dsr_stackoff";
/// Name prefix of generated lazy-relocation stubs.
inline constexpr const char* kStubPrefix = "__dsr_stub_";

struct PassOptions {
  /// Rewrite direct calls to table-indirect calls (needed for relocation).
  bool indirect_calls = true;
  /// Rewrite prologues to apply the random stack offset.
  bool stack_offsets = true;
  /// Emit lazy-relocation stubs (first-call trap).  Off for the eager
  /// scheme the paper adopted.
  bool lazy_stubs = false;
};

struct PassReport {
  std::uint32_t calls_rewritten = 0;
  std::uint32_t prologues_rewritten = 0;
  std::uint32_t stubs_emitted = 0;
  std::uint32_t instructions_before = 0;
  std::uint32_t instructions_after = 0; // excludes stubs

  /// Static code-size overhead of the transformation (the paper measures
  /// <2% dynamic instruction overhead on the case study).
  double overhead_ratio() const {
    return instructions_before == 0
               ? 0.0
               : static_cast<double>(instructions_after) /
                         static_cast<double>(instructions_before) -
                     1.0;
  }
};

/// True if `name` denotes a pass-generated stub (excluded from relocation).
bool is_stub_name(const std::string& name);

/// Transform `program` in place.  Throws DsrError if the program already
/// defines the metadata symbols or contains malformed fixups.
PassReport apply_pass(isa::Program& program, const PassOptions& options = {});

} // namespace proxima::dsr
