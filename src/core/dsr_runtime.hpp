// The DSR runtime system — the run-time half of the paper's contribution.
//
// Responsibilities (Section III.B):
//   * at program start-up (and at every partition reboot), place each
//     function at a fresh random location drawn from a HeapLayers-style
//     code pool whose chunks start at a random offset within the L2 way
//     size — randomising the layout of every cache level and both TLBs;
//   * run the SPARC-v8-compliant invalidation routine after each copy,
//     because SPARC has no instruction/data coherence: stale IL1/L2 lines
//     covering the touched ranges must be written back and invalidated;
//   * initialise the per-function stack-offset table with random positive
//     multiples of 8 (doubleword alignment) below the way size;
//   * in the lazy scheme, answer first-call relocation traps (the paper's
//     port prefers the eager scheme; both are provided so the trade-off
//     can be measured).
#pragma once

#include "alloc/pool.hpp"
#include "core/dsr_pass.hpp"
#include "isa/linker.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "rng/random_source.hpp"
#include "vm/vm.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace proxima::dsr {

struct RuntimeOptions {
  /// Random-offset range.  The paper sets it to the *L2* way size (32 KiB):
  /// because the L1 way size divides it, one draw randomises the layout of
  /// the whole hierarchy (Section III.B.4).  The ablation bench shrinks it
  /// to the L1 way size (4 KiB) to show what that would lose.
  std::uint32_t offset_range = 32 * 1024;
  /// SPARC doubleword alignment for code and stack offsets.
  std::uint32_t alignment = 8;
  /// Pool chunk alignment: the platform's largest way size (the L2's),
  /// fixed regardless of the offset range under test, so the offset range
  /// alone controls how much of each cache's layout is randomised.
  std::uint32_t chunk_align = 32 * 1024;
  /// Eager relocation (all functions moved before execution) vs lazy
  /// (first-call trap).  Eager is what the paper's port implements.
  bool eager = true;
  /// Disable to isolate stack-offset randomisation (ablation A3).
  bool randomise_code = true;
  /// Disable to isolate code randomisation (ablation A3).
  bool randomise_stack = true;
  /// The cache invalidation routine of Section III.B.1.  Disabling it is a
  /// *failure injection*: stale-line fetches become coherence violations.
  bool run_invalidation_routine = true;
  /// MARDU-style reseed fast path: stage the metadata tables host-side and
  /// flush them as bulk word spans, and run the invalidation routine once
  /// over the coalesced touched ranges instead of per store.  Bit-identical
  /// to the per-word path (same RNG draws, same final memory/cache state,
  /// same Stats); disable to run the original per-word sequence, which the
  /// differential tests and bench compare against.
  bool batched_relocation = true;
  /// Guest region backing the code pool (disjoint from the linked image).
  alloc::Region code_pool{0x4100'0000, 32 * 1024 * 1024};
  /// Cycle cost per copied word charged to a lazy first-call relocation.
  std::uint32_t lazy_copy_cycles_per_word = 2;
};

class DsrRuntime {
public:
  struct Stats {
    std::uint64_t reseeds = 0; // initialise() + every rerandomise()
    std::uint64_t ondemand_reseeds = 0; // rerandomise_on_demand() calls
    std::uint64_t relocations = 0;
    std::uint64_t bytes_copied = 0;
    std::uint64_t lines_invalidated = 0;
    std::uint64_t lazy_traps = 0;
    std::uint64_t lazy_cycles = 0; // guest cycles charged to lazy traps
  };

  DsrRuntime(mem::GuestMemory& memory, mem::MemoryHierarchy& hierarchy,
             const isa::LinkedImage& image, rng::RandomSource& random,
             RuntimeOptions options = {});

  /// Start-up: build this run's random layout and fill the metadata
  /// tables.  Must run after the image is loaded, before execution.
  void initialise();

  /// Partition reboot: drop the previous layout and draw a fresh one from
  /// the continuing random stream.  Each call yields a new memory layout,
  /// which is how the measurement protocol obtains execution-time
  /// randomisation across runs (Section IV).
  void rerandomise();

  /// Mid-run reseed (the kDsrOnDemand arm): draw a fresh layout WITHOUT a
  /// partition reboot.  The outgoing copies are quarantined, not freed —
  /// in-flight guest code keeps executing its current (bit-identical) copy
  /// and picks up the new layout at its next function-table load, so no
  /// cache line over the old copies is invalidated (they are still valid
  /// code).  The new copies and the rewritten tables go through the same
  /// batched invalidation routine as a reboot.  Quarantined chunks are
  /// released (and their lines invalidated) by the next initialise().
  /// Returns the guest cycle charge for the copy loop, mirroring the lazy
  /// trap cost model (`lazy_copy_cycles_per_word` per copied word).
  std::uint64_t rerandomise_on_demand();

  /// Register the lazy-relocation trap handler on a core.
  void attach(vm::Vm& cpu);

  /// Where to start executing the program under this run's layout.
  std::uint32_t entry_address() const;

  /// Current address of function `id` (stub address if not yet relocated
  /// in the lazy scheme).
  std::uint32_t function_address(std::uint32_t id) const;
  std::uint32_t function_address(const std::string& name) const;

  /// This run's stack offset for function `id` (0 without a prologue or
  /// with stack randomisation disabled).
  std::uint32_t stack_offset(std::uint32_t id) const;

  /// Number of real (non-stub) functions under management.
  std::uint32_t managed_functions() const;

  const Stats& stats() const noexcept { return stats_; }
  const RuntimeOptions& options() const noexcept { return options_; }

private:
  void relocate(std::uint32_t id);
  std::uint64_t handle_lazy_trap(std::uint32_t id);
  void write_table_u32(std::uint32_t table_addr, std::uint32_t id,
                       std::uint32_t value);
  bool is_real(std::uint32_t id) const;

  /// The original reseed sequence: per-word table stores, one invalidation
  /// routine call per touched range, in draw order.  Kept as the
  /// differential baseline for the batched path.
  void initialise_per_word();
  /// Draw the new layout (stack offsets + relocations), staging table
  /// values host-side and collecting invalidation ranges.  Consumes the
  /// random stream in exactly the per-word order: per real function, the
  /// stack-offset draw, then the pool draws.
  void draw_layout();
  void relocate_batched(const isa::FunctionRecord& record);
  /// Flush one staged table as bulk word spans over the contiguous runs of
  /// ids written this round (one memory notification per run).
  void flush_table(std::uint32_t table_addr,
                   const std::vector<std::uint32_t>& values);
  /// Sort + coalesce the pending ranges (merging only adjacent/overlapping
  /// ranges) and run the invalidation routine once per merged range.  The
  /// line count is identical to per-range invalidation: a line, once
  /// invalidated, is never re-validated within one reseed, so each valid
  /// line in the union is counted exactly once either way.
  void flush_invalidations();

  mem::GuestMemory& memory_;
  mem::MemoryHierarchy& hierarchy_;
  const isa::LinkedImage& image_;
  rng::RandomSource& random_;
  RuntimeOptions options_;

  alloc::PageAllocator pages_;
  alloc::RandomObjectPool pool_;

  std::uint32_t functab_addr_ = 0;
  std::uint32_t stackoff_addr_ = 0;
  std::uint32_t entry_id_ = 0;
  std::vector<std::uint32_t> current_address_; // per id
  std::vector<std::uint32_t> stack_offsets_;   // per id
  std::vector<bool> relocated_;                // per id (lazy bookkeeping)
  /// Chunks handed out in the current round; their cache lines are
  /// invalidated on the next reboot (they go back to the pool, and stale
  /// code lines must never linger in the warm L2).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> live_chunks_;
  /// Chunks displaced by an on-demand reseed: still valid code (in-flight
  /// guest execution may be inside them), still allocated in the pool, so
  /// nothing rewrites them until the next reboot releases everything.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> quarantined_chunks_;
  std::vector<std::optional<std::uint32_t>> stub_of_; // id -> stub id
  // Batched-reseed staging (reused across reseeds to avoid reallocating).
  std::vector<std::uint32_t> staged_functab_;
  std::vector<std::uint32_t> staged_stackoff_;
  std::vector<bool> staged_valid_; // ids whose table slots get written
  std::vector<std::pair<std::uint32_t, std::uint32_t>> pending_ranges_;
  Stats stats_;
  bool initialised_ = false;
};

} // namespace proxima::dsr
