#include "control_task.hpp"

#include "isa/builder.hpp"
#include "rng/distributions.hpp"
#include "rng/splitmix.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

namespace proxima::casestudy {

using namespace proxima::isa;

namespace {

constexpr const char* kMatrixSym = "cs_matrix";
constexpr const char* kConstsSym = "cs_consts";
constexpr const char* kWavefrontSym = "cs_wavefront";
constexpr const char* kTelemetrySym = "cs_telemetry";
constexpr const char* kPacketsSym = "cs_packets";
constexpr const char* kCommandsSym = "cs_commands";
constexpr const char* kStatusSym = "cs_status";

constexpr std::uint32_t kL2WayBytes = 32 * 1024;
constexpr std::uint32_t kBlockBytes = 1024;
constexpr std::uint32_t kStatusBytes = 32;

// Every 8th replayed word (one packet) the recovery routine checkpoints
// its progress twice: to a stack slot (watchdog resume point) and to the
// telemetry mirror cell the spacecraft polls.  Two interleaved
// write-allocate streams thrash a direct-mapped L2 *only* when the two
// cells share a set — a 1-in-1024 placement.  kCotsBad pins exactly that
// congruence; DSR's random stack offsets dissolve it almost surely.
constexpr const char* kMirrorSym = "cs_mirror";
constexpr std::int32_t kProgressSlot = 64; // [sp + 64] inside the frame

// Fixed seeds for the persistent instrument state: the image init content
// and the host mirror are generated from the same streams.
constexpr std::uint64_t kTelemetryStateSeed = 0x7e1e6e7247;
constexpr std::uint64_t kPacketStateSeed = 0x9ac4e7;

void append_f64(std::vector<std::uint8_t>& bytes, double value) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 56; shift >= 0; shift -= 8) {
    bytes.push_back(static_cast<std::uint8_t>(bits >> shift));
  }
}

std::vector<std::uint8_t> telemetry_init_bytes(const ControlParams& params) {
  rng::SplitMix64 sm(kTelemetryStateSeed);
  std::vector<std::uint8_t> bytes(params.telemetry_bytes);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    if (i % 8 == 0) {
      const std::uint64_t word = sm.next();
      for (std::size_t b = 0; b < 8 && i + b < bytes.size(); ++b) {
        bytes[i + b] = static_cast<std::uint8_t>(word >> (56 - 8 * b));
      }
    }
  }
  return bytes;
}

std::vector<std::uint32_t> packet_init_words(const ControlParams& params) {
  rng::SplitMix64 sm(kPacketStateSeed);
  std::vector<std::uint32_t> words(params.packet_words, 0);
  for (std::uint32_t p = 0; p < params.packet_count(); ++p) {
    const std::uint32_t base = p * 8;
    words[base] = 0xa5000000u | p;
    std::uint32_t checksum = 0;
    for (std::uint32_t w = 1; w <= 6; ++w) {
      const std::uint32_t value = static_cast<std::uint32_t>(sm.next());
      words[base + w] = value;
      checksum ^= value;
    }
    words[base + 7] = checksum;
  }
  return words;
}

std::vector<std::uint8_t> matrix_init_bytes(const ControlParams& params) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(params.actuators * params.modes * 8);
  for (std::uint32_t a = 0; a < params.actuators; ++a) {
    for (std::uint32_t m = 0; m < params.modes; ++m) {
      append_f64(bytes, modes_matrix_entry(params, a, m));
    }
  }
  return bytes;
}

/// Countdown idiom: flags from (reg-1), then decrement, loop while > 0.
void loop_step(FunctionBuilder& fb, std::uint8_t counter,
               const std::string& label) {
  fb.subcci(counter, 1);
  fb.subi(counter, counter, 1);
  fb.bg(label);
}

Function build_control_main() {
  FunctionBuilder fb("control_main");
  fb.prologue(96);
  fb.call("control_step");
  fb.halt(); // one activation per partition start
  return std::move(fb).build();
}

Function build_control_step() {
  FunctionBuilder fb("control_step");
  fb.prologue(96);
  fb.call("elaborate_commands");
  fb.call("verify_matrix");     // integrity check right after use
  fb.call("process_telemetry"); // 12 KiB sweep: displaces the matrix in DL1
  fb.call("scan_packets");      // validation (+ rare recovery)
  fb.call("verify_matrix");     // post-interface integrity check
  fb.epilogue();
  return std::move(fb).build();
}

Function build_elaborate_commands(const ControlParams& params) {
  FunctionBuilder fb("elaborate_commands");
  fb.prologue(96);
  fb.load_address(kL0, kMatrixSym);
  fb.load_address(kL1, kWavefrontSym);
  fb.load_address(kL2, kCommandsSym);
  fb.load_address(kO5, kConstsSym);
  fb.ldf(10, kO5, 0);  // +limit
  fb.ldf(11, kO5, 8);  // -limit
  fb.li(kL3, static_cast<std::int32_t>(params.actuators));
  fb.label("act_loop");
  {
    fb.fitod(0, kG0); // accumulator = 0.0
    fb.li(kL4, static_cast<std::int32_t>(params.modes));
    fb.mov(kO0, kL1); // wavefront cursor
    fb.label("mac_loop");
    fb.ldf(1, kL0, 0);
    fb.ldf(2, kO0, 0);
    fb.fmuld(1, 1, 2);
    fb.faddd(0, 0, 1);
    fb.addi(kL0, kL0, 8);
    fb.addi(kO0, kO0, 8);
    loop_step(fb, kL4, "mac_loop");
    // Saturate to [-limit, +limit] (input-dependent branches).
    fb.fcmpd(0, 10);
    fb.branch(Opcode::kFble, "sat_hi_ok");
    fb.op3(Opcode::kFmovd, 0, 10, 0);
    fb.label("sat_hi_ok");
    fb.fcmpd(0, 11);
    fb.branch(Opcode::kFbge, "sat_lo_ok");
    fb.op3(Opcode::kFmovd, 0, 11, 0);
    fb.label("sat_lo_ok");
    fb.stf(0, kL2, 0);
    fb.addi(kL2, kL2, 8);
    loop_step(fb, kL3, "act_loop");
  }
  // FIR smoothing: y[a] = 0.75*y[a] + 0.25*y_sat[a-1], a = 1..A-1.
  fb.load_address(kL2, kCommandsSym);
  fb.ldf(12, kO5, 16); // 0.75
  fb.ldf(13, kO5, 24); // 0.25
  fb.ldf(4, kL2, 0);   // previous (pre-FIR) value
  fb.li(kL3, static_cast<std::int32_t>(params.actuators) - 1);
  fb.label("fir_loop");
  fb.addi(kL2, kL2, 8);
  fb.ldf(1, kL2, 0);
  fb.fmuld(2, 1, 12);
  fb.fmuld(3, 4, 13);
  fb.faddd(2, 2, 3);
  fb.stf(2, kL2, 0);
  fb.op3(Opcode::kFmovd, 4, 1, 0);
  loop_step(fb, kL3, "fir_loop");
  fb.epilogue();
  return std::move(fb).build();
}

/// Leaf telemetry mixers: o0 = chunk base, o1 = running state;
/// returns the new state in o0.  Three code variants (the interface
/// handlers of a real flight application are many and similar).
Function build_chunk_sum(const ControlParams& params, char variant) {
  FunctionBuilder fb(std::string("chunk_sum_") + variant);
  fb.li(kO2, static_cast<std::int32_t>(params.telemetry_chunk));
  fb.label("loop");
  fb.ldb(kO3, kO0, 0);
  switch (variant) {
  case 'a': // s = rotl(s + b, 1)
    fb.add(kO1, kO1, kO3);
    fb.slli(kO4, kO1, 1);
    fb.srli(kO5, kO1, 31);
    fb.op3(Opcode::kOr, kO1, kO4, kO5);
    break;
  case 'b': // s = rotl(s, 3) ^ b
    fb.slli(kO4, kO1, 3);
    fb.srli(kO5, kO1, 29);
    fb.op3(Opcode::kOr, kO1, kO4, kO5);
    fb.op3(Opcode::kXor, kO1, kO1, kO3);
    break;
  default: // 'c': s = rotl(s + 2*b, 5)
    fb.slli(kO4, kO3, 1);
    fb.add(kO1, kO1, kO4);
    fb.slli(kO4, kO1, 5);
    fb.srli(kO5, kO1, 27);
    fb.op3(Opcode::kOr, kO1, kO4, kO5);
    break;
  }
  fb.addi(kO0, kO0, 1);
  loop_step(fb, kO2, "loop");
  fb.mov(kO0, kO1);
  fb.ret_leaf();
  return std::move(fb).build();
}

Function build_process_telemetry(const ControlParams& params) {
  FunctionBuilder fb("process_telemetry");
  fb.prologue(96);
  // Byte window: chunk calls dispatched over the three mixing variants.
  fb.load_address(kL0, kTelemetrySym);
  fb.li(kL1, static_cast<std::int32_t>(params.telemetry_window /
                                       params.telemetry_chunk));
  fb.li(kL2, 0); // chunk index
  fb.li(kL3, 0); // state
  fb.label("chunk_loop");
  fb.mov(kO0, kL0);
  fb.mov(kO1, kL3);
  fb.opi(Opcode::kDivi, kO2, kL2, 3);
  fb.muli(kO3, kO2, 3);
  fb.sub(kO2, kL2, kO3); // chunk index mod 3
  fb.subcci(kO2, 0);
  fb.be("use_a");
  fb.subcci(kO2, 1);
  fb.be("use_b");
  fb.call("chunk_sum_c");
  fb.ba("chunk_done");
  fb.label("use_a");
  fb.call("chunk_sum_a");
  fb.ba("chunk_done");
  fb.label("use_b");
  fb.call("chunk_sum_b");
  fb.label("chunk_done");
  fb.mov(kL3, kO0);
  fb.addi(kL0, kL0, static_cast<std::int32_t>(params.telemetry_chunk));
  fb.addi(kL2, kL2, 1);
  fb.subcc(kL2, kL1);
  fb.bl("chunk_loop");
  // Word XOR pass over the full store.
  fb.load_address(kL0, kTelemetrySym);
  fb.li(kL1, static_cast<std::int32_t>(params.telemetry_bytes / 4));
  fb.li(kO3, 0);
  fb.label("word_loop");
  fb.ld(kO0, kL0, 0);
  fb.op3(Opcode::kXor, kO3, kO3, kO0);
  fb.addi(kL0, kL0, 4);
  loop_step(fb, kL1, "word_loop");
  fb.op3(Opcode::kXor, kL3, kL3, kO3);
  fb.load_address(kO1, kStatusSym);
  fb.st(kL3, kO1, 0);
  fb.epilogue();
  return std::move(fb).build();
}

Function build_verify_matrix(const ControlParams& params) {
  FunctionBuilder fb("verify_matrix");
  fb.prologue(96);
  fb.load_address(kL0, kMatrixSym);
  fb.li(kL1, static_cast<std::int32_t>(params.actuators * params.modes * 2));
  fb.li(kL2, 0);
  fb.label("vloop");
  fb.ld(kO0, kL0, 0);
  fb.op3(Opcode::kXor, kL2, kL2, kO0);
  fb.addi(kL0, kL0, 4);
  loop_step(fb, kL1, "vloop");
  fb.load_address(kO1, kStatusSym);
  fb.st(kL2, kO1, 16);
  fb.epilogue();
  return std::move(fb).build();
}

/// Leaf packet validators: o0 = packet base; returns the payload XOR in
/// o0.  Four handler variants selected by the packet type field.
Function build_validator(int type) {
  FunctionBuilder fb("validate_t" + std::to_string(type));
  // All four compute the same XOR over words +4..+24, in different orders
  // (XOR is commutative) — distinct code bodies, identical results.
  static constexpr std::int32_t kOrders[4][6] = {
      {4, 8, 12, 16, 20, 24},
      {24, 20, 16, 12, 8, 4},
      {4, 16, 8, 20, 12, 24},
      {12, 4, 20, 24, 8, 16},
  };
  fb.ld(kO1, kO0, kOrders[type][0]);
  for (int i = 1; i < 6; ++i) {
    fb.ld(kO2, kO0, kOrders[type][i]);
    fb.op3(Opcode::kXor, kO1, kO1, kO2);
  }
  fb.mov(kO0, kO1);
  fb.ret_leaf();
  return std::move(fb).build();
}

Function build_scan_packets(const ControlParams& params) {
  FunctionBuilder fb("scan_packets");
  fb.prologue(96);
  fb.load_address(kL0, kPacketsSym);
  fb.li(kL1, static_cast<std::int32_t>(params.packet_count()));
  fb.li(kL2, 0); // valid packets
  fb.li(kL5, 0); // recoveries
  fb.label("pkt_loop");
  fb.ld(kO1, kL0, 0); // header
  fb.andi(kO2, kO1, 3);
  fb.mov(kO0, kL0);
  fb.subcci(kO2, 1);
  fb.bl("use_t0"); // type 0
  fb.be("use_t1"); // type 1
  fb.subcci(kO2, 3);
  fb.bl("use_t2"); // type 2
  fb.call("validate_t3");
  fb.ba("have_ck");
  fb.label("use_t2");
  fb.call("validate_t2");
  fb.ba("have_ck");
  fb.label("use_t1");
  fb.call("validate_t1");
  fb.ba("have_ck");
  fb.label("use_t0");
  fb.call("validate_t0");
  fb.label("have_ck");
  fb.ld(kO1, kL0, 28); // stored checksum
  fb.subcc(kO0, kO1);
  fb.be("pkt_ok");
  // Corrupt packet: replay its 1 KiB block through the recovery path.
  fb.li(kO2, -static_cast<std::int32_t>(kBlockBytes));
  fb.op3(Opcode::kAnd, kO0, kL0, kO2); // block base (packets 1K-aligned)
  fb.call("recover_packets");
  fb.addi(kL5, kL5, 1);
  fb.ba("pkt_next");
  fb.label("pkt_ok");
  fb.addi(kL2, kL2, 1);
  fb.label("pkt_next");
  fb.addi(kL0, kL0, 32);
  loop_step(fb, kL1, "pkt_loop");
  fb.load_address(kO1, kStatusSym);
  fb.st(kL2, kO1, 4);
  fb.st(kL5, kO1, 8);
  fb.epilogue();
  return std::move(fb).build();
}

Function build_recover_packets(const ControlParams& params,
                               const ControlStackInfo& stack) {
  FunctionBuilder fb("recover_packets");
  // Frame sized so the COTS scratch ring lands 1 KiB-aligned (see
  // ControlStackInfo): 96-byte save area + 4 KiB scratch ring + padding.
  fb.prologue(stack.recover_frame);
  fb.li(kL4, static_cast<std::int32_t>(params.recovery_passes));
  fb.li(kL3, 0); // accumulator
  fb.li(kL6, 0); // ring offset: each pass replays into a fresh 1 KiB slot
  fb.load_address(kL5, kMirrorSym); // spacecraft-visible progress mirror
  fb.label("pass_loop");
  fb.mov(kL0, kI0);      // source: corrupt block base
  fb.addi(kL1, kSp, 96); // scratch ring base on the (randomised) stack
  fb.add(kL1, kL1, kL6);
  fb.li(kL2, static_cast<std::int32_t>(params.block_words()));
  fb.label("replay_loop");
  fb.ld(kO0, kL0, 0);
  fb.st(kO0, kL1, 0);
  fb.ld(kO1, kL1, 0);
  fb.add(kL3, kL3, kO1);
  // Per-packet checkpoint: resume point on the stack + telemetry mirror.
  fb.andi(kO4, kL2, 7);
  fb.subcci(kO4, 1);
  fb.bne("no_ckpt");
  fb.st(kL3, kSp, kProgressSlot);
  fb.st(kL3, kL5, 0);
  fb.label("no_ckpt");
  fb.addi(kL0, kL0, 4);
  fb.addi(kL1, kL1, 4);
  loop_step(fb, kL2, "replay_loop");
  fb.addi(kL6, kL6, static_cast<std::int32_t>(kBlockBytes));
  fb.andi(kL6, kL6,
          static_cast<std::int32_t>(stack.scratch_ring_bytes - 1));
  loop_step(fb, kL4, "pass_loop");
  fb.load_address(kO1, kStatusSym);
  fb.st(kL3, kO1, 12);
  fb.epilogue();
  return std::move(fb).build();
}

} // namespace

double modes_matrix_entry(const ControlParams& params, std::uint32_t actuator,
                          std::uint32_t mode) {
  (void)params;
  const std::int32_t hash =
      static_cast<std::int32_t>((actuator * 31 + mode * 17) % 97) - 48;
  return static_cast<double>(hash) / 64.0;
}

isa::Program build_control_program(const ControlParams& params) {
  if (params.telemetry_bytes % 4 != 0 ||
      params.telemetry_window > params.telemetry_bytes ||
      params.telemetry_window % params.telemetry_chunk != 0 ||
      params.telemetry_chunk == 0 ||
      params.telemetry_bytes % params.telemetry_chunk != 0) {
    throw std::invalid_argument("inconsistent telemetry geometry");
  }
  if (params.packet_words % params.block_words() != 0) {
    throw std::invalid_argument("packet words must fill whole blocks");
  }
  if (params.protocol_block >= params.block_count()) {
    throw std::invalid_argument("protocol block outside the packet buffer");
  }
  const ControlStackInfo stack;

  Program program;
  program.functions.push_back(build_control_main());
  program.functions.push_back(build_control_step());
  program.functions.push_back(build_elaborate_commands(params));
  program.functions.push_back(build_process_telemetry(params));
  program.functions.push_back(build_chunk_sum(params, 'a'));
  program.functions.push_back(build_chunk_sum(params, 'b'));
  program.functions.push_back(build_chunk_sum(params, 'c'));
  program.functions.push_back(build_verify_matrix(params));
  program.functions.push_back(build_scan_packets(params));
  for (int t = 0; t < 4; ++t) {
    program.functions.push_back(build_validator(t));
  }
  program.functions.push_back(build_recover_packets(params, stack));
  program.entry = "control_main";

  std::vector<std::uint8_t> matrix_bytes = matrix_init_bytes(params);
  program.data.push_back(DataObject{.name = kMatrixSym,
                                    .size = static_cast<std::uint32_t>(
                                        matrix_bytes.size()),
                                    .align = 64,
                                    .init = std::move(matrix_bytes)});

  std::vector<std::uint8_t> consts;
  append_f64(consts, params.command_limit);
  append_f64(consts, -params.command_limit);
  append_f64(consts, 0.75);
  append_f64(consts, 0.25);
  program.data.push_back(DataObject{
      .name = kConstsSym, .size = 32, .align = 64, .init = std::move(consts)});

  program.data.push_back(DataObject{
      .name = kWavefrontSym, .size = params.modes * 8, .align = 64});
  program.data.push_back(DataObject{.name = kTelemetrySym,
                                    .size = params.telemetry_bytes,
                                    .align = 64,
                                    .init = telemetry_init_bytes(params)});
  std::vector<std::uint8_t> packet_bytes;
  packet_bytes.reserve(params.packet_words * 4);
  for (const std::uint32_t word : packet_init_words(params)) {
    for (int shift = 24; shift >= 0; shift -= 8) {
      packet_bytes.push_back(static_cast<std::uint8_t>(word >> shift));
    }
  }
  program.data.push_back(DataObject{.name = kPacketsSym,
                                    .size = params.packet_words * 4,
                                    .align = kBlockBytes,
                                    .init = std::move(packet_bytes)});
  program.data.push_back(DataObject{
      .name = kCommandsSym, .size = params.actuators * 8, .align = 64});
  program.data.push_back(
      DataObject{.name = kStatusSym, .size = kStatusBytes, .align = 64});
  program.data.push_back(
      DataObject{.name = kMirrorSym, .size = 64, .align = 32});
  return program;
}

isa::LinkOptions control_layout(const ControlParams& params, Layout layout,
                                std::uint32_t stack_top) {
  (void)params;
  const ControlStackInfo stack;
  if (stack_top % kL2WayBytes != 0) {
    throw std::invalid_argument(
        "stack top must be 32K-aligned so the set arithmetic of the "
        "engineered layout holds");
  }
  const std::uint32_t ring = stack.scratch_addr(stack_top);
  const std::uint32_t ring_mod = ring % kL2WayBytes; // 27648 by construction
  // The COTS recovery progress word: its L2 set is the bad-and-rare target.
  const std::uint32_t progress_line =
      (stack.progress_addr(stack_top) % kL2WayBytes) & ~31u; // 27616

  // The persistent data (12K matrix + 12K telemetry + 8K packets) fills the
  // 32 KiB L2 way exactly; placement decides what the recovery scratch ring
  // aliases with.  R is a 32K-aligned region away from the default bases.
  LinkOptions options;
  const std::uint32_t region = 0x4019'0000; // 32K-aligned
  switch (layout) {
  case Layout::kCotsBad:
    // The paper's bad-and-rare layout: the matrix occupies the way's last
    // 12 KiB — exactly where the (deterministic) scratch ring lives.  A
    // corrupt-input activation dirties 4 KiB of matrix-congruent sets, and
    // the following verify_matrix sweep pays for every line.
    options.placement[kTelemetrySym] = region + 0;       // sets 0..12287
    options.placement[kPacketsSym] = region + 12288;     // 12288..20479
    options.placement[kMatrixSym] = region + 20480;      // 20480..32767
    // Hot small data parked inside the ring's set range: untouched except
    // during recoveries.
    options.placement[kConstsSym] = region + 0x8000 + ring_mod + 1024;
    options.placement[kWavefrontSym] = region + 0x8000 + ring_mod + 1088;
    options.placement[kCommandsSym] = region + 0x8000 + ring_mod + 1472;
    options.placement[kStatusSym] = region + 0x8000 + ring_mod + 1728;
    // The telemetry mirror cell shares its L2 set with the (deterministic)
    // recovery progress word: a 1-in-1024 placement — bad and rare.
    options.placement[kMirrorSym] = region + 0x10000 + progress_line;
    break;
  case Layout::kNeutral:
    // Same buffers, rotated so the ring aliases the packet buffer instead
    // (read once per activation): the corrupt-run damage is far smaller.
    options.placement[kMatrixSym] = region + 31744; // wraps: 31744..11263
    options.placement[kTelemetrySym] = region + 0x8000 + 11264;
    options.placement[kPacketsSym] = region + 0x8000 + 23552;
    options.placement[kConstsSym] = region + 0x18000 + 11264;
    options.placement[kWavefrontSym] = region + 0x18000 + 11328;
    options.placement[kCommandsSym] = region + 0x18000 + 11712;
    options.placement[kStatusSym] = region + 0x18000 + 11968;
    options.placement[kMirrorSym] = region + 0x18000 + 12032;
    break;
  }
  // COTS code sits over the telemetry sets (swept twice per activation):
  // every run's cold instruction fetches must refill from DRAM, giving the
  // slightly higher steady-state miss ratio Table I shows for the COTS
  // binary.  The neutral layout parks code over the packet sets instead.
  options.code_base =
      layout == Layout::kCotsBad ? 0x4000'0000 : 0x4000'5C00;
  return options;
}

ControlInputs initial_control_inputs(const ControlParams& params) {
  ControlInputs inputs;
  inputs.wavefront.assign(params.modes, 0.0);
  inputs.telemetry = telemetry_init_bytes(params);
  inputs.packets = packet_init_words(params);
  inputs.corrupt = false;
  inputs.telemetry_dirty_bytes = 0;
  inputs.packets_dirty = false;
  inputs.chunk_cursor = 0;
  return inputs;
}

void mark_control_inputs_fully_dirty(ControlInputs& inputs) {
  inputs.telemetry_dirty_offset = 0;
  inputs.telemetry_dirty_bytes =
      static_cast<std::uint32_t>(inputs.telemetry.size());
  inputs.packets_dirty = true;
}

void refresh_control_inputs(rng::RandomSource& random,
                            const ControlParams& params, ControlInputs& io) {
  for (double& w : io.wavefront) {
    w = rng::sample_normal(random, 0.0, 1.0);
  }
  // One fresh telemetry chunk, rotating through the store.
  io.telemetry_dirty_offset = io.chunk_cursor;
  io.telemetry_dirty_bytes = params.telemetry_chunk;
  for (std::uint32_t i = 0; i < params.telemetry_chunk; i += 4) {
    const std::uint32_t word = random.next_u32();
    for (std::uint32_t b = 0; b < 4; ++b) {
      io.telemetry[io.chunk_cursor + i + b] =
          static_cast<std::uint8_t>(word >> (24 - 8 * b));
    }
  }
  io.chunk_cursor =
      (io.chunk_cursor + params.telemetry_chunk) % params.telemetry_bytes;
  // Re-stage the protocol's mode-change block with fresh packets.
  const std::uint32_t block_first_word =
      params.protocol_block * params.block_words();
  const std::uint32_t packets_per_block = params.block_words() / 8;
  const std::uint32_t first_packet = block_first_word / 8;
  for (std::uint32_t p = 0; p < packets_per_block; ++p) {
    const std::uint32_t base = (first_packet + p) * 8;
    io.packets[base] = 0xa5000000u | (first_packet + p);
    std::uint32_t checksum = 0;
    for (std::uint32_t w = 1; w <= 6; ++w) {
      const std::uint32_t value = random.next_u32();
      io.packets[base + w] = value;
      checksum ^= value;
    }
    io.packets[base + 7] = checksum;
  }
  io.packets_dirty = true;
  io.corrupt = random.next_double() < params.corrupt_rate;
  if (io.corrupt) {
    const std::uint32_t victim =
        first_packet + random.next_below(packets_per_block);
    io.packets[victim * 8 + 3] ^= 0x10u; // payload bit flip
  }
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
stage_control_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
                     const ControlInputs& inputs) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> staged;
  const std::uint32_t wf = image.symbol(kWavefrontSym).addr;
  for (std::size_t m = 0; m < inputs.wavefront.size(); ++m) {
    memory.write_f64(wf + static_cast<std::uint32_t>(8 * m),
                     inputs.wavefront[m]);
  }
  staged.emplace_back(wf,
                      static_cast<std::uint32_t>(8 * inputs.wavefront.size()));

  if (inputs.telemetry_dirty_bytes != 0) {
    const std::uint32_t base =
        image.symbol(kTelemetrySym).addr + inputs.telemetry_dirty_offset;
    for (std::uint32_t i = 0; i < inputs.telemetry_dirty_bytes; ++i) {
      memory.write_u8(base + i,
                      inputs.telemetry[inputs.telemetry_dirty_offset + i]);
    }
    staged.emplace_back(base, inputs.telemetry_dirty_bytes);
  }

  if (inputs.packets_dirty) {
    // Only the protocol block is re-staged (the rest is persistent state);
    // locate it from the dirty packets themselves.
    const std::uint32_t packets_addr = image.symbol(kPacketsSym).addr;
    // Find the block by scanning for the refreshed header range: the
    // protocol block is fixed, so recompute its extent directly.
    // (All packets in the buffer share the layout; write the whole block.)
    // The caller's ControlParams are implicit in vector sizes.
    const std::uint32_t block_words = 256;
    const std::uint32_t blocks =
        static_cast<std::uint32_t>(inputs.packets.size()) / block_words;
    // The refreshed block is the one whose header timestamps changed; we
    // simply re-write the block that the params designate.  To stay
    // self-contained, rewrite every block whose first header matches the
    // refresh pattern — cheap: compare against memory.
    for (std::uint32_t blk = 0; blk < blocks; ++blk) {
      const std::uint32_t first = blk * block_words;
      bool differs = false;
      for (std::uint32_t w = 0; w < block_words && !differs; ++w) {
        if (memory.read_u32(packets_addr + 4 * (first + w)) !=
            inputs.packets[first + w]) {
          differs = true;
        }
      }
      if (!differs) {
        continue;
      }
      for (std::uint32_t w = 0; w < block_words; ++w) {
        memory.write_u32(packets_addr + 4 * (first + w),
                         inputs.packets[first + w]);
      }
      staged.emplace_back(packets_addr + 4 * first, block_words * 4);
    }
  }

  // Fresh run: clear outputs.
  const std::uint32_t status = image.symbol(kStatusSym).addr;
  for (std::uint32_t i = 0; i < kStatusBytes; i += 4) {
    memory.write_u32(status + i, 0);
  }
  staged.emplace_back(status, kStatusBytes);
  const std::uint32_t mirror = image.symbol(kMirrorSym).addr;
  memory.write_u32(mirror, 0);
  staged.emplace_back(mirror, 4);
  return staged;
}

ControlOutputs read_control_outputs(const mem::GuestMemory& memory,
                                    const isa::LinkedImage& image,
                                    const ControlParams& params) {
  ControlOutputs outputs;
  const std::uint32_t commands = image.symbol(kCommandsSym).addr;
  outputs.commands.resize(params.actuators);
  for (std::uint32_t a = 0; a < params.actuators; ++a) {
    outputs.commands[a] = memory.read_f64(commands + 8 * a);
  }
  const std::uint32_t status = image.symbol(kStatusSym).addr;
  outputs.telemetry_signature = memory.read_u32(status);
  outputs.packets_ok = memory.read_u32(status + 4);
  outputs.recoveries = memory.read_u32(status + 8);
  outputs.recovery_accumulator = memory.read_u32(status + 12);
  outputs.matrix_signature = memory.read_u32(status + 16);
  outputs.recovery_mirror = memory.read_u32(image.symbol(kMirrorSym).addr);
  return outputs;
}

ControlOutputs reference_control(const ControlParams& params,
                                 const ControlInputs& inputs) {
  ControlOutputs outputs;
  // elaborate_commands: MAC, saturation, FIR — in guest operation order.
  outputs.commands.resize(params.actuators);
  for (std::uint32_t a = 0; a < params.actuators; ++a) {
    double acc = 0.0;
    for (std::uint32_t m = 0; m < params.modes; ++m) {
      acc += modes_matrix_entry(params, a, m) * inputs.wavefront[m];
    }
    if (!(acc <= params.command_limit)) {
      acc = params.command_limit;
    }
    if (!(acc >= -params.command_limit)) {
      acc = -params.command_limit;
    }
    outputs.commands[a] = acc;
  }
  double previous = outputs.commands[0];
  for (std::uint32_t a = 1; a < params.actuators; ++a) {
    const double original = outputs.commands[a];
    outputs.commands[a] = original * 0.75 + previous * 0.25;
    previous = original;
  }
  // process_telemetry: chunk mixers over the window, then the word pass.
  std::uint32_t state = 0;
  const std::uint32_t chunks =
      params.telemetry_window / params.telemetry_chunk;
  const auto rotl = [](std::uint32_t v, int k) {
    return (v << k) | (v >> (32 - k));
  };
  for (std::uint32_t c = 0; c < chunks; ++c) {
    const std::uint32_t base = c * params.telemetry_chunk;
    switch (c % 3) {
    case 0:
      for (std::uint32_t i = 0; i < params.telemetry_chunk; ++i) {
        state = rotl(state + inputs.telemetry[base + i], 1);
      }
      break;
    case 1:
      for (std::uint32_t i = 0; i < params.telemetry_chunk; ++i) {
        state = rotl(state, 3) ^ inputs.telemetry[base + i];
      }
      break;
    default:
      for (std::uint32_t i = 0; i < params.telemetry_chunk; ++i) {
        state = rotl(state +
                         (static_cast<std::uint32_t>(
                              inputs.telemetry[base + i])
                          << 1),
                     5);
      }
      break;
    }
  }
  std::uint32_t words_xor = 0;
  for (std::size_t i = 0; i < inputs.telemetry.size(); i += 4) {
    std::uint32_t word = 0;
    for (std::size_t b = 0; b < 4; ++b) {
      word = (word << 8) | inputs.telemetry[i + b];
    }
    words_xor ^= word;
  }
  outputs.telemetry_signature = state ^ words_xor;
  // verify_matrix: XOR of the matrix words (both calls produce the same).
  std::uint32_t matrix_sig = 0;
  for (std::uint32_t a = 0; a < params.actuators; ++a) {
    for (std::uint32_t m = 0; m < params.modes; ++m) {
      const std::uint64_t bits =
          std::bit_cast<std::uint64_t>(modes_matrix_entry(params, a, m));
      matrix_sig ^= static_cast<std::uint32_t>(bits >> 32);
      matrix_sig ^= static_cast<std::uint32_t>(bits);
    }
  }
  outputs.matrix_signature = matrix_sig;
  // scan_packets / recover_packets.
  outputs.packets_ok = 0;
  outputs.recoveries = 0;
  outputs.recovery_accumulator = 0;
  for (std::uint32_t p = 0; p < params.packet_count(); ++p) {
    const std::uint32_t base = p * 8;
    std::uint32_t checksum = 0;
    for (std::uint32_t w = 1; w <= 6; ++w) {
      checksum ^= inputs.packets[base + w];
    }
    if (checksum == inputs.packets[base + 7]) {
      ++outputs.packets_ok;
    } else {
      ++outputs.recoveries;
      const std::uint32_t block_start =
          (base / params.block_words()) * params.block_words();
      std::uint32_t acc = 0;
      for (std::uint32_t pass = 0; pass < params.recovery_passes; ++pass) {
        for (std::uint32_t w = 0; w < params.block_words(); ++w) {
          acc += inputs.packets[block_start + w];
          if ((w & 7u) == 7u) {
            // Per-packet checkpoint: the mirror holds the running total.
            outputs.recovery_mirror = acc;
          }
        }
      }
      outputs.recovery_accumulator = acc;
    }
  }
  return outputs;
}

} // namespace proxima::casestudy
