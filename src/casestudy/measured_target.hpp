// The measured target of a campaign: the program whose unit of analysis
// the protocol instruments, randomises, measures and verifies.
//
// PR 1-4 hard-coded "the control task is the thing we measure" into the
// campaign runner; this interface extracts everything that was
// control-task-specific — program generation + UoA instrumentation, the
// engineered link layout, the per-activation input mirror, DMA-style
// staging, and the golden-model check — so that any registered task can be
// the unit of analysis.  The runner (campaign_runner.cpp / hv_runner.cpp)
// keeps the parts that are target-INdependent: seed derivation, the
// randomisation arms, the flush/warm-up/measure protocol, the cyclic
// schedule and the trace extraction.
//
// Two implementations ship:
//   ControlTarget — the paper's high-criticality control task
//                   (UoA `control_step`): constant work per activation,
//                   streamed persistent instrument state (telemetry
//                   rotation, protocol block) replayed across shard skips;
//   ImageTarget   — the image-processing task (UoA `image_step`): a fresh
//                   sensor frame per activation, no persistent state, and
//                   — the property that makes it the second case-study
//                   axis — *input-dependent duration* (only the lit ~70%
//                   of lenses are processed, so operation-mode times vary
//                   with the input, not just the platform).
//
// Determinism contract (inherited from campaign_runner.hpp): every method
// must be a pure function of (config, activation index) — a target draws
// randomness only from generators seeded via `exec::derive_run_seed`, so
// two runner instances advancing a target over the same ascending
// activation sequence stage bit-identical guest state.
#pragma once

#include "casestudy/campaign.hpp"
#include "isa/linker.hpp"
#include "isa/program.hpp"
#include "mem/guest_memory.hpp"
#include "rng/mwc.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace proxima::casestudy {

/// Stack top of the measured program on the measurement platform (1 KiB
/// aligned).  Shared by the bare protocol and the hypervisor campaign's
/// warm-up/measured partition: the test-locked hv/control-solo ==
/// control/analysis-cots bit-equivalence depends on both using it.
inline constexpr std::uint32_t kControlStackTop = 0x4080'0000;

class MeasuredTarget {
public:
  virtual ~MeasuredTarget() = default;

  virtual MeasuredTargetKind kind() const noexcept = 0;
  /// Report label: "control" / "image".
  std::string_view name() const noexcept {
    return measured_target_name(kind());
  }
  /// The instrumented unit-of-analysis symbol ("control_step" /
  /// "image_step").
  virtual const char* uoa_symbol() const noexcept = 0;
  /// Documented workload property: does one activation's duration depend
  /// on the input VALUES (not just the platform state)?  True for the
  /// image task (lit-lens selection); false for the control task (constant
  /// work, only the corrupt-packet recovery path varies).  Analysis-mode
  /// campaigns over an input-dependent target should pin the inputs
  /// (`CampaignConfig::fixed_inputs`) so MBPTA sees platform variability
  /// only.
  virtual bool input_dependent_duration() const noexcept = 0;

  /// Build the target program with its UoA instrumented.  The runner
  /// applies the DSR pass on top for kDsr campaigns.
  virtual isa::Program build_program() const = 0;
  /// Link options realising the configured base layout (the engineered
  /// COTS/neutral placement for the control task; the plain sequential
  /// layout for the image task).  The runner overlays
  /// `CampaignConfig::function_order` afterwards.
  virtual isa::LinkOptions layout_options() const = 0;
  /// Stack top of the measured program (1 KiB aligned).
  virtual std::uint32_t stack_top() const noexcept = 0;

  /// Advance the host-side input mirror to global activation `activation`.
  /// Called with strictly ascending indices per runner; replays any
  /// skipped refreshes so persistent state matches the sequential
  /// protocol (shard-skip contract).
  virtual void advance_inputs(std::uint64_t activation) = 0;
  /// Write the current activation's inputs into guest memory DMA-style.
  /// `full_resync` forces the complete persistent state (after a shard
  /// skip or a re-flash the incremental dirty ranges no longer cover the
  /// guest/mirror difference).  Returns the staged (addr, length) ranges;
  /// the caller invalidates them in the cache hierarchy (LEON3 DMA is not
  /// cache-coherent).
  virtual std::vector<std::pair<std::uint32_t, std::uint32_t>>
  stage_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
               bool full_resync) = 0;
  /// Whether the staged activation carries the corrupt-input variant
  /// (sample labelling; always false for targets without a corruption
  /// concept).
  virtual bool corrupt_input() const noexcept { return false; }
  /// Golden-model check of the last measured activation's outputs; false
  /// on divergence (the runner turns it into a campaign fault).
  virtual bool verify(const mem::GuestMemory& memory,
                      const isa::LinkedImage& image) const = 0;

  /// Data symbols that make up the target's externally observable output —
  /// the record another partition, the telemetry downlink or the host
  /// reads back.  These become the *sinks* of the address-leak analysis
  /// (static pass and dynamic taint mode): a layout-derived value stored
  /// into one of these objects is a leak (ISSUE/ROADMAP item 4).
  virtual std::vector<std::string> observable_symbols() const = 0;
};

/// Target for `config.measured`.  The returned target keeps a reference to
/// `config`, which must outlive it (the runner owns both).
std::unique_ptr<MeasuredTarget> make_measured_target(
    const CampaignConfig& config);

} // namespace proxima::casestudy
