// Per-worker campaign execution: one isolated platform instance (guest
// memory + cache hierarchy + VM + trace buffer + DSR runtime) plus the
// per-run measurement protocol of Section IV, split into the
// setup / execute / collect stages the parallel engine drives.
//
// The runner is target-agnostic: everything specific to the program under
// measurement (generation + UoA instrumentation, base layout, input
// mirror, staging, golden model) lives behind `casestudy::MeasuredTarget`
// (measured_target.hpp), selected by `CampaignConfig::measured`.  The
// runner owns the protocol itself — seed derivation, the randomisation
// arms, flush/warm-up/measure, trace extraction — identically for every
// target.
//
// Determinism contract
// --------------------
// Every measured run is a *pure function of its global activation index*:
// the input vector and the layout (DSR relocation, static re-link, hardware
// cache reseed) are drawn from generators seeded via
// `exec::derive_run_seed(seed, stream, index)`, and the platform state a
// run observes is rebuilt by the protocol itself (full cache flush,
// same-layout warm-up activation, PikeOS-style L1 flush).  Two runners
// executing the same run index therefore produce bit-identical samples,
// which is what lets `exec::CampaignEngine` shard a campaign across
// workers and still match the sequential `run_control_campaign` exactly.
//
// A runner executes run indices in strictly ascending order.  Persistent
// target input state (the control task's telemetry rotation and protocol
// block) is replayed host-side across skipped indices, so a worker may own
// any ascending subset of [0, runs); after a skip the full instrument
// state is re-staged into guest memory so the guest's persistent stores
// match the host mirror exactly.
#pragma once

#include "casestudy/campaign.hpp"
#include "casestudy/measured_target.hpp"
#include "core/dsr_runtime.hpp"
#include "isa/linker.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "trace/trace.hpp"
#include "vm/taint.hpp"
#include "vm/vm.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace proxima::casestudy {

class CampaignRunner {
public:
  /// Build the platform: program generation, instrumentation, DSR pass,
  /// base link, image load, DSR runtime attach.  Deterministic for a given
  /// config, so every worker's platform is identical.  With
  /// `config.hypervisor` set, additionally link/load the guest partition
  /// images and register every partition on a `rtos::PartitionedPlatform`
  /// over the same core — measured runs then replay the cyclic schedule
  /// (hv_runner.cpp) instead of the bare protocol, with the identical
  /// stage API and determinism contract.
  explicit CampaignRunner(const CampaignConfig& config);

  /// Stage 1 — prepare measured run `run_index` (0-based, < config.runs):
  /// derive this run's seeds, apply the configured randomisation (partition
  /// reboot / re-link / cache reseed), advance the input stream to the
  /// run's global activation index, and stage the inputs DMA-style.
  /// Indices must be strictly ascending per runner.
  void setup(std::uint64_t run_index);

  /// Stage 2 — the measurement protocol proper: flush every level, run the
  /// unmeasured same-layout warm-up activation, apply the PikeOS partition
  /// start L1 flush, then run the measured activation.
  void execute();

  /// Stage 3 — extract the UoA time from the trace, snapshot the
  /// performance counters, and verify the guest outputs against the host
  /// golden model (throws on mismatch).
  RunSample collect();

  /// setup + execute + collect.
  RunSample run(std::uint64_t run_index);

  const CampaignConfig& config() const noexcept { return config_; }
  /// The program under measurement (selected by `config().measured`).
  const MeasuredTarget& target() const noexcept { return *target_; }
  const dsr::PassReport& pass_report() const noexcept { return pass_report_; }
  std::uint32_t code_bytes() const noexcept { return code_bytes_; }
  std::uint64_t verified_runs() const noexcept { return verified_runs_; }

  /// This runner's metrics shard (empty unless config().collect_metrics):
  /// per-run deltas folded at collect(), merged by the campaign driver
  /// into CampaignResult::metrics.
  const obs::MetricsShard& metrics() const noexcept { return metrics_; }

  /// The delta the LAST collected run contributed to `metrics()` (empty
  /// unless config().collect_metrics).  Valid until the next setup();
  /// the engine snapshots it per run when a persistence sink is attached,
  /// so the campaign store can replay exact per-run telemetry.  Counters,
  /// histograms and series in the delta are pure functions of the run
  /// index; gauge deltas (decode-cache activity, DSR invalidation counts)
  /// legitimately depend on what the previous run on this runner left
  /// behind — they are excluded from the metrics digest either way.
  const obs::MetricsShard& last_run_metrics() const noexcept {
    return run_metrics_;
  }

private:
  /// Partition reboot / re-link / cache reseed from an already-derived
  /// layout seed (the bare protocol derives it per run, the hv mode per
  /// partition — one switch serves both).
  void apply_randomisation(std::uint64_t layout_seed);
  void stage_inputs(std::uint64_t activation);
  /// DMA-coherence protocol for a freshly staged guest-memory range:
  /// LEON3 DMA is not cache-coherent, so every stage site (measured
  /// target and every hv guest app) must notify the hierarchy and
  /// invalidate the range through this one helper.
  void note_staged_range(std::uint32_t addr, std::uint32_t length);
  /// (Re-)declare the dynamic taint ranges on the VM: sinks from the
  /// measured target's observable symbols, sources from the DSR tables.
  /// No-op unless config_.taint; called again after a static re-link
  /// (every data object moves).
  void configure_taint_ranges();
  void verify_measured();
  [[noreturn]] void fault(const std::string& what) const;

  // Hypervisor-campaign engine room (hv_runner.cpp): guest partition
  // state, the PartitionedPlatform, and the schedule-replay protocol.
  struct HvState;
  void hv_build();
  void hv_setup(std::uint64_t activation);
  void hv_execute();
  RunSample hv_collect();

  // Observability (config_.collect_metrics / config_.timeline).  The
  // metric baselines are snapped at setup() entry and the deltas folded
  // into the shard at collect(), so construction-time work (initial
  // predecode, guest image loads) never reaches the merged counters and
  // every run's contribution is a pure function of its index — the
  // property obs::metrics_digest certifies across worker counts.
  void obs_begin_run();
  /// Re-base the instruction-mix snapshot at the point the hierarchy
  /// counters reset (after the unmeasured warm-up activation), so
  /// `vm.mix.*` attributes exactly the instructions the `mem.*` counters
  /// describe.
  void obs_rebase_mix();
  void obs_publish_run(const RunSample& sample);
  /// hv only (hv_runner.cpp): per-partition counters, frame-occupancy
  /// histogram, and simulated-time partition spans on the timeline.
  void hv_publish_obs();

  CampaignConfig config_;
  std::unique_ptr<MeasuredTarget> target_; // input mirror lives here
  dsr::PassReport pass_report_;
  isa::Program program_;
  std::unique_ptr<rng::RandomSource> layout_rng_;
  isa::LinkedImage image_;
  std::uint32_t code_bytes_ = 0;

  mem::GuestMemory memory_;
  mem::MemoryHierarchy hierarchy_;
  vm::Vm cpu_;
  trace::TraceBuffer trace_buffer_;
  std::unique_ptr<dsr::DsrRuntime> runtime_;

  /// Last activation whose input state was staged into guest memory; a
  /// non-consecutive successor forces a full state re-sync.
  std::optional<std::uint64_t> staged_activation_;

  std::optional<std::uint64_t> current_run_; // set by setup, used by stages
  bool executed_ = false;
  std::uint64_t verified_runs_ = 0;

  obs::MetricsShard metrics_;
  /// Scratch shard the obs_* hooks publish into; folded into `metrics_`
  /// at the end of obs_publish_run and exposed via last_run_metrics().
  obs::MetricsShard run_metrics_;
  std::vector<std::uint64_t> mix_;      // per-opcode counters (live array)
  std::vector<std::uint64_t> mix_base_; // snapshot at setup() entry
  dsr::DsrRuntime::Stats dsr_base_;
  vm::DecodeCache::Stats decode_base_;
  vm::TaintStats taint_base_; // leak.* window baseline (config_.taint)
  // shared_ptr for its type-erased deleter: HvState stays incomplete
  // outside hv_runner.cpp.  Never actually shared.
  std::shared_ptr<HvState> hv_; // null on the bare platform
};

} // namespace proxima::casestudy
