#include "stressor_task.hpp"

#include "isa/builder.hpp"

#include <stdexcept>

namespace proxima::casestudy {

using namespace proxima::isa;

namespace {

constexpr const char* kBufferSym = "st_buffer";
constexpr const char* kSaltSym = "st_salt";
constexpr const char* kStatusSym = "st_status";

void validate(const StressorParams& params) {
  if (params.stride < 4 || params.stride % 4 != 0) {
    throw std::invalid_argument("stressor stride must be a multiple of 4");
  }
  if (params.buffer_bytes == 0 || params.buffer_bytes % params.stride != 0) {
    throw std::invalid_argument(
        "stressor buffer must be a non-zero multiple of the stride");
  }
  if (params.passes == 0) {
    throw std::invalid_argument("stressor needs at least one pass");
  }
}

Function build_stress_main() {
  FunctionBuilder fb("stress_main");
  fb.prologue(96);
  fb.call("stress_sweep");
  fb.halt();
  return std::move(fb).build();
}

Function build_stress_sweep(const StressorParams& params) {
  FunctionBuilder fb("stress_sweep");
  fb.prologue(96);
  fb.load_address(kL0, kSaltSym);
  fb.ld(kL1, kL0, 0); // sig = salt
  fb.li(kL2, static_cast<std::int32_t>(params.passes));
  fb.label("pass_loop");
  fb.load_address(kL3, kBufferSym); // cursor
  fb.li(kL4, static_cast<std::int32_t>(params.touches()));
  fb.label("sweep_loop");
  fb.ld(kO0, kL3, 0); // one read per L2 line: pure eviction traffic
  fb.op3(Opcode::kXor, kL1, kL1, kO0);
  fb.muli(kL1, kL1, 5);
  fb.addi(kL1, kL1, 1);
  fb.addi(kL3, kL3, static_cast<std::int32_t>(params.stride));
  fb.subcci(kL4, 1);
  fb.subi(kL4, kL4, 1);
  fb.bg("sweep_loop");
  fb.subcci(kL2, 1);
  fb.subi(kL2, kL2, 1);
  fb.bg("pass_loop");
  fb.load_address(kO1, kStatusSym);
  fb.st(kL1, kO1, 0);
  fb.epilogue();
  return std::move(fb).build();
}

} // namespace

std::uint32_t stressor_word(std::uint32_t index) {
  // Knuth multiplicative hash: cheap, and every word differs, so a partial
  // sweep can never alias a full one in the signature.
  return index * 2654435761u ^ 0x5a5a5a5au;
}

isa::Program build_stressor_program(const StressorParams& params) {
  validate(params);
  Program program;
  program.functions.push_back(build_stress_main());
  program.functions.push_back(build_stress_sweep(params));
  program.entry = "stress_main";

  std::vector<std::uint8_t> buffer;
  buffer.reserve(params.buffer_bytes);
  for (std::uint32_t word = 0; word < params.buffer_bytes / 4; ++word) {
    const std::uint32_t value = stressor_word(word);
    buffer.push_back(static_cast<std::uint8_t>(value >> 24));
    buffer.push_back(static_cast<std::uint8_t>(value >> 16));
    buffer.push_back(static_cast<std::uint8_t>(value >> 8));
    buffer.push_back(static_cast<std::uint8_t>(value));
  }
  program.data.push_back(DataObject{.name = kBufferSym,
                                    .size = params.buffer_bytes,
                                    .align = 64,
                                    .init = std::move(buffer)});
  program.data.push_back(
      DataObject{.name = kSaltSym, .size = 4, .align = 64, .init = {}});
  program.data.push_back(
      DataObject{.name = kStatusSym, .size = 4, .align = 64, .init = {}});
  return program;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
stage_stressor_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
                      std::uint32_t salt) {
  const std::uint32_t salt_addr = image.symbol(kSaltSym).addr;
  const std::uint32_t status_addr = image.symbol(kStatusSym).addr;
  memory.write_u32(salt_addr, salt);
  memory.write_u32(status_addr, 0);
  return {{salt_addr, 4}, {status_addr, 4}};
}

StressorOutputs read_stressor_outputs(const mem::GuestMemory& memory,
                                      const isa::LinkedImage& image) {
  StressorOutputs outputs;
  outputs.signature = memory.read_u32(image.symbol(kStatusSym).addr);
  return outputs;
}

StressorOutputs reference_stressor(const StressorParams& params,
                                   std::uint32_t salt) {
  validate(params);
  std::uint32_t signature = salt;
  const std::uint32_t words_per_touch = params.stride / 4;
  for (std::uint32_t pass = 0; pass < params.passes; ++pass) {
    for (std::uint32_t touch = 0; touch < params.touches(); ++touch) {
      signature = (signature ^ stressor_word(touch * words_per_touch)) * 5 + 1;
    }
  }
  return StressorOutputs{signature};
}

} // namespace proxima::casestudy
