#include "campaign.hpp"

#include "casestudy/campaign_runner.hpp"

namespace proxima::casestudy {

CampaignResult run_control_campaign(const CampaignConfig& config) {
  // Thin sequential wrapper over the per-run protocol: one runner, runs
  // executed in order.  `exec::CampaignEngine` shards the same protocol
  // across workers and produces bit-identical results (see
  // campaign_runner.hpp for the determinism contract).
  CampaignRunner runner(config);
  CampaignResult result;
  result.times.reserve(config.runs);
  result.samples.reserve(config.runs);
  for (std::uint32_t run = 0; run < config.runs; ++run) {
    const RunSample sample = runner.run(run);
    result.times.push_back(sample.uoa_cycles);
    result.samples.push_back(sample);
  }
  result.pass_report = runner.pass_report();
  result.code_bytes = runner.code_bytes();
  result.verified_runs = runner.verified_runs();
  return result;
}

} // namespace proxima::casestudy
