#include "campaign.hpp"

#include "casestudy/campaign_runner.hpp"

#include <algorithm>

namespace proxima::casestudy {

CampaignResult run_control_campaign(const CampaignConfig& config) {
  // Thin sequential wrapper over the per-run protocol: one runner, runs
  // executed in order.  `exec::CampaignEngine` shards the same protocol
  // across workers and produces bit-identical results (see
  // campaign_runner.hpp for the determinism contract).
  CampaignRunner runner(config);
  CampaignResult result;
  result.times.reserve(config.runs);
  result.samples.reserve(config.runs);
  for (std::uint32_t run = 0; run < config.runs; ++run) {
    const RunSample sample = runner.run(run);
    result.times.push_back(sample.uoa_cycles);
    result.samples.push_back(sample);
  }
  result.pass_report = runner.pass_report();
  result.code_bytes = runner.code_bytes();
  result.verified_runs = runner.verified_runs();
  if (config.collect_metrics) {
    result.metrics = runner.metrics();
  }
  return result;
}

std::vector<trace::PartitionSeries>
partition_series(std::span<const RunSample> samples) {
  std::vector<trace::PartitionSeries> series;
  for (const RunSample& sample : samples) {
    for (const PartitionActivity& activity : sample.partitions) {
      auto it = std::find_if(series.begin(), series.end(),
                             [&](const trace::PartitionSeries& s) {
                               return s.partition == activity.partition;
                             });
      if (it == series.end()) {
        series.push_back(trace::PartitionSeries{activity.partition, {}, 0});
        it = series.end() - 1;
      }
      it->cycles.insert(it->cycles.end(), activity.cycles.begin(),
                        activity.cycles.end());
      it->overruns += activity.overruns;
    }
  }
  return series;
}

} // namespace proxima::casestudy

