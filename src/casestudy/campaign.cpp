#include "campaign.hpp"

#include "core/static_rand.hpp"
#include "isa/linker.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "rng/lfsr.hpp"
#include "rng/mwc.hpp"
#include "trace/trace.hpp"
#include "vm/vm.hpp"

#include <memory>
#include <sstream>
#include <stdexcept>

namespace proxima::casestudy {

namespace {

constexpr std::uint32_t kStackTop = 0x4080'0000; // 1 KiB aligned

std::unique_ptr<rng::RandomSource> make_prng(PrngKind kind,
                                             std::uint64_t seed) {
  if (kind == PrngKind::kLfsr) {
    return std::make_unique<rng::Lfsr>(seed);
  }
  return std::make_unique<rng::Mwc>(seed);
}

[[noreturn]] void campaign_fault(std::uint32_t run, const std::string& what) {
  std::ostringstream oss;
  oss << "campaign run " << run << ": " << what;
  throw std::runtime_error(oss.str());
}

} // namespace

CampaignResult run_control_campaign(const CampaignConfig& config) {
  CampaignResult result;
  result.times.reserve(config.runs);
  result.samples.reserve(config.runs);

  const auto layout_options = [&] {
    isa::LinkOptions options =
        control_layout(config.control, config.layout, kStackTop);
    options.function_order = config.function_order;
    return options;
  };

  // ---- build & link ------------------------------------------------------
  isa::Program program = build_control_program(config.control);
  trace::instrument_function(program, "control_step");
  const bool use_dsr = config.randomisation == Randomisation::kDsr;
  if (use_dsr) {
    result.pass_report = dsr::apply_pass(program, config.pass_options);
  }

  std::unique_ptr<rng::RandomSource> layout_rng =
      make_prng(config.prng, config.layout_seed);
  rng::Mwc input_rng(config.input_seed);

  isa::LinkedImage image = isa::link(program, layout_options());
  result.code_bytes = image.code_bytes();

  // ---- platform -----------------------------------------------------------
  mem::GuestMemory memory;
  const bool hw_random = config.randomisation == Randomisation::kHardware;
  mem::MemoryHierarchy hierarchy(hw_random
                                     ? mem::leon3_hw_randomised_config()
                                     : mem::leon3_hierarchy_config());
  hierarchy.set_strict_coherence(true); // any stale fetch is a campaign bug
  vm::Vm cpu(memory, hierarchy);
  trace::TraceBuffer trace_buffer;
  trace_buffer.attach(cpu);

  image.load_into(memory);
  std::unique_ptr<dsr::DsrRuntime> runtime;
  if (use_dsr) {
    runtime = std::make_unique<dsr::DsrRuntime>(memory, hierarchy, image,
                                                *layout_rng,
                                                config.dsr_options);
    runtime->initialise();
    runtime->attach(cpu);
  }

  // ---- measurement loop ----------------------------------------------------
  ControlInputs inputs = initial_control_inputs(config.control);
  const std::uint32_t total_runs = config.warmup_runs + config.runs;
  for (std::uint32_t run = 0; run < total_runs; ++run) {
    const bool measured = run >= config.warmup_runs;
    // (1) per-run randomisation (partition reboot / reseed / re-link).
    switch (config.randomisation) {
    case Randomisation::kNone:
      break;
    case Randomisation::kDsr:
      if (run != 0) {
        runtime->rerandomise();
      }
      break;
    case Randomisation::kStatic: {
      // A freshly linked binary with a random layout every run.
      const isa::LinkOptions random_options =
          dsr::random_layout(program, *layout_rng);
      image = isa::link(program, random_options);
      memory.clear();
      image.load_into(memory);
      hierarchy.flush_all(); // a re-flashed board starts cold
      inputs = initial_control_inputs(config.control);
      break;
    }
    case Randomisation::kHardware:
      hierarchy.reseed(config.layout_seed + run);
      hierarchy.flush_all(); // a new placement hash invalidates old sets
      break;
    }

    // (2) fresh inputs (or the pinned analysis vector), staged DMA-style:
    // the staged ranges must be invalidated explicitly (LEON3 DMA is not
    // cache-coherent).
    if (!config.fixed_inputs || run == 0) {
      refresh_control_inputs(input_rng, config.control, inputs);
    }
    const auto staged = stage_control_inputs(memory, image, inputs);
    for (const auto& [addr, length] : staged) {
      hierarchy.note_memory_written(addr, length);
      hierarchy.invalidate_range(addr, length);
    }

    // (3) well-defined initial state, independent across runs *by
    // construction* (the paper's own requirement): wipe every level, run
    // one unmeasured warm-up activation under THIS run's layout and
    // inputs, then apply the PikeOS partition-start L1 flush.  The
    // measured activation thus starts from a warm L2 whose contents are a
    // function of the current run only.
    const std::uint32_t entry =
        use_dsr ? runtime->entry_address() : image.entry_addr();
    hierarchy.flush_all();
    cpu.reset(entry, kStackTop);
    if (cpu.run().stop != vm::RunResult::Stop::kHalt) {
      campaign_fault(run, "warm-up activation did not halt");
    }
    hierarchy.flush_l1s();
    hierarchy.counters().reset();
    trace_buffer.clear();

    // (4) the measured activation.
    cpu.reset(entry, kStackTop);
    const vm::RunResult run_result = cpu.run();
    if (run_result.stop != vm::RunResult::Stop::kHalt) {
      campaign_fault(run, "activation did not halt");
    }

    // (5) extract the UoA time + counters (one invocation: the warm-up's
    // trace was cleared).
    const std::vector<double> times =
        trace::extract_execution_times(trace_buffer);
    if (times.size() != 1) {
      campaign_fault(run, "expected exactly one UoA invocation");
    }
    if (measured) {
      RunSample sample;
      sample.uoa_cycles = times.front();
      sample.corrupt_input = inputs.corrupt;
      sample.counters = hierarchy.counters();
      result.times.push_back(sample.uoa_cycles);
      result.samples.push_back(sample);
    }

    // (6) functional verification against the golden model.
    if (config.verify_outputs) {
      const ControlOutputs expected =
          reference_control(config.control, inputs);
      const ControlOutputs actual =
          read_control_outputs(memory, image, config.control);
      if (!(expected == actual)) {
        campaign_fault(run, "guest outputs diverge from the golden model");
      }
      ++result.verified_runs;
    }
  }
  return result;
}

} // namespace proxima::casestudy
