// Hypervisor-campaign mode of the CampaignRunner (Section IV's PikeOS
// setting): the measured target (CampaignConfig::measured) measured while
// guest partitions share the platform.
//
// Protocol per measured run (see HvCampaignConfig in campaign.hpp):
//   1. setup    — per-partition seed derivation: the measured partition's
//                 layout (DSR reboot / hardware cache reseed) and each
//                 guest's input stream draw from
//                 exec::derive_partition_seed of the run's global
//                 activation index, so the whole platform state is a pure
//                 function of the run index and the engine shards hv
//                 scenarios exactly like bare ones;
//   2. execute  — full platform wipe + the bare protocol's unmeasured
//                 same-layout warm-up of the measured program, then the
//                 cyclic schedule replayed from a fresh timeline: guests
//                 activate every minor frame, the measured partition once
//                 in the LAST frame (after the interference), with the
//                 hypervisor's partition-start L1 flushes;
//   3. collect  — the measured activation's UoA time from the trace is the
//                 run's sample; every partition's ActivationRecords become
//                 the run's PartitionActivity; measured and guest outputs
//                 are verified against their golden models.
//
// Seed-index freeze: exec::derive_partition_seed indices are fixed PER
// TASK KIND — control = 0, image = 1, stressor = 2 — never per
// registration order or measured role.  This is test-locked: it keeps
// every pre-existing scenario's random streams (and therefore its times
// digests) bit-identical across refactors, and it means promoting a guest
// to the measured slot (or vice versa) never shifts another partition's
// stream.
#include "casestudy/campaign_runner.hpp"

#include "exec/seed.hpp"
#include "obs/timeline.hpp"
#include "rng/mwc.hpp"
#include "rtos/platform.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace proxima::casestudy {

namespace {

// Guest image bases: above the DSR code pool (0x4100'0000 + 32 MiB).
constexpr std::uint32_t kImageCodeBase = 0x4300'0000;
constexpr std::uint32_t kImageDataBase = 0x4310'0000;
constexpr std::uint32_t kImageStackTop = 0x4480'0000;
constexpr std::uint32_t kStressorCodeBase = 0x4500'0000;
constexpr std::uint32_t kStressorDataBase = 0x4510'0000;
constexpr std::uint32_t kStressorStackTop = 0x4580'0000;
constexpr std::uint32_t kControlGuestCodeBase = 0x4600'0000;
constexpr std::uint32_t kControlGuestDataBase = 0x4610'0000;
constexpr std::uint32_t kControlGuestStackTop = 0x4680'0000;

/// Stable per-partition indices for exec::derive_partition_seed: fixed per
/// partition kind (not registration order, not measured role), so enabling
/// one guest — or changing which partition is measured — never shifts
/// another's random stream.
constexpr std::uint32_t kControlSeedIndex = 0;
constexpr std::uint32_t kImageSeedIndex = 1;
constexpr std::uint32_t kStressorSeedIndex = 2;
constexpr std::uint32_t kBeaconSeedIndex = 3;

constexpr const char* kStressorPartition = "stressor";

std::uint32_t measured_seed_index(MeasuredTargetKind kind) {
  switch (kind) {
  case MeasuredTargetKind::kImage:
    return kImageSeedIndex;
  case MeasuredTargetKind::kLeakyBeacon:
  case MeasuredTargetKind::kHardenedBeacon:
    return kBeaconSeedIndex;
  case MeasuredTargetKind::kControl:
    break;
  }
  return kControlSeedIndex;
}

isa::LinkOptions guest_link_options(std::uint32_t code_base,
                                    std::uint32_t data_base) {
  isa::LinkOptions options;
  options.code_base = code_base;
  options.data_base = data_base;
  return options;
}

} // namespace

struct CampaignRunner::HvState {
  /// The measured partition: a thin app over the runner's measured image.
  /// Inputs are staged by setup() (the same advance/stage path as the bare
  /// protocol), so activation start needs nothing beyond the entry point —
  /// which follows the DSR layout of the current run.
  class MeasuredApp final : public rtos::PartitionApp {
  public:
    explicit MeasuredApp(CampaignRunner& runner) : runner_(runner) {}
    std::uint32_t entry_address() override {
      // Queried at activation time, so an on-demand reseed earlier in the
      // schedule is picked up here.
      return uses_dsr(runner_.config_.randomisation)
                 ? runner_.runtime_->entry_address()
                 : runner_.image_.entry_addr();
    }
    std::uint32_t stack_top() override { return runner_.target_->stack_top(); }

  private:
    CampaignRunner& runner_;
  };

  /// The control task as an interference guest (the measured target is
  /// another partition): a fresh input refresh every minor frame.  The
  /// persistent instrument state restarts from the image's load-time
  /// contents each run — the per-run reseed plus a full first-activation
  /// re-stage keeps the whole guest a pure function of the run index, so
  /// the engine's sharding contract holds without cross-run host-side
  /// replay (unlike the measured control path, whose stream survives
  /// across runs).
  class ControlGuestApp final : public rtos::PartitionApp {
  public:
    ControlGuestApp(CampaignRunner& runner, const ControlParams& params)
        : runner_(runner), params_(params), rng_(1),
          image_(isa::link(build_control_program(params_),
                           guest_link_options(kControlGuestCodeBase,
                                              kControlGuestDataBase))),
          inputs_(initial_control_inputs(params_)) {
      image_.load_into(runner_.memory_);
      runner_.cpu_.predecode(image_.code_begin(),
                             image_.code_end() - image_.code_begin());
    }

    std::uint32_t entry_address() override { return image_.entry_addr(); }
    std::uint32_t stack_top() override { return kControlGuestStackTop; }

    void begin_run(std::uint64_t activation) {
      rng_.seed(exec::derive_partition_seed(runner_.config_.input_seed,
                                            exec::SeedStream::kInput,
                                            activation, kControlSeedIndex));
      inputs_ = initial_control_inputs(params_);
      full_stage_ = true; // guest memory still holds the previous run's state
      staged_ = false;
    }

    void before_activation(std::uint64_t) override {
      refresh_control_inputs(rng_, params_, inputs_);
      ControlInputs to_stage = inputs_;
      if (full_stage_) {
        mark_control_inputs_fully_dirty(to_stage);
        full_stage_ = false;
      }
      for (const auto& [addr, length] :
           stage_control_inputs(runner_.memory_, image_, to_stage)) {
        runner_.note_staged_range(addr, length);
      }
      staged_ = true;
    }

    /// Golden-model check of the most recent activation (its outputs are
    /// still resident when the run's schedule completes).
    void verify_last() const {
      if (!staged_) {
        return;
      }
      const ControlOutputs expected = reference_control(params_, inputs_);
      const ControlOutputs actual =
          read_control_outputs(runner_.memory_, image_, params_);
      if (!(expected == actual)) {
        runner_.fault("control guest outputs diverge from the golden model");
      }
    }

  private:
    CampaignRunner& runner_;
    ControlParams params_;
    rng::Mwc rng_;
    isa::LinkedImage image_;
    ControlInputs inputs_;
    bool full_stage_ = true;
    bool staged_ = false;
  };

  /// The image-processing task as a low-criticality guest: a fresh sensor
  /// frame every activation, drawn from this run's partition stream.
  class ImageGuestApp final : public rtos::PartitionApp {
  public:
    ImageGuestApp(CampaignRunner& runner, const ImageParams& params)
        : runner_(runner), params_(params), rng_(1),
          image_(isa::link(build_image_program(params_),
                           guest_link_options(kImageCodeBase,
                                              kImageDataBase))) {
      image_.load_into(runner_.memory_);
      runner_.cpu_.predecode(image_.code_begin(),
                             image_.code_end() - image_.code_begin());
    }

    std::uint32_t entry_address() override { return image_.entry_addr(); }
    std::uint32_t stack_top() override { return kImageStackTop; }

    void begin_run(std::uint64_t activation) {
      rng_.seed(exec::derive_partition_seed(runner_.config_.input_seed,
                                            exec::SeedStream::kInput,
                                            activation, kImageSeedIndex));
      staged_ = false;
    }

    void before_activation(std::uint64_t) override {
      inputs_ = make_image_inputs(rng_, params_);
      stage_image_inputs(runner_.memory_, image_, inputs_);
      runner_.note_staged_range(image_.symbol("im_frame").addr,
                                params_.frame_bytes());
      runner_.note_staged_range(image_.symbol("im_status").addr, 16);
      staged_ = true;
    }

    /// Golden-model check of the most recent activation (its outputs are
    /// still resident when the run's schedule completes).
    void verify_last() const {
      if (!staged_) {
        return;
      }
      const ImageOutputs expected = reference_image(params_, inputs_);
      const ImageOutputs actual =
          read_image_outputs(runner_.memory_, image_, params_);
      if (!(expected == actual)) {
        runner_.fault("image guest outputs diverge from the golden model");
      }
    }

  private:
    CampaignRunner& runner_;
    ImageParams params_;
    rng::Mwc rng_;
    isa::LinkedImage image_;
    ImageInputs inputs_;
    bool staged_ = false;
  };

  /// The synthetic L2-evicting sweep as a low-criticality guest.
  class StressorGuestApp final : public rtos::PartitionApp {
  public:
    StressorGuestApp(CampaignRunner& runner, const StressorParams& params)
        : runner_(runner), params_(params), rng_(1),
          image_(isa::link(build_stressor_program(params_),
                           guest_link_options(kStressorCodeBase,
                                              kStressorDataBase))) {
      image_.load_into(runner_.memory_);
      runner_.cpu_.predecode(image_.code_begin(),
                             image_.code_end() - image_.code_begin());
    }

    std::uint32_t entry_address() override { return image_.entry_addr(); }
    std::uint32_t stack_top() override { return kStressorStackTop; }

    void begin_run(std::uint64_t activation) {
      rng_.seed(exec::derive_partition_seed(runner_.config_.input_seed,
                                            exec::SeedStream::kInput,
                                            activation, kStressorSeedIndex));
      staged_ = false;
    }

    void before_activation(std::uint64_t) override {
      salt_ = rng_.next_u32();
      for (const auto& [addr, length] :
           stage_stressor_inputs(runner_.memory_, image_, salt_)) {
        runner_.note_staged_range(addr, length);
      }
      staged_ = true;
    }

    void verify_last() const {
      if (!staged_) {
        return;
      }
      const StressorOutputs expected = reference_stressor(params_, salt_);
      const StressorOutputs actual =
          read_stressor_outputs(runner_.memory_, image_);
      if (!(expected == actual)) {
        runner_.fault("stressor guest output diverges from the golden model");
      }
    }

  private:
    CampaignRunner& runner_;
    StressorParams params_;
    rng::Mwc rng_;
    isa::LinkedImage image_;
    std::uint32_t salt_ = 0;
    bool staged_ = false;
  };

  HvState(CampaignRunner& runner, const HvCampaignConfig& hv)
      : measured(runner),
        measured_partition(
            measured_partition_name(runner.config_.measured)),
        platform(runner.cpu_, runner.hierarchy_,
                 rtos::HypervisorConfig{hv.minor_frame_ms, hv.cycles_per_ms}) {
    if (hv.control_guest) {
      control.emplace(runner, runner.config_.control);
    }
    if (hv.image_guest) {
      image.emplace(runner, hv.image);
    }
    if (hv.stressor_guest) {
      stressor.emplace(runner, hv.stressor);
    }
    // The measured partition activates once per run, in the LAST minor
    // frame, so every guest activation of the run precedes the measured
    // one; high criticality still puts it first within that frame.
    const std::uint64_t period = std::uint64_t{hv.frames} * hv.minor_frame_ms;
    if (period > std::numeric_limits<std::uint32_t>::max()) {
      throw std::invalid_argument(
          "hypervisor campaign: frames * minor_frame_ms exceeds the 32-bit "
          "period range");
    }
    const auto period_ms = static_cast<std::uint32_t>(period);
    platform.add_partition(
        rtos::PartitionConfig{.name = measured_partition,
                              .period_ms = period_ms,
                              .offset_ms = period_ms - hv.minor_frame_ms,
                              .budget_ms = hv.measured_budget_ms,
                              .criticality = rtos::Criticality::kHigh},
        measured);
    if (control) {
      platform.add_partition(
          rtos::PartitionConfig{
              .name = measured_partition_name(MeasuredTargetKind::kControl),
              .period_ms = hv.minor_frame_ms,
              .budget_ms = hv.control_guest_budget_ms},
          *control);
    }
    if (image) {
      platform.add_partition(
          rtos::PartitionConfig{
              .name = measured_partition_name(MeasuredTargetKind::kImage),
              .period_ms = hv.minor_frame_ms,
              .budget_ms = hv.image_budget_ms},
          *image);
    }
    if (stressor) {
      platform.add_partition(
          rtos::PartitionConfig{.name = kStressorPartition,
                                .period_ms = hv.minor_frame_ms,
                                .budget_ms = hv.stressor_budget_ms},
          *stressor);
    }
  }

  MeasuredApp measured;
  std::string measured_partition;
  std::optional<ControlGuestApp> control;
  std::optional<ImageGuestApp> image;
  std::optional<StressorGuestApp> stressor;
  rtos::PartitionedPlatform platform;
  std::vector<rtos::ActivationRecord> records; // last executed schedule
};

void CampaignRunner::hv_build() {
  const HvCampaignConfig& hv = *config_.hypervisor;
  if (config_.randomisation == Randomisation::kStatic) {
    throw std::invalid_argument(
        "hypervisor campaigns do not support static re-link randomisation: "
        "a re-flash clears the guest partitions' images");
  }
  if (hv.frames == 0) {
    throw std::invalid_argument(
        "hypervisor campaigns need at least one minor frame per run");
  }
  // A task kind occupies one partition: the guest matching the measured
  // target would collide with it (same program, same partition name).
  if (config_.measured == MeasuredTargetKind::kControl && hv.control_guest) {
    throw std::invalid_argument(
        "hypervisor campaign: the control task is the measured partition; "
        "it cannot also run as an interference guest");
  }
  if (config_.measured == MeasuredTargetKind::kImage && hv.image_guest) {
    throw std::invalid_argument(
        "hypervisor campaign: the image task is the measured partition; "
        "it cannot also run as an interference guest");
  }
  hv_ = std::make_shared<HvState>(*this, hv);
  if (config_.randomisation == Randomisation::kDsrOnDemand) {
    // Hypervisor on-demand trigger: every granted partition activation
    // (every partition switch the schedule performs) reseeds the measured
    // partition's layout.  The reseed is the hypervisor's own work — host
    // side, charged to no partition budget; the measured partition picks
    // the fresh layout up through entry_address()/its function table.
    hv_->platform.set_activation_hook(
        [this] { (void)runtime_->rerandomise_on_demand(); });
  }
}

void CampaignRunner::hv_setup(std::uint64_t activation) {
  // Per-partition layout stream: the measured partition's reboot draws its
  // layout from its kind's fixed partition index of this run's derived
  // seeds (kStatic, the only arm a bare campaign adds, is rejected in
  // hv_build).  The measured partition's INPUTS keep the bare protocol's
  // run-seed stream — that equivalence is what makes hv/control-solo
  // bit-identical to control/analysis-cots.
  apply_randomisation(exec::derive_partition_seed(
      config_.layout_seed, exec::SeedStream::kLayout, activation,
      measured_seed_index(config_.measured)));
  target_->advance_inputs(activation);
  stage_inputs(activation);
  if (hv_->control) {
    hv_->control->begin_run(activation);
  }
  if (hv_->image) {
    hv_->image->begin_run(activation);
  }
  if (hv_->stressor) {
    hv_->stressor->begin_run(activation);
  }
}

void CampaignRunner::hv_execute() {
  const bool use_dsr = uses_dsr(config_.randomisation);
  const std::uint32_t entry =
      use_dsr ? runtime_->entry_address() : image_.entry_addr();

  // The bare protocol's platform rebuild: wipe every level, then run the
  // unmeasured same-layout warm-up activation of the measured program so
  // the measured partition's L2 state entering the schedule is a pure
  // function of this run alone.  The guests then perturb exactly that
  // state — hv/control-solo reproduces the bare analysis protocol, and the
  // guest scenarios differ from it by interference only.
  hierarchy_.flush_all();
  cpu_.reset(entry, target_->stack_top());
  if (cpu_.run().stop != vm::RunResult::Stop::kHalt) {
    fault("hv warm-up activation did not halt");
  }
  hierarchy_.counters().reset();
  obs_rebase_mix(); // warm-up instructions stay out of vm.mix.*
  trace_buffer_.clear();

  // Replay the cyclic schedule from a fresh timeline.  Partition-start L1
  // flushes are the hypervisor's own (PikeOS semantics).
  hv_->platform.reset_schedule();
  hv_->records = hv_->platform.run_frames(config_.hypervisor->frames);
}

RunSample CampaignRunner::hv_collect() {
  // The schedule carries exactly one instrumented activation: the measured
  // partition's, in the last minor frame (guests are not instrumented).
  const std::vector<double> times =
      trace::extract_execution_times(trace_buffer_);
  if (times.size() != 1) {
    fault("expected exactly one measured activation per schedule");
  }
  RunSample sample;
  sample.uoa_cycles = times.front();
  sample.corrupt_input = target_->corrupt_input();
  sample.counters = hierarchy_.counters(); // the whole schedule's traffic

  for (const std::string& name : hv_->platform.partition_names()) {
    sample.partitions.push_back(PartitionActivity{name, {}, 0});
  }
  bool measured_completed = false;
  for (const rtos::ActivationRecord& record : hv_->records) {
    const auto it =
        std::find_if(sample.partitions.begin(), sample.partitions.end(),
                     [&](const PartitionActivity& activity) {
                       return activity.partition == record.partition;
                     });
    it->cycles.push_back(static_cast<double>(record.cycles_used));
    if (record.overran) {
      ++it->overruns;
    }
    if (record.partition == hv_->measured_partition) {
      measured_completed = record.halted && !record.overran;
    }
  }
  if (!measured_completed) {
    fault("measured activation hit the budget fence");
  }

  if (config_.verify_outputs) {
    if (hv_->control) {
      hv_->control->verify_last();
    }
    if (hv_->image) {
      hv_->image->verify_last();
    }
    if (hv_->stressor) {
      hv_->stressor->verify_last();
    }
    verify_measured();
  }
  return sample;
}

void CampaignRunner::hv_publish_obs() {
  const HvCampaignConfig& hv = *config_.hypervisor;
  const std::uint64_t frame_cycles =
      std::uint64_t{hv.minor_frame_ms} * hv.cycles_per_ms;
  // Nominal budget fence of a partition, in ms (0 = the whole minor frame)
  // — partition names are unique per task kind (hv_build rejects the
  // measured kind doubling as a guest).
  const auto budget_ms_of = [&](const std::string& name) -> std::uint32_t {
    if (name == hv_->measured_partition) {
      return hv.measured_budget_ms;
    }
    if (name == measured_partition_name(MeasuredTargetKind::kControl)) {
      return hv.control_guest_budget_ms;
    }
    if (name == measured_partition_name(MeasuredTargetKind::kImage)) {
      return hv.image_budget_ms;
    }
    return hv.stressor_budget_ms; // kStressorPartition
  };
  // Timeline spans live on the SIMULATED clock: each measured run replays
  // `frames` minor frames from cycle 0, so consecutive runs are laid out
  // end to end at their schedule positions.
  const std::uint64_t run_base_ms =
      *current_run_ * std::uint64_t{hv.frames} * hv.minor_frame_ms;
  for (const rtos::ActivationRecord& record : hv_->records) {
    if (config_.collect_metrics) {
      const std::string prefix = "hv." + record.partition + ".";
      run_metrics_.add(prefix + "activations", 1);
      run_metrics_.add(prefix + "consumed_cycles", record.cycles_used);
      const std::uint32_t budget_ms = budget_ms_of(record.partition);
      run_metrics_.add(prefix + "granted_cycles",
                       std::uint64_t{budget_ms != 0 ? budget_ms
                                                    : hv.minor_frame_ms} *
                           hv.cycles_per_ms);
      if (record.overran) {
        run_metrics_.add(prefix + "overruns", 1);
      }
      run_metrics_.record(prefix + "frame_occupancy_pct",
                          record.cycles_used * 100 / frame_cycles);
    }
    if (config_.timeline != nullptr) {
      const double cycles_to_us = 1000.0 / static_cast<double>(hv.cycles_per_ms);
      config_.timeline->record(
          "partitions", record.partition,
          "run " + std::to_string(*current_run_) + " frame " +
              std::to_string(record.frame_index),
          static_cast<double>(run_base_ms) * 1000.0 +
              static_cast<double>(record.start_cycle) * cycles_to_us,
          static_cast<double>(record.cycles_used) * cycles_to_us);
    }
  }
}

} // namespace proxima::casestudy
