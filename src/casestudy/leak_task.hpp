// The address-leak beacon guest: the `leak/` scenario family's workload.
//
// A small telemetry-style task that checksums a staged input block and
// publishes a status record — with a deliberate flaw in the default
// variant: the "beacon" field of the status record is the function's own
// return address (%i7), i.e. a relocated code address.  Under DSR that
// single word hands an observer the randomised layout, exactly the
// address-disclosure failure mode that undoes ASLR-style defences; the
// static taint pass (src/analysis/) flags the store at build time and the
// VM's dynamic taint mode confirms it on real runs.  The hardened variant
// stores a build-id constant in the same field and is clean under both.
//
// The beacon field is excluded from the golden-model check on purpose:
// its value depends on the randomised layout, which is precisely what a
// host-side model cannot (and should not) predict — the realistic shape
// of such leaks is an unvalidated "debug" field.
#pragma once

#include "isa/linker.hpp"
#include "isa/program.hpp"
#include "mem/guest_memory.hpp"
#include "rng/mwc.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace proxima::casestudy {

struct LeakParams {
  /// Staged input words checksummed per activation.
  std::uint32_t words = 32;
  /// Checksum passes over the block (scales the UoA's work).
  std::uint32_t rounds = 4;
  /// Store the build-id constant instead of %i7 in the beacon field.
  bool hardened = false;
};

/// The value the hardened variant publishes in the beacon field.
inline constexpr std::uint32_t kLeakHardenedBeacon = 0x1ea4;

/// Build the beacon program.  Entry "leak_main"; the instrumentable UoA is
/// "leak_step".  Observable output object: "lk_status" (16 bytes).
isa::Program build_leak_program(const LeakParams& params = {});

struct LeakInputs {
  std::vector<std::uint32_t> block; // params.words entries

  friend bool operator==(const LeakInputs&, const LeakInputs&) = default;
};

/// Draw one activation's input block (pure function of the rng state).
LeakInputs make_leak_inputs(rng::Mwc& rng, const LeakParams& params);

/// DMA-style staging; returns the staged (addr, length) ranges for cache
/// invalidation, like the other tasks.
std::vector<std::pair<std::uint32_t, std::uint32_t>>
stage_leak_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
                  const LeakInputs& inputs);

struct LeakOutputs {
  std::uint32_t signature = 0;
  std::uint32_t count = 0;
  std::uint32_t version = 0;
  // NOTE: the beacon word (lk_status+4) is deliberately absent — it is the
  // leak channel, unpredictable by design under randomisation.

  friend bool operator==(const LeakOutputs&, const LeakOutputs&) = default;
};

LeakOutputs read_leak_outputs(const mem::GuestMemory& memory,
                              const isa::LinkedImage& image);

/// The raw beacon word (what an observer actually sees).
std::uint32_t read_leak_beacon(const mem::GuestMemory& memory,
                               const isa::LinkedImage& image);

/// Host-side golden model of the checked fields.
LeakOutputs reference_leak(const LeakParams& params, const LeakInputs& inputs);

} // namespace proxima::casestudy
