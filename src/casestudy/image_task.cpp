#include "image_task.hpp"

#include "isa/builder.hpp"

#include <bit>
#include <stdexcept>

namespace proxima::casestudy {

using namespace proxima::isa;

namespace {

constexpr const char* kFrameSym = "im_frame";
constexpr const char* kBrightSym = "im_bright";
constexpr const char* kWeightsSym = "im_weights";
constexpr const char* kWavefrontSym = "im_wavefront";
constexpr const char* kStatusSym = "im_status";

void append_f64(std::vector<std::uint8_t>& bytes, double value) {
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(value);
  for (int shift = 56; shift >= 0; shift -= 8) {
    bytes.push_back(static_cast<std::uint8_t>(bits >> shift));
  }
}

void loop_step(FunctionBuilder& fb, std::uint8_t counter,
               const std::string& label) {
  fb.subcci(counter, 1);
  fb.subi(counter, counter, 1);
  fb.bg(label);
}

Function build_image_main() {
  FunctionBuilder fb("image_main");
  fb.prologue(96);
  fb.call("image_step");
  fb.halt();
  return std::move(fb).build();
}

Function build_lens_brightness(const ImageParams& params) {
  // Leaf: o0 = lens base -> o0 = pixel sum.
  FunctionBuilder fb("lens_brightness");
  fb.li(kO2, 0);
  fb.li(kO1, static_cast<std::int32_t>(params.lens_bytes()));
  fb.label("b_loop");
  fb.ldb(kO3, kO0, 0);
  fb.add(kO2, kO2, kO3);
  fb.addi(kO0, kO0, 1);
  loop_step(fb, kO1, "b_loop");
  fb.mov(kO0, kO2);
  fb.ret_leaf();
  return std::move(fb).build();
}

Function build_process_lens(const ImageParams& params) {
  // o0 = lens base, o1 = lens index.
  const std::int32_t px = static_cast<std::int32_t>(params.lens_px);
  const std::int32_t window = static_cast<std::int32_t>(params.window);
  const std::int32_t corner = (px - window) / 2; // window top-left coord

  FunctionBuilder fb("process_lens");
  fb.prologue(96);
  // ---- phase 1: coarse integer centroid over the whole lens ----
  fb.mov(kL0, kI0); // pixel cursor
  fb.li(kL1, 0);    // y
  fb.li(kL2, 0);    // sum_x
  fb.li(kL3, 0);    // sum_y
  fb.li(kL4, 0);    // total
  fb.li(kL6, px);   // bound
  fb.label("cy_loop");
  fb.li(kL5, 0); // x
  fb.label("cx_loop");
  fb.ldb(kO2, kL0, 0);
  fb.mul(kO3, kO2, kL5);
  fb.add(kL2, kL2, kO3);
  fb.mul(kO3, kO2, kL1);
  fb.add(kL3, kL3, kO3);
  fb.add(kL4, kL4, kO2);
  fb.addi(kL0, kL0, 1);
  fb.addi(kL5, kL5, 1);
  fb.subcc(kL5, kL6);
  fb.bl("cx_loop");
  fb.addi(kL1, kL1, 1);
  fb.subcc(kL1, kL6);
  fb.bl("cy_loop");
  // cx, cy (total > 0: only lit lenses reach here, but guard div-by-zero
  // by forcing total >= 1).
  fb.subcci(kL4, 0);
  fb.bg("have_total");
  fb.li(kL4, 1);
  fb.label("have_total");
  fb.op3(Opcode::kDiv, kO2, kL2, kL4); // cx
  fb.op3(Opcode::kDiv, kO3, kL3, kL4); // cy
  // ---- phase 2: fine FP sub-pixel offset over the centre window ----
  fb.addi(kL0, kI0, corner + corner * px); // window cursor
  fb.fitod(4, kG0);                        // ox accumulator
  fb.fitod(5, kG0);                        // oy accumulator
  fb.fitod(6, kG0);                        // weight total
  fb.li(kL1, 0);                           // wy
  fb.li(kL7, window);                      // bound
  fb.label("fy_loop");
  fb.li(kL5, 0); // wx
  fb.label("fx_loop");
  fb.ldb(kO4, kL0, 0);
  fb.fitod(1, kO4); // pixel weight
  fb.addi(kO5, kL5, corner);
  fb.sub(kO5, kO5, kO2); // xrel = corner + wx - cx
  fb.fitod(2, kO5);
  fb.fmuld(2, 2, 1);
  fb.faddd(4, 4, 2);
  fb.addi(kO5, kL1, corner);
  fb.sub(kO5, kO5, kO3); // yrel = corner + wy - cy
  fb.fitod(3, kO5);
  fb.fmuld(3, 3, 1);
  fb.faddd(5, 5, 3);
  fb.faddd(6, 6, 1);
  fb.addi(kL0, kL0, 1);
  fb.addi(kL5, kL5, 1);
  fb.subcc(kL5, kL7);
  fb.bl("fx_loop");
  fb.addi(kL0, kL0, px - window); // next window row
  fb.addi(kL1, kL1, 1);
  fb.subcc(kL1, kL7);
  fb.bl("fy_loop");
  // Normalise: ox = f4/f6, oy = f5/f6 (all-dark window -> offsets 0).
  fb.fitod(0, kG0);
  fb.fcmpd(6, 0);
  fb.branch(Opcode::kFbne, "fine_div");
  fb.op3(Opcode::kFmovd, 4, 0, 0);
  fb.op3(Opcode::kFmovd, 5, 0, 0);
  fb.ba("fine_done");
  fb.label("fine_div");
  fb.fdivd(4, 4, 6);
  fb.fdivd(5, 5, 6);
  fb.label("fine_done");
  fb.op3(Opcode::kFmovd, 0, 4, 0); // f0 = ox
  fb.op3(Opcode::kFmovd, 1, 5, 0); // f1 = oy
  fb.mov(kO0, kI1);                // lens index
  fb.call("accumulate_modes");
  fb.epilogue();
  return std::move(fb).build();
}

Function build_accumulate_modes(const ImageParams& params) {
  // o0 = lens index, f0 = ox, f1 = oy.
  FunctionBuilder fb("accumulate_modes");
  fb.prologue(96);
  fb.faddd(2, 0, 1); // combined offset
  fb.load_address(kL0, kWeightsSym);
  fb.muli(kO1, kI0, static_cast<std::int32_t>(params.modes * 8));
  fb.add(kL0, kL0, kO1);
  fb.load_address(kL1, kWavefrontSym);
  fb.li(kL2, static_cast<std::int32_t>(params.modes));
  fb.label("m_loop");
  fb.ldf(3, kL0, 0);
  fb.fmuld(3, 3, 2);
  fb.ldf(4, kL1, 0);
  fb.faddd(4, 4, 3);
  fb.stf(4, kL1, 0);
  fb.addi(kL0, kL0, 8);
  fb.addi(kL1, kL1, 8);
  loop_step(fb, kL2, "m_loop");
  fb.epilogue();
  return std::move(fb).build();
}

Function build_image_step(const ImageParams& params) {
  FunctionBuilder fb("image_step");
  fb.prologue(96);
  // ---- brightness pass ----
  fb.li(kL1, 0); // lens index
  fb.li(kL3, 0); // max brightness
  fb.load_address(kL4, kBrightSym);
  fb.li(kL5, static_cast<std::int32_t>(params.lens_count()));
  fb.label("stats_loop");
  fb.muli(kO0, kL1, static_cast<std::int32_t>(params.lens_bytes()));
  fb.load_address(kO1, kFrameSym);
  fb.add(kO0, kO1, kO0);
  fb.call("lens_brightness"); // leaf: runs in this window
  fb.slli(kO1, kL1, 2);
  fb.stx(kO0, kL4, kO1);
  fb.subcc(kO0, kL3);
  fb.ble("not_max");
  fb.mov(kL3, kO0);
  fb.label("not_max");
  fb.addi(kL1, kL1, 1);
  fb.subcc(kL1, kL5);
  fb.bl("stats_loop");
  // threshold = max / 2
  fb.srli(kL3, kL3, 1);
  // ---- zero the wavefront accumulator ----
  fb.fitod(0, kG0);
  fb.load_address(kO1, kWavefrontSym);
  fb.li(kO2, static_cast<std::int32_t>(params.modes));
  fb.label("zero_loop");
  fb.stf(0, kO1, 0);
  fb.addi(kO1, kO1, 8);
  loop_step(fb, kO2, "zero_loop");
  // ---- selection + processing pass (the ~70% most-lit lenses) ----
  fb.li(kL1, 0);
  fb.li(kL6, 0); // processed count
  fb.label("proc_loop");
  fb.slli(kO1, kL1, 2);
  fb.ldx(kO0, kL4, kO1);
  fb.subcc(kO0, kL3);
  fb.bleu("skip_lens");
  fb.muli(kO0, kL1, static_cast<std::int32_t>(params.lens_bytes()));
  fb.load_address(kO1, kFrameSym);
  fb.add(kO0, kO1, kO0);
  fb.mov(kO1, kL1);
  fb.call("process_lens");
  fb.addi(kL6, kL6, 1);
  fb.label("skip_lens");
  fb.addi(kL1, kL1, 1);
  fb.subcc(kL1, kL5);
  fb.bl("proc_loop");
  fb.load_address(kO1, kStatusSym);
  fb.st(kL6, kO1, 0);
  fb.st(kL3, kO1, 4);
  fb.epilogue();
  return std::move(fb).build();
}

} // namespace

double image_weight(std::uint32_t lens, std::uint32_t mode) {
  const std::int32_t hash =
      static_cast<std::int32_t>((lens * 13 + mode * 7) % 31) - 15;
  return static_cast<double>(hash) / 16.0;
}

isa::Program build_image_program(const ImageParams& params) {
  if (params.window == 0 || params.window >= params.lens_px ||
      params.window % 2 == 0) {
    throw std::invalid_argument("fine window must be odd and < lens size");
  }
  if (params.lens_bytes() > 8191) {
    throw std::invalid_argument("lens too large for immediate addressing");
  }
  Program program;
  program.functions.push_back(build_image_main());
  program.functions.push_back(build_image_step(params));
  program.functions.push_back(build_lens_brightness(params));
  program.functions.push_back(build_process_lens(params));
  program.functions.push_back(build_accumulate_modes(params));
  program.entry = "image_main";

  std::vector<std::uint8_t> weights;
  weights.reserve(params.lens_count() * params.modes * 8);
  for (std::uint32_t lens = 0; lens < params.lens_count(); ++lens) {
    for (std::uint32_t mode = 0; mode < params.modes; ++mode) {
      append_f64(weights, image_weight(lens, mode));
    }
  }
  program.data.push_back(DataObject{.name = kWeightsSym,
                                    .size = static_cast<std::uint32_t>(
                                        weights.size()),
                                    .align = 64,
                                    .init = std::move(weights)});
  program.data.push_back(DataObject{
      .name = kFrameSym, .size = params.frame_bytes(), .align = 64});
  program.data.push_back(DataObject{
      .name = kBrightSym, .size = params.lens_count() * 4, .align = 64});
  program.data.push_back(DataObject{
      .name = kWavefrontSym, .size = params.modes * 8, .align = 64});
  program.data.push_back(
      DataObject{.name = kStatusSym, .size = 16, .align = 64});
  return program;
}

ImageInputs make_image_inputs(rng::RandomSource& random,
                              const ImageParams& params) {
  ImageInputs inputs;
  inputs.frame.resize(params.frame_bytes());
  for (std::uint32_t lens = 0; lens < params.lens_count(); ++lens) {
    const bool lit = random.next_double() < params.lit_fraction;
    if (lit) {
      ++inputs.lit_lenses;
    }
    const std::uint32_t base = lens * params.lens_bytes();
    for (std::uint32_t p = 0; p < params.lens_bytes(); ++p) {
      inputs.frame[base + p] =
          lit ? static_cast<std::uint8_t>(100 + random.next_below(156))
              : static_cast<std::uint8_t>(random.next_below(20));
    }
  }
  return inputs;
}

void stage_image_inputs(mem::GuestMemory& memory,
                        const isa::LinkedImage& image,
                        const ImageInputs& inputs) {
  memory.load(image.symbol(kFrameSym).addr, inputs.frame);
  const std::uint32_t status = image.symbol(kStatusSym).addr;
  for (std::uint32_t i = 0; i < 16; i += 4) {
    memory.write_u32(status + i, 0);
  }
}

ImageOutputs read_image_outputs(const mem::GuestMemory& memory,
                                const isa::LinkedImage& image,
                                const ImageParams& params) {
  ImageOutputs outputs;
  const std::uint32_t status = image.symbol(kStatusSym).addr;
  outputs.processed_lenses = memory.read_u32(status);
  outputs.threshold = memory.read_u32(status + 4);
  const std::uint32_t wavefront = image.symbol(kWavefrontSym).addr;
  outputs.wavefront.resize(params.modes);
  for (std::uint32_t m = 0; m < params.modes; ++m) {
    outputs.wavefront[m] = memory.read_f64(wavefront + 8 * m);
  }
  return outputs;
}

ImageOutputs reference_image(const ImageParams& params,
                             const ImageInputs& inputs) {
  ImageOutputs outputs;
  const std::uint32_t lens_bytes = params.lens_bytes();
  // Brightness pass.
  std::vector<std::uint32_t> brightness(params.lens_count(), 0);
  std::uint32_t max_brightness = 0;
  for (std::uint32_t lens = 0; lens < params.lens_count(); ++lens) {
    std::uint32_t sum = 0;
    for (std::uint32_t p = 0; p < lens_bytes; ++p) {
      sum += inputs.frame[lens * lens_bytes + p];
    }
    brightness[lens] = sum;
    if (static_cast<std::int32_t>(sum) >
        static_cast<std::int32_t>(max_brightness)) {
      max_brightness = sum;
    }
  }
  outputs.threshold = max_brightness >> 1;
  outputs.wavefront.assign(params.modes, 0.0);
  // Selection + processing.
  const std::int32_t px = static_cast<std::int32_t>(params.lens_px);
  const std::int32_t window = static_cast<std::int32_t>(params.window);
  const std::int32_t corner = (px - window) / 2;
  for (std::uint32_t lens = 0; lens < params.lens_count(); ++lens) {
    if (brightness[lens] <= outputs.threshold) {
      continue;
    }
    ++outputs.processed_lenses;
    const std::uint8_t* pixels = inputs.frame.data() + lens * lens_bytes;
    // Coarse centroid.
    std::int32_t sum_x = 0;
    std::int32_t sum_y = 0;
    std::int32_t total = 0;
    for (std::int32_t y = 0; y < px; ++y) {
      for (std::int32_t x = 0; x < px; ++x) {
        const std::int32_t p = pixels[y * px + x];
        sum_x += p * x;
        sum_y += p * y;
        total += p;
      }
    }
    if (total <= 0) {
      total = 1;
    }
    const std::int32_t cx = sum_x / total;
    const std::int32_t cy = sum_y / total;
    // Fine window.
    double ox_acc = 0.0;
    double oy_acc = 0.0;
    double weight_total = 0.0;
    for (std::int32_t wy = 0; wy < window; ++wy) {
      for (std::int32_t wx = 0; wx < window; ++wx) {
        const double p = static_cast<double>(
            pixels[(corner + wy) * px + (corner + wx)]);
        ox_acc += static_cast<double>(corner + wx - cx) * p;
        oy_acc += static_cast<double>(corner + wy - cy) * p;
        weight_total += p;
      }
    }
    double ox = 0.0;
    double oy = 0.0;
    if (weight_total != 0.0) {
      ox = ox_acc / weight_total;
      oy = oy_acc / weight_total;
    }
    const double combined = ox + oy;
    for (std::uint32_t m = 0; m < params.modes; ++m) {
      outputs.wavefront[m] += image_weight(lens, m) * combined;
    }
  }
  return outputs;
}

} // namespace proxima::casestudy
