#include "campaign_runner.hpp"

#include "core/static_rand.hpp"
#include "exec/seed.hpp"
#include "rng/lfsr.hpp"
#include "rng/mwc.hpp"

#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>

namespace proxima::casestudy {

namespace {

std::unique_ptr<rng::RandomSource> make_prng(PrngKind kind,
                                             std::uint64_t seed) {
  if (kind == PrngKind::kLfsr) {
    return std::make_unique<rng::Lfsr>(seed);
  }
  return std::make_unique<rng::Mwc>(seed);
}

/// Build the measured program (target-specific generation + UoA
/// instrumentation) and, for DSR, apply the transformation pass.
isa::Program make_program(const MeasuredTarget& target,
                          const CampaignConfig& config,
                          dsr::PassReport& pass_report) {
  isa::Program program = target.build_program();
  if (uses_dsr(config.randomisation)) {
    pass_report = dsr::apply_pass(program, config.pass_options);
  }
  return program;
}

/// kDsrOnDemand's bare-platform trigger is the taint sink-store detector,
/// so that arm runs with taint tracking on even when the campaign did not
/// ask for it.  Under the hypervisor the trigger is the partition switch
/// instead, and taint stays as configured.
bool taint_enabled(const CampaignConfig& config) {
  return config.taint ||
         (config.randomisation == Randomisation::kDsrOnDemand &&
          !config.hypervisor);
}

isa::LinkOptions base_layout_options(const MeasuredTarget& target,
                                     const CampaignConfig& config) {
  isa::LinkOptions options = target.layout_options();
  options.function_order = config.function_order;
  return options;
}

vm::VmConfig vm_config_for(const CampaignConfig& config) {
  vm::VmConfig vm_config;
  vm_config.core = config.vm_core;
  vm_config.taint = taint_enabled(config);
  return vm_config;
}

} // namespace

CampaignRunner::CampaignRunner(const CampaignConfig& config)
    : config_(config), target_(make_measured_target(config_)),
      program_(make_program(*target_, config_, pass_report_)),
      layout_rng_(make_prng(config_.prng, config_.layout_seed)),
      image_(isa::link(program_, base_layout_options(*target_, config_))),
      code_bytes_(image_.code_bytes()),
      hierarchy_(config_.randomisation == Randomisation::kHardware
                     ? mem::leon3_hw_randomised_config()
                     : mem::leon3_hierarchy_config()),
      cpu_(memory_, hierarchy_, vm_config_for(config_)) {
  hierarchy_.set_strict_coherence(true); // any stale fetch is a campaign bug
  trace_buffer_.attach(cpu_);
  image_.load_into(memory_);
  // One-time predecode pass over the loaded image (fast cores only): the
  // decode cache stays coherent through DSR relocation and re-links via
  // the guest-memory write listener, so this is purely a warm start.
  cpu_.predecode(image_.code_begin(), image_.code_end() - image_.code_begin());
  if (uses_dsr(config_.randomisation)) {
    runtime_ = std::make_unique<dsr::DsrRuntime>(
        memory_, hierarchy_, image_, *layout_rng_, config_.dsr_options);
    runtime_->attach(cpu_);
  }
  if (config_.randomisation == Randomisation::kDsrOnDemand &&
      !config_.hypervisor) {
    // Bare-platform on-demand trigger: a detected taint sink store (the
    // PR 8 analyzer's leak event) reseeds the layout mid-run.  The copy
    // charge mirrors the lazy-relocation cost model and lands on the
    // running activation's cycle count.
    cpu_.set_sink_store_sink(
        [this](std::uint32_t) { return runtime_->rerandomise_on_demand(); });
  }
  if (config_.collect_metrics) {
    // Instruction-mix telemetry: the VM's hook stays null (and the fast
    // dispatch loop's mix branch never taken) unless metrics are on.
    const auto opcodes = static_cast<std::size_t>(isa::Opcode::kOpcodeCount);
    mix_.assign(opcodes, 0);
    mix_base_.assign(opcodes, 0);
    cpu_.set_mix_counters(mix_.data());
  }
  configure_taint_ranges();
  if (config_.hypervisor) {
    hv_build(); // hv_runner.cpp: guest images + PartitionedPlatform
  }
}

void CampaignRunner::fault(const std::string& what) const {
  std::ostringstream oss;
  oss << "campaign run "
      << (current_run_ ? static_cast<long long>(*current_run_) : -1) << ": "
      << what;
  throw std::runtime_error(oss.str());
}

void CampaignRunner::apply_randomisation(std::uint64_t layout_seed) {
  switch (config_.randomisation) {
  case Randomisation::kNone:
    break;
  case Randomisation::kDsr:
  case Randomisation::kDsrOnDemand:
    // Partition reboot: a fresh layout drawn from this run's derived seed
    // (the first call doubles as the runtime's initialisation).  On-demand
    // reseeds later in the run continue this stream, so the whole run stays
    // a pure function of the derived seed.
    layout_rng_->seed(layout_seed);
    runtime_->rerandomise();
    break;
  case Randomisation::kStatic: {
    // A freshly linked binary with a random layout every run.
    layout_rng_->seed(layout_seed);
    const isa::LinkOptions random_options =
        dsr::random_layout(program_, *layout_rng_);
    image_ = isa::link(program_, random_options);
    memory_.clear();
    image_.load_into(memory_);
    hierarchy_.flush_all(); // a re-flashed board starts cold
    configure_taint_ranges(); // the re-link moved every data object
    break;
  }
  case Randomisation::kHardware:
    hierarchy_.reseed(layout_seed);
    hierarchy_.flush_all(); // a new placement hash invalidates old sets
    break;
  }
}

void CampaignRunner::stage_inputs(std::uint64_t activation) {
  // Staged DMA-style: the staged ranges must be invalidated explicitly
  // (LEON3 DMA is not cache-coherent).  After a skip in the activation
  // sequence (shard boundary) the incremental dirty ranges no longer cover
  // the guest/mirror difference, so the full persistent state is re-staged.
  // A kStatic re-flash restarts guest state from the image contents, so it
  // always stages the current mirror incrementally-from-initial (the
  // target rebuilt the mirror from scratch in advance_inputs).
  const bool consecutive =
      staged_activation_ && activation == *staged_activation_ + 1;
  const bool full_resync =
      config_.randomisation != Randomisation::kStatic && !consecutive;
  for (const auto& [addr, length] :
       target_->stage_inputs(memory_, image_, full_resync)) {
    note_staged_range(addr, length);
  }
  staged_activation_ = activation;
}

void CampaignRunner::note_staged_range(std::uint32_t addr,
                                       std::uint32_t length) {
  hierarchy_.note_memory_written(addr, length);
  hierarchy_.invalidate_range(addr, length);
}

void CampaignRunner::configure_taint_ranges() {
  if (!taint_enabled(config_)) {
    return;
  }
  cpu_.taint_clear_ranges();
  // Sinks: the measured target's externally observable output objects.
  for (const std::string& name : target_->observable_symbols()) {
    const isa::Symbol& symbol = image_.symbol(name);
    cpu_.taint_add_sink_range(symbol.addr, symbol.size);
  }
  // Sources: the DSR tables hold the randomised layout verbatim — function
  // addresses in the functab, per-function stack offsets alongside it.
  // (kCall/kJmpl return addresses are sources unconditionally, handled in
  // the transfer function itself.)
  if (uses_dsr(config_.randomisation)) {
    for (const char* table : {dsr::kFunctabSymbol, dsr::kStackoffSymbol}) {
      if (image_.has_symbol(table)) {
        const isa::Symbol& symbol = image_.symbol(table);
        cpu_.taint_add_source_range(symbol.addr, symbol.size);
      }
    }
  }
}

void CampaignRunner::verify_measured() {
  if (!target_->verify(memory_, image_)) {
    fault(std::string(target_->name()) +
          " outputs diverge from the golden model");
  }
  ++verified_runs_;
}

void CampaignRunner::setup(std::uint64_t run_index) {
  if (run_index >= config_.runs) {
    throw std::invalid_argument("CampaignRunner::setup: run index " +
                                std::to_string(run_index) +
                                " out of range (runs = " +
                                std::to_string(config_.runs) + ")");
  }
  if (current_run_ && run_index <= *current_run_) {
    throw std::invalid_argument(
        "CampaignRunner::setup: run indices must be strictly ascending");
  }
  current_run_ = run_index;
  executed_ = false;
  if (config_.fault_at_run && run_index == *config_.fault_at_run) {
    fault("injected platform fault (CampaignConfig::fault_at_run)");
  }

  obs_begin_run();

  // Warm-up activations occupy the first `warmup_runs` slots of the global
  // activation sequence: they advance the input stream (host-side replay)
  // but are never executed — the protocol rebuilds the platform state from
  // scratch every run, so an unmeasured extra activation has no observable
  // effect beyond its input-stream consumption.
  const std::uint64_t activation = config_.warmup_runs + run_index;
  if (hv_) {
    hv_setup(activation);
    return;
  }
  apply_randomisation(exec::derive_run_seed(
      config_.layout_seed, exec::SeedStream::kLayout, activation));
  target_->advance_inputs(activation);
  stage_inputs(activation);
}

void CampaignRunner::execute() {
  if (!current_run_ || executed_) {
    throw std::logic_error("CampaignRunner::execute: no run staged");
  }
  // Fresh taint shadows: per-run leak metrics are a pure function of the
  // run's own activation(s), independent of how runs are sharded.
  cpu_.taint_new_run();
  if (hv_) {
    hv_execute();
    executed_ = true;
    return;
  }
  const bool use_dsr = uses_dsr(config_.randomisation);
  const std::uint32_t entry =
      use_dsr ? runtime_->entry_address() : image_.entry_addr();
  const std::uint32_t stack_top = target_->stack_top();

  // Well-defined initial state, independent across runs *by construction*
  // (the paper's own requirement): wipe every level, run one unmeasured
  // warm-up activation under THIS run's layout and inputs, then apply the
  // PikeOS partition-start L1 flush.  The measured activation thus starts
  // from a warm L2 whose contents are a function of the current run only.
  hierarchy_.flush_all();
  cpu_.reset(entry, stack_top);
  if (cpu_.run().stop != vm::RunResult::Stop::kHalt) {
    fault("warm-up activation did not halt");
  }
  hierarchy_.flush_l1s();
  hierarchy_.counters().reset();
  obs_rebase_mix(); // warm-up instructions stay out of vm.mix.*
  trace_buffer_.clear();

  // The measured activation.  A bare kDsrOnDemand sink store fires the
  // reseed trigger during the warm-up too, so that arm re-queries the
  // entry point under the layout now in force.  Every other arm reuses the
  // reboot-time entry — under the lazy scheme the warm-up's first-call
  // trap moves entry_address(), and the measured activation must still
  // enter through the stub exactly as it always has.
  const std::uint32_t measured_entry =
      config_.randomisation == Randomisation::kDsrOnDemand
          ? runtime_->entry_address()
          : entry;
  cpu_.reset(measured_entry, stack_top);
  if (cpu_.run().stop != vm::RunResult::Stop::kHalt) {
    fault("activation did not halt");
  }
  executed_ = true;
}

RunSample CampaignRunner::collect() {
  if (!current_run_ || !executed_) {
    throw std::logic_error("CampaignRunner::collect: no executed run");
  }
  if (hv_) {
    RunSample sample = hv_collect();
    obs_publish_run(sample);
    return sample;
  }
  // Extract the UoA time + counters (one invocation: the warm-up's trace
  // was cleared).
  const std::vector<double> times =
      trace::extract_execution_times(trace_buffer_);
  if (times.size() != 1) {
    fault("expected exactly one UoA invocation");
  }
  RunSample sample;
  sample.uoa_cycles = times.front();
  sample.corrupt_input = target_->corrupt_input();
  sample.counters = hierarchy_.counters();

  // Functional verification against the host golden model.
  if (config_.verify_outputs) {
    verify_measured();
  }
  obs_publish_run(sample);
  return sample;
}

void CampaignRunner::obs_begin_run() {
  if (!config_.collect_metrics) {
    return;
  }
  run_metrics_ = obs::MetricsShard{};
  mix_base_ = mix_;
  if (runtime_) {
    dsr_base_ = runtime_->stats();
  }
  decode_base_ = cpu_.decode_stats();
  taint_base_ = cpu_.taint_stats();
}

void CampaignRunner::obs_rebase_mix() {
  if (!mix_.empty()) {
    mix_base_ = mix_;
  }
  if (config_.collect_metrics && config_.taint) {
    // Like vm.mix.*: the warm-up activation's taint events stay out of the
    // published leak.* window (shadow *state* persists — the warm-up runs
    // under this run's layout, so the final sink walk is unaffected).
    taint_base_ = cpu_.taint_stats();
  }
}

namespace {

/// X-macro token of a dense handler/opcode index, with the "k" prefix
/// stripped: kAddi -> "Addi".  Display names (opcode_info) collide across
/// R/I forms ("add" twice), so metric names use the enum spelling.
const char* opcode_token(std::size_t handler) {
  static constexpr const char* kTokens[] = {
#define PROXIMA_OBS_OPCODE_TOKEN(op) (#op) + 1,
      PROXIMA_VM_FOREACH_OPCODE(PROXIMA_OBS_OPCODE_TOKEN)
#undef PROXIMA_OBS_OPCODE_TOKEN
  };
  static_assert(std::size(kTokens) ==
                static_cast<std::size_t>(isa::Opcode::kOpcodeCount));
  return kTokens[handler];
}

} // namespace

void CampaignRunner::obs_publish_run(const RunSample& sample) {
  if (hv_ && (config_.collect_metrics || config_.timeline != nullptr)) {
    hv_publish_obs();
  }
  if (!config_.collect_metrics) {
    return;
  }
  // Publish into the per-run scratch shard, then fold it into the
  // cumulative shard: merge_from is a commutative sum/fold, so the
  // cumulative totals are exactly what direct accumulation produced, and
  // the per-run delta stays available for the campaign store.
  run_metrics_.add("runs", 1);
  if (sample.corrupt_input) {
    run_metrics_.add("runs.corrupt_input", 1);
  }
  // UoA cycle counts are integers carried in doubles: exact as u64.
  run_metrics_.record("time.uoa_cycles",
                      static_cast<std::uint64_t>(sample.uoa_cycles));
  // mem.*: the sample's hierarchy counters are already a per-run window
  // (execute() resets them after the warm-up activation; hv runs cover
  // the whole schedule).
  sample.counters.for_each([&](const char* name, std::uint64_t value) {
    run_metrics_.add(std::string("mem.") + name, value);
  });
  // vm.mix.*: per-opcode retirements over the whole run window, warm-up
  // activation included (it executes under this run's layout and inputs,
  // so the delta stays a pure function of the run index).
  for (std::size_t i = 0; i < mix_.size(); ++i) {
    const std::uint64_t delta = mix_[i] - mix_base_[i];
    if (delta != 0) {
      run_metrics_.add(std::string("vm.mix.") + opcode_token(i), delta);
    }
  }
  if (runtime_) {
    const dsr::DsrRuntime::Stats now = runtime_->stats();
    run_metrics_.add("dsr.reseeds", now.reseeds - dsr_base_.reseeds);
    run_metrics_.add("dsr.ondemand_reseeds",
                     now.ondemand_reseeds - dsr_base_.ondemand_reseeds);
    run_metrics_.add("dsr.relocations",
                     now.relocations - dsr_base_.relocations);
    run_metrics_.add("dsr.bytes_copied",
                     now.bytes_copied - dsr_base_.bytes_copied);
    run_metrics_.add("dsr.lazy_traps", now.lazy_traps - dsr_base_.lazy_traps);
    run_metrics_.add("dsr.lazy_cycles",
                     now.lazy_cycles - dsr_base_.lazy_cycles);
    // Invalidated-line counts depend on the platform state the PREVIOUS
    // run on this runner left behind (first run of a shard has no live
    // chunks to release), so they are worker-count-dependent: gauge class.
    run_metrics_.add_gauge("dsr.lines_invalidated",
                           static_cast<double>(now.lines_invalidated -
                                               dsr_base_.lines_invalidated));
  }
  // vm.decode.*: decode-cache activity persists across the runs one
  // runner executes (a different sharding decodes differently), so the
  // whole family is gauge-class — see DecodeCache::Stats.
  const vm::DecodeCache::Stats decode_now = cpu_.decode_stats();
  run_metrics_.add_gauge(
      "vm.decode.decodes",
      static_cast<double>(decode_now.decodes - decode_base_.decodes));
  run_metrics_.add_gauge(
      "vm.decode.write_invalidation_events",
      static_cast<double>(decode_now.write_invalidation_events -
                          decode_base_.write_invalidation_events));
  run_metrics_.add_gauge("vm.decode.invalidated_slots",
                         static_cast<double>(decode_now.invalidated_slots -
                                             decode_base_.invalidated_slots));
  run_metrics_.add_gauge(
      "vm.decode.full_invalidations",
      static_cast<double>(decode_now.full_invalidations -
                          decode_base_.full_invalidations));
  // vm.superblock.*: the fast-sb tier's trace activity — zero on the
  // other cores (and when taint forces the op-at-a-time fallback), which
  // is fine for a gauge family: digests never include gauges.
  run_metrics_.add_gauge("vm.superblock.formed",
                         static_cast<double>(decode_now.superblocks_formed -
                                             decode_base_.superblocks_formed));
  run_metrics_.add_gauge("vm.superblock.entered",
                         static_cast<double>(decode_now.superblocks_entered -
                                             decode_base_.superblocks_entered));
  run_metrics_.add_gauge(
      "vm.superblock.ops_retired",
      static_cast<double>(decode_now.superblock_ops_retired -
                          decode_base_.superblock_ops_retired));
  run_metrics_.add_gauge(
      "vm.superblock.invalidated",
      static_cast<double>(decode_now.superblocks_invalidated -
                          decode_base_.superblocks_invalidated));
  // leak.*: dynamic taint activity over the measured window (hv runs: the
  // whole schedule — cross-partition exposure is the point there).  The
  // per-run deltas and the end-of-run sink walk are pure functions of the
  // run index, so the family is digest-stable across worker counts.
  if (config_.taint) {
    const vm::TaintStats taint_now = cpu_.taint_stats();
    run_metrics_.add("leak.pc_taints",
                     taint_now.pc_taints - taint_base_.pc_taints);
    run_metrics_.add("leak.source_loads",
                     taint_now.source_loads - taint_base_.source_loads);
    run_metrics_.add("leak.tainted_stores",
                     taint_now.tainted_stores - taint_base_.tainted_stores);
    run_metrics_.add("leak.sink_stores",
                     taint_now.sink_stores - taint_base_.sink_stores);
    run_metrics_.record("leak.sink_bits", cpu_.taint_sink_bits());
  }
  metrics_.merge_from(run_metrics_);
}

RunSample CampaignRunner::run(std::uint64_t run_index) {
  setup(run_index);
  execute();
  return collect();
}

} // namespace proxima::casestudy
