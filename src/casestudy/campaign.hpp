// Measurement campaign driver: the paper's experimental protocol.
//
// For every measurement run (Section IV/V):
//   1. re-randomise the layout (DSR partition reboot) / reseed the
//      hardware-randomised caches / re-link (static randomisation),
//      depending on the configuration under test;
//   2. stage a fresh random input vector (sensor + spacecraft bus data);
//   3. flush all cache levels and TLBs (PikeOS partition start);
//   4. execute one activation of the control task on the LEON3-class core;
//   5. extract the UoA execution time from the RVS-style trace and snapshot
//      the performance counters (Table I);
//   6. verify the functional outputs against the host golden model.
#pragma once

#include "casestudy/control_task.hpp"
#include "casestudy/image_task.hpp"
#include "casestudy/stressor_task.hpp"
#include "core/dsr_pass.hpp"
#include "core/dsr_runtime.hpp"
#include "mem/counters.hpp"
#include "trace/partition_report.hpp"
#include "vm/vm.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace proxima::casestudy {

enum class Randomisation : std::uint8_t {
  kNone,     // the COTS platform: fixed layout, input variation only
  kDsr,      // dynamic software randomisation (the paper's technology)
  kStatic,   // static software randomisation: re-link per run (TASA-style)
  kHardware, // hardware time-randomised caches (random placement/replacement)
};

enum class PrngKind : std::uint8_t { kMwc, kLfsr };

/// Hypervisor campaign (the paper's PikeOS setting): the control task is
/// measured *while* guest partitions share the platform, instead of on the
/// bare platform.  One measured run replays `frames` minor frames of the
/// cyclic schedule from a fresh timeline:
///   * the control partition activates exactly once, in the LAST minor
///     frame (period = frames * minor_frame_ms, offset at the end), so the
///     guests' cache/TLB interference precedes the measured activation;
///   * guest partitions activate every minor frame with fresh inputs drawn
///     from per-partition streams (`exec::derive_partition_seed`), so the
///     interference pattern varies run to run but stays a pure function of
///     the run index — the engine shards hypervisor scenarios exactly like
///     bare-platform ones;
///   * the bare protocol's unmeasured same-layout warm-up still precedes
///     the schedule, so `hv/control-solo` reproduces the bare analysis
///     protocol and the guest scenarios differ from it by interference
///     only.
/// Static re-link randomisation is not supported under the hypervisor (a
/// re-flash clears the whole guest memory, guests included).
struct HvCampaignConfig {
  /// Minor frames per measured run (= the control task's period in
  /// frames).  10 reproduces the paper's 1 s control period over 100 ms
  /// frames.
  std::uint32_t frames = 10;
  std::uint32_t minor_frame_ms = 100;
  /// LEON3-class clock (cycles per millisecond).
  std::uint64_t cycles_per_ms = 50000;
  /// Budgets in ms; 0 grants the rest of the minor frame.
  std::uint32_t control_budget_ms = 0;
  /// The image-processing task as a low-criticality guest.
  bool image_guest = false;
  ImageParams image;
  std::uint32_t image_budget_ms = 0;
  /// The synthetic L2-evicting stressor as a low-criticality guest.
  bool stressor_guest = false;
  StressorParams stressor;
  std::uint32_t stressor_budget_ms = 0;
};

struct CampaignConfig {
  ControlParams control;
  Layout layout = Layout::kCotsBad;
  Randomisation randomisation = Randomisation::kNone;
  /// Execution core for the guest activations.  The predecoded fast core
  /// is the default; the reference interpreter is the differential-test
  /// oracle (both produce bit-identical samples).
  vm::VmCore vm_core = vm::VmCore::kFast;
  std::uint32_t runs = 1000;
  /// Extra unmeasured activations before the campaign (each measured run
  /// already gets its own same-layout warm-up; this is rarely needed).
  /// Warm-up activations occupy the first slots of the global activation
  /// sequence: they consume input-stream refreshes and shift every measured
  /// run's derived seeds, but are not executed on the guest — the protocol
  /// rebuilds the platform state from scratch each run, so an unmeasured
  /// extra activation has no other observable effect.
  std::uint32_t warmup_runs = 0;
  std::uint64_t input_seed = 2017;
  std::uint64_t layout_seed = 611085; // PROXIMA grant number
  PrngKind prng = PrngKind::kMwc;
  dsr::PassOptions pass_options;
  dsr::RuntimeOptions dsr_options;
  /// Optional link-order override (incremental-integration experiment).
  std::vector<std::string> function_order;
  /// Compare guest outputs against the golden model every run.
  bool verify_outputs = true;
  /// Analysis-time input control (MBPTA methodology): draw ONE input
  /// vector and replay it every run, so the measured variability is the
  /// platform's (cache layout) rather than the program's (paths).  Combine
  /// with control.corrupt_rate = 1.0 to pin the recovery path — the
  /// stressful scenario a validation expert would design.
  bool fixed_inputs = false;
  /// Fault injection: the runner throws a simulated platform fault while
  /// setting up this run index.  Lets the engine's cancellation path be
  /// tested with a deterministically poisoned campaign; disabled when
  /// unset.
  std::optional<std::uint64_t> fault_at_run;
  /// When set, runs execute on the partitioned hypervisor platform instead
  /// of the bare platform (see HvCampaignConfig).
  std::optional<HvCampaignConfig> hypervisor;
};

/// Per-partition activity of one hypervisor run (empty on the bare
/// platform): every activation's granted cycles in schedule order, plus
/// the budget violations the health monitor recorded.
struct PartitionActivity {
  std::string partition;
  std::vector<double> cycles; // ActivationRecord::cycles_used per activation
  std::uint32_t overruns = 0;

  friend bool operator==(const PartitionActivity&, const PartitionActivity&) =
      default;
};

struct RunSample {
  double uoa_cycles = 0.0;
  bool corrupt_input = false;
  mem::PerfCounters counters; // per-run snapshot (hv: the whole schedule)
  /// Hypervisor runs: per-partition activity, registration order.
  std::vector<PartitionActivity> partitions;

  friend bool operator==(const RunSample&, const RunSample&) = default;
};

struct CampaignResult {
  std::vector<double> times; // UoA execution times, one per run
  std::vector<RunSample> samples;
  dsr::PassReport pass_report;     // meaningful for kDsr
  std::uint32_t code_bytes = 0;    // image code size
  std::uint64_t verified_runs = 0; // golden-model matches
};

/// Execute the campaign sequentially.  Throws on any functional mismatch
/// or platform fault — a measurement campaign must never silently produce
/// bad data.
///
/// Every run's randomness is derived from (seed, stream, activation index)
/// via `exec::derive_run_seed`, making each run a pure function of its
/// index; `exec::CampaignEngine` exploits this to shard the same campaign
/// across workers with bit-identical `times`/`samples`.
CampaignResult run_control_campaign(const CampaignConfig& config);

/// Flatten a hypervisor campaign's per-run partition activity into
/// per-partition series (registration order preserved) ready for
/// `trace::PartitionReport::build`.  Empty for bare-platform campaigns.
std::vector<trace::PartitionSeries>
partition_series(std::span<const RunSample> samples);

} // namespace proxima::casestudy
