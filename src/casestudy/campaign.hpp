// Measurement campaign driver: the paper's experimental protocol.
//
// For every measurement run (Section IV/V):
//   1. re-randomise the layout (DSR partition reboot) / reseed the
//      hardware-randomised caches / re-link (static randomisation),
//      depending on the configuration under test;
//   2. stage a fresh random input vector (sensor + spacecraft bus data);
//   3. flush all cache levels and TLBs (PikeOS partition start);
//   4. execute one activation of the measured target (the control task by
//      default, or the image task — see MeasuredTargetKind) on the
//      LEON3-class core;
//   5. extract the UoA execution time from the RVS-style trace and snapshot
//      the performance counters (Table I);
//   6. verify the functional outputs against the host golden model.
#pragma once

#include "casestudy/control_task.hpp"
#include "casestudy/image_task.hpp"
#include "casestudy/leak_task.hpp"
#include "casestudy/stressor_task.hpp"
#include "core/dsr_pass.hpp"
#include "core/dsr_runtime.hpp"
#include "mem/counters.hpp"
#include "obs/metrics.hpp"
#include "trace/partition_report.hpp"
#include "vm/vm.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace proxima::obs {
class Timeline;
}

namespace proxima::casestudy {

enum class Randomisation : std::uint8_t {
  kNone,     // the COTS platform: fixed layout, input variation only
  kDsr,      // dynamic software randomisation (the paper's technology)
  kStatic,   // static software randomisation: re-link per run (TASA-style)
  kHardware, // hardware time-randomised caches (random placement/replacement)
  /// DSR plus MARDU-style mid-run reseeds on a configured event: a taint
  /// sink store on the bare platform (the runner forces taint tracking on),
  /// a partition switch under the hypervisor.  Reboot-time behaviour is
  /// identical to kDsr; the extra reseeds continue the per-run layout
  /// stream, so runs stay pure functions of their index.
  kDsrOnDemand,
};

/// Both DSR arms: the pass is applied, a DsrRuntime manages the layout, and
/// the per-reboot reseed protocol of kDsr runs unchanged.
constexpr bool uses_dsr(Randomisation randomisation) noexcept {
  return randomisation == Randomisation::kDsr ||
         randomisation == Randomisation::kDsrOnDemand;
}

enum class PrngKind : std::uint8_t { kMwc, kLfsr };

/// Which program is the campaign's unit of analysis — the thing the trace
/// instruments, the randomisation rebuilds per run, and the golden model
/// verifies.  The paper's protocol always measures exactly one program per
/// run; this selector picks WHICH one (ROADMAP "measured-partition
/// selection" / "image task as a measured workload"):
///   kControl — the high-criticality control task (UoA `control_step`),
///              constant-work per activation;
///   kImage   — the image-processing task (UoA `image_step`), whose
///              duration is *input-dependent* (only the lit ~70% of lenses
///              are processed) — the workload class MBPTA struggles with
///              and where DSR's re-randomisation matters most.
///   kLeakyBeacon / kHardenedBeacon — the address-leak beacon task (UoA
///              `leak_step`, leak_task.hpp): the `leak/` family's subject
///              for the static+dynamic taint analysis.  The leaky variant
///              publishes its own return address in an observable field;
///              the hardened variant publishes a constant.
/// On the bare platform the selected target is simply the program under
/// test; under the hypervisor it selects the measured partition, while the
/// other tasks ride as interference guests.
enum class MeasuredTargetKind : std::uint8_t {
  kControl,
  kImage,
  kLeakyBeacon,
  kHardenedBeacon,
};

/// Report label of a measured-target kind: "control" / "image" /
/// "leak-beacon" / "leak-hardened".
const char* measured_target_name(MeasuredTargetKind kind) noexcept;

/// Hypervisor partition name of the partition a target kind occupies
/// ("control" / "processing") — fixed per kind, independent of whether the
/// partition is the measured one or a guest.
const char* measured_partition_name(MeasuredTargetKind kind) noexcept;

/// Hypervisor campaign (the paper's PikeOS setting): the measured target
/// (`CampaignConfig::measured` — the control task by default) is measured
/// *while* guest partitions share the platform, instead of on the bare
/// platform.  One measured run replays `frames` minor frames of the cyclic
/// schedule from a fresh timeline:
///   * the measured partition activates exactly once, in the LAST minor
///     frame (period = frames * minor_frame_ms, offset at the end), so the
///     guests' cache/TLB interference precedes the measured activation;
///   * guest partitions activate every minor frame with fresh inputs drawn
///     from per-partition streams (`exec::derive_partition_seed`, whose
///     partition indices are fixed per task kind — see hv_runner.cpp), so
///     the interference pattern varies run to run but stays a pure
///     function of the run index — the engine shards hypervisor scenarios
///     exactly like bare-platform ones;
///   * the bare protocol's unmeasured same-layout warm-up of the measured
///     program still precedes the schedule, so `hv/control-solo`
///     reproduces the bare analysis protocol and the guest scenarios
///     differ from it by interference only.
/// A task kind can appear in a schedule once: enabling the guest matching
/// the measured target (e.g. `control_guest` while measuring the control
/// task) is rejected at runner construction.
/// Static re-link randomisation is not supported under the hypervisor (a
/// re-flash clears the whole guest memory, guests included).
struct HvCampaignConfig {
  /// Minor frames per measured run (= the measured task's period in
  /// frames).  10 reproduces the paper's 1 s control period over 100 ms
  /// frames.
  std::uint32_t frames = 10;
  std::uint32_t minor_frame_ms = 100;
  /// LEON3-class clock (cycles per millisecond).
  std::uint64_t cycles_per_ms = 50000;
  /// Budgets in ms; 0 grants the rest of the minor frame.  The measured
  /// budget applies to whichever partition `CampaignConfig::measured`
  /// selects.
  std::uint32_t measured_budget_ms = 0;
  /// The control task as an interference guest (only valid when the
  /// measured target is NOT the control task): a fresh input refresh every
  /// minor frame, state replayed from the image's load-time contents each
  /// run so the interference stays a pure function of the run index.
  /// (The guest budget is deliberately NOT named `control_budget_ms` —
  /// that was the measured control partition's budget through PR 4, which
  /// is now `measured_budget_ms`; reusing the old name would silently
  /// strand stale callers.)
  bool control_guest = false;
  std::uint32_t control_guest_budget_ms = 0;
  /// The image-processing task as a low-criticality guest (only valid when
  /// the measured target is NOT the image task).
  bool image_guest = false;
  ImageParams image;
  std::uint32_t image_budget_ms = 0;
  /// The synthetic L2-evicting stressor as a low-criticality guest.
  bool stressor_guest = false;
  StressorParams stressor;
  std::uint32_t stressor_budget_ms = 0;
};

struct CampaignConfig {
  /// The unit of analysis this campaign measures (see MeasuredTargetKind).
  /// Selects the program the bare protocol runs, or the measured partition
  /// of a hypervisor campaign.
  MeasuredTargetKind measured = MeasuredTargetKind::kControl;
  ControlParams control;
  /// Parameters of the image task WHEN IT IS THE MEASURED TARGET
  /// (`measured == kImage`); an hv campaign's image *guest* keeps its own
  /// params in HvCampaignConfig::image.
  ImageParams image;
  /// Parameters of the leak-beacon task when it is the measured target
  /// (`measured == kLeakyBeacon` / `kHardenedBeacon`; the hardened flag in
  /// here is overridden by the target kind).
  LeakParams leak;
  Layout layout = Layout::kCotsBad;
  Randomisation randomisation = Randomisation::kNone;
  /// Execution core for the guest activations.  The superblock tier of
  /// the predecoded fast core is the default; `kFast` disables the tier
  /// and the reference interpreter is the differential-test oracle (all
  /// three produce bit-identical samples).
  vm::VmCore vm_core = vm::VmCore::kFastSb;
  std::uint32_t runs = 1000;
  /// Extra unmeasured activations before the campaign (each measured run
  /// already gets its own same-layout warm-up; this is rarely needed).
  /// Warm-up activations occupy the first slots of the global activation
  /// sequence: they consume input-stream refreshes and shift every measured
  /// run's derived seeds, but are not executed on the guest — the protocol
  /// rebuilds the platform state from scratch each run, so an unmeasured
  /// extra activation has no other observable effect.
  std::uint32_t warmup_runs = 0;
  std::uint64_t input_seed = 2017;
  std::uint64_t layout_seed = 611085; // PROXIMA grant number
  PrngKind prng = PrngKind::kMwc;
  dsr::PassOptions pass_options;
  dsr::RuntimeOptions dsr_options;
  /// Optional link-order override (incremental-integration experiment).
  std::vector<std::string> function_order;
  /// Compare guest outputs against the golden model every run.
  bool verify_outputs = true;
  /// Analysis-time input control (MBPTA methodology): draw ONE input
  /// vector and replay it every run, so the measured variability is the
  /// platform's (cache layout) rather than the program's (paths).  Combine
  /// with control.corrupt_rate = 1.0 to pin the recovery path — the
  /// stressful scenario a validation expert would design.
  bool fixed_inputs = false;
  /// Fault injection: the runner throws a simulated platform fault while
  /// setting up this run index.  Lets the engine's cancellation path be
  /// tested with a deterministically poisoned campaign; disabled when
  /// unset.
  std::optional<std::uint64_t> fault_at_run;
  /// When set, runs execute on the partitioned hypervisor platform instead
  /// of the bare platform (see HvCampaignConfig).
  std::optional<HvCampaignConfig> hypervisor;

  // --- Observability (src/obs/) -------------------------------------------
  /// Collect the metrics registry (instruction mix, hierarchy counters, DSR
  /// runtime activity, hv partition occupancy) into per-runner shards,
  /// merged into `CampaignResult::metrics`.  Off by default: runners leave
  /// the VM's mix hook null and skip every snapshot, so campaigns pay
  /// nothing.  Purely observational — enabling it never changes times,
  /// samples or any derived seed.
  bool collect_metrics = false;
  /// Dynamic taint tracking (vm/taint.hpp): shadow every register and
  /// guest-memory word with a layout-derived bit, with the DSR tables as
  /// sources and the measured target's observable outputs as sinks.
  /// Publishes the `leak.*` metrics family when `collect_metrics` is also
  /// on.  Purely observational: times, samples and digests are unchanged.
  bool taint = false;
  /// When non-null, producers record Chrome-trace spans here (engine
  /// worker runs, adaptive batches, hv partition frames).  Non-owning; the
  /// CLI owns the Timeline for the duration of the campaign.
  obs::Timeline* timeline = nullptr;
};

/// Per-partition activity of one hypervisor run (empty on the bare
/// platform): every activation's granted cycles in schedule order, plus
/// the budget violations the health monitor recorded.
struct PartitionActivity {
  std::string partition;
  std::vector<double> cycles; // ActivationRecord::cycles_used per activation
  std::uint32_t overruns = 0;

  friend bool operator==(const PartitionActivity&, const PartitionActivity&) =
      default;
};

struct RunSample {
  double uoa_cycles = 0.0;
  bool corrupt_input = false;
  mem::PerfCounters counters; // per-run snapshot (hv: the whole schedule)
  /// Hypervisor runs: per-partition activity, registration order.
  std::vector<PartitionActivity> partitions;

  friend bool operator==(const RunSample&, const RunSample&) = default;
};

struct CampaignResult {
  std::vector<double> times; // UoA execution times, one per run
  std::vector<RunSample> samples;
  dsr::PassReport pass_report;     // meaningful for kDsr
  std::uint32_t code_bytes = 0;    // image code size
  std::uint64_t verified_runs = 0; // golden-model matches
  /// Merged metrics registry (empty unless `collect_metrics`).  The
  /// counter/histogram/series classes are bit-identical across worker
  /// counts (obs::metrics_digest); gauges carry wall-clock facts.
  obs::MetricsSnapshot metrics;
};

/// Execute the campaign sequentially (any measured target — the function
/// name keeps its historical spelling from when the control task was the
/// only measurable program).  Throws on any functional mismatch or
/// platform fault — a measurement campaign must never silently produce bad
/// data.
///
/// Every run's randomness is derived from (seed, stream, activation index)
/// via `exec::derive_run_seed`, making each run a pure function of its
/// index; `exec::CampaignEngine` exploits this to shard the same campaign
/// across workers with bit-identical `times`/`samples`.
CampaignResult run_control_campaign(const CampaignConfig& config);

/// Flatten a hypervisor campaign's per-run partition activity into
/// per-partition series (registration order preserved) ready for
/// `trace::PartitionReport::build`.  Empty for bare-platform campaigns.
std::vector<trace::PartitionSeries>
partition_series(std::span<const RunSample> samples);

} // namespace proxima::casestudy
