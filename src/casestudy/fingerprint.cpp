#include "fingerprint.hpp"

#include <bit>
#include <cstdio>
#include <string_view>

namespace proxima::casestudy {

namespace {

/// Tagged FNV-1a fold: every field contributes its name and its value
/// bytes, so transposed values of adjacent fields can never collide and a
/// field's meaning is pinned by its tag, not its struct position.
class Fold {
public:
  void bytes(std::string_view data) {
    for (const char c : data) {
      hash_ ^= static_cast<unsigned char>(c);
      hash_ *= 0x100000001b3ULL;
    }
  }
  void tag(std::string_view name) {
    bytes(name);
    hash_ ^= 0x3a; // ':' separator byte, outside the value alphabet below
    hash_ *= 0x100000001b3ULL;
  }
  void u64(std::string_view name, std::uint64_t value) {
    tag(name);
    for (int i = 0; i < 8; ++i) {
      hash_ ^= static_cast<unsigned char>(value >> (8 * i));
      hash_ *= 0x100000001b3ULL;
    }
  }
  void f64(std::string_view name, double value) {
    u64(name, std::bit_cast<std::uint64_t>(value));
  }
  void boolean(std::string_view name, bool value) {
    u64(name, value ? 1 : 0);
  }
  void str(std::string_view name, std::string_view value) {
    u64(name, value.size());
    bytes(value);
  }

  std::uint64_t hash() const noexcept { return hash_; }

private:
  std::uint64_t hash_ = 0xcbf29ce484222325ULL; // FNV-1a offset basis
};

void fold_control(Fold& fold, const ControlParams& p) {
  fold.u64("control.actuators", p.actuators);
  fold.u64("control.modes", p.modes);
  fold.u64("control.telemetry_bytes", p.telemetry_bytes);
  fold.u64("control.telemetry_window", p.telemetry_window);
  fold.u64("control.telemetry_chunk", p.telemetry_chunk);
  fold.u64("control.packet_words", p.packet_words);
  fold.f64("control.corrupt_rate", p.corrupt_rate);
  fold.u64("control.protocol_block", p.protocol_block);
  fold.u64("control.recovery_passes", p.recovery_passes);
  fold.f64("control.command_limit", p.command_limit);
}

void fold_image(Fold& fold, std::string_view prefix, const ImageParams& p) {
  const std::string base(prefix);
  fold.u64(base + ".grid", p.grid);
  fold.u64(base + ".lens_px", p.lens_px);
  fold.u64(base + ".modes", p.modes);
  fold.u64(base + ".window", p.window);
  fold.f64(base + ".lit_fraction", p.lit_fraction);
}

void fold_hypervisor(Fold& fold, const HvCampaignConfig& hv) {
  fold.u64("hv.frames", hv.frames);
  fold.u64("hv.minor_frame_ms", hv.minor_frame_ms);
  fold.u64("hv.cycles_per_ms", hv.cycles_per_ms);
  fold.u64("hv.measured_budget_ms", hv.measured_budget_ms);
  fold.boolean("hv.control_guest", hv.control_guest);
  fold.u64("hv.control_guest_budget_ms", hv.control_guest_budget_ms);
  fold.boolean("hv.image_guest", hv.image_guest);
  fold_image(fold, "hv.image", hv.image);
  fold.u64("hv.image_budget_ms", hv.image_budget_ms);
  fold.boolean("hv.stressor_guest", hv.stressor_guest);
  fold.u64("hv.stressor.buffer_bytes", hv.stressor.buffer_bytes);
  fold.u64("hv.stressor.stride", hv.stressor.stride);
  fold.u64("hv.stressor.passes", hv.stressor.passes);
  fold.u64("hv.stressor_budget_ms", hv.stressor_budget_ms);
}

} // namespace

std::uint64_t config_fingerprint(const CampaignConfig& config) {
  Fold fold;
  fold.u64("format", 1); // bump to invalidate every stored cell at once
  fold.u64("measured", static_cast<std::uint64_t>(config.measured));
  fold_control(fold, config.control);
  fold_image(fold, "image", config.image);
  fold.u64("layout", static_cast<std::uint64_t>(config.layout));
  fold.u64("randomisation",
           static_cast<std::uint64_t>(config.randomisation));
  fold.u64("warmup_runs", config.warmup_runs);
  fold.u64("input_seed", config.input_seed);
  fold.u64("layout_seed", config.layout_seed);
  fold.u64("prng", static_cast<std::uint64_t>(config.prng));
  fold.boolean("pass.indirect_calls", config.pass_options.indirect_calls);
  fold.boolean("pass.stack_offsets", config.pass_options.stack_offsets);
  fold.boolean("pass.lazy_stubs", config.pass_options.lazy_stubs);
  fold.u64("dsr.offset_range", config.dsr_options.offset_range);
  fold.u64("dsr.alignment", config.dsr_options.alignment);
  fold.u64("dsr.chunk_align", config.dsr_options.chunk_align);
  fold.boolean("dsr.eager", config.dsr_options.eager);
  fold.boolean("dsr.randomise_code", config.dsr_options.randomise_code);
  fold.boolean("dsr.randomise_stack", config.dsr_options.randomise_stack);
  fold.boolean("dsr.run_invalidation_routine",
               config.dsr_options.run_invalidation_routine);
  fold.u64("dsr.code_pool.base", config.dsr_options.code_pool.base);
  fold.u64("dsr.code_pool.size", config.dsr_options.code_pool.size);
  fold.u64("dsr.lazy_copy_cycles_per_word",
           config.dsr_options.lazy_copy_cycles_per_word);
  fold.u64("function_order.size", config.function_order.size());
  for (const std::string& name : config.function_order) {
    fold.str("function_order.entry", name);
  }
  fold.boolean("verify_outputs", config.verify_outputs);
  fold.boolean("fixed_inputs", config.fixed_inputs);
  fold.boolean("hypervisor", config.hypervisor.has_value());
  if (config.hypervisor) {
    fold_hypervisor(fold, *config.hypervisor);
  }
  return fold.hash();
}

std::string fingerprint_hex(std::uint64_t fingerprint) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

} // namespace proxima::casestudy
