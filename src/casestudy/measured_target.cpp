#include "measured_target.hpp"

#include "exec/seed.hpp"
#include "trace/trace.hpp"

namespace proxima::casestudy {

const char* measured_target_name(MeasuredTargetKind kind) noexcept {
  switch (kind) {
  case MeasuredTargetKind::kImage:
    return "image";
  case MeasuredTargetKind::kLeakyBeacon:
    return "leak-beacon";
  case MeasuredTargetKind::kHardenedBeacon:
    return "leak-hardened";
  case MeasuredTargetKind::kControl:
    break;
  }
  return "control";
}

const char* measured_partition_name(MeasuredTargetKind kind) noexcept {
  switch (kind) {
  case MeasuredTargetKind::kImage:
    return "processing";
  case MeasuredTargetKind::kLeakyBeacon:
  case MeasuredTargetKind::kHardenedBeacon:
    return "beacon";
  case MeasuredTargetKind::kControl:
    break;
  }
  return "control";
}

namespace {

/// The paper's control task as the measured target — the logic previously
/// hard-coded in CampaignRunner, verbatim: the refactor is test-locked to
/// bit-identical times for every pre-existing scenario.
class ControlTarget final : public MeasuredTarget {
public:
  explicit ControlTarget(const CampaignConfig& config)
      : config_(config), rng_(config.input_seed),
        inputs_(initial_control_inputs(config.control)) {}

  MeasuredTargetKind kind() const noexcept override {
    return MeasuredTargetKind::kControl;
  }
  const char* uoa_symbol() const noexcept override { return "control_step"; }
  bool input_dependent_duration() const noexcept override { return false; }

  isa::Program build_program() const override {
    isa::Program program = build_control_program(config_.control);
    trace::instrument_function(program, uoa_symbol());
    return program;
  }

  isa::LinkOptions layout_options() const override {
    return control_layout(config_.control, config_.layout, kControlStackTop);
  }

  std::uint32_t stack_top() const noexcept override {
    return kControlStackTop;
  }

  void advance_inputs(std::uint64_t activation) override {
    if (config_.randomisation == Randomisation::kStatic) {
      // A re-flashed board: the persistent instrument state restarts from
      // the image's load-time contents every run.
      if (config_.fixed_inputs) {
        if (!pinned_inputs_) {
          inputs_ = initial_control_inputs(config_.control);
          rng_.seed(exec::derive_run_seed(config_.input_seed,
                                          exec::SeedStream::kInput, 0));
          refresh_control_inputs(rng_, config_.control, inputs_);
          pinned_inputs_ = inputs_;
        } else {
          inputs_ = *pinned_inputs_;
        }
      } else {
        inputs_ = initial_control_inputs(config_.control);
        rng_.seed(exec::derive_run_seed(config_.input_seed,
                                        exec::SeedStream::kInput, activation));
        refresh_control_inputs(rng_, config_.control, inputs_);
      }
      return;
    }
    // Streamed persistent state: replay the per-activation refreshes across
    // any skipped indices so the host mirror (telemetry rotation, protocol
    // block) is exactly what the sequential protocol would hold.
    while (input_pos_ <= activation) {
      if (!config_.fixed_inputs || input_pos_ == 0) {
        rng_.seed(exec::derive_run_seed(config_.input_seed,
                                        exec::SeedStream::kInput, input_pos_));
        refresh_control_inputs(rng_, config_.control, inputs_);
      }
      ++input_pos_;
    }
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>>
  stage_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
               bool full_resync) override {
    if (full_resync) {
      ControlInputs full = inputs_;
      mark_control_inputs_fully_dirty(full);
      return stage_control_inputs(memory, image, full);
    }
    return stage_control_inputs(memory, image, inputs_);
  }

  bool corrupt_input() const noexcept override { return inputs_.corrupt; }

  bool verify(const mem::GuestMemory& memory,
              const isa::LinkedImage& image) const override {
    const ControlOutputs expected = reference_control(config_.control, inputs_);
    const ControlOutputs actual =
        read_control_outputs(memory, image, config_.control);
    return expected == actual;
  }

  std::vector<std::string> observable_symbols() const override {
    // Everything the golden model reads back: the actuator command block,
    // the status record and the recovery mirror word.
    return {"cs_commands", "cs_status", "cs_mirror"};
  }

private:
  const CampaignConfig& config_;
  rng::Mwc rng_;
  ControlInputs inputs_;
  std::optional<ControlInputs> pinned_inputs_; // fixed_inputs analysis vector
  std::uint64_t input_pos_ = 0; // activations consumed from the input stream
};

/// The image-processing task as the measured target.  No persistent guest
/// state: every activation stages a complete fresh sensor frame, so a
/// shard skip needs no replay and `full_resync` is moot.  The defining
/// property is input-dependent duration — operation-mode campaigns measure
/// a program whose work varies with the frame, analysis-mode campaigns pin
/// one frame (and typically `lit_fraction = 1.0`, the all-lenses
/// worst-case path) so the variability left is the platform's.
class ImageTarget final : public MeasuredTarget {
public:
  explicit ImageTarget(const CampaignConfig& config)
      : config_(config), rng_(config.input_seed) {}

  MeasuredTargetKind kind() const noexcept override {
    return MeasuredTargetKind::kImage;
  }
  const char* uoa_symbol() const noexcept override { return "image_step"; }
  bool input_dependent_duration() const noexcept override { return true; }

  isa::Program build_program() const override {
    isa::Program program = build_image_program(config_.image);
    trace::instrument_function(program, uoa_symbol());
    return program;
  }

  isa::LinkOptions layout_options() const override {
    // The image task has no engineered bad-and-rare placement: the study's
    // interest is its input-dependent duration, so the base layout is the
    // linker's plain sequential one (`Layout` is control-task-specific).
    return isa::LinkOptions{};
  }

  std::uint32_t stack_top() const noexcept override {
    return kControlStackTop; // the measured program owns the bare platform
  }

  void advance_inputs(std::uint64_t activation) override {
    if (config_.fixed_inputs) {
      // Analysis protocol: one frame drawn at activation 0, replayed every
      // run — the duration's input dependence is pinned away.
      if (!pinned_inputs_) {
        rng_.seed(exec::derive_run_seed(config_.input_seed,
                                        exec::SeedStream::kInput, 0));
        pinned_inputs_ = make_image_inputs(rng_, config_.image);
      }
      inputs_ = *pinned_inputs_;
      return;
    }
    rng_.seed(exec::derive_run_seed(config_.input_seed,
                                    exec::SeedStream::kInput, activation));
    inputs_ = make_image_inputs(rng_, config_.image);
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>>
  stage_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
               bool /*full_resync*/) override {
    stage_image_inputs(memory, image, inputs_);
    return {{image.symbol("im_frame").addr, config_.image.frame_bytes()},
            {image.symbol("im_status").addr, 16}};
  }

  bool verify(const mem::GuestMemory& memory,
              const isa::LinkedImage& image) const override {
    const ImageOutputs expected = reference_image(config_.image, inputs_);
    const ImageOutputs actual =
        read_image_outputs(memory, image, config_.image);
    return expected == actual;
  }

  std::vector<std::string> observable_symbols() const override {
    return {"im_status", "im_wavefront"};
  }

private:
  const CampaignConfig& config_;
  rng::Mwc rng_;
  ImageInputs inputs_;
  std::optional<ImageInputs> pinned_inputs_; // fixed_inputs analysis frame
};

/// The address-leak beacon as the measured target (leak_task.hpp): the
/// `leak/` family's subject.  Input handling mirrors the image task — no
/// persistent guest state, a fresh block per activation, so shard skips
/// need no replay.  The kind decides leaky vs hardened; everything else is
/// shared.
class LeakTarget final : public MeasuredTarget {
public:
  explicit LeakTarget(const CampaignConfig& config)
      : config_(config), rng_(config.input_seed) {
    params_ = config.leak;
    params_.hardened = config.measured == MeasuredTargetKind::kHardenedBeacon;
  }

  MeasuredTargetKind kind() const noexcept override {
    return config_.measured;
  }
  const char* uoa_symbol() const noexcept override { return "leak_step"; }
  bool input_dependent_duration() const noexcept override { return false; }

  isa::Program build_program() const override {
    isa::Program program = build_leak_program(params_);
    trace::instrument_function(program, uoa_symbol());
    return program;
  }

  isa::LinkOptions layout_options() const override {
    return isa::LinkOptions{}; // plain sequential layout, like the image task
  }

  std::uint32_t stack_top() const noexcept override {
    return kControlStackTop; // the measured program owns the bare platform
  }

  void advance_inputs(std::uint64_t activation) override {
    if (config_.fixed_inputs) {
      if (!pinned_inputs_) {
        rng_.seed(exec::derive_run_seed(config_.input_seed,
                                        exec::SeedStream::kInput, 0));
        pinned_inputs_ = make_leak_inputs(rng_, params_);
      }
      inputs_ = *pinned_inputs_;
      return;
    }
    rng_.seed(exec::derive_run_seed(config_.input_seed,
                                    exec::SeedStream::kInput, activation));
    inputs_ = make_leak_inputs(rng_, params_);
  }

  std::vector<std::pair<std::uint32_t, std::uint32_t>>
  stage_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
               bool /*full_resync*/) override {
    return stage_leak_inputs(memory, image, inputs_);
  }

  bool verify(const mem::GuestMemory& memory,
              const isa::LinkedImage& image) const override {
    // The beacon word is deliberately outside the golden model: under
    // randomisation its value is the (unpredictable) layout.
    const LeakOutputs expected = reference_leak(params_, inputs_);
    const LeakOutputs actual = read_leak_outputs(memory, image);
    return expected == actual;
  }

  std::vector<std::string> observable_symbols() const override {
    return {"lk_status"};
  }

private:
  const CampaignConfig& config_;
  LeakParams params_;
  rng::Mwc rng_;
  LeakInputs inputs_;
  std::optional<LeakInputs> pinned_inputs_;
};

} // namespace

std::unique_ptr<MeasuredTarget> make_measured_target(
    const CampaignConfig& config) {
  switch (config.measured) {
  case MeasuredTargetKind::kImage:
    return std::make_unique<ImageTarget>(config);
  case MeasuredTargetKind::kLeakyBeacon:
  case MeasuredTargetKind::kHardenedBeacon:
    return std::make_unique<LeakTarget>(config);
  case MeasuredTargetKind::kControl:
    break;
  }
  return std::make_unique<ControlTarget>(config);
}

} // namespace proxima::casestudy
