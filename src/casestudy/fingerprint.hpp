// Campaign-config fingerprinting for the on-disk campaign store.
//
// `config_fingerprint` folds every field of a `CampaignConfig` that
// influences *sample values* into a 64-bit FNV-1a digest.  Two configs with
// the same fingerprint produce bit-identical `RunSample`s at every run
// index (each run is a pure function of its index — campaign_runner.hpp),
// so stored results keyed by the fingerprint can serve any later campaign
// of the same config, at any requested length and any worker count.
//
// Deliberately EXCLUDED from the fold:
//   * `runs`          — the store serves prefixes of any length; the run
//                       count changes how many samples exist, never their
//                       values.
//   * `vm_core`       — all three cores (fast, fast-sb, reference) are
//                       bit-identical by the differential-test contract
//                       (vm_differential), so any core may fill or read
//                       the same cell.
//   * `fault_at_run`  — fault injection aborts a campaign early; the
//                       samples collected before the fault are exactly the
//                       uninjected campaign's prefix.
//   * `collect_metrics` / `timeline` — observability never changes samples.
//
// Every field is folded with a name tag, so adding a field (or reordering
// the struct) changes the fingerprint only when the fold itself is updated
// — and forgetting to update it is caught by the store tests' "new config
// knob must change the fingerprint" convention.
#pragma once

#include "casestudy/campaign.hpp"

#include <cstdint>
#include <string>

namespace proxima::casestudy {

/// 64-bit FNV-1a fold over the sample-determining fields of `config`.
std::uint64_t config_fingerprint(const CampaignConfig& config);

/// "0x%016x" rendering used for cell file names and manifests.
std::string fingerprint_hex(std::uint64_t fingerprint);

} // namespace proxima::casestudy
