#include "leak_task.hpp"

#include "isa/builder.hpp"

#include <stdexcept>

namespace proxima::casestudy {

using namespace proxima::isa;

namespace {

constexpr const char* kInputSym = "lk_input";
constexpr const char* kStatusSym = "lk_status";

constexpr std::int32_t kSignatureSeed = 0x5a5;
constexpr std::int32_t kStatusVersion = 0x1107;

void validate(const LeakParams& params) {
  if (params.words == 0) {
    throw std::invalid_argument("leak task needs at least one input word");
  }
  if (params.rounds == 0) {
    throw std::invalid_argument("leak task needs at least one round");
  }
}

Function build_leak_main() {
  FunctionBuilder fb("leak_main");
  fb.prologue(96);
  fb.call("leak_step");
  fb.halt();
  return std::move(fb).build();
}

Function build_leak_step(const LeakParams& params) {
  FunctionBuilder fb("leak_step");
  fb.prologue(96);
  fb.load_address(kL0, kInputSym);
  fb.li(kL1, kSignatureSeed); // sig
  fb.li(kL2, static_cast<std::int32_t>(params.rounds));
  fb.label("round_loop");
  fb.mov(kL3, kL0); // cursor
  fb.li(kL4, static_cast<std::int32_t>(params.words));
  fb.label("word_loop");
  fb.ld(kO0, kL3, 0);
  fb.op3(Opcode::kXor, kL1, kL1, kO0);
  fb.muli(kL1, kL1, 33);
  fb.addi(kL1, kL1, 7);
  fb.addi(kL3, kL3, 4);
  fb.subcci(kL4, 1);
  fb.subi(kL4, kL4, 1);
  fb.bg("word_loop");
  fb.subcci(kL2, 1);
  fb.subi(kL2, kL2, 1);
  fb.bg("round_loop");
  fb.load_address(kO1, kStatusSym);
  fb.st(kL1, kO1, 0); // signature
  if (params.hardened) {
    // Hardened beacon: a link-independent build id.
    fb.li(kO2, kLeakHardenedBeacon);
    fb.st(kO2, kO1, 4);
  } else {
    // THE LEAK: %i7 is this activation's return address — a relocated
    // code address, i.e. the randomised layout itself.
    fb.st(kI7, kO1, 4);
  }
  fb.li(kO3, static_cast<std::int32_t>(params.words));
  fb.st(kO3, kO1, 8); // processed-words count
  fb.li(kO4, kStatusVersion);
  fb.st(kO4, kO1, 12); // record version
  fb.epilogue();
  return std::move(fb).build();
}

} // namespace

isa::Program build_leak_program(const LeakParams& params) {
  validate(params);
  Program program;
  program.functions.push_back(build_leak_main());
  program.functions.push_back(build_leak_step(params));
  program.entry = "leak_main";
  program.data.push_back(DataObject{
      .name = kInputSym, .size = params.words * 4, .align = 64, .init = {}});
  program.data.push_back(
      DataObject{.name = kStatusSym, .size = 16, .align = 64, .init = {}});
  return program;
}

LeakInputs make_leak_inputs(rng::Mwc& rng, const LeakParams& params) {
  validate(params);
  LeakInputs inputs;
  inputs.block.reserve(params.words);
  for (std::uint32_t i = 0; i < params.words; ++i) {
    inputs.block.push_back(rng.next_u32());
  }
  return inputs;
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
stage_leak_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
                  const LeakInputs& inputs) {
  const std::uint32_t input_addr = image.symbol(kInputSym).addr;
  const std::uint32_t status_addr = image.symbol(kStatusSym).addr;
  for (std::size_t i = 0; i < inputs.block.size(); ++i) {
    memory.write_u32(input_addr + static_cast<std::uint32_t>(i) * 4,
                     inputs.block[i]);
  }
  for (std::uint32_t off = 0; off < 16; off += 4) {
    memory.write_u32(status_addr + off, 0);
  }
  return {{input_addr, static_cast<std::uint32_t>(inputs.block.size()) * 4},
          {status_addr, 16}};
}

LeakOutputs read_leak_outputs(const mem::GuestMemory& memory,
                              const isa::LinkedImage& image) {
  const std::uint32_t status_addr = image.symbol(kStatusSym).addr;
  LeakOutputs outputs;
  outputs.signature = memory.read_u32(status_addr);
  outputs.count = memory.read_u32(status_addr + 8);
  outputs.version = memory.read_u32(status_addr + 12);
  return outputs;
}

std::uint32_t read_leak_beacon(const mem::GuestMemory& memory,
                               const isa::LinkedImage& image) {
  return memory.read_u32(image.symbol(kStatusSym).addr + 4);
}

LeakOutputs reference_leak(const LeakParams& params, const LeakInputs& inputs) {
  validate(params);
  std::uint32_t sig = static_cast<std::uint32_t>(kSignatureSeed);
  for (std::uint32_t round = 0; round < params.rounds; ++round) {
    for (const std::uint32_t word : inputs.block) {
      sig = (sig ^ word) * 33 + 7;
    }
  }
  return LeakOutputs{sig, params.words,
                     static_cast<std::uint32_t>(kStatusVersion)};
}

} // namespace proxima::casestudy
