// Synthetic cache-stressor guest partition for hypervisor campaigns.
//
// The paper measures the control task while other applications share the
// platform; beyond the real image-processing task, the interference study
// needs a *calibrated* worst-ish neighbour.  This guest sweeps a buffer
// larger than the (32 KiB, direct-mapped) L2 at cache-line stride, so one
// activation evicts every L2 set the control task's persistent state
// occupies — the canonical cache-thrashing co-runner of the multicore
// interference literature, reduced to the single-core time-partitioned
// setting (interference through the schedule, not through concurrency).
//
// The sweep is read-only except for its output signature: guest memory is
// left exactly as loaded, so a measured run's platform state stays a pure
// function of the run's own seeds (the campaign determinism contract).
// A per-activation salt word folds into the signature, giving every
// activation a host-checkable result.
#pragma once

#include "isa/linker.hpp"
#include "isa/program.hpp"
#include "mem/guest_memory.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace proxima::casestudy {

struct StressorParams {
  /// Swept region; 2x the L2 guarantees full eviction even with the
  /// control task's lines interleaved.
  std::uint32_t buffer_bytes = 64 * 1024;
  /// Touch distance: one L2 line per touch maximises evictions per cycle.
  std::uint32_t stride = 32;
  /// Full sweeps per activation.
  std::uint32_t passes = 2;

  std::uint32_t touches() const { return buffer_bytes / stride; }
};

/// Build the stressor program.  Entry "stress_main"; one activation runs
/// `passes` sweeps and stores the mixed signature.
isa::Program build_stressor_program(const StressorParams& params = {});

/// The deterministic buffer word the generator embeds at word `index`.
std::uint32_t stressor_word(std::uint32_t index);

/// Write the per-activation salt and clear the status word.  Returns the
/// staged (addr, length) ranges; the caller must invalidate them in the
/// cache hierarchy (DMA-style staging, as for the other tasks).
std::vector<std::pair<std::uint32_t, std::uint32_t>>
stage_stressor_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
                      std::uint32_t salt);

struct StressorOutputs {
  std::uint32_t signature = 0;

  friend bool operator==(const StressorOutputs&, const StressorOutputs&) =
      default;
};

StressorOutputs read_stressor_outputs(const mem::GuestMemory& memory,
                                      const isa::LinkedImage& image);

/// Host-side golden model, bit-exact mirror of the guest sweep.
StressorOutputs reference_stressor(const StressorParams& params,
                                   std::uint32_t salt);

} // namespace proxima::casestudy
