// The low-criticality image-processing task of the space case study
// (Section IV): "computes the wave front error using data from a collection
// of sensors ... The image processing computes the passive deformation of a
// mirror in a satellite instrument and comprises 2 phases.  During the
// former, a coarse offset is computed and while during the latter the
// offset is computed in a finer granularity."
//
// Inputs are "composed of 12x12 array of lenses of 34x34 pixels each.  Not
// every lens is processed, but only the most lightened ones which are
// around 70% of the total lenses", which makes the task duration directly
// input-dependent — the property that makes its timing analysis
// challenging.  The task is "both CPU intensive (significant amount of
// floating point operations) and memory intensive (many reads and writes to
// the pixels from the lenses)".
//
// Structure:
//   image_step       — per-frame unit of work
//   lens_brightness  — leaf: pixel sum of one lens
//   process_lens     — coarse integer centroid + fine FP sub-pixel offset
//   accumulate_modes — fold a lens offset into the wavefront-error vector
#pragma once

#include "isa/linker.hpp"
#include "isa/program.hpp"
#include "mem/guest_memory.hpp"
#include "rng/random_source.hpp"

#include <cstdint>
#include <vector>

namespace proxima::casestudy {

struct ImageParams {
  std::uint32_t grid = 12;     // grid x grid lenses
  std::uint32_t lens_px = 34;  // lens_px x lens_px pixels per lens
  std::uint32_t modes = 48;    // wavefront modes
  std::uint32_t window = 9;    // fine-phase window (odd, < lens_px)
  double lit_fraction = 0.70;  // fraction of illuminated lenses

  std::uint32_t lens_count() const { return grid * grid; }
  std::uint32_t lens_bytes() const { return lens_px * lens_px; }
  std::uint32_t frame_bytes() const { return lens_count() * lens_bytes(); }
};

/// Build the image program.  Entry "image_main"; UoA "image_step".
isa::Program build_image_program(const ImageParams& params = {});

/// A sensor frame (host side stand-in for the instrument's optics).
struct ImageInputs {
  std::vector<std::uint8_t> frame; // frame_bytes()
  std::uint32_t lit_lenses = 0;    // ground truth (for tests)
};

ImageInputs make_image_inputs(rng::RandomSource& random,
                              const ImageParams& params);

void stage_image_inputs(mem::GuestMemory& memory,
                        const isa::LinkedImage& image,
                        const ImageInputs& inputs);

struct ImageOutputs {
  std::uint32_t processed_lenses = 0;
  std::uint32_t threshold = 0;
  std::vector<double> wavefront; // modes entries

  friend bool operator==(const ImageOutputs&, const ImageOutputs&) = default;
};

ImageOutputs read_image_outputs(const mem::GuestMemory& memory,
                                const isa::LinkedImage& image,
                                const ImageParams& params);

/// Host-side golden model, bit-exact mirror of the guest computation.
ImageOutputs reference_image(const ImageParams& params,
                             const ImageInputs& inputs);

/// Deterministic lens-to-mode influence weights embedded by the generator.
double image_weight(std::uint32_t lens, std::uint32_t mode);

} // namespace proxima::casestudy
