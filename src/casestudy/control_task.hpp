// The high-criticality control task of the space case study (Section IV).
//
// The paper's application controls an integrated active-optics instrument:
// the control task "elaborates commands to the actuators controlling mirror
// displacements and is in charge of the interface with the rest of the
// spacecraft".  The real software is proprietary; this generator rebuilds a
// workload with the same published profile (Table I):
//   ~164k instructions per activation, ~2% floating point (~3.5k FPU ops),
//   ~10^2 IL1 misses, ~2k DL1 misses, 17-25% L2 miss ratio, and a small
//   number of function calls relative to total instructions.
//
// Structure (each piece is a separate function, so DSR has real memory
// objects to move; the interface handlers give the per-packet calls that
// account for the paper's ~2% dynamic DSR overhead):
//   control_step       — the unit of analysis (UoA)
//   elaborate_commands — modes-matrix x wavefront, saturation, FIR (FP)
//   process_telemetry  — rolling signature over the telemetry store, byte
//                        window via three mixing variants + word XOR pass
//   chunk_sum_a/b/c    — telemetry mixing variants (leaf, 1 KiB chunks)
//   verify_matrix      — integrity sweep over the modes matrix (called
//                        twice per activation; its DL1 re-misses hit the
//                        warm L2 — the source of the paper's miss ratio)
//   scan_packets       — packet validation, type-dispatched to...
//   validate_t0..t3    — leaf checksum handlers (one call per packet)
//   recover_packets    — rare path: a corrupt packet block is replayed
//                        through a stack-resident scratch window
//
// Measurement protocol notes (mirroring Section IV/V):
//  * PikeOS flushes the L1 caches at partition start; the write-back L2
//    stays warm.  Most of the task's data (modes matrix, telemetry store,
//    packet buffer) is persistent instrument state, so DL1 misses largely
//    re-hit the L2 — giving the 17-25% L2 miss ratios of Table I.
//  * Per activation only a small input set changes: the wavefront vector,
//    one fresh 1 KiB telemetry chunk, and the spacecraft protocol's
//    mode-change packet block.  Staging models a DMA transfer: the staged
//    ranges must be invalidated in the caches (no DMA coherence on LEON3).
//
// The *recovery* path is where the paper's "bad and rare cache layout"
// lives: under the COTS link layout (kCotsBad) the protocol packet block is
// exactly L2-congruent with the recovery scratch window on the
// (deterministic) stack, so a corrupt-input activation thrashes the
// direct-mapped L2.  DSR randomises the stack offsets, so the congruence —
// and the long MOET — (almost) never materialises (Section VI).
#pragma once

#include "isa/linker.hpp"
#include "isa/program.hpp"
#include "mem/guest_memory.hpp"
#include "rng/random_source.hpp"

#include <cstdint>
#include <utility>
#include <vector>

namespace proxima::casestudy {

struct ControlParams {
  std::uint32_t actuators = 32;
  std::uint32_t modes = 48;
  std::uint32_t telemetry_bytes = 12288;  // persistent telemetry store
  std::uint32_t telemetry_window = 8192;  // byte-signature window
  std::uint32_t telemetry_chunk = 1024;   // freshly staged per activation
  std::uint32_t packet_words = 2048;      // 8-word packets, 256-word blocks
  /// Fraction of activations whose protocol block carries a corrupt packet.
  double corrupt_rate = 0.08;
  /// The spacecraft protocol's mode-change block: re-staged every
  /// activation, and the only place corruption can appear.
  std::uint32_t protocol_block = 5;
  std::uint32_t recovery_passes = 4;
  double command_limit = 4.0;

  std::uint32_t packet_count() const { return packet_words / 8; }
  std::uint32_t block_words() const { return 256; }
  std::uint32_t block_count() const { return packet_words / block_words(); }
};

/// Known stack geometry of the control program, used by the layout
/// engineering and by tests.
struct ControlStackInfo {
  std::uint32_t main_frame = 96;
  std::uint32_t step_frame = 96;
  std::uint32_t scan_frame = 96;
  /// 96-byte save area + 4 KiB scratch ring + padding chosen so the ring
  /// sits 1 KiB-aligned at stack_top - 5120 under the COTS layout.  With a
  /// 32 KiB-aligned stack top the ring occupies L2 sets for byte offsets
  /// 27648..31743 of the way — which the kCotsBad data map deliberately
  /// shares with the modes matrix.
  std::uint32_t recover_frame = 4928;
  std::uint32_t scratch_ring_bytes = 4096;
  /// Frame offset of the recovery progress checkpoint word.
  std::uint32_t progress_slot = 64;
  /// Base address of the recovery scratch ring for a given stack top under
  /// the NON-randomised (COTS) layout.
  std::uint32_t scratch_addr(std::uint32_t stack_top) const {
    return stack_top - main_frame - step_frame - scan_frame - recover_frame +
           96;
  }
  /// Address of the recovery progress word under the COTS layout: the cell
  /// kCotsBad makes L2-congruent with the telemetry mirror.
  std::uint32_t progress_addr(std::uint32_t stack_top) const {
    return stack_top - main_frame - step_frame - scan_frame - recover_frame +
           progress_slot;
  }
};

/// Build the control program.  Entry is "control_main" (runs one
/// activation then halts); the UoA function is "control_step".
isa::Program build_control_program(const ControlParams& params = {});

enum class Layout : std::uint8_t {
  /// The engineered COTS layout: the protocol packet block is L2-congruent
  /// with the recovery scratch window (the paper's bad-and-rare layout).
  kCotsBad,
  /// A deliberately conflict-free placement (used by ablations).
  kNeutral,
};

/// Link options realising the chosen layout for the given stack top
/// (stack_top must be 1 KiB aligned).
isa::LinkOptions control_layout(const ControlParams& params, Layout layout,
                                std::uint32_t stack_top);

/// The instrument's input/state vector.  `telemetry` and `packets` are the
/// full *effective* persistent state (mirroring guest memory); the dirty
/// fields say what changed since the previous activation and must be
/// staged.
struct ControlInputs {
  std::vector<double> wavefront;
  std::vector<std::uint8_t> telemetry;
  std::vector<std::uint32_t> packets;
  bool corrupt = false;

  std::uint32_t telemetry_dirty_offset = 0;
  std::uint32_t telemetry_dirty_bytes = 0; // 0: nothing to stage
  bool packets_dirty = false;              // protocol block changed
  std::uint32_t chunk_cursor = 0;          // rotation state
};

/// State matching the image's load-time contents (DataObject init).
ControlInputs initial_control_inputs(const ControlParams& params);

/// Mark the WHOLE persistent state dirty, so the next
/// `stage_control_inputs` re-syncs guest memory with the host mirror
/// (shard skip, run boundary of a guest partition): every field that
/// staging consults must be covered here and nowhere else.
void mark_control_inputs_fully_dirty(ControlInputs& inputs);

/// Advance the state for the next activation: fresh wavefront, one fresh
/// telemetry chunk, a re-staged (possibly corrupt) protocol block.
void refresh_control_inputs(rng::RandomSource& random,
                            const ControlParams& params, ControlInputs& io);

/// Write the dirty parts into guest memory.  Returns the staged (addr,
/// length) ranges; the caller must invalidate them in the cache hierarchy
/// (LEON3 DMA is not cache-coherent).
std::vector<std::pair<std::uint32_t, std::uint32_t>>
stage_control_inputs(mem::GuestMemory& memory, const isa::LinkedImage& image,
                     const ControlInputs& inputs);

/// Outputs read back after an activation.
struct ControlOutputs {
  std::vector<double> commands;
  std::uint32_t telemetry_signature = 0;
  std::uint32_t packets_ok = 0;
  std::uint32_t recoveries = 0;
  std::uint32_t recovery_accumulator = 0;
  std::uint32_t matrix_signature = 0;
  /// Spacecraft-visible recovery progress mirror (last checkpoint value).
  std::uint32_t recovery_mirror = 0;

  friend bool operator==(const ControlOutputs&, const ControlOutputs&) =
      default;
};

ControlOutputs read_control_outputs(const mem::GuestMemory& memory,
                                    const isa::LinkedImage& image,
                                    const ControlParams& params);

/// Host-side golden model: bit-exact mirror of the guest computation.
ControlOutputs reference_control(const ControlParams& params,
                                 const ControlInputs& inputs);

/// The deterministic modes matrix the generator embeds.
double modes_matrix_entry(const ControlParams& params, std::uint32_t actuator,
                          std::uint32_t mode);

} // namespace proxima::casestudy
