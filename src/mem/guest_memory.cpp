#include "guest_memory.hpp"

#include <algorithm>
#include <bit>
#include <cstring>

namespace proxima::mem {

GuestMemory::Page& GuestMemory::page_for(std::uint32_t addr) {
  const std::uint32_t index = addr / kPageBytes;
  auto it = pages_.find(index);
  if (it == pages_.end()) {
    auto page = std::make_unique<Page>();
    page->fill(0);
    it = pages_.emplace(index, std::move(page)).first;
  }
  return *it->second;
}

const GuestMemory::Page* GuestMemory::page_if_present(std::uint32_t addr) const {
  const auto it = pages_.find(addr / kPageBytes);
  return it == pages_.end() ? nullptr : it->second.get();
}

std::uint8_t GuestMemory::read_u8(std::uint32_t addr) const {
  const Page* page = page_if_present(addr);
  return page == nullptr ? 0 : (*page)[addr % kPageBytes];
}

std::uint16_t GuestMemory::read_u16(std::uint32_t addr) const {
  return static_cast<std::uint16_t>((read_u8(addr) << 8) | read_u8(addr + 1));
}

std::uint32_t GuestMemory::read_u32(std::uint32_t addr) const {
  // Fast path: whole word inside one resident page.
  if (addr % kPageBytes <= kPageBytes - 4) {
    if (const Page* page = page_if_present(addr)) {
      const std::uint32_t offset = addr % kPageBytes;
      return (static_cast<std::uint32_t>((*page)[offset]) << 24) |
             (static_cast<std::uint32_t>((*page)[offset + 1]) << 16) |
             (static_cast<std::uint32_t>((*page)[offset + 2]) << 8) |
             static_cast<std::uint32_t>((*page)[offset + 3]);
    }
    return 0;
  }
  return (static_cast<std::uint32_t>(read_u16(addr)) << 16) | read_u16(addr + 2);
}

std::uint64_t GuestMemory::read_u64(std::uint32_t addr) const {
  return (static_cast<std::uint64_t>(read_u32(addr)) << 32) | read_u32(addr + 4);
}

double GuestMemory::read_f64(std::uint32_t addr) const {
  return std::bit_cast<double>(read_u64(addr));
}

void GuestMemory::write_u8(std::uint32_t addr, std::uint8_t value) {
  poke_u8(addr, value);
  if (!listeners_.empty()) {
    notify_written(addr, 1);
  }
}

void GuestMemory::write_u16(std::uint32_t addr, std::uint16_t value) {
  poke_u8(addr, static_cast<std::uint8_t>(value >> 8));
  poke_u8(addr + 1, static_cast<std::uint8_t>(value));
  if (!listeners_.empty()) {
    notify_written(addr, 2);
  }
}

void GuestMemory::write_u32(std::uint32_t addr, std::uint32_t value) {
  if (addr % kPageBytes <= kPageBytes - 4) {
    Page& page = page_for(addr);
    const std::uint32_t offset = addr % kPageBytes;
    page[offset] = static_cast<std::uint8_t>(value >> 24);
    page[offset + 1] = static_cast<std::uint8_t>(value >> 16);
    page[offset + 2] = static_cast<std::uint8_t>(value >> 8);
    page[offset + 3] = static_cast<std::uint8_t>(value);
  } else {
    poke_u8(addr, static_cast<std::uint8_t>(value >> 24));
    poke_u8(addr + 1, static_cast<std::uint8_t>(value >> 16));
    poke_u8(addr + 2, static_cast<std::uint8_t>(value >> 8));
    poke_u8(addr + 3, static_cast<std::uint8_t>(value));
  }
  if (!listeners_.empty()) {
    notify_written(addr, 4);
  }
}

void GuestMemory::write_u64(std::uint32_t addr, std::uint64_t value) {
  write_u32(addr, static_cast<std::uint32_t>(value >> 32));
  write_u32(addr + 4, static_cast<std::uint32_t>(value));
}

void GuestMemory::write_f64(std::uint32_t addr, double value) {
  write_u64(addr, std::bit_cast<std::uint64_t>(value));
}

void GuestMemory::copy(std::uint32_t dst, std::uint32_t src,
                       std::uint32_t length) {
  const bool overlaps =
      length != 0 && dst < src + length && src < dst + length;
  if (!overlaps) {
    // Relocation hot path: move whole page spans with memcpy.  An absent
    // source page reads as zero, matching the byte loop's read_u8.
    std::uint32_t done = 0;
    while (done < length) {
      const std::uint32_t s = src + done;
      const std::uint32_t d = dst + done;
      const std::uint32_t span =
          std::min({length - done, kPageBytes - s % kPageBytes,
                    kPageBytes - d % kPageBytes});
      std::uint8_t* out = page_for(d).data() + d % kPageBytes;
      if (const Page* page = page_if_present(s)) {
        std::memcpy(out, page->data() + s % kPageBytes, span);
      } else {
        std::memset(out, 0, span);
      }
      done += span;
    }
  } else if (dst <= src) {
    for (std::uint32_t i = 0; i < length; ++i) {
      poke_u8(dst + i, read_u8(src + i));
    }
  } else {
    for (std::uint32_t i = length; i-- > 0;) {
      poke_u8(dst + i, read_u8(src + i));
    }
  }
  if (length != 0 && !listeners_.empty()) {
    notify_written(dst, length);
  }
}

void GuestMemory::write_u32_span(std::uint32_t addr,
                                 const std::uint32_t* values,
                                 std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t word_addr = addr + 4 * i;
    const std::uint32_t value = values[i];
    if (word_addr % kPageBytes <= kPageBytes - 4) {
      Page& page = page_for(word_addr);
      const std::uint32_t offset = word_addr % kPageBytes;
      page[offset] = static_cast<std::uint8_t>(value >> 24);
      page[offset + 1] = static_cast<std::uint8_t>(value >> 16);
      page[offset + 2] = static_cast<std::uint8_t>(value >> 8);
      page[offset + 3] = static_cast<std::uint8_t>(value);
    } else {
      poke_u8(word_addr, static_cast<std::uint8_t>(value >> 24));
      poke_u8(word_addr + 1, static_cast<std::uint8_t>(value >> 16));
      poke_u8(word_addr + 2, static_cast<std::uint8_t>(value >> 8));
      poke_u8(word_addr + 3, static_cast<std::uint8_t>(value));
    }
  }
  if (count != 0 && !listeners_.empty()) {
    notify_written(addr, 4 * count);
  }
}

void GuestMemory::fill(std::uint32_t addr, std::uint32_t length,
                       std::uint8_t value) {
  for (std::uint32_t i = 0; i < length; ++i) {
    poke_u8(addr + i, value);
  }
  if (length != 0 && !listeners_.empty()) {
    notify_written(addr, length);
  }
}

void GuestMemory::load(std::uint32_t addr,
                       const std::vector<std::uint8_t>& bytes) {
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    poke_u8(addr + static_cast<std::uint32_t>(i), bytes[i]);
  }
  if (!bytes.empty() && !listeners_.empty()) {
    notify_written(addr, static_cast<std::uint32_t>(bytes.size()));
  }
}

void GuestMemory::add_write_listener(MemoryWriteListener* listener) {
  if (listener != nullptr) {
    listeners_.push_back(listener);
  }
}

void GuestMemory::remove_write_listener(MemoryWriteListener* listener) {
  std::erase(listeners_, listener);
}

} // namespace proxima::mem
