// Translation look-aside buffer model.
//
// The PROXIMA LEON3 platform has 64-entry instruction and data TLBs
// (Section III.A).  The DSR allocator draws code and data from pools made of
// a "diverse set of pages" precisely so that these TLBs are randomised too
// (Section III.B.5).  Translation is identity (the case study runs in a
// single flat address space, as on the bare-metal partition); the TLB only
// contributes timing: a miss costs a fixed table-walk penalty.
#pragma once

#include <cstdint>
#include <vector>

namespace proxima::mem {

struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t page_bytes = 4096;
};

struct TlbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  void reset() { *this = TlbStats{}; }
};

class Tlb {
public:
  explicit Tlb(TlbConfig config = {});

  /// Touch the page holding `addr`; returns true on hit.  Fully associative
  /// with LRU replacement, matching the SRMMU per-context TLB behaviour
  /// closely enough for timing purposes.
  bool access(std::uint32_t addr);

  /// Inline hit-path probe for the fast VM core: a most-recently-used
  /// memo that resolves the overwhelmingly common same-page access without
  /// the full associative scan.  Accounting (hit counter, LRU timestamp) is
  /// identical to `access`, so the two are interchangeable access-for-access
  /// — the differential VM suite relies on that.
  bool access_fast(std::uint32_t addr) {
    if (mru_index_ != kNoMru) {
      Entry& entry = entries_[mru_index_];
      if (entry.valid && entry.page == (addr >> page_shift_)) {
        entry.last_use = ++use_clock_;
        ++stats_.hits;
        return true;
      }
    }
    return access(addr);
  }

  /// Pure probe (no state change): would `access_fast` resolve `addr`
  /// through the MRU memo right now?  The superblock executor uses this to
  /// prove a run of fetches trivial, then books them in bulk with
  /// `account_memo_hits`.
  bool memo_covers(std::uint32_t addr) const {
    if (mru_index_ == kNoMru) {
      return false;
    }
    const Entry& entry = entries_[mru_index_];
    return entry.valid && entry.page == (addr >> page_shift_);
  }

  /// Book `n` deferred MRU-memo hits at once: equivalent to `n` successive
  /// `access_fast` calls on the memoised page with no other access to this
  /// TLB in between (hit counter += n, use-clock advanced by n, the entry
  /// stamped with the final value — the intermediate timestamps are
  /// unobservable because nothing reads LRU state between pure memo hits).
  /// Caller contract: `memo_covers` held when the deferred accesses
  /// logically happened and no interleaving access moved the memo.
  void account_memo_hits(std::uint64_t n) {
    use_clock_ += n;
    entries_[mru_index_].last_use = use_clock_;
    stats_.hits += n;
  }

  /// True if the page holding `addr` is resident (no state change).
  bool contains(std::uint32_t addr) const;

  void flush();

  const TlbConfig& config() const noexcept { return config_; }
  const TlbStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

private:
  struct Entry {
    std::uint32_t page = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  static constexpr std::uint32_t kNoMru = 0xffff'ffff;

  TlbConfig config_;
  TlbStats stats_;
  std::vector<Entry> entries_;
  std::uint64_t use_clock_ = 0;
  /// Index of the entry touched by the last access.  Only a memo:
  /// correctness never depends on it, and flush() drops it.  Stored as an
  /// index (not a pointer) so the default copy stays valid.
  std::uint32_t mru_index_ = kNoMru;
  std::uint32_t page_shift_ = 12;
  bool memo_ok_ = true;
};

} // namespace proxima::mem
