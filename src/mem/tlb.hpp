// Translation look-aside buffer model.
//
// The PROXIMA LEON3 platform has 64-entry instruction and data TLBs
// (Section III.A).  The DSR allocator draws code and data from pools made of
// a "diverse set of pages" precisely so that these TLBs are randomised too
// (Section III.B.5).  Translation is identity (the case study runs in a
// single flat address space, as on the bare-metal partition); the TLB only
// contributes timing: a miss costs a fixed table-walk penalty.
#pragma once

#include <cstdint>
#include <vector>

namespace proxima::mem {

struct TlbConfig {
  std::uint32_t entries = 64;
  std::uint32_t page_bytes = 4096;
};

struct TlbStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  void reset() { *this = TlbStats{}; }
};

class Tlb {
public:
  explicit Tlb(TlbConfig config = {});

  /// Touch the page holding `addr`; returns true on hit.  Fully associative
  /// with LRU replacement, matching the SRMMU per-context TLB behaviour
  /// closely enough for timing purposes.
  bool access(std::uint32_t addr);

  /// True if the page holding `addr` is resident (no state change).
  bool contains(std::uint32_t addr) const;

  void flush();

  const TlbConfig& config() const noexcept { return config_; }
  const TlbStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

private:
  struct Entry {
    std::uint32_t page = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
  };

  TlbConfig config_;
  TlbStats stats_;
  std::vector<Entry> entries_;
  std::uint64_t use_clock_ = 0;
};

} // namespace proxima::mem
