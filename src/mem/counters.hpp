// Aggregated performance counters, mirroring the counter set the paper
// reports in Table I (icmiss, dcmiss, L2miss, FPU, Instr) plus the extra
// observability the simulator affords.
#pragma once

#include <cstdint>

namespace proxima::mem {

struct PerfCounters {
  // Table I counters.
  std::uint64_t icache_miss = 0;
  std::uint64_t dcache_miss = 0;
  std::uint64_t l2_miss = 0;
  std::uint64_t fpu_ops = 0;      // maintained by the VM
  std::uint64_t instructions = 0; // maintained by the VM

  // Additional observability.
  std::uint64_t icache_access = 0;
  std::uint64_t dcache_access = 0;
  std::uint64_t l2_access = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t itlb_miss = 0;
  std::uint64_t dtlb_miss = 0;
  std::uint64_t dram_reads = 0;
  std::uint64_t dram_writes = 0;
  std::uint64_t l2_writebacks = 0;
  std::uint64_t coherence_violations = 0;
  std::uint64_t window_overflows = 0;  // maintained by the VM
  std::uint64_t window_underflows = 0; // maintained by the VM

  /// L2 miss ratio as the paper computes it: L2 misses over the sum of L1
  /// instruction and data misses (the total number of L2 accesses).
  double l2_miss_ratio() const {
    const std::uint64_t l1_misses = icache_miss + dcache_miss;
    return l1_misses == 0
               ? 0.0
               : static_cast<double>(l2_miss) / static_cast<double>(l1_misses);
  }

  void reset() { *this = PerfCounters{}; }

  /// Enumerate every counter as a (name, value) pair — the single place
  /// that knows the field list, used by the metrics registry so a new
  /// counter added here shows up in `proxima profile` automatically.  The
  /// mutable overload yields references (same order/names) so the campaign
  /// store can rebuild a snapshot field-by-field from a serialised record
  /// without a second field list.
  template <typename Fn> void for_each(Fn&& fn) const {
    enumerate(*this, fn);
  }
  template <typename Fn> void for_each(Fn&& fn) { enumerate(*this, fn); }

  friend bool operator==(const PerfCounters&, const PerfCounters&) = default;

private:
  template <typename Self, typename Fn> static void enumerate(Self& self,
                                                              Fn&& fn) {
    fn("icache_miss", self.icache_miss);
    fn("dcache_miss", self.dcache_miss);
    fn("l2_miss", self.l2_miss);
    fn("fpu_ops", self.fpu_ops);
    fn("instructions", self.instructions);
    fn("icache_access", self.icache_access);
    fn("dcache_access", self.dcache_access);
    fn("l2_access", self.l2_access);
    fn("loads", self.loads);
    fn("stores", self.stores);
    fn("itlb_miss", self.itlb_miss);
    fn("dtlb_miss", self.dtlb_miss);
    fn("dram_reads", self.dram_reads);
    fn("dram_writes", self.dram_writes);
    fn("l2_writebacks", self.l2_writebacks);
    fn("coherence_violations", self.coherence_violations);
    fn("window_overflows", self.window_overflows);
    fn("window_underflows", self.window_underflows);
  }
};

} // namespace proxima::mem
