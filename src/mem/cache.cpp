#include "cache.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

namespace proxima::mem {

namespace {
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}
} // namespace

Cache::Cache(CacheConfig config) : config_(std::move(config)) {
  if (config_.line_bytes == 0 || !std::has_single_bit(config_.line_bytes)) {
    throw std::invalid_argument(config_.name + ": line size must be a power of two");
  }
  if (config_.ways == 0) {
    throw std::invalid_argument(config_.name + ": ways must be >= 1");
  }
  if (config_.size_bytes % (config_.line_bytes * config_.ways) != 0) {
    throw std::invalid_argument(config_.name +
                                ": size must be a multiple of line*ways");
  }
  if (!std::has_single_bit(config_.sets())) {
    throw std::invalid_argument(config_.name + ": set count must be a power of two");
  }
  lines_.resize(static_cast<std::size_t>(config_.sets()) * config_.ways);
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config_.line_bytes));
  set_mask_ = config_.sets() - 1;
}

std::uint32_t Cache::set_index(std::uint32_t addr) const {
  const std::uint32_t line = addr / config_.line_bytes;
  switch (config_.placement) {
  case Placement::kModulo:
    return line & (config_.sets() - 1);
  case Placement::kRandomHash:
    // Seeded hash placement: the per-run seed re-randomises the mapping the
    // way a hardware time-randomised cache does.
    return static_cast<std::uint32_t>(mix64(line ^ hash_seed_)) &
           (config_.sets() - 1);
  }
  return 0;
}

std::uint32_t Cache::next_random() {
  // xorshift32; private stream so random replacement is reproducible per
  // cache instance and per reseed.
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 17;
  rng_state_ ^= rng_state_ << 5;
  return rng_state_;
}

Cache::Line* Cache::find_line(std::uint32_t addr) {
  const std::uint32_t set = set_index(addr);
  const std::uint32_t tag = tag_of(addr);
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      return &base[w];
    }
  }
  return nullptr;
}

const Cache::Line* Cache::find_line(std::uint32_t addr) const {
  return const_cast<Cache*>(this)->find_line(addr);
}

Cache::Line& Cache::choose_victim(std::uint32_t set) {
  Line* base = &lines_[static_cast<std::size_t>(set) * config_.ways];
  // Prefer an invalid way.
  for (std::uint32_t w = 0; w < config_.ways; ++w) {
    if (!base[w].valid) {
      return base[w];
    }
  }
  switch (config_.replacement) {
  case Replacement::kLru: {
    Line* victim = &base[0];
    for (std::uint32_t w = 1; w < config_.ways; ++w) {
      if (base[w].last_use < victim->last_use) {
        victim = &base[w];
      }
    }
    return *victim;
  }
  case Replacement::kRandom:
    return base[next_random() % config_.ways];
  }
  return base[0];
}

AccessResult Cache::read(std::uint32_t addr) {
  AccessResult result;
  if (Line* line = find_line(addr)) {
    ++stats_.hits;
    line->last_use = ++use_clock_;
    result.hit = true;
    if (line->stale) {
      ++stats_.stale_hits;
      result.stale_hit = true;
    }
    return result;
  }
  ++stats_.misses;
  const std::uint32_t set = set_index(addr);
  Line& victim = choose_victim(set);
  if (victim.valid) {
    ++stats_.evictions;
    if (victim.dirty) {
      ++stats_.writebacks;
      result.writeback_addr = addr_of_tag(victim.tag);
    }
  }
  victim.valid = true;
  victim.dirty = false;
  victim.stale = false;
  victim.tag = tag_of(addr);
  victim.last_use = ++use_clock_;
  result.filled = true;
  return result;
}

AccessResult Cache::write(std::uint32_t addr) {
  AccessResult result;
  switch (config_.write_policy) {
  case WritePolicy::kWriteThroughNoAllocate: {
    if (Line* line = find_line(addr)) {
      ++stats_.hits;
      line->last_use = ++use_clock_;
      line->stale = false; // line now matches what goes to memory
      result.hit = true;
    } else {
      ++stats_.misses;
    }
    ++stats_.write_through; // every write continues downstream
    return result;
  }
  case WritePolicy::kWriteBackAllocate: {
    if (Line* line = find_line(addr)) {
      ++stats_.hits;
      line->last_use = ++use_clock_;
      line->dirty = true;
      line->stale = false;
      result.hit = true;
      return result;
    }
    ++stats_.misses;
    const std::uint32_t set = set_index(addr);
    Line& victim = choose_victim(set);
    if (victim.valid) {
      ++stats_.evictions;
      if (victim.dirty) {
        ++stats_.writebacks;
        result.writeback_addr = addr_of_tag(victim.tag);
      }
    }
    victim.valid = true;
    victim.dirty = true;
    victim.stale = false;
    victim.tag = tag_of(addr);
    victim.last_use = ++use_clock_;
    result.filled = true;
    return result;
  }
  }
  return result;
}

bool Cache::contains(std::uint32_t addr) const {
  return find_line(addr) != nullptr;
}

bool Cache::line_dirty(std::uint32_t addr) const {
  const Line* line = find_line(addr);
  return line != nullptr && line->dirty;
}

std::optional<std::uint32_t> Cache::invalidate_line(std::uint32_t addr) {
  if (Line* line = find_line(addr)) {
    ++stats_.invalidations;
    line->valid = false;
    if (line->dirty) {
      line->dirty = false;
      return addr_of_tag(line->tag);
    }
  }
  return std::nullopt;
}

void Cache::invalidate_range(std::uint32_t addr, std::uint32_t length,
                             std::vector<std::uint32_t>* writebacks) {
  if (length == 0) {
    return;
  }
  const std::uint32_t first = line_base(addr);
  const std::uint32_t last = line_base(addr + length - 1);
  for (std::uint32_t line = first;; line += config_.line_bytes) {
    if (auto wb = invalidate_line(line)) {
      if (writebacks != nullptr) {
        writebacks->push_back(*wb);
      }
    }
    if (line == last) {
      break;
    }
  }
}

void Cache::invalidate_ranges(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& ranges,
    std::vector<std::uint32_t>* writebacks) {
  std::uint64_t span_lines = 0;
  for (const auto& [addr, length] : ranges) {
    if (length != 0) {
      span_lines += (line_base(addr + length - 1) - line_base(addr)) /
                        config_.line_bytes +
                    1;
    }
  }
  if (span_lines < lines_.size()) {
    // Small batch: the per-address probes visit fewer lines than a full
    // tag walk would.
    for (const auto& [addr, length] : ranges) {
      invalidate_range(addr, length, writebacks);
    }
    return;
  }
  // Tag walk: visit each line once and test membership against the sorted
  // disjoint ranges.  Only the closest range starting at or below the
  // line's last byte can cover it (every earlier range ends below that
  // range's start, hence below the line).
  for (Line& line : lines_) {
    if (!line.valid) {
      continue;
    }
    const std::uint32_t base = addr_of_tag(line.tag);
    const auto it = std::upper_bound(
        ranges.begin(), ranges.end(),
        std::make_pair(base + config_.line_bytes - 1,
                       ~std::uint32_t{0}));
    if (it == ranges.begin()) {
      continue;
    }
    const auto& [addr, length] = *std::prev(it);
    if (addr + length <= base) {
      continue;
    }
    ++stats_.invalidations;
    line.valid = false;
    if (line.dirty) {
      line.dirty = false;
      if (writebacks != nullptr) {
        writebacks->push_back(base);
      }
    }
  }
}

void Cache::invalidate_all(std::vector<std::uint32_t>* writebacks) {
  for (Line& line : lines_) {
    if (line.valid) {
      ++stats_.invalidations;
      if (line.dirty && writebacks != nullptr) {
        writebacks->push_back(addr_of_tag(line.tag));
      }
    }
    line.valid = false;
    line.dirty = false;
    line.stale = false;
  }
}

void Cache::mark_stale(std::uint32_t addr, std::uint32_t length) {
  if (length == 0) {
    return;
  }
  const std::uint32_t first = line_base(addr);
  const std::uint32_t last = line_base(addr + length - 1);
  for (std::uint32_t line_addr = first;; line_addr += config_.line_bytes) {
    if (Line* line = find_line(line_addr)) {
      line->stale = true;
    }
    if (line_addr == last) {
      break;
    }
  }
}

void Cache::reseed(std::uint64_t seed) {
  hash_seed_ = mix64(seed ^ 0xabcdef1234567890ULL);
  rng_state_ = static_cast<std::uint32_t>(mix64(seed) | 1U);
}

} // namespace proxima::mem
