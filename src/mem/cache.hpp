// Set-associative cache model (tag state + replacement + write policy).
//
// Models the three caches of the PROXIMA LEON3 platform (Section III.A):
//   IL1: 16 KiB, 4-way, LRU, read-only port
//   DL1: 16 KiB, 4-way, LRU, write-through no-write-allocate
//   L2 : 32 KiB, direct-mapped, write-back, unified
//
// Beyond the paper's COTS configuration, the model also supports the
// *hardware-randomised* cache variants that software randomisation is meant
// to substitute (random placement via a seeded hash, random replacement),
// so the ablation benches can put DSR and hardware randomisation
// side by side, as PROXIMA did.
//
// The model is tag-only: data lives in GuestMemory.  SPARC's lack of
// instruction/data coherence is modelled with a per-line `stale` bit that
// the hierarchy sets when memory under a valid line is rewritten (e.g. by
// the DSR relocation loop); fetching a stale line is a coherence violation
// unless the invalidation routine (Section III.B.1) has cleared it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace proxima::mem {

enum class Replacement : std::uint8_t { kLru, kRandom };
enum class Placement : std::uint8_t { kModulo, kRandomHash };
enum class WritePolicy : std::uint8_t {
  kWriteThroughNoAllocate,
  kWriteBackAllocate,
};

struct CacheConfig {
  std::string name = "cache";
  std::uint32_t size_bytes = 16 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 4; // 1 => direct-mapped
  Replacement replacement = Replacement::kLru;
  Placement placement = Placement::kModulo;
  WritePolicy write_policy = WritePolicy::kWriteBackAllocate;

  std::uint32_t sets() const { return size_bytes / line_bytes / ways; }
  /// Bytes covered by one way: the address range that maps every line of a
  /// way exactly once.  This is the random-offset range DSR must cover to
  /// randomise this cache's layout (Section III.B.4).
  std::uint32_t way_bytes() const { return size_bytes / ways; }
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;        // dirty evictions
  std::uint64_t write_through = 0;     // writes forwarded downstream
  std::uint64_t stale_hits = 0;        // coherence violations observed
  std::uint64_t invalidations = 0;     // lines dropped by invalidate calls

  std::uint64_t accesses() const { return hits + misses; }
  double miss_ratio() const {
    return accesses() == 0 ? 0.0
                           : static_cast<double>(misses) /
                                 static_cast<double>(accesses());
  }
  void reset() { *this = CacheStats{}; }
};

/// Outcome of a single cache access, consumed by the hierarchy to decide
/// what traffic continues downstream.
struct AccessResult {
  bool hit = false;
  bool stale_hit = false; // hit on a line whose backing memory changed
  /// Address of a dirty line evicted to make room (write-back caches only);
  /// the hierarchy charges a downstream write for it.
  std::optional<std::uint32_t> writeback_addr;
  /// True when the access allocated a line (miss fill).
  bool filled = false;
};

class Cache {
public:
  explicit Cache(CacheConfig config);

  /// Read access (instruction fetch or data load).
  AccessResult read(std::uint32_t addr);

  /// Inline clean-hit probe for the fast VM core.  Returns true — with the
  /// hit fully accounted exactly as `read` would (hit counter, LRU bump) —
  /// only for a valid, non-stale line under modulo placement.  Returns
  /// false with NO state change otherwise; the caller must then perform
  /// the full `read`.
  bool read_hit_fast(std::uint32_t addr) {
    if (config_.placement != Placement::kModulo) {
      return false;
    }
    const std::uint32_t tag = addr >> line_shift_;
    Line* base = &lines_[static_cast<std::size_t>(tag & set_mask_) *
                         config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == tag) {
        if (line.stale) {
          return false; // coherence bookkeeping needs the slow path
        }
        ++stats_.hits;
        line.last_use = ++use_clock_;
        return true;
      }
    }
    return false;
  }

  /// Pure probe (no state change): would `read_hit_fast` hit for `addr`
  /// right now?  True only for a valid, clean line under modulo placement
  /// — exactly the zero-stall case.  The superblock executor uses this to
  /// prove a run of same-line fetches trivial, then books their accounting
  /// in bulk with `account_read_hits_fast`.
  bool fast_hit_resident(std::uint32_t addr) const {
    if (config_.placement != Placement::kModulo) {
      return false;
    }
    const std::uint32_t tag = addr >> line_shift_;
    const Line* base = &lines_[static_cast<std::size_t>(tag & set_mask_) *
                               config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      const Line& line = base[w];
      if (line.valid && line.tag == tag) {
        return !line.stale;
      }
    }
    return false;
  }

  /// Book `n` deferred clean read hits on the line holding `addr`:
  /// equivalent to `n` successive `read_hit_fast` calls on that line with
  /// no other access to this cache in between (hit counter += n, use-clock
  /// advanced by n, the line stamped with the final value).  Staleness is
  /// deliberately NOT rechecked: the caller proved the line clean when the
  /// deferred accesses logically happened, and a store that staled it since
  /// switches the caller back to real per-access probes — the deferred
  /// hits all predate the store.
  void account_read_hits_fast(std::uint32_t addr, std::uint64_t n) {
    const std::uint32_t tag = addr >> line_shift_;
    Line* base = &lines_[static_cast<std::size_t>(tag & set_mask_) *
                         config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == tag) {
        stats_.hits += n;
        use_clock_ += n;
        line.last_use = use_clock_;
        return;
      }
    }
  }

  /// Inline write-hit probe, the store-path counterpart of
  /// `read_hit_fast`: accounts a hit exactly as `write` would (including
  /// the dirty/write-through policy effects) or changes nothing.
  bool write_hit_fast(std::uint32_t addr) {
    if (config_.placement != Placement::kModulo) {
      return false;
    }
    const std::uint32_t tag = addr >> line_shift_;
    Line* base = &lines_[static_cast<std::size_t>(tag & set_mask_) *
                         config_.ways];
    for (std::uint32_t w = 0; w < config_.ways; ++w) {
      Line& line = base[w];
      if (line.valid && line.tag == tag) {
        ++stats_.hits;
        line.last_use = ++use_clock_;
        line.stale = false;
        if (config_.write_policy == WritePolicy::kWriteBackAllocate) {
          line.dirty = true;
        } else {
          ++stats_.write_through;
        }
        return true;
      }
    }
    return false;
  }

  /// Inline single-line staleness probe: equivalent to `mark_stale` when
  /// the range sits inside one line (every aligned VM store does), falls
  /// back to it otherwise.
  void mark_stale_fast(std::uint32_t addr, std::uint32_t length) {
    if (length != 0 && config_.placement == Placement::kModulo &&
        line_base(addr) == line_base(addr + length - 1)) {
      const std::uint32_t tag = addr >> line_shift_;
      Line* base = &lines_[static_cast<std::size_t>(tag & set_mask_) *
                           config_.ways];
      for (std::uint32_t w = 0; w < config_.ways; ++w) {
        if (base[w].valid && base[w].tag == tag) {
          base[w].stale = true;
          return;
        }
      }
      return;
    }
    mark_stale(addr, length);
  }

  /// Write access; behaviour depends on the configured write policy.
  /// Write-through no-allocate: hit updates the line, miss changes nothing;
  /// either way the write is forwarded downstream (stats.write_through).
  /// Write-back allocate: miss fills the line; line becomes dirty.
  AccessResult write(std::uint32_t addr);

  /// True if the line holding `addr` is currently valid (no state change).
  bool contains(std::uint32_t addr) const;

  /// True if the line holding `addr` is valid and dirty.
  bool line_dirty(std::uint32_t addr) const;

  /// Drop the line holding `addr` if present.  Returns the dirty line's
  /// base address if a write-back is required (caller forwards it).
  std::optional<std::uint32_t> invalidate_line(std::uint32_t addr);

  /// Invalidate every line intersecting [addr, addr+length); dirty lines'
  /// base addresses are appended to `writebacks` if non-null.
  void invalidate_range(std::uint32_t addr, std::uint32_t length,
                        std::vector<std::uint32_t>* writebacks = nullptr);

  /// Invalidate every line intersecting any of `ranges` — sorted by
  /// address and pairwise disjoint (addr, length) pairs.  State-equivalent
  /// to one `invalidate_range` call per range; the writeback order is
  /// unspecified (callers count, they do not replay).  When the ranges
  /// span more lines than the cache holds, the tag array is walked once
  /// instead of probing per line address — the reseed fast path for the
  /// DSR invalidation routine over a whole retired layout.
  void invalidate_ranges(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& ranges,
      std::vector<std::uint32_t>* writebacks = nullptr);

  /// Invalidate everything.  Dirty lines are appended to `writebacks` if
  /// non-null (PikeOS flushes write-back caches on partition start).
  void invalidate_all(std::vector<std::uint32_t>* writebacks = nullptr);

  /// Mark valid lines intersecting [addr, addr+length) as stale: backing
  /// memory has been modified behind the cache's back (no I/D coherence).
  void mark_stale(std::uint32_t addr, std::uint32_t length);

  /// Re-seed the randomised placement hash / random replacement stream.
  /// Hardware-randomised platforms draw a new seed every run.
  void reseed(std::uint64_t seed);

  const CacheConfig& config() const noexcept { return config_; }
  const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_.reset(); }

  /// Set index for an address under the configured placement function.
  std::uint32_t set_index(std::uint32_t addr) const;

private:
  struct Line {
    std::uint32_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
    bool stale = false;
  };

  std::uint32_t line_base(std::uint32_t addr) const {
    return addr & ~(config_.line_bytes - 1);
  }
  std::uint32_t tag_of(std::uint32_t addr) const {
    return addr / config_.line_bytes;
  }
  /// Reconstruct a line's base address from its stored tag.
  std::uint32_t addr_of_tag(std::uint32_t tag) const {
    return tag * config_.line_bytes;
  }

  Line* find_line(std::uint32_t addr);
  const Line* find_line(std::uint32_t addr) const;
  Line& choose_victim(std::uint32_t set);
  std::uint32_t next_random();

  CacheConfig config_;
  CacheStats stats_;
  std::vector<Line> lines_; // sets * ways, row-major by set
  /// Precomputed shift/mask for the inline hit probes (line size and set
  /// count are validated powers of two at construction).
  std::uint32_t line_shift_ = 5;
  std::uint32_t set_mask_ = 0;
  std::uint64_t use_clock_ = 0;
  std::uint64_t hash_seed_ = 0x9e3779b97f4a7c15ULL;
  std::uint32_t rng_state_ = 0x1234567u;
};

} // namespace proxima::mem
