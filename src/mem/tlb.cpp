#include "tlb.hpp"

#include <bit>

namespace proxima::mem {

Tlb::Tlb(TlbConfig config) : config_(config) {
  entries_.resize(config_.entries);
  // The MRU memo needs a shift-expressible page size; with an exotic
  // non-power-of-two configuration the memo stays disabled and every
  // access takes the full scan (timing and stats are unaffected).
  memo_ok_ = config_.page_bytes != 0 && std::has_single_bit(config_.page_bytes);
  page_shift_ = memo_ok_
                    ? static_cast<std::uint32_t>(
                          std::countr_zero(config_.page_bytes))
                    : 0;
}

bool Tlb::access(std::uint32_t addr) {
  const std::uint32_t page = addr / config_.page_bytes;
  Entry* free_entry = nullptr;
  Entry* lru = &entries_[0];
  for (Entry& entry : entries_) {
    if (entry.valid && entry.page == page) {
      entry.last_use = ++use_clock_;
      ++stats_.hits;
      if (memo_ok_) {
        mru_index_ = static_cast<std::uint32_t>(&entry - entries_.data());
      }
      return true;
    }
    if (!entry.valid && free_entry == nullptr) {
      free_entry = &entry;
    }
    if (entry.last_use < lru->last_use) {
      lru = &entry;
    }
  }
  ++stats_.misses;
  Entry& victim = free_entry != nullptr ? *free_entry : *lru;
  victim.valid = true;
  victim.page = page;
  victim.last_use = ++use_clock_;
  if (memo_ok_) {
    mru_index_ = static_cast<std::uint32_t>(&victim - entries_.data());
  }
  return false;
}

bool Tlb::contains(std::uint32_t addr) const {
  const std::uint32_t page = addr / config_.page_bytes;
  for (const Entry& entry : entries_) {
    if (entry.valid && entry.page == page) {
      return true;
    }
  }
  return false;
}

void Tlb::flush() {
  for (Entry& entry : entries_) {
    entry.valid = false;
  }
  mru_index_ = kNoMru;
}

} // namespace proxima::mem
