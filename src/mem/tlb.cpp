#include "tlb.hpp"

namespace proxima::mem {

Tlb::Tlb(TlbConfig config) : config_(config) {
  entries_.resize(config_.entries);
}

bool Tlb::access(std::uint32_t addr) {
  const std::uint32_t page = addr / config_.page_bytes;
  Entry* free_entry = nullptr;
  Entry* lru = &entries_[0];
  for (Entry& entry : entries_) {
    if (entry.valid && entry.page == page) {
      entry.last_use = ++use_clock_;
      ++stats_.hits;
      return true;
    }
    if (!entry.valid && free_entry == nullptr) {
      free_entry = &entry;
    }
    if (entry.last_use < lru->last_use) {
      lru = &entry;
    }
  }
  ++stats_.misses;
  Entry& victim = free_entry != nullptr ? *free_entry : *lru;
  victim.valid = true;
  victim.page = page;
  victim.last_use = ++use_clock_;
  return false;
}

bool Tlb::contains(std::uint32_t addr) const {
  const std::uint32_t page = addr / config_.page_bytes;
  for (const Entry& entry : entries_) {
    if (entry.valid && entry.page == page) {
      return true;
    }
  }
  return false;
}

void Tlb::flush() {
  for (Entry& entry : entries_) {
    entry.valid = false;
  }
}

} // namespace proxima::mem
