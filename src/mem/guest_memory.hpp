// Sparse 32-bit guest physical memory.
//
// Backing store for the LEON3-class platform model.  SPARC v8 is big-endian;
// all multi-byte accessors use big-endian byte order so that relocated code
// images are bit-exact copies of the originals, as they would be on the real
// target.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace proxima::mem {

/// Observer of guest-memory mutations.  The fast VM core's decode cache
/// registers one so that any write behind its back — DSR relocation, a
/// static re-link reload, a guest store into code — invalidates the
/// affected predecoded instructions before they can be dispatched again.
class MemoryWriteListener {
public:
  virtual ~MemoryWriteListener() = default;
  /// [addr, addr+length) was (re)written.
  virtual void on_memory_written(std::uint32_t addr, std::uint32_t length) = 0;
  /// The whole address space was dropped (partition image wipe).
  virtual void on_memory_cleared() = 0;
};

class GuestMemory {
public:
  static constexpr std::uint32_t kPageBytes = 4096;

  std::uint8_t read_u8(std::uint32_t addr) const;
  std::uint16_t read_u16(std::uint32_t addr) const;
  std::uint32_t read_u32(std::uint32_t addr) const;
  std::uint64_t read_u64(std::uint32_t addr) const;
  double read_f64(std::uint32_t addr) const;

  void write_u8(std::uint32_t addr, std::uint8_t value);
  void write_u16(std::uint32_t addr, std::uint16_t value);
  void write_u32(std::uint32_t addr, std::uint32_t value);
  void write_u64(std::uint32_t addr, std::uint64_t value);
  void write_f64(std::uint32_t addr, double value);

  /// Copy `length` bytes from `src` to `dst` inside guest memory.  Used by
  /// the DSR runtime's eager relocation loop.  Non-overlapping ranges take
  /// a page-span memmove fast path (the relocation hot loop); overlapping
  /// ranges fall back to the ordered byte loop.
  void copy(std::uint32_t dst, std::uint32_t src, std::uint32_t length);

  /// Store `count` consecutive big-endian words starting at `addr` (the
  /// DSR metadata-table flush).  Exactly equivalent to `count` calls of
  /// write_u32 except that listeners get ONE notification for the whole
  /// span instead of one per word.
  void write_u32_span(std::uint32_t addr, const std::uint32_t* values,
                      std::uint32_t count);

  /// Fill a range with a byte value (e.g. zeroing a fresh pool chunk).
  void fill(std::uint32_t addr, std::uint32_t length, std::uint8_t value);

  /// Bulk load (program images).
  void load(std::uint32_t addr, const std::vector<std::uint8_t>& bytes);

  /// Number of physical pages currently materialised.
  std::size_t resident_pages() const noexcept { return pages_.size(); }

  /// Drop all contents (partition reboot wipes the partition image before
  /// the loader rewrites it).
  void clear() {
    pages_.clear();
    for (MemoryWriteListener* listener : listeners_) {
      listener->on_memory_cleared();
    }
  }

  /// Register / deregister a mutation observer.  Listeners are notified on
  /// every write; with none registered the notification cost is one branch.
  void add_write_listener(MemoryWriteListener* listener);
  void remove_write_listener(MemoryWriteListener* listener);

private:
  using Page = std::array<std::uint8_t, kPageBytes>;

  Page& page_for(std::uint32_t addr);
  const Page* page_if_present(std::uint32_t addr) const;

  void notify_written(std::uint32_t addr, std::uint32_t length) {
    for (MemoryWriteListener* listener : listeners_) {
      listener->on_memory_written(addr, length);
    }
  }

  /// Non-notifying byte write used by the bulk operations, which notify
  /// once for the whole range instead of once per byte.
  void poke_u8(std::uint32_t addr, std::uint8_t value) {
    page_for(addr)[addr % kPageBytes] = value;
  }

  std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
  std::vector<MemoryWriteListener*> listeners_;
};

} // namespace proxima::mem
