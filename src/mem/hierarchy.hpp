// LEON3-class memory hierarchy: IL1 + DL1 over a shared bus into a unified
// write-back L2, then DRAM (Figure 1 of the paper).
//
// The hierarchy owns tag state and timing; instruction/data *contents* live
// in GuestMemory and are read/written directly by the VM and the DSR
// runtime.  Because SPARC v8 provides no hardware coherence between the
// instruction and data paths, code rewritten in memory leaves stale lines
// behind; `note_memory_written` marks them and any subsequent hit on a stale
// line counts as a coherence violation (optionally fatal).  The DSR
// runtime's SPARC-compliant invalidation routine (Section III.B.1) clears
// the affected lines, which is exactly what the real routine achieves.
#pragma once

#include "cache.hpp"
#include "counters.hpp"
#include "tlb.hpp"

#include <cstdint>
#include <stdexcept>

namespace proxima::mem {

/// Latency model in cycles.  L1 hit cost is the pipeline's base memory-stage
/// occupancy and is charged by the VM; the hierarchy returns *additional*
/// stall cycles only.
struct LatencyConfig {
  std::uint32_t l2_hit = 8;       // L1 miss, L2 hit
  std::uint32_t dram_read = 28;   // L2 miss (line fill from DRAM)
  std::uint32_t dram_write = 28;  // dirty line write-back drain
  std::uint32_t bus = 2;          // per L1<->L2 transaction
  std::uint32_t store_drain = 4;  // write-buffer drain slot (bus + L2 tag)
  std::uint32_t tlb_walk = 24;    // SRMMU table walk on TLB miss
};

/// Raised on a stale-line hit when strict coherence checking is enabled.
class CoherenceError : public std::runtime_error {
public:
  explicit CoherenceError(const std::string& what)
      : std::runtime_error(what) {}
};

struct HierarchyConfig {
  CacheConfig il1;
  CacheConfig dl1;
  CacheConfig l2;
  TlbConfig itlb;
  TlbConfig dtlb;
  LatencyConfig latency;
};

class MemoryHierarchy {
public:
  explicit MemoryHierarchy(HierarchyConfig config);

  /// Instruction fetch at `addr`: ITLB + IL1 + (bus + L2) + (DRAM).
  /// Returns additional stall cycles beyond the 1-cycle fetch stage.
  std::uint32_t fetch(std::uint32_t addr);

  /// Data load: DTLB + DL1 + (bus + L2) + (DRAM).
  std::uint32_t load(std::uint32_t addr);

  // -------------------------------------------------------------------
  // Inline hit fast paths for the fast VM core.  Cycle-for-cycle and
  // counter-for-counter identical to fetch/load/store: the common case
  // (TLB memo hit + clean L1 hit) resolves entirely inline so the
  // dispatch loop never takes a call; every other case falls through to
  // the out-of-line continuations, which are the same code the slow
  // entry points use.  The differential VM suite pins the equivalence.
  // -------------------------------------------------------------------

  std::uint32_t fetch_fast(std::uint32_t addr) {
    if (itlb_.access_fast(addr)) [[likely]] {
      ++counters_.icache_access;
      if (il1_.read_hit_fast(addr)) [[likely]] {
        return 0;
      }
      return fetch_after_itlb(addr);
    }
    ++counters_.itlb_miss;
    ++counters_.icache_access;
    if (il1_.read_hit_fast(addr)) {
      return latency_.tlb_walk;
    }
    return latency_.tlb_walk + fetch_after_itlb(addr);
  }

  std::uint32_t load_fast(std::uint32_t addr) {
    if (dtlb_.access_fast(addr)) [[likely]] {
      ++counters_.dcache_access;
      ++counters_.loads;
      if (dl1_.read_hit_fast(addr)) [[likely]] {
        return 0;
      }
      return load_after_dtlb(addr);
    }
    ++counters_.dtlb_miss;
    ++counters_.dcache_access;
    ++counters_.loads;
    if (dl1_.read_hit_fast(addr)) {
      return latency_.tlb_walk;
    }
    return latency_.tlb_walk + load_after_dtlb(addr);
  }

  std::uint32_t store_fast(std::uint32_t addr, std::uint64_t current_cycle,
                           std::uint32_t length = 4) {
    std::uint32_t cycles = 0;
    il1_.mark_stale_fast(addr, length); // no I/D coherence on SPARC
    if (!dtlb_.access_fast(addr)) [[unlikely]] {
      ++counters_.dtlb_miss;
      cycles += latency_.tlb_walk;
    }
    ++counters_.dcache_access;
    ++counters_.stores;
    if (!dl1_.write_hit_fast(addr)) {
      (void)dl1_.write(addr);
    }
    const std::uint64_t now = current_cycle + cycles;
    if (store_buffer_free_at_ > now) {
      cycles += static_cast<std::uint32_t>(store_buffer_free_at_ - now);
    }
    if (l2_.write_hit_fast(addr)) [[likely]] {
      store_buffer_free_at_ = current_cycle + cycles + latency_.store_drain;
      return cycles;
    }
    return store_after_l2_probe(addr, current_cycle, cycles);
  }

  // -------------------------------------------------------------------
  // Bulk fetch accounting for the superblock execution tier.  A fetch is
  // "trivial" when it would resolve entirely through the inline hit paths
  // with zero stall cycles: ITLB MRU-memo hit plus a clean IL1 hit.  The
  // superblock executor proves a run of same-line fetches trivial once,
  // defers their accounting, and books them here in one call — the cycle
  // totals and every counter come out identical to per-access fetch_fast
  // calls (the differential VM suite pins this).
  // -------------------------------------------------------------------

  /// Pure probe, no state change: would `fetch_fast(addr)` return 0 while
  /// touching only the ITLB memo and one clean IL1 line?
  bool fetch_line_is_trivial(std::uint32_t addr) const {
    return itlb_.memo_covers(addr) && il1_.fast_hit_resident(addr);
  }

  /// Book `n` deferred trivial fetches of the line holding `addr`:
  /// counter-for-counter identical to `n` `fetch_fast` calls that all hit
  /// the ITLB memo and the same clean IL1 line (each returning 0 stall
  /// cycles).  Caller contract: `fetch_line_is_trivial(addr)` held when
  /// the deferred fetches logically happened and no other instruction-path
  /// access interleaved.
  void fetch_account_trivial(std::uint32_t addr, std::uint64_t n) {
    itlb_.account_memo_hits(n);
    counters_.icache_access += n;
    il1_.account_read_hits_fast(addr, n);
  }

  /// Data store of `length` bytes at the current pipeline cycle.  DL1 is
  /// write-through no-write-allocate; stores are absorbed by a single-entry
  /// write buffer that drains through the bus into the L2, so a store only
  /// stalls when it finds the buffer still draining (LEON3 behaviour).
  /// A store that lands under a valid IL1 line marks it stale: SPARC gives
  /// no instruction-path coherence.
  std::uint32_t store(std::uint32_t addr, std::uint64_t current_cycle,
                      std::uint32_t length = 4);

  /// Invalidate all cache levels and both TLBs.  Dirty L2 lines are
  /// drained to DRAM (counted, not timed: happens between partitions).
  void flush_all();

  /// PikeOS partition start: "automatically flush instruction and data
  /// caches" — the *L1* caches and TLBs.  The write-back unified L2 keeps
  /// its contents, as on the real platform; this is what gives the paper's
  /// 17-25% L2 miss ratios instead of all-cold misses.
  void flush_l1s();

  /// The DSR invalidation routine: write back + invalidate every line of
  /// all levels intersecting [addr, addr+length).  Returns the number of
  /// lines invalidated (the routine's cost is proportional; charged by the
  /// caller at relocation time, outside the unit of analysis).
  std::uint32_t invalidate_range(std::uint32_t addr, std::uint32_t length);

  /// Batched invalidation routine: equivalent to one `invalidate_range`
  /// call per entry of `ranges` (sorted by address, pairwise disjoint),
  /// but each level may satisfy a large batch with a single tag walk
  /// instead of per-line-address probes — the DSR reseed fast path.
  std::uint32_t invalidate_ranges(
      const std::vector<std::pair<std::uint32_t, std::uint32_t>>& ranges);

  /// Declare that memory [addr, addr+length) was rewritten behind the
  /// caches (DSR relocation, partition loader).  Marks covering lines stale.
  void note_memory_written(std::uint32_t addr, std::uint32_t length);

  /// When enabled, a hit on a stale line throws CoherenceError instead of
  /// just counting (failure-injection tests use this).
  void set_strict_coherence(bool strict) noexcept { strict_ = strict; }

  /// Re-seed randomised placement/replacement in all levels (hardware
  /// randomisation ablation; no effect on modulo/LRU caches).
  void reseed(std::uint64_t seed);

  PerfCounters& counters() noexcept { return counters_; }
  const PerfCounters& counters() const noexcept { return counters_; }

  Cache& il1() noexcept { return il1_; }
  Cache& dl1() noexcept { return dl1_; }
  Cache& l2() noexcept { return l2_; }
  Tlb& itlb() noexcept { return itlb_; }
  Tlb& dtlb() noexcept { return dtlb_; }
  const LatencyConfig& latency() const noexcept { return latency_; }

private:
  /// Unified-L2 read on the fill path (from an L1 miss).  Returns stall
  /// cycles contributed by the L2 and DRAM.
  std::uint32_t l2_fill(std::uint32_t addr);

  void on_stale_hit(const char* who, std::uint32_t addr);

  // Out-of-line continuations of the inline fast paths: everything after
  // the TLB (fetch/load) or after the L2 write probe (store) when the
  // inline clean-hit probe declined.
  std::uint32_t fetch_after_itlb(std::uint32_t addr);
  std::uint32_t load_after_dtlb(std::uint32_t addr);
  std::uint32_t store_after_l2_probe(std::uint32_t addr,
                                     std::uint64_t current_cycle,
                                     std::uint32_t cycles);

  Cache il1_;
  Cache dl1_;
  Cache l2_;
  Tlb itlb_;
  Tlb dtlb_;
  LatencyConfig latency_;
  PerfCounters counters_;
  std::uint64_t store_buffer_free_at_ = 0;
  bool strict_ = false;
};

/// Platform factory: the PROXIMA LEON3 configuration of Section III.A.
/// IL1/DL1 16 KiB 4-way LRU (32-byte lines), DL1 write-through
/// no-write-allocate, unified L2 32 KiB direct-mapped write-back,
/// 64-entry ITLB/DTLB.
HierarchyConfig leon3_hierarchy_config();

/// The same platform with hardware time-randomised caches (random placement
/// + random replacement at every level) — the hardware alternative DSR is
/// designed to substitute (ablation A5).
HierarchyConfig leon3_hw_randomised_config();

} // namespace proxima::mem
