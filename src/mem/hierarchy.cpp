#include "hierarchy.hpp"

#include <sstream>

namespace proxima::mem {

MemoryHierarchy::MemoryHierarchy(HierarchyConfig config)
    : il1_(std::move(config.il1)), dl1_(std::move(config.dl1)),
      l2_(std::move(config.l2)), itlb_(config.itlb), dtlb_(config.dtlb),
      latency_(config.latency) {}

void MemoryHierarchy::on_stale_hit(const char* who, std::uint32_t addr) {
  ++counters_.coherence_violations;
  if (strict_) {
    std::ostringstream oss;
    oss << who << ": stale line hit at address 0x" << std::hex << addr
        << " — memory was rewritten without running the invalidation routine";
    throw CoherenceError(oss.str());
  }
}

std::uint32_t MemoryHierarchy::l2_fill(std::uint32_t addr) {
  ++counters_.l2_access;
  const AccessResult l2 = l2_.read(addr);
  if (l2.hit) {
    if (l2.stale_hit) {
      on_stale_hit("L2", addr);
    }
    return latency_.l2_hit;
  }
  ++counters_.l2_miss;
  ++counters_.dram_reads;
  std::uint32_t cycles = latency_.l2_hit + latency_.dram_read;
  if (l2.writeback_addr) {
    ++counters_.l2_writebacks;
    ++counters_.dram_writes;
    cycles += latency_.dram_write;
  }
  return cycles;
}

std::uint32_t MemoryHierarchy::fetch(std::uint32_t addr) {
  std::uint32_t cycles = 0;
  if (!itlb_.access(addr)) {
    ++counters_.itlb_miss;
    cycles += latency_.tlb_walk;
  }
  ++counters_.icache_access;
  const AccessResult l1 = il1_.read(addr);
  if (l1.hit) {
    if (l1.stale_hit) {
      on_stale_hit("IL1", addr);
    }
    return cycles;
  }
  ++counters_.icache_miss;
  cycles += latency_.bus;
  cycles += l2_fill(addr);
  return cycles;
}

std::uint32_t MemoryHierarchy::load(std::uint32_t addr) {
  std::uint32_t cycles = 0;
  if (!dtlb_.access(addr)) {
    ++counters_.dtlb_miss;
    cycles += latency_.tlb_walk;
  }
  ++counters_.dcache_access;
  ++counters_.loads;
  const AccessResult l1 = dl1_.read(addr);
  if (l1.hit) {
    if (l1.stale_hit) {
      on_stale_hit("DL1", addr);
    }
    return cycles;
  }
  ++counters_.dcache_miss;
  cycles += latency_.bus;
  cycles += l2_fill(addr);
  return cycles;
}

std::uint32_t MemoryHierarchy::store(std::uint32_t addr,
                                     std::uint64_t current_cycle,
                                     std::uint32_t length) {
  std::uint32_t cycles = 0;
  il1_.mark_stale(addr, length); // no I/D coherence on SPARC
  if (!dtlb_.access(addr)) {
    ++counters_.dtlb_miss;
    cycles += latency_.tlb_walk;
  }
  ++counters_.dcache_access;
  ++counters_.stores;
  // DL1 is write-through no-write-allocate: a hit updates the line, a miss
  // leaves DL1 untouched; either way the store goes downstream.
  (void)dl1_.write(addr);

  // Single-entry write buffer: the store is absorbed unless the buffer is
  // still draining the previous store.
  const std::uint64_t now = current_cycle + cycles;
  if (store_buffer_free_at_ > now) {
    cycles += static_cast<std::uint32_t>(store_buffer_free_at_ - now);
  }
  // Drain through the bus into the unified L2 (write-back allocate there).
  std::uint32_t drain = latency_.store_drain;
  const AccessResult l2 = l2_.write(addr);
  if (!l2.hit) {
    // Allocate-on-write: the L2 fills the line from DRAM while draining.
    ++counters_.dram_reads;
    drain += latency_.dram_read;
    if (l2.writeback_addr) {
      ++counters_.l2_writebacks;
      ++counters_.dram_writes;
      drain += latency_.dram_write;
    }
  }
  store_buffer_free_at_ = current_cycle + cycles + drain;
  return cycles;
}

std::uint32_t MemoryHierarchy::fetch_after_itlb(std::uint32_t addr) {
  const AccessResult l1 = il1_.read(addr);
  if (l1.hit) {
    if (l1.stale_hit) {
      on_stale_hit("IL1", addr);
    }
    return 0;
  }
  ++counters_.icache_miss;
  return latency_.bus + l2_fill(addr);
}

std::uint32_t MemoryHierarchy::load_after_dtlb(std::uint32_t addr) {
  const AccessResult l1 = dl1_.read(addr);
  if (l1.hit) {
    if (l1.stale_hit) {
      on_stale_hit("DL1", addr);
    }
    return 0;
  }
  ++counters_.dcache_miss;
  return latency_.bus + l2_fill(addr);
}

std::uint32_t MemoryHierarchy::store_after_l2_probe(std::uint32_t addr,
                                                    std::uint64_t current_cycle,
                                                    std::uint32_t cycles) {
  std::uint32_t drain = latency_.store_drain;
  const AccessResult l2 = l2_.write(addr);
  if (!l2.hit) {
    // Allocate-on-write: the L2 fills the line from DRAM while draining.
    ++counters_.dram_reads;
    drain += latency_.dram_read;
    if (l2.writeback_addr) {
      ++counters_.l2_writebacks;
      ++counters_.dram_writes;
      drain += latency_.dram_write;
    }
  }
  store_buffer_free_at_ = current_cycle + cycles + drain;
  return cycles;
}

void MemoryHierarchy::flush_l1s() {
  il1_.invalidate_all();
  dl1_.invalidate_all();
  itlb_.flush();
  dtlb_.flush();
  store_buffer_free_at_ = 0;
}

void MemoryHierarchy::flush_all() {
  std::vector<std::uint32_t> writebacks;
  il1_.invalidate_all();
  dl1_.invalidate_all();
  l2_.invalidate_all(&writebacks);
  counters_.l2_writebacks += writebacks.size();
  counters_.dram_writes += writebacks.size();
  itlb_.flush();
  dtlb_.flush();
  store_buffer_free_at_ = 0;
}

std::uint32_t MemoryHierarchy::invalidate_range(std::uint32_t addr,
                                                std::uint32_t length) {
  const std::uint64_t before = il1_.stats().invalidations +
                               dl1_.stats().invalidations +
                               l2_.stats().invalidations;
  std::vector<std::uint32_t> writebacks;
  il1_.invalidate_range(addr, length);
  dl1_.invalidate_range(addr, length);
  l2_.invalidate_range(addr, length, &writebacks);
  counters_.l2_writebacks += writebacks.size();
  counters_.dram_writes += writebacks.size();
  const std::uint64_t after = il1_.stats().invalidations +
                              dl1_.stats().invalidations +
                              l2_.stats().invalidations;
  return static_cast<std::uint32_t>(after - before);
}

std::uint32_t MemoryHierarchy::invalidate_ranges(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& ranges) {
  const std::uint64_t before = il1_.stats().invalidations +
                               dl1_.stats().invalidations +
                               l2_.stats().invalidations;
  std::vector<std::uint32_t> writebacks;
  il1_.invalidate_ranges(ranges);
  dl1_.invalidate_ranges(ranges);
  l2_.invalidate_ranges(ranges, &writebacks);
  counters_.l2_writebacks += writebacks.size();
  counters_.dram_writes += writebacks.size();
  const std::uint64_t after = il1_.stats().invalidations +
                              dl1_.stats().invalidations +
                              l2_.stats().invalidations;
  return static_cast<std::uint32_t>(after - before);
}

void MemoryHierarchy::note_memory_written(std::uint32_t addr,
                                          std::uint32_t length) {
  il1_.mark_stale(addr, length);
  dl1_.mark_stale(addr, length);
  l2_.mark_stale(addr, length);
}

void MemoryHierarchy::reseed(std::uint64_t seed) {
  il1_.reseed(seed ^ 0x11U);
  dl1_.reseed(seed ^ 0x22U);
  l2_.reseed(seed ^ 0x33U);
}

HierarchyConfig leon3_hierarchy_config() {
  HierarchyConfig config;
  config.il1 = CacheConfig{.name = "IL1",
                           .size_bytes = 16 * 1024,
                           .line_bytes = 32,
                           .ways = 4,
                           .replacement = Replacement::kLru,
                           .placement = Placement::kModulo,
                           .write_policy = WritePolicy::kWriteBackAllocate};
  config.dl1 = CacheConfig{.name = "DL1",
                           .size_bytes = 16 * 1024,
                           .line_bytes = 32,
                           .ways = 4,
                           .replacement = Replacement::kLru,
                           .placement = Placement::kModulo,
                           .write_policy =
                               WritePolicy::kWriteThroughNoAllocate};
  config.l2 = CacheConfig{.name = "L2",
                          .size_bytes = 32 * 1024,
                          .line_bytes = 32,
                          .ways = 1, // direct-mapped
                          .replacement = Replacement::kLru,
                          .placement = Placement::kModulo,
                          .write_policy = WritePolicy::kWriteBackAllocate};
  config.itlb = TlbConfig{.entries = 64, .page_bytes = 4096};
  config.dtlb = TlbConfig{.entries = 64, .page_bytes = 4096};
  return config;
}

HierarchyConfig leon3_hw_randomised_config() {
  HierarchyConfig config = leon3_hierarchy_config();
  config.il1.placement = Placement::kRandomHash;
  config.il1.replacement = Replacement::kRandom;
  config.dl1.placement = Placement::kRandomHash;
  config.dl1.replacement = Replacement::kRandom;
  config.l2.placement = Placement::kRandomHash;
  // Direct-mapped L2: random placement only (no replacement choice exists).
  return config;
}

} // namespace proxima::mem
