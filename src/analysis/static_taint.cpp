#include "static_taint.hpp"

#include "core/dsr_pass.hpp"
#include "isa/registers.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>
#include <sstream>

namespace proxima::analysis {

namespace {

using isa::FixupKind;
using isa::Format;
using isa::Function;
using isa::Instruction;
using isa::Opcode;
using isa::kFp;
using isa::kG0;
using isa::kO7;
using isa::kSp;

/// A symbolic pointer built by a sethi/orlo fixup pair.  `complete` only
/// once both halves have been applied — an address is usable as a store
/// base exactly then.
struct SymRef {
  std::string symbol;
  std::int32_t addend = 0;
  bool complete = false;

  bool known() const noexcept { return !symbol.empty(); }
  friend bool operator==(const SymRef&, const SymRef&) = default;
};

/// Abstract value of one register / stack slot: taint (index into the
/// report's source table, -1 clean) plus the symbolic points-to fact.
/// `chain` is presentation only — it never participates in the fixpoint
/// comparison, so it cannot affect termination.
struct Value {
  int source = -1;
  SymRef pt;
  std::vector<std::string> chain;

  bool tainted() const noexcept { return source >= 0; }
  /// Lattice equality (what the fixpoint compares).
  bool same(const Value& other) const noexcept {
    return source == other.source && pt == other.pt;
  }
};

constexpr std::size_t kChainCap = 6;

struct State {
  bool reachable = false;
  std::array<Value, 32> regs;
  std::array<int, 16> fregs; // taint source per FP double register
  /// Best-effort stack-slot tracking, keyed (base register, offset).
  /// Cleared at every window shift and call — slots are only trusted
  /// across straight-line spill/reload pairs.
  std::map<std::pair<std::uint8_t, std::int32_t>, Value> slots;

  State() { fregs.fill(-1); }
};

/// May-taint join: tainted wins; on two distinct sources keep the smaller
/// id (the earlier-registered source) so the fixpoint is monotone on a
/// finite lattice.  Points-to facts must agree or are dropped.
void join_value(Value& into, const Value& from, bool& changed) {
  if (from.tainted() &&
      (!into.tainted() || from.source < into.source)) {
    into.source = from.source;
    into.chain = from.chain;
    changed = true;
  }
  if (into.pt != from.pt && into.pt.known()) {
    into.pt = SymRef{};
    changed = true;
  }
}

bool join_state(State& into, const State& from) {
  if (!from.reachable) {
    return false;
  }
  if (!into.reachable) {
    into = from;
    return true;
  }
  bool changed = false;
  for (std::size_t i = 0; i < into.regs.size(); ++i) {
    join_value(into.regs[i], from.regs[i], changed);
  }
  for (std::size_t i = 0; i < into.fregs.size(); ++i) {
    const int joined = from.fregs[i] >= 0 &&
                               (into.fregs[i] < 0 ||
                                from.fregs[i] < into.fregs[i])
                           ? from.fregs[i]
                           : into.fregs[i];
    if (joined != into.fregs[i]) {
      into.fregs[i] = joined;
      changed = true;
    }
  }
  for (const auto& [key, value] : from.slots) {
    const auto it = into.slots.find(key);
    if (it == into.slots.end()) {
      into.slots.emplace(key, value);
      changed = true;
    } else {
      join_value(it->second, value, changed);
    }
  }
  return changed;
}

bool same_state(const State& a, const State& b) {
  if (a.reachable != b.reachable) {
    return false;
  }
  for (std::size_t i = 0; i < a.regs.size(); ++i) {
    if (!a.regs[i].same(b.regs[i])) {
      return false;
    }
  }
  if (a.fregs != b.fregs) {
    return false;
  }
  if (a.slots.size() != b.slots.size()) {
    return false;
  }
  for (const auto& [key, value] : a.slots) {
    const auto it = b.slots.find(key);
    if (it == b.slots.end() || !value.same(it->second)) {
      return false;
    }
  }
  return true;
}

/// One basic block: [begin, end) instruction indices plus static
/// successors (leader indices).
struct Block {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::vector<std::size_t> successors;
};

class FunctionAnalysis {
public:
  FunctionAnalysis(const Function& function,
                   const std::set<std::string>& code_symbols,
                   const std::set<std::string>& observables,
                   const TaintOptions& options,
                   std::vector<TaintSource>& sources,
                   std::vector<LeakFinding>& findings)
      : function_(function), code_symbols_(code_symbols),
        observables_(observables), options_(options), sources_(sources),
        findings_(findings) {
    for (const isa::Fixup& fixup : function.fixups) {
      fixups_.emplace(fixup.index, &fixup);
    }
    build_blocks();
  }

  void run() {
    if (function_.code.empty()) {
      return;
    }
    State entry = seed_entry_state();
    // Worklist fixpoint over block-entry states.
    std::map<std::size_t, State> in;
    in[blocks_.begin()->first] = std::move(entry);
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& [leader, block] : blocks_) {
        const auto it = in.find(leader);
        if (it == in.end() || !it->second.reachable) {
          continue;
        }
        State out = it->second;
        transfer_block(block, out, /*record=*/false);
        for (const std::size_t successor : block.successors) {
          State& target = in[successor];
          const State before = target;
          if (join_state(target, out) && !same_state(before, target)) {
            changed = true;
          }
        }
      }
    }
    // Findings pass: re-run each reachable block once against its final
    // entry state, recording sink stores — one finding per store site.
    for (const auto& [leader, block] : blocks_) {
      const auto it = in.find(leader);
      if (it == in.end() || !it->second.reachable) {
        continue;
      }
      State state = it->second;
      transfer_block(block, state, /*record=*/true);
    }
  }

private:
  State seed_entry_state() {
    State state;
    state.reachable = true;
    if (options_.call_return_addresses) {
      state.regs[kO7].source = register_source(
          TaintSourceKind::kReturnAddress, TaintSource::kEntry,
          "return address in %o7 at entry of '" + function_.name + "'");
      state.regs[kO7].chain = {"%o7 live-in at entry"};
    }
    if (options_.stack_pointers) {
      for (const std::uint8_t reg : {kSp, kFp}) {
        state.regs[reg].source = register_source(
            TaintSourceKind::kStackPointer, TaintSource::kEntry,
            std::string("stack pointer in %") +
                std::string(isa::register_name(reg)) + " at entry of '" +
                function_.name + "'");
        state.regs[reg].chain = {std::string("%") +
                                 std::string(isa::register_name(reg)) +
                                 " live-in at entry"};
      }
    }
    return state;
  }

  void build_blocks() {
    const std::size_t count = function_.code.size();
    if (count == 0) {
      return;
    }
    std::set<std::size_t> leaders{0};
    for (const auto& [name, index] : function_.labels) {
      (void)name;
      if (index < count) {
        leaders.insert(index);
      }
    }
    for (const auto& [index, fixup] : fixups_) {
      if (fixup->kind == FixupKind::kBranch && index + 1 < count) {
        leaders.insert(index + 1);
      }
    }
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
      const std::size_t begin = *it;
      const auto next = std::next(it);
      const std::size_t end = next == leaders.end() ? count : *next;
      Block block{begin, end, {}};
      // Successors from the block's terminator (the first control
      // transfer; anything after it in the block is unreachable and
      // transfer_block stops there too).
      for (std::size_t i = begin; i < end; ++i) {
        const Opcode op = function_.code[i].op;
        if (op == Opcode::kHalt || op == Opcode::kJmpl) {
          break; // no static successors
        }
        if (isa::is_branch(op)) {
          if (const isa::Fixup* fixup = fixup_at(i, FixupKind::kBranch)) {
            const auto target = function_.labels.find(fixup->symbol);
            if (target != function_.labels.end()) {
              block.successors.push_back(target->second);
            }
          }
          if (op != Opcode::kBa && i + 1 < count) {
            block.successors.push_back(i + 1); // conditional fallthrough
          }
          break;
        }
        if (i + 1 == end && end < count) {
          block.successors.push_back(end); // plain fallthrough
        }
      }
      blocks_.emplace(begin, std::move(block));
    }
  }

  const isa::Fixup* fixup_at(std::size_t index, FixupKind kind) const {
    const auto [first, last] = fixups_.equal_range(index);
    for (auto it = first; it != last; ++it) {
      if (it->second->kind == kind) {
        return it->second;
      }
    }
    return nullptr;
  }

  int register_source(TaintSourceKind kind, std::size_t index,
                      std::string description) {
    // Keyed on the description: entry seeds share `kEntry` as their index
    // (%sp and %fp are distinct sources at the same pseudo-index).
    const std::string& key = description;
    const auto it = source_ids_.find(key);
    if (it != source_ids_.end()) {
      return it->second;
    }
    const int id = static_cast<int>(sources_.size());
    sources_.push_back(
        TaintSource{kind, function_.name, index, std::move(description)});
    source_ids_.emplace(key, id);
    return id;
  }

  void append_chain(Value& value, std::size_t index) {
    if (!value.tainted() || value.chain.size() >= kChainCap) {
      return;
    }
    std::string step = function_.name + "+" + std::to_string(index) + ": " +
                       isa::disassemble(function_.code[index]);
    if (value.chain.empty() || value.chain.back() != step) {
      value.chain.push_back(std::move(step));
    }
  }

  void define(State& state, std::uint8_t rd, Value value) {
    if (rd == kG0) {
      return; // %g0 is hardwired zero
    }
    state.regs[rd] = std::move(value);
  }

  void transfer_block(const Block& block, State& state, bool record) {
    for (std::size_t i = block.begin; i < block.end; ++i) {
      const Opcode op = function_.code[i].op;
      transfer(state, i, record);
      if (op == Opcode::kHalt || op == Opcode::kJmpl || isa::is_branch(op)) {
        break; // anything after a terminator in this block is dead code
      }
    }
  }

  void load_word(State& state, std::size_t i, std::uint8_t rd,
                 const Value& base, std::int32_t offset) {
    Value loaded;
    if (base.pt.complete) {
      if (options_.dsr_table_loads &&
          (base.pt.symbol == dsr::kFunctabSymbol ||
           base.pt.symbol == dsr::kStackoffSymbol)) {
        loaded.source = register_source(
            TaintSourceKind::kDsrTableLoad, i,
            "load from DSR table '" + base.pt.symbol + "' at " +
                function_.name + "+" + std::to_string(i));
        loaded.chain = {function_.name + "+" + std::to_string(i) + ": " +
                        isa::disassemble(function_.code[i])};
      }
      // Other symbol-addressed memory models as clean: data objects hold
      // payload, not layout, unless proven otherwise by the dynamic mode.
    } else {
      const std::uint8_t rs1 = function_.code[i].rs1;
      const auto it = state.slots.find({rs1, offset});
      if (it != state.slots.end()) {
        loaded = it->second;
        append_chain(loaded, i);
      }
    }
    define(state, rd, std::move(loaded));
  }

  void store_word(State& state, std::size_t i, Value value,
                  const Value& base, std::int32_t offset, bool record) {
    if (base.pt.complete) {
      if (record && value.tainted() &&
          observables_.contains(base.pt.symbol)) {
        LeakFinding finding;
        finding.function = function_.name;
        finding.instruction_index = i;
        finding.sink_symbol = base.pt.symbol;
        finding.sink_offset = base.pt.addend + offset;
        finding.source = sources_[static_cast<std::size_t>(value.source)];
        finding.chain = value.chain;
        finding.chain.push_back(function_.name + "+" + std::to_string(i) +
                                ": " + isa::disassemble(function_.code[i]) +
                                "  <- SINK " + base.pt.symbol + "+" +
                                std::to_string(finding.sink_offset));
        findings_.push_back(std::move(finding));
      }
      return;
    }
    const std::uint8_t rs1 = function_.code[i].rs1;
    append_chain(value, i);
    state.slots[{rs1, offset}] = std::move(value);
  }

  void window_shift(State& state, std::size_t i, bool save) {
    const Instruction& instr = function_.code[i];
    // Result computed with the OLD window's operands, written to rd in the
    // shifted window's coordinates (mirrors vm.cpp do_save/do_restore).
    Value result = state.regs[instr.rs1];
    if (isa::opcode_info(instr.op).format == Format::kR) {
      bool ignored = false;
      join_value(result, state.regs[instr.rs2], ignored);
      result.pt = SymRef{};
    } else if (result.pt.known()) {
      result.pt.addend += instr.imm;
    }
    append_chain(result, i);
    State next;
    next.reachable = true;
    next.fregs = state.fregs; // FP registers are not windowed
    for (std::size_t g = 0; g < 8; ++g) {
      next.regs[g] = state.regs[g];
    }
    if (save) {
      for (std::size_t r = 0; r < 8; ++r) {
        next.regs[24 + r] = state.regs[8 + r]; // ins <- caller's outs
      }
    } else {
      for (std::size_t r = 0; r < 8; ++r) {
        next.regs[8 + r] = state.regs[24 + r]; // outs <- callee's ins
      }
    }
    // Locals (and the unmapped half) come from an older window the
    // analysis has no facts about: clean.  Stack slots are keyed against
    // the pre-shift registers — drop them.
    state = std::move(next);
    define(state, instr.rd, std::move(result));
  }

  void transfer(State& state, std::size_t i, bool record) {
    const Instruction& instr = function_.code[i];
    const auto freg = [&](std::uint8_t index) -> int& {
      return state.fregs[index % state.fregs.size()];
    };
    switch (instr.op) {
    // --- integer ALU -----------------------------------------------------
    case Opcode::kAdd:
    case Opcode::kSub:
    case Opcode::kAnd:
    case Opcode::kOr:
    case Opcode::kXor:
    case Opcode::kSll:
    case Opcode::kSrl:
    case Opcode::kSra:
    case Opcode::kMul:
    case Opcode::kDiv:
    case Opcode::kAddcc:
    case Opcode::kSubcc:
    case Opcode::kOrcc: {
      // `mov` is or rd, rs, %g0 — preserve the full value (incl. points-to)
      // through register copies.
      if ((instr.op == Opcode::kOr || instr.op == Opcode::kAdd) &&
          (instr.rs1 == kG0 || instr.rs2 == kG0)) {
        Value copy =
            state.regs[instr.rs1 == kG0 ? instr.rs2 : instr.rs1];
        append_chain(copy, i);
        define(state, instr.rd, std::move(copy));
        break;
      }
      Value result = state.regs[instr.rs1];
      bool ignored = false;
      join_value(result, state.regs[instr.rs2], ignored);
      result.pt = SymRef{};
      append_chain(result, i);
      define(state, instr.rd, std::move(result));
      break;
    }
    case Opcode::kAddi:
    case Opcode::kSubi: {
      Value result = state.regs[instr.rs1];
      if (result.pt.known()) {
        result.pt.addend +=
            instr.op == Opcode::kAddi ? instr.imm : -instr.imm;
      }
      append_chain(result, i);
      define(state, instr.rd, std::move(result));
      break;
    }
    case Opcode::kAndi:
    case Opcode::kOri:
    case Opcode::kXori:
    case Opcode::kSlli:
    case Opcode::kSrli:
    case Opcode::kSrai:
    case Opcode::kMuli:
    case Opcode::kDivi:
    case Opcode::kAddcci:
    case Opcode::kSubcci: {
      Value result = state.regs[instr.rs1];
      result.pt = SymRef{};
      append_chain(result, i);
      define(state, instr.rd, std::move(result));
      break;
    }
    case Opcode::kSethi: {
      Value result;
      if (const isa::Fixup* fixup = fixup_at(i, FixupKind::kHi19)) {
        result.pt = SymRef{fixup->symbol, fixup->addend, false};
        if (options_.code_symbol_addresses &&
            code_symbols_.contains(fixup->symbol)) {
          result.source = register_source(
              TaintSourceKind::kCodeAddress, i,
              "address of code symbol '" + fixup->symbol + "' (sethi at " +
                  function_.name + "+" + std::to_string(i) + ")");
          result.chain = {function_.name + "+" + std::to_string(i) + ": " +
                          isa::disassemble(instr)};
        }
      }
      define(state, instr.rd, std::move(result));
      break;
    }
    case Opcode::kOrlo: {
      Value result = state.regs[instr.rs1];
      if (const isa::Fixup* fixup = fixup_at(i, FixupKind::kLo13)) {
        const bool matches_hi = result.pt.known() &&
                                result.pt.symbol == fixup->symbol &&
                                result.pt.addend == fixup->addend;
        result.pt = SymRef{fixup->symbol, fixup->addend, matches_hi};
        if (options_.code_symbol_addresses &&
            code_symbols_.contains(fixup->symbol)) {
          result.source = register_source(
              TaintSourceKind::kCodeAddress, i,
              "address of code symbol '" + fixup->symbol + "' (orlo at " +
                  function_.name + "+" + std::to_string(i) + ")");
        }
      }
      append_chain(result, i);
      define(state, instr.rd, std::move(result));
      break;
    }
    // --- memory ----------------------------------------------------------
    case Opcode::kLd:
    case Opcode::kLdx:
    case Opcode::kLdb:
    case Opcode::kLdbx:
      load_word(state, i, instr.rd, state.regs[instr.rs1], instr.imm);
      break;
    case Opcode::kLdd:
    case Opcode::kLddx:
      load_word(state, i, instr.rd, state.regs[instr.rs1], instr.imm);
      load_word(state, i, static_cast<std::uint8_t>(instr.rd + 1),
                state.regs[instr.rs1], instr.imm + 4);
      break;
    case Opcode::kSt:
    case Opcode::kStx:
    case Opcode::kStb:
    case Opcode::kStbx:
      store_word(state, i, state.regs[instr.rd], state.regs[instr.rs1],
                 instr.imm, record);
      break;
    case Opcode::kStd:
    case Opcode::kStdx:
      store_word(state, i, state.regs[instr.rd], state.regs[instr.rs1],
                 instr.imm, record);
      store_word(state, i, state.regs[(instr.rd + 1) % 32],
                 state.regs[instr.rs1], instr.imm + 4, record);
      break;
    case Opcode::kLdf:
    case Opcode::kLdfx: {
      // FP loads: best-effort via the stack-slot map only.
      int source = -1;
      if (!state.regs[instr.rs1].pt.complete) {
        for (const std::int32_t off : {instr.imm, instr.imm + 4}) {
          const auto it = state.slots.find({instr.rs1, off});
          if (it != state.slots.end() && it->second.tainted() &&
              (source < 0 || it->second.source < source)) {
            source = it->second.source;
          }
        }
      }
      freg(instr.rd) = source;
      break;
    }
    case Opcode::kStf:
    case Opcode::kStfx: {
      Value value;
      value.source = freg(instr.rd);
      if (value.tainted()) {
        value.chain = {function_.name + "+" + std::to_string(i) + ": " +
                       isa::disassemble(instr)};
      }
      store_word(state, i, value, state.regs[instr.rs1], instr.imm, record);
      store_word(state, i, std::move(value), state.regs[instr.rs1],
                 instr.imm + 4, record);
      break;
    }
    // --- control transfer ------------------------------------------------
    case Opcode::kCall: {
      // Caller-saved state dies across the call; %o7 receives the return
      // address (a code address of the current layout).
      for (std::uint8_t reg = 1; reg <= 13; ++reg) {
        state.regs[reg] = Value{};
      }
      state.slots.clear();
      Value o7;
      if (options_.call_return_addresses) {
        const isa::Fixup* fixup = fixup_at(i, FixupKind::kCall);
        o7.source = register_source(
            TaintSourceKind::kReturnAddress, i,
            "return address written by call" +
                (fixup != nullptr ? " '" + fixup->symbol + "'" : "") +
                " at " + function_.name + "+" + std::to_string(i));
        o7.chain = {function_.name + "+" + std::to_string(i) + ": " +
                    isa::disassemble(instr)};
      }
      state.regs[kO7] = std::move(o7);
      break;
    }
    case Opcode::kJmpl: {
      if (instr.rd != kG0 && options_.call_return_addresses) {
        Value link;
        link.source = register_source(
            TaintSourceKind::kReturnAddress, i,
            "return address written by jmpl at " + function_.name + "+" +
                std::to_string(i));
        link.chain = {function_.name + "+" + std::to_string(i) + ": " +
                      isa::disassemble(instr)};
        define(state, instr.rd, std::move(link));
      }
      break; // block terminator: transfer_block stops after this
    }
    case Opcode::kSave:
    case Opcode::kSavex:
      window_shift(state, i, /*save=*/true);
      break;
    case Opcode::kRestore:
      window_shift(state, i, /*save=*/false);
      break;
    // --- floating point --------------------------------------------------
    case Opcode::kFaddd:
    case Opcode::kFsubd:
    case Opcode::kFmuld:
    case Opcode::kFdivd: {
      const int a = freg(instr.rs1);
      const int b = freg(instr.rs2);
      freg(instr.rd) = a >= 0 && (b < 0 || a < b) ? a : b;
      break;
    }
    case Opcode::kFsqrtd:
    case Opcode::kFmovd:
    case Opcode::kFnegd:
    case Opcode::kFabsd:
      freg(instr.rd) = freg(instr.rs1);
      break;
    case Opcode::kFitod:
      freg(instr.rd) = state.regs[instr.rs1].source;
      break;
    case Opcode::kFdtoi: {
      Value result;
      result.source = freg(instr.rs1);
      define(state, instr.rd, std::move(result));
      break;
    }
    case Opcode::kRdtick:
      define(state, instr.rd, Value{});
      break;
    default:
      // Branches, kNop, kFcmpd, kIpoint, kFlush, kHalt, kTrapReloc: no
      // register effects the lattice tracks.
      break;
    }
  }

  const Function& function_;
  const std::set<std::string>& code_symbols_;
  const std::set<std::string>& observables_;
  const TaintOptions& options_;
  std::vector<TaintSource>& sources_;
  std::vector<LeakFinding>& findings_;
  std::multimap<std::size_t, const isa::Fixup*> fixups_;
  std::map<std::size_t, Block> blocks_; // keyed by leader index
  std::map<std::string, int> source_ids_; // description -> sources_ index
};

} // namespace

const char* taint_source_kind_name(TaintSourceKind kind) noexcept {
  switch (kind) {
  case TaintSourceKind::kReturnAddress:
    return "return-address";
  case TaintSourceKind::kCodeAddress:
    return "code-address";
  case TaintSourceKind::kDsrTableLoad:
    return "dsr-table-load";
  case TaintSourceKind::kStackPointer:
    break;
  }
  return "stack-pointer";
}

std::string describe(const LeakFinding& finding) {
  std::ostringstream oss;
  oss << finding.function << "+" << finding.instruction_index << ": "
      << finding.sink_symbol << "+" << finding.sink_offset << " <- "
      << finding.source.description << " ["
      << taint_source_kind_name(finding.source.kind) << "]";
  return oss.str();
}

TaintReport analyse_address_leaks(
    const isa::Program& program,
    const std::vector<std::string>& observable_symbols,
    const TaintOptions& options) {
  TaintReport report;
  std::set<std::string> code_symbols;
  for (const isa::Function& function : program.functions) {
    code_symbols.insert(function.name);
  }
  const std::set<std::string> observables(observable_symbols.begin(),
                                          observable_symbols.end());
  std::vector<TaintSource> sources;
  for (const isa::Function& function : program.functions) {
    if (function.code.empty()) {
      continue;
    }
    FunctionAnalysis analysis(function, code_symbols, observables, options,
                              sources, report.findings);
    analysis.run();
    ++report.functions_analysed;
    report.instructions_analysed += function.code.size();
  }
  return report;
}

} // namespace proxima::analysis
