// Static address-leak analysis over pre-link programs (ISSUE 8 tentpole).
//
// DSR's security argument rests on the layout staying secret: a program
// that writes any layout-derived value into its externally observable
// output hands an observer the very bits the per-reboot randomisation is
// supposed to hide.  This pass is a forward dataflow over each function of
// an `isa::Program` on the two-point lattice {clean, layout-derived},
// finding exactly those writes *before* the program ever runs.
//
// Sources (each individually switchable via TaintOptions):
//   * return addresses — %o7 at function entry, and every kCall / kJmpl
//     write (the return address IS a code address of the current layout);
//   * code-symbol addresses — kHi19/kLo13 fixup pairs (sethi/orlo) whose
//     symbol names a function: under DSR the linker/relocator rewrites
//     those immediates per layout;
//   * DSR table loads — loads through pointers to `__dsr_functab` /
//     `__dsr_stackoff`, the runtime's own record of the current layout;
//   * stack pointers — %sp/%fp at entry and everything derived from them
//     (the DSR stack offset randomises where the stack lives).
//
// Sinks: stores through a resolved sethi/orlo pointer into one of the
// caller-declared *observable* data symbols — the objects the measured
// target exposes to the outside world (MeasuredTarget::observable_symbols).
// A tainted store anywhere else (locals, scratch state, the DSR tables
// themselves) is not a leak.
//
// The pass is intentionally a MAY-leak analysis on registers and a
// best-effort one through memory: register/window/stack-slot flows are
// tracked (including kSave/kRestore window shifts), but values that round
// -trip through non-stack memory come back clean.  That trades false
// negatives in exotic code for zero false positives on pointer-free data
// flow — the right polarity for a lint gate wired to CI.
//
// The dynamic counterpart (vm/taint.hpp) checks the same property on real
// executions; `proxima lint` runs both and requires them to agree.
#pragma once

#include "isa/program.hpp"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace proxima::analysis {

enum class TaintSourceKind : std::uint8_t {
  kReturnAddress, // %o7 at entry, or written by kCall/kJmpl
  kCodeAddress,   // sethi/orlo fixup pair naming a function symbol
  kDsrTableLoad,  // load through a pointer to a __dsr_* table
  kStackPointer,  // %sp/%fp at entry (DSR randomises the stack offset)
};

const char* taint_source_kind_name(TaintSourceKind kind) noexcept;

/// Where a tainted value was born.
struct TaintSource {
  TaintSourceKind kind = TaintSourceKind::kReturnAddress;
  std::string function;
  /// Instruction index within `function`; `kEntry` for values live-in at
  /// function entry (%o7, %sp, %fp).
  std::size_t instruction_index = 0;
  std::string description;

  static constexpr std::size_t kEntry = static_cast<std::size_t>(-1);

  friend bool operator==(const TaintSource&, const TaintSource&) = default;
};

/// One confirmed static leak: a layout-derived value stored into an
/// observable data object.
struct LeakFinding {
  std::string function;          // function containing the sink store
  std::size_t instruction_index; // index of the store within the function
  std::string sink_symbol;       // observable data object written
  std::int32_t sink_offset = 0;  // byte offset into the object (addend+imm)
  TaintSource source;            // where the leaked value originated
  /// Human-readable propagation chain, source first, sink store last.
  std::vector<std::string> chain;
};

struct TaintOptions {
  bool call_return_addresses = true;
  bool code_symbol_addresses = true;
  bool dsr_table_loads = true;
  bool stack_pointers = true;
};

struct TaintReport {
  std::vector<LeakFinding> findings;
  std::size_t functions_analysed = 0;
  std::size_t instructions_analysed = 0;

  bool clean() const noexcept { return findings.empty(); }
};

/// One-line render of a finding:
///   "leak_step+17: %i7 -> lk_status+4 [return address in %o7 at entry]".
std::string describe(const LeakFinding& finding);

/// Analyse every function of `program` for stores of layout-derived values
/// into `observable_symbols` (the measured target's externally visible
/// data objects).  Pass the program AS THE CAMPAIGN RUNS IT — i.e. after
/// `dsr::apply_pass` for DSR campaigns — so the analysed code matches the
/// executed code.  Findings are ordered by (function order in the program,
/// instruction index); deterministic for a given input.
TaintReport analyse_address_leaks(
    const isa::Program& program,
    const std::vector<std::string>& observable_symbols,
    const TaintOptions& options = {});

} // namespace proxima::analysis
