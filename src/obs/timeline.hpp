// Chrome trace_event timeline recorder.
//
// Collects named spans from concurrent producers (engine workers, the
// adaptive controller, the hv runner) and writes the Chrome Trace Event
// Format JSON array that chrome://tracing, Perfetto and `catapult` load
// directly.  Tracks are addressed by (pid, tid) *strings* — "engine" /
// "worker-3", "partitions" / "image-guest" — and mapped to the integer
// ids the format requires at write time, with process_name/thread_name
// metadata events so the UI shows the human names.
//
// Two kinds of spans coexist:
//   * wall-clock spans (worker run/batch activity): timestamps from a
//     steady_clock epoch captured at Timeline construction, via now_us().
//   * simulated-time spans (hv partition frames): timestamps derived from
//     guest cycle counts, offset per run so consecutive runs don't
//     overlap on the track.  Same JSON, different clock — they live in
//     separate processes in the viewer, so the mixed clocks never share
//     an axis.
//
// Recording is mutex-serialised; this is fine because spans are recorded
// per-run / per-frame / per-batch (thousands per campaign), never
// per-instruction.  The Timeline is owned by the CLI and handed to the
// engine via CampaignConfig as a non-owning pointer; a null pointer means
// tracing is off and no producer does any work at all.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace proxima::obs {

class Timeline {
public:
  struct Event {
    std::string pid;  // process track, e.g. "engine", "partitions"
    std::string tid;  // thread track, e.g. "worker-0", "image-guest"
    std::string name; // span label shown in the viewer
    double ts_us = 0; // start, microseconds
    double dur_us = 0;
  };

  Timeline();

  /// Microseconds since this Timeline was constructed (steady clock).
  double now_us() const;

  void record(std::string pid, std::string tid, std::string name,
              double ts_us, double dur_us);

  std::size_t size() const;

  /// Emit the full trace as a Chrome trace_event JSON document:
  /// {"traceEvents": [...metadata..., ...spans sorted by (pid,tid,ts)...]}.
  void write_json(std::ostream& out) const;

private:
  mutable std::mutex mutex_;
  std::vector<Event> events_;
  std::uint64_t epoch_ns_ = 0;
};

} // namespace proxima::obs
