#include "obs/metrics.hpp"

#include <bit>
#include <cstdio>

namespace proxima::obs {

void Histogram::merge_from(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets[i] += other.buckets[i];
  }
  count += other.count;
  sum += other.sum;
  min = other.min < min ? other.min : min;
  max = other.max > max ? other.max : max;
}

void MetricsSnapshot::merge_from(const MetricsSnapshot& other) {
  for (const auto& [name, value] : other.counters) {
    counters[name] += value;
  }
  for (const auto& [name, histogram] : other.histograms) {
    histograms[name].merge_from(histogram);
  }
  for (const auto& [name, values] : other.series) {
    auto& dest = series[name];
    dest.insert(dest.end(), values.begin(), values.end());
  }
  for (const auto& [name, value] : other.gauges) {
    gauges[name] += value;
  }
}

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf2'9ce4'8422'2325ULL;
constexpr std::uint64_t kFnvPrime = 0x0000'0100'0000'01b3ULL;

void fold_bytes(std::uint64_t& hash, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= kFnvPrime;
  }
}

void fold_name(std::uint64_t& hash, const std::string& name) {
  fold_bytes(hash, name.data(), name.size());
  const unsigned char zero = 0;
  fold_bytes(hash, &zero, 1); // terminator: "ab"+"c" != "a"+"bc"
}

void fold_u64(std::uint64_t& hash, std::uint64_t value) {
  fold_bytes(hash, &value, sizeof(value));
}

void fold_double(std::uint64_t& hash, double value) {
  fold_u64(hash, std::bit_cast<std::uint64_t>(value));
}

} // namespace

std::uint64_t metrics_digest(const MetricsSnapshot& snapshot) {
  // std::map iteration is name-ordered, so the fold order is a pure
  // function of the merged content — never of merge order.  Gauges are
  // wall-clock/platform-local and intentionally not folded.
  std::uint64_t hash = kFnvOffset;
  for (const auto& [name, value] : snapshot.counters) {
    fold_name(hash, name);
    fold_u64(hash, value);
  }
  for (const auto& [name, histogram] : snapshot.histograms) {
    fold_name(hash, name);
    for (std::uint64_t bucket : histogram.buckets) {
      fold_u64(hash, bucket);
    }
    fold_u64(hash, histogram.count);
    fold_u64(hash, histogram.sum);
    fold_u64(hash, histogram.min);
    fold_u64(hash, histogram.max);
  }
  for (const auto& [name, values] : snapshot.series) {
    fold_name(hash, name);
    fold_u64(hash, values.size());
    for (double value : values) {
      fold_double(hash, value);
    }
  }
  return hash;
}

std::string metrics_digest_hex(const MetricsSnapshot& snapshot) {
  char buffer[2 + 16 + 1];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(metrics_digest(snapshot)));
  return buffer;
}

} // namespace proxima::obs
