#include "obs/timeline.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <map>
#include <tuple>

namespace proxima::obs {

namespace {

std::uint64_t steady_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Minimal JSON string escaping.  obs cannot depend on src/cli, and track
// names are ASCII identifiers; control characters are escaped defensively
// so the output always parses.
void write_escaped(std::ostream& out, const std::string& text) {
  out << '"';
  for (char c : text) {
    switch (c) {
    case '"':
      out << "\\\"";
      break;
    case '\\':
      out << "\\\\";
      break;
    case '\n':
      out << "\\n";
      break;
    case '\t':
      out << "\\t";
      break;
    case '\r':
      out << "\\r";
      break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        const char* hex = "0123456789abcdef";
        out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
      } else {
        out << c;
      }
    }
  }
  out << '"';
}

void write_number(std::ostream& out, double value) {
  if (!std::isfinite(value)) {
    out << 0;
    return;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.3f", value);
  out << buffer;
}

} // namespace

Timeline::Timeline() : epoch_ns_(steady_ns()) {}

double Timeline::now_us() const {
  return static_cast<double>(steady_ns() - epoch_ns_) / 1000.0;
}

void Timeline::record(std::string pid, std::string tid, std::string name,
                      double ts_us, double dur_us) {
  std::lock_guard lock(mutex_);
  events_.push_back(Event{std::move(pid), std::move(tid), std::move(name),
                          ts_us, dur_us});
}

std::size_t Timeline::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

void Timeline::write_json(std::ostream& out) const {
  std::vector<Event> events;
  {
    std::lock_guard lock(mutex_);
    events = events_;
  }
  // Stable track numbering: pids in first-seen order, tids per pid in
  // first-seen order — so worker-0 is thread 1, worker-1 thread 2, ...
  std::vector<std::string> pids;
  std::map<std::string, int> pid_ids;
  std::map<std::string, std::vector<std::string>> tids;
  std::map<std::pair<std::string, std::string>, int> tid_ids;
  for (const Event& event : events) {
    if (pid_ids.emplace(event.pid, static_cast<int>(pids.size()) + 1).second) {
      pids.push_back(event.pid);
    }
    auto key = std::make_pair(event.pid, event.tid);
    auto& per_pid = tids[event.pid];
    if (tid_ids.emplace(key, static_cast<int>(per_pid.size()) + 1).second) {
      per_pid.push_back(event.tid);
    }
  }
  std::stable_sort(events.begin(), events.end(),
                   [&](const Event& a, const Event& b) {
                     return std::tuple(pid_ids.at(a.pid),
                                       tid_ids.at({a.pid, a.tid}), a.ts_us) <
                            std::tuple(pid_ids.at(b.pid),
                                       tid_ids.at({b.pid, b.tid}), b.ts_us);
                   });

  out << "{\"traceEvents\": [";
  bool first = true;
  auto comma = [&] {
    if (!first) {
      out << ",";
    }
    first = false;
    out << "\n  ";
  };
  for (const std::string& pid : pids) {
    comma();
    out << "{\"ph\": \"M\", \"name\": \"process_name\", \"pid\": "
        << pid_ids.at(pid)
        << ", \"tid\": 0, \"args\": {\"name\": ";
    write_escaped(out, pid);
    out << "}}";
    for (const std::string& tid : tids.at(pid)) {
      comma();
      out << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": "
          << pid_ids.at(pid) << ", \"tid\": " << tid_ids.at({pid, tid})
          << ", \"args\": {\"name\": ";
      write_escaped(out, tid);
      out << "}}";
    }
  }
  for (const Event& event : events) {
    comma();
    out << "{\"ph\": \"X\", \"name\": ";
    write_escaped(out, event.name);
    out << ", \"cat\": \"proxima\", \"pid\": " << pid_ids.at(event.pid)
        << ", \"tid\": " << tid_ids.at({event.pid, event.tid}) << ", \"ts\": ";
    write_number(out, event.ts_us);
    out << ", \"dur\": ";
    write_number(out, event.dur_us);
    out << "}";
  }
  out << "\n]}\n";
}

} // namespace proxima::obs
