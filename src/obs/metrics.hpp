// Deterministic observability metrics for campaign execution.
//
// The project's core invariant — every measured run is a pure function of
// its global run index, so results are bit-identical at any worker count —
// is extended here to telemetry.  A `MetricsSnapshot` separates metrics by
// determinism class:
//
//   * counters    — u64 event counts accumulated as PER-RUN DELTAS (the
//                   runner brackets each run with snapshots, so per-runner
//                   construction work never leaks in).  u64 addition is
//                   commutative and associative, so any merge order over
//                   any sharding of the run set yields the same totals.
//   * histograms  — fixed log2 buckets over u64 samples plus u64
//                   count/sum/min/max.  All-integer state, all merges
//                   commutative: bit-identical across worker counts.
//   * series      — ordered double sequences produced single-threaded at
//                   deterministic points (e.g. the adaptive controller's
//                   pWCET trajectory at batch boundaries).
//   * gauges      — wall-clock and platform-local values (worker busy
//                   seconds, decode-cache occupancy).  Deliberately
//                   EXCLUDED from the digest: they are the only numbers
//                   allowed to vary between identical campaigns.
//
// `metrics_digest` is the telemetry analogue of `trace::times_digest`: an
// FNV-1a fold over the deterministic classes only, in name order.  Two
// campaigns print the same digest iff their counters, histograms and
// series are bit-identical — the cheap cross-worker-count check the CI
// uses (`proxima run --workers 8` vs `--workers 1`).
//
// Shards: each engine worker's runner owns a private `MetricsSnapshot`
// (alias `MetricsShard`) and touches it only from its own thread; the
// engine merges the shards at the collection barrier after the pool has
// joined.  Nothing here is on the VM hot path — the per-instruction mix is
// a raw u64 array owned by the runner (vm::Vm::set_mix_counters) and is
// folded into the snapshot once per run.
#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace proxima::obs {

/// Log2-bucketed histogram of u64 samples: bucket index = bit_width(value)
/// (0 for value 0, 64 for values >= 2^63).  Integer state only, so merges
/// are exact and order-independent.
struct Histogram {
  static constexpr std::size_t kBuckets = 65;

  std::array<std::uint64_t, kBuckets> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t max = 0;

  static std::size_t bucket_of(std::uint64_t value) noexcept {
    std::size_t bits = 0;
    while (value != 0) {
      ++bits;
      value >>= 1;
    }
    return bits;
  }

  void record(std::uint64_t value) {
    ++buckets[bucket_of(value)];
    ++count;
    sum += value;
    min = value < min ? value : min;
    max = value > max ? value : max;
  }

  void merge_from(const Histogram& other);

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  friend bool operator==(const Histogram&, const Histogram&) = default;
};

/// The merged (or per-worker, see the header comment) metrics registry.
struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, Histogram> histograms;
  std::map<std::string, std::vector<double>> series;
  std::map<std::string, double> gauges; // excluded from the digest

  void add(const std::string& name, std::uint64_t delta) {
    counters[name] += delta;
  }
  void record(const std::string& name, std::uint64_t value) {
    histograms[name].record(value);
  }
  void set_series(const std::string& name, std::span<const double> values) {
    series[name].assign(values.begin(), values.end());
  }
  /// Overwrite a gauge (engine-level facts: worker count, wall seconds).
  void set_gauge(const std::string& name, double value) {
    gauges[name] = value;
  }
  /// Accumulate into a gauge (per-run platform-local telemetry).
  void add_gauge(const std::string& name, double delta) {
    gauges[name] += delta;
  }

  /// Commutative merge: counters and gauges sum, histograms fold,
  /// same-name series concatenate (shards never produce series, so in
  /// practice series pass through unchanged).
  void merge_from(const MetricsSnapshot& other);

  bool empty() const {
    return counters.empty() && histograms.empty() && series.empty() &&
           gauges.empty();
  }

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

/// Per-worker shard: structurally a snapshot; the name marks intent (one
/// writer thread until the engine's collection barrier).
using MetricsShard = MetricsSnapshot;

/// FNV-1a digest over the deterministic classes (counters, histograms,
/// series — names and values; gauges excluded), rendered by the hex
/// variant as "0x%016x".  The telemetry analogue of trace::times_digest.
std::uint64_t metrics_digest(const MetricsSnapshot& snapshot);
std::string metrics_digest_hex(const MetricsSnapshot& snapshot);

} // namespace proxima::obs
