#include "cell.hpp"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <limits>

namespace proxima::store {

namespace {

// File layout (all integers little-endian):
//   magic   8 bytes  "PXSTORE1"
//   u32     header payload length
//   u64     FNV-1a checksum of the header payload
//   ...     header payload (scenario, fingerprint, seeds)
//   repeated records:
//     u32   record payload length
//     u64   FNV-1a checksum of the record payload
//     ...   record payload (see write_record)
constexpr char kMagic[8] = {'P', 'X', 'S', 'T', 'O', 'R', 'E', '1'};

std::uint64_t fnv1a(std::span<const char> bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

/// Little-endian append-only encoder for one payload (header or record).
class Encoder {
public:
  void u8(std::uint8_t value) { bytes_.push_back(static_cast<char>(value)); }
  void u32(std::uint32_t value) {
    for (int i = 0; i < 4; ++i) {
      bytes_.push_back(static_cast<char>(value >> (8 * i)));
    }
  }
  void u64(std::uint64_t value) {
    for (int i = 0; i < 8; ++i) {
      bytes_.push_back(static_cast<char>(value >> (8 * i)));
    }
  }
  void f64(double value) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    std::memcpy(&bits, &value, sizeof(bits));
    u64(bits);
  }
  void str(const std::string& value) {
    u32(static_cast<std::uint32_t>(value.size()));
    bytes_.insert(bytes_.end(), value.begin(), value.end());
  }

  const std::vector<char>& bytes() const noexcept { return bytes_; }

private:
  std::vector<char> bytes_;
};

/// Strict little-endian decoder over one payload; every read is
/// bounds-checked and a short payload throws (the frame length already
/// matched its checksum, so a short read here means a producer bug, not
/// disk corruption — still refuse).
class Decoder {
public:
  Decoder(std::span<const char> bytes, const std::string& path)
      : bytes_(bytes), path_(path) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[pos_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      value |= std::uint32_t{static_cast<unsigned char>(bytes_[pos_++])}
               << (8 * i);
    }
    return value;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t value = 0;
    for (int i = 0; i < 8; ++i) {
      value |= std::uint64_t{static_cast<unsigned char>(bytes_[pos_++])}
               << (8 * i);
    }
    return value;
  }
  double f64() {
    const std::uint64_t bits = u64();
    double value;
    std::memcpy(&value, &bits, sizeof(value));
    return value;
  }
  std::string str() {
    const std::uint32_t length = u32();
    need(length);
    std::string value(bytes_.data() + pos_, length);
    pos_ += length;
    return value;
  }

  bool done() const noexcept { return pos_ == bytes_.size(); }
  void expect_done() const {
    if (!done()) {
      throw StoreError(path_ + ": trailing bytes inside a framed payload");
    }
  }

private:
  void need(std::size_t count) const {
    if (bytes_.size() - pos_ < count) {
      throw StoreError(path_ + ": framed payload shorter than its contents");
    }
  }

  std::span<const char> bytes_;
  std::size_t pos_ = 0;
  const std::string& path_;
};

void encode_header(Encoder& enc, const CellHeader& header) {
  enc.str(header.scenario);
  enc.u64(header.fingerprint);
  enc.u64(header.input_seed);
  enc.u64(header.layout_seed);
}

CellHeader decode_header(Decoder& dec) {
  CellHeader header;
  header.scenario = dec.str();
  header.fingerprint = dec.u64();
  header.input_seed = dec.u64();
  header.layout_seed = dec.u64();
  dec.expect_done();
  return header;
}

constexpr std::uint8_t kFlagCorruptInput = 1u << 0;
constexpr std::uint8_t kFlagVerified = 1u << 1;
constexpr std::uint8_t kFlagHasMetrics = 1u << 2;

void encode_metrics(Encoder& enc, const obs::MetricsShard& metrics) {
  enc.u32(static_cast<std::uint32_t>(metrics.counters.size()));
  for (const auto& [name, value] : metrics.counters) {
    enc.str(name);
    enc.u64(value);
  }
  enc.u32(static_cast<std::uint32_t>(metrics.histograms.size()));
  for (const auto& [name, histogram] : metrics.histograms) {
    enc.str(name);
    enc.u64(histogram.count);
    enc.u64(histogram.sum);
    enc.u64(histogram.min);
    enc.u64(histogram.max);
    // Sparse buckets: per-run histograms hold a handful of samples over
    // 65 log2 buckets.
    std::uint32_t populated = 0;
    for (const std::uint64_t bucket : histogram.buckets) {
      populated += bucket != 0 ? 1 : 0;
    }
    enc.u32(populated);
    for (std::size_t i = 0; i < histogram.buckets.size(); ++i) {
      if (histogram.buckets[i] != 0) {
        enc.u32(static_cast<std::uint32_t>(i));
        enc.u64(histogram.buckets[i]);
      }
    }
  }
  enc.u32(static_cast<std::uint32_t>(metrics.series.size()));
  for (const auto& [name, values] : metrics.series) {
    enc.str(name);
    enc.u32(static_cast<std::uint32_t>(values.size()));
    for (const double value : values) {
      enc.f64(value);
    }
  }
  enc.u32(static_cast<std::uint32_t>(metrics.gauges.size()));
  for (const auto& [name, value] : metrics.gauges) {
    enc.str(name);
    enc.f64(value);
  }
}

obs::MetricsShard decode_metrics(Decoder& dec, const std::string& path) {
  obs::MetricsShard metrics;
  for (std::uint32_t i = dec.u32(); i != 0; --i) {
    std::string name = dec.str();
    metrics.counters[std::move(name)] = dec.u64();
  }
  for (std::uint32_t i = dec.u32(); i != 0; --i) {
    std::string name = dec.str();
    obs::Histogram histogram;
    histogram.count = dec.u64();
    histogram.sum = dec.u64();
    histogram.min = dec.u64();
    histogram.max = dec.u64();
    for (std::uint32_t b = dec.u32(); b != 0; --b) {
      const std::uint32_t bucket = dec.u32();
      if (bucket >= obs::Histogram::kBuckets) {
        throw StoreError(path + ": histogram bucket index out of range");
      }
      histogram.buckets[bucket] = dec.u64();
    }
    metrics.histograms[std::move(name)] = histogram;
  }
  for (std::uint32_t i = dec.u32(); i != 0; --i) {
    std::string name = dec.str();
    std::vector<double> values(dec.u32());
    for (double& value : values) {
      value = dec.f64();
    }
    metrics.series[std::move(name)] = std::move(values);
  }
  for (std::uint32_t i = dec.u32(); i != 0; --i) {
    std::string name = dec.str();
    metrics.gauges[std::move(name)] = dec.f64();
  }
  return metrics;
}

void encode_record(Encoder& enc, const StoredRun& run) {
  enc.u64(run.index);
  enc.f64(run.sample.uoa_cycles);
  std::uint8_t flags = 0;
  flags |= run.sample.corrupt_input ? kFlagCorruptInput : 0;
  flags |= run.verified ? kFlagVerified : 0;
  flags |= run.has_metrics ? kFlagHasMetrics : 0;
  enc.u8(flags);
  std::uint32_t counter_count = 0;
  run.sample.counters.for_each(
      [&](const char*, std::uint64_t) { ++counter_count; });
  enc.u32(counter_count);
  run.sample.counters.for_each(
      [&](const char*, std::uint64_t value) { enc.u64(value); });
  enc.u32(static_cast<std::uint32_t>(run.sample.partitions.size()));
  for (const casestudy::PartitionActivity& activity : run.sample.partitions) {
    enc.str(activity.partition);
    enc.u32(activity.overruns);
    enc.u32(static_cast<std::uint32_t>(activity.cycles.size()));
    for (const double cycles : activity.cycles) {
      enc.f64(cycles);
    }
  }
  if (run.has_metrics) {
    encode_metrics(enc, run.metrics);
  }
}

StoredRun decode_record(Decoder& dec, const std::string& path) {
  StoredRun run;
  run.index = dec.u64();
  run.sample.uoa_cycles = dec.f64();
  const std::uint8_t flags = dec.u8();
  run.sample.corrupt_input = (flags & kFlagCorruptInput) != 0;
  run.verified = (flags & kFlagVerified) != 0;
  run.has_metrics = (flags & kFlagHasMetrics) != 0;
  const std::uint32_t counter_count = dec.u32();
  std::uint32_t expected = 0;
  run.sample.counters.for_each([&](const char*, std::uint64_t&) { ++expected; });
  if (counter_count != expected) {
    // The counter block is positional (mem::PerfCounters::for_each order);
    // a different field count means the record predates or postdates this
    // build's counter set and cannot be replayed faithfully.
    throw StoreError(path + ": record carries " +
                     std::to_string(counter_count) +
                     " perf counters, this build expects " +
                     std::to_string(expected));
  }
  run.sample.counters.for_each(
      [&](const char*, std::uint64_t& value) { value = dec.u64(); });
  run.sample.partitions.resize(dec.u32());
  for (casestudy::PartitionActivity& activity : run.sample.partitions) {
    activity.partition = dec.str();
    activity.overruns = dec.u32();
    activity.cycles.resize(dec.u32());
    for (double& cycles : activity.cycles) {
      cycles = dec.f64();
    }
  }
  if (run.has_metrics) {
    run.metrics = decode_metrics(dec, path);
  }
  dec.expect_done();
  return run;
}

/// Write one length+checksum framed payload.
void write_frame(std::ofstream& out, const Encoder& enc,
                 const std::string& path) {
  const std::vector<char>& payload = enc.bytes();
  Encoder frame;
  frame.u32(static_cast<std::uint32_t>(payload.size()));
  frame.u64(fnv1a(payload));
  out.write(frame.bytes().data(),
            static_cast<std::streamsize>(frame.bytes().size()));
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  if (!out.good()) {
    throw StoreError(path + ": write failed");
  }
}

/// Read the whole file; empty optional when it does not exist.
std::vector<char> read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw StoreError(path + ": cannot open cell file");
  }
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  if (in.bad()) {
    throw StoreError(path + ": read failed");
  }
  return bytes;
}

/// Pull the next length+checksum framed payload out of `bytes` at `pos`.
std::span<const char> next_frame(std::span<const char> bytes,
                                 std::size_t& pos, const std::string& path,
                                 const char* what) {
  if (bytes.size() - pos < 12) {
    throw StoreError(path + ": truncated " + what + " frame at offset " +
                     std::to_string(pos));
  }
  Decoder header(bytes.subspan(pos, 12), path);
  const std::uint32_t length = header.u32();
  const std::uint64_t checksum = header.u64();
  pos += 12;
  if (bytes.size() - pos < length) {
    throw StoreError(path + ": truncated " + what + " payload at offset " +
                     std::to_string(pos) + " (want " +
                     std::to_string(length) + " bytes, have " +
                     std::to_string(bytes.size() - pos) + ")");
  }
  const std::span<const char> payload = bytes.subspan(pos, length);
  if (fnv1a(payload) != checksum) {
    throw StoreError(path + ": checksum mismatch in " + what +
                     " at offset " + std::to_string(pos) +
                     " — the cell is corrupt; delete it and re-run");
  }
  pos += length;
  return payload;
}

CellData parse_cell(std::span<const char> bytes, const std::string& path) {
  if (bytes.size() < sizeof(kMagic) ||
      std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw StoreError(path + ": not a proxima campaign cell (bad magic)");
  }
  std::size_t pos = sizeof(kMagic);
  CellData cell;
  {
    Decoder dec(next_frame(bytes, pos, path, "header"), path);
    cell.header = decode_header(dec);
  }
  while (pos < bytes.size()) {
    Decoder dec(next_frame(bytes, pos, path, "record"), path);
    cell.runs.push_back(decode_record(dec, path));
  }
  std::stable_sort(cell.runs.begin(), cell.runs.end(),
                   [](const StoredRun& a, const StoredRun& b) {
                     return a.index < b.index;
                   });
  cell.runs.erase(std::unique(cell.runs.begin(), cell.runs.end(),
                              [](const StoredRun& a, const StoredRun& b) {
                                return a.index == b.index;
                              }),
                  cell.runs.end());
  return cell;
}

} // namespace

std::uint64_t CellData::contiguous_prefix() const {
  std::uint64_t count = 0;
  for (const StoredRun& run : runs) {
    if (run.index != count) {
      break;
    }
    ++count;
  }
  return count;
}

CellData load_cell(const std::string& path) {
  const std::vector<char> bytes = read_file(path);
  return parse_cell(bytes, path);
}

CellWriter::CellWriter(std::string path, const CellHeader& header)
    : path_(std::move(path)) {
  if (std::filesystem::exists(path_)) {
    // Appending: re-validate the whole file so we never extend a corrupt
    // cell, and refuse to mix configs under one key.
    CellData existing = load_cell(path_);
    if (existing.header.scenario != header.scenario ||
        existing.header.fingerprint != header.fingerprint) {
      throw StoreError(
          path_ + ": cell belongs to scenario '" + existing.header.scenario +
          "' fingerprint " + std::to_string(existing.header.fingerprint) +
          ", refusing to append scenario '" + header.scenario +
          "' fingerprint " + std::to_string(header.fingerprint));
    }
    for (const StoredRun& run : existing.runs) {
      stored_.insert(run.index);
    }
    out_.open(path_, std::ios::binary | std::ios::app);
    if (!out_) {
      throw StoreError(path_ + ": cannot open cell file for append");
    }
    return;
  }
  out_.open(path_, std::ios::binary);
  if (!out_) {
    throw StoreError(path_ + ": cannot create cell file");
  }
  out_.write(kMagic, sizeof(kMagic));
  Encoder enc;
  encode_header(enc, header);
  write_frame(out_, enc, path_);
  out_.flush();
  if (!out_.good()) {
    throw StoreError(path_ + ": write failed");
  }
}

void CellWriter::append(std::uint64_t first_index,
                        std::span<const casestudy::RunSample> samples,
                        std::span<const obs::MetricsShard> run_metrics,
                        bool verified) {
  if (!run_metrics.empty() && run_metrics.size() != samples.size()) {
    throw StoreError(path_ +
                     ": append: run_metrics must be empty or match samples");
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const std::uint64_t index = first_index + i;
    if (!stored_.insert(index).second) {
      continue; // already on disk — runs are pure functions of their index
    }
    StoredRun run;
    run.index = index;
    run.sample = samples[i];
    run.verified = verified;
    run.has_metrics = !run_metrics.empty();
    if (run.has_metrics) {
      run.metrics = run_metrics[i];
    }
    Encoder enc;
    encode_record(enc, run);
    write_frame(out_, enc, path_);
  }
  out_.flush();
  if (!out_.good()) {
    throw StoreError(path_ + ": write failed");
  }
}

} // namespace proxima::store
