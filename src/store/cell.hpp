// On-disk campaign cell: the append-only record of one (scenario, config
// fingerprint) pair's measured runs.
//
// A cell is a single binary file.  It opens with a fixed magic + checksummed
// header (scenario name, config fingerprint, campaign seeds) and is followed
// by length-prefixed, individually FNV-checksummed run records.  Each record
// carries everything needed to replay the run without simulating it: the
// run index, the full `casestudy::RunSample` (UoA time, per-run performance
// counters, hv partition activity), the golden-model verification flag, and
// — when the producing campaign collected metrics — the exact per-run
// metrics delta the runner published (campaign_runner.hpp,
// `last_run_metrics`).
//
// Append-only is what makes interruption safe: the engine's sample sink
// emits only COMPLETED shards (engine.hpp), so a crash or fault mid-shard
// leaves at worst a torn trailing record, never a wrong one.  The reader is
// correspondingly strict — a bad magic, header mismatch, short read, or
// checksum failure throws `StoreError` with the offset; corrupt stores must
// be deleted, not silently half-read (they are certification evidence).
//
// Records may legitimately be non-contiguous (shards complete out of order;
// an interrupt persists shard [50,100) but not [0,50)), so the reader keeps
// every record sorted by run index and the resume path consumes
// `contiguous_prefix()` — exactly the runs the engine's `StoredPrefix`
// contract can splice.  Duplicate indices keep the first occurrence (runs
// are pure functions of their index, so duplicates are bit-identical by
// construction).
#pragma once

#include "casestudy/campaign.hpp"
#include "obs/metrics.hpp"

#include <cstdint>
#include <fstream>
#include <span>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

namespace proxima::store {

/// Any store-layer failure: missing/corrupt/truncated cell files, header
/// mismatches (fingerprint or scenario), metrics-presence mismatches.
struct StoreError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Identifies what a cell holds; written once at creation, validated on
/// every subsequent open.  The fingerprint (casestudy/fingerprint.hpp) is
/// the real key — the seeds are denormalised into the header so `proxima
/// sweep` can list a store without re-deriving configs.
struct CellHeader {
  std::string scenario;
  std::uint64_t fingerprint = 0;
  std::uint64_t input_seed = 0;
  std::uint64_t layout_seed = 0;

  friend bool operator==(const CellHeader&, const CellHeader&) = default;
};

/// One persisted run.
struct StoredRun {
  std::uint64_t index = 0;
  casestudy::RunSample sample;
  bool verified = false;
  bool has_metrics = false;
  obs::MetricsShard metrics; // per-run delta; empty unless has_metrics
};

/// A fully parsed cell: header + records sorted by run index (unique).
struct CellData {
  CellHeader header;
  std::vector<StoredRun> runs;

  /// Number of leading records forming the contiguous index range [0, n)
  /// — the longest prefix the engine can splice in front of a resumed
  /// campaign.
  std::uint64_t contiguous_prefix() const;
};

/// Parse `path` strictly; throws StoreError on any structural defect.
CellData load_cell(const std::string& path);

/// Create-or-append handle on a cell file.  Creating writes the header;
/// opening an existing file re-validates it against `header` (a scenario
/// or fingerprint mismatch refuses to mix configs) and indexes the stored
/// run set so appends never duplicate a record.  Writes are flushed per
/// append batch — the engine calls the sink once per completed shard, so a
/// flushed batch boundary is exactly a shard boundary.
class CellWriter {
public:
  CellWriter(std::string path, const CellHeader& header);

  CellWriter(const CellWriter&) = delete;
  CellWriter& operator=(const CellWriter&) = delete;

  /// Append the runs [first_index, first_index + samples.size()) that are
  /// not already stored.  `run_metrics` is empty or parallel to `samples`;
  /// `verified` stamps every appended record (the campaign contract:
  /// verify_outputs either verified every collected run or threw).
  void append(std::uint64_t first_index,
              std::span<const casestudy::RunSample> samples,
              std::span<const obs::MetricsShard> run_metrics, bool verified);

  bool contains(std::uint64_t index) const {
    return stored_.count(index) != 0;
  }
  std::uint64_t stored_count() const { return stored_.size(); }
  const std::string& path() const noexcept { return path_; }

private:
  std::string path_;
  std::unordered_set<std::uint64_t> stored_;
  std::ofstream out_;
};

} // namespace proxima::store
