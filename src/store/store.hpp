// Campaign store: the orchestration layer over on-disk cells (cell.hpp).
//
// `CampaignStore::run` / `run_adaptive` are drop-in replacements for the
// engine calls of the same shape, with persistence on both sides of the
// execution:
//
//   1. The cell for (scenario, config fingerprint) is loaded (if present)
//      and its longest contiguous run prefix becomes an
//      `exec::StoredPrefix` — the engine splices it into the result and
//      executes only the remainder, so an interrupted campaign resumes
//      bit-identically to an uninterrupted one at any worker count.
//   2. A `SampleSink` streams every freshly completed shard back into the
//      cell, so the next invocation starts where this one ended — whether
//      it ended by finishing, by fault, or by cancellation (completed
//      shards persist; partial shards never reach the sink).
//
// A campaign fully covered by the store executes zero runs: `proxima
// report --store` and `proxima sweep` re-render entirely from disk, and
// `StoreStats::simulated_runs` is the machine-checkable witness (the sweep
// manifest asserts it is 0 on a warm cache).
#pragma once

#include "casestudy/campaign.hpp"
#include "exec/engine.hpp"
#include "store/cell.hpp"

#include <cstdint>
#include <string>

namespace proxima::store {

/// What one store-backed campaign did, for manifests and header JSON.
struct StoreStats {
  std::uint64_t stored_runs = 0;    // served from the cell
  std::uint64_t simulated_runs = 0; // freshly executed (and persisted)
  std::uint64_t fingerprint = 0;
  std::string cell_path;
};

class CampaignStore {
public:
  /// `root` is a directory (created on first write) holding one cell file
  /// per (scenario, fingerprint): `<sanitised-scenario>-<16-hex>.pxs`.
  explicit CampaignStore(std::string root);

  const std::string& root() const noexcept { return root_; }

  /// The cell file `config` maps to (pure path computation — the file may
  /// not exist yet).
  std::string cell_path(const std::string& scenario,
                        const casestudy::CampaignConfig& config) const;

  /// Fixed-length campaign through the store: resume from the cell's
  /// prefix, execute the remainder with an engine built from `options`
  /// (its sample_sink slot is taken by the store), persist every completed
  /// shard.  Throws StoreError on a corrupt cell, a fingerprint mismatch,
  /// or a cell stored without metrics when `config.collect_metrics` is on.
  casestudy::CampaignResult run(const std::string& scenario,
                                const casestudy::CampaignConfig& config,
                                exec::EngineOptions options,
                                StoreStats* stats = nullptr) const;

  /// Adaptive campaign through the store.  Stored batches replay through
  /// the convergence controller without executing (run-index order at the
  /// same batch boundaries — the stop decision matches the live campaign
  /// exactly), so resuming an adaptive campaign is bit-identical too.
  exec::AdaptiveCampaignResult
  run_adaptive(const std::string& scenario,
               const casestudy::CampaignConfig& config,
               const exec::ConvergenceOptions& convergence,
               exec::EngineOptions options, StoreStats* stats = nullptr) const;

private:
  std::string root_;
};

} // namespace proxima::store
