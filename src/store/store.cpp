#include "store.hpp"

#include "casestudy/fingerprint.hpp"

#include <algorithm>
#include <filesystem>
#include <memory>
#include <utility>
#include <vector>

namespace proxima::store {

namespace {

/// Scenario names contain '/' ("control/operation-dsr"); flatten to one
/// path component.  The fingerprint suffix keeps sanitised collisions
/// apart, and the header check catches the rest.
std::string sanitise(const std::string& scenario) {
  std::string out = scenario;
  for (char& c : out) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '-';
    if (!keep) {
      c = '_';
    }
  }
  return out;
}

/// The loaded prefix, unpacked into the parallel arrays the engine's
/// `StoredPrefix` spans point at.
struct PrefixArrays {
  std::vector<casestudy::RunSample> samples;
  std::vector<obs::MetricsShard> run_metrics;
  std::vector<std::uint8_t> verified;

  exec::StoredPrefix view() const {
    exec::StoredPrefix prefix;
    prefix.samples = samples;
    prefix.run_metrics = run_metrics;
    prefix.verified = verified;
    return prefix;
  }
};

/// Load the cell (when present) and unpack its contiguous prefix, capped
/// at `limit` runs.  Enforces the metrics-presence contract: a config that
/// collects metrics cannot be served by records stored without them (the
/// per-run deltas are unrecoverable), while the converse merely ignores
/// the stored deltas.
PrefixArrays load_prefix(const std::string& path, const CellHeader& expected,
                         bool want_metrics, std::uint64_t limit) {
  PrefixArrays arrays;
  if (!std::filesystem::exists(path)) {
    return arrays;
  }
  CellData cell = load_cell(path);
  // The path already encodes (scenario, fingerprint), but a copied or
  // renamed cell file would otherwise be served silently — refuse to
  // resume from samples another configuration produced.
  if (cell.header.scenario != expected.scenario ||
      cell.header.fingerprint != expected.fingerprint) {
    throw StoreError(path + ": cell belongs to scenario '" +
                     cell.header.scenario + "' fingerprint " +
                     casestudy::fingerprint_hex(cell.header.fingerprint) +
                     ", expected '" + expected.scenario + "' " +
                     casestudy::fingerprint_hex(expected.fingerprint) +
                     "; delete it and re-run");
  }
  const std::uint64_t prefix =
      std::min<std::uint64_t>(cell.contiguous_prefix(), limit);
  arrays.samples.reserve(static_cast<std::size_t>(prefix));
  arrays.verified.reserve(static_cast<std::size_t>(prefix));
  if (want_metrics) {
    arrays.run_metrics.reserve(static_cast<std::size_t>(prefix));
  }
  for (std::uint64_t i = 0; i < prefix; ++i) {
    StoredRun& run = cell.runs[static_cast<std::size_t>(i)];
    if (want_metrics && !run.has_metrics) {
      throw StoreError(path + ": run " + std::to_string(run.index) +
                       " was stored without per-run metrics but this "
                       "campaign collects them; delete the cell or rerun "
                       "without metrics");
    }
    arrays.samples.push_back(std::move(run.sample));
    arrays.verified.push_back(run.verified ? 1 : 0);
    if (want_metrics) {
      arrays.run_metrics.push_back(std::move(run.metrics));
    }
  }
  return arrays;
}

/// Attach a persisting sample sink for `writer` to the engine options.
/// The engine serialises sink calls, so the writer needs no locking.
void attach_sink(exec::EngineOptions& options,
                 const std::shared_ptr<CellWriter>& writer, bool verified) {
  options.sample_sink =
      [writer, verified](const exec::ShardRange& range,
                         std::span<const casestudy::RunSample> samples,
                         std::span<const obs::MetricsShard> run_metrics) {
        writer->append(range.begin, samples, run_metrics, verified);
      };
}

void fill_stats(StoreStats* stats, std::uint64_t total_runs,
                std::uint64_t prefix_runs, std::uint64_t fingerprint,
                const std::string& path) {
  if (stats == nullptr) {
    return;
  }
  stats->stored_runs = std::min(prefix_runs, total_runs);
  stats->simulated_runs = total_runs - stats->stored_runs;
  stats->fingerprint = fingerprint;
  stats->cell_path = path;
}

} // namespace

CampaignStore::CampaignStore(std::string root) : root_(std::move(root)) {}

std::string
CampaignStore::cell_path(const std::string& scenario,
                         const casestudy::CampaignConfig& config) const {
  const std::uint64_t fingerprint = casestudy::config_fingerprint(config);
  return (std::filesystem::path(root_) /
          (sanitise(scenario) + "-" +
           casestudy::fingerprint_hex(fingerprint).substr(2) + ".pxs"))
      .string();
}

casestudy::CampaignResult
CampaignStore::run(const std::string& scenario,
                   const casestudy::CampaignConfig& config,
                   exec::EngineOptions options, StoreStats* stats) const {
  const std::uint64_t fingerprint = casestudy::config_fingerprint(config);
  const std::string path = cell_path(scenario, config);
  const CellHeader header{scenario, fingerprint, config.input_seed,
                          config.layout_seed};
  const PrefixArrays prefix =
      load_prefix(path, header, config.collect_metrics, config.runs);
  const std::uint64_t prefix_runs = prefix.samples.size();
  std::shared_ptr<CellWriter> writer;
  if (prefix_runs < config.runs) {
    // Something will execute: open (or create) the cell before the engine
    // starts so header mismatches surface before any simulation time is
    // spent.
    std::filesystem::create_directories(root_);
    writer = std::make_shared<CellWriter>(path, header);
    attach_sink(options, writer, config.verify_outputs);
  }
  const exec::CampaignEngine engine(std::move(options));
  casestudy::CampaignResult result = engine.run(config, prefix.view());
  fill_stats(stats, config.runs, prefix_runs, fingerprint, path);
  return result;
}

exec::AdaptiveCampaignResult
CampaignStore::run_adaptive(const std::string& scenario,
                            const casestudy::CampaignConfig& config,
                            const exec::ConvergenceOptions& convergence,
                            exec::EngineOptions options,
                            StoreStats* stats) const {
  const std::uint64_t fingerprint = casestudy::config_fingerprint(config);
  const std::string path = cell_path(scenario, config);
  const std::uint64_t budget =
      convergence.max_runs == 0 ? config.runs : convergence.max_runs;
  const CellHeader header{scenario, fingerprint, config.input_seed,
                          config.layout_seed};
  const PrefixArrays prefix =
      load_prefix(path, header, config.collect_metrics, budget);
  const std::uint64_t prefix_runs = prefix.samples.size();
  std::shared_ptr<CellWriter> writer;
  if (prefix_runs < budget) {
    // The controller may stop inside the prefix, in which case the writer
    // appends nothing — opening it is still cheap and keeps one code path.
    std::filesystem::create_directories(root_);
    writer = std::make_shared<CellWriter>(path, header);
    attach_sink(options, writer, config.verify_outputs);
  }
  const exec::CampaignEngine engine(std::move(options));
  exec::AdaptiveCampaignResult result =
      engine.run_adaptive(config, convergence, prefix.view());
  fill_stats(stats, result.runs(), prefix_runs, fingerprint, path);
  return result;
}

} // namespace proxima::store
