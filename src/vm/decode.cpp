#include "decode.hpp"

namespace proxima::vm {

namespace {

/// Ops a superblock may fuse: straight-line work with no control transfer,
/// register-window traffic, trap, or service handler.  [kNop..kStfx] is
/// exactly nop + ALU + mul/div + every load/store; the FP arithmetic block
/// is contiguous further up.  Everything else — branches, kCall/kJmpl,
/// kSave/kSavex/kRestore, kRdtick/kIpoint/kFlush/kHalt/kTrapReloc and the
/// kUndecodedOp/kInvalidOp sentinels — terminates formation.
bool fusable_handler(std::uint8_t handler) {
  return handler <= static_cast<std::uint8_t>(isa::Opcode::kStfx) ||
         (handler >= static_cast<std::uint8_t>(isa::Opcode::kFaddd) &&
          handler <= static_cast<std::uint8_t>(isa::Opcode::kFabsd));
}

} // namespace

DecodeCache::Page& DecodeCache::page_slow(std::uint32_t index) {
  auto it = pages_.find(index);
  if (it == pages_.end()) {
    if (pages_.size() >= kMaxPages) {
      // Footprint cap: drop everything rather than track per-page LRU —
      // re-decoding is cheap and this fires only after DSR relocation has
      // visited thousands of distinct pool pages.
      invalidate_all();
    }
    it = pages_.emplace(index, std::make_unique<Page>()).first;
  }
  return *it->second;
}

void DecodeCache::decode_into(DecodedOp& op, std::uint32_t pc,
                              const mem::GuestMemory& memory) {
  const std::uint32_t word = memory.read_u32(pc);
  try {
    const isa::Instruction instr = isa::decode(word);
    op.handler = static_cast<std::uint8_t>(instr.op);
    op.rd = instr.rd;
    op.rs1 = instr.rs1;
    op.rs2 = instr.rs2;
    op.imm = instr.imm;
  } catch (const isa::DecodeError&) {
    op = DecodedOp{kInvalidOp, 0, 0, 0, 0};
  }
}

void DecodeCache::predecode_range(const mem::GuestMemory& memory,
                                  std::uint32_t addr, std::uint32_t length) {
  if (length == 0) {
    return;
  }
  const std::uint32_t first = addr & ~3u;
  const std::uint32_t last = (addr + length - 1) & ~3u;
  for (std::uint32_t pc = first;; pc += 4) {
    Page& page = page_slow(pc >> kPageShift);
    DecodedOp& op = page.ops[(pc & ((1u << kPageShift) - 1)) >> 2];
    ++stats_.decodes;
    decode_into(op, pc, memory);
    if (pc == last) {
      break;
    }
  }
}

std::uint16_t DecodeCache::form_superblock(Page& page, std::uint32_t slot) {
  std::uint32_t end = slot;
  while (end < kOpsPerPage && fusable_handler(page.ops[end].handler)) {
    ++end;
  }
  const std::uint32_t count = end - slot;
  if (count < kMinSuperblockOps) {
    if (end < kOpsPerPage && page.ops[end].handler == kUndecodedOp) {
      // Run cut short by a slot nobody has decoded yet: no verdict —
      // retry once the op-at-a-time path decodes it.  Formation itself
      // never decodes, so the `decodes` gauge stays identical between the
      // fast and fast-sb cores.
      return kSbUnexplored;
    }
    page.sb_head[slot] = kSbDeclined;
    return kSbDeclined;
  }
  if (page.superblocks.size() >= kMaxBlocksPerPage) {
    compact_superblocks(page);
  }
  Superblock sb;
  sb.begin = static_cast<std::uint16_t>(slot);
  sb.count = static_cast<std::uint16_t>(count);
  sb.plan.resize(count);
  const std::uint32_t line_words =
      costs_.fetch_line_words == 0 ? 1 : costs_.fetch_line_words;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint8_t handler = page.ops[slot + i].handler;
    SuperblockOp& op = sb.plan[i];
    // The unconditional pre-fault charge: the 1-cycle dispatch base, plus
    // the full multiply latency for kMul/kMuli (the only extra charge the
    // op-at-a-time core books with no fault check in front of it).  Every
    // other latency stays behind its fault check in the executor.
    op.pre_cycles =
        (handler == static_cast<std::uint8_t>(isa::Opcode::kMul) ||
         handler == static_cast<std::uint8_t>(isa::Opcode::kMuli))
            ? static_cast<std::uint16_t>(costs_.mul_cycles)
            : std::uint16_t{1};
    // Pages are 4 KiB-aligned, a multiple of any line size, so a line
    // boundary is simply a slot index divisible by the line's word count.
    op.new_line = i == 0 || (slot + i) % line_words == 0;
  }
  page.superblocks.push_back(std::move(sb));
  const std::uint16_t head = static_cast<std::uint16_t>(page.superblocks.size());
  page.sb_head[slot] = head;
  ++stats_.superblocks_formed;
  return head;
}

void DecodeCache::compact_superblocks(Page& page) {
  std::vector<Superblock> live;
  live.reserve(page.superblocks.size() / 2);
  for (Superblock& sb : page.superblocks) {
    if (sb.live) {
      live.push_back(std::move(sb));
    }
  }
  page.superblocks = std::move(live);
  for (std::uint16_t& head : page.sb_head) {
    if (head != kSbDeclined) {
      head = kSbUnexplored;
    }
  }
  for (std::size_t i = 0; i < page.superblocks.size(); ++i) {
    page.sb_head[page.superblocks[i].begin] =
        static_cast<std::uint16_t>(i + 1);
  }
}

void DecodeCache::invalidate_all() {
  ++stats_.full_invalidations;
  for (const auto& [index, page] : pages_) {
    for (const Superblock& sb : page->superblocks) {
      if (sb.live) {
        ++stats_.superblocks_invalidated;
      }
    }
  }
  pages_.clear();
  mru_ = nullptr;
  mru_index_ = 0xffff'ffff;
}

void DecodeCache::on_memory_written(std::uint32_t addr, std::uint32_t length) {
  if (length == 0) {
    return;
  }
  ++stats_.write_invalidation_events;
  invalidate_range(addr, length);
}

void DecodeCache::invalidate_range(std::uint32_t addr, std::uint32_t length) {
  if (length == 0) {
    return;
  }
  const std::uint32_t first_word = addr >> 2;
  const std::uint32_t last_word = (addr + length - 1) >> 2;
  const std::uint32_t first_page = first_word >> (kPageShift - 2);
  const std::uint32_t last_page = last_word >> (kPageShift - 2);
  for (std::uint32_t index = first_page;; ++index) {
    const auto it = pages_.find(index);
    if (it != pages_.end()) {
      Page& page = *it->second;
      const std::uint32_t begin =
          index == first_page ? first_word & (kOpsPerPage - 1) : 0;
      const std::uint32_t end =
          index == last_page ? (last_word & (kOpsPerPage - 1)) + 1
                             : kOpsPerPage;
      // Kill every live superblock overlapping the written slots before
      // resetting them: a block's ops are about to change under it.  The
      // record stays in place (an executor mid-block polls `live` after
      // stores and bails); only the head anchor is unhooked.
      for (Superblock& sb : page.superblocks) {
        if (sb.live && sb.begin < end &&
            static_cast<std::uint32_t>(sb.begin) + sb.count > begin) {
          sb.live = false;
          page.sb_head[sb.begin] = kSbUnexplored;
          ++stats_.superblocks_invalidated;
        }
      }
      for (std::uint32_t slot = begin; slot < end; ++slot) {
        if (page.ops[slot].handler != kUndecodedOp) {
          ++stats_.invalidated_slots;
        }
        page.ops[slot].handler = kUndecodedOp;
        // Written slots also drop any declined/explored mark: the slot's
        // contents changed, so yesterday's verdict is void.
        page.sb_head[slot] = kSbUnexplored;
      }
    }
    if (index == last_page) {
      break;
    }
  }
}

} // namespace proxima::vm
