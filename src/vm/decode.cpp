#include "decode.hpp"

namespace proxima::vm {

DecodeCache::Page& DecodeCache::page_slow(std::uint32_t index) {
  auto it = pages_.find(index);
  if (it == pages_.end()) {
    if (pages_.size() >= kMaxPages) {
      // Footprint cap: drop everything rather than track per-page LRU —
      // re-decoding is cheap and this fires only after DSR relocation has
      // visited thousands of distinct pool pages.
      invalidate_all();
    }
    it = pages_.emplace(index, std::make_unique<Page>()).first;
  }
  return *it->second;
}

void DecodeCache::decode_into(DecodedOp& op, std::uint32_t pc,
                              const mem::GuestMemory& memory) {
  const std::uint32_t word = memory.read_u32(pc);
  try {
    const isa::Instruction instr = isa::decode(word);
    op.handler = static_cast<std::uint8_t>(instr.op);
    op.rd = instr.rd;
    op.rs1 = instr.rs1;
    op.rs2 = instr.rs2;
    op.imm = instr.imm;
  } catch (const isa::DecodeError&) {
    op = DecodedOp{kInvalidOp, 0, 0, 0, 0};
  }
}

void DecodeCache::predecode_range(const mem::GuestMemory& memory,
                                  std::uint32_t addr, std::uint32_t length) {
  if (length == 0) {
    return;
  }
  const std::uint32_t first = addr & ~3u;
  const std::uint32_t last = (addr + length - 1) & ~3u;
  for (std::uint32_t pc = first;; pc += 4) {
    Page& page = page_slow(pc >> kPageShift);
    DecodedOp& op = page.ops[(pc & ((1u << kPageShift) - 1)) >> 2];
    ++stats_.decodes;
    decode_into(op, pc, memory);
    if (pc == last) {
      break;
    }
  }
}

void DecodeCache::invalidate_all() {
  ++stats_.full_invalidations;
  pages_.clear();
  mru_ = nullptr;
  mru_index_ = 0xffff'ffff;
}

void DecodeCache::on_memory_written(std::uint32_t addr, std::uint32_t length) {
  if (length == 0) {
    return;
  }
  ++stats_.write_invalidation_events;
  const std::uint32_t first_word = addr >> 2;
  const std::uint32_t last_word = (addr + length - 1) >> 2;
  const std::uint32_t first_page = first_word >> (kPageShift - 2);
  const std::uint32_t last_page = last_word >> (kPageShift - 2);
  for (std::uint32_t index = first_page;; ++index) {
    const auto it = pages_.find(index);
    if (it != pages_.end()) {
      Page& page = *it->second;
      const std::uint32_t begin =
          index == first_page ? first_word & (kOpsPerPage - 1) : 0;
      const std::uint32_t end =
          index == last_page ? (last_word & (kOpsPerPage - 1)) + 1
                             : kOpsPerPage;
      for (std::uint32_t slot = begin; slot < end; ++slot) {
        if (page.ops[slot].handler != kUndecodedOp) {
          ++stats_.invalidated_slots;
        }
        page.ops[slot].handler = kUndecodedOp;
      }
    }
    if (index == last_page) {
      break;
    }
  }
}

} // namespace proxima::vm
