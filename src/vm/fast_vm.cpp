// The fast execution engine: predecoded fast-dispatch core.
//
// Instead of fetching a word from guest memory and decoding it on every
// step, this core executes DecodedOps out of a DecodeCache (decode.hpp):
// opcode collapsed to a dense handler index, operands pre-extracted,
// immediates pre-sign-extended.  Dispatch is a computed-goto loop on GCC
// and Clang (a dense switch elsewhere), and the memory-hierarchy timing
// probes use the inlined L1/TLB hit fast paths (mem::MemoryHierarchy::
// fetch_fast/load_fast/store_fast), so the common case — TLB memo hit,
// clean L1 hit, ALU or branch op — never leaves the dispatch loop.
//
// CORRECTNESS CONTRACT: this core must be *bit-identical* to the reference
// interpreter in reference_vm.cpp — same cycles, same instruction counts,
// same mem::PerfCounters, same architectural state, same faults — under
// every randomisation mode, including DSR relocation rewriting code mid-
// campaign (the DecodeCache's write-listener keeps the predecoded form
// coherent).  Every handler below is a transliteration of the matching
// case in the reference `execute`; the differential suite
// (tests/vm_differential_test.cpp) enforces the equivalence.
#include "decode.hpp"
#include "taint.hpp"
#include "vm.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>

namespace proxima::vm {

using isa::Instruction;
using isa::Opcode;

#if defined(__GNUC__) || defined(__clang__)
#define PROXIMA_VM_COMPUTED_GOTO 1
#else
#define PROXIMA_VM_COMPUTED_GOTO 0
#endif

namespace {

// The X-macro must list every opcode exactly once, in enum order: the
// computed-goto table is indexed by the raw handler byte.
constexpr Opcode kHandlerOrder[] = {
#define PROXIMA_X(name) Opcode::name,
    PROXIMA_VM_FOREACH_OPCODE(PROXIMA_X)
#undef PROXIMA_X
};

constexpr bool handler_order_matches_enum() {
  if (std::size(kHandlerOrder) !=
      static_cast<std::size_t>(Opcode::kOpcodeCount)) {
    return false;
  }
  for (std::size_t i = 0; i < std::size(kHandlerOrder); ++i) {
    if (kHandlerOrder[i] != static_cast<Opcode>(i)) {
      return false;
    }
  }
  return true;
}
static_assert(handler_order_matches_enum(),
              "PROXIMA_VM_FOREACH_OPCODE must list every opcode in enum "
              "order — the dispatch tables are indexed by opcode value");

} // namespace

RunResult Vm::run_fast(std::uint64_t cycle_budget) {
  DecodeCache& decode = *decode_;
  mem::MemoryHierarchy& hier = hierarchy_;
  mem::PerfCounters& ctr = hier.counters();
  const VmConfig& cfg = config_;
  const std::uint32_t nw = cfg.nwindows;
  // Instruction-mix telemetry: hoisted so the off case is one never-taken
  // branch on a register, invisible next to the fetch/dispatch work.
  std::uint64_t* const mix = mix_;
  // Dynamic taint tracking, gated the same way: null when VmConfig::taint
  // is off, so the hot path pays one never-taken branch.
  TaintState* const taint = taint_.get();

  // Inline register-file access, mirroring visible/visible_value/set_reg.
  auto vis = [&](std::uint8_t index) -> std::uint32_t& {
    if (index < 8) {
      return globals_[index];
    }
    if (index < 16) { // outs of cwp
      return windowed_[(cwp_ * 16 + (index - 8u)) % (nw * 16)];
    }
    if (index < 24) { // locals of cwp
      return windowed_[(cwp_ * 16 + 8u + (index - 16u)) % (nw * 16)];
    }
    // ins of cwp == outs of cwp+1
    return windowed_[(((cwp_ + 1) % nw) * 16 + (index - 24u)) % (nw * 16)];
  };
  auto rv = [&](std::uint8_t index) -> std::uint32_t {
    return index == isa::kG0 ? 0u : vis(index);
  };
  auto wr = [&](std::uint8_t index, std::uint32_t value) {
    if (index != isa::kG0) {
      vis(index) = value;
    }
  };

  auto set_icc_add = [&](std::uint32_t a, std::uint32_t b, std::uint32_t r) {
    icc_.n = (r >> 31) != 0;
    icc_.z = r == 0;
    icc_.v = ((~(a ^ b) & (a ^ r)) >> 31) != 0;
    icc_.c = r < a;
  };
  auto set_icc_sub = [&](std::uint32_t a, std::uint32_t b, std::uint32_t r) {
    icc_.n = (r >> 31) != 0;
    icc_.z = r == 0;
    icc_.v = (((a ^ b) & (a ^ r)) >> 31) != 0;
    icc_.c = a < b; // borrow
  };
  auto set_icc_logic = [&](std::uint32_t r) {
    icc_.n = (r >> 31) != 0;
    icc_.z = r == 0;
    icc_.v = false;
    icc_.c = false;
  };
  auto branch = [&](bool condition, std::int32_t disp_words) {
    if (condition) {
      pc_ = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc_) +
                                       std::int64_t{4} * disp_words);
      cycles_ += cfg.branch_taken_penalty;
    } else {
      pc_ += 4;
    }
  };

  // ---- superblock tier (fast-sb) ------------------------------------
  // Second dispatch level: when the MRU lookup lands on a live superblock
  // and the remaining instruction/cycle headroom provably covers the whole
  // block, its ops run in a tight loop with a single pc/counter sync at
  // exit.  Cycle charges stay op-exact (`cyc` below is the running cycle
  // value the store path reads); only the *accounting* of zero-stall
  // same-line fetches is deferred and booked in bulk through
  // fetch_account_trivial.  Disabled under taint: the op-at-a-time path
  // already interleaves the taint transfer function correctly, and times
  // are bit-identical either way.
  // Randomised-placement instruction caches decline the fetch-batching
  // probe on every access, so the tier would pay block-entry overhead for
  // zero batched fetches — measurably slower than the plain fast loop.
  // Entry is declined wholesale there; results are bit-identical either way.
  const bool sb_enabled = cfg.core == VmCore::kFastSb && taint == nullptr &&
                          hier.il1().config().placement ==
                              mem::Placement::kModulo;
  const std::uint32_t il1_line_bytes = hier.il1().config().line_bytes;
  // Bulk fetch accounting assumes an ITLB page spans whole IL1 lines, so a
  // same-line fetch run cannot cross a page behind the memo's back.
  // (Randomised-placement caches decline the triviality probe per access,
  // so every fetch goes through fetch_fast there regardless.)
  const bool sb_batching = hier.itlb().config().page_bytes >= il1_line_bytes;
  const mem::LatencyConfig& lat = hier.latency();
  // Conservative upper bound on the cycles any single fused op can charge.
  // Entering a block only while `count * bound` cycles of budget headroom
  // remain guarantees the op-at-a-time core could not have stopped on the
  // cycle budget mid-block, so deferring the budget check to the block
  // boundary is exact.
  const std::uint64_t sb_worst_per_op =
      2 * (1ULL + cfg.load_use_cycles + 2ULL * lat.tlb_walk + 4ULL * lat.bus +
           2ULL * lat.l2_hit + 2ULL * lat.dram_read + 2ULL * lat.dram_write +
           lat.store_drain + std::max(cfg.mul_cycles, cfg.div_cycles) +
           cfg.fp_sqrt_cycles + cfg.fp_jitter_max);

#define SB_CASE(name) case static_cast<std::uint8_t>(Opcode::name):

  auto exec_superblock = [&](const Superblock& sb, const DecodedOp* page_ops,
                             const std::uint32_t entry_pc) {
    const std::uint32_t count = sb.count;
    const SuperblockOp* plan = sb.plan.data();
    const DecodedOp* ops = page_ops + sb.begin;
    std::uint64_t cyc = cycles_;
    std::uint64_t fpu = 0;
    std::uint64_t pending = 0; // deferred trivial fetches on line_addr's line
    std::uint32_t line_addr = entry_pc;
    std::uint32_t line_base = 0;
    bool force_real = true; // next fetch must go through fetch_fast
    bool stored = false;
    std::uint32_t st_addr = 0;
    std::uint32_t st_len = 0;
    std::uint32_t i = 0;
    bool fetched = false; // op i has passed the fetch stage
    auto flush_pending = [&] {
      if (pending != 0) {
        hier.fetch_account_trivial(line_addr, pending);
        pending = 0;
      }
    };
    auto sync = [&](std::uint32_t done) {
      flush_pending();
      cycles_ = cyc;
      instructions_ += done;
      ctr.instructions += done;
      ctr.fpu_ops += fpu;
      decode.count_superblock_entry(done);
    };
    try {
      for (; i < count; ++i) {
        const DecodedOp& o = ops[i];
        const SuperblockOp& p = plan[i];
        const std::uint32_t fpc = entry_pc + 4 * i;
        // Keep pc_ exact per op: every fault path below (explicit faults,
        // the freg range checks, coherence errors) formats it.
        pc_ = fpc;
        fetched = false;
        if (p.new_line || force_real) {
          flush_pending();
          cyc += p.pre_cycles + hier.fetch_fast(fpc);
          line_addr = fpc;
          if (sb_batching) {
            line_base = fpc & ~(il1_line_bytes - 1);
            force_real = !hier.fetch_line_is_trivial(fpc);
          }
        } else {
          cyc += p.pre_cycles;
          ++pending;
        }
        fetched = true;
        if (o.handler >= static_cast<std::uint8_t>(Opcode::kFaddd) &&
            o.handler <= static_cast<std::uint8_t>(Opcode::kFabsd)) {
          ++fpu;
        }
        if (mix != nullptr) {
          ++mix[o.handler];
        }
        switch (o.handler) {
          SB_CASE(kNop) { break; }

          // ---- integer ALU, register form ----
          SB_CASE(kAdd) {
            wr(o.rd, rv(o.rs1) + rv(o.rs2));
            break;
          }
          SB_CASE(kSub) {
            wr(o.rd, rv(o.rs1) - rv(o.rs2));
            break;
          }
          SB_CASE(kAnd) {
            wr(o.rd, rv(o.rs1) & rv(o.rs2));
            break;
          }
          SB_CASE(kOr) {
            wr(o.rd, rv(o.rs1) | rv(o.rs2));
            break;
          }
          SB_CASE(kXor) {
            wr(o.rd, rv(o.rs1) ^ rv(o.rs2));
            break;
          }
          SB_CASE(kSll) {
            wr(o.rd, rv(o.rs1) << (rv(o.rs2) & 31));
            break;
          }
          SB_CASE(kSrl) {
            wr(o.rd, rv(o.rs1) >> (rv(o.rs2) & 31));
            break;
          }
          SB_CASE(kSra) {
            wr(o.rd, static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(rv(o.rs1)) >>
                         (rv(o.rs2) & 31)));
            break;
          }
          SB_CASE(kMul) {
            // Charge folded into pre_cycles (the only extra latency with no
            // fault check in front of it).
            wr(o.rd, static_cast<std::uint32_t>(
                         static_cast<std::int64_t>(
                             static_cast<std::int32_t>(rv(o.rs1))) *
                         static_cast<std::int32_t>(rv(o.rs2))));
            break;
          }
          SB_CASE(kDiv) {
            const auto divisor = static_cast<std::int32_t>(rv(o.rs2));
            if (divisor == 0) {
              fault("integer division by zero");
            }
            const auto dividend = static_cast<std::int32_t>(rv(o.rs1));
            const std::int64_t q = static_cast<std::int64_t>(dividend) / divisor;
            wr(o.rd, static_cast<std::uint32_t>(q));
            cyc += cfg.div_cycles - 1;
            break;
          }
          SB_CASE(kAddcc) {
            const std::uint32_t a = rv(o.rs1);
            const std::uint32_t b = rv(o.rs2);
            const std::uint32_t r = a + b;
            wr(o.rd, r);
            set_icc_add(a, b, r);
            break;
          }
          SB_CASE(kSubcc) {
            const std::uint32_t a = rv(o.rs1);
            const std::uint32_t b = rv(o.rs2);
            const std::uint32_t r = a - b;
            wr(o.rd, r);
            set_icc_sub(a, b, r);
            break;
          }
          SB_CASE(kOrcc) {
            const std::uint32_t r = rv(o.rs1) | rv(o.rs2);
            wr(o.rd, r);
            set_icc_logic(r);
            break;
          }

          // ---- integer ALU, immediate form ----
          SB_CASE(kAddi) {
            wr(o.rd, rv(o.rs1) + static_cast<std::uint32_t>(o.imm));
            break;
          }
          SB_CASE(kSubi) {
            wr(o.rd, rv(o.rs1) - static_cast<std::uint32_t>(o.imm));
            break;
          }
          SB_CASE(kAndi) {
            wr(o.rd, rv(o.rs1) & static_cast<std::uint32_t>(o.imm));
            break;
          }
          SB_CASE(kOri) {
            wr(o.rd, rv(o.rs1) | static_cast<std::uint32_t>(o.imm));
            break;
          }
          SB_CASE(kXori) {
            wr(o.rd, rv(o.rs1) ^ static_cast<std::uint32_t>(o.imm));
            break;
          }
          SB_CASE(kSlli) {
            wr(o.rd, rv(o.rs1) << (static_cast<std::uint32_t>(o.imm) & 31));
            break;
          }
          SB_CASE(kSrli) {
            wr(o.rd, rv(o.rs1) >> (static_cast<std::uint32_t>(o.imm) & 31));
            break;
          }
          SB_CASE(kSrai) {
            wr(o.rd, static_cast<std::uint32_t>(
                         static_cast<std::int32_t>(rv(o.rs1)) >>
                         (static_cast<std::uint32_t>(o.imm) & 31)));
            break;
          }
          SB_CASE(kMuli) {
            wr(o.rd, static_cast<std::uint32_t>(
                         static_cast<std::int64_t>(
                             static_cast<std::int32_t>(rv(o.rs1))) *
                         o.imm));
            break;
          }
          SB_CASE(kDivi) {
            if (o.imm == 0) {
              fault("integer division by zero");
            }
            const std::int64_t q =
                static_cast<std::int64_t>(static_cast<std::int32_t>(rv(o.rs1))) /
                o.imm;
            wr(o.rd, static_cast<std::uint32_t>(q));
            cyc += cfg.div_cycles - 1;
            break;
          }
          SB_CASE(kAddcci) {
            const std::uint32_t a = rv(o.rs1);
            const std::uint32_t b = static_cast<std::uint32_t>(o.imm);
            const std::uint32_t r = a + b;
            wr(o.rd, r);
            set_icc_add(a, b, r);
            break;
          }
          SB_CASE(kSubcci) {
            const std::uint32_t a = rv(o.rs1);
            const std::uint32_t b = static_cast<std::uint32_t>(o.imm);
            const std::uint32_t r = a - b;
            wr(o.rd, r);
            set_icc_sub(a, b, r);
            break;
          }
          SB_CASE(kOrlo) {
            wr(o.rd,
               rv(o.rs1) | (static_cast<std::uint32_t>(o.imm) & 0x1fffU));
            break;
          }
          SB_CASE(kSethi) {
            wr(o.rd, static_cast<std::uint32_t>(o.imm) << 13);
            break;
          }

          // ---- memory ----
          SB_CASE(kLd) {
            const std::uint32_t addr =
                rv(o.rs1) + static_cast<std::uint32_t>(o.imm);
            if (addr % 4 != 0) {
              fault("misaligned word load");
            }
            cyc += cfg.load_use_cycles + hier.load_fast(addr);
            wr(o.rd, memory_.read_u32(addr));
            break;
          }
          SB_CASE(kLdx) {
            const std::uint32_t addr = rv(o.rs1) + rv(o.rs2);
            if (addr % 4 != 0) {
              fault("misaligned word load");
            }
            cyc += cfg.load_use_cycles + hier.load_fast(addr);
            wr(o.rd, memory_.read_u32(addr));
            break;
          }
          SB_CASE(kSt) {
            const std::uint32_t addr =
                rv(o.rs1) + static_cast<std::uint32_t>(o.imm);
            if (addr % 4 != 0) {
              fault("misaligned word store");
            }
            memory_.write_u32(addr, rv(o.rd));
            cyc += hier.store_fast(addr, cyc, 4);
            stored = true;
            st_addr = addr;
            st_len = 4;
            break;
          }
          SB_CASE(kStx) {
            const std::uint32_t addr = rv(o.rs1) + rv(o.rs2);
            if (addr % 4 != 0) {
              fault("misaligned word store");
            }
            memory_.write_u32(addr, rv(o.rd));
            cyc += hier.store_fast(addr, cyc, 4);
            stored = true;
            st_addr = addr;
            st_len = 4;
            break;
          }
          SB_CASE(kLdb) {
            const std::uint32_t addr =
                rv(o.rs1) + static_cast<std::uint32_t>(o.imm);
            cyc += cfg.load_use_cycles + hier.load_fast(addr);
            wr(o.rd, memory_.read_u8(addr));
            break;
          }
          SB_CASE(kLdbx) {
            const std::uint32_t addr = rv(o.rs1) + rv(o.rs2);
            cyc += cfg.load_use_cycles + hier.load_fast(addr);
            wr(o.rd, memory_.read_u8(addr));
            break;
          }
          SB_CASE(kStb) {
            const std::uint32_t addr =
                rv(o.rs1) + static_cast<std::uint32_t>(o.imm);
            memory_.write_u8(addr, static_cast<std::uint8_t>(rv(o.rd)));
            cyc += hier.store_fast(addr, cyc, 1);
            stored = true;
            st_addr = addr;
            st_len = 1;
            break;
          }
          SB_CASE(kStbx) {
            const std::uint32_t addr = rv(o.rs1) + rv(o.rs2);
            memory_.write_u8(addr, static_cast<std::uint8_t>(rv(o.rd)));
            cyc += hier.store_fast(addr, cyc, 1);
            stored = true;
            st_addr = addr;
            st_len = 1;
            break;
          }
          SB_CASE(kLdd) {
            const std::uint32_t addr =
                rv(o.rs1) + static_cast<std::uint32_t>(o.imm);
            if (addr % 8 != 0) {
              fault("misaligned doubleword load");
            }
            if (o.rd % 2 != 0) {
              fault("ldd destination must be an even register");
            }
            cyc += cfg.load_use_cycles + hier.load_fast(addr);
            wr(o.rd, memory_.read_u32(addr));
            wr(static_cast<std::uint8_t>(o.rd + 1), memory_.read_u32(addr + 4));
            break;
          }
          SB_CASE(kLddx) {
            const std::uint32_t addr = rv(o.rs1) + rv(o.rs2);
            if (addr % 8 != 0) {
              fault("misaligned doubleword load");
            }
            if (o.rd % 2 != 0) {
              fault("ldd destination must be an even register");
            }
            cyc += cfg.load_use_cycles + hier.load_fast(addr);
            wr(o.rd, memory_.read_u32(addr));
            wr(static_cast<std::uint8_t>(o.rd + 1), memory_.read_u32(addr + 4));
            break;
          }
          SB_CASE(kStd) {
            const std::uint32_t addr =
                rv(o.rs1) + static_cast<std::uint32_t>(o.imm);
            if (addr % 8 != 0) {
              fault("misaligned doubleword store");
            }
            if (o.rd % 2 != 0) {
              fault("std source must be an even register");
            }
            memory_.write_u32(addr, rv(o.rd));
            memory_.write_u32(addr + 4, rv(static_cast<std::uint8_t>(o.rd + 1)));
            cyc += hier.store_fast(addr, cyc, 8);
            stored = true;
            st_addr = addr;
            st_len = 8;
            break;
          }
          SB_CASE(kStdx) {
            const std::uint32_t addr = rv(o.rs1) + rv(o.rs2);
            if (addr % 8 != 0) {
              fault("misaligned doubleword store");
            }
            if (o.rd % 2 != 0) {
              fault("std source must be an even register");
            }
            memory_.write_u32(addr, rv(o.rd));
            memory_.write_u32(addr + 4, rv(static_cast<std::uint8_t>(o.rd + 1)));
            cyc += hier.store_fast(addr, cyc, 8);
            stored = true;
            st_addr = addr;
            st_len = 8;
            break;
          }
          SB_CASE(kLdf) {
            const std::uint32_t addr =
                rv(o.rs1) + static_cast<std::uint32_t>(o.imm);
            if (addr % 8 != 0) {
              fault("misaligned fp load");
            }
            cyc += cfg.load_use_cycles + hier.load_fast(addr);
            set_freg(o.rd, memory_.read_f64(addr));
            break;
          }
          SB_CASE(kLdfx) {
            const std::uint32_t addr = rv(o.rs1) + rv(o.rs2);
            if (addr % 8 != 0) {
              fault("misaligned fp load");
            }
            cyc += cfg.load_use_cycles + hier.load_fast(addr);
            set_freg(o.rd, memory_.read_f64(addr));
            break;
          }
          SB_CASE(kStf) {
            const std::uint32_t addr =
                rv(o.rs1) + static_cast<std::uint32_t>(o.imm);
            if (addr % 8 != 0) {
              fault("misaligned fp store");
            }
            memory_.write_f64(addr, freg(o.rd));
            cyc += hier.store_fast(addr, cyc, 8);
            stored = true;
            st_addr = addr;
            st_len = 8;
            break;
          }
          SB_CASE(kStfx) {
            const std::uint32_t addr = rv(o.rs1) + rv(o.rs2);
            if (addr % 8 != 0) {
              fault("misaligned fp store");
            }
            memory_.write_f64(addr, freg(o.rd));
            cyc += hier.store_fast(addr, cyc, 8);
            stored = true;
            st_addr = addr;
            st_len = 8;
            break;
          }

          // ---- floating point ----
          SB_CASE(kFaddd) {
            const double a = freg(o.rs1);
            const double b = freg(o.rs2);
            cyc += cfg.fp_add_cycles - 1 +
                   fp_extra_cycles(Opcode::kFaddd, a, b);
            set_freg(o.rd, a + b);
            break;
          }
          SB_CASE(kFsubd) {
            const double a = freg(o.rs1);
            const double b = freg(o.rs2);
            cyc += cfg.fp_add_cycles - 1 +
                   fp_extra_cycles(Opcode::kFsubd, a, b);
            set_freg(o.rd, a - b);
            break;
          }
          SB_CASE(kFmuld) {
            const double a = freg(o.rs1);
            const double b = freg(o.rs2);
            cyc += cfg.fp_mul_cycles - 1 +
                   fp_extra_cycles(Opcode::kFmuld, a, b);
            set_freg(o.rd, a * b);
            break;
          }
          SB_CASE(kFdivd) {
            const double a = freg(o.rs1);
            const double b = freg(o.rs2);
            cyc += cfg.fp_div_cycles - 1 +
                   fp_extra_cycles(Opcode::kFdivd, a, b);
            set_freg(o.rd, a / b);
            break;
          }
          SB_CASE(kFsqrtd) {
            const double a = freg(o.rs1);
            cyc += cfg.fp_sqrt_cycles - 1 +
                   fp_extra_cycles(Opcode::kFsqrtd, a, 1.0);
            set_freg(o.rd, std::sqrt(a));
            break;
          }
          SB_CASE(kFcmpd) {
            const double a = freg(o.rs1);
            const double b = freg(o.rs2);
            cyc += cfg.fp_add_cycles - 1;
            if (std::isnan(a) || std::isnan(b)) {
              fcc_ = FpCondition::kUnordered;
            } else if (a < b) {
              fcc_ = FpCondition::kLess;
            } else if (a > b) {
              fcc_ = FpCondition::kGreater;
            } else {
              fcc_ = FpCondition::kEqual;
            }
            break;
          }
          SB_CASE(kFitod) {
            cyc += cfg.fp_add_cycles - 1;
            set_freg(o.rd,
                     static_cast<double>(static_cast<std::int32_t>(rv(o.rs1))));
            break;
          }
          SB_CASE(kFdtoi) {
            cyc += cfg.fp_add_cycles - 1;
            const double value = freg(o.rs1);
            wr(o.rd,
               static_cast<std::uint32_t>(static_cast<std::int32_t>(value)));
            break;
          }
          SB_CASE(kFmovd) {
            set_freg(o.rd, freg(o.rs1));
            break;
          }
          SB_CASE(kFnegd) {
            set_freg(o.rd, -freg(o.rs1));
            break;
          }
          SB_CASE(kFabsd) {
            set_freg(o.rd, std::fabs(freg(o.rs1)));
            break;
          }

        default:
          // Unreachable: formation only fuses the handlers above and any
          // rewrite kills the block before its ops can change.
          fault("invalid opcode");
        }
        if (stored) {
          stored = false;
          if (!sb.live) [[unlikely]] {
            // The store rewrote code under this block and the write
            // listener killed it.  Ops 0..i executed exactly; sync and
            // resume op-at-a-time dispatch at the next pc.
            sync(i + 1);
            pc_ = fpc + 4;
            return;
          }
          if (sb_batching && st_addr < line_base + il1_line_bytes &&
              st_addr + st_len > line_base) {
            // The store staled the line currently proven trivial; fall
            // back to real fetch probes until a fresh proof.
            force_real = true;
          }
        }
      }
      sync(count);
      pc_ = entry_pc + 4 * count;
    } catch (...) {
      // An op faulted exactly as it would op-at-a-time (pc_ is already the
      // faulting pc).  A fetch-path throw (coherence error) has not
      // retired its instruction; anything after the fetch stage has.
      sync(i + (fetched ? 1u : 0u));
      throw;
    }
  };

#undef SB_CASE

  const DecodedOp* op = nullptr;

#if PROXIMA_VM_COMPUTED_GOTO
  static const void* const kLabels[] = {
#define PROXIMA_X(name) &&L_##name,
      PROXIMA_VM_FOREACH_OPCODE(PROXIMA_X)
#undef PROXIMA_X
  };
  static_assert(std::size(kLabels) ==
                static_cast<std::size_t>(Opcode::kOpcodeCount));
#define VM_CASE(name) L_##name:
#define VM_DISPATCH() goto* kLabels[op->handler]
#define VM_END_DISPATCH()
#else
#define VM_CASE(name) case static_cast<std::uint8_t>(Opcode::name):
#define VM_DISPATCH()                                                         \
  switch (op->handler) {                                                      \
  default:                                                                    \
    fault("invalid opcode");
#define VM_END_DISPATCH() }
#endif
#define VM_NEXT() goto next_instruction

next_instruction:
  if (halted_) {
    return RunResult{RunResult::Stop::kHalt, instructions_, cycles_};
  }
  if (instructions_ >= cfg.max_instructions) [[unlikely]] {
    return RunResult{RunResult::Stop::kInstructionLimit, instructions_,
                     cycles_};
  }
  if (cycle_budget != 0 && cycles_ >= cycle_budget) [[unlikely]] {
    return RunResult{RunResult::Stop::kCycleBudget, instructions_, cycles_};
  }
  // Superblock dispatch level: enter a fused block only when the remaining
  // instruction count and (conservatively bounded) cycle headroom prove the
  // op-at-a-time core would have executed every op of the block too.
  if (sb_enabled) {
    const DecodedOp* sb_ops = nullptr;
    const Superblock* sb = decode.superblock_at(pc_, &sb_ops);
    if (sb != nullptr && instructions_ + sb->count <= cfg.max_instructions &&
        (cycle_budget == 0 ||
         cycles_ + sb_worst_per_op * sb->count < cycle_budget)) {
      exec_superblock(*sb, sb_ops, pc_);
      goto next_instruction;
    }
  }
  // Fetch: timing through the inline hit path, the op out of the decode
  // cache (no guest-memory read, no format switch on the hot path).
  cycles_ += 1 + hier.fetch_fast(pc_);
  op = &decode.at(pc_, memory_);
  if (op->handler >= static_cast<std::uint8_t>(Opcode::kOpcodeCount))
      [[unlikely]] {
    // Reproduce the reference fault (message included) by re-decoding the
    // offending word; the write-listener guarantees it is still the word
    // that failed to decode.
    try {
      (void)isa::decode(memory_.read_u32(pc_));
      fault("invalid opcode");
    } catch (const isa::DecodeError& e) {
      fault(e.what());
    }
  }
  ++instructions_;
  ++ctr.instructions;
  if (op->handler >= static_cast<std::uint8_t>(Opcode::kFaddd) &&
      op->handler <= static_cast<std::uint8_t>(Opcode::kFabsd)) {
    ++ctr.fpu_ops;
  }
  if (mix != nullptr) {
    ++mix[op->handler];
  }
  if (taint != nullptr) {
    // Same shared transfer function the reference core runs, before the
    // handler mutates the operands (taint_vm.cpp).
    taint_execute(Instruction{static_cast<Opcode>(op->handler), op->rd,
                              op->rs1, op->rs2, op->imm});
  }
  VM_DISPATCH();

  VM_CASE(kNop) {
    pc_ += 4;
    VM_NEXT();
  }

  // ---- integer ALU, register form ----
  VM_CASE(kAdd) {
    wr(op->rd, rv(op->rs1) + rv(op->rs2));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSub) {
    wr(op->rd, rv(op->rs1) - rv(op->rs2));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kAnd) {
    wr(op->rd, rv(op->rs1) & rv(op->rs2));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kOr) {
    wr(op->rd, rv(op->rs1) | rv(op->rs2));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kXor) {
    wr(op->rd, rv(op->rs1) ^ rv(op->rs2));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSll) {
    wr(op->rd, rv(op->rs1) << (rv(op->rs2) & 31));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSrl) {
    wr(op->rd, rv(op->rs1) >> (rv(op->rs2) & 31));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSra) {
    wr(op->rd,
       static_cast<std::uint32_t>(static_cast<std::int32_t>(rv(op->rs1)) >>
                                  (rv(op->rs2) & 31)));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kMul) {
    // SPARC smul keeps the low 32 bits of the 64-bit product: widen so an
    // overflowing guest multiply wraps instead of being host-side UB.
    wr(op->rd,
       static_cast<std::uint32_t>(
           static_cast<std::int64_t>(static_cast<std::int32_t>(rv(op->rs1))) *
           static_cast<std::int32_t>(rv(op->rs2))));
    cycles_ += cfg.mul_cycles - 1;
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kDiv) {
    const auto divisor = static_cast<std::int32_t>(rv(op->rs2));
    if (divisor == 0) {
      fault("integer division by zero");
    }
    const auto dividend = static_cast<std::int32_t>(rv(op->rs1));
    const std::int64_t q = static_cast<std::int64_t>(dividend) / divisor;
    wr(op->rd, static_cast<std::uint32_t>(q));
    cycles_ += cfg.div_cycles - 1;
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kAddcc) {
    const std::uint32_t a = rv(op->rs1);
    const std::uint32_t b = rv(op->rs2);
    const std::uint32_t r = a + b;
    wr(op->rd, r);
    set_icc_add(a, b, r);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSubcc) {
    const std::uint32_t a = rv(op->rs1);
    const std::uint32_t b = rv(op->rs2);
    const std::uint32_t r = a - b;
    wr(op->rd, r);
    set_icc_sub(a, b, r);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kOrcc) {
    const std::uint32_t r = rv(op->rs1) | rv(op->rs2);
    wr(op->rd, r);
    set_icc_logic(r);
    pc_ += 4;
    VM_NEXT();
  }

  // ---- integer ALU, immediate form ----
  VM_CASE(kAddi) {
    wr(op->rd, rv(op->rs1) + static_cast<std::uint32_t>(op->imm));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSubi) {
    wr(op->rd, rv(op->rs1) - static_cast<std::uint32_t>(op->imm));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kAndi) {
    wr(op->rd, rv(op->rs1) & static_cast<std::uint32_t>(op->imm));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kOri) {
    wr(op->rd, rv(op->rs1) | static_cast<std::uint32_t>(op->imm));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kXori) {
    wr(op->rd, rv(op->rs1) ^ static_cast<std::uint32_t>(op->imm));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSlli) {
    wr(op->rd, rv(op->rs1) << (static_cast<std::uint32_t>(op->imm) & 31));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSrli) {
    wr(op->rd, rv(op->rs1) >> (static_cast<std::uint32_t>(op->imm) & 31));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSrai) {
    wr(op->rd,
       static_cast<std::uint32_t>(static_cast<std::int32_t>(rv(op->rs1)) >>
                                  (static_cast<std::uint32_t>(op->imm) & 31)));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kMuli) {
    wr(op->rd,
       static_cast<std::uint32_t>(
           static_cast<std::int64_t>(static_cast<std::int32_t>(rv(op->rs1))) *
           op->imm));
    cycles_ += cfg.mul_cycles - 1;
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kDivi) {
    if (op->imm == 0) {
      fault("integer division by zero");
    }
    const std::int64_t q =
        static_cast<std::int64_t>(static_cast<std::int32_t>(rv(op->rs1))) /
        op->imm;
    wr(op->rd, static_cast<std::uint32_t>(q));
    cycles_ += cfg.div_cycles - 1;
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kAddcci) {
    const std::uint32_t a = rv(op->rs1);
    const std::uint32_t b = static_cast<std::uint32_t>(op->imm);
    const std::uint32_t r = a + b;
    wr(op->rd, r);
    set_icc_add(a, b, r);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSubcci) {
    const std::uint32_t a = rv(op->rs1);
    const std::uint32_t b = static_cast<std::uint32_t>(op->imm);
    const std::uint32_t r = a - b;
    wr(op->rd, r);
    set_icc_sub(a, b, r);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kOrlo) {
    // Zero-extended 13-bit OR: the %lo companion of SETHI.
    wr(op->rd, rv(op->rs1) | (static_cast<std::uint32_t>(op->imm) & 0x1fffU));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSethi) {
    wr(op->rd, static_cast<std::uint32_t>(op->imm) << 13);
    pc_ += 4;
    VM_NEXT();
  }

  // ---- memory ----
  VM_CASE(kLd) {
    const std::uint32_t addr = rv(op->rs1) + static_cast<std::uint32_t>(op->imm);
    if (addr % 4 != 0) {
      fault("misaligned word load");
    }
    cycles_ += cfg.load_use_cycles + hier.load_fast(addr);
    wr(op->rd, memory_.read_u32(addr));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kLdx) {
    const std::uint32_t addr = rv(op->rs1) + rv(op->rs2);
    if (addr % 4 != 0) {
      fault("misaligned word load");
    }
    cycles_ += cfg.load_use_cycles + hier.load_fast(addr);
    wr(op->rd, memory_.read_u32(addr));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSt) {
    const std::uint32_t addr = rv(op->rs1) + static_cast<std::uint32_t>(op->imm);
    if (addr % 4 != 0) {
      fault("misaligned word store");
    }
    memory_.write_u32(addr, rv(op->rd));
    cycles_ += hier.store_fast(addr, cycles_, 4);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kStx) {
    const std::uint32_t addr = rv(op->rs1) + rv(op->rs2);
    if (addr % 4 != 0) {
      fault("misaligned word store");
    }
    memory_.write_u32(addr, rv(op->rd));
    cycles_ += hier.store_fast(addr, cycles_, 4);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kLdb) {
    const std::uint32_t addr = rv(op->rs1) + static_cast<std::uint32_t>(op->imm);
    cycles_ += cfg.load_use_cycles + hier.load_fast(addr);
    wr(op->rd, memory_.read_u8(addr));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kLdbx) {
    const std::uint32_t addr = rv(op->rs1) + rv(op->rs2);
    cycles_ += cfg.load_use_cycles + hier.load_fast(addr);
    wr(op->rd, memory_.read_u8(addr));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kStb) {
    const std::uint32_t addr = rv(op->rs1) + static_cast<std::uint32_t>(op->imm);
    memory_.write_u8(addr, static_cast<std::uint8_t>(rv(op->rd)));
    cycles_ += hier.store_fast(addr, cycles_, 1);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kStbx) {
    const std::uint32_t addr = rv(op->rs1) + rv(op->rs2);
    memory_.write_u8(addr, static_cast<std::uint8_t>(rv(op->rd)));
    cycles_ += hier.store_fast(addr, cycles_, 1);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kLdd) {
    const std::uint32_t addr = rv(op->rs1) + static_cast<std::uint32_t>(op->imm);
    if (addr % 8 != 0) {
      fault("misaligned doubleword load");
    }
    if (op->rd % 2 != 0) {
      fault("ldd destination must be an even register");
    }
    cycles_ += cfg.load_use_cycles + hier.load_fast(addr);
    wr(op->rd, memory_.read_u32(addr));
    wr(static_cast<std::uint8_t>(op->rd + 1), memory_.read_u32(addr + 4));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kLddx) {
    const std::uint32_t addr = rv(op->rs1) + rv(op->rs2);
    if (addr % 8 != 0) {
      fault("misaligned doubleword load");
    }
    if (op->rd % 2 != 0) {
      fault("ldd destination must be an even register");
    }
    cycles_ += cfg.load_use_cycles + hier.load_fast(addr);
    wr(op->rd, memory_.read_u32(addr));
    wr(static_cast<std::uint8_t>(op->rd + 1), memory_.read_u32(addr + 4));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kStd) {
    const std::uint32_t addr = rv(op->rs1) + static_cast<std::uint32_t>(op->imm);
    if (addr % 8 != 0) {
      fault("misaligned doubleword store");
    }
    if (op->rd % 2 != 0) {
      fault("std source must be an even register");
    }
    memory_.write_u32(addr, rv(op->rd));
    memory_.write_u32(addr + 4, rv(static_cast<std::uint8_t>(op->rd + 1)));
    cycles_ += hier.store_fast(addr, cycles_, 8);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kStdx) {
    const std::uint32_t addr = rv(op->rs1) + rv(op->rs2);
    if (addr % 8 != 0) {
      fault("misaligned doubleword store");
    }
    if (op->rd % 2 != 0) {
      fault("std source must be an even register");
    }
    memory_.write_u32(addr, rv(op->rd));
    memory_.write_u32(addr + 4, rv(static_cast<std::uint8_t>(op->rd + 1)));
    cycles_ += hier.store_fast(addr, cycles_, 8);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kLdf) {
    const std::uint32_t addr = rv(op->rs1) + static_cast<std::uint32_t>(op->imm);
    if (addr % 8 != 0) {
      fault("misaligned fp load");
    }
    cycles_ += cfg.load_use_cycles + hier.load_fast(addr);
    set_freg(op->rd, memory_.read_f64(addr));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kLdfx) {
    const std::uint32_t addr = rv(op->rs1) + rv(op->rs2);
    if (addr % 8 != 0) {
      fault("misaligned fp load");
    }
    cycles_ += cfg.load_use_cycles + hier.load_fast(addr);
    set_freg(op->rd, memory_.read_f64(addr));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kStf) {
    const std::uint32_t addr = rv(op->rs1) + static_cast<std::uint32_t>(op->imm);
    if (addr % 8 != 0) {
      fault("misaligned fp store");
    }
    memory_.write_f64(addr, freg(op->rd));
    cycles_ += hier.store_fast(addr, cycles_, 8);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kStfx) {
    const std::uint32_t addr = rv(op->rs1) + rv(op->rs2);
    if (addr % 8 != 0) {
      fault("misaligned fp store");
    }
    memory_.write_f64(addr, freg(op->rd));
    cycles_ += hier.store_fast(addr, cycles_, 8);
    pc_ += 4;
    VM_NEXT();
  }

  // ---- control transfer ----
  VM_CASE(kCall) {
    wr(isa::kO7, pc_); // return address = address of the call
    branch(true, op->imm);
    VM_NEXT();
  }
  VM_CASE(kJmpl) {
    const std::uint32_t target =
        (rv(op->rs1) + static_cast<std::uint32_t>(op->imm)) & ~3U;
    wr(op->rd, pc_);
    pc_ = target;
    cycles_ += cfg.branch_taken_penalty;
    VM_NEXT();
  }
  VM_CASE(kBa) {
    branch(true, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBn) {
    branch(false, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBe) {
    branch(icc_.z, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBne) {
    branch(!icc_.z, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBg) {
    branch(!(icc_.z || (icc_.n != icc_.v)), op->imm);
    VM_NEXT();
  }
  VM_CASE(kBle) {
    branch(icc_.z || (icc_.n != icc_.v), op->imm);
    VM_NEXT();
  }
  VM_CASE(kBge) {
    branch(icc_.n == icc_.v, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBl) {
    branch(icc_.n != icc_.v, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBgu) {
    branch(!(icc_.c || icc_.z), op->imm);
    VM_NEXT();
  }
  VM_CASE(kBleu) {
    branch(icc_.c || icc_.z, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBcc) {
    branch(!icc_.c, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBcs) {
    branch(icc_.c, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBpos) {
    branch(!icc_.n, op->imm);
    VM_NEXT();
  }
  VM_CASE(kBneg) {
    branch(icc_.n, op->imm);
    VM_NEXT();
  }
  VM_CASE(kFbe) {
    branch(fcc_ == FpCondition::kEqual, op->imm);
    VM_NEXT();
  }
  VM_CASE(kFbne) {
    branch(fcc_ != FpCondition::kEqual, op->imm);
    VM_NEXT();
  }
  VM_CASE(kFbl) {
    branch(fcc_ == FpCondition::kLess, op->imm);
    VM_NEXT();
  }
  VM_CASE(kFbg) {
    branch(fcc_ == FpCondition::kGreater, op->imm);
    VM_NEXT();
  }
  VM_CASE(kFble) {
    branch(fcc_ == FpCondition::kLess || fcc_ == FpCondition::kEqual, op->imm);
    VM_NEXT();
  }
  VM_CASE(kFbge) {
    branch(fcc_ == FpCondition::kGreater || fcc_ == FpCondition::kEqual,
           op->imm);
    VM_NEXT();
  }

  // ---- register windows ----
  VM_CASE(kSave) {
    do_save(op->rd, rv(op->rs1) + static_cast<std::uint32_t>(op->imm));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kSavex) {
    do_save(op->rd, rv(op->rs1) + rv(op->rs2));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kRestore) {
    do_restore(isa::Instruction{Opcode::kRestore, op->rd, op->rs1, op->rs2, 0});
    pc_ += 4;
    VM_NEXT();
  }

  // ---- floating point ----
  VM_CASE(kFaddd) {
    const double a = freg(op->rs1);
    const double b = freg(op->rs2);
    cycles_ += cfg.fp_add_cycles - 1 + fp_extra_cycles(Opcode::kFaddd, a, b);
    set_freg(op->rd, a + b);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFsubd) {
    const double a = freg(op->rs1);
    const double b = freg(op->rs2);
    cycles_ += cfg.fp_add_cycles - 1 + fp_extra_cycles(Opcode::kFsubd, a, b);
    set_freg(op->rd, a - b);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFmuld) {
    const double a = freg(op->rs1);
    const double b = freg(op->rs2);
    cycles_ += cfg.fp_mul_cycles - 1 + fp_extra_cycles(Opcode::kFmuld, a, b);
    set_freg(op->rd, a * b);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFdivd) {
    const double a = freg(op->rs1);
    const double b = freg(op->rs2);
    cycles_ += cfg.fp_div_cycles - 1 + fp_extra_cycles(Opcode::kFdivd, a, b);
    set_freg(op->rd, a / b);
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFsqrtd) {
    const double a = freg(op->rs1);
    cycles_ += cfg.fp_sqrt_cycles - 1 + fp_extra_cycles(Opcode::kFsqrtd, a, 1.0);
    set_freg(op->rd, std::sqrt(a));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFcmpd) {
    const double a = freg(op->rs1);
    const double b = freg(op->rs2);
    cycles_ += cfg.fp_add_cycles - 1;
    if (std::isnan(a) || std::isnan(b)) {
      fcc_ = FpCondition::kUnordered;
    } else if (a < b) {
      fcc_ = FpCondition::kLess;
    } else if (a > b) {
      fcc_ = FpCondition::kGreater;
    } else {
      fcc_ = FpCondition::kEqual;
    }
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFitod) {
    cycles_ += cfg.fp_add_cycles - 1;
    set_freg(op->rd,
             static_cast<double>(static_cast<std::int32_t>(rv(op->rs1))));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFdtoi) {
    cycles_ += cfg.fp_add_cycles - 1;
    const double value = freg(op->rs1);
    wr(op->rd, static_cast<std::uint32_t>(static_cast<std::int32_t>(value)));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFmovd) {
    set_freg(op->rd, freg(op->rs1));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFnegd) {
    set_freg(op->rd, -freg(op->rs1));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFabsd) {
    set_freg(op->rd, std::fabs(freg(op->rs1)));
    pc_ += 4;
    VM_NEXT();
  }

  // ---- platform ----
  VM_CASE(kRdtick) {
    wr(op->rd, static_cast<std::uint32_t>(cycles_));
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kIpoint) {
    const std::uint32_t id = static_cast<std::uint32_t>(op->imm);
    cycles_ += cfg.ipoint_cycles;
    if (ipoint_sink_) {
      ipoint_sink_(id, cycles_);
    }
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kFlush) {
    const std::uint32_t addr = rv(op->rs1) + static_cast<std::uint32_t>(op->imm);
    hier.invalidate_range(addr, 1);
    cycles_ += cfg.flush_cycles;
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kHalt) {
    halted_ = true;
    pc_ += 4;
    VM_NEXT();
  }
  VM_CASE(kTrapReloc) {
    const std::uint32_t id = static_cast<std::uint32_t>(op->imm);
    cycles_ += cfg.trap_cycles;
    if (!reloc_trap_sink_) {
      fault("trapreloc without a registered DSR runtime");
    }
    // The sink rewrites code (relocation) — `op` may be invalidated from
    // here on, which is why `id` was copied first.
    cycles_ += reloc_trap_sink_(id);
    pc_ += 4;
    VM_NEXT();
  }
  VM_END_DISPATCH()

#undef VM_CASE
#undef VM_DISPATCH
#undef VM_END_DISPATCH
#undef VM_NEXT
}

} // namespace proxima::vm
