#include "vm.hpp"

#include <cmath>
#include <sstream>

namespace proxima::vm {

using isa::Instruction;
using isa::Opcode;

Vm::Vm(mem::GuestMemory& memory, mem::MemoryHierarchy& hierarchy,
       VmConfig config)
    : memory_(memory), hierarchy_(hierarchy), config_(config) {
  if (config_.nwindows < 3) {
    throw VmError("at least 3 register windows are required");
  }
  globals_.assign(8, 0);
  windowed_.assign(static_cast<std::size_t>(config_.nwindows) * 16, 0);
  fregs_.assign(isa::kFpRegisterCount, 0.0);
}

void Vm::reset(std::uint32_t entry_pc, std::uint32_t stack_top) {
  if (entry_pc % 4 != 0) {
    throw VmError("entry pc must be word-aligned");
  }
  if (stack_top % 8 != 0) {
    throw VmError("stack top must be doubleword-aligned");
  }
  std::fill(globals_.begin(), globals_.end(), 0);
  std::fill(windowed_.begin(), windowed_.end(), 0);
  std::fill(fregs_.begin(), fregs_.end(), 0.0);
  cwp_ = 0;
  resident_ = 1;
  icc_ = ConditionCodes{};
  fcc_ = FpCondition::kEqual;
  pc_ = entry_pc;
  cycles_ = 0;
  instructions_ = 0;
  halted_ = false;
  set_reg(isa::kSp, stack_top);
}

std::uint32_t& Vm::visible(std::uint8_t index) {
  const std::uint32_t n = config_.nwindows;
  if (index < 8) {
    return globals_[index];
  }
  if (index < 16) { // outs of cwp
    return windowed_[(cwp_ * 16 + (index - 8u)) % (n * 16)];
  }
  if (index < 24) { // locals of cwp
    return windowed_[(cwp_ * 16 + 8u + (index - 16u)) % (n * 16)];
  }
  // ins of cwp == outs of cwp+1
  return windowed_[(((cwp_ + 1) % n) * 16 + (index - 24u)) % (n * 16)];
}

std::uint32_t Vm::visible_value(std::uint8_t index) const {
  if (index == isa::kG0) {
    return 0;
  }
  return const_cast<Vm*>(this)->visible(index);
}

std::uint32_t Vm::reg(std::uint8_t index) const { return visible_value(index); }

void Vm::set_reg(std::uint8_t index, std::uint32_t value) {
  if (index == isa::kG0) {
    return; // %g0 is hardwired to zero
  }
  visible(index) = value;
}

double Vm::freg(std::uint8_t index) const {
  if (index >= fregs_.size()) {
    fault("fp register index out of range");
  }
  return fregs_[index];
}

void Vm::set_freg(std::uint8_t index, double value) {
  if (index >= fregs_.size()) {
    fault("fp register index out of range");
  }
  fregs_[index] = value;
}

void Vm::fault(const std::string& what) const {
  std::ostringstream oss;
  oss << "vm fault at pc=0x" << std::hex << pc_ << ": " << what;
  throw VmError(oss.str());
}

RunResult Vm::run(std::uint64_t cycle_budget) {
  while (!halted_) {
    if (instructions_ >= config_.max_instructions) {
      return RunResult{RunResult::Stop::kInstructionLimit, instructions_,
                       cycles_};
    }
    if (cycle_budget != 0 && cycles_ >= cycle_budget) {
      return RunResult{RunResult::Stop::kCycleBudget, instructions_, cycles_};
    }
    step();
  }
  return RunResult{RunResult::Stop::kHalt, instructions_, cycles_};
}

void Vm::step() {
  if (halted_) {
    fault("step() on a halted core");
  }
  // Fetch.
  cycles_ += 1 + hierarchy_.fetch(pc_);
  const std::uint32_t word = memory_.read_u32(pc_);
  Instruction instr;
  try {
    instr = isa::decode(word);
  } catch (const isa::DecodeError& e) {
    fault(e.what());
  }
  ++instructions_;
  ++hierarchy_.counters().instructions;
  if (isa::is_fp_op(instr.op)) {
    ++hierarchy_.counters().fpu_ops;
  }
  execute(instr);
}

void Vm::take_branch(std::int32_t disp_words) {
  pc_ = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc_) +
                                   std::int64_t{4} * disp_words);
  cycles_ += config_.branch_taken_penalty;
}

std::uint32_t Vm::fp_extra_cycles(Opcode op, double a, double b) const {
  // Deterministic value-dependent jitter, bounded by fp_jitter_max,
  // modelling the GRFPU's data-dependent early-outs and normalisation:
  //  * a zero operand takes an early-out (+1)
  //  * denormal operands need extra normalisation passes (+3)
  //  * add/sub with a large exponent gap needs a long alignment shift (+2)
  const auto classify = [](double x) { return std::fpclassify(x); };
  const int ca = classify(a);
  const int cb = classify(b);
  std::uint32_t extra = 0;
  if (ca == FP_SUBNORMAL || cb == FP_SUBNORMAL) {
    extra = 3;
  } else if (op == Opcode::kFaddd || op == Opcode::kFsubd) {
    if (ca == FP_ZERO || cb == FP_ZERO) {
      extra = 1;
    } else {
      int ea = 0;
      int eb = 0;
      (void)std::frexp(a, &ea);
      (void)std::frexp(b, &eb);
      const int gap = ea > eb ? ea - eb : eb - ea;
      if (gap > 26) {
        extra = 2;
      } else if (gap > 13) {
        extra = 1;
      }
    }
  } else if (ca == FP_ZERO || cb == FP_ZERO) {
    extra = 1;
  }
  return extra > config_.fp_jitter_max ? config_.fp_jitter_max : extra;
}

void Vm::spill_oldest_window() {
  // The oldest resident frame occupies window (cwp + resident - 1) mod N.
  const std::uint32_t n = config_.nwindows;
  const std::uint32_t w = (cwp_ + resident_ - 1) % n;
  // Save area: that window's %sp (its out6), which the SPARC ABI guarantees
  // points at 64 bytes of spill space.  With DSR, this address carries the
  // random stack offset — spill traffic is randomised too.
  const std::uint32_t sp = windowed_[(w * 16 + 6) % (n * 16)];
  if (sp % 8 != 0) {
    fault("window spill with misaligned %sp");
  }
  cycles_ += config_.trap_cycles;
  ++hierarchy_.counters().window_overflows;
  // Store %l0-%l7 then %i0-%i7 as eight doubleword stores (as real spill
  // handlers do with std), through the data cache path.
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t lo_index = (w * 16 + 8 + pair * 2) % (n * 16);
    memory_.write_u32(sp + pair * 8, windowed_[lo_index]);
    memory_.write_u32(sp + pair * 8 + 4, windowed_[(lo_index + 1) % (n * 16)]);
    cycles_ += 1 + hierarchy_.store(sp + pair * 8, cycles_, 8);
  }
  const std::uint32_t ins_base = ((w + 1) % n) * 16; // ins(w) == outs(w+1)
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t in_index = (ins_base + pair * 2) % (n * 16);
    memory_.write_u32(sp + 32 + pair * 8, windowed_[in_index]);
    memory_.write_u32(sp + 32 + pair * 8 + 4,
                      windowed_[(in_index + 1) % (n * 16)]);
    cycles_ += 1 + hierarchy_.store(sp + 32 + pair * 8, cycles_, 8);
  }
  --resident_;
}

void Vm::fill_window(std::uint32_t w) {
  const std::uint32_t n = config_.nwindows;
  // The window being re-entered was spilled at its own %sp, which is the
  // current frame's %fp (= caller's %sp): ins of cwp are resident.
  const std::uint32_t sp = visible_value(isa::kFp);
  if (sp % 8 != 0) {
    fault("window fill with misaligned %sp");
  }
  cycles_ += config_.trap_cycles;
  ++hierarchy_.counters().window_underflows;
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t lo_index = (w * 16 + 8 + pair * 2) % (n * 16);
    windowed_[lo_index] = memory_.read_u32(sp + pair * 8);
    windowed_[(lo_index + 1) % (n * 16)] = memory_.read_u32(sp + pair * 8 + 4);
    cycles_ += 1 + config_.load_use_cycles + hierarchy_.load(sp + pair * 8);
  }
  const std::uint32_t ins_base = ((w + 1) % n) * 16;
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t in_index = (ins_base + pair * 2) % (n * 16);
    windowed_[in_index] = memory_.read_u32(sp + 32 + pair * 8);
    windowed_[(in_index + 1) % (n * 16)] =
        memory_.read_u32(sp + 32 + pair * 8 + 4);
    cycles_ += 1 + config_.load_use_cycles + hierarchy_.load(sp + 32 + pair * 8);
  }
  ++resident_;
}

void Vm::do_save(std::uint8_t rd, std::uint32_t value) {
  const std::uint32_t n = config_.nwindows;
  if (resident_ == n - 1) {
    spill_oldest_window(); // window overflow trap
  }
  cwp_ = (cwp_ + n - 1) % n;
  ++resident_;
  // rd is written in the NEW window (standard idiom: save %sp, -N, %sp).
  set_reg(rd, value);
}

void Vm::do_restore(const Instruction& instr) {
  const std::uint32_t n = config_.nwindows;
  // Compute in the CURRENT window before rotating.
  const std::uint32_t result =
      visible_value(instr.rs1) + visible_value(instr.rs2);
  const std::uint32_t target = (cwp_ + 1) % n;
  if (resident_ == 1) {
    fill_window(target); // window underflow trap
  }
  cwp_ = target;
  --resident_;
  set_reg(instr.rd, result); // written in the OLD (caller) window
}

void Vm::execute(const Instruction& instr) {
  const auto rs1 = [&] { return visible_value(instr.rs1); };
  const auto rs2 = [&] { return visible_value(instr.rs2); };
  const auto simm = [&] { return static_cast<std::uint32_t>(instr.imm); };

  auto set_icc_add = [&](std::uint32_t a, std::uint32_t b, std::uint32_t r) {
    icc_.n = (r >> 31) != 0;
    icc_.z = r == 0;
    icc_.v = ((~(a ^ b) & (a ^ r)) >> 31) != 0;
    icc_.c = r < a;
  };
  auto set_icc_sub = [&](std::uint32_t a, std::uint32_t b, std::uint32_t r) {
    icc_.n = (r >> 31) != 0;
    icc_.z = r == 0;
    icc_.v = (((a ^ b) & (a ^ r)) >> 31) != 0;
    icc_.c = a < b; // borrow
  };
  auto set_icc_logic = [&](std::uint32_t r) {
    icc_.n = (r >> 31) != 0;
    icc_.z = r == 0;
    icc_.v = false;
    icc_.c = false;
  };

  auto branch_if = [&](bool condition) {
    if (condition) {
      take_branch(instr.imm);
    } else {
      pc_ += 4;
    }
  };

  const std::uint32_t pc_before = pc_;
  bool advanced = false; // control-transfer ops set pc_ themselves

  switch (instr.op) {
  case Opcode::kNop:
    break;

  // ---- integer ALU, register form ----
  case Opcode::kAdd:
    set_reg(instr.rd, rs1() + rs2());
    break;
  case Opcode::kSub:
    set_reg(instr.rd, rs1() - rs2());
    break;
  case Opcode::kAnd:
    set_reg(instr.rd, rs1() & rs2());
    break;
  case Opcode::kOr:
    set_reg(instr.rd, rs1() | rs2());
    break;
  case Opcode::kXor:
    set_reg(instr.rd, rs1() ^ rs2());
    break;
  case Opcode::kSll:
    set_reg(instr.rd, rs1() << (rs2() & 31));
    break;
  case Opcode::kSrl:
    set_reg(instr.rd, rs1() >> (rs2() & 31));
    break;
  case Opcode::kSra:
    set_reg(instr.rd, static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(rs1()) >> (rs2() & 31)));
    break;
  case Opcode::kMul:
    set_reg(instr.rd,
            static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1()) *
                                       static_cast<std::int32_t>(rs2())));
    cycles_ += config_.mul_cycles - 1;
    break;
  case Opcode::kDiv: {
    const auto divisor = static_cast<std::int32_t>(rs2());
    if (divisor == 0) {
      fault("integer division by zero");
    }
    const auto dividend = static_cast<std::int32_t>(rs1());
    const std::int64_t q = static_cast<std::int64_t>(dividend) / divisor;
    set_reg(instr.rd, static_cast<std::uint32_t>(q));
    cycles_ += config_.div_cycles - 1;
    break;
  }
  case Opcode::kAddcc: {
    const std::uint32_t a = rs1();
    const std::uint32_t b = rs2();
    const std::uint32_t r = a + b;
    set_reg(instr.rd, r);
    set_icc_add(a, b, r);
    break;
  }
  case Opcode::kSubcc: {
    const std::uint32_t a = rs1();
    const std::uint32_t b = rs2();
    const std::uint32_t r = a - b;
    set_reg(instr.rd, r);
    set_icc_sub(a, b, r);
    break;
  }
  case Opcode::kOrcc: {
    const std::uint32_t r = rs1() | rs2();
    set_reg(instr.rd, r);
    set_icc_logic(r);
    break;
  }

  // ---- integer ALU, immediate form ----
  case Opcode::kAddi:
    set_reg(instr.rd, rs1() + simm());
    break;
  case Opcode::kSubi:
    set_reg(instr.rd, rs1() - simm());
    break;
  case Opcode::kAndi:
    set_reg(instr.rd, rs1() & simm());
    break;
  case Opcode::kOri:
    set_reg(instr.rd, rs1() | simm());
    break;
  case Opcode::kXori:
    set_reg(instr.rd, rs1() ^ simm());
    break;
  case Opcode::kSlli:
    set_reg(instr.rd, rs1() << (simm() & 31));
    break;
  case Opcode::kSrli:
    set_reg(instr.rd, rs1() >> (simm() & 31));
    break;
  case Opcode::kSrai:
    set_reg(instr.rd, static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(rs1()) >> (simm() & 31)));
    break;
  case Opcode::kMuli:
    set_reg(instr.rd,
            static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1()) *
                                       instr.imm));
    cycles_ += config_.mul_cycles - 1;
    break;
  case Opcode::kDivi: {
    if (instr.imm == 0) {
      fault("integer division by zero");
    }
    const std::int64_t q =
        static_cast<std::int64_t>(static_cast<std::int32_t>(rs1())) /
        instr.imm;
    set_reg(instr.rd, static_cast<std::uint32_t>(q));
    cycles_ += config_.div_cycles - 1;
    break;
  }
  case Opcode::kAddcci: {
    const std::uint32_t a = rs1();
    const std::uint32_t b = simm();
    const std::uint32_t r = a + b;
    set_reg(instr.rd, r);
    set_icc_add(a, b, r);
    break;
  }
  case Opcode::kSubcci: {
    const std::uint32_t a = rs1();
    const std::uint32_t b = simm();
    const std::uint32_t r = a - b;
    set_reg(instr.rd, r);
    set_icc_sub(a, b, r);
    break;
  }
  case Opcode::kOrlo:
    // Zero-extended 13-bit OR: the %lo companion of SETHI.
    set_reg(instr.rd, rs1() | (simm() & 0x1fffU));
    break;
  case Opcode::kSethi:
    set_reg(instr.rd, static_cast<std::uint32_t>(instr.imm) << 13);
    break;

  // ---- memory ----
  case Opcode::kLd:
  case Opcode::kLdx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLd ? rs1() + simm() : rs1() + rs2();
    if (addr % 4 != 0) {
      fault("misaligned word load");
    }
    cycles_ += config_.load_use_cycles + hierarchy_.load(addr);
    set_reg(instr.rd, memory_.read_u32(addr));
    break;
  }
  case Opcode::kLdb:
  case Opcode::kLdbx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLdb ? rs1() + simm() : rs1() + rs2();
    cycles_ += config_.load_use_cycles + hierarchy_.load(addr);
    set_reg(instr.rd, memory_.read_u8(addr));
    break;
  }
  case Opcode::kLdd:
  case Opcode::kLddx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLdd ? rs1() + simm() : rs1() + rs2();
    if (addr % 8 != 0) {
      fault("misaligned doubleword load");
    }
    if (instr.rd % 2 != 0) {
      fault("ldd destination must be an even register");
    }
    cycles_ += config_.load_use_cycles + hierarchy_.load(addr);
    set_reg(instr.rd, memory_.read_u32(addr));
    set_reg(static_cast<std::uint8_t>(instr.rd + 1), memory_.read_u32(addr + 4));
    break;
  }
  case Opcode::kSt:
  case Opcode::kStx: {
    const std::uint32_t addr =
        instr.op == Opcode::kSt ? rs1() + simm() : rs1() + rs2();
    if (addr % 4 != 0) {
      fault("misaligned word store");
    }
    memory_.write_u32(addr, visible_value(instr.rd));
    cycles_ += hierarchy_.store(addr, cycles_, 4);
    break;
  }
  case Opcode::kStb:
  case Opcode::kStbx: {
    const std::uint32_t addr =
        instr.op == Opcode::kStb ? rs1() + simm() : rs1() + rs2();
    memory_.write_u8(addr, static_cast<std::uint8_t>(visible_value(instr.rd)));
    cycles_ += hierarchy_.store(addr, cycles_, 1);
    break;
  }
  case Opcode::kStd:
  case Opcode::kStdx: {
    const std::uint32_t addr =
        instr.op == Opcode::kStd ? rs1() + simm() : rs1() + rs2();
    if (addr % 8 != 0) {
      fault("misaligned doubleword store");
    }
    if (instr.rd % 2 != 0) {
      fault("std source must be an even register");
    }
    memory_.write_u32(addr, visible_value(instr.rd));
    memory_.write_u32(addr + 4,
                      visible_value(static_cast<std::uint8_t>(instr.rd + 1)));
    cycles_ += hierarchy_.store(addr, cycles_, 8);
    break;
  }
  case Opcode::kLdf:
  case Opcode::kLdfx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLdf ? rs1() + simm() : rs1() + rs2();
    if (addr % 8 != 0) {
      fault("misaligned fp load");
    }
    cycles_ += config_.load_use_cycles + hierarchy_.load(addr);
    set_freg(instr.rd, memory_.read_f64(addr));
    break;
  }
  case Opcode::kStf:
  case Opcode::kStfx: {
    const std::uint32_t addr =
        instr.op == Opcode::kStf ? rs1() + simm() : rs1() + rs2();
    if (addr % 8 != 0) {
      fault("misaligned fp store");
    }
    memory_.write_f64(addr, freg(instr.rd));
    cycles_ += hierarchy_.store(addr, cycles_, 8);
    break;
  }

  // ---- control transfer ----
  case Opcode::kCall:
    set_reg(isa::kO7, pc_before); // return address = address of the call
    take_branch(instr.imm);
    advanced = true;
    break;
  case Opcode::kJmpl: {
    const std::uint32_t target = (rs1() + simm()) & ~3U;
    set_reg(instr.rd, pc_before);
    pc_ = target;
    cycles_ += config_.branch_taken_penalty;
    advanced = true;
    break;
  }
  case Opcode::kBa:
    branch_if(true);
    advanced = true;
    break;
  case Opcode::kBn:
    branch_if(false);
    advanced = true;
    break;
  case Opcode::kBe:
    branch_if(icc_.z);
    advanced = true;
    break;
  case Opcode::kBne:
    branch_if(!icc_.z);
    advanced = true;
    break;
  case Opcode::kBg:
    branch_if(!(icc_.z || (icc_.n != icc_.v)));
    advanced = true;
    break;
  case Opcode::kBle:
    branch_if(icc_.z || (icc_.n != icc_.v));
    advanced = true;
    break;
  case Opcode::kBge:
    branch_if(icc_.n == icc_.v);
    advanced = true;
    break;
  case Opcode::kBl:
    branch_if(icc_.n != icc_.v);
    advanced = true;
    break;
  case Opcode::kBgu:
    branch_if(!(icc_.c || icc_.z));
    advanced = true;
    break;
  case Opcode::kBleu:
    branch_if(icc_.c || icc_.z);
    advanced = true;
    break;
  case Opcode::kBcc:
    branch_if(!icc_.c);
    advanced = true;
    break;
  case Opcode::kBcs:
    branch_if(icc_.c);
    advanced = true;
    break;
  case Opcode::kBpos:
    branch_if(!icc_.n);
    advanced = true;
    break;
  case Opcode::kBneg:
    branch_if(icc_.n);
    advanced = true;
    break;
  case Opcode::kFbe:
    branch_if(fcc_ == FpCondition::kEqual);
    advanced = true;
    break;
  case Opcode::kFbne:
    branch_if(fcc_ != FpCondition::kEqual);
    advanced = true;
    break;
  case Opcode::kFbl:
    branch_if(fcc_ == FpCondition::kLess);
    advanced = true;
    break;
  case Opcode::kFbg:
    branch_if(fcc_ == FpCondition::kGreater);
    advanced = true;
    break;
  case Opcode::kFble:
    branch_if(fcc_ == FpCondition::kLess || fcc_ == FpCondition::kEqual);
    advanced = true;
    break;
  case Opcode::kFbge:
    branch_if(fcc_ == FpCondition::kGreater || fcc_ == FpCondition::kEqual);
    advanced = true;
    break;

  // ---- register windows ----
  case Opcode::kSave:
    do_save(instr.rd, rs1() + simm());
    break;
  case Opcode::kSavex:
    do_save(instr.rd, rs1() + rs2());
    break;
  case Opcode::kRestore:
    do_restore(instr);
    break;

  // ---- floating point ----
  case Opcode::kFaddd: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_add_cycles - 1 + fp_extra_cycles(instr.op, a, b);
    set_freg(instr.rd, a + b);
    break;
  }
  case Opcode::kFsubd: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_add_cycles - 1 + fp_extra_cycles(instr.op, a, b);
    set_freg(instr.rd, a - b);
    break;
  }
  case Opcode::kFmuld: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_mul_cycles - 1 + fp_extra_cycles(instr.op, a, b);
    set_freg(instr.rd, a * b);
    break;
  }
  case Opcode::kFdivd: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_div_cycles - 1 + fp_extra_cycles(instr.op, a, b);
    set_freg(instr.rd, a / b);
    break;
  }
  case Opcode::kFsqrtd: {
    const double a = freg(instr.rs1);
    cycles_ += config_.fp_sqrt_cycles - 1 + fp_extra_cycles(instr.op, a, 1.0);
    set_freg(instr.rd, std::sqrt(a));
    break;
  }
  case Opcode::kFcmpd: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_add_cycles - 1;
    if (std::isnan(a) || std::isnan(b)) {
      fcc_ = FpCondition::kUnordered;
    } else if (a < b) {
      fcc_ = FpCondition::kLess;
    } else if (a > b) {
      fcc_ = FpCondition::kGreater;
    } else {
      fcc_ = FpCondition::kEqual;
    }
    break;
  }
  case Opcode::kFitod:
    cycles_ += config_.fp_add_cycles - 1;
    set_freg(instr.rd,
             static_cast<double>(static_cast<std::int32_t>(visible_value(instr.rs1))));
    break;
  case Opcode::kFdtoi: {
    cycles_ += config_.fp_add_cycles - 1;
    const double value = freg(instr.rs1);
    set_reg(instr.rd,
            static_cast<std::uint32_t>(static_cast<std::int32_t>(value)));
    break;
  }
  case Opcode::kFmovd:
    set_freg(instr.rd, freg(instr.rs1));
    break;
  case Opcode::kFnegd:
    set_freg(instr.rd, -freg(instr.rs1));
    break;
  case Opcode::kFabsd:
    set_freg(instr.rd, std::fabs(freg(instr.rs1)));
    break;

  // ---- platform ----
  case Opcode::kRdtick:
    set_reg(instr.rd, static_cast<std::uint32_t>(cycles_));
    break;
  case Opcode::kIpoint:
    cycles_ += config_.ipoint_cycles;
    if (ipoint_sink_) {
      ipoint_sink_(static_cast<std::uint32_t>(instr.imm), cycles_);
    }
    break;
  case Opcode::kFlush: {
    const std::uint32_t addr = rs1() + simm();
    hierarchy_.invalidate_range(addr, 1);
    cycles_ += config_.flush_cycles;
    break;
  }
  case Opcode::kHalt:
    halted_ = true;
    break;
  case Opcode::kTrapReloc:
    cycles_ += config_.trap_cycles;
    if (!reloc_trap_sink_) {
      fault("trapreloc without a registered DSR runtime");
    }
    cycles_ += reloc_trap_sink_(static_cast<std::uint32_t>(instr.imm));
    break;

  case Opcode::kOpcodeCount:
    fault("invalid opcode");
  }

  if (!advanced) {
    pc_ = pc_before + 4;
  }
}

} // namespace proxima::vm
