// Shared architectural state and microcoded helpers of the mini-SPARC core:
// register windows, spill/fill traps, the FP jitter model, and the run()
// dispatcher that selects between the two execution engines.  The engines
// themselves live in reference_vm.cpp (switch interpreter) and fast_vm.cpp
// (predecoded computed-goto core).
#include "vm.hpp"

#include "decode.hpp"
#include "taint.hpp"

#include <cmath>
#include <sstream>

namespace proxima::vm {

using isa::Instruction;
using isa::Opcode;

Vm::Vm(mem::GuestMemory& memory, mem::MemoryHierarchy& hierarchy,
       VmConfig config)
    : memory_(memory), hierarchy_(hierarchy), config_(config) {
  if (config_.nwindows < 3) {
    throw VmError("at least 3 register windows are required");
  }
  globals_.assign(8, 0);
  windowed_.assign(static_cast<std::size_t>(config_.nwindows) * 16, 0);
  fregs_.assign(isa::kFpRegisterCount, 0.0);
  if (config_.core != VmCore::kReference) {
    decode_ = std::make_unique<DecodeCache>();
    decode_->set_superblock_costs(DecodeCache::SuperblockCosts{
        .mul_cycles = config_.mul_cycles,
        .fetch_line_words = hierarchy_.il1().config().line_bytes / 4,
    });
    memory_.add_write_listener(decode_.get());
  }
  if (config_.taint) {
    taint_ = std::make_unique<TaintState>(config_.nwindows);
  }
}

Vm::~Vm() {
  if (decode_) {
    memory_.remove_write_listener(decode_.get());
  }
}

void Vm::predecode(std::uint32_t addr, std::uint32_t length) {
  if (decode_) {
    decode_->predecode_range(memory_, addr, length);
  }
}

void Vm::reset(std::uint32_t entry_pc, std::uint32_t stack_top) {
  if (entry_pc % 4 != 0) {
    throw VmError("entry pc must be word-aligned");
  }
  if (stack_top % 8 != 0) {
    throw VmError("stack top must be doubleword-aligned");
  }
  std::fill(globals_.begin(), globals_.end(), 0);
  std::fill(windowed_.begin(), windowed_.end(), 0);
  std::fill(fregs_.begin(), fregs_.end(), 0.0);
  cwp_ = 0;
  resident_ = 1;
  icc_ = ConditionCodes{};
  fcc_ = FpCondition::kEqual;
  pc_ = entry_pc;
  cycles_ = 0;
  instructions_ = 0;
  halted_ = false;
  if (taint_) {
    taint_->clear_registers(); // shadows match the zeroed register file
  }
  set_reg(isa::kSp, stack_top);
}

std::uint32_t& Vm::visible(std::uint8_t index) {
  const std::uint32_t n = config_.nwindows;
  if (index < 8) {
    return globals_[index];
  }
  if (index < 16) { // outs of cwp
    return windowed_[(cwp_ * 16 + (index - 8u)) % (n * 16)];
  }
  if (index < 24) { // locals of cwp
    return windowed_[(cwp_ * 16 + 8u + (index - 16u)) % (n * 16)];
  }
  // ins of cwp == outs of cwp+1
  return windowed_[(((cwp_ + 1) % n) * 16 + (index - 24u)) % (n * 16)];
}

std::uint32_t Vm::visible_value(std::uint8_t index) const {
  if (index == isa::kG0) {
    return 0;
  }
  return const_cast<Vm*>(this)->visible(index);
}

std::uint32_t Vm::reg(std::uint8_t index) const { return visible_value(index); }

void Vm::set_reg(std::uint8_t index, std::uint32_t value) {
  if (index == isa::kG0) {
    return; // %g0 is hardwired to zero
  }
  visible(index) = value;
}

double Vm::freg(std::uint8_t index) const {
  if (index >= fregs_.size()) {
    fault("fp register index out of range");
  }
  return fregs_[index];
}

void Vm::set_freg(std::uint8_t index, double value) {
  if (index >= fregs_.size()) {
    fault("fp register index out of range");
  }
  fregs_[index] = value;
}

void Vm::fault(const std::string& what) const {
  std::ostringstream oss;
  oss << "vm fault at pc=0x" << std::hex << pc_ << ": " << what;
  throw VmError(oss.str());
}

RunResult Vm::run(std::uint64_t cycle_budget) {
  return config_.core == VmCore::kReference ? run_reference(cycle_budget)
                                            : run_fast(cycle_budget);
}

void Vm::take_branch(std::int32_t disp_words) {
  pc_ = static_cast<std::uint32_t>(static_cast<std::int64_t>(pc_) +
                                   std::int64_t{4} * disp_words);
  cycles_ += config_.branch_taken_penalty;
}

std::uint32_t Vm::fp_extra_cycles(Opcode op, double a, double b) const {
  // Deterministic value-dependent jitter, bounded by fp_jitter_max,
  // modelling the GRFPU's data-dependent early-outs and normalisation:
  //  * a zero operand takes an early-out (+1)
  //  * denormal operands need extra normalisation passes (+3)
  //  * add/sub with a large exponent gap needs a long alignment shift (+2)
  const auto classify = [](double x) { return std::fpclassify(x); };
  const int ca = classify(a);
  const int cb = classify(b);
  std::uint32_t extra = 0;
  if (ca == FP_SUBNORMAL || cb == FP_SUBNORMAL) {
    extra = 3;
  } else if (op == Opcode::kFaddd || op == Opcode::kFsubd) {
    if (ca == FP_ZERO || cb == FP_ZERO) {
      extra = 1;
    } else {
      int ea = 0;
      int eb = 0;
      (void)std::frexp(a, &ea);
      (void)std::frexp(b, &eb);
      const int gap = ea > eb ? ea - eb : eb - ea;
      if (gap > 26) {
        extra = 2;
      } else if (gap > 13) {
        extra = 1;
      }
    }
  } else if (ca == FP_ZERO || cb == FP_ZERO) {
    extra = 1;
  }
  return extra > config_.fp_jitter_max ? config_.fp_jitter_max : extra;
}

void Vm::spill_oldest_window() {
  // The oldest resident frame occupies window (cwp + resident - 1) mod N.
  const std::uint32_t n = config_.nwindows;
  const std::uint32_t w = (cwp_ + resident_ - 1) % n;
  // Save area: that window's %sp (its out6), which the SPARC ABI guarantees
  // points at 64 bytes of spill space.  With DSR, this address carries the
  // random stack offset — spill traffic is randomised too.
  const std::uint32_t sp = windowed_[(w * 16 + 6) % (n * 16)];
  if (sp % 8 != 0) {
    fault("window spill with misaligned %sp");
  }
  cycles_ += config_.trap_cycles;
  ++hierarchy_.counters().window_overflows;
  // Store %l0-%l7 then %i0-%i7 as eight doubleword stores (as real spill
  // handlers do with std), through the data cache path.
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t lo_index = (w * 16 + 8 + pair * 2) % (n * 16);
    memory_.write_u32(sp + pair * 8, windowed_[lo_index]);
    memory_.write_u32(sp + pair * 8 + 4, windowed_[(lo_index + 1) % (n * 16)]);
    cycles_ += 1 + hierarchy_.store(sp + pair * 8, cycles_, 8);
  }
  const std::uint32_t ins_base = ((w + 1) % n) * 16; // ins(w) == outs(w+1)
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t in_index = (ins_base + pair * 2) % (n * 16);
    memory_.write_u32(sp + 32 + pair * 8, windowed_[in_index]);
    memory_.write_u32(sp + 32 + pair * 8 + 4,
                      windowed_[(in_index + 1) % (n * 16)]);
    cycles_ += 1 + hierarchy_.store(sp + 32 + pair * 8, cycles_, 8);
  }
  --resident_;
}

void Vm::fill_window(std::uint32_t w) {
  const std::uint32_t n = config_.nwindows;
  // The window being re-entered was spilled at its own %sp, which is the
  // current frame's %fp (= caller's %sp): ins of cwp are resident.
  const std::uint32_t sp = visible_value(isa::kFp);
  if (sp % 8 != 0) {
    fault("window fill with misaligned %sp");
  }
  cycles_ += config_.trap_cycles;
  ++hierarchy_.counters().window_underflows;
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t lo_index = (w * 16 + 8 + pair * 2) % (n * 16);
    windowed_[lo_index] = memory_.read_u32(sp + pair * 8);
    windowed_[(lo_index + 1) % (n * 16)] = memory_.read_u32(sp + pair * 8 + 4);
    cycles_ += 1 + config_.load_use_cycles + hierarchy_.load(sp + pair * 8);
  }
  const std::uint32_t ins_base = ((w + 1) % n) * 16;
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t in_index = (ins_base + pair * 2) % (n * 16);
    windowed_[in_index] = memory_.read_u32(sp + 32 + pair * 8);
    windowed_[(in_index + 1) % (n * 16)] =
        memory_.read_u32(sp + 32 + pair * 8 + 4);
    cycles_ += 1 + config_.load_use_cycles + hierarchy_.load(sp + 32 + pair * 8);
  }
  ++resident_;
}

void Vm::do_save(std::uint8_t rd, std::uint32_t value) {
  const std::uint32_t n = config_.nwindows;
  if (resident_ == n - 1) {
    spill_oldest_window(); // window overflow trap
  }
  cwp_ = (cwp_ + n - 1) % n;
  ++resident_;
  // rd is written in the NEW window (standard idiom: save %sp, -N, %sp).
  set_reg(rd, value);
}

void Vm::do_restore(const Instruction& instr) {
  const std::uint32_t n = config_.nwindows;
  // Compute in the CURRENT window before rotating.
  const std::uint32_t result =
      visible_value(instr.rs1) + visible_value(instr.rs2);
  const std::uint32_t target = (cwp_ + 1) % n;
  if (resident_ == 1) {
    fill_window(target); // window underflow trap
  }
  cwp_ = target;
  --resident_;
  set_reg(instr.rd, result); // written in the OLD (caller) window
}


} // namespace proxima::vm
