// Per-instruction taint transfer function, shared by BOTH execution cores.
//
// Each core calls Vm::taint_execute exactly once per retired instruction,
// *before* the architectural update (register values still hold the
// operands, so effective addresses compute identically to execution).
// Because the function is shared, the reference core is a true oracle for
// the fast core's taint behaviour: any divergence in shadow state is a
// dispatch-loop bug, not a rules mismatch.
//
// Transfer rules (DESIGN.md §10):
//   * ALU: destination taint = OR of source-operand taint (kSethi is a
//     constant and clears; kOrlo copies its rs1, so a %hi/%lo pair is
//     clean unless the static pass says the *fixup* targets a relocated
//     symbol — that case is static-only by design).
//   * Loads: destination taint = shadow of the addressed word, OR'd with
//     membership in a declared source range (the DSR tables).
//   * Stores: word-granularity shadow update; byte stores can taint but
//     never clear a word (a partial overwrite may leave tainted bytes).
//   * kCall/kJmpl: the saved return address is the code layout itself.
//   * SAVE/RESTORE: window rotation is free (shadows are physically
//     indexed); spill/fill traps move taint through the stack shadow at
//     the same addresses the microcode uses, without touching the store
//     counters (trap traffic is not a program store).
//   * Condition codes are not tracked: branches on tainted comparisons are
//     implicit flows, out of scope for a data-flow leak detector.
#include "isa/registers.hpp"
#include "vm/taint.hpp"
#include "vm/vm.hpp"

namespace proxima::vm {

using isa::Instruction;
using isa::Opcode;

void Vm::taint_execute(const Instruction& instr) {
  TaintState& t = *taint_;
  const std::uint32_t cwp = cwp_;
  const auto tr = [&](std::uint8_t i) { return t.reg(i, cwp); };
  const auto wr = [&](std::uint8_t i, bool v) { t.set_reg(i, cwp, v); };
  const auto rs1v = [&] { return visible_value(instr.rs1); };
  const auto rs2v = [&] { return visible_value(instr.rs2); };
  const auto simm = [&] { return static_cast<std::uint32_t>(instr.imm); };

  // Load taint: shadow word, or a hit in a declared source range.
  const auto load_word = [&](std::uint32_t addr) {
    if (t.in_source(addr)) {
      ++t.stats().source_loads;
      return true;
    }
    return t.mem_word(addr);
  };
  // Program store: shadow update plus leak accounting.  A detected sink
  // store latches the address so the on-demand reseed hook fires at most
  // once per instruction, after the whole transfer function ran.
  std::uint32_t sink_store_addr = 0;
  bool sink_store_hit = false;
  const auto store_word = [&](std::uint32_t addr, bool tainted) {
    t.set_mem_word(addr, tainted);
    if (tainted) {
      ++t.stats().tainted_stores;
      if (t.in_sink(addr)) {
        ++t.stats().sink_stores;
        if (!sink_store_hit) {
          sink_store_hit = true;
          sink_store_addr = addr;
        }
      }
    }
  };

  switch (instr.op) {
  // ---- integer ALU, register form: union of operand taint ----
  case Opcode::kAdd:
  case Opcode::kSub:
  case Opcode::kAnd:
  case Opcode::kOr:
  case Opcode::kXor:
  case Opcode::kSll:
  case Opcode::kSrl:
  case Opcode::kSra:
  case Opcode::kMul:
  case Opcode::kDiv:
  case Opcode::kAddcc:
  case Opcode::kSubcc:
  case Opcode::kOrcc:
    wr(instr.rd, tr(instr.rs1) || tr(instr.rs2));
    break;

  // ---- integer ALU, immediate form: copy rs1 taint ----
  case Opcode::kAddi:
  case Opcode::kSubi:
  case Opcode::kAndi:
  case Opcode::kOri:
  case Opcode::kXori:
  case Opcode::kSlli:
  case Opcode::kSrli:
  case Opcode::kSrai:
  case Opcode::kMuli:
  case Opcode::kDivi:
  case Opcode::kAddcci:
  case Opcode::kSubcci:
  case Opcode::kOrlo:
    wr(instr.rd, tr(instr.rs1));
    break;

  case Opcode::kSethi:
    wr(instr.rd, false); // immediate constant
    break;

  // ---- memory ----
  case Opcode::kLd:
  case Opcode::kLdx:
    wr(instr.rd, load_word(instr.op == Opcode::kLd ? rs1v() + simm()
                                                   : rs1v() + rs2v()));
    break;
  case Opcode::kLdb:
  case Opcode::kLdbx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLdb ? rs1v() + simm() : rs1v() + rs2v();
    wr(instr.rd, load_word(addr & ~3U)); // word-granularity shadow
    break;
  }
  case Opcode::kLdd:
  case Opcode::kLddx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLdd ? rs1v() + simm() : rs1v() + rs2v();
    wr(instr.rd, load_word(addr));
    wr(static_cast<std::uint8_t>(instr.rd + 1), load_word(addr + 4));
    break;
  }
  case Opcode::kSt:
  case Opcode::kStx:
    store_word(instr.op == Opcode::kSt ? rs1v() + simm() : rs1v() + rs2v(),
               tr(instr.rd));
    break;
  case Opcode::kStb:
  case Opcode::kStbx: {
    // A tainted byte taints the containing word; a clean byte store leaves
    // the word's shadow alone (the other bytes may still be tainted).
    const std::uint32_t addr =
        instr.op == Opcode::kStb ? rs1v() + simm() : rs1v() + rs2v();
    if (tr(instr.rd)) {
      store_word(addr & ~3U, true);
    }
    break;
  }
  case Opcode::kStd:
  case Opcode::kStdx: {
    const std::uint32_t addr =
        instr.op == Opcode::kStd ? rs1v() + simm() : rs1v() + rs2v();
    store_word(addr, tr(instr.rd));
    store_word(addr + 4, tr(static_cast<std::uint8_t>(instr.rd + 1)));
    break;
  }
  case Opcode::kLdf:
  case Opcode::kLdfx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLdf ? rs1v() + simm() : rs1v() + rs2v();
    t.set_freg(instr.rd, load_word(addr) || load_word(addr + 4));
    break;
  }
  case Opcode::kStf:
  case Opcode::kStfx: {
    const std::uint32_t addr =
        instr.op == Opcode::kStf ? rs1v() + simm() : rs1v() + rs2v();
    const bool tainted = t.freg(instr.rd);
    store_word(addr, tainted);
    store_word(addr + 4, tainted);
    break;
  }

  // ---- control transfer: the return address IS the code layout ----
  case Opcode::kCall:
    t.set_reg(isa::kO7, cwp, true);
    ++t.stats().pc_taints;
    break;
  case Opcode::kJmpl:
    if (instr.rd != isa::kG0) {
      wr(instr.rd, true);
      ++t.stats().pc_taints;
    }
    break;

  // ---- register windows ----
  case Opcode::kSave:
  case Opcode::kSavex: {
    const bool tainted = instr.op == Opcode::kSave
                             ? tr(instr.rs1)
                             : (tr(instr.rs1) || tr(instr.rs2));
    const std::uint32_t n = config_.nwindows;
    if (resident_ == n - 1) {
      taint_spill_oldest_window(); // mirrors the overflow trap
    }
    t.set_reg(instr.rd, (cwp + n - 1) % n, tainted); // rd in the NEW window
    break;
  }
  case Opcode::kRestore: {
    const bool tainted = tr(instr.rs1) || tr(instr.rs2);
    const std::uint32_t n = config_.nwindows;
    const std::uint32_t target = (cwp + 1) % n;
    if (resident_ == 1) {
      taint_fill_window(target); // mirrors the underflow trap
    }
    t.set_reg(instr.rd, target, tainted); // rd in the OLD (caller) window
    break;
  }

  // ---- floating point ----
  case Opcode::kFaddd:
  case Opcode::kFsubd:
  case Opcode::kFmuld:
  case Opcode::kFdivd:
    t.set_freg(instr.rd, t.freg(instr.rs1) || t.freg(instr.rs2));
    break;
  case Opcode::kFsqrtd:
  case Opcode::kFmovd:
  case Opcode::kFnegd:
  case Opcode::kFabsd:
    t.set_freg(instr.rd, t.freg(instr.rs1));
    break;
  case Opcode::kFitod:
    t.set_freg(instr.rd, tr(instr.rs1));
    break;
  case Opcode::kFdtoi:
    wr(instr.rd, t.freg(instr.rs1));
    break;

  case Opcode::kRdtick:
    wr(instr.rd, false); // a cycle count, not an address
    break;

  // Branches, kNop, kFcmpd, kIpoint, kFlush, kHalt, kTrapReloc: no
  // register or memory data flow to track.
  default:
    break;
  }

  if (sink_store_hit && sink_store_sink_) {
    // The reseed (or whatever the hook does) touches only the DSR tables
    // and pool memory — never the registers this instruction read — and
    // both cores call taint_execute at the same point of the retire
    // sequence with `cycles_` live, so the charge lands identically.
    cycles_ += sink_store_sink_(sink_store_addr);
  }
}

void Vm::taint_spill_oldest_window() {
  // Address computation mirrors Vm::spill_oldest_window exactly; taint of
  // %l0-%l7 and %i0-%i7 of the oldest frame moves into the stack shadow.
  TaintState& t = *taint_;
  const std::uint32_t n = config_.nwindows;
  const std::uint32_t w = (cwp_ + resident_ - 1) % n;
  const std::uint32_t sp = windowed_[(w * 16 + 6) % (n * 16)];
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t lo_index = (w * 16 + 8 + pair * 2) % (n * 16);
    t.set_mem_word(sp + pair * 8, t.windowed_slot(lo_index));
    t.set_mem_word(sp + pair * 8 + 4,
                   t.windowed_slot((lo_index + 1) % (n * 16)));
  }
  const std::uint32_t ins_base = ((w + 1) % n) * 16; // ins(w) == outs(w+1)
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t in_index = (ins_base + pair * 2) % (n * 16);
    t.set_mem_word(sp + 32 + pair * 8, t.windowed_slot(in_index));
    t.set_mem_word(sp + 32 + pair * 8 + 4,
                   t.windowed_slot((in_index + 1) % (n * 16)));
  }
}

void Vm::taint_fill_window(std::uint32_t w) {
  // Mirror of Vm::fill_window: taint flows back from the stack shadow.
  TaintState& t = *taint_;
  const std::uint32_t n = config_.nwindows;
  const std::uint32_t sp = visible_value(isa::kFp);
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t lo_index = (w * 16 + 8 + pair * 2) % (n * 16);
    t.set_windowed_slot(lo_index, t.mem_word(sp + pair * 8));
    t.set_windowed_slot((lo_index + 1) % (n * 16),
                        t.mem_word(sp + pair * 8 + 4));
  }
  const std::uint32_t ins_base = ((w + 1) % n) * 16;
  for (std::uint32_t pair = 0; pair < 4; ++pair) {
    const std::uint32_t in_index = (ins_base + pair * 2) % (n * 16);
    t.set_windowed_slot(in_index, t.mem_word(sp + 32 + pair * 8));
    t.set_windowed_slot((in_index + 1) % (n * 16),
                        t.mem_word(sp + 32 + pair * 8 + 4));
  }
}

void Vm::taint_add_source_range(std::uint32_t base, std::uint32_t length) {
  if (taint_) {
    taint_->add_source_range(base, length);
  }
}

void Vm::taint_add_sink_range(std::uint32_t base, std::uint32_t length) {
  if (taint_) {
    taint_->add_sink_range(base, length);
  }
}

void Vm::taint_clear_ranges() {
  if (taint_) {
    taint_->clear_ranges();
  }
}

void Vm::taint_new_run() {
  if (taint_) {
    taint_->clear_registers();
    taint_->clear_memory();
  }
}

TaintStats Vm::taint_stats() const {
  return taint_ ? taint_->stats() : TaintStats{};
}

std::uint64_t Vm::taint_sink_bits() const {
  return taint_ ? taint_->sink_tainted_bits() : 0;
}

} // namespace proxima::vm
