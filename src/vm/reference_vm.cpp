// The reference execution engine: the original fetch-decode-execute switch
// interpreter, selectable via VmConfig{.core = VmCore::kReference}.
//
// This core is the oracle for the predecoded fast-dispatch core in
// fast_vm.cpp: the differential suite (tests/vm_differential_test.cpp)
// asserts bit-identical cycles, instruction counts and memory-event
// counters between the two on every scenario-registry workload, across all
// four randomisation modes.  Keep this implementation boring and obviously
// correct — its value is being easy to trust, not being fast.
#include "vm.hpp"

#include <cmath>

namespace proxima::vm {

using isa::Instruction;
using isa::Opcode;

RunResult Vm::run_reference(std::uint64_t cycle_budget) {
  while (!halted_) {
    if (instructions_ >= config_.max_instructions) {
      return RunResult{RunResult::Stop::kInstructionLimit, instructions_,
                       cycles_};
    }
    if (cycle_budget != 0 && cycles_ >= cycle_budget) {
      return RunResult{RunResult::Stop::kCycleBudget, instructions_, cycles_};
    }
    step();
  }
  return RunResult{RunResult::Stop::kHalt, instructions_, cycles_};
}

void Vm::step() {
  if (halted_) {
    fault("step() on a halted core");
  }
  // Fetch.
  cycles_ += 1 + hierarchy_.fetch(pc_);
  const std::uint32_t word = memory_.read_u32(pc_);
  Instruction instr;
  try {
    instr = isa::decode(word);
  } catch (const isa::DecodeError& e) {
    fault(e.what());
  }
  ++instructions_;
  ++hierarchy_.counters().instructions;
  if (isa::is_fp_op(instr.op)) {
    ++hierarchy_.counters().fpu_ops;
  }
  if (mix_ != nullptr) {
    ++mix_[static_cast<std::uint8_t>(instr.op)];
  }
  if (taint_) {
    taint_execute(instr); // before execute(): operands still hold sources
  }
  execute(instr);
}

void Vm::execute(const Instruction& instr) {
  const auto rs1 = [&] { return visible_value(instr.rs1); };
  const auto rs2 = [&] { return visible_value(instr.rs2); };
  const auto simm = [&] { return static_cast<std::uint32_t>(instr.imm); };

  auto set_icc_add = [&](std::uint32_t a, std::uint32_t b, std::uint32_t r) {
    icc_.n = (r >> 31) != 0;
    icc_.z = r == 0;
    icc_.v = ((~(a ^ b) & (a ^ r)) >> 31) != 0;
    icc_.c = r < a;
  };
  auto set_icc_sub = [&](std::uint32_t a, std::uint32_t b, std::uint32_t r) {
    icc_.n = (r >> 31) != 0;
    icc_.z = r == 0;
    icc_.v = (((a ^ b) & (a ^ r)) >> 31) != 0;
    icc_.c = a < b; // borrow
  };
  auto set_icc_logic = [&](std::uint32_t r) {
    icc_.n = (r >> 31) != 0;
    icc_.z = r == 0;
    icc_.v = false;
    icc_.c = false;
  };

  auto branch_if = [&](bool condition) {
    if (condition) {
      take_branch(instr.imm);
    } else {
      pc_ += 4;
    }
  };

  const std::uint32_t pc_before = pc_;
  bool advanced = false; // control-transfer ops set pc_ themselves

  switch (instr.op) {
  case Opcode::kNop:
    break;

  // ---- integer ALU, register form ----
  case Opcode::kAdd:
    set_reg(instr.rd, rs1() + rs2());
    break;
  case Opcode::kSub:
    set_reg(instr.rd, rs1() - rs2());
    break;
  case Opcode::kAnd:
    set_reg(instr.rd, rs1() & rs2());
    break;
  case Opcode::kOr:
    set_reg(instr.rd, rs1() | rs2());
    break;
  case Opcode::kXor:
    set_reg(instr.rd, rs1() ^ rs2());
    break;
  case Opcode::kSll:
    set_reg(instr.rd, rs1() << (rs2() & 31));
    break;
  case Opcode::kSrl:
    set_reg(instr.rd, rs1() >> (rs2() & 31));
    break;
  case Opcode::kSra:
    set_reg(instr.rd, static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(rs1()) >> (rs2() & 31)));
    break;
  case Opcode::kMul:
    // SPARC smul keeps the low 32 bits of the 64-bit product: widen so an
    // overflowing guest multiply wraps instead of being host-side UB.
    set_reg(instr.rd,
            static_cast<std::uint32_t>(
                static_cast<std::int64_t>(static_cast<std::int32_t>(rs1())) *
                static_cast<std::int32_t>(rs2())));
    cycles_ += config_.mul_cycles - 1;
    break;
  case Opcode::kDiv: {
    const auto divisor = static_cast<std::int32_t>(rs2());
    if (divisor == 0) {
      fault("integer division by zero");
    }
    const auto dividend = static_cast<std::int32_t>(rs1());
    const std::int64_t q = static_cast<std::int64_t>(dividend) / divisor;
    set_reg(instr.rd, static_cast<std::uint32_t>(q));
    cycles_ += config_.div_cycles - 1;
    break;
  }
  case Opcode::kAddcc: {
    const std::uint32_t a = rs1();
    const std::uint32_t b = rs2();
    const std::uint32_t r = a + b;
    set_reg(instr.rd, r);
    set_icc_add(a, b, r);
    break;
  }
  case Opcode::kSubcc: {
    const std::uint32_t a = rs1();
    const std::uint32_t b = rs2();
    const std::uint32_t r = a - b;
    set_reg(instr.rd, r);
    set_icc_sub(a, b, r);
    break;
  }
  case Opcode::kOrcc: {
    const std::uint32_t r = rs1() | rs2();
    set_reg(instr.rd, r);
    set_icc_logic(r);
    break;
  }

  // ---- integer ALU, immediate form ----
  case Opcode::kAddi:
    set_reg(instr.rd, rs1() + simm());
    break;
  case Opcode::kSubi:
    set_reg(instr.rd, rs1() - simm());
    break;
  case Opcode::kAndi:
    set_reg(instr.rd, rs1() & simm());
    break;
  case Opcode::kOri:
    set_reg(instr.rd, rs1() | simm());
    break;
  case Opcode::kXori:
    set_reg(instr.rd, rs1() ^ simm());
    break;
  case Opcode::kSlli:
    set_reg(instr.rd, rs1() << (simm() & 31));
    break;
  case Opcode::kSrli:
    set_reg(instr.rd, rs1() >> (simm() & 31));
    break;
  case Opcode::kSrai:
    set_reg(instr.rd, static_cast<std::uint32_t>(
                          static_cast<std::int32_t>(rs1()) >> (simm() & 31)));
    break;
  case Opcode::kMuli:
    set_reg(instr.rd,
            static_cast<std::uint32_t>(
                static_cast<std::int64_t>(static_cast<std::int32_t>(rs1())) *
                instr.imm));
    cycles_ += config_.mul_cycles - 1;
    break;
  case Opcode::kDivi: {
    if (instr.imm == 0) {
      fault("integer division by zero");
    }
    const std::int64_t q =
        static_cast<std::int64_t>(static_cast<std::int32_t>(rs1())) /
        instr.imm;
    set_reg(instr.rd, static_cast<std::uint32_t>(q));
    cycles_ += config_.div_cycles - 1;
    break;
  }
  case Opcode::kAddcci: {
    const std::uint32_t a = rs1();
    const std::uint32_t b = simm();
    const std::uint32_t r = a + b;
    set_reg(instr.rd, r);
    set_icc_add(a, b, r);
    break;
  }
  case Opcode::kSubcci: {
    const std::uint32_t a = rs1();
    const std::uint32_t b = simm();
    const std::uint32_t r = a - b;
    set_reg(instr.rd, r);
    set_icc_sub(a, b, r);
    break;
  }
  case Opcode::kOrlo:
    // Zero-extended 13-bit OR: the %lo companion of SETHI.
    set_reg(instr.rd, rs1() | (simm() & 0x1fffU));
    break;
  case Opcode::kSethi:
    set_reg(instr.rd, static_cast<std::uint32_t>(instr.imm) << 13);
    break;

  // ---- memory ----
  case Opcode::kLd:
  case Opcode::kLdx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLd ? rs1() + simm() : rs1() + rs2();
    if (addr % 4 != 0) {
      fault("misaligned word load");
    }
    cycles_ += config_.load_use_cycles + hierarchy_.load(addr);
    set_reg(instr.rd, memory_.read_u32(addr));
    break;
  }
  case Opcode::kLdb:
  case Opcode::kLdbx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLdb ? rs1() + simm() : rs1() + rs2();
    cycles_ += config_.load_use_cycles + hierarchy_.load(addr);
    set_reg(instr.rd, memory_.read_u8(addr));
    break;
  }
  case Opcode::kLdd:
  case Opcode::kLddx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLdd ? rs1() + simm() : rs1() + rs2();
    if (addr % 8 != 0) {
      fault("misaligned doubleword load");
    }
    if (instr.rd % 2 != 0) {
      fault("ldd destination must be an even register");
    }
    cycles_ += config_.load_use_cycles + hierarchy_.load(addr);
    set_reg(instr.rd, memory_.read_u32(addr));
    set_reg(static_cast<std::uint8_t>(instr.rd + 1), memory_.read_u32(addr + 4));
    break;
  }
  case Opcode::kSt:
  case Opcode::kStx: {
    const std::uint32_t addr =
        instr.op == Opcode::kSt ? rs1() + simm() : rs1() + rs2();
    if (addr % 4 != 0) {
      fault("misaligned word store");
    }
    memory_.write_u32(addr, visible_value(instr.rd));
    cycles_ += hierarchy_.store(addr, cycles_, 4);
    break;
  }
  case Opcode::kStb:
  case Opcode::kStbx: {
    const std::uint32_t addr =
        instr.op == Opcode::kStb ? rs1() + simm() : rs1() + rs2();
    memory_.write_u8(addr, static_cast<std::uint8_t>(visible_value(instr.rd)));
    cycles_ += hierarchy_.store(addr, cycles_, 1);
    break;
  }
  case Opcode::kStd:
  case Opcode::kStdx: {
    const std::uint32_t addr =
        instr.op == Opcode::kStd ? rs1() + simm() : rs1() + rs2();
    if (addr % 8 != 0) {
      fault("misaligned doubleword store");
    }
    if (instr.rd % 2 != 0) {
      fault("std source must be an even register");
    }
    memory_.write_u32(addr, visible_value(instr.rd));
    memory_.write_u32(addr + 4,
                      visible_value(static_cast<std::uint8_t>(instr.rd + 1)));
    cycles_ += hierarchy_.store(addr, cycles_, 8);
    break;
  }
  case Opcode::kLdf:
  case Opcode::kLdfx: {
    const std::uint32_t addr =
        instr.op == Opcode::kLdf ? rs1() + simm() : rs1() + rs2();
    if (addr % 8 != 0) {
      fault("misaligned fp load");
    }
    cycles_ += config_.load_use_cycles + hierarchy_.load(addr);
    set_freg(instr.rd, memory_.read_f64(addr));
    break;
  }
  case Opcode::kStf:
  case Opcode::kStfx: {
    const std::uint32_t addr =
        instr.op == Opcode::kStf ? rs1() + simm() : rs1() + rs2();
    if (addr % 8 != 0) {
      fault("misaligned fp store");
    }
    memory_.write_f64(addr, freg(instr.rd));
    cycles_ += hierarchy_.store(addr, cycles_, 8);
    break;
  }

  // ---- control transfer ----
  case Opcode::kCall:
    set_reg(isa::kO7, pc_before); // return address = address of the call
    take_branch(instr.imm);
    advanced = true;
    break;
  case Opcode::kJmpl: {
    const std::uint32_t target = (rs1() + simm()) & ~3U;
    set_reg(instr.rd, pc_before);
    pc_ = target;
    cycles_ += config_.branch_taken_penalty;
    advanced = true;
    break;
  }
  case Opcode::kBa:
    branch_if(true);
    advanced = true;
    break;
  case Opcode::kBn:
    branch_if(false);
    advanced = true;
    break;
  case Opcode::kBe:
    branch_if(icc_.z);
    advanced = true;
    break;
  case Opcode::kBne:
    branch_if(!icc_.z);
    advanced = true;
    break;
  case Opcode::kBg:
    branch_if(!(icc_.z || (icc_.n != icc_.v)));
    advanced = true;
    break;
  case Opcode::kBle:
    branch_if(icc_.z || (icc_.n != icc_.v));
    advanced = true;
    break;
  case Opcode::kBge:
    branch_if(icc_.n == icc_.v);
    advanced = true;
    break;
  case Opcode::kBl:
    branch_if(icc_.n != icc_.v);
    advanced = true;
    break;
  case Opcode::kBgu:
    branch_if(!(icc_.c || icc_.z));
    advanced = true;
    break;
  case Opcode::kBleu:
    branch_if(icc_.c || icc_.z);
    advanced = true;
    break;
  case Opcode::kBcc:
    branch_if(!icc_.c);
    advanced = true;
    break;
  case Opcode::kBcs:
    branch_if(icc_.c);
    advanced = true;
    break;
  case Opcode::kBpos:
    branch_if(!icc_.n);
    advanced = true;
    break;
  case Opcode::kBneg:
    branch_if(icc_.n);
    advanced = true;
    break;
  case Opcode::kFbe:
    branch_if(fcc_ == FpCondition::kEqual);
    advanced = true;
    break;
  case Opcode::kFbne:
    branch_if(fcc_ != FpCondition::kEqual);
    advanced = true;
    break;
  case Opcode::kFbl:
    branch_if(fcc_ == FpCondition::kLess);
    advanced = true;
    break;
  case Opcode::kFbg:
    branch_if(fcc_ == FpCondition::kGreater);
    advanced = true;
    break;
  case Opcode::kFble:
    branch_if(fcc_ == FpCondition::kLess || fcc_ == FpCondition::kEqual);
    advanced = true;
    break;
  case Opcode::kFbge:
    branch_if(fcc_ == FpCondition::kGreater || fcc_ == FpCondition::kEqual);
    advanced = true;
    break;

  // ---- register windows ----
  case Opcode::kSave:
    do_save(instr.rd, rs1() + simm());
    break;
  case Opcode::kSavex:
    do_save(instr.rd, rs1() + rs2());
    break;
  case Opcode::kRestore:
    do_restore(instr);
    break;

  // ---- floating point ----
  case Opcode::kFaddd: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_add_cycles - 1 + fp_extra_cycles(instr.op, a, b);
    set_freg(instr.rd, a + b);
    break;
  }
  case Opcode::kFsubd: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_add_cycles - 1 + fp_extra_cycles(instr.op, a, b);
    set_freg(instr.rd, a - b);
    break;
  }
  case Opcode::kFmuld: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_mul_cycles - 1 + fp_extra_cycles(instr.op, a, b);
    set_freg(instr.rd, a * b);
    break;
  }
  case Opcode::kFdivd: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_div_cycles - 1 + fp_extra_cycles(instr.op, a, b);
    set_freg(instr.rd, a / b);
    break;
  }
  case Opcode::kFsqrtd: {
    const double a = freg(instr.rs1);
    cycles_ += config_.fp_sqrt_cycles - 1 + fp_extra_cycles(instr.op, a, 1.0);
    set_freg(instr.rd, std::sqrt(a));
    break;
  }
  case Opcode::kFcmpd: {
    const double a = freg(instr.rs1);
    const double b = freg(instr.rs2);
    cycles_ += config_.fp_add_cycles - 1;
    if (std::isnan(a) || std::isnan(b)) {
      fcc_ = FpCondition::kUnordered;
    } else if (a < b) {
      fcc_ = FpCondition::kLess;
    } else if (a > b) {
      fcc_ = FpCondition::kGreater;
    } else {
      fcc_ = FpCondition::kEqual;
    }
    break;
  }
  case Opcode::kFitod:
    cycles_ += config_.fp_add_cycles - 1;
    set_freg(instr.rd,
             static_cast<double>(static_cast<std::int32_t>(visible_value(instr.rs1))));
    break;
  case Opcode::kFdtoi: {
    cycles_ += config_.fp_add_cycles - 1;
    const double value = freg(instr.rs1);
    set_reg(instr.rd,
            static_cast<std::uint32_t>(static_cast<std::int32_t>(value)));
    break;
  }
  case Opcode::kFmovd:
    set_freg(instr.rd, freg(instr.rs1));
    break;
  case Opcode::kFnegd:
    set_freg(instr.rd, -freg(instr.rs1));
    break;
  case Opcode::kFabsd:
    set_freg(instr.rd, std::fabs(freg(instr.rs1)));
    break;

  // ---- platform ----
  case Opcode::kRdtick:
    set_reg(instr.rd, static_cast<std::uint32_t>(cycles_));
    break;
  case Opcode::kIpoint:
    cycles_ += config_.ipoint_cycles;
    if (ipoint_sink_) {
      ipoint_sink_(static_cast<std::uint32_t>(instr.imm), cycles_);
    }
    break;
  case Opcode::kFlush: {
    const std::uint32_t addr = rs1() + simm();
    hierarchy_.invalidate_range(addr, 1);
    cycles_ += config_.flush_cycles;
    break;
  }
  case Opcode::kHalt:
    halted_ = true;
    break;
  case Opcode::kTrapReloc:
    cycles_ += config_.trap_cycles;
    if (!reloc_trap_sink_) {
      fault("trapreloc without a registered DSR runtime");
    }
    cycles_ += reloc_trap_sink_(static_cast<std::uint32_t>(instr.imm));
    break;

  case Opcode::kOpcodeCount:
    fault("invalid opcode");
  }

  if (!advanced) {
    pc_ = pc_before + 4;
  }
}

} // namespace proxima::vm
