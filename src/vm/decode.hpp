// Predecoded program representation for the fast-dispatch VM core.
//
// A DecodedOp is an isa::Instruction resolved into a flat, dispatch-ready
// form: the opcode collapsed to a dense handler index (the Opcode value
// itself — the enum is already dense), operand fields pre-extracted, and
// the immediate pre-sign-extended.  DecodedOps live in a DecodeCache keyed
// by guest address: 4 KiB pages of 1024 entries, materialised on demand,
// with a one-entry MRU page memo so the dispatch loop's lookup is an index
// computation in the common case.
//
// Coherence: the cache registers itself as a mem::MemoryWriteListener, so
// ANY write into guest memory — the DSR runtime's relocation copies, a
// static re-link reloading the image, a lazy-relocation trap patching the
// function table, or a guest store into code — resets the covered entries
// to "undecoded" before they can be dispatched again.  This is the
// software analogue of the invalidation discipline the paper's runtime
// needs on real SPARC hardware, applied to the host-side decoded form.
#pragma once

#include "isa/instruction.hpp"
#include "mem/guest_memory.hpp"

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>

namespace proxima::vm {

/// One predecoded instruction slot (8 bytes).
struct DecodedOp {
  /// Dense handler index: the isa::Opcode value, or one of the sentinels.
  std::uint8_t handler = 0;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
};

/// Sentinel handlers (outside the valid opcode range).
inline constexpr std::uint8_t kUndecodedOp = 0xff; // slot not decoded yet
inline constexpr std::uint8_t kInvalidOp = 0xfe;   // word failed to decode
static_assert(static_cast<std::uint8_t>(isa::Opcode::kOpcodeCount) <
              kInvalidOp);

/// X-macro over every executable opcode, in enum order.  The fast core's
/// computed-goto label table is generated from this list; a static_assert
/// in fast_vm.cpp verifies the order matches the enum values.
#define PROXIMA_VM_FOREACH_OPCODE(X)                                          \
  X(kNop)                                                                     \
  X(kAdd) X(kSub) X(kAnd) X(kOr) X(kXor) X(kSll) X(kSrl) X(kSra)              \
  X(kMul) X(kDiv) X(kAddcc) X(kSubcc) X(kOrcc)                                \
  X(kAddi) X(kSubi) X(kAndi) X(kOri) X(kXori) X(kSlli) X(kSrli) X(kSrai)      \
  X(kMuli) X(kDivi) X(kAddcci) X(kSubcci) X(kOrlo) X(kSethi)                  \
  X(kLd) X(kLdx) X(kSt) X(kStx) X(kLdb) X(kLdbx) X(kStb) X(kStbx)             \
  X(kLdd) X(kLddx) X(kStd) X(kStdx) X(kLdf) X(kLdfx) X(kStf) X(kStfx)         \
  X(kCall) X(kJmpl)                                                           \
  X(kBa) X(kBn) X(kBe) X(kBne) X(kBg) X(kBle) X(kBge) X(kBl)                  \
  X(kBgu) X(kBleu) X(kBcc) X(kBcs) X(kBpos) X(kBneg)                          \
  X(kFbe) X(kFbne) X(kFbl) X(kFbg) X(kFble) X(kFbge)                          \
  X(kSave) X(kSavex) X(kRestore)                                              \
  X(kFaddd) X(kFsubd) X(kFmuld) X(kFdivd) X(kFsqrtd) X(kFcmpd)                \
  X(kFitod) X(kFdtoi) X(kFmovd) X(kFnegd) X(kFabsd)                           \
  X(kRdtick) X(kIpoint) X(kFlush) X(kHalt) X(kTrapReloc)

/// Address-indexed store of DecodedOps, coherent with guest memory.
class DecodeCache final : public mem::MemoryWriteListener {
public:
  static constexpr std::uint32_t kPageShift = 12; // 4 KiB, 1024 ops
  static constexpr std::uint32_t kOpsPerPage = (1u << kPageShift) / 4;
  /// Pages kept before the cache is dropped wholesale (bounds the decoded
  /// footprint when DSR relocation scatters code across the 32 MiB pool
  /// over thousands of partition reboots).
  static constexpr std::size_t kMaxPages = 1024; // 8 MiB of DecodedOps

  /// Cache activity counters (observability).  All increments live on the
  /// already-slow paths (decode miss, invalidation walk), never in the
  /// dispatch loop's hit path.  NOTE for telemetry consumers: these depend
  /// on cache *state*, which persists across runs within one runner — the
  /// same global run executed by a different worker sharding can hit or
  /// miss differently.  Only `write_invalidation_events` (listener-call
  /// count, a pure function of the guest's writes) is worker-count
  /// deterministic; the rest are reported as wall-class gauges.
  struct Stats {
    std::uint64_t decodes = 0;                  // slots decoded (incl. re-)
    std::uint64_t write_invalidation_events = 0; // on_memory_written calls
    std::uint64_t invalidated_slots = 0;        // decoded slots flipped back
    std::uint64_t full_invalidations = 0;       // wholesale drops
  };

  DecodeCache() = default;
  DecodeCache(const DecodeCache&) = delete;
  DecodeCache& operator=(const DecodeCache&) = delete;

  /// The decoded slot for a (word-aligned) pc, decoding on first use.
  /// The returned reference stays valid until the next invalidation.
  const DecodedOp& at(std::uint32_t pc, const mem::GuestMemory& memory) {
    const std::uint32_t index = pc >> kPageShift;
    if (index != mru_index_ || mru_ == nullptr) [[unlikely]] {
      mru_ = &page_slow(index);
      mru_index_ = index;
    }
    DecodedOp& op = mru_->ops[(pc & ((1u << kPageShift) - 1)) >> 2];
    if (op.handler == kUndecodedOp) [[unlikely]] {
      ++stats_.decodes;
      decode_into(op, pc, memory);
    }
    return op;
  }

  /// One-time warm pass: decode every word of [addr, addr+length) up
  /// front (undecodable words become kInvalidOp slots, faulting only if
  /// executed — data interleaved with code must not throw here).
  void predecode_range(const mem::GuestMemory& memory, std::uint32_t addr,
                       std::uint32_t length);

  void invalidate_all();

  /// Decoded pages currently materialised (observability/tests).
  std::size_t resident_pages() const noexcept { return pages_.size(); }

  const Stats& stats() const noexcept { return stats_; }

  // mem::MemoryWriteListener
  void on_memory_written(std::uint32_t addr, std::uint32_t length) override;
  void on_memory_cleared() override { invalidate_all(); }

private:
  struct Page {
    std::array<DecodedOp, kOpsPerPage> ops;
    Page() { reset(); }
    void reset() {
      for (DecodedOp& op : ops) {
        op = DecodedOp{kUndecodedOp, 0, 0, 0, 0};
      }
    }
  };

  Page& page_slow(std::uint32_t index);
  static void decode_into(DecodedOp& op, std::uint32_t pc,
                          const mem::GuestMemory& memory);

  std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
  Page* mru_ = nullptr;
  std::uint32_t mru_index_ = 0xffff'ffff;
  Stats stats_;
};

} // namespace proxima::vm
