// Predecoded program representation for the fast-dispatch VM core.
//
// A DecodedOp is an isa::Instruction resolved into a flat, dispatch-ready
// form: the opcode collapsed to a dense handler index (the Opcode value
// itself — the enum is already dense), operand fields pre-extracted, and
// the immediate pre-sign-extended.  DecodedOps live in a DecodeCache keyed
// by guest address: 4 KiB pages of 1024 entries, materialised on demand,
// with a one-entry MRU page memo so the dispatch loop's lookup is an index
// computation in the common case.
//
// Coherence: the cache registers itself as a mem::MemoryWriteListener, so
// ANY write into guest memory — the DSR runtime's relocation copies, a
// static re-link reloading the image, a lazy-relocation trap patching the
// function table, or a guest store into code — resets the covered entries
// to "undecoded" before they can be dispatched again.  This is the
// software analogue of the invalidation discipline the paper's runtime
// needs on real SPARC hardware, applied to the host-side decoded form.
#pragma once

#include "isa/instruction.hpp"
#include "mem/guest_memory.hpp"

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace proxima::vm {

/// One predecoded instruction slot (8 bytes).
struct DecodedOp {
  /// Dense handler index: the isa::Opcode value, or one of the sentinels.
  std::uint8_t handler = 0;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;
};

/// Sentinel handlers (outside the valid opcode range).
inline constexpr std::uint8_t kUndecodedOp = 0xff; // slot not decoded yet
inline constexpr std::uint8_t kInvalidOp = 0xfe;   // word failed to decode
static_assert(static_cast<std::uint8_t>(isa::Opcode::kOpcodeCount) <
              kInvalidOp);

/// X-macro over every executable opcode, in enum order.  The fast core's
/// computed-goto label table is generated from this list; a static_assert
/// in fast_vm.cpp verifies the order matches the enum values.
#define PROXIMA_VM_FOREACH_OPCODE(X)                                          \
  X(kNop)                                                                     \
  X(kAdd) X(kSub) X(kAnd) X(kOr) X(kXor) X(kSll) X(kSrl) X(kSra)              \
  X(kMul) X(kDiv) X(kAddcc) X(kSubcc) X(kOrcc)                                \
  X(kAddi) X(kSubi) X(kAndi) X(kOri) X(kXori) X(kSlli) X(kSrli) X(kSrai)      \
  X(kMuli) X(kDivi) X(kAddcci) X(kSubcci) X(kOrlo) X(kSethi)                  \
  X(kLd) X(kLdx) X(kSt) X(kStx) X(kLdb) X(kLdbx) X(kStb) X(kStbx)             \
  X(kLdd) X(kLddx) X(kStd) X(kStdx) X(kLdf) X(kLdfx) X(kStf) X(kStfx)         \
  X(kCall) X(kJmpl)                                                           \
  X(kBa) X(kBn) X(kBe) X(kBne) X(kBg) X(kBle) X(kBge) X(kBl)                  \
  X(kBgu) X(kBleu) X(kBcc) X(kBcs) X(kBpos) X(kBneg)                          \
  X(kFbe) X(kFbne) X(kFbl) X(kFbg) X(kFble) X(kFbge)                          \
  X(kSave) X(kSavex) X(kRestore)                                              \
  X(kFaddd) X(kFsubd) X(kFmuld) X(kFdivd) X(kFsqrtd) X(kFcmpd)                \
  X(kFitod) X(kFdtoi) X(kFmovd) X(kFnegd) X(kFabsd)                           \
  X(kRdtick) X(kIpoint) X(kFlush) X(kHalt) X(kTrapReloc)

/// One entry of a superblock's per-op execution plan: the deterministic
/// cycle charge folded at formation time plus the op's memory-access plan
/// for instruction fetch.
///
/// `pre_cycles` is the charge the op-at-a-time core books *unconditionally
/// before any faultable work*: the 1-cycle base for every op, with the
/// fixed multiply latency folded in for kMul/kMuli (their extra charge has
/// no fault check in front of it).  Every charge that sits behind a fault
/// check (divide, load-use, store drain, FP latency behind the fp-register
/// range checks) stays in the executor's handler, after the same check, so
/// a faulting op charges exactly what op-at-a-time execution charges.
struct SuperblockOp {
  std::uint16_t pre_cycles = 1;
  /// First op fetched from a new instruction-cache line (or the block
  /// head): the executor performs a real timed fetch here; subsequent
  /// same-line fetches may be deferred when proven trivial.
  bool new_line = false;
};

/// A fused maximal straight-line run of decoded ops within one page —
/// terminated by any control transfer (branch/call/jmpl), window op,
/// trap, ipoint/rdtick/flush/halt, an undecoded or undecodable slot, or
/// the page boundary.  Lives beside its page's DecodedOps and dies with
/// them: the guest-memory write listener kills any block covering a
/// written slot (live=false, head unhooked) without moving storage, so an
/// executor mid-block can detect the kill and bail exactly.
struct Superblock {
  std::uint16_t begin = 0; // first op slot within the page
  std::uint16_t count = 0; // fused ops (>= DecodeCache::kMinSuperblockOps)
  bool live = true;
  std::vector<SuperblockOp> plan; // count entries
};

/// Address-indexed store of DecodedOps, coherent with guest memory.
class DecodeCache final : public mem::MemoryWriteListener {
public:
  static constexpr std::uint32_t kPageShift = 12; // 4 KiB, 1024 ops
  static constexpr std::uint32_t kOpsPerPage = (1u << kPageShift) / 4;
  /// Pages kept before the cache is dropped wholesale (bounds the decoded
  /// footprint when DSR relocation scatters code across the 32 MiB pool
  /// over thousands of partition reboots).
  static constexpr std::size_t kMaxPages = 1024; // 8 MiB of DecodedOps
  /// Shortest run worth fusing: the block entry cost (lookup + gating +
  /// exit sync) must amortise over the per-op dispatch it eliminates.
  static constexpr std::uint32_t kMinSuperblockOps = 4;
  /// Dead-block compaction threshold per page (kills under DSR rewriting
  /// leave dead records behind; live blocks can never exceed
  /// kOpsPerPage / kMinSuperblockOps = 256).
  static constexpr std::size_t kMaxBlocksPerPage = 512;

  /// Deterministic cycle-cost model folded into superblock plans at
  /// formation time.  Mirrors the VmConfig fields of the owning Vm (the
  /// cache itself is config-agnostic; the Vm constructor injects these).
  struct SuperblockCosts {
    std::uint32_t mul_cycles = 4;
    /// Instruction-cache line size in words — the granularity of the
    /// per-op fetch plan (new_line flags).  From the hierarchy's IL1.
    std::uint32_t fetch_line_words = 8;
  };

  /// Cache activity counters (observability).  All increments live on the
  /// already-slow paths (decode miss, invalidation walk), never in the
  /// dispatch loop's hit path.  NOTE for telemetry consumers: these depend
  /// on cache *state*, which persists across runs within one runner — the
  /// same global run executed by a different worker sharding can hit or
  /// miss differently.  Only `write_invalidation_events` (listener-call
  /// count, a pure function of the guest's writes) is worker-count
  /// deterministic; the rest are reported as wall-class gauges.
  struct Stats {
    std::uint64_t decodes = 0;                  // slots decoded (incl. re-)
    std::uint64_t write_invalidation_events = 0; // on_memory_written calls
    std::uint64_t invalidated_slots = 0;        // decoded slots flipped back
    std::uint64_t full_invalidations = 0;       // wholesale drops
    // Superblock tier (vm.superblock.* gauges; all zero under kFast).
    std::uint64_t superblocks_formed = 0;
    std::uint64_t superblocks_entered = 0;
    std::uint64_t superblock_ops_retired = 0;
    std::uint64_t superblocks_invalidated = 0; // live blocks killed
  };

  DecodeCache() = default;
  DecodeCache(const DecodeCache&) = delete;
  DecodeCache& operator=(const DecodeCache&) = delete;

  /// The decoded slot for a (word-aligned) pc, decoding on first use.
  /// The returned reference stays valid until the next invalidation.
  const DecodedOp& at(std::uint32_t pc, const mem::GuestMemory& memory) {
    const std::uint32_t index = pc >> kPageShift;
    if (index != mru_index_ || mru_ == nullptr) [[unlikely]] {
      mru_ = &page_slow(index);
      mru_index_ = index;
    }
    DecodedOp& op = mru_->ops[(pc & ((1u << kPageShift) - 1)) >> 2];
    if (op.handler == kUndecodedOp) [[unlikely]] {
      ++stats_.decodes;
      decode_into(op, pc, memory);
    }
    return op;
  }

  /// One-time warm pass: decode every word of [addr, addr+length) up
  /// front (undecodable words become kInvalidOp slots, faulting only if
  /// executed — data interleaved with code must not throw here).
  void predecode_range(const mem::GuestMemory& memory, std::uint32_t addr,
                       std::uint32_t length);

  /// Inject the owning Vm's deterministic cost model (must precede any
  /// superblock formation; re-injecting drops formed blocks and clears
  /// declined marks — their plans embedded the old costs).
  void set_superblock_costs(const SuperblockCosts& costs) {
    costs_ = costs;
    for (auto& [index, page] : pages_) {
      page->sb_head.fill(kSbUnexplored);
      page->superblocks.clear();
    }
  }

  /// Superblock lookup for the fast-sb dispatch level.  Returns the live
  /// superblock anchored at (word-aligned) `pc` — forming it on first
  /// query once the run is decoded — or nullptr when the slot is not a
  /// profitable block head.  On success `*ops_out` points at the owning
  /// page's op array (`(*ops_out)[slot]` for slots begin..begin+count);
  /// both pointers stay valid until the next decode-cache structural
  /// change (page drop / cost re-injection), which never happens while
  /// the executor is inside a block — mid-block writes only flip `live`.
  const Superblock* superblock_at(std::uint32_t pc,
                                  const DecodedOp** ops_out) {
    const std::uint32_t index = pc >> kPageShift;
    if (index != mru_index_ || mru_ == nullptr) [[unlikely]] {
      mru_ = &page_slow(index);
      mru_index_ = index;
    }
    const std::uint32_t slot = (pc & ((1u << kPageShift) - 1)) >> 2;
    std::uint16_t head = mru_->sb_head[slot];
    if (head == kSbUnexplored) [[unlikely]] {
      head = form_superblock(*mru_, slot);
      if (head == kSbUnexplored) {
        return nullptr;
      }
    }
    if (head == kSbDeclined) {
      return nullptr;
    }
    *ops_out = mru_->ops.data();
    return &mru_->superblocks[head - 1u];
  }

  /// Book a completed (or bailed/faulted) superblock entry that retired
  /// `ops` instructions (executor stats path).
  void count_superblock_entry(std::uint32_t ops) noexcept {
    ++stats_.superblocks_entered;
    stats_.superblock_ops_retired += ops;
  }

  void invalidate_all();

  /// Reset every decoded slot covering [addr, addr+length) and kill every
  /// live superblock overlapping it, in one walk.  This is the body of
  /// on_memory_written without the listener-event accounting: batching
  /// callers (the DSR runtime's coalesced reseed ranges) invalidate the
  /// same slots and blocks as the equivalent per-word notifications,
  /// bit-exactly, with one traversal per range instead of one per store.
  void invalidate_range(std::uint32_t addr, std::uint32_t length);

  /// Decoded pages currently materialised (observability/tests).
  std::size_t resident_pages() const noexcept { return pages_.size(); }

  const Stats& stats() const noexcept { return stats_; }

  // mem::MemoryWriteListener
  void on_memory_written(std::uint32_t addr, std::uint32_t length) override;
  void on_memory_cleared() override { invalidate_all(); }

private:
  /// Per-slot superblock head marker: not yet explored.
  static constexpr std::uint16_t kSbUnexplored = 0;
  /// Explored and found unprofitable (run shorter than kMinSuperblockOps
  /// for a reason other than hitting an undecoded slot).
  static constexpr std::uint16_t kSbDeclined = 0xffff;

  struct Page {
    std::array<DecodedOp, kOpsPerPage> ops;
    /// Per-slot superblock anchor: kSbUnexplored, kSbDeclined, or the
    /// anchored block's index in `superblocks` plus one.  A non-sentinel
    /// value always names a *live* block (kills reset the head).
    std::array<std::uint16_t, kOpsPerPage> sb_head;
    std::vector<Superblock> superblocks;
    Page() { reset(); }
    void reset() {
      for (DecodedOp& op : ops) {
        op = DecodedOp{kUndecodedOp, 0, 0, 0, 0};
      }
      sb_head.fill(kSbUnexplored);
      superblocks.clear();
    }
  };

  Page& page_slow(std::uint32_t index);
  static void decode_into(DecodedOp& op, std::uint32_t pc,
                          const mem::GuestMemory& memory);

  /// Walk the decoded run starting at `slot`, fusing while fusable.
  /// Returns the new sb_head value for the slot: a block id+1, or
  /// kSbDeclined, or kSbUnexplored when the verdict must wait (run cut
  /// short by a not-yet-decoded slot — formation never decodes, so the
  /// `decodes` gauge stays identical across the fast cores).
  std::uint16_t form_superblock(Page& page, std::uint32_t slot);

  /// Drop dead block records and re-anchor the survivors' heads (runs only
  /// from form_superblock, never while an executor is inside a block, so
  /// moving the storage is safe).
  static void compact_superblocks(Page& page);

  std::unordered_map<std::uint32_t, std::unique_ptr<Page>> pages_;
  Page* mru_ = nullptr;
  std::uint32_t mru_index_ = 0xffff'ffff;
  Stats stats_;
  SuperblockCosts costs_;
};

} // namespace proxima::vm
