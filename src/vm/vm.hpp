// Execution engine for the mini-SPARC ISA: the stand-in for the LEON3 core.
//
// Timing model: in-order single-issue, approximating the LEON3 7-stage
// pipeline (F D R E M X W) with a base cost of one cycle per instruction
// plus explicit stalls:
//   * instruction fetch stalls from the memory hierarchy (IL1/L2/DRAM/ITLB)
//   * load-use stalls (DL1/L2/DRAM/DTLB) and write-buffer stalls
//   * multi-cycle integer multiply/divide
//   * floating point with *value-dependent* latency — the paper notes the
//     LEON3 FPU "takes a variable latency depending on the particular
//     values operated, with a jitter of up to 3 cycles" (Section III.A)
//   * taken-branch redirect penalty
//   * register-window overflow/underflow: handled as microcoded traps that
//     perform the real 16-word spill/fill memory traffic at the (possibly
//     DSR-randomised) stack addresses, plus a fixed trap overhead
//
// Simplifications vs real SPARC v8 (documented in DESIGN.md): no branch
// delay slots, microcoded window traps instead of software handlers, and
// int<->fp conversions that move between register files directly.
#pragma once

#include "isa/instruction.hpp"
#include "mem/guest_memory.hpp"
#include "mem/hierarchy.hpp"
#include "vm/decode.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

namespace proxima::vm {

class TaintState; // vm/taint.hpp
struct TaintStats;

class VmError : public std::runtime_error {
public:
  explicit VmError(const std::string& what) : std::runtime_error(what) {}
};

/// Execution-core selection.  All cores implement the identical
/// architecture and timing model and are kept bit-identical — cycles,
/// instruction counts and memory-event counters — by the differential
/// test suite (tests/vm_differential_test.cpp).
enum class VmCore : std::uint8_t {
  /// Predecoded fast-dispatch core (src/vm/fast_vm.cpp): a one-time
  /// decode pass into a flat DecodedOp cache, executed by a computed-goto
  /// loop with inlined L1/TLB hit paths.
  kFast,
  /// The original fetch-decode-execute switch interpreter
  /// (src/vm/reference_vm.cpp): the oracle the fast cores are
  /// differentially tested against.
  kReference,
  /// The fast core plus the superblock tier (second dispatch level):
  /// maximal straight-line runs of DecodedOps fused into Superblock
  /// records executed with a single pc/counter sync at exit and bulk
  /// fetch-timing accounting.  The default everywhere.  Falls back to
  /// op-at-a-time dispatch when taint tracking is on.
  kFastSb,
};

struct VmConfig {
  VmCore core = VmCore::kFastSb;
  std::uint32_t nwindows = 8; // LEON3: 8 register windows
  std::uint32_t branch_taken_penalty = 1;
  std::uint32_t load_use_cycles = 1; // extra M-stage occupancy for loads
  std::uint32_t mul_cycles = 4;
  std::uint32_t div_cycles = 16;
  std::uint32_t fp_add_cycles = 4;
  std::uint32_t fp_mul_cycles = 4;
  std::uint32_t fp_div_cycles = 16;
  std::uint32_t fp_sqrt_cycles = 24;
  std::uint32_t fp_jitter_max = 3; // paper: up to 3 cycles, value-dependent
  std::uint32_t trap_cycles = 8;   // window spill/fill entry/exit overhead
  std::uint32_t ipoint_cycles = 2; // timestamp store to the uncached bank
  std::uint32_t flush_cycles = 2;
  std::uint64_t max_instructions = 2'000'000'000ULL;
  /// Dynamic taint tracking (vm/taint.hpp): shadow bit per register and
  /// per guest-memory word, maintained identically by both cores.  Purely
  /// observational — cycles, counters and architectural state are
  /// untouched, so times digests are identical with taint on or off.
  bool taint = false;
};

struct RunResult {
  enum class Stop : std::uint8_t { kHalt, kInstructionLimit, kCycleBudget };
  Stop stop = Stop::kHalt;
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
};

/// Integer condition codes (set by addcc/subcc/orcc).
struct ConditionCodes {
  bool n = false, z = false, v = false, c = false;
};

/// FP comparison outcome (set by fcmpd).
enum class FpCondition : std::uint8_t { kEqual, kLess, kGreater, kUnordered };

class Vm {
public:
  using IpointSink = std::function<void(std::uint32_t id, std::uint64_t cycles)>;
  /// Handler for kTrapReloc: receives the function id and returns the cycle
  /// cost of the (lazy) relocation work, charged to the running program.
  using RelocTrapSink = std::function<std::uint64_t(std::uint32_t id)>;
  /// Handler fired when taint tracking detects a sink store (a tainted
  /// value written into an observable range): receives the store address
  /// and returns a cycle cost charged to the running program — the
  /// kDsrOnDemand arm's reseed trigger.  Fired from the shared taint
  /// transfer function, at most once per retired instruction (the first
  /// sink word of a double/FP store), identically on every core.  Requires
  /// VmConfig::taint.
  using SinkStoreSink = std::function<std::uint64_t(std::uint32_t addr)>;

  Vm(mem::GuestMemory& memory, mem::MemoryHierarchy& hierarchy,
     VmConfig config = {});
  ~Vm();

  // The fast core registers its decode cache as a guest-memory write
  // listener; copying would double-register it.
  Vm(const Vm&) = delete;
  Vm& operator=(const Vm&) = delete;

  /// Reset architectural state and start executing at `entry_pc` with the
  /// stack top at `stack_top` (16-byte aligned recommended).  Cycle and
  /// instruction counters restart; the memory hierarchy is left untouched
  /// (flush it separately, as the RTOS does at partition start).
  void reset(std::uint32_t entry_pc, std::uint32_t stack_top);

  /// Run until HALT, the instruction limit, or (when non-zero) the given
  /// absolute cycle budget — the hypervisor's temporal-isolation fence.
  RunResult run(std::uint64_t cycle_budget = 0);

  /// Execute a single instruction (test hook; always the reference path —
  /// both cores share the same architectural state, so stepping and
  /// running interleave freely).
  void step();

  /// Warm the fast core's decode cache over [addr, addr+length) — the
  /// one-time predecode pass over a loaded image.  No-op on the reference
  /// core; purely a warm-up, never required for correctness (the cache
  /// decodes on demand and self-invalidates on memory writes).
  void predecode(std::uint32_t addr, std::uint32_t length);

  bool halted() const noexcept { return halted_; }
  std::uint32_t pc() const noexcept { return pc_; }
  std::uint64_t cycles() const noexcept { return cycles_; }
  std::uint64_t instructions() const noexcept { return instructions_; }

  /// Visible integer register (through the current window).
  std::uint32_t reg(std::uint8_t index) const;
  void set_reg(std::uint8_t index, std::uint32_t value);
  double freg(std::uint8_t index) const;
  void set_freg(std::uint8_t index, double value);
  const ConditionCodes& icc() const noexcept { return icc_; }
  FpCondition fcc() const noexcept { return fcc_; }

  /// Nesting depth of register-window frames currently resident.
  std::uint32_t resident_windows() const noexcept { return resident_; }

  void set_ipoint_sink(IpointSink sink) { ipoint_sink_ = std::move(sink); }
  void set_reloc_trap_sink(RelocTrapSink sink) {
    reloc_trap_sink_ = std::move(sink);
  }
  void set_sink_store_sink(SinkStoreSink sink) {
    sink_store_sink_ = std::move(sink);
  }

  /// Instruction-mix telemetry hook: when non-null, both cores increment
  /// `counters[opcode]` once per retired instruction.  The caller owns the
  /// array, which must have at least isa::Opcode::kOpcodeCount slots and
  /// outlive the Vm (or a later set_mix_counters(nullptr)).  Null (the
  /// default) disables the mix entirely — the fast dispatch loop hoists
  /// the pointer into a local, so when metrics are off the hot path pays
  /// one never-taken branch on a register.  Purely observational: no
  /// cycle, instruction-count or architectural effect.
  void set_mix_counters(std::uint64_t* counters) noexcept { mix_ = counters; }

  /// Decode-cache activity counters; all-zero on the reference core.
  DecodeCache::Stats decode_stats() const {
    return decode_ ? decode_->stats() : DecodeCache::Stats{};
  }

  // ---- dynamic taint tracking (allocated when VmConfig::taint is set;
  // every call below is a cheap no-op when it is off) ----

  /// Declare a source range: loads from it produce layout-derived values
  /// (the DSR function-table and stack-offset tables).
  void taint_add_source_range(std::uint32_t base, std::uint32_t length);
  /// Declare an observable sink range: storing a tainted value into it is
  /// a confirmed address leak.
  void taint_add_sink_range(std::uint32_t base, std::uint32_t length);
  /// Drop declared ranges (static re-randomisation moves the image).
  void taint_clear_ranges();
  /// Clear register and memory shadows at the start of a measured run so
  /// per-run leak metrics are a pure function of that run.
  void taint_new_run();
  /// Cumulative taint event counters (zeroes when taint is off).
  TaintStats taint_stats() const;
  /// Layout bits currently exposed in sink ranges (32 per tainted word).
  std::uint64_t taint_sink_bits() const;
  TaintState* taint_state() noexcept { return taint_.get(); }
  const TaintState* taint_state() const noexcept { return taint_.get(); }

  const VmConfig& config() const noexcept { return config_; }

private:
  std::uint32_t& visible(std::uint8_t index);
  std::uint32_t visible_value(std::uint8_t index) const;

  RunResult run_reference(std::uint64_t cycle_budget);
  RunResult run_fast(std::uint64_t cycle_budget);

  void execute(const isa::Instruction& instr);
  void taint_execute(const isa::Instruction& instr);
  void taint_spill_oldest_window();
  void taint_fill_window(std::uint32_t window);
  void do_save(std::uint8_t rd, std::uint32_t value);
  void do_restore(const isa::Instruction& instr);
  void spill_oldest_window();
  void fill_window(std::uint32_t window);
  std::uint32_t fp_extra_cycles(isa::Opcode op, double a, double b) const;
  void take_branch(std::int32_t disp_words);

  [[noreturn]] void fault(const std::string& what) const;

  mem::GuestMemory& memory_;
  mem::MemoryHierarchy& hierarchy_;
  VmConfig config_;

  std::vector<std::uint32_t> globals_;  // 8
  std::vector<std::uint32_t> windowed_; // nwindows * 16 (outs+locals slices)
  std::vector<double> fregs_;           // 16
  std::uint32_t cwp_ = 0;
  std::uint32_t resident_ = 1;
  ConditionCodes icc_;
  FpCondition fcc_ = FpCondition::kEqual;

  std::uint32_t pc_ = 0;
  std::uint64_t cycles_ = 0;
  std::uint64_t instructions_ = 0;
  bool halted_ = true;
  IpointSink ipoint_sink_;
  RelocTrapSink reloc_trap_sink_;
  SinkStoreSink sink_store_sink_;
  std::uint64_t* mix_ = nullptr;        // per-opcode counters, off by default
  std::unique_ptr<DecodeCache> decode_; // fast cores only
  std::unique_ptr<TaintState> taint_;   // only when config.taint is set
};

} // namespace proxima::vm
