// Dynamic taint-tracking state for the address-leak analyzer.
//
// One shadow bit per visible integer register, per FP register, and per
// guest-memory *word* tracks whether a value is layout-derived: produced
// from the program counter (kCall/kJmpl return addresses) or loaded from a
// declared source range (the DSR function/stack-offset tables, whose
// contents are exactly the randomised layout).  Both execution cores drive
// the same transfer function (Vm::taint_execute in taint_vm.cpp), so the
// reference core doubles as the differential oracle for the fast core's
// taint propagation.  Sinks are scenario-declared "observable" output
// ranges; a store of a tainted value into a sink is a confirmed leak.
//
// The lattice is the two-point chain {clean, layout-derived}: joins are
// boolean OR, so propagation is monotone and the shadow state is a pure
// function of the executed instruction stream.  Tracking is purely
// observational — no cycle, counter or architectural effect — and costs
// nothing when off (the fast core hoists the TaintState pointer exactly
// like the instruction-mix hook).
#pragma once

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace proxima::vm {

/// Half-open guest address range [base, base + length).
struct TaintRange {
  std::uint32_t base = 0;
  std::uint32_t length = 0;
};

/// Cumulative event counters; the campaign runner snapshots them around
/// the measured window to publish per-run `leak.*` deltas.
struct TaintStats {
  std::uint64_t pc_taints = 0;      // kCall/kJmpl return-address writes
  std::uint64_t source_loads = 0;   // loads that hit a declared source range
  std::uint64_t tainted_stores = 0; // stores of a tainted value, anywhere
  std::uint64_t sink_stores = 0;    // ... into a declared observable range
};

class TaintState {
public:
  explicit TaintState(std::uint32_t nwindows)
      : nwindows_(nwindows),
        windowed_(static_cast<std::size_t>(nwindows) * 16, 0) {}

  void add_source_range(std::uint32_t base, std::uint32_t length) {
    if (length != 0) {
      sources_.push_back(TaintRange{base, length});
    }
  }
  void add_sink_range(std::uint32_t base, std::uint32_t length) {
    if (length != 0) {
      sinks_.push_back(TaintRange{base, length});
    }
  }
  void clear_ranges() {
    sources_.clear();
    sinks_.clear();
  }

  bool in_source(std::uint32_t addr) const { return in(sources_, addr); }
  bool in_sink(std::uint32_t addr) const { return in(sinks_, addr); }

  /// Drop register shadows (matches Vm::reset zeroing the register file).
  void clear_registers() {
    globals_.fill(0);
    std::fill(windowed_.begin(), windowed_.end(), 0);
    fregs_.fill(0);
  }
  /// Drop the guest-memory shadow; the runner calls this at the start of
  /// every run so per-run leak metrics are a pure function of that run.
  void clear_memory() { pages_.clear(); }

  // Visible-register shadow access; the window arithmetic mirrors
  // Vm::visible exactly (%g0 reads clean, writes are discarded).
  bool reg(std::uint8_t index, std::uint32_t cwp) const {
    if (index == 0) {
      return false;
    }
    return const_cast<TaintState*>(this)->slot(index, cwp) != 0;
  }
  void set_reg(std::uint8_t index, std::uint32_t cwp, bool tainted) {
    if (index == 0) {
      return;
    }
    slot(index, cwp) = tainted ? 1 : 0;
  }
  bool freg(std::uint8_t index) const {
    return index < fregs_.size() && fregs_[index] != 0;
  }
  void set_freg(std::uint8_t index, bool tainted) {
    if (index < fregs_.size()) { // out-of-range faults in execute()
      fregs_[index] = tainted ? 1 : 0;
    }
  }

  // Physical windowed-slot access for the spill/fill mirror.
  bool windowed_slot(std::size_t slot) const { return windowed_[slot] != 0; }
  void set_windowed_slot(std::size_t slot, bool tainted) {
    windowed_[slot] = tainted ? 1 : 0;
  }

  /// Shadow of the aligned word containing `addr`.
  bool mem_word(std::uint32_t addr) const {
    const auto it = pages_.find(addr >> kPageShift);
    return it != pages_.end() && it->second[word_index(addr)] != 0;
  }
  void set_mem_word(std::uint32_t addr, bool tainted) {
    if (tainted) {
      pages_[addr >> kPageShift][word_index(addr)] = 1;
    } else {
      const auto it = pages_.find(addr >> kPageShift);
      if (it != pages_.end()) {
        it->second[word_index(addr)] = 0;
      }
    }
  }

  TaintStats& stats() { return stats_; }
  const TaintStats& stats() const { return stats_; }

  /// Layout information currently exposed in the observable ranges:
  /// 32 bits per distinct tainted sink word.
  std::uint64_t sink_tainted_bits() const {
    std::uint64_t bits = 0;
    for (const TaintRange& range : sinks_) {
      const std::uint32_t first = range.base & ~3U;
      for (std::uint32_t addr = first; addr < range.base + range.length;
           addr += 4) {
        if (mem_word(addr)) {
          bits += 32;
        }
      }
    }
    return bits;
  }

private:
  static constexpr std::uint32_t kPageShift = 12; // match GuestMemory pages
  static constexpr std::size_t kWordsPerPage = 1U << (kPageShift - 2);

  static std::size_t word_index(std::uint32_t addr) {
    return (addr & ((1U << kPageShift) - 1)) >> 2;
  }
  static bool in(const std::vector<TaintRange>& ranges, std::uint32_t addr) {
    for (const TaintRange& r : ranges) {
      if (addr - r.base < r.length) {
        return true;
      }
    }
    return false;
  }

  std::uint8_t& slot(std::uint8_t index, std::uint32_t cwp) {
    const std::uint32_t n = nwindows_;
    if (index < 8) {
      return globals_[index];
    }
    if (index < 16) { // outs of cwp
      return windowed_[(cwp * 16 + (index - 8U)) % (n * 16)];
    }
    if (index < 24) { // locals of cwp
      return windowed_[(cwp * 16 + 8U + (index - 16U)) % (n * 16)];
    }
    // ins of cwp == outs of cwp+1
    return windowed_[(((cwp + 1) % n) * 16 + (index - 24U)) % (n * 16)];
  }

  std::uint32_t nwindows_;
  std::array<std::uint8_t, 8> globals_{};
  std::vector<std::uint8_t> windowed_; // nwindows * 16, matches Vm layout
  std::array<std::uint8_t, 16> fregs_{};
  std::vector<TaintRange> sources_;
  std::vector<TaintRange> sinks_;
  std::unordered_map<std::uint32_t, std::array<std::uint8_t, kWordsPerPage>>
      pages_;
  TaintStats stats_;
};

} // namespace proxima::vm
