// The partitioned platform of the case study: the shared core and memory
// hierarchy under the cyclic-schedule hypervisor, with named partitions
// registered once and a resettable schedule.
//
// One platform instance serves many independent measured runs: a
// measurement campaign reboots/reseeds the partition apps, calls
// `reset_schedule()`, and replays the same cyclic schedule from a fresh
// timeline — which is what lets `casestudy::CampaignRunner` own a
// PartitionedPlatform per worker and keep every run a pure function of its
// run index (the engine's sharding contract).
#pragma once

#include "rtos/hypervisor.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace proxima::rtos {

class PartitionedPlatform {
public:
  /// The core and hierarchy are shared with the owner (the campaign runner
  /// builds and loads the partition images into the same guest memory the
  /// core executes from); the hypervisor is owned here.
  PartitionedPlatform(vm::Vm& cpu, mem::MemoryHierarchy& hierarchy,
                      HypervisorConfig config = {});

  /// Register a partition (see Hypervisor::add_partition; same schedule
  /// validation, including the overcommit check).  The app must outlive
  /// the platform.  Registration order is preserved in `partition_names`.
  void add_partition(const PartitionConfig& config, PartitionApp& app);

  /// Rewind the cyclic schedule to frame 0 / cycle 0 for the next
  /// independent measured run.
  void reset_schedule() noexcept { hypervisor_.reset_schedule(); }

  std::vector<ActivationRecord> run_frames(std::uint64_t frames) {
    return hypervisor_.run_frames(frames);
  }

  std::uint64_t violations() const noexcept {
    return hypervisor_.violations();
  }

  /// Forwarded to Hypervisor::set_activation_hook: fired at every granted
  /// partition activation (the kDsrOnDemand reseed point).
  void set_activation_hook(std::function<void()> hook) {
    hypervisor_.set_activation_hook(std::move(hook));
  }

  /// Registered partition names, in registration order (the stable order
  /// per-partition reports are rendered in).
  const std::vector<std::string>& partition_names() const noexcept {
    return names_;
  }

  const Hypervisor& hypervisor() const noexcept { return hypervisor_; }

private:
  Hypervisor hypervisor_;
  std::vector<std::string> names_;
};

} // namespace proxima::rtos
