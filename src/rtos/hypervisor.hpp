// PikeOS-Native-style partitioned hypervisor model (Section IV).
//
// The case study runs two self-contained applications in separate
// partitions "to ensure spatial and temporal isolation": a high-criticality
// control task invoked every 1 s and a low-criticality image-processing
// task every 100 ms.  The paper relies on exactly four hypervisor
// behaviours, all modelled here:
//   * a static cyclic schedule of partition activations,
//   * automatic instruction/data cache flushing at partition start ("to
//     ensure that in each period the partition executions start with the
//     same initial hardware state"),
//   * no preemption during a partition's execution (activations run to
//     completion within a budget, enforced by a cycle fence),
//   * software partition reboot between measurement runs ("to guarantee
//     that each execution starts with a different memory layout").
#pragma once

#include "mem/hierarchy.hpp"
#include "vm/vm.hpp"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace proxima::rtos {

enum class Criticality : std::uint8_t { kHigh, kLow };

/// A partitioned application, as the hypervisor sees it.
class PartitionApp {
public:
  virtual ~PartitionApp() = default;

  /// Entry point for the next activation.  With DSR this changes at every
  /// reboot (the entry function moves).
  virtual std::uint32_t entry_address() = 0;
  virtual std::uint32_t stack_top() = 0;

  /// Called before each activation (e.g. to stage fresh input vectors).
  virtual void before_activation(std::uint64_t activation_index) {
    (void)activation_index;
  }

  /// Software partition reboot: reload state / re-randomise the layout.
  virtual void reboot() {}
};

/// What the partition-start cache flush covers.  PikeOS flushes the
/// instruction and data (L1) caches; the write-back L2 keeps its contents.
/// kAll is available for experiments needing a fully cold platform.
enum class FlushScope : std::uint8_t { kNone, kL1sAndTlbs, kAll };

struct PartitionConfig {
  std::string name;
  std::uint32_t period_ms = 100; // activation period (multiple of the frame)
  /// Phase of the first activation within the period (multiple of the
  /// minor frame, < period).  Hypervisor campaigns place the measured
  /// partition at the *end* of its period so the guests' interference
  /// precedes the measured activation.
  std::uint32_t offset_ms = 0;
  std::uint32_t budget_ms = 0; // 0: the whole minor frame
  Criticality criticality = Criticality::kLow;
  FlushScope flush_on_start = FlushScope::kL1sAndTlbs;
  /// Measurement protocol: reboot the partition after every activation so
  /// each run starts with a fresh random layout (Section IV).
  bool reboot_after_each_activation = false;
};

struct ActivationRecord {
  std::string partition;
  std::uint64_t frame_index = 0;
  std::uint64_t activation_index = 0; // per-partition counter
  std::uint64_t start_cycle = 0;      // global timeline
  /// Cycles the schedule actually granted: clamped to the budget fence, so
  /// per-partition MOET/pWCET never credits time the schedule denied.
  std::uint64_t cycles_used = 0;
  /// Hit the budget fence (temporal violation).  A slot whose frame was
  /// already fully consumed by earlier partitions is recorded as an
  /// overrun with cycles_used == 0 — the activation never started.
  bool overran = false;
  bool halted = true;
};

struct HypervisorConfig {
  std::uint32_t minor_frame_ms = 100;
  /// LEON3-class clock: cycles per millisecond (50 MHz -> 50000).
  std::uint64_t cycles_per_ms = 50000;
};

/// Single-core time-partitioned executive.
class Hypervisor {
public:
  Hypervisor(vm::Vm& cpu, mem::MemoryHierarchy& hierarchy,
             HypervisorConfig config = {});

  /// Register a partition.  Periods must be non-zero multiples of the
  /// minor frame, offsets multiples of the frame below the period.
  /// High-criticality partitions are activated first within a frame.
  /// Throws std::invalid_argument when the explicit budgets of partitions
  /// that share any minor frame of the hyperperiod exceed the frame — an
  /// overcommitted schedule would silently eat the next partition's time.
  void add_partition(const PartitionConfig& config, PartitionApp& app);

  /// Run `frames` minor frames of the cyclic schedule and return every
  /// activation record in execution order.
  std::vector<ActivationRecord> run_frames(std::uint64_t frames);

  /// Rewind the cyclic schedule to frame 0 / cycle 0 and zero the
  /// per-partition activation counters and the violation count.  A
  /// measurement campaign replays the same schedule from a fresh timeline
  /// for every measured run.
  void reset_schedule() noexcept;

  /// Temporal-isolation violations observed so far (budget overruns).
  std::uint64_t violations() const noexcept { return violations_; }

  /// Hook fired once per *granted* activation, before the partition-start
  /// flush and `before_activation` — i.e. at every partition switch the
  /// schedule actually performs (denied zero-budget activations do not
  /// fire it).  The kDsrOnDemand arm reseeds the measured layout here; the
  /// hook's own work is host-side and charged to no partition budget.
  void set_activation_hook(std::function<void()> hook) {
    activation_hook_ = std::move(hook);
  }

  const HypervisorConfig& config() const noexcept { return config_; }

private:
  struct Slot {
    PartitionConfig config;
    PartitionApp* app = nullptr;
    std::uint64_t activations = 0;
  };

  vm::Vm& cpu_;
  mem::MemoryHierarchy& hierarchy_;
  HypervisorConfig config_;
  std::vector<Slot> slots_;
  std::uint64_t frame_counter_ = 0;
  std::uint64_t timeline_cycles_ = 0;
  std::uint64_t violations_ = 0;
  std::function<void()> activation_hook_;
};

} // namespace proxima::rtos
