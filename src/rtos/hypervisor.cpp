#include "hypervisor.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace proxima::rtos {

namespace {

/// Frames of the schedule's hyperperiod (lcm of the per-partition period
/// frames), capped so pathological period sets cannot make registration
/// quadratic.  Above the cap the overcommit check falls back to the
/// conservative all-partitions sum.
constexpr std::uint64_t kHyperperiodCap = 1 << 16;

std::uint64_t hyperperiod_frames(const std::vector<std::uint64_t>& periods) {
  std::uint64_t lcm = 1;
  for (const std::uint64_t period : periods) {
    lcm = std::lcm(lcm, period);
    if (lcm > kHyperperiodCap) {
      return 0; // caller falls back to the conservative check
    }
  }
  return lcm;
}

} // namespace

Hypervisor::Hypervisor(vm::Vm& cpu, mem::MemoryHierarchy& hierarchy,
                       HypervisorConfig config)
    : cpu_(cpu), hierarchy_(hierarchy), config_(config) {
  if (config_.minor_frame_ms == 0 || config_.cycles_per_ms == 0) {
    throw std::invalid_argument("hypervisor: zero frame or clock");
  }
}

void Hypervisor::add_partition(const PartitionConfig& partition_config,
                               PartitionApp& app) {
  if (partition_config.period_ms == 0 ||
      partition_config.period_ms % config_.minor_frame_ms != 0) {
    throw std::invalid_argument(
        partition_config.name +
        ": period must be a non-zero multiple of the minor frame");
  }
  if (partition_config.offset_ms >= partition_config.period_ms ||
      partition_config.offset_ms % config_.minor_frame_ms != 0) {
    throw std::invalid_argument(
        partition_config.name +
        ": offset must be a multiple of the minor frame below the period");
  }
  if (partition_config.budget_ms > config_.minor_frame_ms) {
    throw std::invalid_argument(partition_config.name +
                                ": budget exceeds the minor frame");
  }

  // Overcommit: the explicit budgets of partitions sharing a minor frame
  // must fit it together, not just individually — otherwise the second
  // partition's fence silently eats the next partition's (or frame's)
  // time.  Zero budgets mean "whatever is left" and are excluded; a
  // consumed frame turns them into recorded violations at run time.
  std::vector<std::uint64_t> periods;
  periods.reserve(slots_.size() + 1);
  for (const Slot& slot : slots_) {
    periods.push_back(slot.config.period_ms / config_.minor_frame_ms);
  }
  periods.push_back(partition_config.period_ms / config_.minor_frame_ms);
  const std::uint64_t hyperperiod = hyperperiod_frames(periods);
  const auto active_in = [this](const PartitionConfig& config,
                                std::uint64_t frame) {
    return frame % (config.period_ms / config_.minor_frame_ms) ==
           config.offset_ms / config_.minor_frame_ms;
  };
  for (std::uint64_t frame = 0; frame < std::max<std::uint64_t>(hyperperiod, 1);
       ++frame) {
    std::uint64_t budget_sum =
        active_in(partition_config, frame) || hyperperiod == 0
            ? partition_config.budget_ms
            : 0;
    for (const Slot& slot : slots_) {
      if (hyperperiod == 0 || active_in(slot.config, frame)) {
        budget_sum += slot.config.budget_ms;
      }
    }
    if (budget_sum > config_.minor_frame_ms) {
      throw std::invalid_argument(
          partition_config.name +
          ": schedule overcommitted — partition budgets sharing a minor "
          "frame sum to " +
          std::to_string(budget_sum) + " ms > " +
          std::to_string(config_.minor_frame_ms) + " ms frame");
    }
    if (hyperperiod == 0) {
      break; // conservative all-partitions sum checked once
    }
  }

  slots_.push_back(Slot{partition_config, &app, 0});
  // High criticality first within a frame (the control task must never
  // wait behind the image-processing task).
  std::stable_sort(slots_.begin(), slots_.end(),
                   [](const Slot& a, const Slot& b) {
                     return a.config.criticality < b.config.criticality;
                   });
}

std::vector<ActivationRecord> Hypervisor::run_frames(std::uint64_t frames) {
  std::vector<ActivationRecord> records;
  for (std::uint64_t f = 0; f < frames; ++f, ++frame_counter_) {
    const std::uint64_t frame_start = timeline_cycles_;
    const std::uint64_t frame_cycles =
        static_cast<std::uint64_t>(config_.minor_frame_ms) *
        config_.cycles_per_ms;
    std::uint64_t used_in_frame = 0;

    for (Slot& slot : slots_) {
      const std::uint64_t period_frames =
          slot.config.period_ms / config_.minor_frame_ms;
      const std::uint64_t offset_frames =
          slot.config.offset_ms / config_.minor_frame_ms;
      if (frame_counter_ % period_frames != offset_frames) {
        continue;
      }

      if (used_in_frame > frame_cycles) {
        // Accounting slip: the fence clamp below makes this unreachable,
        // and an unsigned wrap here would hand the next partition ~2^64
        // cycles.  Fail loudly instead.
        throw std::logic_error("hypervisor: frame accounting underflow");
      }
      const std::uint64_t remaining = frame_cycles - used_in_frame;
      const std::uint64_t budget_cycles = std::min(
          slot.config.budget_ms != 0
              ? static_cast<std::uint64_t>(slot.config.budget_ms) *
                    config_.cycles_per_ms
              : remaining,
          remaining);
      if (budget_cycles == 0) {
        // The frame is already fully consumed.  cpu_.run(0) would mean
        // "no fence" to the core; record a temporal violation for the
        // denied activation instead — the activation never starts (no
        // flush, no before_activation, no reboot).
        ActivationRecord denied;
        denied.partition = slot.config.name;
        denied.frame_index = frame_counter_;
        denied.activation_index = slot.activations;
        denied.start_cycle = frame_start + used_in_frame;
        denied.cycles_used = 0;
        denied.overran = true;
        denied.halted = false;
        ++violations_;
        records.push_back(std::move(denied));
        ++slot.activations;
        continue;
      }

      if (activation_hook_) {
        activation_hook_(); // granted activations only; host-side cost
      }

      switch (slot.config.flush_on_start) {
      case FlushScope::kNone:
        break;
      case FlushScope::kL1sAndTlbs:
        hierarchy_.flush_l1s();
        break;
      case FlushScope::kAll:
        hierarchy_.flush_all();
        break;
      }
      slot.app->before_activation(slot.activations);

      cpu_.reset(slot.app->entry_address(), slot.app->stack_top());
      const vm::RunResult result = cpu_.run(budget_cycles);

      ActivationRecord record;
      record.partition = slot.config.name;
      record.frame_index = frame_counter_;
      record.activation_index = slot.activations;
      record.start_cycle = frame_start + used_in_frame;
      // The fence cuts the activation off at the budget: never credit the
      // partition with cycles the schedule didn't grant (the core may
      // finish the in-flight instruction past the fence).
      record.cycles_used = std::min(result.cycles, budget_cycles);
      record.halted = result.stop == vm::RunResult::Stop::kHalt;
      record.overran = result.stop == vm::RunResult::Stop::kCycleBudget;
      if (record.overran) {
        ++violations_; // health monitor: temporal isolation enforced
      }
      records.push_back(record);

      used_in_frame += record.cycles_used;
      ++slot.activations;

      if (slot.config.reboot_after_each_activation) {
        slot.app->reboot();
      }
    }
    timeline_cycles_ = frame_start + frame_cycles;
  }
  return records;
}

void Hypervisor::reset_schedule() noexcept {
  frame_counter_ = 0;
  timeline_cycles_ = 0;
  violations_ = 0;
  for (Slot& slot : slots_) {
    slot.activations = 0;
  }
}

} // namespace proxima::rtos
