#include "hypervisor.hpp"

#include <algorithm>
#include <stdexcept>

namespace proxima::rtos {

Hypervisor::Hypervisor(vm::Vm& cpu, mem::MemoryHierarchy& hierarchy,
                       HypervisorConfig config)
    : cpu_(cpu), hierarchy_(hierarchy), config_(config) {
  if (config_.minor_frame_ms == 0 || config_.cycles_per_ms == 0) {
    throw std::invalid_argument("hypervisor: zero frame or clock");
  }
}

void Hypervisor::add_partition(const PartitionConfig& partition_config,
                               PartitionApp& app) {
  if (partition_config.period_ms == 0 ||
      partition_config.period_ms % config_.minor_frame_ms != 0) {
    throw std::invalid_argument(
        partition_config.name +
        ": period must be a non-zero multiple of the minor frame");
  }
  if (partition_config.budget_ms > config_.minor_frame_ms) {
    throw std::invalid_argument(partition_config.name +
                                ": budget exceeds the minor frame");
  }
  slots_.push_back(Slot{partition_config, &app, 0});
  // High criticality first within a frame (the control task must never
  // wait behind the image-processing task).
  std::stable_sort(slots_.begin(), slots_.end(),
                   [](const Slot& a, const Slot& b) {
                     return a.config.criticality < b.config.criticality;
                   });
}

std::vector<ActivationRecord> Hypervisor::run_frames(std::uint64_t frames) {
  std::vector<ActivationRecord> records;
  for (std::uint64_t f = 0; f < frames; ++f, ++frame_counter_) {
    const std::uint64_t frame_start = timeline_cycles_;
    const std::uint64_t frame_cycles =
        static_cast<std::uint64_t>(config_.minor_frame_ms) *
        config_.cycles_per_ms;
    std::uint64_t used_in_frame = 0;

    for (Slot& slot : slots_) {
      const std::uint64_t period_frames =
          slot.config.period_ms / config_.minor_frame_ms;
      if (frame_counter_ % period_frames != 0) {
        continue;
      }

      switch (slot.config.flush_on_start) {
      case FlushScope::kNone:
        break;
      case FlushScope::kL1sAndTlbs:
        hierarchy_.flush_l1s();
        break;
      case FlushScope::kAll:
        hierarchy_.flush_all();
        break;
      }
      slot.app->before_activation(slot.activations);

      const std::uint64_t budget_cycles =
          slot.config.budget_ms != 0
              ? static_cast<std::uint64_t>(slot.config.budget_ms) *
                    config_.cycles_per_ms
              : frame_cycles - used_in_frame;

      cpu_.reset(slot.app->entry_address(), slot.app->stack_top());
      const vm::RunResult result = cpu_.run(budget_cycles);

      ActivationRecord record;
      record.partition = slot.config.name;
      record.frame_index = frame_counter_;
      record.activation_index = slot.activations;
      record.start_cycle = frame_start + used_in_frame;
      record.cycles_used = result.cycles;
      record.halted = result.stop == vm::RunResult::Stop::kHalt;
      record.overran = result.stop == vm::RunResult::Stop::kCycleBudget;
      if (record.overran) {
        ++violations_; // health monitor: temporal isolation enforced
      }
      records.push_back(record);

      used_in_frame += std::min(result.cycles, budget_cycles);
      ++slot.activations;

      if (slot.config.reboot_after_each_activation) {
        slot.app->reboot();
      }
    }
    timeline_cycles_ = frame_start + frame_cycles;
  }
  return records;
}

} // namespace proxima::rtos
