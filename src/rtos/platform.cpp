#include "platform.hpp"

namespace proxima::rtos {

PartitionedPlatform::PartitionedPlatform(vm::Vm& cpu,
                                         mem::MemoryHierarchy& hierarchy,
                                         HypervisorConfig config)
    : hypervisor_(cpu, hierarchy, config) {}

void PartitionedPlatform::add_partition(const PartitionConfig& config,
                                        PartitionApp& app) {
  hypervisor_.add_partition(config, app); // validates; throws on bad config
  names_.push_back(config.name);
}

} // namespace proxima::rtos
