// SplitMix64: host-side seed expander (Steele, Lea & Flood, OOPSLA 2014).
//
// Not part of the paper's target software stack; used only to derive
// well-mixed initial states for the target generators (MWC, LFSR) and for
// host-side workload synthesis.
#pragma once

#include <cstdint>

namespace proxima::rng {

class SplitMix64 {
public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    state_ += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

private:
  std::uint64_t state_;
};

} // namespace proxima::rng
