#include "mwc.hpp"

#include "splitmix.hpp"

namespace proxima::rng {

void Mwc::seed(std::uint64_t value) {
  // Run the seed through SplitMix64 so that nearby integer seeds (0, 1, 2,
  // ... as used by measurement campaigns) produce uncorrelated states.
  SplitMix64 mixer(value);
  // An MWC stream degenerates if its 16-bit "value" half is zero together
  // with a zero carry; avoid zero halves entirely.
  auto nonzero_half = [&mixer]() {
    std::uint32_t half = 0;
    while ((half & 0xffffU) == 0 || (half >> 16) == 0) {
      half = static_cast<std::uint32_t>(mixer.next());
    }
    return half;
  };
  z_ = nonzero_half();
  w_ = nonzero_half();
}

} // namespace proxima::rng
