// Galois Linear Feedback Shift Register generator.
//
// Agirre et al. [3] qualify an LFSR alongside MWC for probabilistic timing
// analysis; the paper notes the LFSR suits hardware implementations while
// MWC is the simplest in software.  We keep the LFSR so the ablation bench
// (A4) can show that the choice of qualified generator does not change the
// MBPTA outcome.
#pragma once

#include "random_source.hpp"

namespace proxima::rng {

/// 32-bit Galois LFSR with maximal-length feedback polynomial
/// x^32 + x^22 + x^2 + x + 1 (taps 32, 22, 2, 1), period 2^32 - 1.
///
/// A raw LFSR emits one bit per step; this wrapper clocks the register 32
/// times per output word so consecutive outputs do not overlap, which is the
/// standard construction used when an LFSR feeds a word-oriented consumer.
class Lfsr final : public RandomSource {
public:
  /// Feedback mask for taps {32, 22, 2, 1}: bit k set means the polynomial
  /// has an x^k term (bit 31 represents x^32 in Galois form).
  static constexpr std::uint32_t kTaps = 0x80200003U;

  explicit Lfsr(std::uint64_t seed_value = 0xace1ace1ULL) { seed(seed_value); }

  std::uint32_t next_u32() override {
    std::uint32_t out = 0;
    for (int i = 0; i < 32; ++i) {
      out = (out << 1) | step();
    }
    return out;
  }

  void seed(std::uint64_t value) override;

  std::uint32_t state() const noexcept { return state_; }

  /// Advance one bit and return it.  Exposed so tests can measure the
  /// sequence period directly.
  std::uint32_t step() noexcept {
    const std::uint32_t lsb = state_ & 1U;
    state_ >>= 1;
    if (lsb != 0) {
      state_ ^= kTaps;
    }
    return lsb;
  }

private:
  std::uint32_t state_ = 0xace1ace1U;
};

/// Reduced-width (16-bit) variant with taps {16, 15, 13, 4}.  Only used by
/// the test suite, where the full 2^16 - 1 period can be verified
/// exhaustively — evidence that the 32-bit construction is maximal too,
/// since both polynomials are published primitive trinomial/pentanomial
/// choices from the same family.
class Lfsr16 {
public:
  static constexpr std::uint16_t kTaps = 0xb400U; // taps 16, 15, 13, 4

  explicit Lfsr16(std::uint16_t seed_value = 0xace1U)
      : state_(seed_value == 0 ? 1 : seed_value) {}

  std::uint16_t step() noexcept {
    const std::uint16_t lsb = state_ & 1U;
    state_ >>= 1;
    if (lsb != 0) {
      state_ ^= kTaps;
    }
    return lsb;
  }

  std::uint16_t state() const noexcept { return state_; }

private:
  std::uint16_t state_;
};

} // namespace proxima::rng
