#include "lfsr.hpp"

#include "splitmix.hpp"

namespace proxima::rng {

void Lfsr::seed(std::uint64_t value) {
  SplitMix64 mixer(value);
  std::uint32_t s = 0;
  while (s == 0) { // the all-zero state is the LFSR's single fixed point
    s = static_cast<std::uint32_t>(mixer.next());
  }
  state_ = s;
}

} // namespace proxima::rng
