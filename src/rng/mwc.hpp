// Marsaglia Multiply-With-Carry pseudo-random number generator.
//
// This is the random source the paper selects for DSR (Section III.B.3):
// "the MWC is the simplest one to implement in software. Therefore, the
// random source used for DSR is the MWC PRNG."  The reference is
// G. Marsaglia and A. Zaman, "A new class of random number generators",
// Annals of Applied Probability 1(3), 1991 [22].
#pragma once

#include "random_source.hpp"

namespace proxima::rng {

/// Classic two-lag MWC ("concatenation" generator).
///
/// Two 16-bit multiply-with-carry streams are run in parallel and their
/// outputs concatenated into one 32-bit word:
///
///   z = 36969 * (z & 0xffff) + (z >> 16)
///   w = 18000 * (w & 0xffff) + (w >> 16)
///   out = (z << 16) + w
///
/// Period is about 2^60, which Agirre et al. [3] show to be sufficient for
/// the number of draws an MBPTA campaign performs.
class Mwc final : public RandomSource {
public:
  /// Multipliers from Marsaglia's original concatenation generator.
  static constexpr std::uint32_t kMultiplierZ = 36969;
  static constexpr std::uint32_t kMultiplierW = 18000;

  explicit Mwc(std::uint64_t seed_value = 0x9e3779b97f4a7c15ULL) {
    seed(seed_value);
  }

  std::uint32_t next_u32() override {
    z_ = kMultiplierZ * (z_ & 0xffffU) + (z_ >> 16);
    w_ = kMultiplierW * (w_ & 0xffffU) + (w_ >> 16);
    return (z_ << 16) + w_;
  }

  void seed(std::uint64_t value) override;

  /// Current internal state, exposed for checkpointing a measurement
  /// campaign (the DSR runtime persists it across partition reboots).
  std::uint32_t state_z() const noexcept { return z_; }
  std::uint32_t state_w() const noexcept { return w_; }

private:
  std::uint32_t z_ = 362436069;
  std::uint32_t w_ = 521288629;
};

} // namespace proxima::rng
