// Abstract random source used by the DSR runtime and the test harnesses.
//
// The paper (Section III.B.3) selects the Marsaglia Multiply-With-Carry
// generator as the software random source for DSR, citing [3] (Agirre et al.,
// DSD 2015) which qualifies both MWC and LFSR generators for probabilistic
// timing analysis at IEC-61508 SIL 3.  Both are implemented behind this
// interface so benches can swap them (ablation A4).
#pragma once

#include <cstdint>

namespace proxima::rng {

/// Uniform 32-bit random source.
///
/// Implementations must be deterministic for a given seed so that every
/// measurement run of an experiment can be reproduced exactly.
class RandomSource {
public:
  virtual ~RandomSource() = default;

  /// Next raw 32-bit word, uniform over [0, 2^32).
  virtual std::uint32_t next_u32() = 0;

  /// Re-seed the generator. A seed of zero must be remapped internally by
  /// implementations whose state must stay non-zero (e.g. LFSR).
  virtual void seed(std::uint64_t value) = 0;

  /// Uniform value in [0, bound). Unbiased (rejection sampling).
  /// bound == 0 returns 0.
  std::uint32_t next_below(std::uint32_t bound);

  /// Uniform double in [0, 1) built from 53 random bits.
  double next_double();

  /// Random offset in [0, range), aligned down to `alignment` bytes.
  ///
  /// This is the operation the DSR runtime performs when placing a memory
  /// object inside a cache way: the SPARC ABI requires the stack pointer to
  /// stay double-word (8-byte) aligned, so offsets are multiples of 8
  /// (Section III.B.2).
  std::uint32_t next_offset(std::uint32_t range, std::uint32_t alignment);
};

} // namespace proxima::rng
