// Inverse-transform samplers over a RandomSource.
//
// Host-side helpers used by the statistical test suite and by benches that
// validate the MBPTA machinery against distributions with known parameters
// (exponential, Gumbel, GPD).  They are not part of the target software.
#pragma once

#include "random_source.hpp"

namespace proxima::rng {

/// Exponential(rate) via inverse CDF.
double sample_exponential(RandomSource& source, double rate);

/// Gumbel(location mu, scale beta) via inverse CDF.
double sample_gumbel(RandomSource& source, double mu, double beta);

/// Generalised Pareto (location 0, scale sigma, shape xi) via inverse CDF.
double sample_gpd(RandomSource& source, double sigma, double xi);

/// Standard normal via Box-Muller (one value per call; the pair's second
/// member is discarded to keep the sampler stateless).
double sample_normal(RandomSource& source, double mean, double stddev);

/// Uniform double in [lo, hi).
double sample_uniform(RandomSource& source, double lo, double hi);

} // namespace proxima::rng
