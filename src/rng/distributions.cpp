#include "distributions.hpp"

#include <cmath>

namespace proxima::rng {

namespace {
// Uniform in (0, 1): rejects exact zero so log() stays finite.
double open_unit(RandomSource& source) {
  double u = source.next_double();
  while (u <= 0.0) {
    u = source.next_double();
  }
  return u;
}
} // namespace

double sample_exponential(RandomSource& source, double rate) {
  return -std::log(open_unit(source)) / rate;
}

double sample_gumbel(RandomSource& source, double mu, double beta) {
  return mu - beta * std::log(-std::log(open_unit(source)));
}

double sample_gpd(RandomSource& source, double sigma, double xi) {
  const double u = open_unit(source);
  if (xi == 0.0) {
    return -sigma * std::log(u);
  }
  return sigma * (std::pow(u, -xi) - 1.0) / xi;
}

double sample_normal(RandomSource& source, double mean, double stddev) {
  const double u1 = open_unit(source);
  const double u2 = source.next_double();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 6.283185307179586476925286766559 * u2;
  return mean + stddev * radius * std::cos(angle);
}

double sample_uniform(RandomSource& source, double lo, double hi) {
  return lo + (hi - lo) * source.next_double();
}

} // namespace proxima::rng
