#include "random_source.hpp"

namespace proxima::rng {

std::uint32_t RandomSource::next_below(std::uint32_t bound) {
  if (bound == 0) {
    return 0;
  }
  // Rejection sampling: draw until the value falls inside the largest
  // multiple of `bound` that fits in 32 bits, then reduce.  Expected number
  // of draws is < 2 for any bound.
  const std::uint32_t limit =
      static_cast<std::uint32_t>((std::uint64_t{1} << 32) -
                                 ((std::uint64_t{1} << 32) % bound));
  std::uint32_t value = next_u32();
  while (limit != 0 && value >= limit) {
    value = next_u32();
  }
  return value % bound;
}

double RandomSource::next_double() {
  const std::uint64_t hi = next_u32();
  const std::uint64_t lo = next_u32();
  const std::uint64_t bits53 = ((hi << 32) | lo) >> 11;
  return static_cast<double>(bits53) * (1.0 / 9007199254740992.0); // 2^-53
}

std::uint32_t RandomSource::next_offset(std::uint32_t range,
                                        std::uint32_t alignment) {
  if (alignment == 0) {
    alignment = 1;
  }
  const std::uint32_t slots = range / alignment;
  return next_below(slots) * alignment;
}

} // namespace proxima::rng
