#include "json_writer.hpp"

#include <cmath>
#include <cstdio>

namespace proxima::cli {

void JsonWriter::prefix() {
  if (pending_key_) {
    pending_key_ = false; // value attaches to its key, no separator
    return;
  }
  if (stack_.empty()) {
    return;
  }
  Level& level = stack_.back();
  if (level.has_items) {
    out_ << ',';
  }
  level.has_items = true;
  out_ << '\n' << std::string(2 * stack_.size(), ' ');
}

void JsonWriter::write_escaped(std::string_view text) {
  out_ << '"';
  for (const char c : text) {
    switch (c) {
    case '"': out_ << "\\\""; break;
    case '\\': out_ << "\\\\"; break;
    case '\n': out_ << "\\n"; break;
    case '\t': out_ << "\\t"; break;
    case '\r': out_ << "\\r"; break;
    case '\b': out_ << "\\b"; break;
    case '\f': out_ << "\\f"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        out_ << buffer;
      } else {
        out_ << c;
      }
    }
  }
  out_ << '"';
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  out_ << '{';
  stack_.push_back(Level{});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool had_items = !stack_.empty() && stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n' << std::string(2 * stack_.size(), ' ');
  }
  out_ << '}';
  if (stack_.empty()) {
    out_ << '\n';
  }
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  out_ << '[';
  stack_.push_back(Level{});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool had_items = !stack_.empty() && stack_.back().has_items;
  stack_.pop_back();
  if (had_items) {
    out_ << '\n' << std::string(2 * stack_.size(), ' ');
  }
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  prefix();
  write_escaped(name);
  out_ << ": ";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  prefix();
  write_escaped(text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  if (!std::isfinite(number)) {
    return null(); // JSON has no NaN/Inf
  }
  prefix();
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", number);
  out_ << buffer;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  prefix();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  prefix();
  out_ << number;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  prefix();
  out_ << (flag ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::null() {
  prefix();
  out_ << "null";
  return *this;
}

} // namespace proxima::cli
