// Implementation of `proxima sweep`: the scenario × seed grid through the
// campaign store.
//
// Every cell runs store-backed, so a grid cell whose (scenario, config
// fingerprint) already has a fully stored campaign re-renders without
// simulating a single run — the sweep manifest records per-cell
// stored/simulated counts and their totals, and CI asserts
// `"total_simulated_runs": 0` on the second pass over an unchanged grid.
// An interrupted sweep resumes the same way: the store serves the finished
// prefix of every cell and only the remainder executes.
//
// The rendered document (`--format json`) has the same scenario-object
// shape as `proxima report`, so the `--baseline FILE` gate can reuse the
// diff engine verbatim: drift beyond `--tolerance` exits 1, exactly like
// `proxima diff`.
#include "cli.hpp"

#include "casestudy/fingerprint.hpp"
#include "cli/exec_common.hpp"
#include "cli/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "trace/report.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace proxima::cli {

namespace {

using detail::Execution;

/// One grid cell: a scenario at one seed, executed through the store.
struct Cell {
  std::string scenario; // registry name
  std::optional<std::uint64_t> seed; // explicit --seed axis value
  Execution execution;  // execution.name is the display name (see below)
  detail::Analysed analysed;
};

/// Cell display name, and its scenario identity inside the sweep document.
/// The seed suffix keeps grid cells of one scenario apart — diff matches
/// scenarios by name, and two seeds of the same scenario are different
/// measurements, not drift.
std::string display_name(const std::string& scenario,
                         std::optional<std::uint64_t> seed) {
  return seed ? scenario + "@seed=" + std::to_string(*seed) : scenario;
}

/// The full sweep document: `{"command": "sweep", "scenarios": [...]}`
/// with report-shaped scenario objects.
void render_document(std::ostream& out, const std::vector<Cell>& cells,
                     const CampaignOptions& options) {
  JsonWriter json(out);
  json.begin_object();
  json.key("command").value("sweep");
  json.key("store").value(options.store_dir);
  json.key("scenarios").begin_array();
  for (const Cell& cell : cells) {
    json.begin_object();
    detail::write_execution_header_json(json, cell.execution, options);
    detail::write_adaptive_json(json, cell.execution);
    detail::write_times_json(json, cell.execution);
    detail::write_partitions_json(json, cell.execution, options);
    detail::write_throughput_json(json, cell.execution);
    detail::write_metrics_json(json, cell.execution);
    detail::write_analysis_json(json, cell.analysed, options.decades);
    json.key("verified_runs").value(cell.execution.result.verified_runs);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

/// The machine-readable manifest: per-cell provenance + counts, and the
/// totals CI greps (`"total_simulated_runs": 0` on a warm store).
void write_manifest(const std::string& path, const std::vector<Cell>& cells,
                    const CampaignOptions& options) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent);
  }
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) {
    throw std::runtime_error("sweep: cannot open manifest '" + path +
                             "' for writing");
  }
  std::uint64_t total_runs = 0;
  std::uint64_t total_stored = 0;
  std::uint64_t total_simulated = 0;
  JsonWriter json(file);
  json.begin_object();
  json.key("command").value("sweep-manifest");
  json.key("store").value(options.store_dir);
  json.key("cells").begin_array();
  for (const Cell& cell : cells) {
    const store::StoreStats& stats = *cell.execution.store;
    json.begin_object();
    json.key("name").value(cell.execution.name);
    json.key("scenario").value(cell.scenario);
    json.key("input_seed").value(cell.execution.config.input_seed);
    json.key("layout_seed").value(cell.execution.config.layout_seed);
    json.key("fingerprint")
        .value(casestudy::fingerprint_hex(stats.fingerprint));
    json.key("cell").value(stats.cell_path);
    json.key("runs")
        .value(std::uint64_t{cell.execution.result.times.size()});
    json.key("stored_runs").value(stats.stored_runs);
    json.key("simulated_runs").value(stats.simulated_runs);
    json.key("times_digest")
        .value(trace::times_digest_hex(cell.execution.result.times));
    json.key("metrics_digest")
        .value(obs::metrics_digest_hex(cell.execution.result.metrics));
    json.end_object();
    total_runs += cell.execution.result.times.size();
    total_stored += stats.stored_runs;
    total_simulated += stats.simulated_runs;
  }
  json.end_array();
  json.key("total_cells").value(std::uint64_t{cells.size()});
  json.key("total_runs").value(total_runs);
  json.key("total_stored_runs").value(total_stored);
  json.key("total_simulated_runs").value(total_simulated);
  json.end_object();
  file.flush();
  if (!file) {
    throw std::runtime_error("sweep: write to manifest '" + path +
                             "' failed");
  }
}

void print_text_summary(std::ostream& out, const std::vector<Cell>& cells,
                        const std::string& manifest) {
  std::uint64_t total_stored = 0;
  std::uint64_t total_simulated = 0;
  for (const Cell& cell : cells) {
    const store::StoreStats& stats = *cell.execution.store;
    total_stored += stats.stored_runs;
    total_simulated += stats.simulated_runs;
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%-40s %6zu runs (%llu stored, %llu simulated) digest %s\n",
                  cell.execution.name.c_str(),
                  cell.execution.result.times.size(),
                  static_cast<unsigned long long>(stats.stored_runs),
                  static_cast<unsigned long long>(stats.simulated_runs),
                  trace::times_digest_hex(cell.execution.result.times)
                      .c_str());
    out << line;
  }
  out << "sweep: " << cells.size() << " cell(s), " << total_stored
      << " run(s) served from the store, " << total_simulated
      << " simulated; manifest " << manifest << '\n';
}

} // namespace

int cmd_sweep(const CampaignOptions& options, const SweepOptions& sweep,
              std::ostream& out, std::ostream& err) {
  const std::vector<std::string> names = detail::selected_scenarios(options);
  std::vector<std::optional<std::uint64_t>> seed_axis;
  if (sweep.seeds.empty()) {
    seed_axis.push_back(std::nullopt); // each scenario's default seeds
  } else {
    for (const std::uint64_t seed : sweep.seeds) {
      seed_axis.emplace_back(seed);
    }
  }

  std::optional<obs::Timeline> timeline;
  if (!options.trace_out.empty()) {
    timeline.emplace();
  }

  // Execute the whole grid before emitting anything (same contract as
  // run/report: a fault on a later cell must not leave a truncated
  // document or a misleading manifest behind).
  int exit_code = 0;
  std::vector<Cell> cells;
  cells.reserve(names.size() * seed_axis.size());
  for (const std::string& name : names) {
    for (const std::optional<std::uint64_t>& seed : seed_axis) {
      CampaignOptions cell_options = options;
      if (seed) {
        cell_options.seed = *seed;
      }
      Cell cell;
      cell.scenario = name;
      cell.seed = seed;
      cell.execution = detail::execute_scenario(
          name, cell_options, timeline ? &*timeline : nullptr, err);
      cell.execution.name = display_name(name, seed);
      cell.analysed = detail::analyse_execution(cell.execution, cell_options);
      if (!cell.analysed.analysis) {
        exit_code = 1; // same contract as report: the fit could not run
      }
      cells.push_back(std::move(cell));
    }
  }
  if (timeline) {
    detail::write_trace_file(*timeline, options.trace_out);
    for (Cell& cell : cells) {
      cell.execution.config.timeline = nullptr; // the local timeline dies
    }
  }
  std::vector<const Execution*> executed;
  for (const Cell& cell : cells) {
    executed.push_back(&cell.execution);
  }
  detail::validate_partition_filter(executed, options);

  // Render once: the same bytes feed stdout (--format json) and the
  // --baseline gate, so what the gate compared is exactly what the
  // operator can save as the next baseline.
  std::ostringstream document;
  render_document(document, cells, options);

  const std::string manifest_path =
      sweep.manifest.empty()
          ? (std::filesystem::path(options.store_dir) /
             "sweep-manifest.json")
                .string()
          : sweep.manifest;
  write_manifest(manifest_path, cells, options);

  if (options.format == OutputFormat::kJson) {
    out << document.str();
  } else {
    print_text_summary(out, cells, manifest_path);
  }

  if (!sweep.baseline.empty()) {
    const JsonValue baseline = load_report_document(sweep.baseline);
    JsonValue candidate;
    try {
      candidate = JsonValue::parse(document.str());
    } catch (const JsonParseError& error) {
      // Re-reading our own document cannot legitimately fail; treat it as
      // a campaign fault rather than mis-reporting drift.
      throw std::runtime_error(std::string("sweep: internal error parsing "
                                           "rendered document: ") +
                               error.what());
    }
    // In json mode stdout carries the document, so the gate reports on
    // stderr; text mode keeps everything on stdout like `proxima diff`.
    std::ostream& gate =
        options.format == OutputFormat::kJson ? err : out;
    if (diff_drift_count(baseline, candidate, sweep.tolerance, gate) > 0) {
      exit_code = 1;
    }
  }
  return exit_code;
}

} // namespace proxima::cli
