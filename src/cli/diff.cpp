// `proxima diff <baseline.json> <candidate.json>`: the golden-number
// workflow as a CLI habit.
//
// Compares two saved `proxima run`/`proxima report`/`proxima sweep` JSON
// documents and flags every metric whose relative shift exceeds the
// tolerance: per-scenario times (n/min/mean/MOET/stddev), the times
// digest, the guest-instruction counter, per-partition rows (activations,
// cycles statistics, overruns, pWCET), and — for report/sweep documents —
// the Gumbel fit and the pWCET curve point by point.  Wall-clock fields
// (wall_seconds, minstr_per_second) are deliberately NOT compared: they
// are the only nondeterministic numbers in a report.
//
// Zero and absence are strict: a value moving onto/off zero only passes
// bit-equal (any relative tolerance would wave it through), and a metric
// present on one side only is a drift — with one documented exception,
// a BASELINE without a metrics digest (golden files that predate the
// observability registry stay clean against fresh candidates).
//
// `--format json` renders the same comparison as a machine-readable drift
// report (per-drift records plus the summary); exit codes are identical.
//
// `--against SCENARIO` replaces the baseline file with a fresh execution
// of the named registry scenario, mirroring the campaign knobs the
// candidate document records (runs, seed, frames, vm-core) and rendered
// through the same JSON sections `proxima run`/`report`/`sweep` emit — so
// the comparison below sees two documents of identical shape and the
// golden-number workflow needs no baseline file at all.
//
// Exit codes: 0 no drift, 1 drift, 2 usage (unreadable path, malformed or
// non-report JSON) via UsageError.
#include "cli.hpp"

#include "cli/exec_common.hpp"
#include "cli/json_reader.hpp"
#include "cli/json_writer.hpp"
#include "exec/seed.hpp"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <limits>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace proxima::cli {

namespace {

} // namespace

JsonValue load_report_document(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    throw UsageError("diff: cannot read '" + path + "'");
  }
  std::ostringstream text;
  text << file.rdbuf();
  JsonValue document;
  try {
    document = JsonValue::parse(text.str());
  } catch (const JsonParseError& error) {
    throw UsageError("diff: '" + path + "': " + error.what());
  }
  const JsonValue* command = document.get("command");
  const JsonValue* scenarios = document.get("scenarios");
  // `proxima list` also emits command + scenarios; comparing a catalogue
  // dump would "pass" on 100% null-vs-null metrics, so only the document
  // kinds that carry measurements are accepted.
  if (!command || !command->is_string() ||
      (command->string != "run" && command->string != "report" &&
       command->string != "sweep") ||
      !scenarios || !scenarios->is_array()) {
    throw UsageError("diff: '" + path +
                     "' is not a proxima run/report/sweep JSON document");
  }
  return document;
}

namespace {

/// Scenario identity inside a document: name + measured target (two
/// entries may share a name only across measured targets, but be strict).
std::string scenario_key(const JsonValue& scenario) {
  const JsonValue* name = scenario.get("name");
  const JsonValue* measured = scenario.get("measured");
  return (name && name->is_string() ? name->string : "?") + '|' +
         (measured && measured->is_string() ? measured->string : "");
}

std::string scenario_label(const JsonValue& scenario) {
  const JsonValue* name = scenario.get("name");
  return name && name->is_string() ? name->string : "<unnamed>";
}

/// One metric shift beyond the tolerance, kept structured so the renderer
/// (text line or JSON record) is chosen once at the end.
struct Drift {
  std::string context;   // "scenario" or "scenario partition NAME"
  std::string metric;    // empty for structural drifts (missing rows)
  std::string baseline;  // rendered values ("<absent>" when missing)
  std::string candidate;
  /// (candidate - baseline) / baseline; NaN for non-numeric/structural
  /// drifts (renders as null in JSON).
  double relative_shift = std::numeric_limits<double>::quiet_NaN();
  std::string detail; // the human-readable text-mode line body
};

class Differ {
public:
  explicit Differ(double tolerance) : tolerance_(tolerance) {}

  int drifts() const noexcept { return static_cast<int>(drifts_.size()); }
  int compared() const noexcept { return compared_; }
  const std::vector<Drift>& records() const noexcept { return drifts_; }

  void flag(const std::string& context, const std::string& detail) {
    drifts_.push_back(Drift{context, {}, {}, {},
                            std::numeric_limits<double>::quiet_NaN(),
                            detail});
  }

  /// Numeric metric (accepts null==null as equal — e.g. a partition pWCET
  /// absent on both sides).
  void number(const std::string& context, const char* metric,
              const JsonValue* a, const JsonValue* b) {
    ++compared_;
    const bool a_null = !a || a->is_null();
    const bool b_null = !b || b->is_null();
    if (a_null && b_null) {
      return;
    }
    if (a_null != b_null || !a->is_number() || !b->is_number()) {
      drifts_.push_back(Drift{context, metric, render(a), render(b),
                              std::numeric_limits<double>::quiet_NaN(),
                              std::string(metric) + ": " + render(a) +
                                  " -> " + render(b)});
      return;
    }
    const double lo = a->number;
    const double hi = b->number;
    if (lo == hi) {
      return; // bit-equal, including 0 == 0
    }
    // Zero is special-cased BEFORE the relative band: with
    // scale = max(|lo|,|hi|), a zero baseline against any candidate shrinks
    // to |hi| <= tolerance * |hi|, which passes at --tolerance >= 1.  A
    // count or estimate moving onto/off zero is a structural change
    // (something stopped happening, or started), so it only ever passes
    // bit-equal — handled above.
    const bool zero_crossing = (lo == 0.0) != (hi == 0.0);
    const double scale = std::max(std::abs(lo), std::abs(hi));
    if (!zero_crossing && std::abs(lo - hi) <= tolerance_ * scale) {
      return;
    }
    std::ostringstream detail;
    detail << metric << ": baseline " << render(a) << " candidate "
           << render(b);
    if (zero_crossing) {
      detail << " (zero baseline/candidate: only bit-equality passes)";
    }
    double shift = std::numeric_limits<double>::quiet_NaN();
    if (lo != 0.0) {
      shift = (hi - lo) / lo;
      detail << " (" << std::showpos << std::setprecision(3) << 100.0 * shift
             << "%)";
    }
    drifts_.push_back(
        Drift{context, metric, render(a), render(b), shift, detail.str()});
  }

  /// Exact-match metric (strings, bools): a tolerance never relaxes it,
  /// except the digests, which the caller skips at tolerance > 0.
  void exact(const std::string& context, const char* metric,
             const JsonValue* a, const JsonValue* b) {
    ++compared_;
    if (render(a) != render(b)) {
      drifts_.push_back(Drift{context, metric, render(a), render(b),
                              std::numeric_limits<double>::quiet_NaN(),
                              std::string(metric) + ": " + render(a) +
                                  " -> " + render(b)});
    }
  }

private:
  static std::string render(const JsonValue* value) {
    if (!value) {
      return "<absent>";
    }
    switch (value->kind) {
    case JsonValue::Kind::kNull:
      return "null";
    case JsonValue::Kind::kBool:
      return value->boolean ? "true" : "false";
    case JsonValue::Kind::kString:
      return value->string;
    case JsonValue::Kind::kNumber: {
      std::ostringstream text;
      text << std::setprecision(12) << value->number;
      return text.str();
    }
    default:
      return "<composite>";
    }
  }

  double tolerance_;
  std::vector<Drift> drifts_;
  int compared_ = 0;
};

void diff_partitions(Differ& differ, const std::string& context,
                     const JsonValue* a, const JsonValue* b) {
  const bool a_rows = a && a->is_array();
  const bool b_rows = b && b->is_array();
  if (!a_rows && !b_rows) {
    return; // bare-platform scenario on both sides
  }
  if (a_rows != b_rows) {
    differ.flag(context, std::string("partitions: ") +
                             (a_rows ? "baseline" : "candidate") +
                             " has per-partition rows, the other does not");
    return;
  }
  std::map<std::string, const JsonValue*> baseline;
  for (const JsonValue& row : a->array) {
    baseline[scenario_label(row)] = &row;
  }
  for (const JsonValue& row : b->array) {
    const std::string name = scenario_label(row);
    const auto it = baseline.find(name);
    if (it == baseline.end()) {
      differ.flag(context, "partition '" + name + "' only in candidate");
      continue;
    }
    const std::string partition_context = context + " partition " + name;
    const JsonValue* base = it->second;
    differ.number(partition_context, "activations", base->get("activations"),
                  row.get("activations"));
    differ.number(partition_context, "min", base->get("min"),
                  row.get("min"));
    differ.number(partition_context, "mean", base->get("mean"),
                  row.get("mean"));
    differ.number(partition_context, "MOET", base->get("moet"),
                  row.get("moet"));
    differ.number(partition_context, "stddev", base->get("stddev"),
                  row.get("stddev"));
    differ.number(partition_context, "overruns", base->get("overruns"),
                  row.get("overruns"));
    differ.number(partition_context, "pWCET", base->get("pwcet"),
                  row.get("pwcet"));
    baseline.erase(it);
  }
  for (const auto& [name, row] : baseline) {
    (void)row;
    differ.flag(context, "partition '" + name + "' only in baseline");
  }
}

void diff_analysis(Differ& differ, const std::string& context,
                   const JsonValue* a, const JsonValue* b) {
  const bool a_fit = a && a->is_object();
  const bool b_fit = b && b->is_object();
  if (!a_fit && !b_fit) {
    return; // run documents, or both analyses failed
  }
  if (a_fit != b_fit) {
    differ.flag(context, std::string("analysis: ") +
                             (a_fit ? "candidate" : "baseline") +
                             " has no MBPTA fit");
    return;
  }
  differ.exact(context, "iid passes", a->get("iid", "passes"),
               b->get("iid", "passes"));
  differ.number(context, "gumbel location", a->get("gumbel", "location"),
                b->get("gumbel", "location"));
  differ.number(context, "gumbel scale", a->get("gumbel", "scale"),
                b->get("gumbel", "scale"));

  // pWCET curve, point by point at matching exceedance probabilities.
  // One-sided points (a baseline exceedance the candidate does not carry,
  // or vice versa — e.g. documents rendered at different --decades depths)
  // used to be skipped silently; a curve point is a metric, and a missing
  // metric is a drift, so the mismatch is flagged once, structurally.
  const JsonValue* a_curve = a->get("curve");
  const JsonValue* b_curve = b->get("curve");
  if (!a_curve || !b_curve || !a_curve->is_array() || !b_curve->is_array()) {
    return;
  }
  std::map<double, const JsonValue*> points;
  for (const JsonValue& point : a_curve->array) {
    if (const JsonValue* p = point.get("exceedance"); p && p->is_number()) {
      points[p->number] = point.get("pwcet_cycles");
    }
  }
  std::size_t candidate_only = 0;
  for (const JsonValue& point : b_curve->array) {
    const JsonValue* p = point.get("exceedance");
    if (!p || !p->is_number()) {
      continue;
    }
    const auto it = points.find(p->number);
    if (it == points.end()) {
      ++candidate_only;
      continue;
    }
    std::ostringstream metric;
    metric << "pWCET @ " << std::setprecision(3) << p->number;
    differ.number(context, metric.str().c_str(), it->second,
                  point.get("pwcet_cycles"));
    points.erase(it);
  }
  if (!points.empty() || candidate_only != 0) {
    std::ostringstream detail;
    detail << "pWCET curve: " << points.size()
           << " exceedance point(s) only in baseline, " << candidate_only
           << " only in candidate (different --decades?)";
    differ.flag(context, detail.str());
  }
}

void diff_scenario(Differ& differ, double tolerance, const JsonValue& a,
                   const JsonValue& b) {
  const std::string context = scenario_label(a);
  differ.number(context, "runs", a.get("runs"), b.get("runs"));
  differ.exact(context, "measured", a.get("measured"), b.get("measured"));
  differ.number(context, "n", a.get("times", "n"), b.get("times", "n"));
  differ.number(context, "min", a.get("times", "min"),
                b.get("times", "min"));
  differ.number(context, "mean", a.get("times", "mean"),
                b.get("times", "mean"));
  differ.number(context, "MOET", a.get("times", "max"),
                b.get("times", "max"));
  differ.number(context, "stddev", a.get("times", "stddev"),
                b.get("times", "stddev"));
  if (tolerance == 0.0) {
    // Bit-exact mode: the digest is the strongest check there is.  With a
    // tolerance the times may legitimately differ within the band, so a
    // digest mismatch alone is not a drift.
    differ.exact(context, "times digest", a.get("times", "digest"),
                 b.get("times", "digest"));
    // Metrics digest: a baseline without one is the single tolerated
    // absence — older golden reports predate the observability registry
    // and must keep diffing clean against fresh candidates.  A CANDIDATE
    // that lost the digest its baseline has is a drift (metrics stopped
    // being collected — silently skipping it would wave through exactly
    // the regression the digest exists to catch).
    const JsonValue* a_metrics = a.get("metrics", "digest");
    const JsonValue* b_metrics = b.get("metrics", "digest");
    if (a_metrics && b_metrics) {
      differ.exact(context, "metrics digest", a_metrics, b_metrics);
    } else if (a_metrics && !b_metrics) {
      differ.flag(context,
                  "metrics digest: present in baseline, absent in candidate");
    }
  }
  differ.number(context, "verified_runs", a.get("verified_runs"),
                b.get("verified_runs"));
  differ.number(context, "guest_instructions",
                a.get("throughput", "guest_instructions"),
                b.get("throughput", "guest_instructions"));
  const JsonValue* a_adaptive = a.get("adaptive");
  const JsonValue* b_adaptive = b.get("adaptive");
  const bool a_has_adaptive = a_adaptive && a_adaptive->is_object();
  const bool b_has_adaptive = b_adaptive && b_adaptive->is_object();
  if (a_has_adaptive != b_has_adaptive) {
    differ.flag(context, std::string("adaptive: only ") +
                             (a_has_adaptive ? "baseline" : "candidate") +
                             " ran a convergence-driven campaign");
  } else if (a_has_adaptive) {
    differ.exact(context, "adaptive converged",
                 a_adaptive->get("converged"), b_adaptive->get("converged"));
    differ.number(context, "adaptive batches", a_adaptive->get("batches"),
                  b_adaptive->get("batches"));
  }
  diff_partitions(differ, context, a.get("partitions"), b.get("partitions"));
  diff_analysis(differ, context, a.get("analysis"), b.get("analysis"));
}

/// Scenario-matched comparison of two loaded documents — the shared core
/// of `cmd_diff` and the `proxima sweep --baseline` gate.
struct ComparisonResult {
  Differ differ;
  int scenarios = 0; // matched on both sides
};

ComparisonResult compare_documents(const JsonValue& baseline,
                                   const JsonValue& candidate,
                                   double tolerance) {
  ComparisonResult result{Differ(tolerance), 0};
  Differ& differ = result.differ;
  std::map<std::string, const JsonValue*> remaining;
  for (const JsonValue& scenario : candidate.get("scenarios")->array) {
    remaining[scenario_key(scenario)] = &scenario;
  }
  for (const JsonValue& scenario : baseline.get("scenarios")->array) {
    const auto it = remaining.find(scenario_key(scenario));
    if (it == remaining.end()) {
      differ.flag(scenario_label(scenario), "only in baseline");
      continue;
    }
    ++result.scenarios;
    diff_scenario(differ, tolerance, scenario, *it->second);
    remaining.erase(it);
  }
  for (const auto& [key, scenario] : remaining) {
    (void)key;
    differ.flag(scenario_label(*scenario), "only in candidate");
  }
  return result;
}

// --- `--against SCENARIO`: the on-the-fly baseline ------------------------

/// Mirror the campaign knobs the candidate's (first) scenario records into
/// the options the baseline execution runs under.  The knobs live in the
/// header every document kind emits: runs, seed{input,layout}, frames,
/// vm_core.
CampaignOptions mirror_candidate_options(const std::string& against,
                                         const JsonValue& scenario) {
  CampaignOptions options;
  options.scenarios = {against};
  if (const JsonValue* runs = scenario.get("runs");
      runs && runs->is_number()) {
    options.runs = static_cast<std::uint32_t>(runs->number);
  }
  if (const JsonValue* core = scenario.get("vm_core");
      core && core->is_string()) {
    if (core->string == "fast") {
      options.vm_core = vm::VmCore::kFast;
    } else if (core->string == "fast-sb") {
      options.vm_core = vm::VmCore::kFastSb;
    } else if (core->string == "reference") {
      options.vm_core = vm::VmCore::kReference;
    } else {
      throw UsageError("diff --against: candidate records unknown vm_core '" +
                       core->string + "'");
    }
  }
  if (const JsonValue* frames = scenario.get("frames");
      frames && frames->is_number()) {
    options.frames = static_cast<std::uint32_t>(frames->number);
  }
  // The seed pair is reproducible through the single `--seed` knob only
  // when it IS a `--seed` derivation (layout = splitmix64_mix(input)) or
  // the scenario's own defaults.  Anything else cannot be mirrored — fail
  // loudly instead of diffing against the wrong campaign.  (The layout
  // seed is compared in double space: JSON numbers round-trip through
  // double, so an exact uint64 comparison would spuriously fail for mixed
  // seeds above 2^53.)
  const JsonValue* input = scenario.get("seed", "input");
  const JsonValue* layout = scenario.get("seed", "layout");
  if (input && input->is_number() && layout && layout->is_number()) {
    const auto in = static_cast<std::uint64_t>(input->number);
    const casestudy::CampaignConfig defaults =
        detail::scenario_config(against, options); // options.seed unset
    if (static_cast<double>(defaults.input_seed) != input->number ||
        static_cast<double>(defaults.layout_seed) != layout->number) {
      if (static_cast<double>(exec::splitmix64_mix(in)) == layout->number) {
        options.seed = in;
      } else {
        throw UsageError(
            "diff --against: the candidate's seed pair is neither scenario '" +
            against + "' defaults nor a --seed derivation; rerun the "
            "baseline scenario manually and diff the two files");
      }
    }
  }
  return options;
}

/// The `--decades` depth the candidate's pWCET curve was rendered at: the
/// deepest exceedance is always 10^-decades (only SHALLOW points are
/// dropped as body probabilities).
int infer_decades(const JsonValue& scenario, int fallback) {
  const JsonValue* curve = scenario.get("analysis", "curve");
  if (!curve || !curve->is_array()) {
    return fallback;
  }
  double min_p = 1.0;
  for (const JsonValue& point : curve->array) {
    if (const JsonValue* p = point.get("exceedance");
        p && p->is_number() && p->number > 0.0 && p->number < min_p) {
      min_p = p->number;
    }
  }
  return min_p < 1.0 ? static_cast<int>(std::lround(-std::log10(min_p)))
                     : fallback;
}

/// Run `against` with the candidate's campaign knobs and render the result
/// as a document of the SAME kind as the candidate (run / report / sweep),
/// using the same write_* sections those commands use — `diff_analysis`
/// treats a one-sided MBPTA fit as a structural drift, so the shapes must
/// match before the comparison starts.
JsonValue synthesize_baseline(const std::string& against,
                              const JsonValue& candidate, std::ostream& err) {
  const JsonValue& scenarios = *candidate.get("scenarios");
  if (scenarios.array.empty()) {
    throw UsageError("diff --against: candidate document has no scenarios");
  }
  const JsonValue& mirror = scenarios.array.front();
  if (const JsonValue* adaptive = mirror.get("adaptive");
      adaptive && adaptive->is_object()) {
    // An adaptive campaign's run count is convergence-driven; replaying it
    // faithfully would need the full controller state, not four knobs.
    throw UsageError("diff --against: adaptive candidate documents are not "
                     "supported; save the baseline to a file instead");
  }
  const std::string& kind = candidate.get("command")->string;
  CampaignOptions options = mirror_candidate_options(against, mirror);
  const detail::Execution execution =
      detail::execute_scenario(against, options, nullptr, err);

  std::ostringstream text;
  {
    JsonWriter json(text);
    json.begin_object();
    json.key("command").value(kind);
    json.key("scenarios").begin_array();
    json.begin_object();
    detail::write_execution_header_json(json, execution, options);
    detail::write_adaptive_json(json, execution);
    detail::write_times_json(json, execution);
    detail::write_partitions_json(json, execution, options);
    if (kind != "report") { // run + sweep documents carry throughput
      detail::write_throughput_json(json, execution);
    }
    detail::write_metrics_json(json, execution);
    if (kind == "run") {
      json.key("verified_runs").value(execution.result.verified_runs);
    } else { // report + sweep documents carry the MBPTA analysis
      const detail::Analysed analysed =
          detail::analyse_execution(execution, options);
      detail::write_analysis_json(json, analysed,
                                  infer_decades(mirror, options.decades));
    }
    json.end_object();
    json.end_array();
    json.end_object();
  }
  return JsonValue::parse(text.str());
}

} // namespace

int diff_drift_count(const JsonValue& baseline, const JsonValue& candidate,
                     double tolerance, std::ostream& out) {
  const ComparisonResult result =
      compare_documents(baseline, candidate, tolerance);
  for (const Drift& drift : result.differ.records()) {
    out << "drift: " << drift.context << ": " << drift.detail << '\n';
  }
  out << "compared " << result.scenarios << " scenario(s), "
      << result.differ.compared() << " metric(s): " << result.differ.drifts()
      << " drift(s) beyond tolerance " << tolerance << '\n';
  return result.differ.drifts();
}

int cmd_diff(const DiffOptions& options, std::ostream& out,
             std::ostream& err) {
  JsonValue baseline;
  JsonValue candidate;
  if (options.against.empty()) {
    baseline = load_report_document(options.baseline);
    candidate = load_report_document(options.candidate);
  } else {
    candidate = load_report_document(options.candidate);
    baseline = synthesize_baseline(options.against, candidate, err);
  }

  const ComparisonResult result =
      compare_documents(baseline, candidate, options.tolerance);
  const Differ& differ = result.differ;
  const int scenarios = result.scenarios;

  if (options.format == OutputFormat::kJson) {
    JsonWriter json(out);
    json.begin_object();
    json.key("command").value("diff");
    // With `--against` the baseline is the freshly-run scenario, not a
    // file; the key renders what was actually compared against.
    json.key("baseline").value(options.against.empty()
                                   ? options.baseline
                                   : "--against " + options.against);
    json.key("candidate").value(options.candidate);
    json.key("tolerance").value(options.tolerance);
    json.key("compared_scenarios").value(scenarios);
    json.key("compared_metrics").value(differ.compared());
    json.key("drifts").begin_array();
    for (const Drift& drift : differ.records()) {
      json.begin_object();
      json.key("context").value(drift.context);
      json.key("metric");
      if (drift.metric.empty()) {
        json.null(); // structural drift (missing scenario/partition rows)
      } else {
        json.value(drift.metric);
      }
      json.key("baseline");
      if (drift.baseline.empty() && drift.metric.empty()) {
        json.null();
      } else {
        json.value(drift.baseline);
      }
      json.key("candidate");
      if (drift.candidate.empty() && drift.metric.empty()) {
        json.null();
      } else {
        json.value(drift.candidate);
      }
      json.key("relative_shift").value(drift.relative_shift); // NaN -> null
      json.key("detail").value(drift.detail);
      json.end_object();
    }
    json.end_array();
    json.key("drift_count").value(differ.drifts());
    json.end_object();
    return differ.drifts() == 0 ? 0 : 1;
  }

  for (const Drift& drift : differ.records()) {
    out << "drift: " << drift.context << ": " << drift.detail << '\n';
  }
  out << "compared " << scenarios << " scenario(s), " << differ.compared()
      << " metric(s): " << differ.drifts() << " drift(s) beyond tolerance "
      << options.tolerance << '\n';
  return differ.drifts() == 0 ? 0 : 1;
}

} // namespace proxima::cli
