#include "json_reader.hpp"

#include <cctype>
#include <charconv>

namespace proxima::cli {

namespace {

class Parser {
public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after the document");
    }
    return value;
  }

private:
  JsonValue parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of document");
    }
    switch (text_[pos_]) {
    case '{':
      return parse_object();
    case '[':
      return parse_array();
    case '"':
      return parse_string();
    case 't':
    case 'f':
      return parse_bool();
    case 'n':
      expect_literal("null");
      return JsonValue{};
    default:
      return parse_number();
    }
  }

  JsonValue parse_object() {
    JsonValue value;
    value.kind = JsonValue::Kind::kObject;
    ++pos_; // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      skip_ws();
      JsonValue key = parse_string();
      skip_ws();
      if (peek() != ':') {
        fail("expected ':' after object key");
      }
      ++pos_;
      value.object.emplace_back(std::move(key.string), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return value;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    JsonValue value;
    value.kind = JsonValue::Kind::kArray;
    ++pos_; // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return value;
      }
      fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_string() {
    if (peek() != '"') {
      fail("expected a string");
    }
    ++pos_;
    JsonValue value;
    value.kind = JsonValue::Kind::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_];
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) {
          fail("unterminated escape");
        }
        switch (text_[pos_]) {
        case 'n':
          c = '\n';
          break;
        case 't':
          c = '\t';
          break;
        case 'r':
          c = '\r';
          break;
        case 'b':
          // \b and \f used to fall into the pass-through default and decode
          // to literal 'b'/'f', corrupting round-tripped strings.
          c = '\b';
          break;
        case 'f':
          c = '\f';
          break;
        case 'u': {
          // json_writer emits \u00XX for control bytes; decode the code
          // unit (non-Latin-1 points never appear in proxima reports and
          // degrade to '?' rather than garbling the string).
          if (pos_ + 4 >= text_.size()) {
            fail("unterminated \\u escape");
          }
          unsigned code = 0;
          for (int digit = 0; digit < 4; ++digit) {
            ++pos_;
            const char hex = text_[pos_];
            code <<= 4;
            if (hex >= '0' && hex <= '9') {
              code |= static_cast<unsigned>(hex - '0');
            } else if (hex >= 'a' && hex <= 'f') {
              code |= static_cast<unsigned>(hex - 'a' + 10);
            } else if (hex >= 'A' && hex <= 'F') {
              code |= static_cast<unsigned>(hex - 'A' + 10);
            } else {
              fail("malformed \\u escape");
            }
          }
          c = code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          c = text_[pos_]; // \" \\ \/ pass through
          break;
        }
      }
      value.string.push_back(c);
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      fail("unterminated string");
    }
    ++pos_; // closing quote
    return value;
  }

  JsonValue parse_bool() {
    JsonValue value;
    value.kind = JsonValue::Kind::kBool;
    if (text_.substr(pos_, 4) == "true") {
      value.boolean = true;
      pos_ += 4;
    } else {
      expect_literal("false");
      value.boolean = false;
    }
    return value;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    JsonValue value;
    value.kind = JsonValue::Kind::kNumber;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value.number);
    if (start == pos_ || ec != std::errc{} || ptr != last) {
      fail("malformed number");
    }
    return value;
  }

  void expect_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) {
      fail("malformed literal");
    }
    pos_ += literal.size();
  }

  char peek() const noexcept {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() noexcept {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  [[noreturn]] void fail(const std::string& what) const {
    throw JsonParseError("JSON parse error at offset " +
                         std::to_string(pos_) + ": " + what);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

} // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).document();
}

} // namespace proxima::cli
