// Minimal JSON document reader for `proxima diff` and `proxima sweep`:
// parses the documents json_writer.cpp emits (objects, arrays, strings,
// doubles, bools, null) back into a navigable value tree.  Deliberately
// small — handles exactly the JSON string escapes (\" \\ \/ \n \t \r \b \f
// \uXXXX), no streaming, whole-document strings — because its only job is
// reading proxima's own reports; it is NOT a general-purpose JSON library.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace proxima::cli {

/// Malformed document (syntax error, trailing garbage).  `cmd_diff` turns
/// it into a usage error: handing a non-report to diff is an operator
/// mistake, not a drift.
struct JsonParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class JsonValue {
public:
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  /// Insertion order preserved (diff output follows the report's order).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const noexcept { return kind == Kind::kNull; }
  bool is_number() const noexcept { return kind == Kind::kNumber; }
  bool is_string() const noexcept { return kind == Kind::kString; }
  bool is_array() const noexcept { return kind == Kind::kArray; }
  bool is_object() const noexcept { return kind == Kind::kObject; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(std::string_view key) const noexcept {
    if (kind != Kind::kObject) {
      return nullptr;
    }
    for (const auto& [name, value] : object) {
      if (name == key) {
        return &value;
      }
    }
    return nullptr;
  }

  /// Nested lookup: get("a") then get("b")...; nullptr on any miss.
  template <typename... Keys>
  const JsonValue* get(std::string_view key, Keys... rest) const noexcept {
    const JsonValue* inner = get(key);
    return inner ? inner->get(rest...) : nullptr;
  }

  /// Parse a whole document.  Throws JsonParseError.
  static JsonValue parse(std::string_view text);
};

} // namespace proxima::cli
