// Command-line parsing for the `proxima` CLI.
//
// Kept free of I/O and of campaign execution so the parser is unit-testable
// in isolation: `parse_command_line` maps argv to a `Command` or throws
// `UsageError` with the offending flag in the message.
#pragma once

#include "casestudy/campaign.hpp"
#include "vm/vm.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace proxima::cli {

/// A malformed invocation (unknown flag, missing value, bad number).  The
/// driver prints the message plus the usage text and exits non-zero.
struct UsageError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class OutputFormat : std::uint8_t { kText, kJson, kCsv };

/// Options shared by `run` and `report` (and `--format` by `list`).
struct CampaignOptions {
  /// Scenarios named via repeated `--scenario`; `--all` selects the whole
  /// registry catalogue instead.
  std::vector<std::string> scenarios;
  bool all = false;
  /// Measured runs; under `--adaptive` this is the campaign budget the
  /// convergence loop may stop short of.
  std::uint32_t runs = 1000;
  bool adaptive = false;
  /// Adaptive growth quantum (`--batch`); 0 picks max(50, runs/10).
  std::uint64_t batch_runs = 0;
  unsigned workers = 0; // 0: hardware concurrency
  /// `--seed S`: input seed S, layout seed splitmix64_mix(S) — one knob
  /// reseeds the whole campaign deterministically.
  std::optional<std::uint64_t> seed;
  vm::VmCore vm_core = vm::VmCore::kFastSb;
  /// `--randomisation R`: override the scenario's randomisation technology
  /// (cots|dsr|dsr-ondemand|static|hwrand); unset keeps the scenario's
  /// registered arm.
  std::optional<casestudy::Randomisation> randomisation;
  OutputFormat format = OutputFormat::kText;
  /// `report`: pWCET curve depth in decades.
  int decades = 16;
  /// `--frames N`: minor frames per measured run of an hv/ scenario
  /// (rejected for bare-platform scenarios); unset keeps the scenario's
  /// default schedule.
  std::optional<std::uint32_t> frames;
  /// `--partition NAME`: restrict the per-partition report sections to one
  /// partition (hv/ scenarios emit all partitions by default).
  std::optional<std::string> partition;
  /// `--trace-out FILE`: write a Chrome trace_event JSON timeline of the
  /// campaign (engine worker runs, adaptive batches, hv partition frames)
  /// — load it in chrome://tracing or Perfetto.  Empty: tracing off.
  std::string trace_out;
  /// `--progress`: live completed/total progress line on stderr while the
  /// campaigns execute (stderr so piped --format json/csv stays clean).
  bool progress = false;
  /// `--store DIR`: run campaigns through the on-disk campaign store —
  /// stored runs are served without simulating, fresh runs are persisted
  /// per completed shard (interrupted campaigns resume bit-identically).
  /// Empty: no persistence.  Required by `sweep`.
  std::string store_dir;
};

/// Options specific to `proxima sweep` (combined with CampaignOptions for
/// the shared campaign knobs).
struct SweepOptions {
  /// `--seed S` (repeatable): the seed axis of the scenario × seed grid.
  /// Empty: every scenario runs once at its default seeds.
  std::vector<std::uint64_t> seeds;
  /// `--manifest FILE`: where the machine-readable sweep manifest goes
  /// (default `<store>/sweep-manifest.json`).
  std::string manifest;
  /// `--baseline FILE`: gate the sweep against a stored report document
  /// with the diff engine; drift exits 1 (same contract as `proxima
  /// diff`).
  std::string baseline;
  /// Tolerance for the `--baseline` gate (same semantics as diff).
  double tolerance = 0.0;
};

/// Options for `proxima diff <baseline.json> <candidate.json>`: compare
/// two saved JSON reports and flag pWCET/MOET/counter shifts beyond the
/// tolerance.
struct DiffOptions {
  std::string baseline;
  std::string candidate;
  /// `--against SCENARIO`: instead of a baseline file, run the named
  /// registry scenario on the fly — mirroring the candidate report's
  /// runs/seed/frames/vm-core — and diff the candidate against the fresh
  /// result.  Mutually exclusive with a second positional path.
  std::string against;
  /// Maximum relative shift |a-b| / max(|a|,|b|) that still counts as
  /// equal.  0 (default) demands bit-exact numbers AND matching digests;
  /// with a tolerance > 0 the digests are informational only (times may
  /// legitimately differ within the band).
  double tolerance = 0.0;
  /// `--format json`: machine-readable drift report (per-drift records +
  /// summary) instead of the human text.  Exit codes are identical.
  OutputFormat format = OutputFormat::kText;
};

struct Command {
  enum class Kind : std::uint8_t {
    kHelp,
    kList,
    kRun,
    kReport,
    kDiff,
    kProfile,
    kSweep,
    kLint,
  };
  Kind kind = Kind::kHelp;
  CampaignOptions options;
  DiffOptions diff;
  SweepOptions sweep;
};

/// Parse `args` (argv without the program name).  Throws UsageError.
Command parse_command_line(std::span<const char* const> args);

/// The full usage text (also the `help` command's output).
std::string usage();

} // namespace proxima::cli
