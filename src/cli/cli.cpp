#include "cli.hpp"

#include <exception>

namespace proxima::cli {

int run_cli(int argc, const char* const* argv, std::ostream& out,
            std::ostream& err) {
  Command command;
  try {
    command = parse_command_line(std::span<const char* const>(
        argv + (argc > 0 ? 1 : 0),
        static_cast<std::size_t>(argc > 0 ? argc - 1 : 0)));
  } catch (const UsageError& error) {
    err << "proxima: " << error.what() << "\n\n" << usage();
    return 2;
  }

  try {
    switch (command.kind) {
    case Command::Kind::kHelp:
      out << usage();
      return 0;
    case Command::Kind::kList:
      return cmd_list(command.options, out);
    case Command::Kind::kRun:
      return cmd_run(command.options, out, err);
    case Command::Kind::kReport:
      return cmd_report(command.options, out, err);
    case Command::Kind::kProfile:
      return cmd_profile(command.options, out, err);
    case Command::Kind::kDiff:
      return cmd_diff(command.diff, out, err);
    case Command::Kind::kSweep:
      return cmd_sweep(command.options, command.sweep, out, err);
    case Command::Kind::kLint:
      return cmd_lint(command.options, out, err);
    }
  } catch (const UsageError& error) {
    // Some flags are only checkable against the selected scenario (e.g.
    // --frames on a bare-platform scenario): still a usage error.
    err << "proxima: " << error.what() << "\n\n" << usage();
    return 2;
  } catch (const std::out_of_range& error) {
    err << "proxima: " << error.what() << '\n';
    return 2;
  } catch (const std::exception& error) {
    err << "proxima: campaign failed: " << error.what() << '\n';
    return 3;
  }
  return 2;
}

} // namespace proxima::cli
