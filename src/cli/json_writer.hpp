// Minimal streaming JSON writer for the CLI's machine-readable output.
//
// No dependency, no DOM: values are written as they are produced, commas
// and indentation are managed by a nesting stack.  Numbers are emitted
// with enough digits to round-trip doubles; NaN/Inf (which JSON cannot
// represent) are emitted as null — the convention the convergence trace
// uses for "i.i.d. verdict failed at this batch".
#pragma once

#include <cstdint>
#include <ostream>
#include <string_view>
#include <vector>

namespace proxima::cli {

class JsonWriter {
public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be followed by exactly one value/container.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(unsigned number) { return value(std::uint64_t{number}); }
  JsonWriter& value(int number) { return value(std::int64_t{number}); }
  JsonWriter& value(bool flag);
  JsonWriter& null();

private:
  void prefix(); // comma/newline/indent before a value or key
  void write_escaped(std::string_view text);

  std::ostream& out_;
  struct Level {
    bool has_items = false;
  };
  std::vector<Level> stack_;
  bool pending_key_ = false;
};

} // namespace proxima::cli
